package csrank

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"csrank/internal/core"
	"csrank/internal/index"
	"csrank/internal/postings"
	"csrank/internal/query"
	"csrank/internal/segment"
	"csrank/internal/selection"
	"csrank/internal/shard"
	"csrank/internal/views"
)

// ShardedEngine answers context-sensitive queries over a
// document-partitioned cluster of engines. Every query fans out to all
// shards concurrently in two phases — partial statistics, then scoring
// under the merged global statistics — and the merged ranking is
// bit-identical to a single Engine holding the whole collection:
// sharding changes latency and capacity, never scores, order or
// tie-breaks. Each shard sits behind a generation-tracked serving slot,
// so index rollover swaps one shard at a time without downtime.
type ShardedEngine struct {
	cluster    *shard.Cluster
	selectTime time.Duration
	// live is the ingester behind an OpenLive engine; when set, searches
	// route through its view (shards + mutable segment) and Add accepts
	// documents.
	live *segment.Ingester
	// rcache is the serving-layer result cache plus single-flight table
	// (nil when CacheOptions disables it); cacheFP is the configuration
	// fingerprint folded into every key.
	rcache  *core.ResultCache
	cacheFP string
}

// attachCache wires the serving-layer result cache per opts.Cache. Every
// construction path (BuildSharded, OpenSharded, OpenLive,
// ShardedWithOptions) calls it so the cache's configuration fingerprint
// always matches the engines actually serving.
func (e *ShardedEngine) attachCache(opts BuildOptions) {
	e.rcache = core.NewResultCache(opts.Cache.ResultBytes)
	e.cacheFP = opts.cacheFingerprint()
}

// cacheKey is the result-cache key for a parsed query: configuration
// fingerprint, k, the keywords in query order (keyword order is
// score-neutral but plan-visible, so reordered queries get their own
// Stats), and the normalized (sorted, deduplicated) context.
func (e *ShardedEngine) cacheKey(pq query.Query, k int) string {
	var b strings.Builder
	b.WriteString(e.cacheFP)
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(k))
	for _, w := range pq.Keywords {
		b.WriteByte(0)
		b.WriteString(w)
	}
	b.WriteByte(1)
	for _, m := range pq.NormalizedContext() {
		b.WriteByte(0)
		b.WriteString(m)
	}
	return b.String()
}

// cacheTag encodes every input generation a result depends on. All
// components are monotonic counters, so two equal tags prove that no
// shard swapped, no catalog changed, and no live document became
// visible in between — which is what makes serving a tagged entry
// bit-identical to re-executing the query.
func (e *ShardedEngine) cacheTag() string {
	var b strings.Builder
	if e.live != nil {
		// Live path: the view sequence covers both ingestion visibility and
		// compaction generations; per-slice catalog versions cover
		// SwapExtend on the underlying engines.
		v := e.live.View()
		b.WriteString("live:")
		b.WriteString(strconv.FormatUint(v.Seq, 10))
		for _, sl := range v.Slices {
			b.WriteByte(';')
			b.WriteString(strconv.FormatUint(sl.Eng.CatalogVersion(), 10))
		}
		return b.String()
	}
	for i := 0; i < e.cluster.NumShards(); i++ {
		eng, gen := e.cluster.Engine(i)
		b.WriteString(strconv.FormatUint(gen, 10))
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(eng.CatalogVersion(), 10))
		b.WriteByte(';')
	}
	return b.String()
}

// cachedResult is the opaque value a ResultCache entry holds: the final
// merged ranking plus the aggregate and per-shard statistics it was
// computed with. The stored slices belong to the cache; every consumer
// gets copies via copyOut.
type cachedResult struct {
	hits []Hit
	agg  Stats
	per  []Stats
}

// sizeBytes estimates the entry's resident size for the byte budget.
func (r *cachedResult) sizeBytes() int64 {
	n := int64(128)
	for i := range r.hits {
		n += 48 + int64(len(r.hits[i].Title))
	}
	n += int64(1+len(r.per)) * 256
	return n
}

// copyOut returns mutation-safe copies of the slices; the aggregate
// Stats is a value (ShardErrors is always empty on cacheable results,
// so the shallow copy shares nothing).
func (r *cachedResult) copyOut() ([]Hit, Stats, []Stats) {
	hits := make([]Hit, len(r.hits))
	copy(hits, r.hits)
	per := make([]Stats, len(r.per))
	copy(per, r.per)
	return hits, r.agg, per
}

// BuildSharded indexes the queued documents hash-partitioned over the
// given number of shards, running view selection independently per
// shard (T_C scales with the shard's size, so the fractional coverage
// guarantee is preserved), and returns a ready ShardedEngine.
// BuildSharded(1, opts) ranks identically to Build(opts).
func (b *Builder) BuildSharded(shards int, opts BuildOptions) (*ShardedEngine, error) {
	scorer, err := opts.Scorer.build()
	if err != nil {
		return nil, err
	}
	frac := opts.ContextThresholdFraction
	if frac == 0 {
		frac = 0.01
	}
	tv := opts.ViewSizeLimit
	if tv == 0 {
		tv = 4096
	}
	parts, globals, err := shard.Split(b.docs, shards)
	if err != nil {
		return nil, err
	}
	var selTime time.Duration
	engines := make([]*core.Engine, shards)
	for i := range parts {
		ix, err := index.BuildFrom(schema(), opts.SegmentSize, parts[i])
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		var cat *views.Catalog
		if !opts.DisableViews {
			tc := int64(frac * float64(ix.NumDocs()))
			if tc < 1 {
				tc = 1
			}
			t0 := time.Now()
			m, err := selection.Select(ix, selection.Config{TC: tc, TV: tv})
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			cat = m.Catalog
			selTime += time.Since(t0)
		}
		engines[i] = core.New(ix, cat, opts.coreOptions(scorer))
	}
	cluster, err := shard.NewCluster(engines, globals)
	if err != nil {
		return nil, err
	}
	cluster.SetPolicy(opts.shardPolicy())
	se := &ShardedEngine{cluster: cluster, selectTime: selTime}
	se.attachCache(opts)
	return se, nil
}

// shardPolicy maps the sharding subset of BuildOptions onto the
// cluster's failure policy.
func (o BuildOptions) shardPolicy() shard.Policy {
	return shard.Policy{MinShards: o.MinShards, ShardTimeout: o.ShardTimeout}
}

// Sharded wraps an existing single engine as a one-shard cluster, so
// callers (cmd/csserve) can serve single and sharded data directories
// through one code path. The wrapper ranks identically to the engine.
func (e *Engine) Sharded() (*ShardedEngine, error) {
	n := e.engine.Index().NumDocs()
	cluster, err := shard.NewCluster([]*core.Engine{e.engine}, shard.GlobalMaps(n, 1))
	if err != nil {
		return nil, err
	}
	return &ShardedEngine{cluster: cluster, selectTime: e.selectTime}, nil
}

// ShardedWithOptions is Sharded with the caching subset of opts applied
// to the wrapper (the engine's own runtime options are unchanged): the
// way cmd/csserve enables the result cache over a single-engine data
// directory.
func (e *Engine) ShardedWithOptions(opts BuildOptions) (*ShardedEngine, error) {
	se, err := e.Sharded()
	if err != nil {
		return nil, err
	}
	se.attachCache(opts)
	return se, nil
}

// Save persists the cluster under dir (which must exist): one
// shard-%03d engine directory per shard plus a cluster.json manifest.
func (e *ShardedEngine) Save(dir string) error { return e.cluster.Save(dir, false) }

// SaveMapped is Save with the format-v4 paged index layout, which
// OpenSharded maps lazily — the right choice when N shards must not
// multiply resident heap.
func (e *ShardedEngine) SaveMapped(dir string) error { return e.cluster.Save(dir, true) }

// IsSharded reports whether dir holds a sharded data directory (a
// cluster manifest) as written by ShardedEngine.Save, as opposed to a
// single-engine directory written by Engine.Save.
func IsSharded(dir string) bool { return shard.IsSharded(dir) }

// OpenSharded loads a cluster saved by ShardedEngine.Save, honoring the
// runtime options (Scorer, CacheContexts, CostBasedPlanning,
// Parallelism, Timeout, StatsBudget, Pruning) on every shard.
func OpenSharded(dir string, opts BuildOptions) (*ShardedEngine, error) {
	sc, err := opts.Scorer.build()
	if err != nil {
		return nil, err
	}
	cluster, err := shard.Open(dir, opts.coreOptions(sc))
	if err != nil {
		return nil, err
	}
	cluster.SetPolicy(opts.shardPolicy())
	se := &ShardedEngine{cluster: cluster}
	se.attachCache(opts)
	return se, nil
}

// Search parses and evaluates q ("w1 w2 | m1 m2") over all shards,
// returning the global top k with cluster-aggregated statistics.
func (e *ShardedEngine) Search(q string, k int) ([]Hit, Stats, error) {
	return e.SearchCtx(context.Background(), q, k)
}

// SearchCtx is Search under a caller-supplied context: cancelling ctx
// aborts the fan-out promptly, and a deadline degrades shards to
// flagged partial results instead of failing, exactly as on a single
// engine.
func (e *ShardedEngine) SearchCtx(ctx context.Context, q string, k int) ([]Hit, Stats, error) {
	hits, agg, _, err := e.searchDetailed(ctx, q, k)
	return hits, agg, err
}

// SearchDetailed is SearchCtx that additionally returns each shard's
// own statistics report (index = shard), for serving telemetry.
func (e *ShardedEngine) SearchDetailed(ctx context.Context, q string, k int) ([]Hit, Stats, []Stats, error) {
	return e.searchDetailed(ctx, q, k)
}

func (e *ShardedEngine) searchDetailed(ctx context.Context, q string, k int) ([]Hit, Stats, []Stats, error) {
	return e.SearchGated(ctx, q, k, nil)
}

// SearchGated is SearchDetailed with serving-layer caching, single-flight
// coalescing, and an admission gate. The gate — nil means admit freely —
// is invoked only when the query actually executes against the shards;
// result-cache hits and coalesced followers never pay for an admission
// slot. When the gate returns an error the query is rejected with it;
// otherwise its release func is called when execution finishes.
//
// A cache hit sets Stats.ResultCacheHit and is bit-identical to
// re-execution (modulo Elapsed, which reports the cache-hit latency): the
// entry's generation tag matching the current serving state proves no
// input changed since it was computed. A coalesced follower sets
// Stats.SingleFlightShared. Degraded, partial, or errored executions are
// never cached and never shared.
func (e *ShardedEngine) SearchGated(ctx context.Context, q string, k int, gate func(context.Context) (func(), error)) ([]Hit, Stats, []Stats, error) {
	pq, err := query.Parse(q)
	if err != nil {
		return nil, Stats{}, nil, err
	}
	if e.rcache == nil {
		if gate != nil {
			release, err := gate(ctx)
			if err != nil {
				return nil, Stats{}, nil, err
			}
			defer release()
		}
		return e.searchParsed(ctx, pq, k)
	}
	key := e.cacheKey(pq, k)
	start := time.Now()
	if v, ok := e.rcache.Lookup(key, e.cacheTag()); ok {
		hits, agg, per := v.(*cachedResult).copyOut()
		agg.ResultCacheHit = true
		agg.Elapsed = time.Since(start)
		return hits, agg, per, nil
	}
	f, leader := e.rcache.Join(key)
	if !leader {
		v, ok, werr := f.Wait(ctx)
		if werr != nil {
			return nil, Stats{}, nil, werr
		}
		if ok {
			e.rcache.NoteCoalesced()
			hits, agg, per := v.(*cachedResult).copyOut()
			agg.SingleFlightShared = true
			agg.Elapsed = time.Since(start)
			return hits, agg, per, nil
		}
		// The leader's outcome wasn't shareable (error, degraded, or a
		// generation moved mid-execution): execute independently.
		return e.executeAndStore(ctx, pq, k, key, nil, gate)
	}
	return e.executeAndStore(ctx, pq, k, key, f, gate)
}

// executeAndStore runs a real backend execution for key: pass the gate,
// execute, then — only for a clean result whose generation tag did not
// move during execution — store it and share it with coalesced
// followers. As single-flight leader (f non-nil) it is obligated to
// Finish on every path, including gate rejection and panics.
func (e *ShardedEngine) executeAndStore(ctx context.Context, pq query.Query, k int, key string, f *core.Flight, gate func(context.Context) (func(), error)) ([]Hit, Stats, []Stats, error) {
	finished := false
	if f != nil {
		defer func() {
			if !finished {
				e.rcache.Finish(key, f, nil, false)
			}
		}()
	}
	if gate != nil {
		release, err := gate(ctx)
		if err != nil {
			return nil, Stats{}, nil, err
		}
		defer release()
	}
	tagBefore := e.cacheTag()
	hits, agg, per, err := e.searchParsed(ctx, pq, k)
	var r *cachedResult
	if err == nil && !agg.Degraded && len(agg.ShardErrors) == 0 {
		// Recompute the tag after execution: if any generation moved while
		// we ran, the result may mix old and new state and must not be
		// remembered under either tag.
		if tag := e.cacheTag(); tag == tagBefore {
			r = &cachedResult{hits: hits, agg: agg, per: per}
			e.rcache.Store(key, tag, r, r.sizeBytes())
		}
	}
	if f != nil {
		finished = true
		if r != nil {
			e.rcache.Finish(key, f, r, true)
		} else {
			e.rcache.Finish(key, f, nil, false)
		}
	}
	if r != nil {
		// The stored slices now belong to the cache; hand back copies.
		h, _, p := r.copyOut()
		return h, agg, p, nil
	}
	return hits, agg, per, err
}

func (e *ShardedEngine) searchParsed(ctx context.Context, pq query.Query, k int) ([]Hit, Stats, []Stats, error) {
	if e.live != nil {
		return e.searchLive(ctx, pq, k)
	}
	res, sum, err := e.cluster.Search(ctx, pq, k)
	if err != nil {
		return nil, Stats{}, nil, err
	}
	hits := make([]Hit, len(res))
	for i, h := range res {
		hits[i] = Hit{
			DocID: int(h.Global),
			Title: sum.Engines[h.Shard].Index().StoredField(h.Local, "title"),
			Score: h.Score,
		}
	}
	agg := convertStats(sum.Agg)
	// The cluster-level wall clock (fan-out + both phases + merge), not
	// the slowest shard's own clock, is what a serving SLO measures.
	agg.Elapsed = sum.Elapsed
	for _, f := range sum.Failed {
		agg.ShardErrors = append(agg.ShardErrors, ShardError{Shard: f.Shard, Kind: f.Kind, Err: f.Err})
	}
	perShard := make([]Stats, len(sum.PerShard))
	for i, st := range sum.PerShard {
		perShard[i] = convertStats(st)
	}
	return hits, agg, perShard, nil
}

// searchLive evaluates a parsed query over the live view — the shard
// slices plus the mutable segment — with the same two-phase rank-safe
// merge the cluster path uses; the extra per-slice report (when the
// segment is non-empty) is appended after the shards'.
func (e *ShardedEngine) searchLive(ctx context.Context, pq query.Query, k int) ([]Hit, Stats, []Stats, error) {
	start := time.Now()
	res, per, view, err := e.live.Search(ctx, pq, k)
	if err != nil {
		return nil, Stats{}, nil, err
	}
	hits := make([]Hit, len(res))
	for i, h := range res {
		hits[i] = Hit{
			DocID: int(h.Global),
			Title: view.Slices[h.Slice].Eng.Index().StoredField(h.Local, "title"),
			Score: h.Score,
		}
	}
	agg := convertStats(core.MergeStats(per...))
	agg.Elapsed = time.Since(start)
	perSlice := make([]Stats, len(per))
	for i, st := range per {
		perSlice[i] = convertStats(st)
	}
	return hits, agg, perSlice, nil
}

// NumShards returns the number of document partitions.
func (e *ShardedEngine) NumShards() int { return e.cluster.NumShards() }

// NumDocs returns the logical collection size across all shards,
// including live documents not yet compacted.
func (e *ShardedEngine) NumDocs() int {
	if e.live != nil {
		return e.live.NumDocs()
	}
	return e.cluster.NumDocs()
}

// NumViews returns the total number of materialized views across all
// shards (0 when views are disabled).
func (e *ShardedEngine) NumViews() int {
	total := 0
	for i := 0; i < e.cluster.NumShards(); i++ {
		eng, _ := e.cluster.Engine(i)
		if cat := eng.Catalog(); cat != nil {
			total += cat.Len()
		}
	}
	return total
}

// Generations returns each shard's current serving generation.
func (e *ShardedEngine) Generations() []uint64 { return e.cluster.Generations() }

// ShardHealth is one shard's entry in a ClusterHealth report. The JSON
// tags are the wire format cmd/csserve's /healthz uses.
type ShardHealth struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Generation is the shard's current serving generation.
	Generation uint64 `json:"generation"`
	// State is the shard's circuit-breaker state: "closed" (healthy),
	// "open" (shedding), or "half-open" (probing recovery).
	State string `json:"state"`
	// ConsecutiveFailures counts failures since the last success while
	// closed.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Trips counts closed→open transitions over the breaker's lifetime.
	Trips int64 `json:"trips"`
	// Recoveries counts half-open→closed transitions.
	Recoveries int64 `json:"recoveries"`
	// RetryInMs is how long until an open breaker probes again (0 unless
	// open).
	RetryInMs int64 `json:"retry_in_ms"`
}

// ClusterHealth reports the cluster's serving health: per-shard breaker
// states, how many shards admission would accept a query for right now,
// the policy floor, and the corrupt-block quarantine count.
type ClusterHealth struct {
	NumShards         int           `json:"num_shards"`
	AvailableShards   int           `json:"available_shards"`
	MinShards         int           `json:"min_shards"`
	QuarantinedBlocks int64         `json:"quarantined_blocks"`
	Shards            []ShardHealth `json:"shards"`
}

// Healthy reports whether the cluster can currently serve within
// policy: at least max(1, MinShards) shards available.
func (h ClusterHealth) Healthy() bool {
	min := h.MinShards
	if min < 1 {
		min = 1
	}
	return h.AvailableShards >= min
}

// Health snapshots the cluster's serving health without mutating any
// breaker state.
func (e *ShardedEngine) Health() ClusterHealth {
	ch := e.cluster.Health()
	pol := e.cluster.Policy()
	out := ClusterHealth{
		NumShards:         ch.NumShards,
		AvailableShards:   ch.Available,
		MinShards:         pol.MinShards,
		QuarantinedBlocks: e.cluster.Quarantined(),
		Shards:            make([]ShardHealth, len(ch.Shards)),
	}
	for i, s := range ch.Shards {
		out.Shards[i] = ShardHealth{
			Shard:               s.Shard,
			Generation:          s.Generation,
			State:               string(s.State),
			ConsecutiveFailures: s.ConsecutiveFailures,
			Trips:               s.Trips,
			Recoveries:          s.Recoveries,
			RetryInMs:           s.RetryIn.Milliseconds(),
		}
	}
	return out
}

// CanServe reports whether a query would currently be admitted: at
// least max(1, MinShards) shards have a closed (or probing-ready)
// circuit breaker. Serving front ends use it to shed before paying for
// a doomed fan-out.
func (e *ShardedEngine) CanServe() bool { return e.cluster.CanServe() }

// QuarantinedBlocks returns the total corrupt blocks quarantined across
// all shards (always 0 for heap-resident indexes).
func (e *ShardedEngine) QuarantinedBlocks() int64 { return e.cluster.Quarantined() }

// ArmFault injects a chaos fault into one shard's query execution until
// disarmed: delay stalls each phase (a delay past ShardTimeout
// manifests as a shard timeout), panicFault crashes the shard's worker,
// corrupt simulates a corrupt-block read escaping decode. A chaos-drill
// and test seam — never arm it on a production cluster.
func (e *ShardedEngine) ArmFault(s int, delay time.Duration, panicFault, corrupt bool) error {
	return e.cluster.ArmFault(s, shard.Fault{Delay: delay, Panic: panicFault, Corrupt: corrupt})
}

// DisarmFaults removes every armed chaos fault.
func (e *ShardedEngine) DisarmFaults() { e.cluster.DisarmFaults() }

// SelectionTime returns the total per-shard view selection and
// materialization time during BuildSharded (zero for loaded engines).
func (e *ShardedEngine) SelectionTime() time.Duration { return e.selectTime }

// ResultCacheStats is a counter snapshot of the serving-layer result
// cache. The JSON tags are the wire format cmd/csserve's /statsz uses.
type ResultCacheStats struct {
	// Entries and Bytes describe the resident population; Budget is the
	// configured byte bound.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	Budget  int64 `json:"budget"`
	// Hits and Misses count lookups; Stores counts insertions and
	// overwrites.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Stores int64 `json:"stores"`
	// Evictions counts byte-pressure removals; Invalidations counts
	// entries dropped because an input generation moved.
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	// Coalesced counts followers served by another query's execution.
	Coalesced int64 `json:"coalesced"`
}

// ResultCacheStats snapshots the result cache (zeros when disabled).
func (e *ShardedEngine) ResultCacheStats() ResultCacheStats {
	st := e.rcache.Stats()
	return ResultCacheStats{
		Entries:       st.Entries,
		Bytes:         st.Bytes,
		Budget:        st.Budget,
		Hits:          st.Hits,
		Misses:        st.Misses,
		Stores:        st.Stores,
		Evictions:     st.Evictions,
		Invalidations: st.Invalidations,
		Coalesced:     st.Coalesced,
	}
}

// BlockCacheStats is a counter snapshot of the decoded-block caches
// under this engine, summed across shards (all zeros for heap-resident
// indexes, which do not bound decoded blocks). The JSON tags are the
// wire format cmd/csserve's /statsz uses.
type BlockCacheStats struct {
	Budget     int64 `json:"budget"`
	Used       int64 `json:"used"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Insertions int64 `json:"insertions"`
	Evictions  int64 `json:"evictions"`
	// Promotions counts probationary blocks that graduated to the main
	// queue on reuse; GhostHits counts re-decoded blocks recognized by
	// the ghost list (the S3-FIFO signals; see internal/postings).
	Promotions int64 `json:"promotions"`
	GhostHits  int64 `json:"ghost_hits"`
}

// BlockCacheStats sums the per-shard decoded-block cache counters.
func (e *ShardedEngine) BlockCacheStats() BlockCacheStats {
	var out BlockCacheStats
	add := func(cs postings.BlockCacheStats) {
		out.Budget += cs.Budget
		out.Used += cs.Used
		out.Hits += cs.Hits
		out.Misses += cs.Misses
		out.Insertions += cs.Insertions
		out.Evictions += cs.Evictions
		out.Promotions += cs.Promotions
		out.GhostHits += cs.GhostHits
	}
	if e.live != nil {
		for _, sl := range e.live.View().Slices {
			add(sl.Eng.Index().BlockCacheStats())
		}
		return out
	}
	for i := 0; i < e.cluster.NumShards(); i++ {
		eng, _ := e.cluster.Engine(i)
		add(eng.Index().BlockCacheStats())
	}
	return out
}
