package csrank

import (
	"fmt"
	"testing"
)

// buildDemo builds the motivating-example collection through the public
// API.
func buildDemo(t *testing.T, opts BuildOptions) *Engine {
	t.Helper()
	b := NewBuilder()
	b.Add(Document{
		Title:      "Complications following pancreas transplant",
		Body:       "pancreas pancreas transplant complications leukemia",
		Predicates: []string{"digestive_system"},
	})
	b.Add(Document{
		Title:      "Organ failure in patients with acute leukemia",
		Body:       "leukemia leukemia organ failure pancreas",
		Predicates: []string{"digestive_system"},
	})
	for i := 0; i < 400; i++ {
		b.Add(Document{
			Title:      fmt.Sprintf("Leukemia cohort study %d", i),
			Body:       "leukemia lymphoma tumor outcomes",
			Predicates: []string{"neoplasms"},
		})
	}
	for i := 0; i < 200; i++ {
		body := "pancreas liver gastric surgery"
		if i < 4 {
			body += " leukemia"
		}
		b.Add(Document{
			Title:      fmt.Sprintf("Digestive surgery outcomes %d", i),
			Body:       body,
			Predicates: []string{"digestive_system"},
		})
	}
	if b.Len() != 602 {
		t.Fatalf("builder len = %d", b.Len())
	}
	e, err := b.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPublicAPIRankReversal(t *testing.T) {
	e := buildDemo(t, BuildOptions{})
	if e.NumDocs() != 602 {
		t.Fatalf("NumDocs = %d", e.NumDocs())
	}
	if e.NumViews() == 0 {
		t.Fatal("no views materialized")
	}
	q := "pancreas leukemia | digestive_system"

	conv, convSt, err := e.SearchConventional(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, ctxSt, err := e.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if convSt.Plan != "conventional" {
		t.Errorf("conv plan = %s", convSt.Plan)
	}
	if ctxSt.Plan != "view" || !ctxSt.UsedView {
		t.Errorf("ctx stats = %+v, want view plan", ctxSt)
	}
	if conv[0].DocID != 0 {
		t.Errorf("conventional top = %+v, want the pancreas citation", conv[0])
	}
	if ctx[0].DocID != 1 {
		t.Errorf("context-sensitive top = %+v, want the leukemia citation", ctx[0])
	}
	if ctx[0].Title == "" {
		t.Error("hit title not populated")
	}
	if ctxSt.ContextSize != 202 {
		t.Errorf("ContextSize = %d", ctxSt.ContextSize)
	}
}

func TestPublicAPIScorers(t *testing.T) {
	for _, s := range []Scorer{PivotedTFIDF, BM25, DirichletLM} {
		e := buildDemo(t, BuildOptions{Scorer: s, DisableViews: true})
		hits, _, err := e.Search("leukemia | neoplasms", 3)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if len(hits) != 3 {
			t.Fatalf("%s: hits = %d", s, len(hits))
		}
	}
	b := NewBuilder()
	b.Add(Document{Title: "x", Body: "y"})
	if _, err := b.Build(BuildOptions{Scorer: "nope"}); err == nil {
		t.Error("unknown scorer accepted")
	}
}

func TestPublicAPIDisableViews(t *testing.T) {
	e := buildDemo(t, BuildOptions{DisableViews: true})
	if e.NumViews() != 0 {
		t.Fatal("views materialized despite DisableViews")
	}
	_, st, err := e.Search("pancreas leukemia | digestive_system", 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Plan != "straightforward" {
		t.Errorf("plan = %s", st.Plan)
	}
}

func TestPublicAPIStraightforwardAgreesWithView(t *testing.T) {
	e := buildDemo(t, BuildOptions{})
	q := "pancreas leukemia | digestive_system"
	a, _, err := e.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := e.SearchStraightforward(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPublicAPIParseErrors(t *testing.T) {
	e := buildDemo(t, BuildOptions{DisableViews: true})
	for _, q := range []string{"", "| ctx", "a | b | c"} {
		if _, _, err := e.Search(q, 5); err == nil {
			t.Errorf("Search(%q) accepted", q)
		}
		if _, _, err := e.SearchConventional(q, 5); err == nil {
			t.Errorf("SearchConventional(%q) accepted", q)
		}
		if _, _, err := e.SearchStraightforward(q, 5); err == nil {
			t.Errorf("SearchStraightforward(%q) accepted", q)
		}
	}
}

func TestPublicAPIContextSize(t *testing.T) {
	e := buildDemo(t, BuildOptions{})
	if got := e.ContextSize("digestive_system"); got != 202 {
		t.Errorf("ContextSize = %d", got)
	}
	if got := e.ContextSize("digestive_system neoplasms"); got != 0 {
		t.Errorf("disjoint ContextSize = %d", got)
	}
}

func TestPublicAPISaveOpen(t *testing.T) {
	e := buildDemo(t, BuildOptions{})
	dir := t.TempDir()
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Open(dir, PivotedTFIDF)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != e.NumDocs() || got.NumViews() != e.NumViews() {
		t.Fatalf("reloaded engine: docs %d views %d", got.NumDocs(), got.NumViews())
	}
	q := "pancreas leukemia | digestive_system"
	want, _, err := e.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	hits, st, err := got.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !st.UsedView {
		t.Error("reloaded engine did not use views")
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("rank %d differs after reload: %+v vs %+v", i, hits[i], want[i])
		}
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(t.TempDir(), PivotedTFIDF); err == nil {
		t.Error("Open of empty dir succeeded")
	}
}

func TestOpenWithoutViews(t *testing.T) {
	e := buildDemo(t, BuildOptions{DisableViews: true})
	dir := t.TempDir()
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Open(dir, BM25)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumViews() != 0 {
		t.Error("phantom views after reload")
	}
	if _, _, err := got.Search("leukemia", 3); err != nil {
		t.Fatal(err)
	}
}

func TestSelectionTimeReported(t *testing.T) {
	e := buildDemo(t, BuildOptions{})
	if e.SelectionTime() <= 0 {
		t.Error("SelectionTime not recorded")
	}
	e2 := buildDemo(t, BuildOptions{DisableViews: true})
	if e2.SelectionTime() != 0 {
		t.Error("SelectionTime should be zero without views")
	}
}

func TestPublicAPICacheAndCostOptions(t *testing.T) {
	e := buildDemo(t, BuildOptions{CacheContexts: 8, CostBasedPlanning: true})
	q := "pancreas leukemia | digestive_system"
	_, st1, err := e.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHit {
		t.Error("first query hit the cache")
	}
	hits2, st2, err := e.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Error("second query missed the cache")
	}
	want, _, err := buildDemo(t, BuildOptions{}).Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if hits2[i].DocID != want[i].DocID {
			t.Fatalf("rank %d differs with cache+cost options", i)
		}
	}
}

func TestPublicAPIExplain(t *testing.T) {
	e := buildDemo(t, BuildOptions{})
	out, err := e.Explain("pancreas leukemia | digestive_system")
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty explanation")
	}
	if _, err := e.Explain("a | b | c"); err == nil {
		t.Error("unparseable query accepted")
	}
	out, err = e.Explain("leukemia")
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Error("empty explanation for conventional query")
	}
}
