package csrank

// Benchmark harness: one bench per table/figure of the paper's §6
// evaluation, plus micro-benchmarks for the §3.2 cost model and ablations
// for the design choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// The shared experimental system (corpus + index + selected views) is
// built once per process.

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"csrank/internal/core"
	"csrank/internal/corpus"
	"csrank/internal/experiments"
	"csrank/internal/index"
	"csrank/internal/mining"
	"csrank/internal/postings"
	"csrank/internal/query"
	"csrank/internal/ranking"
	"csrank/internal/selection"
	"csrank/internal/views"
)

var (
	benchOnce  sync.Once
	benchSetup *experiments.Setup
	benchErr   error
)

func getBenchSetup(b *testing.B) *experiments.Setup {
	b.Helper()
	benchOnce.Do(func() {
		scale := experiments.DefaultScale()
		scale.NumDocs = 12000
		scale.OntologyTerms = 250
		scale.NumTopics = 30
		scale.TCFraction = 0.015
		benchSetup, benchErr = experiments.NewSetup(scale)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSetup
}

// benchWorkload caches the Figure 7/8 query workloads.
var (
	workloadOnce  sync.Once
	largeWorkload experiments.Workload
	smallWorkload experiments.Workload
)

func getWorkloads(b *testing.B) (large, small experiments.Workload) {
	s := getBenchSetup(b)
	workloadOnce.Do(func() {
		largeWorkload = experiments.GenerateWorkload(s, 25, s.Scale.TC(), int64(s.Scale.NumDocs)+1, 42)
		smallWorkload = experiments.GenerateWorkload(s, 25, 1, s.Scale.TC(), 43)
	})
	return largeWorkload, smallWorkload
}

// BenchmarkFig6RankingQuality regenerates Figure 6: both rankings of the
// full 30-topic benchmark, reporting the headline means as metrics.
func BenchmarkFig6RankingQuality(b *testing.B) {
	s := getBenchSetup(b)
	var r experiments.Fig6Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.RunFig6(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ConvSummary.MeanPrecision, "conv-P@20")
	b.ReportMetric(r.CtxSummary.MeanPrecision, "ctx-P@20")
	b.ReportMetric(r.ConvSummary.MRR, "conv-MRR")
	b.ReportMetric(r.CtxSummary.MRR, "ctx-MRR")
	b.ReportMetric(float64(r.CtxWinsP20), "ctx-wins")
}

// runQueryBench measures one evaluation strategy over a workload bucket.
func runQueryBench(b *testing.B, qs []query.Query, eng *core.Engine,
	search func(query.Query, int) ([]core.Result, core.ExecStats, error)) {
	if len(qs) == 0 {
		b.Skip("workload bucket empty at this scale")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		if _, _, err := search(q, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7LargeContext regenerates Figure 7: large-context queries
// under the three strategies, per keyword count.
func BenchmarkFig7LargeContext(b *testing.B) {
	s := getBenchSetup(b)
	large, _ := getWorkloads(b)
	for n := 2; n <= 5; n++ {
		qs := large.ByKeywords[n]
		b.Run(fmt.Sprintf("conventional/kw=%d", n), func(b *testing.B) {
			runQueryBench(b, qs, s.WithViews, s.WithViews.SearchConventional)
		})
		b.Run(fmt.Sprintf("views/kw=%d", n), func(b *testing.B) {
			runQueryBench(b, qs, s.WithViews, s.WithViews.SearchContextSensitive)
		})
		b.Run(fmt.Sprintf("straightforward/kw=%d", n), func(b *testing.B) {
			runQueryBench(b, qs, s.NoViews, s.NoViews.SearchStraightforward)
		})
	}
}

// BenchmarkFig8SmallContext regenerates Figure 8: small-context queries,
// conventional vs straightforward.
func BenchmarkFig8SmallContext(b *testing.B) {
	s := getBenchSetup(b)
	_, small := getWorkloads(b)
	for n := 2; n <= 5; n++ {
		qs := small.ByKeywords[n]
		b.Run(fmt.Sprintf("conventional/kw=%d", n), func(b *testing.B) {
			runQueryBench(b, qs, s.WithViews, s.WithViews.SearchConventional)
		})
		b.Run(fmt.Sprintf("straightforward/kw=%d", n), func(b *testing.B) {
			runQueryBench(b, qs, s.NoViews, s.NoViews.SearchStraightforward)
		})
	}
}

// BenchmarkViewSelection regenerates the §6.2 selection comparison: the
// cost of each selection algorithm at the experiment thresholds.
func BenchmarkViewSelection(b *testing.B) {
	s := getBenchSetup(b)
	cfg := selection.Config{TC: s.Scale.TC(), TV: s.Scale.TV, Seed: 1}
	terms := selection.FrequentPredicateTerms(s.Index, cfg.TC)

	b.Run("mining-apriori", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := selection.DataMiningBased(s.Table, terms, cfg, mining.Apriori); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mining-fpgrowth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := selection.DataMiningBased(s.Table, terms, cfg, mining.FPGrowth); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mining-eclat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := selection.DataMiningBased(s.Table, terms, cfg, mining.Eclat); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("graph-decomposition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			selection.GraphDecompositionBased(s.Index, s.Table, terms, cfg)
		}
	})
	b.Run("hybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := selection.Hybrid(s.Index, s.Table, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStorageAccounting regenerates the §6.2 storage table and
// reports its headline numbers as metrics.
func BenchmarkStorageAccounting(b *testing.B) {
	s := getBenchSetup(b)
	var r experiments.StorageReport
	for i := 0; i < b.N; i++ {
		r = experiments.RunStorage(s)
	}
	b.ReportMetric(float64(r.Views), "views")
	b.ReportMetric(float64(r.TotalViewBytes)/(1<<20), "view-MB")
	b.ReportMetric(float64(r.IndexBytes)/(1<<20), "index-MB")
	b.ReportMetric(r.MeanViewSize, "mean-tuples")
}

// --- §3.2 cost-model micro-benchmarks ---------------------------------

func randomList(rng *rand.Rand, n int, max uint32, seg int) *postings.List {
	seen := make(map[uint32]bool, n)
	for len(seen) < n {
		seen[rng.Uint32()%max] = true
	}
	ids := make([]uint32, 0, n)
	for id := range seen {
		ids = append(ids, id)
	}
	sortUint32(ids)
	ps := make([]postings.Posting, len(ids))
	for i, id := range ids {
		ps[i] = postings.Posting{DocID: id, TF: uint32(1 + rng.Intn(5))}
	}
	return postings.NewList(ps, seg)
}

func sortUint32(ids []uint32) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// BenchmarkIntersection compares the skip-pointer intersection against
// the plain merge, in the regime where skips pay (|L_i| ≪ |L_j|) and
// where they cannot (similar lengths).
func BenchmarkIntersection(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	long := randomList(rng, 200000, 1<<24, postings.DefaultSegmentSize)
	short := randomList(rng, 200, 1<<24, postings.DefaultSegmentSize)
	similar := randomList(rng, 180000, 1<<24, postings.DefaultSegmentSize)

	b.Run("skip/selective", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			postings.Intersect([]*postings.List{short, long}, nil)
		}
	})
	b.Run("merge/selective", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			postings.MergeIntersect(short, long, nil)
		}
	})
	b.Run("skip/similar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			postings.Intersect([]*postings.List{similar, long}, nil)
		}
	})
	b.Run("merge/similar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			postings.MergeIntersect(similar, long, nil)
		}
	})
}

// --- Ablations ---------------------------------------------------------

// BenchmarkAblationSegmentSize sweeps M0: small segments skip more
// precisely but carry more skip entries.
func BenchmarkAblationSegmentSize(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, m0 := range []int{16, 64, 128, 512, 2048} {
		long := randomList(rng, 200000, 1<<24, m0)
		short := randomList(rng, 300, 1<<24, m0)
		b.Run(fmt.Sprintf("M0=%d", m0), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				postings.Intersect([]*postings.List{short, long}, nil)
			}
		})
	}
}

// BenchmarkAblationViewMatch compares the minimal-size view-matching
// policy (§6.3: "the view with the minimal size is picked") against
// taking any usable view.
func BenchmarkAblationViewMatch(b *testing.B) {
	s := getBenchSetup(b)
	large, _ := getWorkloads(b)
	var contexts [][]string
	for n := 2; n <= 5; n++ {
		for _, q := range large.ByKeywords[n] {
			contexts = append(contexts, q.NormalizedContext())
		}
	}
	if len(contexts) == 0 {
		b.Skip("no large contexts")
	}
	b.Run("minimal-size", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := contexts[i%len(contexts)]
			if v := s.Catalog.Match(ctx); v != nil {
				if _, err := v.Answer(ctx, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("first-usable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := contexts[i%len(contexts)]
			if v := s.Catalog.MatchFirst(ctx); v != nil {
				if _, err := v.Answer(ctx, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationDFColumns compares the §6.2 storage optimization
// (df/tc columns only for frequent keywords, rare ones computed at query
// time) against tracking every query keyword, measuring the query-time
// price of the fallback.
func BenchmarkAblationDFColumns(b *testing.B) {
	s := getBenchSetup(b)
	large, _ := getWorkloads(b)
	qs := large.ByKeywords[2]
	if len(qs) == 0 {
		b.Skip("no large contexts")
	}
	// Build two single-view catalogs over the same K: one tracking all
	// query keywords, one tracking none (every keyword falls back).
	ctx := qs[0].NormalizedContext()
	an := s.Index.AnalyzerFor("content")
	var words []string
	for _, q := range qs {
		for _, kw := range q.Keywords {
			words = append(words, an.Analyze(kw)...)
		}
	}
	full, err := views.Materialize(s.Table, ctx, words)
	if err != nil {
		b.Fatal(err)
	}
	bare, err := views.Materialize(s.Table, ctx, nil)
	if err != nil {
		b.Fatal(err)
	}
	q := qs[0]
	engFull := core.New(s.Index, views.NewCatalog([]*views.View{full}, s.Scale.TC(), s.Scale.TV), core.Options{Parallelism: 1})
	engBare := core.New(s.Index, views.NewCatalog([]*views.View{bare}, s.Scale.TC(), s.Scale.TV), core.Options{Parallelism: 1})
	b.Run("tracked-df-columns", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := engFull.SearchContextSensitive(q, 20); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fallback-intersections", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := engBare.SearchContextSensitive(q, 20); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScorerComparison regenerates the scorer-sensitivity extension
// experiment (every ranking model under both statistics sources).
func BenchmarkScorerComparison(b *testing.B) {
	s := getBenchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunScorerComparison(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViewMaintenance measures incremental Apply/Remove throughput
// across the whole catalog — the per-document ingestion cost.
func BenchmarkViewMaintenance(b *testing.B) {
	s := getBenchSetup(b)
	terms := selection.FrequentPredicateTerms(s.Index, s.Scale.TC())
	if len(terms) < 3 {
		b.Skip("too few frequent terms")
	}
	u := views.DocUpdate{
		Predicates: terms[:3],
		Len:        120,
		TF:         map[string]int64{"disease": 2, "organ": 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Catalog.Apply(u)
		s.Catalog.Remove(u)
	}
}

// BenchmarkAblationStatsCache measures the statistics cache: repeated
// same-context queries with and without memoized S_c(D_P).
func BenchmarkAblationStatsCache(b *testing.B) {
	s := getBenchSetup(b)
	large, _ := getWorkloads(b)
	qs := large.ByKeywords[3]
	if len(qs) == 0 {
		b.Skip("no large contexts")
	}
	q := qs[0]
	plain := core.New(s.Index, s.Catalog, core.Options{Parallelism: 1})
	cached := core.New(s.Index, s.Catalog, core.Options{Parallelism: 1, CacheContexts: 64})
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := plain.SearchContextSensitive(q, 20); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cached.SearchContextSensitive(q, 20); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkConcurrentThroughput measures multi-goroutine query throughput
// over the mixed large-context workload (the engine is safe for
// concurrent use).
func BenchmarkConcurrentThroughput(b *testing.B) {
	s := getBenchSetup(b)
	large, _ := getWorkloads(b)
	var qs []query.Query
	for n := 2; n <= 5; n++ {
		qs = append(qs, large.ByKeywords[n]...)
	}
	if len(qs) == 0 {
		b.Skip("no workload")
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := qs[i%len(qs)]
			i++
			if _, _, err := s.WithViews.SearchContextSensitive(q, 20); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelSearch measures intra-query parallelism over the
// Figure 7 large-context workload: the same queries at increasing
// Options.Parallelism, for the straightforward plan (dominated by the
// per-keyword statistics intersections the worker pool fans out) and the
// view plan. Speedup requires GOMAXPROCS > 1; on a single-CPU host every
// worker count collapses onto one core and only the coordination
// overhead is visible.
func BenchmarkParallelSearch(b *testing.B) {
	s := getBenchSetup(b)
	large, _ := getWorkloads(b)
	var qs []query.Query
	for n := 2; n <= 5; n++ {
		qs = append(qs, large.ByKeywords[n]...)
	}
	if len(qs) == 0 {
		b.Skip("no workload")
	}
	counts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		counts = append(counts, g)
	}
	for _, p := range counts {
		straight := core.New(s.Index, nil, core.Options{Parallelism: p})
		viewed := core.New(s.Index, s.Catalog, core.Options{Parallelism: p})
		b.Run(fmt.Sprintf("straightforward/workers=%d", p), func(b *testing.B) {
			runQueryBench(b, qs, straight, straight.SearchStraightforward)
		})
		b.Run(fmt.Sprintf("views/workers=%d", p), func(b *testing.B) {
			runQueryBench(b, qs, viewed, viewed.SearchContextSensitive)
		})
	}
}

// BenchmarkScoreHotPath isolates the per-document scoring loop: the
// legacy path writes a map[string]int64 per document and the scorer reads
// it back by key; the term-indexed path fills a reused []int64 and the
// scorer walks parallel slices. Same formula, same floating-point order,
// zero map operations and zero allocations on the indexed path.
func BenchmarkScoreHotPath(b *testing.B) {
	const nDocs = 4096
	terms := []string{"pancreas", "leukemia", "transplant", "outcome"}
	qs := ranking.NewQueryStats(terms)
	cs := ranking.CollectionStats{
		N:        100000,
		TotalLen: 12000000,
		DF:       map[string]int64{"pancreas": 900, "leukemia": 1400, "transplant": 300, "outcome": 5200},
		TC:       map[string]int64{"pancreas": 2100, "leukemia": 3300, "transplant": 410, "outcome": 9800},
	}
	rng := rand.New(rand.NewSource(17))
	tfs := make([][]int64, nDocs)
	lens := make([]int64, nDocs)
	for i := range tfs {
		row := make([]int64, len(terms))
		for j := range row {
			row[j] = int64(rng.Intn(6)) // 0 is common: conjunctive TFs vary
		}
		tfs[i] = row
		lens[i] = int64(40 + rng.Intn(400))
	}
	scorer := ranking.NewPivotedTFIDF()
	var sink float64

	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		tf := make(map[string]int64, len(terms))
		for i := 0; i < b.N; i++ {
			d := i % nDocs
			for j, w := range terms {
				tf[w] = tfs[d][j]
			}
			ds := ranking.DocStats{TF: tf, Len: lens[d]}
			sink += scorer.Score(qs, ds, cs)
		}
	})
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		ics := cs
		ics.IndexTerms(terms)
		tf := make([]int64, len(terms))
		for i := 0; i < b.N; i++ {
			d := i % nDocs
			copy(tf, tfs[d])
			ds := ranking.DocStats{TFs: tf, Len: lens[d]}
			sink += scorer.ScoreIndexed(qs, ds, ics)
		}
	})
	_ = sink
}

// --- Block-max dynamic pruning ---------------------------------------

var (
	prunedBenchOnce sync.Once
	prunedBenchIx   *index.Index
	prunedBenchErr  error
)

// getPrunedBenchIndex builds a 140k-document corpus spanning three
// posting-list containers, once per process. "alpha" is a broad keyword
// (half the collection, zipf-ish tf 1..20, tf 1 only in the last
// container), "beta" moderate; ctx_broad covers 80% of documents and
// ctx_sel ~6%. Every document has the same analyzed length, so scores
// vary with tf alone and the bound ceilings are tight.
func getPrunedBenchIndex(b *testing.B) *index.Index {
	b.Helper()
	prunedBenchOnce.Do(func() {
		const nDocs = 140000
		const docLen = 40
		pads := []string{"pada", "padb", "padc", "padd", "pade", "padf"}
		docs := make([]index.Document, nDocs)
		var sb strings.Builder
		for i := range docs {
			sb.Reset()
			ta, tb := 0, 0
			if i%2 == 0 {
				ta = 1
				if i < 120000 {
					ta = 1 + int((uint32(i)*2654435761)>>20)%20
				}
			}
			if i%5 == 0 {
				tb = 1 + i%7
			}
			for j := 0; j < ta; j++ {
				sb.WriteString("alpha ")
			}
			for j := 0; j < tb; j++ {
				sb.WriteString("beta ")
			}
			for j := ta + tb; j < docLen; j++ {
				sb.WriteString(pads[(i+j)%len(pads)])
				sb.WriteByte(' ')
			}
			mesh := "ctx_other"
			if i%5 != 0 {
				mesh = "ctx_broad"
			}
			if i%16 == 0 {
				mesh += " ctx_sel"
			}
			docs[i] = index.Document{Fields: map[string]string{
				"title": fmt.Sprintf("d%d", i), "content": sb.String(), "mesh": mesh,
			}}
		}
		prunedBenchIx, prunedBenchErr = index.BuildFrom(corpus.Schema(), 0, docs)
	})
	if prunedBenchErr != nil {
		b.Fatal(prunedBenchErr)
	}
	return prunedBenchIx
}

// BenchmarkPrunedSearch measures block-max dynamic pruning against
// exhaustive scoring on identical queries: every scorer, k ∈ {10, 100},
// a broad single-keyword contextual query (56k-document conjunction —
// the case the pruned path must win by ≥2x at k=10) and a selective
// two-keyword one (1.8k documents — the case pruning can barely help).
// Rankings are bit-identical either way (TestPrunedBitIdenticalToExhaustive);
// allocation deltas also show the pooled scoring scratch at work.
func BenchmarkPrunedSearch(b *testing.B) {
	ix := getPrunedBenchIndex(b)
	queries := []struct{ label, q string }{
		{"broad", "alpha | ctx_broad"},
		{"selective", "alpha beta | ctx_sel"},
	}
	scorers := []ranking.Scorer{
		ranking.NewPivotedTFIDF(),
		ranking.NewBM25(),
		ranking.NewDirichletLM(),
		ranking.NewCosineTFIDF(),
		ranking.NewJelinekMercerLM(),
	}
	for _, sc := range scorers {
		for _, qc := range queries {
			q := query.MustParse(qc.q)
			for _, k := range []int{10, 100} {
				for _, pruned := range []bool{false, true} {
					mode := "exhaustive"
					if pruned {
						mode = "pruned"
					}
					name := fmt.Sprintf("%s/%s/k=%d/%s", sc.Name(), qc.label, k, mode)
					b.Run(name, func(b *testing.B) {
						e := core.New(ix, nil, core.Options{Parallelism: 1, Scorer: sc, Pruning: pruned})
						b.ReportAllocs()
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							if _, _, err := e.SearchContextSensitive(q, k); err != nil {
								b.Fatal(err)
							}
						}
					})
				}
			}
		}
	}
}

// stridedList builds a list of n docIDs start, start+stride, … — at
// stride ≤ 16 each 2^16 range holds ≥ 4096 entries, so the adaptive
// layer stores it as bitset chunks.
func stridedList(start, stride uint32, n int) *postings.List {
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = start + uint32(i)*stride
	}
	return postings.FromDocIDs(ids, postings.DefaultSegmentSize)
}

// BenchmarkIntersect measures the adaptive-container intersection
// kernels on the list shapes that dominate context evaluation: count-only
// conjunctions of dense predicate lists (word-AND + popcount), a sparse
// keyword list against a dense context (galloping probes), the
// materializing path, and the k-way union.
func BenchmarkIntersect(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	denseA := stridedList(0, 3, 500000)  // 1/3 of docs up to 1.5M
	denseB := stridedList(0, 4, 375000)  // 1/4
	denseC := stridedList(0, 5, 300000)  // 1/5
	sparse := randomList(rng, 2000, 1500000, postings.DefaultSegmentSize)
	var sink int64

	b.Run("count/dense-dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += postings.IntersectionSize([]*postings.List{denseA, denseB}, nil)
		}
	})
	b.Run("count/sparse-dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += postings.IntersectionSize([]*postings.List{sparse, denseA}, nil)
		}
	})
	b.Run("count/three-way-dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += postings.IntersectionSize([]*postings.List{denseA, denseB, denseC}, nil)
		}
	})
	b.Run("materialize/dense-dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := postings.Intersect([]*postings.List{denseA, denseB}, nil)
			sink += int64(r.Len())
		}
	})
	b.Run("union/k-way", func(b *testing.B) {
		b.ReportAllocs()
		rng := rand.New(rand.NewSource(13))
		lists := make([]*postings.List, 12)
		for i := range lists {
			lists[i] = randomList(rng, 20000, 1500000, postings.DefaultSegmentSize)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink += int64(postings.Union(lists, nil).Len())
		}
	})
	_ = sink
}

// BenchmarkContextStats measures the §3.2.1 statistics computations on a
// large context: γ_count/γ_sum over two dense predicate lists (CountSum)
// and a keyword's df/tc against that context (CountTFSum) — the two
// aggregations statsStraightforward runs per query.
func BenchmarkContextStats(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ctx := []*postings.List{stridedList(0, 3, 500000), stridedList(0, 4, 375000)}
	kw := randomList(rng, 3000, 1500000, postings.DefaultSegmentSize)
	param := func(d uint32) int64 { return int64(d%300) + 40 }
	var sink int64

	b.Run("count-sum", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, s := postings.CountSum(ctx, param, nil)
			sink += c + s
		}
	})
	b.Run("keyword-df-tc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			df, tc := postings.CountTFSum(kw, ctx, nil)
			sink += df + tc
		}
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, s := postings.CountSum(ctx, param, nil)
			df, tc := postings.CountTFSum(kw, ctx, nil)
			sink += c + s + df + tc
		}
	})
	_ = sink
}

// BenchmarkCodec measures the compressed-persistence codec.
func BenchmarkCodec(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	l := randomList(rng, 100000, 1<<22, postings.DefaultSegmentSize)
	ps := l.Postings()
	data := postings.EncodePostings(ps)
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(ps) * 8))
		for i := 0; i < b.N; i++ {
			postings.EncodePostings(ps)
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(ps) * 8))
		for i := 0; i < b.N; i++ {
			if _, err := postings.DecodePostings(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkResultCache measures the serving-layer result cache: the
// cost of a cached hit (key build + tag build + lookup + slice copies)
// against re-executing the identical query through the full two-phase
// scatter-gather, on the same 4-shard engine.
func BenchmarkResultCache(b *testing.B) {
	build := func(cached bool) *ShardedEngine {
		opts := BuildOptions{}
		if cached {
			opts.Cache = CacheOptions{ResultBytes: 64 << 20}
		}
		bl := NewBuilder()
		rebuildDemoDocs(bl)
		se, err := bl.BuildSharded(4, opts)
		if err != nil {
			b.Fatal(err)
		}
		return se
	}
	const q = "pancreas leukemia | digestive_system"
	b.Run("hit", func(b *testing.B) {
		se := build(true)
		if _, _, err := se.Search(q, 10); err != nil { // warm the entry
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, st, err := se.Search(q, 10)
			if err != nil {
				b.Fatal(err)
			}
			if !st.ResultCacheHit {
				b.Fatal("miss on a warmed cache")
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		se := build(false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := se.Search(q, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}
