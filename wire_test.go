package csrank

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// TestHitJSONRoundTrip and TestStatsJSONRoundTrip pin the public wire
// types: every field must survive Marshal → Unmarshal bit-for-bit.
// These types are csserve's response schema, so a field whose tag
// collides, or that is dropped by an accidental unexported rename,
// breaks deployed clients — reflect.DeepEqual over fully-populated
// values catches both.
func TestHitJSONRoundTrip(t *testing.T) {
	in := Hit{DocID: 12345, Title: "pancreatic neoplasms: a survey", Score: 3.25}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Hit
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v -> %s -> %+v", in, data, out)
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	in := Stats{
		Plan:             "view",
		UsedView:         true,
		ResultSize:       421,
		ContextSize:      99881,
		CacheHit:         true,
		Degraded:         true,
		DegradedReason:   "stats budget expired",
		PrunedDocs:       1 << 40, // int64 fields must not truncate
		PrunedContainers: 77,
		ShardErrors: []ShardError{
			{Shard: 2, Kind: "timeout", Err: "slice 2: core: slice timed out after 50ms"},
			{Shard: 3, Kind: "breaker-open", Err: "circuit breaker open: shard is shedding"},
		},
		ResultCacheHit:     true,
		SingleFlightShared: true,
		Elapsed:            1500 * time.Microsecond,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Stats
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip: %+v -> %s -> %+v", in, data, out)
	}

	// Every exported field must map to a distinct JSON key — a copied
	// tag would make two fields fight over one key and silently drop
	// data on the wire.
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	rt := reflect.TypeOf(in)
	if len(m) != rt.NumField() {
		t.Fatalf("%d JSON keys for %d fields: %s", len(m), rt.NumField(), data)
	}
}
