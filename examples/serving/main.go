// Serving: build a 4-shard cluster, serve it over HTTP in-process, and
// query it — showing that the sharded ranking is bit-identical to a
// single engine while /search responses carry cluster-aggregated
// statistics (degraded flags ORed, pruning counters summed across
// shards).
//
//	go run ./examples/serving
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"

	"csrank"
)

func main() {
	// A synthetic clinical-notes archive: two wards with different
	// language statistics, so context changes the ranking.
	b := csrank.NewBuilder()
	single := csrank.NewBuilder()
	for _, add := range []func(csrank.Document){b.Add, single.Add} {
		for i := 0; i < 600; i++ {
			ward := "cardiology"
			body := "chest pain troponin ecg stenosis catheter"
			if i%2 == 0 {
				ward = "oncology"
				body = "tumor staging biopsy chemotherapy infusion pain"
			}
			add(csrank.Document{
				Title:      fmt.Sprintf("Note %d (%s)", i, ward),
				Body:       body,
				Predicates: []string{ward},
			})
		}
	}

	// Pruning on: the response's aggregated pruning counters show how
	// much work the shards skipped, summed across the fan-out.
	opts := csrank.BuildOptions{Pruning: true}
	cluster, err := b.BuildSharded(4, opts)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := single.Build(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d documents over %d shards, %d views total\n",
		cluster.NumDocs(), cluster.NumShards(), cluster.NumViews())

	// Serve the cluster over HTTP. httptest stands in for csserve's
	// ListenAndServe so the example is self-contained; the handler is a
	// miniature of csserve's /search.
	mux := http.NewServeMux()
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		hits, stats, perShard, err := cluster.SearchDetailed(r.Context(), q, 5)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"hits": hits, "stats": stats, "shards": perShard,
		})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	q := "pain | oncology"
	resp, err := http.Get(ts.URL + "/search?q=" + url.QueryEscape(q))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Hits   []csrank.Hit   `json:"hits"`
		Stats  csrank.Stats   `json:"stats"`
		Shards []csrank.Stats `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nGET /search?q=%q over 4 shards:\n", q)
	for i, h := range body.Hits {
		fmt.Printf("  %d. (%.4f) %s\n", i+1, h.Score, h.Title)
	}
	fmt.Printf("aggregated stats: plan=%s context=%d degraded=%v pruned_docs=%d elapsed=%v\n",
		body.Stats.Plan, body.Stats.ContextSize, body.Stats.Degraded,
		body.Stats.PrunedDocs, body.Stats.Elapsed)
	for i, st := range body.Shards {
		fmt.Printf("  shard %d: plan=%-15s results=%-3d pruned_docs=%d\n",
			i, st.Plan, st.ResultSize, st.PrunedDocs)
	}

	// The whole point: the sharded HTTP answer equals the single engine.
	want, _, err := ref.Search(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i := range want {
		if body.Hits[i] != want[i] {
			log.Fatalf("rank %d diverged: %+v vs %+v", i, body.Hits[i], want[i])
		}
	}
	fmt.Println("\nsharded HTTP results are bit-identical to the single engine ✓")
}
