// Newsarchive: context-sensitive search outside the biomedical domain.
//
// A news archive tags stories with desk categories (politics, sports,
// business, technology, science) and regions. "merger" is routine
// business vocabulary but a rare, newsworthy word on the sports desk;
// "coach" is the opposite. A reader searching {coach, merger} within the
// sports context wants league-merger stories, not the business desk's
// coaching-carousel acquisitions.
//
// The example also demonstrates persistence: the engine is saved to a
// temporary directory and reloaded before querying.
//
//	go run ./examples/newsarchive
package main

import (
	"fmt"
	"log"
	"os"

	"csrank"
)

func main() {
	b := csrank.NewBuilder()

	// The two stories of interest; both carry both query words.
	b.Add(csrank.Document{
		Title:      "League merger reshapes national hockey, coach reacts",
		Body:       "merger merger leagues franchise hockey season",
		Predicates: []string{"sports", "national"},
	})
	b.Add(csrank.Document{
		Title:      "Star coach changes teams amid takeover talk",
		Body:       "coach coach contract transfer team merger rumor",
		Predicates: []string{"sports", "national"},
	})

	// Business desk: mergers everywhere — globally, "merger" is the
	// common word and "coach" the rare one.
	for i := 0; i < 900; i++ {
		b.Add(csrank.Document{
			Title:      fmt.Sprintf("Quarterly deal roundup %d", i),
			Body:       "merger acquisition shares revenue earnings quarter",
			Predicates: []string{"business", "national"},
		})
	}
	// Sports desk: coaches everywhere, mergers almost never.
	for i := 0; i < 450; i++ {
		body := "coach team season playoffs roster training"
		if i < 5 {
			body += " merger"
		}
		b.Add(csrank.Document{
			Title:      fmt.Sprintf("Season notebook %d", i),
			Body:       body,
			Predicates: []string{"sports", "national"},
		})
	}
	// Other desks for realistic statistics.
	for i := 0; i < 300; i++ {
		b.Add(csrank.Document{
			Title:      fmt.Sprintf("Policy briefing %d", i),
			Body:       "election policy parliament vote budget",
			Predicates: []string{"politics", "national"},
		})
	}

	engine, err := b.Build(csrank.BuildOptions{Scorer: csrank.BM25})
	if err != nil {
		log.Fatal(err)
	}

	// Persist and reload — the index and the materialized views round-trip.
	dir, err := os.MkdirTemp("", "newsarchive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := engine.Save(dir); err != nil {
		log.Fatal(err)
	}
	engine, err = csrank.Open(dir, csrank.BM25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded archive from %s: %d stories, %d views\n\n", dir, engine.NumDocs(), engine.NumViews())

	const q = "coach merger | sports"
	conv, _, err := engine.SearchConventional(q, 3)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stats, err := engine.Search(q, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: %q\n\nconventional ranking (global statistics):\n", q)
	for i, h := range conv {
		fmt.Printf("  %d. (%.3f) %s\n", i+1, h.Score, h.Title)
	}
	fmt.Printf("\ncontext-sensitive ranking (sports-desk statistics, plan=%s):\n", stats.Plan)
	for i, h := range ctx {
		fmt.Printf("  %d. (%.3f) %s\n", i+1, h.Score, h.Title)
	}
	fmt.Printf("\nsports context holds %d of %d stories\n",
		engine.ContextSize("sports"), engine.NumDocs())
}
