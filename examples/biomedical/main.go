// Biomedical: the paper's §1.1 motivating example, end to end.
//
// A GI researcher issues {pancreas, leukemia} within the
// "digestive_system" context. Globally, leukemia is the more common term
// (oncology dominates the literature), so conventional TF-IDF treats
// *pancreas* as the discriminative keyword and ranks the
// pancreas-transplant citation first. Inside the digestive-system
// context the statistics reverse — nearly every citation mentions
// digestive organs, while leukemia is rare — so context-sensitive
// ranking puts the leukemia citation on top.
//
//	go run ./examples/biomedical
package main

import (
	"fmt"
	"log"

	"csrank"
)

func main() {
	b := csrank.NewBuilder()

	// The two citations from the paper, both annotated "digestive_system"
	// and both matching the full query.
	b.Add(csrank.Document{
		Title:      "C1: Complications following pancreas transplant",
		Body:       "pancreas transplant complications graft rejection pancreas follow-up leukemia screening negative",
		Predicates: []string{"digestive_system", "surgery", "humans"},
	})
	b.Add(csrank.Document{
		Title:      "C2: Organ failure in patients with acute leukemia",
		Body:       "organ failure acute leukemia chemotherapy leukemia infiltration pancreas liver dysfunction",
		Predicates: []string{"digestive_system", "neoplasms", "humans"},
	})

	// The oncology literature: large, leukemia-heavy, outside the
	// digestive context.
	for i := 0; i < 900; i++ {
		b.Add(csrank.Document{
			Title:      fmt.Sprintf("Leukemia cohort outcomes, part %d", i),
			Body:       "leukemia lymphoma remission chemotherapy trial survival",
			Predicates: []string{"neoplasms", "humans"},
		})
	}
	// The GI literature: pancreas is everyday vocabulary; leukemia is
	// rare (a handful of citations mention it, so the example query has
	// a non-trivial result set).
	for i := 0; i < 400; i++ {
		body := "pancreas liver gastric intestine endoscopy surgery outcome"
		if i < 6 {
			body += " leukemia"
		}
		b.Add(csrank.Document{
			Title:      fmt.Sprintf("Digestive disease management, part %d", i),
			Body:       body,
			Predicates: []string{"digestive_system", "humans"},
		})
	}

	engine, err := b.Build(csrank.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}

	const q = "pancreas leukemia | digestive_system"
	fmt.Printf("collection: %d citations, %d materialized views\n", engine.NumDocs(), engine.NumViews())
	fmt.Printf("context size |D_P| for digestive_system: %d\n\n", engine.ContextSize("digestive_system"))

	conv, convStats, err := engine.SearchConventional(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conventional ranking of %q (global statistics):\n", q)
	for i, h := range conv {
		fmt.Printf("  %d. (%.3f) %s\n", i+1, h.Score, h.Title)
	}
	fmt.Printf("  [%d results in %s]\n\n", convStats.ResultSize, convStats.Elapsed)

	ctx, ctxStats, err := engine.Search(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("context-sensitive ranking (statistics over D_P, plan=%s):\n", ctxStats.Plan)
	for i, h := range ctx {
		fmt.Printf("  %d. (%.3f) %s\n", i+1, h.Score, h.Title)
	}
	fmt.Printf("  [%d results in %s, view used: %v]\n\n", ctxStats.ResultSize, ctxStats.Elapsed, ctxStats.UsedView)

	if len(conv) > 0 && len(ctx) > 0 && conv[0].DocID != ctx[0].DocID {
		fmt.Println("→ the two rankings disagree on the top citation, as in the paper:")
		fmt.Printf("  conventional prefers  %s\n", conv[0].Title)
		fmt.Printf("  context-sensitive prefers %s\n", ctx[0].Title)
	}
}
