// Viewselection: a tour of the §5 machinery on a synthetic corpus —
// compare the data-mining-based, graph-decomposition-based and hybrid
// view-selection algorithms, sweep the thresholds T_C and T_V, and
// inspect what got materialized.
//
// This example uses the library's internal packages directly (it lives in
// the same module), the level a systems person tuning a deployment would
// work at.
//
//	go run ./examples/viewselection
package main

import (
	"fmt"
	"log"
	"time"

	"csrank/internal/corpus"
	"csrank/internal/mining"
	"csrank/internal/selection"
	"csrank/internal/widetable"
)

func main() {
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 10000
	cfg.OntologyTerms = 250
	cfg.NumTopics = 0
	c, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := c.BuildIndex(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d citations, %d MeSH terms; index: %s\n\n", len(c.Docs), c.Onto.Len(), ix)

	tc := int64(cfg.NumDocs / 100) // the paper's 1%
	terms := selection.FrequentPredicateTerms(ix, tc)
	tbl := widetable.FromIndex(ix, selection.TrackedContentWords(ix, tc))
	fmt.Printf("T_C = %d → %d frequent predicate terms form the KAG\n\n", tc, len(terms))

	// --- Compare the three selection strategies at one setting. --------
	selCfg := selection.Config{TC: tc, TV: 256}

	t0 := time.Now()
	mined, err := selection.DataMiningBased(tbl, terms, selCfg, mining.Apriori)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %3d views in %8s (mined %d combinations, %d maximal)\n",
		"mining (Apriori):", len(mined.KeySets), time.Since(t0).Round(time.Millisecond),
		mined.Stats.MinedCombinations, mined.Stats.MaximalCombinations)

	t0 = time.Now()
	decomp := selection.GraphDecompositionBased(ix, tbl, terms, selCfg)
	fmt.Printf("%-22s %3d views in %8s (%d separators, %d support queries)\n",
		"graph decomposition:", len(decomp.KeySets), time.Since(t0).Round(time.Millisecond),
		decomp.Stats.Separators, decomp.Stats.SupportQueries)

	t0 = time.Now()
	hybrid, err := selection.Hybrid(ix, tbl, selCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %3d views in %8s (%d clique remainders re-mined)\n\n",
		"hybrid:", len(hybrid.KeySets), time.Since(t0).Round(time.Millisecond),
		hybrid.Stats.CliqueRemainders)

	// Verify the §5.1 guarantee for the hybrid result.
	holes, err := selection.CoverageHoles(tbl, terms, hybrid.KeySets, tc, 5)
	if err != nil {
		log.Fatal(err)
	}
	if len(holes) == 0 {
		fmt.Println("coverage: every frequent keyword combination is inside some view ✓")
	} else {
		fmt.Printf("coverage HOLES: %v\n", holes)
	}

	// --- Sweep T_V: smaller views are cheaper to answer but more are
	// needed. ------------------------------------------------------------
	fmt.Println("\nT_V sweep (hybrid):")
	fmt.Printf("%8s %8s %12s %14s\n", "T_V", "views", "mean tuples", "total storage")
	for _, tv := range []int{64, 128, 256, 512, 1024} {
		res, err := selection.Hybrid(ix, tbl, selection.Config{TC: tc, TV: tv})
		if err != nil {
			log.Fatal(err)
		}
		cat, err := selection.MaterializeAll(tbl, res.KeySets, tbl.TrackedWords(), selection.Config{TC: tc, TV: tv})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %8d %12.1f %11.2f MB\n",
			tv, cat.Len(), cat.MeanSize(), float64(cat.TotalBytes())/(1<<20))
	}

	// --- Sweep T_C: a higher threshold covers fewer contexts. -----------
	fmt.Println("\nT_C sweep (hybrid, T_V = 256):")
	fmt.Printf("%8s %16s %8s\n", "T_C", "frequent terms", "views")
	for _, f := range []float64{0.005, 0.01, 0.02, 0.05} {
		tcf := int64(f * float64(cfg.NumDocs))
		res, err := selection.Hybrid(ix, tbl, selection.Config{TC: tcf, TV: 256})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %16d %8d\n", tcf, res.Stats.FrequentTerms, len(res.KeySets))
	}
}
