// Ingestion: operating the system on a *growing* collection, using two
// extensions beyond the paper's core:
//
//   - incremental view maintenance — newly ingested (or retracted)
//     citations fold into the materialized views one group update at a
//     time, no re-materialization — made crash-safe by routing batches
//     through the write-ahead-log manager (internal/wal);
//   - time-sliced contexts (the paper's §7 "documents published after
//     1998" extension) — a TimeView answers |D_{P ∧ year∈[a,b]}| and
//     len(D_{P ∧ year∈[a,b]}) from per-group prefix sums.
//
// This example works at the internal-package level, as an ingestion
// pipeline would.
//
//	go run ./examples/ingestion
package main

import (
	"fmt"
	"log"
	"os"

	"csrank/internal/corpus"
	"csrank/internal/rangeagg"
	"csrank/internal/selection"
	"csrank/internal/views"
	"csrank/internal/wal"
	"csrank/internal/widetable"
)

func main() {
	// A modest synthetic collection with publication years.
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 8000
	cfg.OntologyTerms = 200
	cfg.NumTopics = 0
	c, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := c.BuildIndex(0)
	if err != nil {
		log.Fatal(err)
	}
	// Assign deterministic pseudo-years (the corpus generator predates
	// them; an operational pipeline stores real publication dates).
	years := make([]int, len(c.Docs))
	for i := range years {
		years[i] = 1980 + (c.Docs[i].PMID*7)%31
	}

	tc := int64(len(c.Docs) / 50)
	m, err := selection.Select(ix, selection.Config{TC: tc, TV: 256, SampleSize: 2000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collection: %d citations; %d views selected (T_C=%d)\n\n",
		len(c.Docs), m.Catalog.Len(), tc)

	// Pick a context a view covers.
	terms := selection.FrequentPredicateTerms(ix, tc)
	ctx := terms[:1]
	v := m.Catalog.Match(ctx)
	if v == nil {
		log.Fatalf("no view covers %v", ctx)
	}
	before, err := v.Answer(ctx, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("context %v before ingestion: |D_P| = %d, len(D_P) = %d\n",
		ctx, before.Count, before.Len)

	// --- Incremental maintenance: ingest a batch of new citations. ------
	// Updates go through the write-ahead-log manager so an acknowledged
	// batch survives a crash: the record is appended and fsynced before
	// the ack, and recovery replays the log tail over the newest
	// checksummed snapshot.
	dir, err := os.MkdirTemp("", "csrank-ingest-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	mgr, err := wal.Create(dir, m.Catalog, wal.Options{SnapshotEvery: 8})
	if err != nil {
		log.Fatal(err)
	}
	batch := wal.Batch{
		{Op: wal.OpApply, Doc: views.DocUpdate{Predicates: []string{ctx[0], "humans"}, Len: 180, TF: map[string]int64{"leukemia": 2}}},
		{Op: wal.OpApply, Doc: views.DocUpdate{Predicates: []string{ctx[0]}, Len: 95}},
		{Op: wal.OpApply, Doc: views.DocUpdate{Predicates: []string{"unrelated_term"}, Len: 60}}, // outside the context
	}
	if err := mgr.Apply(batch); err != nil {
		log.Fatal(err)
	}
	after, err := v.Answer(ctx, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after ingesting %d citations:   |D_P| = %d (+%d), len(D_P) = %d (+%d)\n",
		len(batch), after.Count, after.Count-before.Count, after.Len, after.Len-before.Len)

	// A retraction (say, a withdrawn citation) folds back out. Remove
	// validates before mutating, so a bogus retraction is rejected with
	// the views untouched instead of silently corrupting them.
	if err := mgr.Apply(wal.Batch{{Op: wal.OpRemove, Doc: batch[1].Doc}}); err != nil {
		log.Fatal(err)
	}
	reverted, err := v.Answer(ctx, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after one retraction:          |D_P| = %d, len(D_P) = %d\n",
		reverted.Count, reverted.Len)
	ghost := wal.Batch{{Op: wal.OpRemove, Doc: views.DocUpdate{Predicates: []string{"never_ingested"}, Len: 1 << 40}}}
	if err := mgr.Apply(ghost); err != nil {
		fmt.Printf("bogus retraction rejected:     %v\n", err)
	}

	// Recovery: reopen the directory the way a restarted process would
	// and check the recovered catalog matches the live one exactly.
	fp := m.Catalog.Fingerprint()
	if err := mgr.Close(); err != nil {
		log.Fatal(err)
	}
	mgr2, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr2.Close()
	fmt.Printf("recovered generation %d (%d batches replayed): fingerprints match = %v\n\n",
		rec.Generation, rec.BatchesReplayed, mgr2.Catalog().Fingerprint() == fp)

	// --- Time-sliced contexts (§7 extension). ---------------------------
	tbl := widetable.FromIndex(ix, nil)
	tv, err := rangeagg.Materialize(tbl, years, terms[:min(6, len(terms))])
	if err != nil {
		log.Fatal(err)
	}
	min2, max2 := tv.YearRange()
	fmt.Printf("time view over K=%v: %d groups, years %d–%d\n", tv.K(), tv.Size(), min2, max2)
	for _, span := range [][2]int{{1980, 1989}, {1990, 1999}, {2000, 2010}, {1998, 2010}} {
		count, length, err := tv.Answer(ctx, span[0], span[1], nil)
		if err != nil {
			log.Fatal(err)
		}
		avg := 0.0
		if count > 0 {
			avg = float64(length) / float64(count)
		}
		fmt.Printf("  %v published %d–%d: %5d citations, avgdl %.1f\n",
			ctx, span[0], span[1], count, avg)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
