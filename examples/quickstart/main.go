// Quickstart: index a handful of annotated documents and run the same
// keyword query with and without a context specification.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"csrank"
)

func main() {
	b := csrank.NewBuilder()

	// Documents carry free text plus controlled-vocabulary predicates
	// (here: cuisine regions for a recipe archive).
	b.Add(csrank.Document{
		Title:      "Saffron rice with toasted almonds",
		Body:       "saffron rice almonds butter broth simmer",
		Predicates: []string{"persian", "vegetarian"},
	})
	b.Add(csrank.Document{
		Title:      "Weeknight saffron chicken",
		Body:       "chicken saffron yogurt marinade grill",
		Predicates: []string{"persian"},
	})
	b.Add(csrank.Document{
		Title:      "Paella with chicken and shrimp",
		Body:       "rice saffron chicken shrimp paprika skillet",
		Predicates: []string{"spanish"},
	})
	// Pad the collection so statistics are meaningful: lots of Spanish
	// rice dishes (rice is common there) and Persian chicken dishes.
	for i := 0; i < 40; i++ {
		b.Add(csrank.Document{
			Title:      fmt.Sprintf("Spanish rice variation %d", i),
			Body:       "rice tomato pepper olive oil",
			Predicates: []string{"spanish"},
		})
		b.Add(csrank.Document{
			Title:      fmt.Sprintf("Persian chicken stew %d", i),
			Body:       "chicken walnut pomegranate stew",
			Predicates: []string{"persian"},
		})
	}

	engine, err := b.Build(csrank.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d documents, materialized %d views\n\n",
		engine.NumDocs(), engine.NumViews())

	show := func(label, q string) {
		hits, stats, err := engine.Search(q, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %q  (plan=%s, results=%d)\n", label, q, stats.Plan, stats.ResultSize)
		for i, h := range hits {
			fmt.Printf("  %d. (%.3f) %s\n", i+1, h.Score, h.Title)
		}
		fmt.Println()
	}

	// Without a context, statistics come from the whole archive.
	show("global search", "saffron rice")

	// Within the Spanish context rice is ubiquitous, so "saffron" is the
	// discriminative term there — the ranking adapts.
	show("Spanish-cuisine context", "saffron rice | spanish")

	// Contexts are conjunctive: multiple predicates narrow further.
	show("Persian vegetarian context", "saffron rice | persian vegetarian")
}
