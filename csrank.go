// Package csrank is a context-sensitive document-retrieval library: an
// implementation of "Context-sensitive Ranking for Document Retrieval"
// (Chen & Papakonstantinou, SIGMOD 2011).
//
// A query has the form "w1 w2 | m1 m2": the keywords before '|' are a
// conventional conjunctive keyword query, and the predicates after '|'
// specify a search context — the sub-collection of documents carrying all
// those predicates (e.g. MeSH annotations). Ranking statistics (document
// frequency, collection cardinality, collection length, term counts) are
// computed over the *context*, not the whole collection, so the same
// keyword query ranks differently for users in different domains.
//
// Computing per-context statistics at query time requires expensive
// inverted-list intersections and aggregations; the library accelerates
// them with materialized group-by views over a wide sparse table, chosen
// by a hybrid of graph decomposition and frequent-itemset mining so that
// every context larger than a threshold is covered by a view no larger
// than a size limit.
//
// Basic use:
//
//	b := csrank.NewBuilder()
//	for _, d := range docs {
//		b.Add(csrank.Document{Title: ..., Body: ..., Predicates: ...})
//	}
//	e, err := b.Build(csrank.BuildOptions{})
//	hits, stats, err := e.Search("pancreas leukemia | digestive_system", 20)
package csrank

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"csrank/internal/analysis"
	"csrank/internal/core"
	"csrank/internal/index"
	"csrank/internal/query"
	"csrank/internal/ranking"
	"csrank/internal/selection"
	"csrank/internal/views"
)

// Document is the unit of indexing.
type Document struct {
	// Title is stored and returned with hits.
	Title string
	// Body is additional searchable text (title and body together form
	// the content field the ranking statistics describe).
	Body string
	// Predicates are the controlled-vocabulary annotations usable in
	// context specifications (e.g. MeSH terms). Multi-word predicates
	// should be joined with underscores.
	Predicates []string
}

// Scorer selects the ranking model.
type Scorer string

// Available ranking models. All of them consume the same statistics
// bundle, so all become context-sensitive automatically.
const (
	// PivotedTFIDF is the paper's pivoted-normalization TF-IDF
	// (Formulas 3–4), the default.
	PivotedTFIDF Scorer = "pivoted-tfidf"
	// BM25 is Okapi BM25 (k1 = 1.2, b = 0.75).
	BM25 Scorer = "bm25"
	// DirichletLM is a Dirichlet-smoothed query-likelihood language
	// model (μ = 2000).
	DirichletLM Scorer = "dirichlet-lm"
	// CosineTFIDF is classic cosine-normalized TF-IDF.
	CosineTFIDF Scorer = "cosine-tfidf"
	// JelinekMercerLM is a Jelinek-Mercer-smoothed query-likelihood
	// language model (λ = 0.3).
	JelinekMercerLM Scorer = "jelinek-mercer-lm"
)

func (s Scorer) build() (ranking.Scorer, error) {
	switch s {
	case "", PivotedTFIDF:
		return ranking.NewPivotedTFIDF(), nil
	case BM25:
		return ranking.NewBM25(), nil
	case DirichletLM:
		return ranking.NewDirichletLM(), nil
	case CosineTFIDF:
		return ranking.NewCosineTFIDF(), nil
	case JelinekMercerLM:
		return ranking.NewJelinekMercerLM(), nil
	default:
		return nil, fmt.Errorf("csrank: unknown scorer %q", string(s))
	}
}

// BuildOptions configures Build. The zero value gives the paper's
// settings: T_C = 1% of the collection, T_V = 4096, pivoted TF-IDF.
type BuildOptions struct {
	// ContextThresholdFraction is T_C as a fraction of the collection
	// size: contexts at least this large are guaranteed view coverage.
	// Zero selects 0.01 (the paper's 1%).
	ContextThresholdFraction float64
	// ViewSizeLimit is T_V, the maximum non-empty tuple count per view.
	// Zero selects 4096.
	ViewSizeLimit int
	// Scorer selects the ranking model ("" = pivoted TF-IDF).
	Scorer Scorer
	// DisableViews skips view selection entirely; every contextual query
	// then runs the straightforward plan. Useful for baselines.
	DisableViews bool
	// SegmentSize is the posting-list skip-segment size (M0). Zero
	// selects 128.
	SegmentSize int
	// CacheContexts, when positive, memoizes collection statistics for up
	// to that many distinct contexts across queries.
	CacheContexts int
	// CostBasedPlanning consults a usable view only when its scan cost
	// undercuts the straightforward plan's cost bound, instead of always
	// preferring views.
	CostBasedPlanning bool
	// Parallelism bounds intra-query parallelism (result-set evaluation
	// overlapping statistics, per-keyword statistics fan-out, partitioned
	// scoring). 0 uses GOMAXPROCS; 1 runs fully sequentially. Rankings
	// are bit-identical at every setting.
	Parallelism int
	// Timeout bounds each query's wall-clock execution. When it expires
	// the engine returns what it has — partial or empty results flagged
	// Stats.Degraded — instead of an error. Zero means unbounded.
	Timeout time.Duration
	// StatsBudget bounds the context-statistics phase of contextual
	// queries; past it the engine ranks with approximate statistics and
	// flags the result Degraded. Zero means unbounded.
	StatsBudget time.Duration
	// Pruning enables block-max dynamic pruning: top-k scoring skips
	// documents and containers whose score bound proves they cannot
	// rank. Results stay bit-identical to exhaustive scoring.
	Pruning bool
	// MinShards (sharded engines only) is the fewest healthy shards for
	// which a partial answer is still served; when fewer survive a
	// query's fan-out, the query fails instead (fail-closed). ≤ 0 means
	// 1: answer as long as any shard survives. Set it to the shard count
	// to fail fast on any shard loss.
	MinShards int
	// ShardTimeout (sharded engines only) bounds each shard's work per
	// query phase; a shard that exceeds it is dropped from the query and
	// the surviving shards answer alone, flagged Degraded with the loss
	// attributed in Stats.ShardErrors. Zero disables the per-shard
	// timeout (Timeout still degrades in-shard).
	ShardTimeout time.Duration
	// Cache configures the serving-layer result cache (sharded engines
	// only; see CacheOptions). The zero value disables it.
	Cache CacheOptions
}

// CacheOptions configures the serving-layer result cache of a
// ShardedEngine: final merged results ([]Hit + Stats) memoized per
// (query, context, k, configuration), tagged with every input
// generation — shard serving generations, catalog versions, the live
// view's content sequence — so index rollover, catalog swaps, ingestion
// visibility and compaction each invalidate exactly the affected
// entries, and a hit is bit-identical to re-execution. Degraded,
// partial or failed results are never cached. Concurrent identical
// queries additionally coalesce onto a single execution (single
// flight), whether or not the result ends up cacheable.
type CacheOptions struct {
	// ResultBytes bounds the memory held by cached results across the
	// engine. 0 disables result caching and single-flight coalescing.
	ResultBytes int64
}

// cacheFingerprint folds every result-affecting runtime option into the
// cache key, so distinct configurations can never alias — belt and
// braces on top of the cache already being private to one engine
// instance whose configuration is immutable.
func (o BuildOptions) cacheFingerprint() string {
	return fmt.Sprintf("%s|views=%v|prune=%v|cost=%v", o.Scorer, o.DisableViews, o.Pruning, o.CostBasedPlanning)
}

// coreOptions maps the runtime subset of BuildOptions onto the engine
// options every construction path (Build, BuildSharded, Open) shares.
func (o BuildOptions) coreOptions(scorer ranking.Scorer) core.Options {
	return core.Options{
		Scorer:        scorer,
		CacheContexts: o.CacheContexts,
		CostBased:     o.CostBasedPlanning,
		Parallelism:   o.Parallelism,
		Deadline:      o.Timeout,
		StatsBudget:   o.StatsBudget,
		Pruning:       o.Pruning,
	}
}

// Builder accumulates documents for an Engine.
type Builder struct {
	docs []index.Document
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// indexDoc maps the public document onto the schema's fields — the one
// mapping batch builds and live ingestion both use.
func (d Document) indexDoc() index.Document {
	return index.Document{Fields: map[string]string{
		"title":   d.Title,
		"content": d.Title + " " + d.Body,
		"mesh":    strings.Join(d.Predicates, " "),
	}}
}

// Add queues one document; documents are numbered in insertion order
// starting at 0.
func (b *Builder) Add(d Document) {
	b.docs = append(b.docs, d.indexDoc())
}

// Len returns the number of queued documents.
func (b *Builder) Len() int { return len(b.docs) }

// Build indexes the queued documents, selects and materializes views, and
// returns a ready Engine.
func (b *Builder) Build(opts BuildOptions) (*Engine, error) {
	scorer, err := opts.Scorer.build()
	if err != nil {
		return nil, err
	}
	frac := opts.ContextThresholdFraction
	if frac == 0 {
		frac = 0.01
	}
	tv := opts.ViewSizeLimit
	if tv == 0 {
		tv = 4096
	}
	ix, err := index.BuildFrom(schema(), opts.SegmentSize, b.docs)
	if err != nil {
		return nil, err
	}
	var cat *views.Catalog
	var selTime time.Duration
	if !opts.DisableViews {
		tc := int64(frac * float64(ix.NumDocs()))
		if tc < 1 {
			tc = 1
		}
		t0 := time.Now()
		m, err := selection.Select(ix, selection.Config{TC: tc, TV: tv})
		if err != nil {
			return nil, err
		}
		cat = m.Catalog
		selTime = time.Since(t0)
	}
	return &Engine{
		engine:     core.New(ix, cat, opts.coreOptions(scorer)),
		selectTime: selTime,
	}, nil
}

func schema() index.Schema {
	return index.Schema{
		Fields: []index.FieldSpec{
			{Name: "title", Analyzer: analysis.Standard(), Stored: true},
			{Name: "content", Analyzer: analysis.Standard()},
			{Name: "mesh", Analyzer: analysis.Keyword()},
		},
		PredicateField: "mesh",
		ContentField:   "content",
	}
}

// Hit is one ranked search result. The JSON tags are the wire format
// cmd/csserve responses use, so serving needs no shadow types.
type Hit struct {
	// DocID is the document's insertion-order number (the global number
	// for sharded engines).
	DocID int `json:"doc_id"`
	// Title is the document's stored title.
	Title string `json:"title"`
	// Score is the ranking score (higher is more relevant).
	Score float64 `json:"score"`
}

// Stats summarizes one query execution. For sharded engines it is the
// cluster-level aggregation of every shard's report (counters summed,
// flags ORed, Elapsed the fan-out maximum). The JSON tags are the wire
// format cmd/csserve responses use.
type Stats struct {
	// Plan is the strategy used: "conventional", "view",
	// "straightforward" — or "mixed" when a sharded execution used
	// different plans on different shards.
	Plan string `json:"plan"`
	// UsedView reports whether a materialized view answered the context
	// statistics (any shard, for sharded engines).
	UsedView bool `json:"used_view"`
	// ResultSize is the unranked result cardinality.
	ResultSize int `json:"result_size"`
	// ContextSize is |D_P| for contextual queries.
	ContextSize int64 `json:"context_size"`
	// CacheHit reports that context statistics came from the statistics
	// cache (only with BuildOptions.CacheContexts > 0).
	CacheHit bool `json:"cache_hit"`
	// Degraded reports that a timeout or statistics budget expired and
	// the hits are partial and/or ranked under approximate statistics.
	Degraded bool `json:"degraded"`
	// DegradedReason explains what was traded away (empty when Degraded
	// is false).
	DegradedReason string `json:"degraded_reason,omitempty"`
	// PrunedDocs counts candidate documents block-max pruning dismissed
	// without scoring (0 unless BuildOptions/SearchOptions enable
	// Pruning).
	PrunedDocs int64 `json:"pruned_docs"`
	// PrunedContainers counts whole docID containers pruning dismissed
	// wholesale.
	PrunedContainers int64 `json:"pruned_containers"`
	// ShardErrors attributes every shard that did not contribute to a
	// sharded answer — shed by its circuit breaker or lost to a panic,
	// timeout, or corrupt block. Non-empty exactly when the hits are a
	// partial answer over the surviving shards (Degraded is then set).
	ShardErrors []ShardError `json:"shard_errors,omitempty"`
	// ResultCacheHit reports that the hits were served from the
	// serving-layer result cache (bit-identical to re-execution by the
	// cache's generation-tag contract) without touching the shards.
	ResultCacheHit bool `json:"result_cache_hit"`
	// SingleFlightShared reports that this query coalesced onto a
	// concurrent identical query's execution and shares its (clean,
	// cacheable) result.
	SingleFlightShared bool `json:"single_flight_shared,omitempty"`
	// Elapsed is the wall-clock execution time in nanoseconds.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// ErrTooFewShards fails a sharded query when fewer shards survive (or
// are admitted by their circuit breakers) than BuildOptions.MinShards
// allows — the fail-closed half of the partial-results policy.
var ErrTooFewShards = core.ErrTooFewSlices

// ShardError attributes the loss of one shard in a degraded sharded
// execution.
type ShardError struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Kind classifies the failure: "corruption", "panic", "timeout",
	// "error", or "breaker-open" (shed up front, never attempted).
	Kind string `json:"kind"`
	// Err is the underlying error text.
	Err string `json:"error"`
}

// Engine answers context-sensitive queries.
type Engine struct {
	engine     *core.Engine
	selectTime time.Duration
	// live is the writable cluster EnableIngest attaches; when set,
	// searches route through it so added documents are visible.
	live *ShardedEngine
}

// Search parses and evaluates q ("w1 w2 | m1 m2") with context-sensitive
// ranking, returning the top k hits. Queries without '|' are conventional
// keyword queries.
func (e *Engine) Search(q string, k int) ([]Hit, Stats, error) {
	return e.SearchCtx(context.Background(), q, k)
}

// SearchCtx is Search under a caller-supplied context: cancelling ctx
// aborts the query promptly with ctx's error, and a ctx deadline (like
// BuildOptions.Timeout) degrades to flagged partial results instead of
// failing. A panic anywhere in the query path fails only that query.
func (e *Engine) SearchCtx(ctx context.Context, q string, k int) ([]Hit, Stats, error) {
	if e.live != nil {
		return e.live.SearchCtx(ctx, q, k)
	}
	pq, err := query.Parse(q)
	if err != nil {
		return nil, Stats{}, err
	}
	res, st, err := e.engine.SearchCtx(ctx, pq, k)
	return e.convert(res), convertStats(st), err
}

// SearchConventional evaluates q with the conventional baseline: the
// context (if any) filters the result set but statistics come from the
// whole collection.
func (e *Engine) SearchConventional(q string, k int) ([]Hit, Stats, error) {
	pq, err := query.Parse(q)
	if err != nil {
		return nil, Stats{}, err
	}
	res, st, err := e.engine.SearchConventional(pq, k)
	return e.convert(res), convertStats(st), err
}

// SearchStraightforward evaluates a contextual q without consulting
// materialized views (the paper's straightforward plan), for comparison.
func (e *Engine) SearchStraightforward(q string, k int) ([]Hit, Stats, error) {
	pq, err := query.Parse(q)
	if err != nil {
		return nil, Stats{}, err
	}
	res, st, err := e.engine.SearchStraightforward(pq, k)
	return e.convert(res), convertStats(st), err
}

func (e *Engine) convert(rs []core.Result) []Hit {
	hits := make([]Hit, len(rs))
	for i, r := range rs {
		hits[i] = Hit{
			DocID: int(r.DocID),
			Title: e.engine.Index().StoredField(r.DocID, "title"),
			Score: r.Score,
		}
	}
	return hits
}

func convertStats(st core.ExecStats) Stats {
	return Stats{
		Plan:             string(st.Plan),
		UsedView:         st.UsedView,
		ResultSize:       st.ResultSize,
		ContextSize:      st.ContextSize,
		CacheHit:         st.CacheHit,
		Degraded:         st.Degraded,
		DegradedReason:   st.DegradedReason,
		PrunedDocs:       st.Pruning.DocsSkipped,
		PrunedContainers: st.Pruning.ContainersSkipped,
		Elapsed:          st.Elapsed,
	}
}

// Explain reports, without executing the query, which evaluation plan
// Search would choose and why: the analyzed keywords and context, the
// matched view (if any) with its size and per-keyword df-column coverage,
// and the straightforward plan's cost bound.
func (e *Engine) Explain(q string) (string, error) {
	pq, err := query.Parse(q)
	if err != nil {
		return "", err
	}
	ex, err := e.engine.Explain(pq)
	if err != nil {
		return "", err
	}
	return ex.String(), nil
}

// NumDocs returns the collection size (including documents added live,
// when ingestion is enabled).
func (e *Engine) NumDocs() int {
	if e.live != nil {
		return e.live.NumDocs()
	}
	return e.engine.Index().NumDocs()
}

// NumViews returns the number of materialized views (0 when views are
// disabled).
func (e *Engine) NumViews() int {
	if e.engine.Catalog() == nil {
		return 0
	}
	return e.engine.Catalog().Len()
}

// ContextSize returns the number of documents matching a context
// specification (space-separated predicates).
func (e *Engine) ContextSize(context string) int64 {
	return e.engine.ContextSize(strings.Fields(context))
}

// SelectionTime returns how long view selection and materialization took
// during Build (zero for loaded or view-less engines).
func (e *Engine) SelectionTime() time.Duration { return e.selectTime }

// Save persists the engine (index + views) into dir, which must exist.
func (e *Engine) Save(dir string) error {
	if err := e.engine.Index().SaveFile(filepath.Join(dir, "index.gob")); err != nil {
		return err
	}
	if cat := e.engine.Catalog(); cat != nil {
		if err := cat.SaveFile(filepath.Join(dir, "views.gob")); err != nil {
			return err
		}
	}
	return nil
}

// Open loads an engine saved by Save. A missing views.gob yields an
// engine without view acceleration.
func Open(dir string, scorer Scorer) (*Engine, error) {
	return OpenWithOptions(dir, BuildOptions{Scorer: scorer})
}

// OpenWithOptions loads an engine saved by Save, honoring the runtime
// options (Scorer, CacheContexts, CostBasedPlanning, Parallelism); the
// build-time options are fixed by the persisted index and views.
func OpenWithOptions(dir string, opts BuildOptions) (*Engine, error) {
	sc, err := opts.Scorer.build()
	if err != nil {
		return nil, err
	}
	ix, err := index.LoadFile(filepath.Join(dir, "index.gob"))
	if err != nil {
		return nil, err
	}
	cat, err := views.LoadFile(filepath.Join(dir, "views.gob"))
	if err != nil {
		cat = nil // view-less engine
	}
	return &Engine{engine: core.New(ix, cat, opts.coreOptions(sc))}, nil
}
