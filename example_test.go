package csrank_test

import (
	"fmt"
	"log"

	"csrank"
)

// Example builds a small annotated collection and shows how the same
// keyword query ranks differently with and without a context
// specification.
func Example() {
	b := csrank.NewBuilder()
	b.Add(csrank.Document{
		Title:      "Complications following pancreas transplant",
		Body:       "pancreas pancreas transplant complications leukemia",
		Predicates: []string{"digestive_system"},
	})
	b.Add(csrank.Document{
		Title:      "Organ failure in patients with acute leukemia",
		Body:       "leukemia leukemia organ failure pancreas",
		Predicates: []string{"digestive_system"},
	})
	for i := 0; i < 300; i++ {
		b.Add(csrank.Document{
			Title:      "Leukemia cohort study",
			Body:       "leukemia lymphoma outcomes",
			Predicates: []string{"neoplasms"},
		})
		if i < 150 {
			b.Add(csrank.Document{
				Title:      "Digestive surgery outcomes",
				Body:       "pancreas liver gastric surgery",
				Predicates: []string{"digestive_system"},
			})
		}
	}
	engine, err := b.Build(csrank.BuildOptions{DisableViews: true})
	if err != nil {
		log.Fatal(err)
	}

	conv, _, err := engine.SearchConventional("pancreas leukemia | digestive_system", 1)
	if err != nil {
		log.Fatal(err)
	}
	ctx, _, err := engine.Search("pancreas leukemia | digestive_system", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("conventional top hit:     ", conv[0].Title)
	fmt.Println("context-sensitive top hit:", ctx[0].Title)
	// Output:
	// conventional top hit:      Complications following pancreas transplant
	// context-sensitive top hit: Organ failure in patients with acute leukemia
}

// ExampleEngine_ContextSize shows how to inspect a context before
// searching in it.
func ExampleEngine_ContextSize() {
	b := csrank.NewBuilder()
	for i := 0; i < 10; i++ {
		p := []string{"sports"}
		if i < 4 {
			p = append(p, "national")
		}
		b.Add(csrank.Document{Title: "story", Body: "coach season", Predicates: p})
	}
	engine, err := b.Build(csrank.BuildOptions{DisableViews: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(engine.ContextSize("sports"))
	fmt.Println(engine.ContextSize("sports national"))
	// Output:
	// 10
	// 4
}
