package csrank

import (
	"fmt"
	"time"

	"csrank/internal/segment"
)

// IngestOptions configures live ingestion on an opened cluster.
type IngestOptions struct {
	// RefreshEvery is the interval at which newly added documents become
	// searchable. Zero refreshes synchronously inside every Add: the
	// document is searchable the moment Add returns, at the cost of
	// rebuilding the (small) mutable segment's index per write.
	RefreshEvery time.Duration
	// CompactThreshold triggers a background compaction — draining the
	// mutable segment into the persistent shard indexes — once the
	// segment holds this many documents. Zero compacts only on demand
	// (Compact).
	CompactThreshold int
	// Mapped writes compacted snapshots in the format-v4 paged layout.
	Mapped bool
}

// OpenLive opens a sharded data directory (as written by
// ShardedEngine.Save / csbuild -shards) for serving plus live
// ingestion: Add durably logs documents to a write-ahead log before
// acknowledging them, added documents are searchable within one refresh
// interval, and compaction folds them into the shard indexes without
// downtime. Rankings over the live collection are bit-identical to a
// single engine freshly built over the same documents.
//
// Reopening a directory after a crash recovers every acknowledged
// document: it is either in a committed index generation or replayed
// from the generation's log.
func OpenLive(dir string, opts BuildOptions, ing IngestOptions) (*ShardedEngine, error) {
	sc, err := opts.Scorer.build()
	if err != nil {
		return nil, err
	}
	live, err := segment.Open(dir, segment.Options{
		Core:             opts.coreOptions(sc),
		RefreshEvery:     ing.RefreshEvery,
		CompactThreshold: ing.CompactThreshold,
		Mapped:           ing.Mapped,
	})
	if err != nil {
		return nil, err
	}
	se := &ShardedEngine{cluster: live.Cluster(), live: live}
	se.attachCache(opts)
	return se, nil
}

// Add durably logs the document — fsynced before return — and assigns
// it the next docID. Only engines opened through OpenLive (or
// EnableIngest) accept writes. An error means the document was NOT
// acknowledged.
func (e *ShardedEngine) Add(d Document) (int, error) {
	if e.live == nil {
		return 0, fmt.Errorf("csrank: engine not opened for ingestion (use OpenLive)")
	}
	return e.live.Add(d.indexDoc())
}

// Refresh makes every acknowledged document searchable now, without
// waiting for the refresh interval.
func (e *ShardedEngine) Refresh() error {
	if e.live == nil {
		return fmt.Errorf("csrank: engine not opened for ingestion (use OpenLive)")
	}
	return e.live.Refresh()
}

// Compact synchronously drains the mutable segment into the shard
// indexes: each shard's index is extended with its routed share of the
// segment's documents, persisted as the next on-disk generation, and
// swapped into serving without downtime.
func (e *ShardedEngine) Compact() error {
	if e.live == nil {
		return fmt.Errorf("csrank: engine not opened for ingestion (use OpenLive)")
	}
	return e.live.Compact()
}

// Pending returns how many acknowledged documents await compaction (0
// when ingestion is not enabled).
func (e *ShardedEngine) Pending() int {
	if e.live == nil {
		return 0
	}
	return e.live.Pending()
}

// CompactErr returns the most recent background-compaction failure, nil
// after a success. Compaction failures never lose acknowledged
// documents; they leave the segment intact for a retry.
func (e *ShardedEngine) CompactErr() error {
	if e.live == nil {
		return nil
	}
	return e.live.CompactErr()
}

// Close stops background ingestion work and releases the write-ahead
// log. Engines without ingestion enabled need no Close; calling it is a
// no-op.
func (e *ShardedEngine) Close() error {
	if e.live == nil {
		return nil
	}
	return e.live.Close()
}

// EnableIngest turns the engine into a live, writable collection rooted
// at dir: the engine is persisted there as a one-shard cluster (unless
// dir already holds one) and reopened through OpenLive. Afterwards Add
// accepts documents and Search serves base and live documents merged,
// still bit-identical to a fresh build over the union.
func (e *Engine) EnableIngest(dir string, opts BuildOptions, ing IngestOptions) error {
	if e.live != nil {
		return fmt.Errorf("csrank: ingestion already enabled")
	}
	if !IsSharded(dir) {
		se, err := e.Sharded()
		if err != nil {
			return err
		}
		save := se.Save
		if ing.Mapped {
			save = se.SaveMapped
		}
		if err := save(dir); err != nil {
			return err
		}
	}
	se, err := OpenLive(dir, opts, ing)
	if err != nil {
		return err
	}
	e.live = se
	return nil
}

// Add durably logs the document and assigns it the next docID; it
// requires EnableIngest. The document is searchable per the configured
// refresh interval (immediately, with a zero interval).
func (e *Engine) Add(d Document) (int, error) {
	if e.live == nil {
		return 0, fmt.Errorf("csrank: ingestion not enabled (use EnableIngest)")
	}
	return e.live.Add(d)
}

// Live returns the writable cluster behind an ingestion-enabled engine
// (nil before EnableIngest), exposing Refresh, Compact, Pending and
// Close.
func (e *Engine) Live() *ShardedEngine { return e.live }

// Close stops background ingestion work and releases the write-ahead
// log; a no-op for engines without ingestion enabled.
func (e *Engine) Close() error {
	if e.live == nil {
		return nil
	}
	return e.live.Close()
}
