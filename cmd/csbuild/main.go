// Command csbuild generates a synthetic PubMed-like corpus, builds the
// inverted index, runs hybrid view selection, and persists everything
// into a data directory that cssearch and csexp can load.
//
// Usage:
//
//	csbuild -out ./data -docs 20000 -terms 300 -tc 0.01 -tv 4096
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"csrank/internal/corpus"
	"csrank/internal/index"
	"csrank/internal/selection"
	"csrank/internal/shard"
)

func main() {
	var (
		out     = flag.String("out", "data", "output directory (created if missing)")
		docs    = flag.Int("docs", 20000, "number of synthetic citations")
		terms   = flag.Int("terms", 300, "approximate MeSH vocabulary size")
		topics  = flag.Int("topics", 30, "benchmark topics embedded in the corpus")
		tcFrac  = flag.Float64("tc", 0.01, "context-size threshold T_C as a fraction of the corpus")
		tv      = flag.Int("tv", 4096, "view-size limit T_V (non-empty tuples)")
		seed    = flag.Int64("seed", 1, "generation seed")
		segSize = flag.Int("segsize", 0, "posting-list skip-segment size M0 (0 = default 128)")
		dump    = flag.Bool("dump", false, "also write the raw citations as citations.jsonl")
		legacy  = flag.Bool("legacy-snapshots", false, "write index.gob and views.gob as raw gob streams (pre-frame format) instead of checksummed snapshots")
		format  = flag.Int("format", index.MappedFormatVersion, "index file format: 4 = paged mmap-ready, 3 = framed gob snapshot")
		shards  = flag.Int("shards", 1, "document partitions: >1 writes a sharded cluster (shard-NNN dirs + cluster.json) for csserve")
	)
	flag.Parse()
	if err := run(*out, *docs, *terms, *topics, *tcFrac, *tv, *seed, *segSize, *dump, *legacy, *format, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "csbuild:", err)
		os.Exit(1)
	}
}

func run(out string, docs, terms, topics int, tcFrac float64, tv int, seed int64, segSize int, dump, legacy bool, format, shards int) error {
	if format != index.FormatVersion && format != index.MappedFormatVersion {
		return fmt.Errorf("unsupported -format %d (this build writes %d or %d)", format, index.FormatVersion, index.MappedFormatVersion)
	}
	if legacy && format == index.MappedFormatVersion {
		return fmt.Errorf("-legacy-snapshots requires -format %d: the paged format is framed by construction", index.FormatVersion)
	}
	if legacy && shards > 1 {
		return fmt.Errorf("-legacy-snapshots cannot write a sharded cluster")
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	cfg := corpus.DefaultConfig()
	cfg.Seed = seed
	cfg.NumDocs = docs
	cfg.OntologyTerms = terms
	cfg.NumTopics = topics

	t0 := time.Now()
	c, err := corpus.Generate(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d citations over %d MeSH terms in %s\n",
		len(c.Docs), c.Onto.Len(), time.Since(t0).Round(time.Millisecond))

	if err := writeQueries(out, c); err != nil {
		return err
	}
	if shards > 1 {
		return runSharded(out, c, tcFrac, tv, seed, segSize, format, shards, dump)
	}

	t0 = time.Now()
	ix, err := c.BuildIndex(segSize)
	if err != nil {
		return err
	}
	fmt.Printf("indexed: %s in %s\n", ix, time.Since(t0).Round(time.Millisecond))
	for _, field := range []string{ix.Schema().PredicateField, ix.Schema().ContentField} {
		cs := ix.ContainerStats(field)
		fmt.Printf("  %s lists: %d (%d postings) chunks: %d sparse / %d dense, tf arrays: %d, %.2f bytes/posting\n",
			field, cs.Lists, cs.Postings, cs.SparseChunks, cs.DenseChunks, cs.TFLists,
			float64(cs.Bytes)/float64(max64(cs.Postings, 1)))
	}

	tc := int64(tcFrac * float64(docs))
	t0 = time.Now()
	m, err := selection.Select(ix, selection.Config{TC: tc, TV: tv, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("selected %d views (T_C=%d, T_V=%d) in %s\n",
		m.Catalog.Len(), tc, tv, time.Since(t0).Round(time.Millisecond))
	fmt.Printf("  frequent terms=%d separators=%d clique remainders=%d\n",
		m.Result.Stats.FrequentTerms, m.Result.Stats.Separators, m.Result.Stats.CliqueRemainders)

	saveIndex, saveViews := ix.SaveFile, m.Catalog.SaveFile
	if format == index.MappedFormatVersion {
		saveIndex = ix.SaveMapped
	}
	if legacy {
		saveIndex, saveViews = ix.SaveFileLegacy, m.Catalog.SaveFileLegacy
	}
	indexPath := filepath.Join(out, "index.gob")
	t0 = time.Now()
	if err := saveIndex(indexPath); err != nil {
		return err
	}
	saveTime := time.Since(t0)
	if err := saveViews(filepath.Join(out, "views.gob")); err != nil {
		return err
	}
	if err := c.Onto.SaveFile(filepath.Join(out, "mesh.gob")); err != nil {
		return err
	}
	if dump {
		path := filepath.Join(out, "citations.jsonl")
		if err := c.SaveJSONL(path); err != nil {
			return err
		}
		fmt.Printf("dumped raw citations to %s\n", path)
	}
	formatName := fmt.Sprintf("format v%d (paged, mmap-ready)", index.MappedFormatVersion)
	switch {
	case legacy:
		formatName = "legacy raw gob"
	case format == index.FormatVersion:
		formatName = fmt.Sprintf("format v%d (checksummed snapshot)", index.FormatVersion)
	}
	st, err := os.Stat(indexPath)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %.2f MB as %s in %s (%.2f bytes/posting on disk)\n",
		indexPath, float64(st.Size())/(1<<20), formatName, saveTime.Round(time.Millisecond),
		float64(st.Size())/float64(max64(totalPostings(ix), 1)))
	fmt.Printf("wrote %s (views: %.2f MB)\n",
		filepath.Join(out, "views.gob"), float64(m.Catalog.TotalBytes())/(1<<20))
	return nil
}

// writeQueries dumps the corpus topics as a replayable query log
// (queries.txt, "keywords | context terms" per line) for csload.
func writeQueries(out string, c *corpus.Corpus) error {
	if len(c.Topics) == 0 {
		return nil
	}
	var b strings.Builder
	for _, t := range c.Topics {
		b.WriteString(strings.Join(t.Keywords, " "))
		if len(t.ContextTerms) > 0 {
			b.WriteString(" | ")
			b.WriteString(strings.Join(t.ContextTerms, " "))
		}
		b.WriteByte('\n')
	}
	path := filepath.Join(out, "queries.txt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d topic queries)\n", path, len(c.Topics))
	return nil
}

// runSharded hash-partitions the corpus and writes a cluster layout:
// shard-NNN directories each holding an ordinary engine data directory
// (index + views, selected per shard with T_C scaled to the shard's
// size), plus cluster.json. csserve and csrank.OpenSharded load it; the
// merged ranking is bit-identical to the unsharded build.
func runSharded(out string, c *corpus.Corpus, tcFrac float64, tv int, seed int64, segSize, format, shards int, dump bool) error {
	parts, _, err := shard.Split(c.IndexDocuments(), shards)
	if err != nil {
		return err
	}
	t0 := time.Now()
	totalViews := 0
	for i, part := range parts {
		ix, err := index.BuildFrom(corpus.Schema(), segSize, part)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		tc := int64(tcFrac * float64(len(part)))
		if tc < 1 {
			tc = 1
		}
		m, err := selection.Select(ix, selection.Config{TC: tc, TV: tv, Seed: seed})
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		totalViews += m.Catalog.Len()
		sd := shard.ShardDir(out, i)
		if err := os.MkdirAll(sd, 0o755); err != nil {
			return err
		}
		save := ix.SaveFile
		if format == index.MappedFormatVersion {
			save = ix.SaveMapped
		}
		if err := save(filepath.Join(sd, "index.gob")); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if err := m.Catalog.SaveFile(filepath.Join(sd, "views.gob")); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		fmt.Printf("  shard %d: %d docs, %d views (T_C=%d)\n", i, len(part), m.Catalog.Len(), tc)
	}
	if err := shard.SaveManifest(out, shard.NewManifest(len(c.Docs), shards)); err != nil {
		return err
	}
	if err := c.Onto.SaveFile(filepath.Join(out, "mesh.gob")); err != nil {
		return err
	}
	if dump {
		path := filepath.Join(out, "citations.jsonl")
		if err := c.SaveJSONL(path); err != nil {
			return err
		}
		fmt.Printf("dumped raw citations to %s\n", path)
	}
	fmt.Printf("wrote %d-shard cluster (%d docs, %d views, format v%d) under %s in %s\n",
		shards, len(c.Docs), totalViews, format, out, time.Since(t0).Round(time.Millisecond))
	return nil
}

// totalPostings sums postings across every field, the denominator for
// the on-disk bytes/posting figure.
func totalPostings(ix *index.Index) int64 {
	var n int64
	for _, f := range ix.Schema().Fields {
		n += ix.ContainerStats(f.Name).Postings
	}
	return n
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
