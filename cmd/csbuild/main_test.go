package main

import (
	"os"
	"path/filepath"
	"testing"

	"csrank/internal/index"
	"csrank/internal/mesh"
	"csrank/internal/views"
)

func TestRunProducesLoadableArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 2000, 100, 0, 0.02, 128, 1, 0, true); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"index.gob", "views.gob", "mesh.gob", "citations.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
	ix, err := index.LoadFile(filepath.Join(dir, "index.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumDocs() != 2000 {
		t.Errorf("NumDocs = %d", ix.NumDocs())
	}
	cat, err := views.LoadFile(filepath.Join(dir, "views.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() == 0 {
		t.Error("no views persisted")
	}
	onto, err := mesh.LoadFile(filepath.Join(dir, "mesh.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if onto.Len() < 100 {
		t.Errorf("ontology = %d terms", onto.Len())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(t.TempDir(), 0, 100, 0, 0.02, 128, 1, 0, false); err == nil {
		t.Error("zero docs accepted")
	}
	// Unwritable output directory.
	if err := run("/proc/definitely/not/writable", 100, 50, 0, 0.02, 128, 1, 0, false); err == nil {
		t.Error("unwritable dir accepted")
	}
}
