package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"csrank"
	"csrank/internal/index"
	"csrank/internal/mesh"
	"csrank/internal/snapshot"
	"csrank/internal/views"
)

func TestRunProducesLoadableArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 2000, 100, 0, 0.02, 128, 1, 0, true, false, index.MappedFormatVersion, 1); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"index.gob", "views.gob", "mesh.gob", "citations.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "index.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if !snapshot.IsPaged(raw) {
		t.Error("default build did not write the paged v4 format")
	}
	ix, err := index.LoadFile(filepath.Join(dir, "index.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Mapped() {
		t.Error("v4 index did not open through the mapped reader")
	}
	if ix.NumDocs() != 2000 {
		t.Errorf("NumDocs = %d", ix.NumDocs())
	}
	cat, err := views.LoadFile(filepath.Join(dir, "views.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() == 0 {
		t.Error("no views persisted")
	}
	onto, err := mesh.LoadFile(filepath.Join(dir, "mesh.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if onto.Len() < 100 {
		t.Errorf("ontology = %d terms", onto.Len())
	}
}

// TestRunSharded: -shards 4 writes a loadable cluster plus the topic
// query log, and the cluster ranks bit-identically to the unsharded
// build of the same corpus.
func TestRunSharded(t *testing.T) {
	single, cluster := t.TempDir(), t.TempDir()
	if err := run(single, 6000, 150, 10, 0.02, 128, 1, 0, false, false, index.MappedFormatVersion, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(cluster, 6000, 150, 10, 0.02, 128, 1, 0, false, false, index.MappedFormatVersion, 4); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cluster.json", "mesh.gob", "queries.txt",
		filepath.Join("shard-000", "index.gob"), filepath.Join("shard-003", "views.gob")} {
		if _, err := os.Stat(filepath.Join(cluster, name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
	raw, err := os.ReadFile(filepath.Join(cluster, "queries.txt"))
	if err != nil {
		t.Fatal(err)
	}
	queries := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(queries) != 10 {
		t.Fatalf("%d topic queries, want 10", len(queries))
	}

	se, err := csrank.OpenSharded(cluster, csrank.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if se.NumShards() != 4 || se.NumDocs() != 6000 {
		t.Fatalf("cluster: %d shards / %d docs", se.NumShards(), se.NumDocs())
	}
	e, err := csrank.Open(single, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		want, _, err := e.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := se.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("q=%q: %d hits sharded, %d single", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("q=%q rank %d: %+v sharded, want %+v", q, i, got[i], want[i])
			}
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(t.TempDir(), 0, 100, 0, 0.02, 128, 1, 0, false, false, index.MappedFormatVersion, 1); err == nil {
		t.Error("zero docs accepted")
	}
	// Unwritable output directory.
	if err := run("/proc/definitely/not/writable", 100, 50, 0, 0.02, 128, 1, 0, false, false, index.MappedFormatVersion, 1); err == nil {
		t.Error("unwritable dir accepted")
	}
	// The paged format is framed by construction: no legacy opt-out.
	if err := run(t.TempDir(), 100, 50, 0, 0.02, 128, 1, 0, false, true, index.MappedFormatVersion, 1); err == nil {
		t.Error("legacy-snapshots with the paged format accepted")
	}
	if err := run(t.TempDir(), 100, 50, 0, 0.02, 128, 1, 0, false, false, 7, 1); err == nil {
		t.Error("unknown format version accepted")
	}
}

// TestRunGobFormat: -format 3 keeps writing the framed gob snapshot.
func TestRunGobFormat(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 500, 60, 0, 0.02, 128, 1, 0, false, false, index.FormatVersion, 1); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "index.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if snapshot.IsPaged(raw) || !snapshot.IsFramed(raw) {
		t.Error("-format 3 did not write a framed gob snapshot")
	}
	ix, err := index.LoadFile(filepath.Join(dir, "index.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Mapped() {
		t.Error("gob snapshot opened as mapped")
	}
}

// TestRunLegacySnapshots: the -legacy-snapshots opt-out writes raw gob
// streams (no snapshot magic) that LoadFile still reads via sniffing.
func TestRunLegacySnapshots(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 1000, 80, 0, 0.02, 128, 1, 0, false, true, index.FormatVersion, 1); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"index.gob", "views.gob"} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if snapshot.IsFramed(raw) {
			t.Errorf("%s carries the snapshot frame despite -legacy-snapshots", name)
		}
	}
	if _, err := index.LoadFile(filepath.Join(dir, "index.gob")); err != nil {
		t.Fatal(err)
	}
	if _, err := views.LoadFile(filepath.Join(dir, "views.gob")); err != nil {
		t.Fatal(err)
	}
}
