package main

import (
	"os"
	"path/filepath"
	"testing"

	"csrank/internal/index"
	"csrank/internal/mesh"
	"csrank/internal/snapshot"
	"csrank/internal/views"
)

func TestRunProducesLoadableArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 2000, 100, 0, 0.02, 128, 1, 0, true, false); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"index.gob", "views.gob", "mesh.gob", "citations.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
	ix, err := index.LoadFile(filepath.Join(dir, "index.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumDocs() != 2000 {
		t.Errorf("NumDocs = %d", ix.NumDocs())
	}
	cat, err := views.LoadFile(filepath.Join(dir, "views.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() == 0 {
		t.Error("no views persisted")
	}
	onto, err := mesh.LoadFile(filepath.Join(dir, "mesh.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if onto.Len() < 100 {
		t.Errorf("ontology = %d terms", onto.Len())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(t.TempDir(), 0, 100, 0, 0.02, 128, 1, 0, false, false); err == nil {
		t.Error("zero docs accepted")
	}
	// Unwritable output directory.
	if err := run("/proc/definitely/not/writable", 100, 50, 0, 0.02, 128, 1, 0, false, false); err == nil {
		t.Error("unwritable dir accepted")
	}
}

// TestRunLegacySnapshots: the -legacy-snapshots opt-out writes raw gob
// streams (no snapshot magic) that LoadFile still reads via sniffing.
func TestRunLegacySnapshots(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 1000, 80, 0, 0.02, 128, 1, 0, false, true); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"index.gob", "views.gob"} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if snapshot.IsFramed(raw) {
			t.Errorf("%s carries the snapshot frame despite -legacy-snapshots", name)
		}
	}
	if _, err := index.LoadFile(filepath.Join(dir, "index.gob")); err != nil {
		t.Fatal(err)
	}
	if _, err := views.LoadFile(filepath.Join(dir, "views.gob")); err != nil {
		t.Fatal(err)
	}
}
