// Command csload is an open-loop load generator for csserve: it replays
// a query log at one or more fixed arrival rates — firing on schedule
// regardless of how many requests are still in flight, the arrival
// model that actually exposes tail latency and overload shedding — and
// reports exact p50/p90/p99/p999 latency, shed counts (429/503) and
// degraded-result counts per rate level.
//
// Usage:
//
//	csload -url http://localhost:8080 -queries queries.txt -qps 100,400 -duration 10s -out BENCH.json
//	csload -url http://localhost:8080 -compare http://localhost:8081 -queries queries.txt
//	csload -url http://localhost:8080 -ingest 1000 -qps 200 -out INGEST.json
//
// With -ingest N, csload POSTs N synthetic documents to /index
// (csserve must be running with -ingest) at the first -qps rate and
// reports the latency of the WAL-durable acks.
//
// With -compare, every query is sent to both servers and the hit lists
// (doc_id and score) must match exactly — the sharded-vs-single
// equivalence check CI runs.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	neturl "net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// hit / searchResponse mirror csserve's wire format (the csrank.Hit and
// csrank.Stats JSON tags).
type hit struct {
	DocID int     `json:"doc_id"`
	Title string  `json:"title"`
	Score float64 `json:"score"`
}

type shardError struct {
	Shard int    `json:"shard"`
	Kind  string `json:"kind"`
	Err   string `json:"error"`
}

type searchResponse struct {
	Hits  []hit `json:"hits"`
	Stats struct {
		Degraded           bool         `json:"degraded"`
		ShardErrors        []shardError `json:"shard_errors"`
		ResultCacheHit     bool         `json:"result_cache_hit"`
		SingleFlightShared bool         `json:"single_flight_shared"`
	} `json:"stats"`
}

// errCounts splits request failures by class so a report distinguishes
// "the server is down" (connection errors) from "the server is broken"
// (HTTP 5xx) from "the server is slow" (client-side timeout) — three
// different pages for three different on-call actions.
type errCounts struct {
	conn    atomic.Int64 // dial/reset/EOF: could not complete an exchange
	timeout atomic.Int64 // the client's own deadline expired waiting
	http5xx atomic.Int64 // a well-formed 5xx other than the shed 503
	other   atomic.Int64 // anything else (unexpected status, bad body)
}

// transport classifies a round-trip error from the HTTP client.
func (c *errCounts) transport(err error) {
	var ne net.Error
	if errors.Is(err, context.DeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
		c.timeout.Add(1)
		return
	}
	c.conn.Add(1)
}

// status classifies an unexpected (non-200, non-shed) response code.
func (c *errCounts) status(code int) {
	if code >= 500 {
		c.http5xx.Add(1)
		return
	}
	c.other.Add(1)
}

func (c *errCounts) total() int64 {
	return c.conn.Load() + c.timeout.Load() + c.http5xx.Load() + c.other.Load()
}

// indexRequest / indexResponse mirror csserve's POST /index wire
// format.
type indexRequest struct {
	Title      string   `json:"title"`
	Body       string   `json:"body"`
	Predicates []string `json:"predicates,omitempty"`
}

type indexResponse struct {
	DocID   int `json:"doc_id"`
	Pending int `json:"pending"`
}

// ingestResult is the -ingest report: open-loop write throughput and
// the latency of the WAL-durable ack.
type ingestResult struct {
	QPS            float64 `json:"qps"`
	Sent           int64   `json:"sent"`
	OK             int64   `json:"ok"`
	Shed429        int64   `json:"shed_429"`
	Shed503        int64   `json:"shed_503"`
	Errors         int64   `json:"errors"` // total of the classes below
	ConnErrors     int64   `json:"conn_errors"`
	HTTP5xx        int64   `json:"http_5xx"`
	ClientTimeouts int64   `json:"client_timeouts"`
	FirstDoc       int     `json:"first_doc_id"`
	LastDoc        int     `json:"last_doc_id"`
	P50ms          float64 `json:"p50_ms"`
	P90ms          float64 `json:"p90_ms"`
	P99ms          float64 `json:"p99_ms"`
	P999ms         float64 `json:"p999_ms"`
}

// levelResult is one arrival-rate level's outcome in the -out report.
type levelResult struct {
	QPS            float64 `json:"qps"`
	Sent           int64   `json:"sent"`
	OK             int64   `json:"ok"`
	Shed429        int64   `json:"shed_429"`
	Shed503        int64   `json:"shed_503"`
	Errors         int64   `json:"errors"` // total of the classes below
	ConnErrors     int64   `json:"conn_errors"`
	HTTP5xx        int64   `json:"http_5xx"`
	ClientTimeouts int64   `json:"client_timeouts"`
	Degraded       int64   `json:"degraded"`
	Partial        int64   `json:"partial_results"`
	// DistinctQueries is how many distinct query strings the level fired —
	// the working-set size a result cache had to cover (with -zipf this is
	// typically far below Sent).
	DistinctQueries int64 `json:"distinct_queries"`
	// CacheHits / CacheMisses / Coalesced split the OK responses by how
	// the server answered: from its result cache, by real execution, or by
	// coalescing onto a concurrent identical query.
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	Coalesced   int64   `json:"coalesced"`
	P50ms       float64 `json:"p50_ms"`
	P90ms       float64 `json:"p90_ms"`
	P99ms       float64 `json:"p99_ms"`
	P999ms      float64 `json:"p999_ms"`
	// HitP*/MissP* are the same percentiles over only the cache-hit and
	// only the cache-miss responses (0 when the class is empty) — the
	// split that shows what the cache is actually worth at the tail.
	HitP50ms   float64 `json:"hit_p50_ms"`
	HitP90ms   float64 `json:"hit_p90_ms"`
	HitP99ms   float64 `json:"hit_p99_ms"`
	HitP999ms  float64 `json:"hit_p999_ms"`
	MissP50ms  float64 `json:"miss_p50_ms"`
	MissP90ms  float64 `json:"miss_p90_ms"`
	MissP99ms  float64 `json:"miss_p99_ms"`
	MissP999ms float64 `json:"miss_p999_ms"`
}

func main() {
	var (
		url      = flag.String("url", "http://localhost:8080", "csserve base URL")
		queries  = flag.String("queries", "", "file with one query per line (required)")
		qps      = flag.String("qps", "100", "comma-separated arrival rates to run, e.g. 100,400")
		duration = flag.Duration("duration", 10*time.Second, "how long to hold each rate")
		k        = flag.Int("k", 10, "results per query")
		out      = flag.String("out", "", "write the per-level JSON report here (default stdout)")
		compare  = flag.String("compare", "", "second csserve URL: check both servers return identical hits for every query, then exit")
		ingest   = flag.Int("ingest", 0, "POST this many synthetic documents to /index at the first -qps rate and report ack latency, then exit")
		chaos    = flag.Bool("chaos", false, "run a chaos drill: arm corrupt-block and panic faults on one shard via /chaosz (csserve must run with -chaos), assert every query still answers as a degraded partial result with zero errors and that the breakers recover, then exit")
		zipf     = flag.Bool("zipf", false, "draw queries from a zipfian (s=1.0) popularity distribution over the query log instead of cycling it — the skewed arrival pattern result caches are sized for")
	)
	flag.Parse()
	if err := run(*url, *queries, *qps, *duration, *k, *out, *compare, *ingest, *chaos, *zipf); err != nil {
		fmt.Fprintln(os.Stderr, "csload:", err)
		os.Exit(1)
	}
}

func run(url, queriesPath, qpsList string, duration time.Duration, k int, out, compare string, ingest int, chaos, zipf bool) error {
	if ingest > 0 {
		field := strings.Split(qpsList, ",")[0]
		rate, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil || rate <= 0 {
			return fmt.Errorf("bad qps %q", field)
		}
		fmt.Fprintf(os.Stderr, "csload: ingesting %d documents at %v qps into %s\n", ingest, rate, url)
		ir, err := runIngest(url, ingest, rate)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "csload: sent=%d ok=%d shed=%d+%d errors=%d p50=%.2fms p99=%.2fms p999=%.2fms\n",
			ir.Sent, ir.OK, ir.Shed429, ir.Shed503, ir.Errors, ir.P50ms, ir.P99ms, ir.P999ms)
		if ir.Errors > 0 {
			return fmt.Errorf("%d ingest request(s) failed with non-shed errors", ir.Errors)
		}
		return writeReport(out, ir)
	}
	if queriesPath == "" {
		return fmt.Errorf("-queries is required")
	}
	qs, err := readQueries(queriesPath)
	if err != nil {
		return err
	}
	if compare != "" {
		n, err := compareServers(url, compare, qs, k)
		if err != nil {
			return err
		}
		fmt.Printf("compare: %d queries identical on %s and %s\n", n, url, compare)
		return nil
	}
	if chaos {
		cr, err := runChaos(url, qs, k)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "csload: chaos: queries=%d ok=%d degraded=%d attributed=%d errors=%d recovered=%v\n",
			cr.Queries, cr.OK, cr.Degraded, cr.Attributed, cr.Errors, cr.Recovered)
		return writeReport(out, cr)
	}

	var results []levelResult
	for _, field := range strings.Split(qpsList, ",") {
		rate, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil || rate <= 0 {
			return fmt.Errorf("bad qps %q", field)
		}
		fmt.Fprintf(os.Stderr, "csload: %v qps for %v against %s (zipf=%v)\n", rate, duration, url, zipf)
		lr, err := runLevel(url, qs, rate, duration, k, zipf)
		if err != nil {
			return err
		}
		results = append(results, lr)
		fmt.Fprintf(os.Stderr, "csload: sent=%d ok=%d shed=%d+%d errors=%d degraded=%d distinct=%d hits=%d coalesced=%d p50=%.2fms p99=%.2fms p999=%.2fms\n",
			lr.Sent, lr.OK, lr.Shed429, lr.Shed503, lr.Errors, lr.Degraded, lr.DistinctQueries, lr.CacheHits, lr.Coalesced, lr.P50ms, lr.P99ms, lr.P999ms)
		if lr.Errors > 0 {
			return fmt.Errorf("%d request(s) failed with non-shed errors at %v qps", lr.Errors, rate)
		}
	}

	return writeReport(out, results)
}

// writeReport writes v as indented JSON to the -out path, or stdout.
func writeReport(out string, v any) error {
	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func readQueries(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var qs []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			qs = append(qs, line)
		}
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("%s holds no queries", path)
	}
	return qs, nil
}

// zipfPicker draws query indexes from a zipfian popularity distribution
// with exponent s=1.0: P(rank r) ∝ 1/r over the query log, queries.txt
// order = popularity order. The stdlib's rand.Zipf requires s > 1, so
// this inverts the harmonic CDF directly — exact, deterministic
// (seeded), and O(log n) per draw.
type zipfPicker struct {
	rng *rand.Rand
	cdf []float64
}

func newZipfPicker(n int, seed int64) *zipfPicker {
	cdf := make([]float64, n)
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += 1.0 / float64(r+1)
		cdf[r] = sum
	}
	for r := range cdf {
		cdf[r] /= sum
	}
	return &zipfPicker{rng: rand.New(rand.NewSource(seed)), cdf: cdf}
}

func (z *zipfPicker) pick() int {
	i := sort.SearchFloat64s(z.cdf, z.rng.Float64())
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return i
}

// runLevel fires requests open-loop at the given rate for the given
// duration — cycling through the query log, or sampling it zipfian with
// zipf — and waits for every in-flight request before computing exact
// percentiles, overall and split by cache-hit vs cache-miss.
func runLevel(url string, qs []string, rate float64, duration time.Duration, k int, zipf bool) (levelResult, error) {
	lr := levelResult{QPS: rate}
	interval := time.Duration(float64(time.Second) / rate)
	client := &http.Client{Timeout: 30 * time.Second}
	var zp *zipfPicker
	if zipf {
		zp = newZipfPicker(len(qs), 1)
	}

	var (
		mu                   sync.Mutex
		latencies            []time.Duration
		hitLat, missLat      []time.Duration
		ok, s429, s503       atomic.Int64
		degraded, partial    atomic.Int64
		cacheHits, coalesced atomic.Int64
		ec                   errCounts
		wg                   sync.WaitGroup
	)
	distinct := make(map[int]bool)
	deadline := time.Now().Add(duration)
	next := time.Now()
	for i := 0; time.Now().Before(deadline); i++ {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		next = next.Add(interval)
		qi := i % len(qs)
		if zp != nil {
			qi = zp.pick()
		}
		distinct[qi] = true
		q := qs[qi]
		lr.Sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			resp, err := client.Get(fmt.Sprintf("%s/search?q=%s&k=%d", url, neturl.QueryEscape(q), k))
			elapsed := time.Since(start)
			if err != nil {
				ec.transport(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				var sr searchResponse
				if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
					ec.other.Add(1)
					return
				}
				if sr.Stats.Degraded {
					degraded.Add(1)
				}
				if len(sr.Stats.ShardErrors) > 0 {
					partial.Add(1)
				}
				if sr.Stats.ResultCacheHit {
					cacheHits.Add(1)
				}
				if sr.Stats.SingleFlightShared {
					coalesced.Add(1)
				}
				ok.Add(1)
				mu.Lock()
				latencies = append(latencies, elapsed)
				if sr.Stats.ResultCacheHit {
					hitLat = append(hitLat, elapsed)
				} else {
					missLat = append(missLat, elapsed)
				}
				mu.Unlock()
			case http.StatusTooManyRequests:
				s429.Add(1)
			case http.StatusServiceUnavailable:
				s503.Add(1)
			default:
				io.Copy(io.Discard, resp.Body)
				ec.status(resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	lr.OK, lr.Shed429, lr.Shed503 = ok.Load(), s429.Load(), s503.Load()
	lr.Errors, lr.Degraded, lr.Partial = ec.total(), degraded.Load(), partial.Load()
	lr.ConnErrors, lr.HTTP5xx, lr.ClientTimeouts = ec.conn.Load(), ec.http5xx.Load(), ec.timeout.Load()
	lr.DistinctQueries = int64(len(distinct))
	lr.CacheHits, lr.Coalesced = cacheHits.Load(), coalesced.Load()
	lr.CacheMisses = lr.OK - lr.CacheHits
	for _, s := range [][]time.Duration{latencies, hitLat, missLat} {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	lr.P50ms, lr.P90ms = quantile(latencies, 0.50), quantile(latencies, 0.90)
	lr.P99ms, lr.P999ms = quantile(latencies, 0.99), quantile(latencies, 0.999)
	lr.HitP50ms, lr.HitP90ms = quantile(hitLat, 0.50), quantile(hitLat, 0.90)
	lr.HitP99ms, lr.HitP999ms = quantile(hitLat, 0.99), quantile(hitLat, 0.999)
	lr.MissP50ms, lr.MissP90ms = quantile(missLat, 0.50), quantile(missLat, 0.90)
	lr.MissP99ms, lr.MissP999ms = quantile(missLat, 0.99), quantile(missLat, 0.999)
	return lr, nil
}

// ingestVocab seeds the synthetic document generator: enough distinct
// terms that postings actually grow, few enough that terms repeat and
// the scorer has real collection statistics to update.
var ingestVocab = []string{
	"pancreas", "leukemia", "carcinoma", "therapy", "receptor",
	"kinase", "mutation", "biopsy", "lesion", "remission",
	"antibody", "protein", "genome", "clinical", "cohort",
}

// runIngest POSTs n synthetic documents to /index open-loop at the
// given arrival rate — like runLevel, requests fire on schedule rather
// than waiting for acks, so the measured latency includes any queueing
// inside the server's admission controller and WAL fsync path.
func runIngest(url string, n int, rate float64) (ingestResult, error) {
	ir := ingestResult{QPS: rate, FirstDoc: -1, LastDoc: -1}
	interval := time.Duration(float64(time.Second) / rate)
	client := &http.Client{Timeout: 30 * time.Second}
	rng := rand.New(rand.NewSource(1))

	docs := make([][]byte, n)
	for i := range docs {
		words := make([]string, 12)
		for j := range words {
			words[j] = ingestVocab[rng.Intn(len(ingestVocab))]
		}
		body, err := json.Marshal(indexRequest{
			Title:      fmt.Sprintf("synthetic document %d", i),
			Body:       strings.Join(words, " "),
			Predicates: []string{ingestVocab[rng.Intn(len(ingestVocab))]},
		})
		if err != nil {
			return ir, err
		}
		docs[i] = body
	}

	var (
		mu             sync.Mutex
		latencies      []time.Duration
		first, last    atomic.Int64
		ok, s429, s503 atomic.Int64
		ec             errCounts
		wg             sync.WaitGroup
	)
	first.Store(-1)
	last.Store(-1)
	next := time.Now()
	for i := 0; i < n; i++ {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		next = next.Add(interval)
		body := docs[i]
		ir.Sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			resp, err := client.Post(url+"/index", "application/json", strings.NewReader(string(body)))
			elapsed := time.Since(start)
			if err != nil {
				ec.transport(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				var ack indexResponse
				if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
					ec.other.Add(1)
					return
				}
				ok.Add(1)
				id := int64(ack.DocID)
				for {
					f := first.Load()
					if f != -1 && f <= id {
						break
					}
					if first.CompareAndSwap(f, id) {
						break
					}
				}
				for {
					l := last.Load()
					if l >= id {
						break
					}
					if last.CompareAndSwap(l, id) {
						break
					}
				}
				mu.Lock()
				latencies = append(latencies, elapsed)
				mu.Unlock()
			case http.StatusTooManyRequests:
				s429.Add(1)
			case http.StatusServiceUnavailable:
				s503.Add(1)
			default:
				io.Copy(io.Discard, resp.Body)
				ec.status(resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	ir.OK, ir.Shed429, ir.Shed503, ir.Errors = ok.Load(), s429.Load(), s503.Load(), ec.total()
	ir.ConnErrors, ir.HTTP5xx, ir.ClientTimeouts = ec.conn.Load(), ec.http5xx.Load(), ec.timeout.Load()
	ir.FirstDoc, ir.LastDoc = int(first.Load()), int(last.Load())
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	ir.P50ms = quantile(latencies, 0.50)
	ir.P90ms = quantile(latencies, 0.90)
	ir.P99ms = quantile(latencies, 0.99)
	ir.P999ms = quantile(latencies, 0.999)
	return ir, nil
}

// chaosResult is the -chaos drill report.
type chaosResult struct {
	// Faults lists the injected fault kinds, in order.
	Faults []string `json:"faults"`
	// TargetShard is the shard the faults were armed against.
	TargetShard int `json:"target_shard"`
	// Queries/OK/Degraded/Attributed/Errors count the drill's searches:
	// every one must answer 200 (OK), flagged degraded, with the lost
	// shard attributed in shard_errors (attributed); errors must be 0.
	Queries    int64 `json:"queries"`
	OK         int64 `json:"ok"`
	Degraded   int64 `json:"degraded"`
	Attributed int64 `json:"attributed"`
	Errors     int64 `json:"errors"`
	// Recovered reports that after disarming, every breaker returned to
	// closed (probed successfully) within the recovery window.
	Recovered bool `json:"breakers_recovered"`
}

// healthz mirrors the subset of csserve's /healthz the drill reads.
type healthz struct {
	Status    string `json:"status"`
	NumShards int    `json:"num_shards"`
	Shards    []struct {
		Shard int    `json:"shard"`
		State string `json:"state"`
	} `json:"shards"`
}

// runChaos drives a fault drill against a live csserve started with
// -chaos: for each fault kind it arms the fault on one shard, fires
// queries — every one of which must still answer 200, flagged degraded,
// with the loss attributed to the faulted shard — then disarms and
// drives probe queries until the shard's breaker closes again. Any
// hard failure (non-2xx besides shed, transport error) fails the drill.
func runChaos(url string, qs []string, k int) (chaosResult, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	cr := chaosResult{Faults: []string{"corrupt", "panic"}}

	var h healthz
	if err := getChaosJSON(client, url+"/healthz", &h); err != nil {
		return cr, fmt.Errorf("healthz: %w", err)
	}
	if h.NumShards < 2 {
		return cr, fmt.Errorf("chaos drill needs ≥ 2 shards (one to fault, the rest to answer); server has %d", h.NumShards)
	}
	cr.TargetShard = 1

	arm := func(body string) error {
		resp, err := client.Post(url+"/chaosz", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("chaosz: status %d: %s (is csserve running with -chaos?)", resp.StatusCode, strings.TrimSpace(string(b)))
		}
		io.Copy(io.Discard, resp.Body)
		return nil
	}

	for _, fault := range cr.Faults {
		if err := arm(fmt.Sprintf(`{"shard": %d, "%s": true}`, cr.TargetShard, fault)); err != nil {
			return cr, err
		}
		for i := 0; i < 25; i++ {
			q := qs[i%len(qs)]
			cr.Queries++
			resp, err := client.Get(fmt.Sprintf("%s/search?q=%s&k=%d", url, neturl.QueryEscape(q), k))
			if err != nil {
				cr.Errors++
				continue
			}
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				cr.Errors++
				continue
			}
			var sr searchResponse
			err = json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			if err != nil {
				cr.Errors++
				continue
			}
			cr.OK++
			if sr.Stats.Degraded {
				cr.Degraded++
			}
			for _, se := range sr.Stats.ShardErrors {
				if se.Shard == cr.TargetShard {
					cr.Attributed++
					break
				}
			}
		}
		if err := arm(`{"disarm": true}`); err != nil {
			return cr, err
		}
		// Recovery: the open breaker needs its backoff to expire and then a
		// probe query to succeed, so keep poking until every shard reports
		// closed (or the window expires).
		cr.Recovered = false
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if resp, err := client.Get(fmt.Sprintf("%s/search?q=%s&k=%d", url, neturl.QueryEscape(qs[0]), k)); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if err := getChaosJSON(client, url+"/healthz", &h); err == nil {
				closed := 0
				for _, s := range h.Shards {
					if s.State == "closed" {
						closed++
					}
				}
				if closed == h.NumShards {
					cr.Recovered = true
					break
				}
			}
			time.Sleep(200 * time.Millisecond)
		}
		if !cr.Recovered {
			return cr, fmt.Errorf("breakers did not all close within 15s of disarming %s fault", fault)
		}
	}

	switch {
	case cr.Errors > 0:
		return cr, fmt.Errorf("%d of %d chaos queries failed hard (want 0: every query must answer degraded)", cr.Errors, cr.Queries)
	case cr.Degraded == 0:
		return cr, fmt.Errorf("no chaos query came back degraded — faults are not reaching the query path")
	case cr.Attributed == 0:
		return cr, fmt.Errorf("no degraded response attributed the loss to shard %d", cr.TargetShard)
	}
	return cr, nil
}

// getChaosJSON fetches a JSON endpoint, accepting 503 (a degraded
// /healthz still carries the body the drill reads).
func getChaosJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// quantile returns the exact q-quantile of sorted samples, in
// milliseconds, by the nearest-rank definition: the smallest sample
// such that at least q·n samples are ≤ it, i.e. index ⌈q·n⌉-1. The
// earlier ⌊q·n⌋ indexing was off by one — most visibly at small n,
// where p999 of 100 samples read past the intended rank, and p50 of an
// even n returned the (n/2+1)-th sample instead of the n/2-th.
func quantile(sorted []time.Duration, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

// compareServers fetches every query from both servers sequentially and
// fails on the first hit-list divergence (doc_id or score). Shed
// responses are retried a few times — equivalence needs an answer, not
// an admission decision.
func compareServers(urlA, urlB string, qs []string, k int) (int, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	fetch := func(url, q string) (searchResponse, error) {
		var sr searchResponse
		for attempt := 0; ; attempt++ {
			resp, err := client.Get(fmt.Sprintf("%s/search?q=%s&k=%d", url, neturl.QueryEscape(q), k))
			if err != nil {
				return sr, err
			}
			if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if attempt >= 5 {
					return sr, fmt.Errorf("%s: shed %d times for %q", url, attempt+1, q)
				}
				time.Sleep(50 * time.Millisecond)
				continue
			}
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				return sr, fmt.Errorf("%s: status %d for %q: %s", url, resp.StatusCode, q, strings.TrimSpace(string(body)))
			}
			err = json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			return sr, err
		}
	}
	// Two rounds over the log: round 1 populates any result cache, round
	// 2 compares cached answers against the other server's fresh (or
	// equally cached) execution — so a cache serving anything but the
	// bit-identical ranking fails the equivalence check, not just a
	// sharding bug.
	for round := 1; round <= 2; round++ {
		for _, q := range qs {
			a, err := fetch(urlA, q)
			if err != nil {
				return 0, err
			}
			b, err := fetch(urlB, q)
			if err != nil {
				return 0, err
			}
			if len(a.Hits) != len(b.Hits) {
				return 0, fmt.Errorf("%q (round %d): %d hits on %s, %d on %s", q, round, len(a.Hits), urlA, len(b.Hits), urlB)
			}
			for i := range a.Hits {
				if a.Hits[i].DocID != b.Hits[i].DocID || a.Hits[i].Score != b.Hits[i].Score {
					return 0, fmt.Errorf("%q (round %d) rank %d: (#%d, %v) on %s but (#%d, %v) on %s",
						q, round, i, a.Hits[i].DocID, a.Hits[i].Score, urlA, b.Hits[i].DocID, b.Hits[i].Score, urlB)
				}
			}
		}
	}
	return 2 * len(qs), nil
}
