// Command csload is an open-loop load generator for csserve: it replays
// a query log at one or more fixed arrival rates — firing on schedule
// regardless of how many requests are still in flight, the arrival
// model that actually exposes tail latency and overload shedding — and
// reports exact p50/p90/p99/p999 latency, shed counts (429/503) and
// degraded-result counts per rate level.
//
// Usage:
//
//	csload -url http://localhost:8080 -queries queries.txt -qps 100,400 -duration 10s -out BENCH.json
//	csload -url http://localhost:8080 -compare http://localhost:8081 -queries queries.txt
//
// With -compare, every query is sent to both servers and the hit lists
// (doc_id and score) must match exactly — the sharded-vs-single
// equivalence check CI runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// hit / searchResponse mirror csserve's wire format (the csrank.Hit and
// csrank.Stats JSON tags).
type hit struct {
	DocID int     `json:"doc_id"`
	Title string  `json:"title"`
	Score float64 `json:"score"`
}

type searchResponse struct {
	Hits  []hit `json:"hits"`
	Stats struct {
		Degraded bool `json:"degraded"`
	} `json:"stats"`
}

// levelResult is one arrival-rate level's outcome in the -out report.
type levelResult struct {
	QPS      float64 `json:"qps"`
	Sent     int64   `json:"sent"`
	OK       int64   `json:"ok"`
	Shed429  int64   `json:"shed_429"`
	Shed503  int64   `json:"shed_503"`
	Errors   int64   `json:"errors"`
	Degraded int64   `json:"degraded"`
	P50ms    float64 `json:"p50_ms"`
	P90ms    float64 `json:"p90_ms"`
	P99ms    float64 `json:"p99_ms"`
	P999ms   float64 `json:"p999_ms"`
}

func main() {
	var (
		url      = flag.String("url", "http://localhost:8080", "csserve base URL")
		queries  = flag.String("queries", "", "file with one query per line (required)")
		qps      = flag.String("qps", "100", "comma-separated arrival rates to run, e.g. 100,400")
		duration = flag.Duration("duration", 10*time.Second, "how long to hold each rate")
		k        = flag.Int("k", 10, "results per query")
		out      = flag.String("out", "", "write the per-level JSON report here (default stdout)")
		compare  = flag.String("compare", "", "second csserve URL: check both servers return identical hits for every query, then exit")
	)
	flag.Parse()
	if err := run(*url, *queries, *qps, *duration, *k, *out, *compare); err != nil {
		fmt.Fprintln(os.Stderr, "csload:", err)
		os.Exit(1)
	}
}

func run(url, queriesPath, qpsList string, duration time.Duration, k int, out, compare string) error {
	if queriesPath == "" {
		return fmt.Errorf("-queries is required")
	}
	qs, err := readQueries(queriesPath)
	if err != nil {
		return err
	}
	if compare != "" {
		n, err := compareServers(url, compare, qs, k)
		if err != nil {
			return err
		}
		fmt.Printf("compare: %d queries identical on %s and %s\n", n, url, compare)
		return nil
	}

	var results []levelResult
	for _, field := range strings.Split(qpsList, ",") {
		rate, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil || rate <= 0 {
			return fmt.Errorf("bad qps %q", field)
		}
		fmt.Fprintf(os.Stderr, "csload: %v qps for %v against %s\n", rate, duration, url)
		lr, err := runLevel(url, qs, rate, duration, k)
		if err != nil {
			return err
		}
		results = append(results, lr)
		fmt.Fprintf(os.Stderr, "csload: sent=%d ok=%d shed=%d+%d errors=%d degraded=%d p50=%.2fms p99=%.2fms p999=%.2fms\n",
			lr.Sent, lr.OK, lr.Shed429, lr.Shed503, lr.Errors, lr.Degraded, lr.P50ms, lr.P99ms, lr.P999ms)
		if lr.Errors > 0 {
			return fmt.Errorf("%d request(s) failed with non-shed errors at %v qps", lr.Errors, rate)
		}
	}

	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func readQueries(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var qs []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			qs = append(qs, line)
		}
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("%s holds no queries", path)
	}
	return qs, nil
}

// runLevel fires requests open-loop at the given rate for the given
// duration, cycling through the query log, and waits for every
// in-flight request before computing exact percentiles.
func runLevel(url string, qs []string, rate float64, duration time.Duration, k int) (levelResult, error) {
	lr := levelResult{QPS: rate}
	interval := time.Duration(float64(time.Second) / rate)
	client := &http.Client{Timeout: 30 * time.Second}

	var (
		mu                             sync.Mutex
		latencies                      []time.Duration
		ok, s429, s503, errs, degraded atomic.Int64
		wg                             sync.WaitGroup
	)
	deadline := time.Now().Add(duration)
	next := time.Now()
	for i := 0; time.Now().Before(deadline); i++ {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		next = next.Add(interval)
		q := qs[i%len(qs)]
		lr.Sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			resp, err := client.Get(fmt.Sprintf("%s/search?q=%s&k=%d", url, neturl.QueryEscape(q), k))
			elapsed := time.Since(start)
			if err != nil {
				errs.Add(1)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				var sr searchResponse
				if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
					errs.Add(1)
					return
				}
				if sr.Stats.Degraded {
					degraded.Add(1)
				}
				ok.Add(1)
				mu.Lock()
				latencies = append(latencies, elapsed)
				mu.Unlock()
			case http.StatusTooManyRequests:
				s429.Add(1)
			case http.StatusServiceUnavailable:
				s503.Add(1)
			default:
				io.Copy(io.Discard, resp.Body)
				errs.Add(1)
			}
		}()
	}
	wg.Wait()
	lr.OK, lr.Shed429, lr.Shed503 = ok.Load(), s429.Load(), s503.Load()
	lr.Errors, lr.Degraded = errs.Load(), degraded.Load()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	lr.P50ms = quantile(latencies, 0.50)
	lr.P90ms = quantile(latencies, 0.90)
	lr.P99ms = quantile(latencies, 0.99)
	lr.P999ms = quantile(latencies, 0.999)
	return lr, nil
}

// quantile returns the exact q-quantile (nearest-rank) of sorted
// samples, in milliseconds.
func quantile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}

// compareServers fetches every query from both servers sequentially and
// fails on the first hit-list divergence (doc_id or score). Shed
// responses are retried a few times — equivalence needs an answer, not
// an admission decision.
func compareServers(urlA, urlB string, qs []string, k int) (int, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	fetch := func(url, q string) (searchResponse, error) {
		var sr searchResponse
		for attempt := 0; ; attempt++ {
			resp, err := client.Get(fmt.Sprintf("%s/search?q=%s&k=%d", url, neturl.QueryEscape(q), k))
			if err != nil {
				return sr, err
			}
			if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if attempt >= 5 {
					return sr, fmt.Errorf("%s: shed %d times for %q", url, attempt+1, q)
				}
				time.Sleep(50 * time.Millisecond)
				continue
			}
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				return sr, fmt.Errorf("%s: status %d for %q: %s", url, resp.StatusCode, q, strings.TrimSpace(string(body)))
			}
			err = json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			return sr, err
		}
	}
	for _, q := range qs {
		a, err := fetch(urlA, q)
		if err != nil {
			return 0, err
		}
		b, err := fetch(urlB, q)
		if err != nil {
			return 0, err
		}
		if len(a.Hits) != len(b.Hits) {
			return 0, fmt.Errorf("%q: %d hits on %s, %d on %s", q, len(a.Hits), urlA, len(b.Hits), urlB)
		}
		for i := range a.Hits {
			if a.Hits[i].DocID != b.Hits[i].DocID || a.Hits[i].Score != b.Hits[i].Score {
				return 0, fmt.Errorf("%q rank %d: (#%d, %v) on %s but (#%d, %v) on %s",
					q, i, a.Hits[i].DocID, a.Hits[i].Score, urlA, b.Hits[i].DocID, b.Hits[i].Score, urlB)
			}
		}
	}
	return len(qs), nil
}
