package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeServe returns an httptest server speaking csserve's wire format,
// scoring docs deterministically from a seed so two servers with the
// same seed are "identical clusters" and different seeds diverge.
func fakeServe(seed float64) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, `{"error":"missing q"}`, http.StatusBadRequest)
			return
		}
		var sr searchResponse
		for i := 0; i < 3; i++ {
			sr.Hits = append(sr.Hits, hit{DocID: i, Title: fmt.Sprintf("doc %d", i), Score: seed - float64(i)})
		}
		json.NewEncoder(w).Encode(sr)
	}))
}

func writeQueries(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "queries.txt")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadQueries(t *testing.T) {
	path := writeQueries(t, "a | x\n\n  b  \n")
	qs, err := readQueries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0] != "a | x" || qs[1] != "b" {
		t.Fatalf("qs = %q", qs)
	}
	if _, err := readQueries(writeQueries(t, "\n\n")); err == nil {
		t.Fatal("empty query file accepted")
	}
}

func TestQuantile(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 1000; i++ {
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	if p50 := quantile(samples, 0.50); p50 != 501 {
		t.Fatalf("p50 = %v", p50)
	}
	if p999 := quantile(samples, 0.999); p999 != 1000 {
		t.Fatalf("p999 = %v", p999)
	}
	if quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile not 0")
	}
}

func TestRunLevel(t *testing.T) {
	ts := fakeServe(10)
	defer ts.Close()
	lr, err := runLevel(ts.URL, []string{"pancreas | digestive_system"}, 200, 250*time.Millisecond, 5)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Sent == 0 || lr.OK != lr.Sent || lr.Errors != 0 {
		t.Fatalf("level result %+v", lr)
	}
	if lr.P50ms <= 0 || lr.P999ms < lr.P50ms {
		t.Fatalf("percentiles %+v", lr)
	}
}

func TestCompareServers(t *testing.T) {
	a, b := fakeServe(10), fakeServe(10)
	defer a.Close()
	defer b.Close()
	qs := []string{"q one", "q two | ctx"}
	n, err := compareServers(a.URL, b.URL, qs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("compared %d queries", n)
	}
	c := fakeServe(99) // diverging scores
	defer c.Close()
	if _, err := compareServers(a.URL, c.URL, qs, 5); err == nil {
		t.Fatal("diverging servers compared equal")
	}
}
