package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeServe returns an httptest server speaking csserve's wire format,
// scoring docs deterministically from a seed so two servers with the
// same seed are "identical clusters" and different seeds diverge.
func fakeServe(seed float64) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if q == "" {
			http.Error(w, `{"error":"missing q"}`, http.StatusBadRequest)
			return
		}
		var sr searchResponse
		for i := 0; i < 3; i++ {
			sr.Hits = append(sr.Hits, hit{DocID: i, Title: fmt.Sprintf("doc %d", i), Score: seed - float64(i)})
		}
		json.NewEncoder(w).Encode(sr)
	}))
}

func writeQueries(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "queries.txt")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadQueries(t *testing.T) {
	path := writeQueries(t, "a | x\n\n  b  \n")
	qs, err := readQueries(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0] != "a | x" || qs[1] != "b" {
		t.Fatalf("qs = %q", qs)
	}
	if _, err := readQueries(writeQueries(t, "\n\n")); err == nil {
		t.Fatal("empty query file accepted")
	}
}

// TestQuantile pins the nearest-rank definition at the edges where the
// old ⌊q·n⌋ indexing was off by one: the smallest sample with at least
// q·n samples ≤ it lives at index ⌈q·n⌉-1, so p50 of 1..1000 is the
// 500th sample (500ms), not the 501st, and p999 of 100 samples is the
// 100th (⌈99.9⌉ = 100), which the old formula happened to hit only via
// its end clamp.
func TestQuantile(t *testing.T) {
	ladder := func(n int) []time.Duration {
		s := make([]time.Duration, n)
		for i := range s {
			s[i] = time.Duration(i+1) * time.Millisecond
		}
		return s
	}
	cases := []struct {
		name    string
		samples []time.Duration
		q       float64
		want    float64
	}{
		{"empty", nil, 0.5, 0},
		{"single p50", ladder(1), 0.50, 1},
		{"single p999", ladder(1), 0.999, 1},
		// Even n: ⌈0.5·1000⌉ = 500 → the 500th sample. The buggy
		// formula returned the 501st.
		{"p50 of 1000", ladder(1000), 0.50, 500},
		{"p90 of 1000", ladder(1000), 0.90, 900},
		{"p99 of 1000", ladder(1000), 0.99, 990},
		{"p999 of 1000", ladder(1000), 0.999, 999},
		// Small n, high quantile: fewer samples than 1/(1-q). p999 of
		// 100 must be the maximum, ⌈99.9⌉ = 100.
		{"p999 of 100", ladder(100), 0.999, 100},
		{"p99 of 10", ladder(10), 0.99, 10},
		{"p90 of 10", ladder(10), 0.90, 9},
		// Odd n: ⌈0.5·5⌉ = 3, the true median.
		{"p50 of 5", ladder(5), 0.50, 3},
		{"p50 of 2", ladder(2), 0.50, 1},
		// Boundary quantiles.
		{"p0", ladder(10), 0, 1},
		{"p100", ladder(10), 1, 10},
	}
	for _, tc := range cases {
		if got := quantile(tc.samples, tc.q); got != tc.want {
			t.Errorf("%s: quantile(n=%d, q=%v) = %v, want %v",
				tc.name, len(tc.samples), tc.q, got, tc.want)
		}
	}
}

func TestRunLevel(t *testing.T) {
	ts := fakeServe(10)
	defer ts.Close()
	lr, err := runLevel(ts.URL, []string{"pancreas | digestive_system"}, 200, 250*time.Millisecond, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Sent == 0 || lr.OK != lr.Sent || lr.Errors != 0 {
		t.Fatalf("level result %+v", lr)
	}
	if lr.P50ms <= 0 || lr.P999ms < lr.P50ms {
		t.Fatalf("percentiles %+v", lr)
	}
	if lr.DistinctQueries != 1 || lr.CacheHits+lr.CacheMisses != lr.OK {
		t.Fatalf("cache split %+v", lr)
	}
}

// TestZipfPicker pins the sampler's shape: deterministic under a seed,
// in-range, and actually skewed — rank 0 must draw roughly 1/H(n) of
// the samples, far above uniform.
func TestZipfPicker(t *testing.T) {
	const n, draws = 100, 20000
	z := newZipfPicker(n, 1)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		idx := z.pick()
		if idx < 0 || idx >= n {
			t.Fatalf("pick %d out of range [0,%d)", idx, n)
		}
		counts[idx]++
	}
	// H(100) ≈ 5.19, so rank 0 expects ≈ 19% of draws; uniform would be 1%.
	if frac := float64(counts[0]) / draws; frac < 0.15 || frac > 0.25 {
		t.Fatalf("rank-0 fraction %.3f, want ≈ 0.19 (zipf s=1)", frac)
	}
	if counts[0] <= counts[n-1] {
		t.Fatalf("head %d not more popular than tail %d", counts[0], counts[n-1])
	}
	a, b := newZipfPicker(n, 7), newZipfPicker(n, 7)
	for i := 0; i < 100; i++ {
		if x, y := a.pick(), b.pick(); x != y {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, x, y)
		}
	}
}

// fakeIngest returns an httptest server speaking csserve's /index wire
// format, assigning doc IDs from base upward and shedding every
// shedEvery-th request with 429 (0 = never shed).
func fakeIngest(base int, shedEvery int) (*httptest.Server, *int) {
	next := base
	count := 0
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/index" || r.Method != http.MethodPost {
			http.Error(w, `{"error":"not found"}`, http.StatusNotFound)
			return
		}
		var req indexRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Title == "" {
			http.Error(w, `{"error":"bad document"}`, http.StatusBadRequest)
			return
		}
		mu.Lock()
		count++
		if shedEvery > 0 && count%shedEvery == 0 {
			mu.Unlock()
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		id := next
		next++
		pending := next - base
		mu.Unlock()
		json.NewEncoder(w).Encode(indexResponse{DocID: id, Pending: pending})
	}))
	return ts, &next
}

func TestRunIngest(t *testing.T) {
	ts, next := fakeIngest(300, 0)
	defer ts.Close()
	ir, err := runIngest(ts.URL, 40, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if ir.Sent != 40 || ir.OK != 40 || ir.Errors != 0 || ir.Shed429 != 0 {
		t.Fatalf("ingest result %+v", ir)
	}
	if ir.FirstDoc != 300 || ir.LastDoc != 339 {
		t.Fatalf("doc id range [%d, %d], want [300, 339]", ir.FirstDoc, ir.LastDoc)
	}
	if *next != 340 {
		t.Fatalf("server assigned %d ids, want 40", *next-300)
	}
	if ir.P50ms <= 0 || ir.P999ms < ir.P50ms {
		t.Fatalf("percentiles %+v", ir)
	}
}

func TestRunIngestShedding(t *testing.T) {
	ts, _ := fakeIngest(0, 4) // shed every 4th request
	defer ts.Close()
	ir, err := runIngest(ts.URL, 20, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if ir.Shed429 != 5 || ir.OK != 15 || ir.Errors != 0 {
		t.Fatalf("ingest result %+v", ir)
	}
}

func TestCompareServers(t *testing.T) {
	a, b := fakeServe(10), fakeServe(10)
	defer a.Close()
	defer b.Close()
	qs := []string{"q one", "q two | ctx"}
	n, err := compareServers(a.URL, b.URL, qs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 { // two rounds over the two-query log (round 2 is cached-vs-fresh)
		t.Fatalf("compared %d queries, want 4", n)
	}
	c := fakeServe(99) // diverging scores
	defer c.Close()
	if _, err := compareServers(a.URL, c.URL, qs, 5); err == nil {
		t.Fatal("diverging servers compared equal")
	}
}
