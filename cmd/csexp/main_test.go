package main

import (
	"testing"

	"csrank/internal/experiments"
)

func tinyScale() experiments.Scale {
	return experiments.Scale{
		NumDocs:       6000,
		OntologyTerms: 150,
		NumTopics:     10,
		TCFraction:    0.02,
		TV:            256,
		Seed:          1,
	}
}

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"fig6", "viewsel", "storage", "fig7", "fig8", "scorers", "scaling"} {
		if err := run(tinyScale(), exp, 5, ""); err != nil {
			t.Errorf("exp %s: %v", exp, err)
		}
	}
}

func TestRunAll(t *testing.T) {
	if err := run(tinyScale(), "all", 5, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(tinyScale(), "bogus", 5, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}
