// Command csexp regenerates the paper's evaluation (§6) on the synthetic
// corpus: Figure 6 (ranking quality), the §6.2 view-selection and storage
// tables, and Figures 7–8 (query performance).
//
// Usage:
//
//	csexp                       # run everything at the default scale
//	csexp -exp fig6             # one experiment
//	csexp -docs 50000 -seed 7   # other scales
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"csrank/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "all | fig6 | fig7 | fig8 | viewsel | storage | scorers | scaling")
		docs       = flag.Int("docs", 20000, "corpus size")
		terms      = flag.Int("terms", 300, "MeSH vocabulary size")
		topics     = flag.Int("topics", 30, "benchmark topics")
		tcFrac     = flag.Float64("tc", 0.01, "T_C fraction")
		tv         = flag.Int("tv", 256, "T_V view-size limit (paper: 4096 at 18M docs; scaled down with the corpus)")
		seed       = flag.Int64("seed", 1, "generation seed")
		perN       = flag.Int("queries", 50, "queries per keyword count for Figures 7–8")
		export     = flag.String("export", "", "also write TREC topics/qrels/run files into this directory")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csexp:", err)
		os.Exit(1)
	}
	scale := experiments.Scale{
		NumDocs:       *docs,
		OntologyTerms: *terms,
		NumTopics:     *topics,
		TCFraction:    *tcFrac,
		TV:            *tv,
		Seed:          *seed,
	}
	err = run(scale, *exp, *perN, *export)
	stopProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "csexp:", err)
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and arranges a heap snapshot; the
// returned function stops the CPU profile and writes the memory profile.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	stop = func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath != "" {
		cpuStop := stop
		stop = func() {
			cpuStop()
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // get up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}
	return stop, nil
}

func run(scale experiments.Scale, exp string, perN int, export string) error {
	fmt.Printf("building system: %d docs, %d terms, T_C=%d, T_V=%d, seed=%d\n",
		scale.NumDocs, scale.OntologyTerms, scale.TC(), scale.TV, scale.Seed)
	s, err := experiments.NewSetup(scale)
	if err != nil {
		return err
	}
	fmt.Printf("built in gen=%s index=%s select=%s; %d views over %d frequent terms\n\n",
		s.GenTime.Round(time.Millisecond), s.IndexTime.Round(time.Millisecond),
		s.SelectTime.Round(time.Millisecond), s.Catalog.Len(), s.Selection.Stats.FrequentTerms)

	runFig6 := func() error {
		r, err := experiments.RunFig6(s)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		fmt.Println()
		return nil
	}
	runFig7 := func() error {
		r, err := experiments.RunFig7(s, perN)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		fmt.Println()
		return nil
	}
	runFig8 := func() error {
		r, err := experiments.RunFig8(s, perN)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		fmt.Println()
		return nil
	}
	runViewsel := func() error {
		r, err := experiments.RunSelectionComparison(s)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		fmt.Println()
		return nil
	}
	runStorage := func() error {
		experiments.RunStorage(s).Print(os.Stdout)
		fmt.Println()
		return nil
	}
	runScorers := func() error {
		r, err := experiments.RunScorerComparison(s)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		fmt.Println()
		return nil
	}
	runScaling := func() error {
		sizes := []int{scale.NumDocs / 4, scale.NumDocs / 2, scale.NumDocs}
		r, err := experiments.RunScaling(scale, sizes)
		if err != nil {
			return err
		}
		r.Print(os.Stdout)
		fmt.Println()
		return nil
	}

	if export != "" {
		if err := experiments.ExportTREC(s, export); err != nil {
			return err
		}
		fmt.Printf("wrote TREC topics/qrels/runs to %s\n\n", export)
	}

	switch exp {
	case "fig6":
		return runFig6()
	case "fig7":
		return runFig7()
	case "fig8":
		return runFig8()
	case "viewsel":
		return runViewsel()
	case "storage":
		return runStorage()
	case "scorers":
		return runScorers()
	case "scaling":
		return runScaling()
	case "all":
		for _, f := range []func() error{runFig6, runViewsel, runStorage, runFig7, runFig8, runScorers, runScaling} {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
