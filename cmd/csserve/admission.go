package main

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Admission control errors, mapped onto HTTP status codes by the
// handler: a full queue sheds immediately (429, retryable), a queue
// timeout means the server is saturated deeper than the client's
// patience (503).
var (
	errQueueFull    = errors.New("admission queue full")
	errQueueTimeout = errors.New("timed out waiting for an execution slot")
)

// admission is a two-stage admission controller: a fixed pool of
// execution slots (bounding in-flight searches, and therefore memory
// and goroutine fan-out) fronted by a bounded wait queue. A request
// that cannot get a slot immediately queues; when the queue is full it
// is shed at once, and when it has waited queueTimeout it is shed as
// saturated. Shedding at the door keeps latency bounded under overload
// instead of letting every request crawl.
type admission struct {
	slots        chan struct{}
	maxQueue     int64
	queueTimeout time.Duration
	queued       atomic.Int64
}

// newAdmission builds a controller with maxInflight execution slots and
// a wait queue of maxQueue requests. queueTimeout ≤ 0 means queued
// requests wait until their own context expires.
func newAdmission(maxInflight, maxQueue int, queueTimeout time.Duration) *admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots:        make(chan struct{}, maxInflight),
		maxQueue:     int64(maxQueue),
		queueTimeout: queueTimeout,
	}
}

// acquire obtains an execution slot, waiting in the bounded queue if
// none is free. It returns errQueueFull without waiting when the queue
// is at capacity, errQueueTimeout after queueTimeout in the queue, or
// ctx.Err() if the request's own context ends first. On nil return the
// caller must release().
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return errQueueFull
	}
	defer a.queued.Add(-1)
	var expired <-chan time.Time
	if a.queueTimeout > 0 {
		t := time.NewTimer(a.queueTimeout)
		defer t.Stop()
		expired = t.C
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-expired:
		return errQueueTimeout
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an execution slot to the pool.
func (a *admission) release() { <-a.slots }

// inflight reports how many slots are currently held.
func (a *admission) inflight() int { return len(a.slots) }

// queueDepth reports how many requests are waiting for a slot.
func (a *admission) queueDepth() int { return int(a.queued.Load()) }
