package main

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Admission control errors, mapped onto HTTP status codes by the
// handler: a full queue sheds immediately (429, retryable), a queue
// timeout means the server is saturated deeper than the client's
// patience (503).
var (
	errQueueFull    = errors.New("admission queue full")
	errQueueTimeout = errors.New("timed out waiting for an execution slot")
)

// admission is a two-stage admission controller: a fixed pool of
// execution slots (bounding in-flight searches, and therefore memory
// and goroutine fan-out) fronted by a bounded wait queue. A request
// that cannot get a slot immediately queues; when the queue is full it
// is shed at once, and when it has waited queueTimeout it is shed as
// saturated. Shedding at the door keeps latency bounded under overload
// instead of letting every request crawl.
//
// Admission is queue-fair: a freed slot is handed directly to the
// longest-queued waiter under the lock, and the no-queue fast path is
// taken only when nobody is waiting. The earlier channel-based design
// let any new arrival race queued waiters for a freed slot, so under
// sustained saturation the queue could starve while late arrivals
// sailed through — the exact opposite of an admission queue's point.
type admission struct {
	queueTimeout time.Duration
	maxQueue     int

	mu      sync.Mutex
	free    int // slots not held and not handed to a waiter
	held    int // slots currently held by admitted requests
	waiters []*waiter
}

// waiter is one queued request. grant is buffered so the releaser can
// hand a slot over without blocking under the lock; a waiter that gives
// up re-checks the buffer to avoid leaking a granted slot.
type waiter struct {
	grant chan struct{}
}

// newAdmission builds a controller with maxInflight execution slots and
// a wait queue of maxQueue requests. queueTimeout ≤ 0 means queued
// requests wait until their own context expires.
func newAdmission(maxInflight, maxQueue int, queueTimeout time.Duration) *admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		queueTimeout: queueTimeout,
		maxQueue:     maxQueue,
		free:         maxInflight,
	}
}

// acquire obtains an execution slot, waiting in the bounded queue if
// none is free. It returns errQueueFull without waiting when the queue
// is at capacity, errQueueTimeout after queueTimeout in the queue, or
// ctx.Err() if the request's own context ends first. On nil return the
// caller must release().
func (a *admission) acquire(ctx context.Context) error {
	a.mu.Lock()
	if a.free > 0 && len(a.waiters) == 0 {
		a.free--
		a.held++
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.maxQueue {
		a.mu.Unlock()
		return errQueueFull
	}
	w := &waiter{grant: make(chan struct{}, 1)}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	var expired <-chan time.Time
	if a.queueTimeout > 0 {
		t := time.NewTimer(a.queueTimeout)
		defer t.Stop()
		expired = t.C
	}
	select {
	case <-w.grant:
		return nil
	case <-expired:
		return a.abandon(w, errQueueTimeout)
	case <-ctx.Done():
		return a.abandon(w, ctx.Err())
	}
}

// abandon removes a timed-out or cancelled waiter from the queue. If the
// waiter is gone, a releaser already granted it a slot — the grant is in
// the buffer — so the slot is passed straight on rather than leaked, and
// the caller still reports its own failure.
func (a *admission) abandon(w *waiter, cause error) error {
	a.mu.Lock()
	for i, q := range a.waiters {
		if q == w {
			a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
			a.mu.Unlock()
			return cause
		}
	}
	// Granted concurrently with giving up: the releaser already
	// transferred the held count to this waiter, so take the grant and
	// pass the slot straight on.
	a.mu.Unlock()
	<-w.grant
	a.release()
	return cause
}

// release returns an execution slot: handed directly to the
// longest-queued waiter when one exists (the waiter becomes the holder;
// the slot never touches the free pool, so a new arrival cannot steal
// it), otherwise back to the free pool.
func (a *admission) release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.waiters) > 0 {
		w := a.waiters[0]
		a.waiters = a.waiters[1:]
		w.grant <- struct{}{} // buffered: never blocks
		return                // held count transfers to the waiter
	}
	a.held--
	a.free++
}

// inflight reports how many slots are currently held.
func (a *admission) inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.held
}

// queueDepth reports how many requests are waiting for a slot.
func (a *admission) queueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.waiters)
}
