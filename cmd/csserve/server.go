package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/bits"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"csrank"
)

// searchResponse is the /search wire format. Hits and Stats are the
// library's own types — their JSON tags are the wire contract, so the
// server needs no shadow structs.
type searchResponse struct {
	Query  string         `json:"query"`
	K      int            `json:"k"`
	Hits   []csrank.Hit   `json:"hits"`
	Stats  csrank.Stats   `json:"stats"`
	Shards []csrank.Stats `json:"shards,omitempty"`
}

// errorResponse is the wire format for every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// indexRequest is the POST /index wire format: one document to add to
// the live collection.
type indexRequest struct {
	Title      string   `json:"title"`
	Body       string   `json:"body"`
	Predicates []string `json:"predicates"`
}

// indexResponse acknowledges a durably logged document.
type indexResponse struct {
	// DocID is the document's assigned global number.
	DocID int `json:"doc_id"`
	// Pending is how many acknowledged documents await compaction.
	Pending int `json:"pending"`
}

// chaosRequest is the POST /chaosz wire format (only served with
// -chaos): arm one fault against one shard, or disarm everything.
type chaosRequest struct {
	// Shard is the target shard index (ignored with Disarm).
	Shard int `json:"shard"`
	// DelayMs stalls each query phase on the shard by this long.
	DelayMs int `json:"delay_ms"`
	// Panic crashes the shard's query worker.
	Panic bool `json:"panic"`
	// Corrupt simulates a corrupt-block read escaping decode.
	Corrupt bool `json:"corrupt"`
	// Disarm removes every armed fault.
	Disarm bool `json:"disarm"`
}

// healthzResponse is the /healthz wire format. Status is "ok" when the
// cluster can serve within its MinShards policy (HTTP 200), "degraded"
// otherwise (HTTP 503, so load balancers rotate the instance out).
type healthzResponse struct {
	Status            string               `json:"status"`
	NumShards         int                  `json:"num_shards"`
	AvailableShards   int                  `json:"available_shards"`
	MinShards         int                  `json:"min_shards"`
	QuarantinedBlocks int64                `json:"quarantined_blocks"`
	Shards            []csrank.ShardHealth `json:"shards"`
}

// statszResponse is the /statsz wire format: cumulative counters plus
// the latency distribution of admitted searches.
type statszResponse struct {
	NumDocs     int      `json:"num_docs"`
	NumShards   int      `json:"num_shards"`
	Generations []uint64 `json:"generations"`

	Requests      int64 `json:"requests"`
	OK            int64 `json:"ok"`
	BadRequests   int64 `json:"bad_requests"`
	ShedQueue     int64 `json:"shed_queue_full"`
	ShedTimeout   int64 `json:"shed_queue_timeout"`
	ShedUnhealthy int64 `json:"shed_unhealthy"`
	Errors        int64 `json:"errors"`
	Degraded      int64 `json:"degraded"`
	// PartialResults counts 200 responses missing at least one shard
	// (a subset of Degraded).
	PartialResults    int64 `json:"partial_results"`
	QuarantinedBlocks int64 `json:"quarantined_blocks"`
	PrunedDocs        int64 `json:"pruned_docs"`

	IngestEnabled  bool  `json:"ingest_enabled"`
	IngestRequests int64 `json:"ingest_requests"`
	IndexedDocs    int64 `json:"indexed_docs"`
	IngestErrors   int64 `json:"ingest_errors"`
	PendingDocs    int   `json:"pending_docs"`

	Inflight   int `json:"inflight"`
	QueueDepth int `json:"queue_depth"`

	// ResultCache is the serving-layer result cache (hits, misses,
	// generation invalidations, single-flight coalescing); BlockCache
	// sums the per-shard decoded-block caches of mapped indexes.
	ResultCache csrank.ResultCacheStats `json:"result_cache"`
	BlockCache  csrank.BlockCacheStats  `json:"block_cache"`

	LatencyP50  float64 `json:"latency_p50_ms"`
	LatencyP90  float64 `json:"latency_p90_ms"`
	LatencyP99  float64 `json:"latency_p99_ms"`
	LatencyP999 float64 `json:"latency_p999_ms"`
}

// latencyHist is a lock-free log₂-bucketed latency histogram: bucket i
// holds samples in [2^(i-1), 2^i) microseconds. 48 buckets cover ~9
// years, so the top bucket never saturates in practice. Percentiles
// read the upper bound of the bucket the rank falls into — at most 2×
// off, which is plenty for an operator dashboard (the load harness
// measures exact percentiles client-side).
type latencyHist struct {
	counts [48]atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	i := bits.Len64(us) // 0 for 0µs, else ⌊log₂⌋+1
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i].Add(1)
}

// quantile returns the q-quantile in milliseconds (0 when empty).
func (h *latencyHist) quantile(q float64) float64 {
	var counts [48]int64
	total := int64(0)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	seen := int64(0)
	for i, c := range counts {
		seen += c
		if seen > rank {
			return float64(uint64(1)<<uint(i)) / 1000.0
		}
	}
	return float64(uint64(1)<<47) / 1000.0
}

// server serves context-sensitive search over HTTP with admission
// control. One server fronts one ShardedEngine (a single engine is a
// one-shard cluster), so single and sharded data directories share
// every code path.
type server struct {
	eng      *csrank.ShardedEngine
	adm      *admission
	defaultK int
	timeout  time.Duration // per-request deadline covering queue wait + execution
	perShard bool          // include per-shard stats in responses
	ingest   bool          // accept POST /index writes
	chaos    bool          // serve POST /chaosz fault injection

	bufs sync.Pool // *bytes.Buffer, pooled response encoding

	requests       atomic.Int64
	ok             atomic.Int64
	badRequests    atomic.Int64
	shedQueue      atomic.Int64
	shedTimeout    atomic.Int64
	shedUnhealthy  atomic.Int64
	errCount       atomic.Int64
	degraded       atomic.Int64
	partialResults atomic.Int64
	prunedDocs     atomic.Int64
	ingestRequests atomic.Int64
	indexedDocs    atomic.Int64
	ingestErrors   atomic.Int64
	hist           latencyHist
}

func newServer(eng *csrank.ShardedEngine, adm *admission, defaultK int, timeout time.Duration, perShard, ingest bool) *server {
	return &server{
		eng:      eng,
		adm:      adm,
		defaultK: defaultK,
		timeout:  timeout,
		perShard: perShard,
		ingest:   ingest,
		bufs:     sync.Pool{New: func() any { return new(bytes.Buffer) }},
	}
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/index", s.handleIndex)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/chaosz", s.handleChaosz)
	return mux
}

// writeJSON encodes v through a pooled buffer so a slow client can
// never hold a half-encoded response (and encoding allocations are
// amortized), then writes it with the given status.
func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	buf := s.bufs.Get().(*bytes.Buffer)
	buf.Reset()
	defer s.bufs.Put(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, `{"error":"encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	q := r.URL.Query().Get("q")
	if q == "" {
		s.badRequests.Add(1)
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing q parameter"})
		return
	}
	k := s.defaultK
	if ks := r.URL.Query().Get("k"); ks != "" {
		n, err := strconv.Atoi(ks)
		if err != nil {
			s.badRequests.Add(1)
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad k parameter"})
			return
		}
		k = n
	}

	// Shed before queuing when too few shards are healthy to answer
	// within policy: the fan-out would fail anyway, so spend nothing on
	// it and give the load balancer its 503 immediately.
	if !s.eng.CanServe() {
		s.shedUnhealthy.Add(1)
		s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "too few healthy shards (circuit breakers open)"})
		return
	}

	// The deadline covers queue wait AND execution: a request that
	// queued for most of its budget gets only the remainder to run,
	// degrading (flagged) rather than overshooting the SLO.
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}

	// The admission gate is passed to the engine rather than taken here:
	// result-cache hits and single-flight followers answer without a real
	// shard fan-out, so they must not spend (or wait for) an execution
	// slot — under a hot cache the admission queue is reserved for the
	// queries that actually cost something.
	gate := func(ctx context.Context) (func(), error) {
		if err := s.adm.acquire(ctx); err != nil {
			return nil, err
		}
		return s.adm.release, nil
	}
	start := time.Now()
	hits, st, perShard, err := s.eng.SearchGated(ctx, q, k, gate)
	s.hist.observe(time.Since(start))
	if err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			s.shedQueue.Add(1)
			s.writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		case errors.Is(err, errQueueTimeout), errors.Is(err, context.DeadlineExceeded):
			s.shedTimeout.Add(1)
			s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		case errors.Is(err, context.Canceled), errors.Is(err, csrank.ErrTooFewShards):
			s.errCount.Add(1)
			s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		default:
			// Anything else at this point is a malformed query: the engine's
			// deadline path degrades instead of failing.
			s.badRequests.Add(1)
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		}
		return
	}
	s.ok.Add(1)
	if st.Degraded {
		s.degraded.Add(1)
	}
	if len(st.ShardErrors) > 0 {
		s.partialResults.Add(1)
	}
	s.prunedDocs.Add(st.PrunedDocs)
	resp := searchResponse{Query: q, K: k, Hits: hits, Stats: st}
	if s.perShard {
		resp.Shards = perShard
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// admit acquires an execution slot for the request, writing the shed
// response (429 queue full, 503 saturated or gone) on failure. On true
// the caller must release().
func (s *server) admit(ctx context.Context, w http.ResponseWriter) bool {
	err := s.adm.acquire(ctx)
	if err == nil {
		return true
	}
	switch {
	case errors.Is(err, errQueueFull):
		s.shedQueue.Add(1)
		s.writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, errQueueTimeout), errors.Is(err, context.DeadlineExceeded):
		s.shedTimeout.Add(1)
		s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: errQueueTimeout.Error()})
	default: // client went away while queued
		s.errCount.Add(1)
		s.writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	}
	return false
}

// handleIndex adds one document to the live collection. Writes go
// through the same admission controller as searches, so a write surge
// sheds at the door instead of starving queries (and vice versa). The
// 200 response means the document is durably logged — fsynced — and
// will be searchable within one refresh interval.
func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	s.ingestRequests.Add(1)
	if r.Method != http.MethodPost {
		s.badRequests.Add(1)
		s.writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	if !s.ingest {
		s.badRequests.Add(1)
		s.writeJSON(w, http.StatusForbidden, errorResponse{Error: "ingestion disabled (start csserve with -ingest)"})
		return
	}
	var req indexRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
		s.badRequests.Add(1)
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad document: " + err.Error()})
		return
	}
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	if !s.admit(ctx, w) {
		return
	}
	defer s.adm.release()

	id, err := s.eng.Add(csrank.Document{Title: req.Title, Body: req.Body, Predicates: req.Predicates})
	if err != nil {
		s.ingestErrors.Add(1)
		s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	s.indexedDocs.Add(1)
	s.writeJSON(w, http.StatusOK, indexResponse{DocID: id, Pending: s.eng.Pending()})
}

// statsz assembles the current counters — shared by the /statsz handler
// and the final flush graceful shutdown logs.
func (s *server) statsz() statszResponse {
	return statszResponse{
		NumDocs:     s.eng.NumDocs(),
		NumShards:   s.eng.NumShards(),
		Generations: s.eng.Generations(),

		Requests:          s.requests.Load(),
		OK:                s.ok.Load(),
		BadRequests:       s.badRequests.Load(),
		ShedQueue:         s.shedQueue.Load(),
		ShedTimeout:       s.shedTimeout.Load(),
		ShedUnhealthy:     s.shedUnhealthy.Load(),
		Errors:            s.errCount.Load(),
		Degraded:          s.degraded.Load(),
		PartialResults:    s.partialResults.Load(),
		QuarantinedBlocks: s.eng.QuarantinedBlocks(),
		PrunedDocs:        s.prunedDocs.Load(),

		IngestEnabled:  s.ingest,
		IngestRequests: s.ingestRequests.Load(),
		IndexedDocs:    s.indexedDocs.Load(),
		IngestErrors:   s.ingestErrors.Load(),
		PendingDocs:    s.eng.Pending(),

		Inflight:    s.adm.inflight(),
		QueueDepth:  s.adm.queueDepth(),
		ResultCache: s.eng.ResultCacheStats(),
		BlockCache:  s.eng.BlockCacheStats(),
		LatencyP50:  s.hist.quantile(0.50),
		LatencyP90:  s.hist.quantile(0.90),
		LatencyP99:  s.hist.quantile(0.99),
		LatencyP999: s.hist.quantile(0.999),
	}
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.statsz())
}

// handleHealthz reports per-shard breaker states and overall
// serveability: 200 "ok" while at least max(1, MinShards) shards are
// available, 503 "degraded" otherwise — the signal a load balancer
// uses to rotate the instance out until breakers recover.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.eng.Health()
	resp := healthzResponse{
		Status:            "ok",
		NumShards:         h.NumShards,
		AvailableShards:   h.AvailableShards,
		MinShards:         h.MinShards,
		QuarantinedBlocks: h.QuarantinedBlocks,
		Shards:            h.Shards,
	}
	status := http.StatusOK
	if !h.Healthy() {
		resp.Status = "degraded"
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, resp)
}

// handleChaosz arms or disarms fault injection on one shard — only when
// the server was started with -chaos (403 otherwise, so a production
// instance cannot be faulted remotely).
func (s *server) handleChaosz(w http.ResponseWriter, r *http.Request) {
	if !s.chaos {
		s.writeJSON(w, http.StatusForbidden, errorResponse{Error: "fault injection disabled (start csserve with -chaos)"})
		return
	}
	if r.Method != http.MethodPost {
		s.writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req chaosRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad fault: " + err.Error()})
		return
	}
	if req.Disarm {
		s.eng.DisarmFaults()
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "disarmed"})
		return
	}
	if err := s.eng.ArmFault(req.Shard, time.Duration(req.DelayMs)*time.Millisecond, req.Panic, req.Corrupt); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "armed"})
}
