// Command csserve is an HTTP/JSON front end for context-sensitive
// search over a data directory written by csbuild — single-engine or
// sharded (csbuild -shards N). Every request is admission-controlled: a
// bounded pool of in-flight searches fronted by a bounded wait queue,
// so overload sheds (429/503) at the door instead of melting latency.
//
// Usage:
//
//	csserve -data ./data -addr :8080 -max-inflight 16 -timeout 200ms
//
// Endpoints:
//
//	GET /search?q=pancreas+leukemia+%7C+digestive_system&k=10
//	GET /statsz    cumulative counters + latency quantiles
//	GET /healthz
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"csrank"
)

func main() {
	var (
		data         = flag.String("data", "data", "data directory (single-engine or sharded cluster)")
		addr         = flag.String("addr", ":8080", "listen address")
		mode         = flag.String("mode", "auto", "auto | single | sharded — how to interpret -data")
		scorer       = flag.String("scorer", "pivoted-tfidf", "pivoted-tfidf | bm25 | dirichlet-lm | cosine-tfidf | jelinek-mercer-lm")
		parallel     = flag.Int("parallel", 0, "intra-query parallelism per shard (0 = GOMAXPROCS)")
		pruning      = flag.Bool("pruning", false, "enable block-max dynamic pruning (rank-safe)")
		cache        = flag.Int("cache", 256, "context-statistics cache entries per shard (0 = off)")
		resultCache  = flag.Int64("result-cache", 64<<20, "serving-layer result cache budget in bytes; hits skip the shard fan-out AND the admission queue, concurrent identical queries coalesce onto one execution (0 = off)")
		timeout      = flag.Duration("timeout", 0, "per-request deadline covering queue wait + execution; on expiry partial results are returned flagged degraded (0 = unbounded)")
		statsBudget  = flag.Duration("stats-budget", 0, "per-query context-statistics budget; past it ranking uses approximate statistics flagged degraded (0 = unbounded)")
		k            = flag.Int("k", 10, "default result count (override per request with ?k=)")
		maxInflight  = flag.Int("max-inflight", runtime.GOMAXPROCS(0), "maximum concurrently executing searches")
		maxQueue     = flag.Int("max-queue", 64, "maximum searches waiting for an execution slot; beyond this requests are shed with 429")
		queueTimeout = flag.Duration("queue-timeout", 100*time.Millisecond, "longest a search may wait for a slot before shedding with 503 (0 = wait for the request deadline)")
		perShard     = flag.Bool("per-shard-stats", false, "include each shard's statistics report in /search responses")
		ingest       = flag.Bool("ingest", false, "accept POST /index writes (requires a sharded data directory; documents are WAL-durable before the 200)")
		refresh      = flag.Duration("refresh", 500*time.Millisecond, "with -ingest: how often newly added documents become searchable (0 = on every Add)")
		compactAt    = flag.Int("compact-threshold", 10000, "with -ingest: compact the mutable segment into the shard indexes once it holds this many documents (0 = never automatically)")
		minShards    = flag.Int("min-shards", 0, "fewest healthy shards for which a partial answer is still served; fewer fails the query (0 = 1, i.e. answer while any shard survives)")
		shardTimeout = flag.Duration("shard-timeout", 0, "per-shard per-phase budget; a shard exceeding it is dropped from the query and the survivors answer flagged degraded (0 = off)")
		chaos        = flag.Bool("chaos", false, "serve POST /chaosz fault injection (per-shard latency/panic/corruption) — never in production")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "on SIGINT/SIGTERM: how long to wait for in-flight requests before exiting")
	)
	flag.Parse()
	cfg := serveConfig{
		data: *data, addr: *addr, mode: *mode, scorer: *scorer,
		parallel: *parallel, pruning: *pruning, cache: *cache, resultCache: *resultCache,
		timeout: *timeout, statsBudget: *statsBudget, k: *k,
		maxInflight: *maxInflight, maxQueue: *maxQueue, queueTimeout: *queueTimeout,
		perShard: *perShard, ingest: *ingest, refresh: *refresh, compactAt: *compactAt,
		minShards: *minShards, shardTimeout: *shardTimeout, chaos: *chaos, drainTimeout: *drainTimeout,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "csserve:", err)
		os.Exit(1)
	}
}

// serveConfig carries the parsed flags into run.
type serveConfig struct {
	data, addr, mode, scorer   string
	parallel, cache, k         int
	resultCache                int64
	pruning, perShard, ingest  bool
	timeout, statsBudget       time.Duration
	maxInflight, maxQueue      int
	queueTimeout               time.Duration
	refresh                    time.Duration
	compactAt                  int
	minShards                  int
	shardTimeout, drainTimeout time.Duration
	chaos                      bool
}

func run(cfg serveConfig) error {
	opts := csrank.BuildOptions{
		Scorer:        csrank.Scorer(cfg.scorer),
		Parallelism:   cfg.parallel,
		Pruning:       cfg.pruning,
		CacheContexts: cfg.cache,
		Timeout:       cfg.timeout,
		StatsBudget:   cfg.statsBudget,
		MinShards:     cfg.minShards,
		ShardTimeout:  cfg.shardTimeout,
		Cache:         csrank.CacheOptions{ResultBytes: cfg.resultCache},
	}
	if cfg.chaos && cfg.ingest {
		// The live (mutable-segment) search path fans out without the
		// chaos seam, so armed faults would silently never fire.
		return fmt.Errorf("-chaos and -ingest are mutually exclusive")
	}
	eng, err := openEngine(cfg.data, cfg.mode, opts, cfg.ingest, cfg.refresh, cfg.compactAt)
	if err != nil {
		return err
	}
	srv := newServer(eng, newAdmission(cfg.maxInflight, cfg.maxQueue, cfg.queueTimeout), cfg.k, cfg.timeout, cfg.perShard, cfg.ingest)
	srv.chaos = cfg.chaos
	fmt.Fprintf(os.Stderr, "csserve: %d documents over %d shard(s); listening on %s (inflight≤%d queue≤%d ingest=%v chaos=%v)\n",
		eng.NumDocs(), eng.NumShards(), cfg.addr, cfg.maxInflight, cfg.maxQueue, cfg.ingest, cfg.chaos)

	httpSrv := &http.Server{Addr: cfg.addr, Handler: srv.routes()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting, drain
	// in-flight requests up to the drain timeout, then flush the final
	// counters so the run's tail is in the logs even without a scraper.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "csserve: %s: draining (up to %s)\n", sig, cfg.drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		shutErr := httpSrv.Shutdown(ctx)
		if final, err := json.Marshal(srv.statsz()); err == nil {
			fmt.Fprintf(os.Stderr, "csserve: final statsz: %s\n", final)
		}
		if shutErr != nil {
			return fmt.Errorf("drain incomplete after %s: %w", cfg.drainTimeout, shutErr)
		}
		fmt.Fprintln(os.Stderr, "csserve: drained cleanly")
		return nil
	}
}

// openEngine resolves the data directory into a ShardedEngine: a
// cluster manifest opens as a cluster, a single-engine directory is
// wrapped as a one-shard cluster, so the server has one code path. With
// ingest the cluster opens writable — WAL recovery, mutable segment,
// background refresh and compaction — which requires the sharded
// layout (csbuild -shards N, N ≥ 1).
func openEngine(data, mode string, opts csrank.BuildOptions, ingest bool, refresh time.Duration, compactAt int) (*csrank.ShardedEngine, error) {
	sharded := csrank.IsSharded(data)
	switch mode {
	case "auto":
	case "sharded":
		if !sharded {
			return nil, fmt.Errorf("%s holds no cluster manifest", data)
		}
	case "single":
		sharded = false
	default:
		return nil, fmt.Errorf("unknown mode %q", mode)
	}
	if ingest {
		if !sharded {
			return nil, fmt.Errorf("-ingest requires a sharded data directory (rebuild with csbuild -shards 1)")
		}
		return csrank.OpenLive(data, opts, csrank.IngestOptions{
			RefreshEvery:     refresh,
			CompactThreshold: compactAt,
		})
	}
	if sharded {
		return csrank.OpenSharded(data, opts)
	}
	e, err := csrank.OpenWithOptions(data, opts)
	if err != nil {
		return nil, err
	}
	return e.ShardedWithOptions(opts)
}
