// Command csserve is an HTTP/JSON front end for context-sensitive
// search over a data directory written by csbuild — single-engine or
// sharded (csbuild -shards N). Every request is admission-controlled: a
// bounded pool of in-flight searches fronted by a bounded wait queue,
// so overload sheds (429/503) at the door instead of melting latency.
//
// Usage:
//
//	csserve -data ./data -addr :8080 -max-inflight 16 -timeout 200ms
//
// Endpoints:
//
//	GET /search?q=pancreas+leukemia+%7C+digestive_system&k=10
//	GET /statsz    cumulative counters + latency quantiles
//	GET /healthz
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"csrank"
)

func main() {
	var (
		data         = flag.String("data", "data", "data directory (single-engine or sharded cluster)")
		addr         = flag.String("addr", ":8080", "listen address")
		mode         = flag.String("mode", "auto", "auto | single | sharded — how to interpret -data")
		scorer       = flag.String("scorer", "pivoted-tfidf", "pivoted-tfidf | bm25 | dirichlet-lm")
		parallel     = flag.Int("parallel", 0, "intra-query parallelism per shard (0 = GOMAXPROCS)")
		pruning      = flag.Bool("pruning", false, "enable block-max dynamic pruning (rank-safe)")
		cache        = flag.Int("cache", 256, "context-statistics cache entries per shard (0 = off)")
		timeout      = flag.Duration("timeout", 0, "per-request deadline covering queue wait + execution; on expiry partial results are returned flagged degraded (0 = unbounded)")
		statsBudget  = flag.Duration("stats-budget", 0, "per-query context-statistics budget; past it ranking uses approximate statistics flagged degraded (0 = unbounded)")
		k            = flag.Int("k", 10, "default result count (override per request with ?k=)")
		maxInflight  = flag.Int("max-inflight", runtime.GOMAXPROCS(0), "maximum concurrently executing searches")
		maxQueue     = flag.Int("max-queue", 64, "maximum searches waiting for an execution slot; beyond this requests are shed with 429")
		queueTimeout = flag.Duration("queue-timeout", 100*time.Millisecond, "longest a search may wait for a slot before shedding with 503 (0 = wait for the request deadline)")
		perShard     = flag.Bool("per-shard-stats", false, "include each shard's statistics report in /search responses")
		ingest       = flag.Bool("ingest", false, "accept POST /index writes (requires a sharded data directory; documents are WAL-durable before the 200)")
		refresh      = flag.Duration("refresh", 500*time.Millisecond, "with -ingest: how often newly added documents become searchable (0 = on every Add)")
		compactAt    = flag.Int("compact-threshold", 10000, "with -ingest: compact the mutable segment into the shard indexes once it holds this many documents (0 = never automatically)")
	)
	flag.Parse()
	if err := run(*data, *addr, *mode, *scorer, *parallel, *pruning, *cache, *timeout, *statsBudget, *k, *maxInflight, *maxQueue, *queueTimeout, *perShard, *ingest, *refresh, *compactAt); err != nil {
		fmt.Fprintln(os.Stderr, "csserve:", err)
		os.Exit(1)
	}
}

func run(data, addr, mode, scorer string, parallel int, pruning bool, cache int, timeout, statsBudget time.Duration, k, maxInflight, maxQueue int, queueTimeout time.Duration, perShard, ingest bool, refresh time.Duration, compactAt int) error {
	opts := csrank.BuildOptions{
		Scorer:        csrank.Scorer(scorer),
		Parallelism:   parallel,
		Pruning:       pruning,
		CacheContexts: cache,
		Timeout:       timeout,
		StatsBudget:   statsBudget,
	}
	eng, err := openEngine(data, mode, opts, ingest, refresh, compactAt)
	if err != nil {
		return err
	}
	srv := newServer(eng, newAdmission(maxInflight, maxQueue, queueTimeout), k, timeout, perShard, ingest)
	fmt.Fprintf(os.Stderr, "csserve: %d documents over %d shard(s); listening on %s (inflight≤%d queue≤%d ingest=%v)\n",
		eng.NumDocs(), eng.NumShards(), addr, maxInflight, maxQueue, ingest)
	return http.ListenAndServe(addr, srv.routes())
}

// openEngine resolves the data directory into a ShardedEngine: a
// cluster manifest opens as a cluster, a single-engine directory is
// wrapped as a one-shard cluster, so the server has one code path. With
// ingest the cluster opens writable — WAL recovery, mutable segment,
// background refresh and compaction — which requires the sharded
// layout (csbuild -shards N, N ≥ 1).
func openEngine(data, mode string, opts csrank.BuildOptions, ingest bool, refresh time.Duration, compactAt int) (*csrank.ShardedEngine, error) {
	sharded := csrank.IsSharded(data)
	switch mode {
	case "auto":
	case "sharded":
		if !sharded {
			return nil, fmt.Errorf("%s holds no cluster manifest", data)
		}
	case "single":
		sharded = false
	default:
		return nil, fmt.Errorf("unknown mode %q", mode)
	}
	if ingest {
		if !sharded {
			return nil, fmt.Errorf("-ingest requires a sharded data directory (rebuild with csbuild -shards 1)")
		}
		return csrank.OpenLive(data, opts, csrank.IngestOptions{
			RefreshEvery:     refresh,
			CompactThreshold: compactAt,
		})
	}
	if sharded {
		return csrank.OpenSharded(data, opts)
	}
	e, err := csrank.OpenWithOptions(data, opts)
	if err != nil {
		return nil, err
	}
	return e.Sharded()
}
