package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"csrank"
)

// TestAdmissionQueueFairness: a freed slot must be handed to the
// longest-queued waiter — FIFO — never raced. Regression test for the
// fast-path steal: the old channel-based controller let any new arrival
// grab a freed slot ahead of every queued waiter, starving the queue
// under sustained saturation.
func TestAdmissionQueueFairness(t *testing.T) {
	adm := newAdmission(1, 8, 0)
	if err := adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	const n = 5
	order := make(chan int, n)
	for i := 0; i < n; i++ {
		i := i
		before := adm.queueDepth()
		go func() {
			if err := adm.acquire(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			adm.release()
		}()
		// Pin arrival order: wait until this waiter is actually queued
		// before launching the next.
		deadline := time.Now().Add(time.Second)
		for adm.queueDepth() == before && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if adm.queueDepth() != before+1 {
			t.Fatalf("waiter %d never queued", i)
		}
	}
	adm.release() // start the chain: each waiter hands to the next
	for i := 0; i < n; i++ {
		select {
		case got := <-order:
			if got != i {
				t.Fatalf("slot went to waiter %d before waiter %d", got, i)
			}
		case <-time.After(time.Second):
			t.Fatalf("waiter %d never admitted", i)
		}
	}
	if adm.inflight() != 0 || adm.queueDepth() != 0 {
		t.Fatalf("inflight=%d queue=%d after drain", adm.inflight(), adm.queueDepth())
	}
}

// TestAdmissionNoStealWhileQueued: while a waiter is queued, a brand-new
// arrival must not be admitted past it — even right after a release.
func TestAdmissionNoStealWhileQueued(t *testing.T) {
	adm := newAdmission(1, 4, 0)
	if err := adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	granted := make(chan struct{})
	go func() {
		if err := adm.acquire(context.Background()); err != nil {
			t.Errorf("queued waiter: %v", err)
		}
		close(granted) // holds the slot until the test ends
	}()
	deadline := time.Now().Add(time.Second)
	for adm.queueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	adm.release() // must go to the queued waiter
	<-granted

	// The waiter holds the only slot; a late arrival must wait its turn
	// (and here time out), not sneak in.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := adm.acquire(ctx); err == nil {
		t.Fatal("late arrival admitted while the slot was held via handoff")
	}
	adm.release()
	if adm.inflight() != 0 {
		t.Fatalf("inflight=%d after all releases", adm.inflight())
	}
}

// TestAdmissionStressAccounting hammers the controller with acquires
// that race timeouts against releases — the abandoned-grant window —
// and checks no slot is ever leaked or double-counted.
func TestAdmissionStressAccounting(t *testing.T) {
	adm := newAdmission(2, 8, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := adm.acquire(context.Background()); err == nil {
					adm.release()
				}
			}
		}()
	}
	wg.Wait()
	if adm.inflight() != 0 || adm.queueDepth() != 0 {
		t.Fatalf("inflight=%d queue=%d after stress", adm.inflight(), adm.queueDepth())
	}
	// Both slots must still be grantable.
	for i := 0; i < 2; i++ {
		if err := adm.acquire(context.Background()); err != nil {
			t.Fatalf("slot %d leaked: %v", i, err)
		}
	}
	adm.release()
	adm.release()
}

// liveTestServer saves a sharded engine and reopens it writable.
func liveTestServer(t *testing.T, ingest bool) (*server, *httptest.Server) {
	t.Helper()
	eng := buildTestEngine(t, 2)
	dir := t.TempDir()
	if err := eng.Save(dir); err != nil {
		t.Fatal(err)
	}
	live, err := csrank.OpenLive(dir, csrank.BuildOptions{}, csrank.IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { live.Close() })
	srv := newServer(live, newAdmission(4, 16, time.Second), 10, 0, false, ingest)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body, v any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return resp.StatusCode
}

// TestIndexEndpoint: POST /index durably adds a document that the very
// next /search can rank, and the statsz ingest counters track it.
func TestIndexEndpoint(t *testing.T) {
	srv, ts := liveTestServer(t, true)

	var ack indexResponse
	code := postJSON(t, ts, "/index", indexRequest{
		Title:      "freshly added",
		Body:       "zyzzyva pancreas follow-up",
		Predicates: []string{"neoplasms"},
	}, &ack)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if ack.DocID != 300 { // buildTestEngine indexes 300 documents
		t.Fatalf("doc_id %d, want 300", ack.DocID)
	}
	if ack.Pending != 1 {
		t.Fatalf("pending %d, want 1", ack.Pending)
	}
	var got searchResponse
	if code := getJSON(t, ts, "/search?q=zyzzyva", &got); code != http.StatusOK {
		t.Fatalf("search status %d", code)
	}
	if len(got.Hits) != 1 || got.Hits[0].DocID != 300 || got.Hits[0].Title != "freshly added" {
		t.Fatalf("added document not served: %+v", got.Hits)
	}

	var bad errorResponse
	resp, err := ts.Client().Get(ts.URL + "/index")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /index: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	r2, err := ts.Client().Post(ts.URL+"/index", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", r2.StatusCode)
	}
	r2.Body.Close()

	var st statszResponse
	if code := getJSON(t, ts, "/statsz", &st); code != http.StatusOK {
		t.Fatalf("statsz status %d", code)
	}
	if !st.IngestEnabled || st.IndexedDocs != 1 || st.IngestRequests != 3 || st.PendingDocs != 1 {
		t.Fatalf("ingest counters %+v", st)
	}
	if st.NumDocs != 301 {
		t.Fatalf("num_docs %d, want 301", st.NumDocs)
	}
	_ = bad
	_ = srv
}

// TestIndexEndpointDisabled: without -ingest the endpoint refuses
// writes instead of panicking or silently dropping them.
func TestIndexEndpointDisabled(t *testing.T) {
	_, ts := liveTestServer(t, false)
	var bad errorResponse
	code := postJSON(t, ts, "/index", indexRequest{Title: "x"}, &bad)
	if code != http.StatusForbidden {
		t.Fatalf("status %d, want 403", code)
	}
}

// jsonKeys returns the sorted top-level keys of v's JSON encoding.
func jsonKeys(t *testing.T, v any) []string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func assertKeys(t *testing.T, what string, got, want []string) {
	t.Helper()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("%s schema drifted:\n got  %v\n want %v", what, got, want)
	}
}

// TestWireSchemaStability pins the exact top-level key sets of every
// response the server emits, so a field rename or deletion — which
// breaks deployed clients and dashboards — fails loudly here instead of
// silently shipping.
func TestWireSchemaStability(t *testing.T) {
	assertKeys(t, "statsz", jsonKeys(t, statszResponse{}), []string{
		"bad_requests", "block_cache", "degraded", "errors", "generations",
		"indexed_docs", "inflight", "ingest_enabled", "ingest_errors", "ingest_requests",
		"latency_p50_ms", "latency_p90_ms", "latency_p999_ms", "latency_p99_ms",
		"num_docs", "num_shards", "ok", "partial_results", "pending_docs", "pruned_docs",
		"quarantined_blocks", "queue_depth", "requests", "result_cache",
		"shed_queue_full", "shed_queue_timeout", "shed_unhealthy",
	})
	assertKeys(t, "search", jsonKeys(t, searchResponse{Shards: []csrank.Stats{{}}}), []string{
		"hits", "k", "query", "shards", "stats",
	})
	// degraded_reason, shard_errors and single_flight_shared are
	// omitempty: set them so the full stats key set is pinned.
	assertKeys(t, "stats", jsonKeys(t, csrank.Stats{DegradedReason: "x", ShardErrors: []csrank.ShardError{{}}, SingleFlightShared: true}), []string{
		"cache_hit", "context_size", "degraded", "degraded_reason",
		"elapsed_ns", "plan", "pruned_containers", "pruned_docs",
		"result_cache_hit", "result_size", "shard_errors",
		"single_flight_shared", "used_view",
	})
	assertKeys(t, "shard error", jsonKeys(t, csrank.ShardError{}), []string{
		"error", "kind", "shard",
	})
	assertKeys(t, "healthz", jsonKeys(t, healthzResponse{Shards: []csrank.ShardHealth{{}}}), []string{
		"available_shards", "min_shards", "num_shards", "quarantined_blocks",
		"shards", "status",
	})
	assertKeys(t, "shard health", jsonKeys(t, csrank.ShardHealth{}), []string{
		"consecutive_failures", "generation", "recoveries", "retry_in_ms", "shard", "state", "trips",
	})
	assertKeys(t, "chaos request", jsonKeys(t, chaosRequest{}), []string{
		"corrupt", "delay_ms", "disarm", "panic", "shard",
	})
	assertKeys(t, "hit", jsonKeys(t, csrank.Hit{}), []string{
		"doc_id", "score", "title",
	})
	assertKeys(t, "index ack", jsonKeys(t, indexResponse{}), []string{
		"doc_id", "pending",
	})
	assertKeys(t, "error", jsonKeys(t, errorResponse{}), []string{"error"})
}
