package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"csrank"
)

// buildTestEngine builds a small sharded engine through the public API.
func buildTestEngine(t *testing.T, shards int) *csrank.ShardedEngine {
	t.Helper()
	b := csrank.NewBuilder()
	for i := 0; i < 300; i++ {
		pred := "neoplasms"
		if i%3 == 0 {
			pred = "digestive_system"
		}
		b.Add(csrank.Document{
			Title:      fmt.Sprintf("doc %d", i),
			Body:       fmt.Sprintf("pancreas leukemia study cohort %d", i%7),
			Predicates: []string{pred},
		})
	}
	eng, err := b.BuildSharded(shards, csrank.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return resp.StatusCode
}

func TestSearchEndpoint(t *testing.T) {
	eng := buildTestEngine(t, 3)
	srv := newServer(eng, newAdmission(4, 16, time.Second), 10, 0, true, false)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	var got searchResponse
	code := getJSON(t, ts, "/search?q=pancreas+leukemia+%7C+digestive_system&k=5", &got)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(got.Hits) != 5 || got.K != 5 {
		t.Fatalf("hits=%d k=%d", len(got.Hits), got.K)
	}
	if len(got.Shards) != 3 {
		t.Fatalf("%d per-shard reports, want 3", len(got.Shards))
	}
	// The HTTP path must rank exactly as the library does.
	want, _, err := eng.Search("pancreas leukemia | digestive_system", 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got.Hits[i] != want[i] {
			t.Fatalf("rank %d: %+v over HTTP, want %+v", i, got.Hits[i], want[i])
		}
	}

	var bad errorResponse
	if code := getJSON(t, ts, "/search?q=", &bad); code != http.StatusBadRequest {
		t.Fatalf("empty q: status %d", code)
	}
	if code := getJSON(t, ts, "/search?q=x&k=zebra", &bad); code != http.StatusBadRequest {
		t.Fatalf("bad k: status %d", code)
	}

	var st statszResponse
	if code := getJSON(t, ts, "/statsz", &st); code != http.StatusOK {
		t.Fatalf("statsz status %d", code)
	}
	if st.Requests != 3 || st.OK != 1 || st.BadRequests != 2 {
		t.Fatalf("statsz counters %+v", st)
	}
	if st.NumShards != 3 || st.NumDocs != 300 {
		t.Fatalf("statsz topology %+v", st)
	}
	if st.LatencyP50 <= 0 {
		t.Fatalf("p50 = %v after a served search", st.LatencyP50)
	}
}

// TestAdmissionShedding saturates the slot pool and checks both shed
// paths: 429 when the queue is full, 503 when the queue wait times out.
func TestAdmissionShedding(t *testing.T) {
	adm := newAdmission(1, 1, 20*time.Millisecond)

	// Hold the only slot.
	if err := adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// One waiter fills the queue, then times out with errQueueTimeout.
	var wg sync.WaitGroup
	wg.Add(1)
	queued := make(chan struct{})
	go func() {
		defer wg.Done()
		close(queued)
		if err := adm.acquire(context.Background()); err != errQueueTimeout {
			t.Errorf("queued acquire: %v, want errQueueTimeout", err)
		}
	}()
	<-queued
	// Give the waiter time to enter the queue, then overflow it.
	deadline := time.Now().Add(time.Second)
	for adm.queueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := adm.acquire(context.Background()); err != errQueueFull {
		t.Fatalf("overflow acquire: %v, want errQueueFull", err)
	}
	wg.Wait()
	adm.release()

	// After release the pool is free again.
	if err := adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	adm.release()
}

// TestServerOverloadResponses drives the HTTP layer into overload and
// checks the status codes and counters.
func TestServerOverloadResponses(t *testing.T) {
	eng := buildTestEngine(t, 2)
	srv := newServer(eng, newAdmission(1, 1, 10*time.Millisecond), 10, 0, false, false)
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	// Hold the single slot so every request must queue or shed.
	if err := srv.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	codes := make(chan int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Get(ts.URL + "/search?q=pancreas")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	srv.adm.release()

	shed429, shed503 := 0, 0
	for c := range codes {
		switch c {
		case http.StatusTooManyRequests:
			shed429++
		case http.StatusServiceUnavailable:
			shed503++
		default:
			t.Fatalf("unexpected status %d under saturation", c)
		}
	}
	if shed503 == 0 {
		t.Fatal("no queued request timed out with 503")
	}
	if shed429+shed503 != 8 {
		t.Fatalf("shed %d+%d of 8", shed429, shed503)
	}
	if got := srv.shedQueue.Load() + srv.shedTimeout.Load(); got != 8 {
		t.Fatalf("shed counters sum to %d, want 8", got)
	}

	// Service resumes once the slot frees.
	resp, err := ts.Client().Get(ts.URL + "/search?q=pancreas")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-overload status %d", resp.StatusCode)
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	var h latencyHist
	for i := 0; i < 900; i++ {
		h.observe(100 * time.Microsecond) // bucket upper bound 128µs
	}
	for i := 0; i < 100; i++ {
		h.observe(50 * time.Millisecond)
	}
	if p50 := h.quantile(0.50); p50 != 0.128 {
		t.Fatalf("p50 = %v ms", p50)
	}
	if p99 := h.quantile(0.99); p99 < 32 || p99 > 128 {
		t.Fatalf("p99 = %v ms", p99)
	}
	if (&latencyHist{}).quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
}
