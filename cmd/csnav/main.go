// Command csnav is the ontology navigator of the paper's Figure 2: it
// lets a domain user browse the MeSH-like hierarchy, see how many
// citations each concept indexes, and assemble a context specification
// from selected terms — the tooling that makes context predicates
// typo-proof ("the use of such tools for specifying the context removes
// the risk of mistyping the context terms").
//
// Usage (against a data directory written by csbuild):
//
//	csnav -data data                          # list the top-level categories
//	csnav -data data -path diseases           # descend one level
//	csnav -data data -path diseases/neoplasms # … and further
//	csnav -data data -select "neoplasms digestive_system" -q "pancreas leukemia"
//
// -select prints the context size for the chosen terms; with -q it also
// runs the context-sensitive query.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"csrank/internal/core"
	"csrank/internal/index"
	"csrank/internal/mesh"
	"csrank/internal/query"
	"csrank/internal/views"
)

func main() {
	var (
		data    = flag.String("data", "data", "data directory written by csbuild")
		path    = flag.String("path", "", "slash-separated term path to list (empty = roots)")
		selects = flag.String("select", "", "space-separated context terms to inspect")
		q       = flag.String("q", "", "keyword query to run inside the selected context")
		k       = flag.Int("k", 10, "number of results for -q")
		timeout = flag.Duration("timeout", 0, "per-query deadline for -q; on expiry partial results are returned flagged degraded (0 = unbounded)")
	)
	flag.Parse()
	if err := run(*data, *path, *selects, *q, *k, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "csnav:", err)
		os.Exit(1)
	}
}

func run(data, path, selects, qstr string, k int, timeout time.Duration) error {
	onto, err := mesh.LoadFile(filepath.Join(data, "mesh.gob"))
	if err != nil {
		return fmt.Errorf("load ontology (did csbuild write mesh.gob?): %w", err)
	}
	ix, err := index.LoadFile(filepath.Join(data, "index.gob"))
	if err != nil {
		return err
	}
	cat, _ := views.LoadFile(filepath.Join(data, "views.gob"))
	predField := ix.Schema().PredicateField

	if selects == "" {
		return list(onto, ix, predField, path)
	}

	terms := strings.Fields(selects)
	for _, t := range terms {
		if _, ok := onto.ByName(t); !ok {
			return fmt.Errorf("unknown term %q (navigate with -path to find terms)", t)
		}
	}
	e := core.New(ix, cat, core.Options{Deadline: timeout})
	size := e.ContextSize(terms)
	fmt.Printf("context %v: %d of %d citations\n", terms, size, ix.NumDocs())
	if qstr == "" {
		return nil
	}
	pq := query.Query{Keywords: strings.Fields(qstr), Context: terms}
	res, st, err := e.SearchContextSensitive(pq, k)
	if err != nil {
		return err
	}
	fmt.Printf("query %q  [plan=%s, results=%d]\n", pq, st.Plan, st.ResultSize)
	if st.Degraded {
		fmt.Printf("  !! degraded: %s\n", st.DegradedReason)
	}
	for i, r := range res {
		fmt.Printf("  %2d. (%.4f) %s\n", i+1, r.Score, ix.StoredField(r.DocID, "title"))
	}
	return nil
}

// list prints the children (or roots) at a hierarchy path with their
// citation counts, mimicking the PubMed MeSH browser.
func list(onto *mesh.Ontology, ix *index.Index, predField, path string) error {
	var ids []mesh.TermID
	indentBase := ""
	if path == "" {
		ids = onto.Roots()
	} else {
		cur, err := resolvePath(onto, path)
		if err != nil {
			return err
		}
		t := onto.Term(cur)
		fmt.Printf("%s  (%d citations)\n", t.Name, ix.DF(predField, t.Name))
		ids = t.Children
		indentBase = "  "
	}
	sort.Slice(ids, func(i, j int) bool {
		return ix.DF(predField, onto.Term(ids[i]).Name) > ix.DF(predField, onto.Term(ids[j]).Name)
	})
	for _, id := range ids {
		t := onto.Term(id)
		marker := ""
		if len(t.Children) > 0 {
			marker = " +"
		}
		fmt.Printf("%s%-32s %8d citations%s\n", indentBase, t.Name,
			ix.DF(predField, t.Name), marker)
	}
	return nil
}

func resolvePath(onto *mesh.Ontology, path string) (mesh.TermID, error) {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	last := parts[len(parts)-1]
	id, ok := onto.ByName(last)
	if !ok {
		return 0, fmt.Errorf("unknown term %q", last)
	}
	return id, nil
}
