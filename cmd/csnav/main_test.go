package main

import (
	"path/filepath"
	"testing"

	"csrank/internal/corpus"
	"csrank/internal/selection"
)

func buildData(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 2000
	cfg.OntologyTerms = 100
	cfg.NumTopics = 0
	c, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := c.BuildIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := selection.Select(ix, selection.Config{TC: 40, TV: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveFile(filepath.Join(dir, "index.gob")); err != nil {
		t.Fatal(err)
	}
	if err := m.Catalog.SaveFile(filepath.Join(dir, "views.gob")); err != nil {
		t.Fatal(err)
	}
	if err := c.Onto.SaveFile(filepath.Join(dir, "mesh.gob")); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestNavigation(t *testing.T) {
	dir := buildData(t)
	if err := run(dir, "", "", "", 5, 0); err != nil {
		t.Errorf("root listing: %v", err)
	}
	if err := run(dir, "diseases", "", "", 5, 0); err != nil {
		t.Errorf("path listing: %v", err)
	}
	if err := run(dir, "diseases/neoplasms", "", "", 5, 0); err != nil {
		t.Errorf("deep path listing: %v", err)
	}
}

func TestSelectAndQuery(t *testing.T) {
	dir := buildData(t)
	if err := run(dir, "", "anatomy", "", 5, 0); err != nil {
		t.Errorf("select only: %v", err)
	}
	if err := run(dir, "", "anatomy", "organ disease", 5, 0); err != nil {
		t.Errorf("select + query: %v", err)
	}
}

func TestNavErrors(t *testing.T) {
	dir := buildData(t)
	if err := run(dir, "no_such_term", "", "", 5, 0); err == nil {
		t.Error("unknown path accepted")
	}
	if err := run(dir, "", "no_such_term", "", 5, 0); err == nil {
		t.Error("unknown selection accepted")
	}
	if err := run(t.TempDir(), "", "", "", 5, 0); err == nil {
		t.Error("missing data dir accepted")
	}
}
