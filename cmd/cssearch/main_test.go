package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"csrank/internal/corpus"
	"csrank/internal/index"
	"csrank/internal/selection"
	"csrank/internal/views"
	"csrank/internal/wal"
)

// buildData creates a small persisted instance for the search tool.
func buildData(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 2000
	cfg.OntologyTerms = 100
	cfg.NumTopics = 0
	c, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := c.BuildIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := selection.Select(ix, selection.Config{TC: 40, TV: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveFile(filepath.Join(dir, "index.gob")); err != nil {
		t.Fatal(err)
	}
	if err := m.Catalog.SaveFile(filepath.Join(dir, "views.gob")); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestExpiredTimeoutPrintsDegraded: with -timeout already expired the
// search prints a flagged degraded result (with the phase-timing explain
// line) instead of failing.
func TestExpiredTimeoutPrintsDegraded(t *testing.T) {
	dir := buildData(t)
	eng, ix, err := openEngine(dir, "", "pivoted-tfidf", 0, time.Nanosecond, false)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := searchAndPrint(eng, ix, "disease organ | anatomy", 5, "context", &out); err != nil {
		t.Fatalf("expired timeout should degrade, not error: %v", err)
	}
	if !strings.Contains(out.String(), "degraded") || !strings.Contains(out.String(), "phases:") {
		t.Fatalf("output missing degraded explain line:\n%s", out.String())
	}
}

func TestRunAllModes(t *testing.T) {
	dir := buildData(t)
	// "disease" and "organ" are curated topic words, "anatomy" a curated
	// category always present in the generated ontology.
	q := "disease organ | anatomy"
	for _, mode := range []string{"context", "conventional", "straightforward", "compare"} {
		if err := run(dir, "", q, 5, mode, "pivoted-tfidf", 0, 0, false); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
}

func TestRunScorers(t *testing.T) {
	dir := buildData(t)
	for _, sc := range []string{"pivoted-tfidf", "bm25", "dirichlet-lm"} {
		if err := run(dir, "", "disease | anatomy", 3, "context", sc, 2, 0, true); err != nil {
			t.Errorf("scorer %s: %v", sc, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := buildData(t)
	if err := run(dir, "", "disease", 3, "context", "nope", 0, 0, false); err == nil {
		t.Error("unknown scorer accepted")
	}
	if err := run(dir, "", "disease", 3, "bogus", "bm25", 0, 0, false); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run(dir, "", "a | b | c", 3, "context", "bm25", 0, 0, false); err == nil {
		t.Error("unparseable query accepted")
	}
	if err := run(t.TempDir(), "", "disease", 3, "context", "bm25", 0, 0, false); err == nil {
		t.Error("missing data dir accepted")
	}
}

// TestVerifyAndWALRecovery covers the durability flags end to end: a
// fresh build audits clean; a WAL directory seeded with one extra
// logged update recovers into the engine bit-identically, and the
// audit flags exactly that divergence from the index.
func TestVerifyAndWALRecovery(t *testing.T) {
	dir := buildData(t)
	var out bytes.Buffer
	if err := verifyViews(dir, "", &out); err != nil {
		t.Fatalf("fresh build should verify clean: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok:") {
		t.Fatalf("missing ok line: %q", out.String())
	}

	// Seed a WAL directory from the persisted catalog and log an update
	// the index does not contain.
	cat, err := views.LoadFile(filepath.Join(dir, "views.gob"))
	if err != nil {
		t.Fatal(err)
	}
	walDir := filepath.Join(dir, "wal")
	m, err := wal.Create(walDir, cat, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := views.DocUpdate{Predicates: []string{"anatomy"}, Len: 42}
	if err := m.Apply(wal.Batch{{Op: wal.OpApply, Doc: u}}); err != nil {
		t.Fatal(err)
	}
	fp := m.Catalog().Fingerprint()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	eng, _, err := openEngine(dir, walDir, "bm25", 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.Catalog().Fingerprint(); got != fp {
		t.Fatalf("recovered catalog fingerprint %s, logged state %s", got, fp)
	}

	// The logged document was never indexed, so the audit must fail.
	out.Reset()
	if err := verifyViews(dir, walDir, &out); err == nil {
		t.Fatalf("drifted catalog verified clean:\n%s", out.String())
	}
}

func TestRunInteractive(t *testing.T) {
	dir := buildData(t)
	in := strings.NewReader("disease | anatomy\n? disease | anatomy\nbogus | | query\n\nexit\n")
	var out bytes.Buffer
	if err := runInteractive(dir, "", 3, "context", "pivoted-tfidf", 0, 0, true, in, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "context-sensitive") {
		t.Errorf("missing search output: %q", s)
	}
	if !strings.Contains(s, "plan:") {
		t.Errorf("missing explanation output: %q", s)
	}
	if !strings.Contains(s, "error:") {
		t.Errorf("missing error report for bad query: %q", s)
	}
	// EOF without "exit" also terminates cleanly.
	if err := runInteractive(dir, "", 3, "context", "pivoted-tfidf", 0, 0, false, strings.NewReader("disease\n"), &out); err != nil {
		t.Fatal(err)
	}
	// Bad scorer surfaces immediately.
	if err := runInteractive(dir, "", 3, "context", "nope", 0, 0, false, strings.NewReader(""), &out); err == nil {
		t.Error("unknown scorer accepted")
	}
}

// TestListStatsBothFormats: -liststats reports the on-disk block layout
// for a gob-v3 index and a paged-v4 one, labeling each with its actual
// format version (cache stats only exist for the mapped reader).
func TestListStatsBothFormats(t *testing.T) {
	dir := buildData(t)
	var v3 bytes.Buffer
	if err := printListStats(dir, &v3); err != nil {
		t.Fatal(err)
	}
	s := v3.String()
	if !strings.Contains(s, "format v3") {
		t.Errorf("v3 dir mislabeled:\n%s", s)
	}
	for _, want := range []string{"on disk:", "blocks:", "bytes/posting"} {
		if !strings.Contains(s, want) {
			t.Errorf("v3 liststats missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "block cache") {
		t.Errorf("heap index reports a block cache:\n%s", s)
	}

	ix, err := index.LoadFile(filepath.Join(dir, "index.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveMapped(filepath.Join(dir, "index.gob")); err != nil {
		t.Fatal(err)
	}
	var v4 bytes.Buffer
	if err := printListStats(dir, &v4); err != nil {
		t.Fatal(err)
	}
	s = v4.String()
	if !strings.Contains(s, "format v4") || !strings.Contains(s, "block cache") {
		t.Errorf("v4 liststats wrong:\n%s", s)
	}
	// The paged file must also serve searches through the same CLI path.
	if err := run(dir, "", "disease | anatomy", 3, "context", "bm25", 1, 0, true); err != nil {
		t.Fatal(err)
	}
}
