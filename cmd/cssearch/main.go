// Command cssearch runs context-sensitive queries against a data
// directory built by csbuild.
//
// Usage:
//
//	cssearch -data ./data -q "pancreas leukemia | digestive_system" -k 10
//	cssearch -data ./data -q "..." -mode compare
//
// Modes:
//
//	context         context-sensitive ranking (views when usable); default
//	conventional    the baseline Q_t = Q_k ∪ P (global statistics)
//	straightforward context-sensitive without views (Figure 3 plan)
//	compare         conventional and context-sensitive side by side
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"csrank/internal/core"
	"csrank/internal/index"
	"csrank/internal/query"
	"csrank/internal/ranking"
	"csrank/internal/views"
	"csrank/internal/wal"
)

func main() {
	var (
		data        = flag.String("data", "data", "data directory written by csbuild")
		q           = flag.String("q", "", "query, e.g. \"pancreas leukemia | digestive_system\"")
		k           = flag.Int("k", 10, "number of results")
		mode        = flag.String("mode", "context", "context | conventional | straightforward | compare")
		scorer      = flag.String("scorer", "pivoted-tfidf", "pivoted-tfidf | bm25 | dirichlet-lm | cosine-tfidf | jelinek-mercer-lm")
		parallel    = flag.Int("parallel", 0, "intra-query parallelism (0 = GOMAXPROCS, 1 = sequential)")
		timeout     = flag.Duration("timeout", 0, "per-query deadline (e.g. 50ms); on expiry partial results are returned flagged degraded (0 = unbounded)")
		pruning     = flag.Bool("pruning", false, "enable block-max dynamic pruning (safe: top-k is bit-identical to exhaustive scoring)")
		interactive = flag.Bool("i", false, "interactive mode: read queries from stdin (prefix a line with '?' for plan explanation only)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memprofile  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		liststats   = flag.Bool("liststats", false, "print the index's posting-list container breakdown and exit")
		walDir      = flag.String("wal", "", "recover the view catalog from this WAL directory (snapshot + log replay) instead of views.gob")
		verify      = flag.Bool("verify", false, "audit the view catalog against the index (zero drift expected) and exit")
	)
	flag.Parse()
	if *liststats {
		if err := printListStats(*data, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "cssearch:", err)
			os.Exit(1)
		}
		return
	}
	if *verify {
		if err := verifyViews(*data, *walDir, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "cssearch:", err)
			os.Exit(1)
		}
		return
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cssearch:", err)
		os.Exit(1)
	}
	if *interactive {
		err = runInteractive(*data, *walDir, *k, *mode, *scorer, *parallel, *timeout, *pruning, os.Stdin, os.Stdout)
	} else if *q == "" {
		stopProfiles()
		flag.Usage()
		os.Exit(2)
	} else {
		err = run(*data, *walDir, *q, *k, *mode, *scorer, *parallel, *timeout, *pruning)
	}
	stopProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cssearch:", err)
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and arranges a heap snapshot; the
// returned function stops the CPU profile and writes the memory profile.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	stop = func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath != "" {
		cpuStop := stop
		stop = func() {
			cpuStop()
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // get up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}
	return stop, nil
}

// runInteractive reads one query per line and evaluates it; lines
// starting with '?' print the plan explanation instead; "exit" or EOF
// ends the session. Per-query errors are reported and the loop
// continues.
func runInteractive(data, walDir string, k int, mode, scorerName string, parallel int, timeout time.Duration, pruning bool, in io.Reader, out io.Writer) error {
	eng, ix, err := openEngine(data, walDir, scorerName, parallel, timeout, pruning)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "cssearch: %d citations loaded; enter queries like \"w1 w2 | m1 m2\" (exit to quit)\n", ix.NumDocs())
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "exit" || line == "quit":
			return nil
		case strings.HasPrefix(line, "?"):
			pq, err := query.Parse(strings.TrimSpace(line[1:]))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			ex, err := eng.Explain(pq)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprint(out, ex)
		default:
			if err := searchAndPrint(eng, ix, line, k, mode, out); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		}
	}
}

// printListStats reports, per field, how the index's posting lists are
// laid out in the adaptive container layer — the storage side of the
// bitmap/array hybrid (index format version 2) — how many lists carry
// per-container score bounds (format v3), and the on-disk block layout
// of the paged format (v4): encoding mix, payload+directory bytes, and
// the compression ratio against the decoded in-memory footprint.
func printListStats(data string, out io.Writer) error {
	ix, err := index.LoadFile(filepath.Join(data, "index.gob"))
	if err != nil {
		return err
	}
	version := index.FormatVersion
	if ix.Mapped() {
		version = index.MappedFormatVersion
	}
	fmt.Fprintf(out, "index: %s (format v%d)\n", ix, version)
	for _, f := range ix.Schema().Fields {
		cs := ix.ContainerStats(f.Name)
		if cs.Lists == 0 {
			continue
		}
		fmt.Fprintf(out, "  %-10s %7d lists %9d postings  %7d sparse / %d dense chunks  %5d tf arrays  %6.2f bytes/posting\n",
			f.Name, cs.Lists, cs.Postings, cs.SparseChunks, cs.DenseChunks, cs.TFLists,
			float64(cs.Bytes)/float64maxOne(cs.Postings))
		if cs.BoundedLists > 0 {
			fmt.Fprintf(out, "  %-10s %7d bounded lists  max tf=%d  min doclen=%d\n",
				"", cs.BoundedLists, cs.MaxTF, cs.MinDocLen)
		}
		bs := ix.FieldBlockStats(f.Name)
		disk := bs.PayloadBytes + bs.DirBytes
		fmt.Fprintf(out, "  %-10s on disk: %d bytes (%d payload + %d dir)  %.2f bytes/posting  %.2fx vs decoded\n",
			"", disk, bs.PayloadBytes, bs.DirBytes,
			float64(disk)/float64maxOne(cs.Postings),
			float64(cs.Bytes)/float64maxOne(disk))
		fmt.Fprintf(out, "  %-10s blocks: %d sparse-raw / %d dense-raw / %d packed  %d with tf columns\n",
			"", bs.SparseRaw, bs.DenseRaw, bs.SparsePacked, bs.TFBlocks)
	}
	if ix.Mapped() {
		cs := ix.BlockCacheStats()
		fmt.Fprintf(out, "  block cache: budget=%d used=%d hits=%d misses=%d insertions=%d evictions=%d promotions=%d ghost_hits=%d\n",
			cs.Budget, cs.Used, cs.Hits, cs.Misses, cs.Insertions, cs.Evictions, cs.Promotions, cs.GhostHits)
	}
	return nil
}

func float64maxOne(n int64) float64 {
	if n < 1 {
		return 1
	}
	return float64(n)
}

func run(data, walDir, qstr string, k int, mode, scorerName string, parallel int, timeout time.Duration, pruning bool) error {
	eng, ix, err := openEngine(data, walDir, scorerName, parallel, timeout, pruning)
	if err != nil {
		return err
	}
	return searchAndPrint(eng, ix, qstr, k, mode, os.Stdout)
}

// openEngine loads the persisted index and (optionally) views and wires
// the requested scorer.
func openEngine(data, walDir, scorerName string, parallel int, timeout time.Duration, pruning bool) (*core.Engine, *index.Index, error) {
	var sc ranking.Scorer
	switch scorerName {
	case "pivoted-tfidf":
		sc = ranking.NewPivotedTFIDF()
	case "bm25":
		sc = ranking.NewBM25()
	case "dirichlet-lm":
		sc = ranking.NewDirichletLM()
	case "cosine-tfidf":
		sc = ranking.NewCosineTFIDF()
	case "jelinek-mercer-lm":
		sc = ranking.NewJelinekMercerLM()
	default:
		return nil, nil, fmt.Errorf("unknown scorer %q", scorerName)
	}
	ix, err := index.LoadFile(filepath.Join(data, "index.gob"))
	if err != nil {
		return nil, nil, err
	}
	cat, err := loadCatalog(data, walDir)
	if err != nil {
		if walDir != "" {
			return nil, nil, err
		}
		fmt.Fprintln(os.Stderr, "note: no views loaded; contextual queries use the straightforward plan")
		cat = nil
	}
	return core.New(ix, cat, core.Options{Scorer: sc, Parallelism: parallel, Deadline: timeout, Pruning: pruning}), ix, nil
}

// loadCatalog returns the view catalog: recovered from the WAL directory
// (newest valid snapshot plus log-tail replay) when walDir is set,
// otherwise read from views.gob. A WAL recovery prints a one-line
// summary so operators see what the crash left behind.
func loadCatalog(data, walDir string) (*views.Catalog, error) {
	if walDir == "" {
		return views.LoadFile(filepath.Join(data, "views.gob"))
	}
	m, rec, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		return nil, fmt.Errorf("wal recovery: %w", err)
	}
	defer m.Close()
	fmt.Fprintf(os.Stderr, "recovered views from %s: generation %d, %d batches replayed",
		walDir, rec.Generation, rec.BatchesReplayed)
	if rec.TornTail {
		fmt.Fprintf(os.Stderr, ", torn tail truncated (%d bytes)", rec.TruncatedBytes)
	}
	if len(rec.CorruptSnapshots) > 0 {
		fmt.Fprintf(os.Stderr, ", corrupt snapshots skipped: %v", rec.CorruptSnapshots)
	}
	fmt.Fprintln(os.Stderr)
	return m.Catalog(), nil
}

// verifyViews audits the view catalog against the index (the source of
// truth): every sampled group's aggregates are recomputed and compared.
// Exit status is the contract — zero findings means the catalog can be
// trusted for ranking, any drift makes the run fail.
func verifyViews(data, walDir string, out io.Writer) error {
	ix, err := index.LoadFile(filepath.Join(data, "index.gob"))
	if err != nil {
		return err
	}
	cat, err := loadCatalog(data, walDir)
	if err != nil {
		return err
	}
	drift, err := cat.Verify(ix, views.VerifyOptions{})
	if err != nil {
		return err
	}
	if len(drift) == 0 {
		fmt.Fprintf(out, "ok: %d views agree with the index (fingerprint %s)\n", cat.Len(), cat.Fingerprint())
		return nil
	}
	for _, d := range drift {
		fmt.Fprintln(out, " ", d)
	}
	return fmt.Errorf("%d drift finding(s) — re-materialize the views or restore a snapshot", len(drift))
}

// searchAndPrint evaluates one query string in the given mode and prints
// the ranked results.
func searchAndPrint(e *core.Engine, ix *index.Index, qstr string, k int, mode string, out io.Writer) error {
	pq, err := query.Parse(qstr)
	if err != nil {
		return err
	}
	show := func(label string, search func(query.Query, int) ([]core.Result, core.ExecStats, error)) error {
		res, st, err := search(pq, k)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s  [plan=%s view=%v results=%d |D_P|=%d %s]\n",
			label, st.Plan, st.UsedView, st.ResultSize, st.ContextSize,
			st.Elapsed.Round(time.Microsecond))
		if st.Pruning.Active {
			fmt.Fprintf(out, "  pruning: containers skipped=%d docs skipped=%d bound checks=%d\n",
				st.Pruning.ContainersSkipped, st.Pruning.DocsSkipped, st.Pruning.BoundChecks)
		}
		if st.Degraded {
			fmt.Fprintf(out, "  !! degraded: %s\n", st.DegradedReason)
			fmt.Fprintf(out, "     phases: analyze=%s stats=%s resultset=%s score=%s  cost: entries=%d seeks=%d aggregated=%d viewgroups=%d\n",
				st.Phases.Analyze.Round(time.Microsecond), st.Phases.Stats.Round(time.Microsecond),
				st.Phases.ResultSet.Round(time.Microsecond), st.Phases.Score.Round(time.Microsecond),
				st.EntriesScanned, st.Seeks, st.AggregatedEntries, st.ViewGroupsScanned)
		}
		for i, r := range res {
			fmt.Fprintf(out, "  %2d. (%.4f) #%d %s\n", i+1, r.Score, r.DocID, ix.StoredField(r.DocID, "title"))
		}
		return nil
	}
	switch mode {
	case "context":
		return show("context-sensitive", e.SearchContextSensitive)
	case "conventional":
		return show("conventional", e.SearchConventional)
	case "straightforward":
		return show("straightforward", e.SearchStraightforward)
	case "compare":
		if err := show("conventional", e.SearchConventional); err != nil {
			return err
		}
		return show("context-sensitive", e.SearchContextSensitive)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}
