// Command cssearch runs context-sensitive queries against a data
// directory built by csbuild.
//
// Usage:
//
//	cssearch -data ./data -q "pancreas leukemia | digestive_system" -k 10
//	cssearch -data ./data -q "..." -mode compare
//
// Modes:
//
//	context         context-sensitive ranking (views when usable); default
//	conventional    the baseline Q_t = Q_k ∪ P (global statistics)
//	straightforward context-sensitive without views (Figure 3 plan)
//	compare         conventional and context-sensitive side by side
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"csrank/internal/core"
	"csrank/internal/index"
	"csrank/internal/query"
	"csrank/internal/ranking"
	"csrank/internal/views"
)

func main() {
	var (
		data        = flag.String("data", "data", "data directory written by csbuild")
		q           = flag.String("q", "", "query, e.g. \"pancreas leukemia | digestive_system\"")
		k           = flag.Int("k", 10, "number of results")
		mode        = flag.String("mode", "context", "context | conventional | straightforward | compare")
		scorer      = flag.String("scorer", "pivoted-tfidf", "pivoted-tfidf | bm25 | dirichlet-lm")
		interactive = flag.Bool("i", false, "interactive mode: read queries from stdin (prefix a line with '?' for plan explanation only)")
	)
	flag.Parse()
	if *interactive {
		if err := runInteractive(*data, *k, *mode, *scorer, os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "cssearch:", err)
			os.Exit(1)
		}
		return
	}
	if *q == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*data, *q, *k, *mode, *scorer); err != nil {
		fmt.Fprintln(os.Stderr, "cssearch:", err)
		os.Exit(1)
	}
}

// runInteractive reads one query per line and evaluates it; lines
// starting with '?' print the plan explanation instead; "exit" or EOF
// ends the session. Per-query errors are reported and the loop
// continues.
func runInteractive(data string, k int, mode, scorerName string, in io.Reader, out io.Writer) error {
	eng, ix, err := openEngine(data, scorerName)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "cssearch: %d citations loaded; enter queries like \"w1 w2 | m1 m2\" (exit to quit)\n", ix.NumDocs())
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "exit" || line == "quit":
			return nil
		case strings.HasPrefix(line, "?"):
			pq, err := query.Parse(strings.TrimSpace(line[1:]))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			ex, err := eng.Explain(pq)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprint(out, ex)
		default:
			if err := searchAndPrint(eng, ix, line, k, mode, out); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
		}
	}
}

func run(data, qstr string, k int, mode, scorerName string) error {
	eng, ix, err := openEngine(data, scorerName)
	if err != nil {
		return err
	}
	return searchAndPrint(eng, ix, qstr, k, mode, os.Stdout)
}

// openEngine loads the persisted index and (optionally) views and wires
// the requested scorer.
func openEngine(data, scorerName string) (*core.Engine, *index.Index, error) {
	var sc ranking.Scorer
	switch scorerName {
	case "pivoted-tfidf":
		sc = ranking.NewPivotedTFIDF()
	case "bm25":
		sc = ranking.NewBM25()
	case "dirichlet-lm":
		sc = ranking.NewDirichletLM()
	default:
		return nil, nil, fmt.Errorf("unknown scorer %q", scorerName)
	}
	ix, err := index.LoadFile(filepath.Join(data, "index.gob"))
	if err != nil {
		return nil, nil, err
	}
	cat, err := views.LoadFile(filepath.Join(data, "views.gob"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "note: no views loaded; contextual queries use the straightforward plan")
		cat = nil
	}
	return core.New(ix, cat, core.Options{Scorer: sc}), ix, nil
}

// searchAndPrint evaluates one query string in the given mode and prints
// the ranked results.
func searchAndPrint(e *core.Engine, ix *index.Index, qstr string, k int, mode string, out io.Writer) error {
	pq, err := query.Parse(qstr)
	if err != nil {
		return err
	}
	show := func(label string, search func(query.Query, int) ([]core.Result, core.ExecStats, error)) error {
		res, st, err := search(pq, k)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s  [plan=%s view=%v results=%d |D_P|=%d %s]\n",
			label, st.Plan, st.UsedView, st.ResultSize, st.ContextSize,
			st.Elapsed.Round(time.Microsecond))
		for i, r := range res {
			fmt.Fprintf(out, "  %2d. (%.4f) #%d %s\n", i+1, r.Score, r.DocID, ix.StoredField(r.DocID, "title"))
		}
		return nil
	}
	switch mode {
	case "context":
		return show("context-sensitive", e.SearchContextSensitive)
	case "conventional":
		return show("conventional", e.SearchConventional)
	case "straightforward":
		return show("straightforward", e.SearchStraightforward)
	case "compare":
		if err := show("conventional", e.SearchConventional); err != nil {
			return err
		}
		return show("context-sensitive", e.SearchContextSensitive)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}
