package csrank

import (
	"context"
	"fmt"
	"testing"
)

// shardedDemoQueries exercise contextual, conventional-shape and
// tie-break-heavy cases over the demo collection.
var shardedDemoQueries = []string{
	"pancreas leukemia | digestive_system",
	"pancreas leukemia",
	"leukemia | neoplasms",
	"leukemia lymphoma | neoplasms",
	"surgery outcomes | digestive_system",
	"leukemia",
}

// rebuildDemoDocs queues the same documents buildDemo indexes.
func rebuildDemoDocs(b *Builder) {
	b.Add(Document{
		Title:      "Complications following pancreas transplant",
		Body:       "pancreas pancreas transplant complications leukemia",
		Predicates: []string{"digestive_system"},
	})
	b.Add(Document{
		Title:      "Organ failure in patients with acute leukemia",
		Body:       "leukemia leukemia organ failure pancreas",
		Predicates: []string{"digestive_system"},
	})
	for i := 0; i < 400; i++ {
		b.Add(Document{
			Title:      fmt.Sprintf("Leukemia cohort study %d", i),
			Body:       "leukemia lymphoma tumor outcomes",
			Predicates: []string{"neoplasms"},
		})
	}
	for i := 0; i < 200; i++ {
		body := "pancreas liver gastric surgery"
		if i < 4 {
			body += " leukemia"
		}
		b.Add(Document{
			Title:      fmt.Sprintf("Digestive surgery outcomes %d", i),
			Body:       body,
			Predicates: []string{"digestive_system"},
		})
	}
}

// TestBuildShardedMatchesBuild: the public sharded engine must return
// the same hits — docIDs, titles, scores — as the single engine built
// from the same documents, for several shard counts, with and without
// pruning.
func TestBuildShardedMatchesBuild(t *testing.T) {
	for _, pruning := range []bool{false, true} {
		opts := BuildOptions{Pruning: pruning}
		single := buildDemo(t, opts)
		for _, shards := range []int{1, 2, 4} {
			b := NewBuilder()
			rebuildDemoDocs(b)
			se, err := b.BuildSharded(shards, opts)
			if err != nil {
				t.Fatal(err)
			}
			if se.NumShards() != shards || se.NumDocs() != single.NumDocs() {
				t.Fatalf("sharded engine %d shards / %d docs, want %d / %d",
					se.NumShards(), se.NumDocs(), shards, single.NumDocs())
			}
			if se.NumViews() == 0 {
				t.Errorf("shards=%d: no views materialized on any shard", shards)
			}
			for _, q := range shardedDemoQueries {
				want, _, err := single.Search(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				got, st, per, err := se.SearchDetailed(context.Background(), q, 10)
				if err != nil {
					t.Fatal(err)
				}
				if len(per) != shards {
					t.Fatalf("%d per-shard reports for %d shards", len(per), shards)
				}
				if len(got) != len(want) {
					t.Fatalf("shards=%d q=%q: %d hits, want %d", shards, q, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("shards=%d q=%q rank %d: %+v, want %+v", shards, q, i, got[i], want[i])
					}
				}
				if st.Elapsed <= 0 {
					t.Errorf("shards=%d q=%q: non-positive Elapsed", shards, q)
				}
			}
		}
	}
}

// TestShardedWrapAndRoundTrip: Engine.Sharded() ranks like the engine;
// Save + OpenSharded round-trips bit-identically (both index formats).
func TestShardedWrapAndRoundTrip(t *testing.T) {
	single := buildDemo(t, BuildOptions{})
	wrapped, err := single.Sharded()
	if err != nil {
		t.Fatal(err)
	}
	if wrapped.NumShards() != 1 || wrapped.NumDocs() != single.NumDocs() {
		t.Fatalf("wrapped: %d shards / %d docs", wrapped.NumShards(), wrapped.NumDocs())
	}

	b := NewBuilder()
	rebuildDemoDocs(b)
	se, err := b.BuildSharded(3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	saves := map[string]func(string) error{"framed": se.Save, "mapped": se.SaveMapped}
	for name, save := range saves {
		dir := t.TempDir()
		if err := save(dir); err != nil {
			t.Fatal(err)
		}
		if !IsSharded(dir) {
			t.Fatalf("%s: saved dir not detected as sharded", name)
		}
		re, err := OpenSharded(dir, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := re.Generations(); len(got) != 3 {
			t.Fatalf("%s: %d generations", name, len(got))
		}
		for _, q := range shardedDemoQueries {
			want, _, err := single.Search(q, 8)
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range []*ShardedEngine{wrapped, se, re} {
				got, _, err := eng.Search(q, 8)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s q=%q: %d hits, want %d", name, q, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s q=%q rank %d: %+v, want %+v", name, q, i, got[i], want[i])
					}
				}
			}
		}
	}
}
