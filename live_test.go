package csrank

import (
	"fmt"
	"testing"
)

func liveDoc(i int) Document {
	pred := "digestive_system"
	if i%3 == 0 {
		pred = "neoplasms"
	}
	return Document{
		Title:      fmt.Sprintf("Live study %d", i),
		Body:       fmt.Sprintf("uniq%04d leukemia pancreas outcomes", i),
		Predicates: []string{pred},
	}
}

// TestOpenLiveIngestAndCompact: the public live path end to end — add
// documents to an opened cluster, see them ranked immediately and
// bit-identically to a fresh batch build, compact, reopen, and still
// agree with the batch build.
func TestOpenLiveIngestAndCompact(t *testing.T) {
	const nBase, nAdd = 50, 20
	base := NewBuilder()
	for i := 0; i < nBase; i++ {
		base.Add(liveDoc(i))
	}
	se, err := base.BuildSharded(2, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := se.Save(dir); err != nil {
		t.Fatal(err)
	}

	live, err := OpenLive(dir, BuildOptions{}, IngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := se.Add(liveDoc(0)); err == nil {
		t.Fatal("Add accepted on an engine not opened for ingestion")
	}
	for i := nBase; i < nBase+nAdd; i++ {
		id, err := live.Add(liveDoc(i))
		if err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
		if id != i {
			t.Fatalf("document %d assigned docID %d", i, id)
		}
	}

	full := NewBuilder()
	for i := 0; i < nBase+nAdd; i++ {
		full.Add(liveDoc(i))
	}
	want, err := full.Build(BuildOptions{DisableViews: true})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"leukemia", "uniq0055", "uniq0007",
		"leukemia | neoplasms", "pancreas outcomes | digestive_system",
	}
	compare := func(stage string, e *ShardedEngine) {
		t.Helper()
		for _, q := range queries {
			wh, _, err := want.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			gh, _, err := e.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(gh) != len(wh) {
				t.Fatalf("%s %q: %d hits, want %d", stage, q, len(gh), len(wh))
			}
			for i := range wh {
				if gh[i] != wh[i] {
					t.Fatalf("%s %q rank %d: %+v, want %+v", stage, q, i, gh[i], wh[i])
				}
			}
		}
	}
	compare("live", live)
	if n := live.NumDocs(); n != nBase+nAdd {
		t.Fatalf("NumDocs=%d, want %d", n, nBase+nAdd)
	}
	if err := live.Compact(); err != nil {
		t.Fatal(err)
	}
	if p := live.Pending(); p != 0 {
		t.Fatalf("%d pending after compaction", p)
	}
	compare("compacted", live)
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	live, err = OpenLive(dir, BuildOptions{}, IngestOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer live.Close()
	compare("reopened", live)
}

// TestEngineEnableIngest: the single-engine writable facade.
func TestEngineEnableIngest(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 30; i++ {
		b.Add(liveDoc(i))
	}
	e, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Add(liveDoc(30)); err == nil {
		t.Fatal("Add accepted before EnableIngest")
	}
	dir := t.TempDir()
	if err := e.EnableIngest(dir, BuildOptions{}, IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	id, err := e.Add(liveDoc(30))
	if err != nil {
		t.Fatal(err)
	}
	if id != 30 {
		t.Fatalf("docID %d, want 30", id)
	}
	hits, _, err := e.Search("uniq0030", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].DocID != 30 || hits[0].Title != "Live study 30" {
		t.Fatalf("added document not served: %+v", hits)
	}
	if e.NumDocs() != 31 {
		t.Fatalf("NumDocs=%d, want 31", e.NumDocs())
	}
	if e.Live() == nil {
		t.Fatal("Live() nil after EnableIngest")
	}
}
