package mining

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// classic dataset from the Apriori paper family:
// transactions over items 1..5.
func classicTx() [][]Item {
	return [][]Item{
		{1, 3, 4},
		{2, 3, 5},
		{1, 2, 3, 5},
		{2, 5},
		{1, 2, 3, 5},
	}
}

func minersAgree(t *testing.T, tx [][]Item, opts Options) []FrequentItemset {
	t.Helper()
	a := Apriori(tx, opts)
	f := FPGrowth(tx, opts)
	e := Eclat(tx, opts)
	if !reflect.DeepEqual(a, f) {
		t.Fatalf("Apriori and FP-growth disagree:\n%v\nvs\n%v", a, f)
	}
	if !reflect.DeepEqual(a, e) {
		t.Fatalf("Apriori and Eclat disagree:\n%v\nvs\n%v", a, e)
	}
	return a
}

func TestClassicDataset(t *testing.T) {
	got := minersAgree(t, classicTx(), Options{MinSupport: 2})
	// Hand-derived frequent itemsets with support ≥ 2.
	want := map[string]int{}
	expect := []FrequentItemset{
		{Items: []Item{1}, Support: 3},
		{Items: []Item{2}, Support: 4},
		{Items: []Item{3}, Support: 4},
		{Items: []Item{5}, Support: 4},
		{Items: []Item{1, 2}, Support: 2},
		{Items: []Item{1, 3}, Support: 3},
		{Items: []Item{1, 5}, Support: 2},
		{Items: []Item{2, 3}, Support: 3},
		{Items: []Item{2, 5}, Support: 4},
		{Items: []Item{3, 5}, Support: 3},
		{Items: []Item{1, 2, 3}, Support: 2},
		{Items: []Item{1, 2, 5}, Support: 2},
		{Items: []Item{1, 3, 5}, Support: 2},
		{Items: []Item{2, 3, 5}, Support: 3},
		{Items: []Item{1, 2, 3, 5}, Support: 2},
	}
	for _, s := range expect {
		want[s.Key()] = s.Support
	}
	if len(got) != len(expect) {
		t.Fatalf("got %d itemsets, want %d: %v", len(got), len(expect), got)
	}
	for _, s := range got {
		if want[s.Key()] != s.Support {
			t.Errorf("itemset %v support %d, want %d", s.Items, s.Support, want[s.Key()])
		}
	}
}

func TestMaxLen(t *testing.T) {
	got := minersAgree(t, classicTx(), Options{MinSupport: 2, MaxLen: 2})
	for _, s := range got {
		if len(s.Items) > 2 {
			t.Errorf("itemset %v exceeds MaxLen", s.Items)
		}
	}
	// All 2-itemsets still present.
	n2 := 0
	for _, s := range got {
		if len(s.Items) == 2 {
			n2++
		}
	}
	if n2 != 6 {
		t.Errorf("%d 2-itemsets, want 6", n2)
	}
}

func TestHighSupportThreshold(t *testing.T) {
	got := minersAgree(t, classicTx(), Options{MinSupport: 4})
	// Only {2}, {3}, {5}, {2,5} have support ≥ 4.
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if got := minersAgree(t, nil, Options{MinSupport: 1}); len(got) != 0 {
		t.Errorf("empty dataset mined %v", got)
	}
	if got := minersAgree(t, [][]Item{{}, {}}, Options{MinSupport: 1}); len(got) != 0 {
		t.Errorf("empty transactions mined %v", got)
	}
	got := minersAgree(t, [][]Item{{7}}, Options{MinSupport: 1})
	if len(got) != 1 || got[0].Support != 1 {
		t.Errorf("singleton dataset mined %v", got)
	}
	// MinSupport below 1 is clamped.
	got = Apriori([][]Item{{1}}, Options{MinSupport: 0})
	if len(got) != 1 {
		t.Errorf("clamped support mined %v", got)
	}
}

func TestSupportsAreExact(t *testing.T) {
	tx := randomTx(rand.New(rand.NewSource(5)), 200, 12, 0.25)
	got := minersAgree(t, tx, Options{MinSupport: 20})
	if len(got) == 0 {
		t.Fatal("no frequent itemsets at support 20; generator too sparse")
	}
	for _, s := range got {
		if want := supportOf(tx, s.Items); s.Support != want {
			t.Errorf("itemset %v support %d, oracle %d", s.Items, s.Support, want)
		}
	}
}

func TestCompleteness(t *testing.T) {
	// Every frequent pair found by brute force must be mined.
	tx := randomTx(rand.New(rand.NewSource(9)), 150, 8, 0.3)
	minSup := 15
	mined := map[string]bool{}
	for _, s := range minersAgree(t, tx, Options{MinSupport: minSup}) {
		mined[s.Key()] = true
	}
	for a := Item(0); a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			items := []Item{a, b}
			if supportOf(tx, items) >= minSup && !mined[itemsKey(items)] {
				t.Errorf("frequent pair %v missed", items)
			}
		}
	}
}

func randomTx(rng *rand.Rand, n, items int, p float64) [][]Item {
	tx := make([][]Item, n)
	for i := range tx {
		for it := Item(0); it < Item(items); it++ {
			if rng.Float64() < p {
				tx[i] = append(tx[i], it)
			}
		}
	}
	return tx
}

// Property: the three miners agree on random datasets, and every mined
// support is correct.
func TestMinersAgreeProperty(t *testing.T) {
	f := func(seed int64, supRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tx := randomTx(rng, 60+rng.Intn(100), 6+rng.Intn(6), 0.2+rng.Float64()*0.2)
		minSup := 5 + int(supRaw%20)
		a := Apriori(tx, Options{MinSupport: minSup})
		fp := FPGrowth(tx, Options{MinSupport: minSup})
		e := Eclat(tx, Options{MinSupport: minSup})
		if !reflect.DeepEqual(a, fp) || !reflect.DeepEqual(a, e) {
			return false
		}
		for _, s := range a {
			if s.Support < minSup || supportOf(tx, s.Items) != s.Support {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMaximal(t *testing.T) {
	sets := []FrequentItemset{
		{Items: []Item{1}, Support: 5},
		{Items: []Item{1, 2}, Support: 4},
		{Items: []Item{1, 2, 3}, Support: 3},
		{Items: []Item{4}, Support: 3},
		{Items: []Item{2, 3}, Support: 3},
	}
	got := Maximal(sets)
	if len(got) != 2 {
		t.Fatalf("Maximal = %v", got)
	}
	keys := map[string]bool{}
	for _, s := range got {
		keys[s.Key()] = true
	}
	if !keys[itemsKey([]Item{1, 2, 3})] || !keys[itemsKey([]Item{4})] {
		t.Errorf("Maximal = %v", got)
	}
}

func TestMaximalOfMinedSets(t *testing.T) {
	tx := classicTx()
	all := Apriori(tx, Options{MinSupport: 2})
	maxl := Maximal(all)
	// Every maximal set is frequent; every frequent set is a subset of
	// some maximal set; no maximal set contains another.
	for _, m := range maxl {
		if supportOf(tx, m.Items) < 2 {
			t.Errorf("maximal set %v not frequent", m.Items)
		}
		for _, m2 := range maxl {
			if !reflect.DeepEqual(m.Items, m2.Items) && isSubset(m.Items, m2.Items) {
				t.Errorf("maximal set %v contained in %v", m.Items, m2.Items)
			}
		}
	}
	for _, s := range all {
		covered := false
		for _, m := range maxl {
			if isSubset(s.Items, m.Items) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("frequent set %v not covered by any maximal set", s.Items)
		}
	}
}

func TestIsSubset(t *testing.T) {
	cases := []struct {
		a, b []Item
		want bool
	}{
		{nil, nil, true},
		{nil, []Item{1}, true},
		{[]Item{1}, nil, false},
		{[]Item{1, 3}, []Item{1, 2, 3}, true},
		{[]Item{1, 4}, []Item{1, 2, 3}, false},
		{[]Item{2}, []Item{1, 2, 3}, true},
	}
	for _, c := range cases {
		if got := isSubset(c.a, c.b); got != c.want {
			t.Errorf("isSubset(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

func TestContainsSorted(t *testing.T) {
	tx := []Item{1, 3, 5}
	if !containsSorted(tx, 3) || containsSorted(tx, 2) || containsSorted(tx, 9) {
		t.Error("containsSorted wrong")
	}
}
