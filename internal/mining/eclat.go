package mining

import "sort"

// Eclat mines all frequent itemsets with Zaki's vertical algorithm: each
// item carries its tidset (sorted transaction IDs); depth-first extension
// intersects tidsets, so support counting is a merge rather than a
// dataset scan. Eclat's tidset intersections are the same primitive as
// the inverted-list intersections of query evaluation, which makes it the
// natural miner over an inverted index.
func Eclat(tx [][]Item, opts Options) []FrequentItemset {
	if opts.MinSupport < 1 {
		opts.MinSupport = 1
	}
	tidsets := make(map[Item][]int32)
	for tid, t := range tx {
		for _, it := range t {
			tidsets[it] = append(tidsets[it], int32(tid))
		}
	}
	type entry struct {
		item Item
		tids []int32
	}
	var frequent []entry
	for it, tids := range tidsets {
		if len(tids) >= opts.MinSupport {
			frequent = append(frequent, entry{it, tids})
		}
	}
	sort.Slice(frequent, func(a, b int) bool { return frequent[a].item < frequent[b].item })

	var result []FrequentItemset
	maxLen := opts.maxLen()

	var extend func(prefix []Item, classes []entry)
	extend = func(prefix []Item, classes []entry) {
		for i, e := range classes {
			itemset := make([]Item, len(prefix)+1)
			copy(itemset, prefix)
			itemset[len(prefix)] = e.item
			result = append(result, FrequentItemset{Items: itemset, Support: len(e.tids)})
			if len(itemset) >= maxLen {
				continue
			}
			var next []entry
			for _, f := range classes[i+1:] {
				tids := intersectTids(e.tids, f.tids)
				if len(tids) >= opts.MinSupport {
					next = append(next, entry{f.item, tids})
				}
			}
			if len(next) > 0 {
				extend(itemset, next)
			}
		}
	}
	extend(nil, frequent)
	sortResult(result)
	return result
}

func intersectTids(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
