package mining

import "sort"

// Apriori mines all frequent itemsets with the levelwise algorithm of
// Agrawal & Srikant (VLDB 1994): L_1 from a counting pass, then repeated
// candidate generation (join L_{k-1} with itself on a shared (k-2)-prefix,
// prune candidates with an infrequent subset) and a counting scan per
// level. Its cost is one full dataset scan per level — the property that
// makes it infeasible at PubMed scale in §6.2.
//
// Transactions must be sorted ascending; the result is in canonical order.
func Apriori(tx [][]Item, opts Options) []FrequentItemset {
	if opts.MinSupport < 1 {
		opts.MinSupport = 1
	}
	maxLen := opts.maxLen()

	// Level 1.
	counts := make(map[Item]int)
	for _, t := range tx {
		for _, it := range t {
			counts[it]++
		}
	}
	var result []FrequentItemset
	var level [][]Item
	for it, c := range counts {
		if c >= opts.MinSupport {
			result = append(result, FrequentItemset{Items: []Item{it}, Support: c})
			level = append(level, []Item{it})
		}
	}
	sort.Slice(level, func(a, b int) bool { return level[a][0] < level[b][0] })

	for k := 2; k <= maxLen && len(level) > 1; k++ {
		candidates := aprioriGen(level)
		if len(candidates) == 0 {
			break
		}
		// Counting scan: check each candidate against each transaction.
		// Candidates are grouped by key for the subset test.
		candCount := make(map[string]int, len(candidates))
		for _, t := range tx {
			if len(t) < k {
				continue
			}
			for _, c := range candidates {
				if isSubset(c, t) {
					candCount[itemsKey(c)]++
				}
			}
		}
		level = level[:0]
		for _, c := range candidates {
			if s := candCount[itemsKey(c)]; s >= opts.MinSupport {
				result = append(result, FrequentItemset{Items: c, Support: s})
				level = append(level, c)
			}
		}
	}
	sortResult(result)
	return result
}

// aprioriGen generates level-(k) candidates from sorted level-(k-1)
// frequent itemsets: join pairs sharing the first k-2 items, then prune
// candidates having any infrequent (k-1)-subset.
func aprioriGen(level [][]Item) [][]Item {
	frequent := make(map[string]bool, len(level))
	for _, s := range level {
		frequent[itemsKey(s)] = true
	}
	var out [][]Item
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			k := len(a)
			if !samePrefix(a, b, k-1) {
				continue
			}
			if a[k-1] >= b[k-1] {
				continue
			}
			cand := make([]Item, k+1)
			copy(cand, a)
			cand[k] = b[k-1]
			if prunedByInfrequentSubset(cand, frequent) {
				continue
			}
			out = append(out, cand)
		}
	}
	return out
}

func samePrefix(a, b []Item, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// prunedByInfrequentSubset checks the Apriori property: every (k-1)-subset
// of a frequent k-set must be frequent.
func prunedByInfrequentSubset(cand []Item, frequent map[string]bool) bool {
	sub := make([]Item, 0, len(cand)-1)
	for drop := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != drop {
				sub = append(sub, it)
			}
		}
		if !frequent[itemsKey(sub)] {
			return true
		}
	}
	return false
}
