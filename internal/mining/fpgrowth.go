package mining

import "sort"

// FPGrowth mines all frequent itemsets with Han et al.'s FP-growth: build
// a frequency-ordered prefix tree (FP-tree) of the transactions, then
// recursively mine conditional trees — no candidate generation and only
// two dataset scans, at the price of the in-memory tree (the resource
// that runs out at full PubMed scale in §6.2).
func FPGrowth(tx [][]Item, opts Options) []FrequentItemset {
	if opts.MinSupport < 1 {
		opts.MinSupport = 1
	}
	counts := make(map[Item]int)
	for _, t := range tx {
		for _, it := range t {
			counts[it]++
		}
	}
	tree := newFPTree(counts, opts.MinSupport)
	for _, t := range tx {
		tree.insert(t, 1)
	}
	var result []FrequentItemset
	tree.mine(nil, opts.MinSupport, opts.maxLen(), &result)
	sortResult(result)
	return result
}

type fpNode struct {
	item     Item
	count    int
	parent   *fpNode
	children map[Item]*fpNode
	next     *fpNode // header-list chaining
}

type fpTree struct {
	root   *fpNode
	header map[Item]*fpNode // item -> first node in chain
	// order maps each frequent item to its rank (0 = most frequent); the
	// tree stores transaction items in rank order to maximize sharing.
	order map[Item]int
	// items lists frequent items by ascending rank.
	items []Item
	// support caches per-item total support within this (conditional)
	// tree.
	support map[Item]int
}

func newFPTree(counts map[Item]int, minSupport int) *fpTree {
	t := &fpTree{
		root:    &fpNode{children: make(map[Item]*fpNode)},
		header:  make(map[Item]*fpNode),
		order:   make(map[Item]int),
		support: make(map[Item]int),
	}
	type ic struct {
		item Item
		c    int
	}
	var freq []ic
	for it, c := range counts {
		if c >= minSupport {
			freq = append(freq, ic{it, c})
		}
	}
	sort.Slice(freq, func(a, b int) bool {
		if freq[a].c != freq[b].c {
			return freq[a].c > freq[b].c
		}
		return freq[a].item < freq[b].item
	})
	for rank, f := range freq {
		t.order[f.item] = rank
		t.items = append(t.items, f.item)
		t.support[f.item] = f.c
	}
	return t
}

// insert adds a transaction (any order) with the given count, keeping
// only frequent items, in rank order.
func (t *fpTree) insert(tx []Item, count int) {
	kept := make([]Item, 0, len(tx))
	for _, it := range tx {
		if _, ok := t.order[it]; ok {
			kept = append(kept, it)
		}
	}
	sort.Slice(kept, func(a, b int) bool { return t.order[kept[a]] < t.order[kept[b]] })
	node := t.root
	for _, it := range kept {
		child := node.children[it]
		if child == nil {
			child = &fpNode{item: it, parent: node, children: make(map[Item]*fpNode)}
			child.next = t.header[it]
			t.header[it] = child
			node.children[it] = child
		}
		child.count += count
		node = child
	}
}

// mine emits all frequent itemsets extending suffix, smallest-rank-last,
// by walking items from least to most frequent and building conditional
// trees.
func (t *fpTree) mine(suffix []Item, minSupport, maxLen int, out *[]FrequentItemset) {
	if len(suffix) >= maxLen {
		return
	}
	for i := len(t.items) - 1; i >= 0; i-- {
		item := t.items[i]
		sup := t.support[item]
		itemset := make([]Item, 0, len(suffix)+1)
		itemset = append(itemset, suffix...)
		itemset = append(itemset, item)
		sortItems(itemset)
		*out = append(*out, FrequentItemset{Items: itemset, Support: sup})

		if len(itemset) >= maxLen {
			continue
		}
		// Conditional pattern base: prefix paths of every node of item.
		condCounts := make(map[Item]int)
		type path struct {
			items []Item
			count int
		}
		var paths []path
		for n := t.header[item]; n != nil; n = n.next {
			var p []Item
			for a := n.parent; a != nil && a.parent != nil; a = a.parent {
				p = append(p, a.item)
			}
			if len(p) > 0 {
				paths = append(paths, path{items: p, count: n.count})
				for _, it := range p {
					condCounts[it] += n.count
				}
			}
		}
		if len(condCounts) == 0 {
			continue
		}
		cond := newFPTree(condCounts, minSupport)
		if len(cond.items) == 0 {
			continue
		}
		for _, p := range paths {
			cond.insert(p.items, p.count)
		}
		cond.mine(itemset, minSupport, maxLen, out)
	}
}

func sortItems(items []Item) {
	sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
}
