// Package mining implements frequent-itemset mining over the predicate
// annotations of a document collection — the machinery §5.1 reduces view
// selection to: "finding keyword combinations that specify large contexts
// is equivalent to mining association rules of keywords such that their
// supports … are greater than T_C". Items are predicate-term indices and
// transactions are documents' annotation sets.
//
// Three classic miners are provided — Apriori, FP-growth and Eclat — with
// identical output contracts, so the experiments can compare their
// feasibility as the paper does (§6.2 reports plain Apriori/FP-growth
// failing at PubMed scale while the hybrid remains feasible).
package mining

import (
	"sort"
)

// Item is an item identifier (a predicate-term index).
type Item = int32

// FrequentItemset is one mined itemset with its support (the number of
// transactions containing all its items).
type FrequentItemset struct {
	// Items is sorted ascending.
	Items []Item
	// Support is the number of supporting transactions (≥ the miner's
	// minimum support).
	Support int
}

// Key returns a canonical string key for the itemset, for dedup and maps.
func (f FrequentItemset) Key() string { return itemsKey(f.Items) }

func itemsKey(items []Item) string {
	b := make([]byte, 0, len(items)*4)
	for _, it := range items {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(b)
}

// Options configures a mining run.
type Options struct {
	// MinSupport is the minimum transaction count (T_C). Must be ≥ 1.
	MinSupport int
	// MaxLen bounds itemset size; 0 means unbounded. Algorithm 1 relies
	// on an upper bound so that any mined combination fits in one view.
	MaxLen int
}

func (o Options) maxLen() int {
	if o.MaxLen <= 0 {
		return int(^uint(0) >> 1)
	}
	return o.MaxLen
}

// sortResult puts itemsets in a canonical order: by length, then
// lexicographically by items.
func sortResult(sets []FrequentItemset) {
	sort.Slice(sets, func(a, b int) bool {
		x, y := sets[a].Items, sets[b].Items
		if len(x) != len(y) {
			return len(x) < len(y)
		}
		for i := range x {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return false
	})
}

// Maximal filters a frequent-itemset collection down to its maximal
// members: sets not strictly contained in another member. Algorithm 1's
// first heuristic ("remove keyword combinations that are subsets of other
// combinations") consumes exactly this.
func Maximal(sets []FrequentItemset) []FrequentItemset {
	// Sort by descending length so any superset precedes its subsets.
	sorted := append([]FrequentItemset(nil), sets...)
	sort.Slice(sorted, func(a, b int) bool { return len(sorted[a].Items) > len(sorted[b].Items) })
	var out []FrequentItemset
	for _, s := range sorted {
		contained := false
		for _, m := range out {
			if isSubset(s.Items, m.Items) {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, s)
		}
	}
	sortResult(out)
	return out
}

// isSubset reports whether sorted a ⊆ sorted b.
func isSubset(a, b []Item) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

// containsSorted reports whether sorted transaction tx contains item.
func containsSorted(tx []Item, item Item) bool {
	i := sort.Search(len(tx), func(i int) bool { return tx[i] >= item })
	return i < len(tx) && tx[i] == item
}

// supportOf counts transactions containing all items (itemset sorted).
// Used by tests as the brute-force oracle.
func supportOf(tx [][]Item, items []Item) int {
	n := 0
	for _, t := range tx {
		if isSubset(items, t) {
			n++
		}
	}
	return n
}
