package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"csrank/internal/query"
	"csrank/internal/ranking"
)

// waitForGoroutines polls until the goroutine count settles back to the
// pre-test baseline (a small tolerance covers runtime helpers), failing
// with a full stack dump if workers leaked.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: %d > base %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExpiredDeadlineDegradesFast: with the per-query deadline already
// expired, Search must return a flagged, empty, degraded result — not an
// error — and do so promptly even on a 20k-document corpus.
func TestExpiredDeadlineDegradesFast(t *testing.T) {
	ix := bigResultCollection(t, 20000)
	for _, p := range []int{1, 4} {
		e := New(ix, nil, Options{Parallelism: p, Deadline: time.Nanosecond})
		start := time.Now()
		res, st, err := e.SearchContextSensitive(query.MustParse("disease | ctx_a ctx_b"), 10)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("parallelism %d: expired deadline returned error %v, want degraded result", p, err)
		}
		if !st.Degraded || st.DegradedReason == "" {
			t.Fatalf("parallelism %d: Degraded = %v (%q), want flagged", p, st.Degraded, st.DegradedReason)
		}
		if len(res) != 0 {
			t.Fatalf("parallelism %d: got %d results before any evaluation, want 0", p, len(res))
		}
		if elapsed > 50*time.Millisecond {
			t.Fatalf("parallelism %d: expired deadline took %s, want < 50ms", p, elapsed)
		}
	}
}

// TestPreCancelledContextFails: an explicitly cancelled ctx (as opposed
// to an expired deadline) is a hard abort and must surface as an error.
func TestPreCancelledContextFails(t *testing.T) {
	ix := bigResultCollection(t, 2000)
	e := New(ix, nil, Options{Parallelism: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := e.SearchCtx(ctx, query.MustParse("disease | ctx_a"), 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res) != 0 {
		t.Fatalf("cancelled query returned %d results", len(res))
	}
}

// TestCancelMidSearchNoLeaks cancels deterministically from inside the
// statistics phase (via the keyword-stats test hook) at parallelism 1, 2
// and 4, and checks the query aborts with context.Canceled, returns
// promptly, and leaves no worker goroutines behind.
func TestCancelMidSearchNoLeaks(t *testing.T) {
	ix := bigResultCollection(t, 8000)
	base := runtime.NumGoroutine()
	q := query.MustParse("disease | ctx_a ctx_b")
	for _, p := range []int{1, 2, 4} {
		e := New(ix, nil, Options{Parallelism: p})
		ctx, cancel := context.WithCancel(context.Background())
		testHookKeywordStats = func(int) { cancel() }
		start := time.Now()
		res, _, err := e.SearchStraightforwardCtx(ctx, q, 10)
		elapsed := time.Since(start)
		testHookKeywordStats = nil
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", p, err)
		}
		if len(res) != 0 {
			t.Fatalf("parallelism %d: cancelled query returned %d results", p, len(res))
		}
		if elapsed > time.Second {
			t.Fatalf("parallelism %d: cancellation took %s, not prompt", p, elapsed)
		}
		// The engine keeps serving after a cancelled query.
		if _, _, err := e.SearchStraightforward(q, 10); err != nil {
			t.Fatalf("parallelism %d: query after cancellation failed: %v", p, err)
		}
	}
	waitForGoroutines(t, base)
}

// TestGenerousDeadlineKeepsRankingsBitIdentical: a deadline that never
// fires must not perturb rankings at any parallelism — the zero-overhead
// guarantee of the nil-canceler design only covers the no-deadline case,
// so the with-deadline path is checked against it explicitly.
func TestGenerousDeadlineKeepsRankingsBitIdentical(t *testing.T) {
	ix := bigResultCollection(t, 4000)
	ref := New(ix, nil, Options{Parallelism: 1})
	q := query.MustParse("disease organ | ctx_a")
	want, _, err := ref.SearchContextSensitive(q, 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4} {
		e := New(ix, nil, Options{Parallelism: p, Deadline: time.Hour})
		got, st, err := e.SearchContextSensitive(q, 25)
		if err != nil {
			t.Fatal(err)
		}
		if st.Degraded {
			t.Fatalf("parallelism %d: generous deadline degraded: %s", p, st.DegradedReason)
		}
		assertBitIdentical(t, "deadline parallelism", want, got)
	}
}

// TestStatsBudgetFallsBackToApproximate: an instantly expired statistics
// budget must not fail the query — it degrades to approximate statistics
// (whole-collection, with no view to answer from) and full results. The
// whole-query deadline is untouched, so the result set and scoring are
// complete: the ranking must match the conventional baseline, which uses
// exactly those whole-collection statistics.
func TestStatsBudgetFallsBackToApproximate(t *testing.T) {
	ix := bigResultCollection(t, 4000)
	q := query.MustParse("disease | ctx_a ctx_b")
	conv, _, err := New(ix, nil, Options{Parallelism: 1}).SearchConventional(q, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 4} {
		e := New(ix, nil, Options{Parallelism: p, StatsBudget: time.Nanosecond})
		res, st, err := e.SearchContextSensitive(q, 20)
		if err != nil {
			t.Fatalf("parallelism %d: stats-budget expiry returned error %v", p, err)
		}
		if !st.Degraded || !strings.Contains(st.DegradedReason, "stats budget") {
			t.Fatalf("parallelism %d: Degraded = %v (%q), want stats-budget flag", p, st.Degraded, st.DegradedReason)
		}
		if len(res) == 0 {
			t.Fatalf("parallelism %d: degraded query returned no results", p)
		}
		assertBitIdentical(t, "approx-stats ranking vs conventional", conv, res)
	}
}

// panicScorer wraps a real scorer and panics while armed — the injected
// worker crash of the panic-isolation tests.
type panicScorer struct {
	inner ranking.Scorer
	armed atomic.Bool
}

func (p *panicScorer) Name() string { return "panic-" + p.inner.Name() }

func (p *panicScorer) Score(qs ranking.QueryStats, ds ranking.DocStats, cs ranking.CollectionStats) float64 {
	if p.armed.Load() {
		panic("injected scorer panic")
	}
	return p.inner.Score(qs, ds, cs)
}

// TestScoringWorkerPanicIsolated: a panic inside a scoring worker fails
// only that query (with the panic message and no process crash), leaves
// no goroutines behind, and the same engine serves subsequent queries
// with correct results.
func TestScoringWorkerPanicIsolated(t *testing.T) {
	ix := bigResultCollection(t, 4000)
	q := query.MustParse("disease | ctx_a")
	ref := New(ix, nil, Options{Parallelism: 1})
	want, _, err := ref.SearchContextSensitive(q, 15)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	for _, p := range []int{1, 4} {
		sc := &panicScorer{inner: ranking.NewPivotedTFIDF()}
		e := New(ix, nil, Options{Parallelism: p, Scorer: sc})
		sc.armed.Store(true)
		_, _, err := e.SearchContextSensitive(q, 15)
		if err == nil || !strings.Contains(err.Error(), "panic") {
			t.Fatalf("parallelism %d: err = %v, want panic-derived error", p, err)
		}
		sc.armed.Store(false)
		got, _, err := e.SearchContextSensitive(q, 15)
		if err != nil {
			t.Fatalf("parallelism %d: query after panic failed: %v", p, err)
		}
		// Scores differ bit-for-bit from the indexed fast path only if the
		// wrapper changed ranking; it must not — panicScorer delegates to
		// the same pivoted TF-IDF formula via the map path.
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: result count after panic: %d vs %d", p, len(got), len(want))
		}
		for i := range got {
			if got[i].DocID != want[i].DocID {
				t.Fatalf("parallelism %d: rank %d DocID %d vs %d", p, i, got[i].DocID, want[i].DocID)
			}
		}
	}
	waitForGoroutines(t, base)
}

// TestStatsWorkerPanicIsolated: a panic inside a keyword-statistics
// worker is recovered, reported as that query's error, and the engine
// keeps serving.
func TestStatsWorkerPanicIsolated(t *testing.T) {
	ix := bigResultCollection(t, 4000)
	q := query.MustParse("disease organ | ctx_a ctx_b")
	base := runtime.NumGoroutine()
	for _, p := range []int{1, 4} {
		e := New(ix, nil, Options{Parallelism: p})
		testHookKeywordStats = func(int) { panic("injected stats panic") }
		_, _, err := e.SearchStraightforward(q, 10)
		testHookKeywordStats = nil
		if err == nil || !strings.Contains(err.Error(), "panic") {
			t.Fatalf("parallelism %d: err = %v, want panic-derived error", p, err)
		}
		if _, _, err := e.SearchStraightforward(q, 10); err != nil {
			t.Fatalf("parallelism %d: query after panic failed: %v", p, err)
		}
	}
	waitForGoroutines(t, base)
}
