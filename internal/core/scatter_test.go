package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"csrank/internal/query"
	"csrank/internal/ranking"
	"csrank/internal/views"
	"csrank/internal/widetable"
)

// TestStatsForPlusSearchWithStatsEqualsSearch: on one engine, running
// the two scatter-gather halves back to back must reproduce SearchCtx
// bit-for-bit — same docIDs, same score bits, same order — for
// contextual and context-free queries, with and without views, pruning
// on and off.
func TestStatsForPlusSearchWithStatsEqualsSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ix, meshTerms, words := randomCollection(t, rng, 500, 8, 8)
	tbl := widetable.FromIndex(ix, words)
	v, err := views.Materialize(tbl, meshTerms[:3], words)
	if err != nil {
		t.Fatal(err)
	}
	cat := views.NewCatalog([]*views.View{v}, 1, 1<<20)

	queries := []query.Query{
		{Keywords: []string{words[0], words[1]}},
		{Keywords: []string{words[2]}, Context: meshTerms[:2]},
		{Keywords: []string{words[0], words[3]}, Context: meshTerms[1:3]},
	}
	for _, pruning := range []bool{false, true} {
		for _, withCat := range []bool{false, true} {
			c := cat
			if !withCat {
				c = nil
			}
			eng := New(ix, c, Options{Pruning: pruning})
			for _, q := range queries {
				for _, k := range []int{0, 5, 50} {
					want, wantSt, err := eng.SearchCtx(context.Background(), q, k)
					if err != nil {
						t.Fatal(err)
					}
					cs, statsSt, err := eng.StatsFor(context.Background(), q)
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := eng.SearchWithStats(context.Background(), q, k, cs)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("pruning=%v cat=%v q=%v k=%d: %d results, want %d",
							pruning, withCat, q, k, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("pruning=%v cat=%v q=%v k=%d rank %d: %+v, want %+v",
								pruning, withCat, q, k, i, got[i], want[i])
						}
					}
					if q.IsContextual() && statsSt.ContextSize != wantSt.ContextSize {
						t.Fatalf("q=%v: ContextSize %d, want %d", q, statsSt.ContextSize, wantSt.ContextSize)
					}
					if statsSt.Plan != wantSt.Plan {
						t.Fatalf("q=%v: plan %q, want %q", q, statsSt.Plan, wantSt.Plan)
					}
				}
			}
		}
	}
}

// TestMergeResultsRankSafe: partition random result multisets, truncate
// each partition to its top k, merge, and compare against the top k of
// the full multiset — the distributed-merge safety argument, exercised
// over score ties that force the docID tie-break.
func TestMergeResultsRankSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		parts := 1 + rng.Intn(8)
		k := rng.Intn(20)
		if trial%5 == 0 {
			k = 0 // keep everything
		}
		var all []Result
		lists := make([][]Result, parts)
		for d := 0; d < n; d++ {
			// Coarse scores so ties are common.
			r := Result{DocID: uint32(d), Score: float64(rng.Intn(6))}
			all = append(all, r)
			p := rng.Intn(parts)
			lists[p] = append(lists[p], r)
		}
		for p := range lists {
			lists[p] = MergeResults(k, lists[p]) // sort + per-partition truncate
		}
		got := MergeResults(k, lists...)
		want := MergeResults(k, all)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d merged results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d rank %d: %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestMergeCollectionStats: partial statistics over disjoint subsets
// sum to the union's statistics exactly.
func TestMergeCollectionStats(t *testing.T) {
	a := ranking.CollectionStats{N: 10, TotalLen: 100,
		DF: map[string]int64{"x": 3, "y": 1}, TC: map[string]int64{"x": 7, "y": 2}}
	b := ranking.CollectionStats{N: 4, TotalLen: 31,
		DF: map[string]int64{"x": 2, "z": 4}, TC: map[string]int64{"x": 5, "z": 9}}
	m := MergeCollectionStats(a, b)
	if m.N != 14 || m.TotalLen != 131 {
		t.Fatalf("N=%d TotalLen=%d, want 14/131", m.N, m.TotalLen)
	}
	if m.DF["x"] != 5 || m.DF["y"] != 1 || m.DF["z"] != 4 {
		t.Fatalf("DF merge wrong: %v", m.DF)
	}
	if m.TC["x"] != 12 || m.TC["y"] != 2 || m.TC["z"] != 9 {
		t.Fatalf("TC merge wrong: %v", m.TC)
	}
}

// TestMergeStats: counters sum, flags stick, duplicate degradation
// reasons collapse, wall-clock fields take the fan-out maximum, and
// scoring-phase parts (empty Plan) do not vote on the merged plan.
func TestMergeStats(t *testing.T) {
	s1 := ExecStats{Plan: PlanView, UsedView: true, ViewSize: 8, ResultSize: 10,
		ContextSize: 40, CacheHit: true, Elapsed: 5 * time.Millisecond}
	s1.Pruning.Active = true
	s1.Pruning.DocsSkipped = 3
	s2 := ExecStats{Plan: PlanStraightforward, ResultSize: 7, ContextSize: 22,
		Elapsed: 9 * time.Millisecond}
	s2.degrade("deadline exceeded during scoring: partial top-k")
	s3 := ExecStats{ResultSize: 1} // scoring phase: no plan vote
	s3.degrade("deadline exceeded during scoring: partial top-k")

	m := MergeStats(s1, s2, s3)
	if m.Plan != PlanMixed {
		t.Fatalf("plan %q, want %q", m.Plan, PlanMixed)
	}
	if !m.UsedView || m.ViewSize != 8 || !m.CacheHit {
		t.Fatalf("view/cache aggregation wrong: %+v", m)
	}
	if m.ResultSize != 18 || m.ContextSize != 62 {
		t.Fatalf("cardinality sums wrong: ResultSize=%d ContextSize=%d", m.ResultSize, m.ContextSize)
	}
	if !m.Degraded || m.DegradedReason != "deadline exceeded during scoring: partial top-k" {
		t.Fatalf("degradation merge wrong: %q", m.DegradedReason)
	}
	if m.Elapsed != 9*time.Millisecond {
		t.Fatalf("Elapsed %v, want max 9ms", m.Elapsed)
	}
	if !m.Pruning.Active || m.Pruning.DocsSkipped != 3 {
		t.Fatalf("pruning merge wrong: %+v", m.Pruning)
	}
	single := MergeStats(s1)
	if single.Plan != PlanView {
		t.Fatalf("single-part plan %q, want %q", single.Plan, PlanView)
	}
}

// TestMergeStatsDegradedReasonUnion: the merged DegradedReason must be
// the deduplicated, sorted union of every part's reason atoms —
// deterministic regardless of which shard reports first, with no reason
// lost when shards degrade differently and no flag raised by healthy
// parts alone.
func TestMergeStatsDegradedReasonUnion(t *testing.T) {
	degraded := func(reasons ...string) ExecStats {
		var s ExecStats
		for _, r := range reasons {
			s.degrade(r)
		}
		return s
	}
	cases := []struct {
		name       string
		parts      []ExecStats
		degradedOK bool
		reason     string
	}{
		{"all healthy", []ExecStats{{}, {}, {}}, false, ""},
		{"one degraded among healthy",
			[]ExecStats{{}, degraded("timeout"), {}}, true, "timeout"},
		{"identical reasons collapse",
			[]ExecStats{degraded("timeout"), degraded("timeout")}, true, "timeout"},
		{"distinct reasons sort",
			[]ExecStats{degraded("timeout"), degraded("approx stats")},
			true, "approx stats; timeout"},
		{"compound lists split into atoms",
			[]ExecStats{degraded("b", "a"), degraded("a", "c")},
			true, "a; b; c"},
		{"order of parts irrelevant",
			[]ExecStats{degraded("c"), {}, degraded("a", "b")},
			true, "a; b; c"},
		{"empty-reason degraded part keeps the flag",
			[]ExecStats{{Degraded: true}, {}}, true, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := MergeStats(tc.parts...)
			if m.Degraded != tc.degradedOK {
				t.Fatalf("Degraded=%v, want %v", m.Degraded, tc.degradedOK)
			}
			if m.DegradedReason != tc.reason {
				t.Fatalf("DegradedReason %q, want %q", m.DegradedReason, tc.reason)
			}
			// Reversing the parts must give the identical merge.
			rev := make([]ExecStats, len(tc.parts))
			for i, p := range tc.parts {
				rev[len(tc.parts)-1-i] = p
			}
			if r := MergeStats(rev...); r.DegradedReason != m.DegradedReason || r.Degraded != m.Degraded {
				t.Fatalf("merge not order-independent: %q vs %q", r.DegradedReason, m.DegradedReason)
			}
		})
	}
}
