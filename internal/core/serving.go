package core

import "sync/atomic"

// Serving is the indirection between request handlers and the engine
// that answers them. Recovery and snapshot rollover build a complete
// replacement state off to the side (index loaded, catalog recovered,
// WAL replayed) and then publish it with one atomic swap; requests
// dereference the pointer once and run entirely against that state, so
// a query never observes half of an old engine and half of a new one.
// The generation tag travels with the engine so operators can correlate
// served results with the snapshot generation that produced them.
type Serving struct {
	state atomic.Pointer[servingState]
}

type servingState struct {
	eng *Engine
	gen uint64
}

// NewServing starts serving eng at the given generation.
func NewServing(eng *Engine, gen uint64) *Serving {
	s := &Serving{}
	s.state.Store(&servingState{eng: eng, gen: gen})
	return s
}

// Engine returns the currently served engine. Callers should hold the
// returned pointer for the duration of one request and re-fetch for the
// next, picking up swaps at request granularity.
func (s *Serving) Engine() *Engine { return s.state.Load().eng }

// Generation returns the generation tag of the served engine.
func (s *Serving) Generation() uint64 { return s.state.Load().gen }

// Snapshot returns the engine and its generation as one consistent
// pair (two separate calls could straddle a swap).
func (s *Serving) Snapshot() (*Engine, uint64) {
	st := s.state.Load()
	return st.eng, st.gen
}

// Swap publishes a new engine and generation, returning the previous
// pair. In-flight requests finish on the engine they already hold.
func (s *Serving) Swap(eng *Engine, gen uint64) (*Engine, uint64) {
	old := s.state.Swap(&servingState{eng: eng, gen: gen})
	return old.eng, old.gen
}
