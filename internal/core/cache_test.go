package core

import (
	"fmt"
	"math"
	"testing"

	"csrank/internal/postings"
	"csrank/internal/query"
	"csrank/internal/views"
	"csrank/internal/widetable"
)

func TestStatsCacheHitAndEquality(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	plain := New(ix, nil, Options{})
	cachedEng := New(ix, nil, Options{CacheContexts: 16})
	q := query.MustParse("pancreas leukemia | digestive_system")

	want, _, err := plain.SearchContextSensitive(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	first, st1, err := cachedEng.SearchContextSensitive(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHit {
		t.Error("first query reported a cache hit")
	}
	second, st2, err := cachedEng.SearchContextSensitive(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Error("second query missed the cache")
	}
	for i := range want {
		if first[i] != want[i] || second[i].DocID != want[i].DocID ||
			math.Abs(second[i].Score-want[i].Score) > 1e-12 {
			t.Fatalf("rank %d differs across cache states", i)
		}
	}
}

func TestStatsCacheExtendsWithNewKeywords(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	e := New(ix, nil, Options{CacheContexts: 16})
	if _, _, err := e.SearchContextSensitive(query.MustParse("pancreas | digestive_system"), 5); err != nil {
		t.Fatal(err)
	}
	// Same context, new keyword: still a hit, keyword back-filled.
	res, st, err := e.SearchContextSensitive(query.MustParse("leukemia | digestive_system"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit {
		t.Error("same-context query missed")
	}
	plain := New(ix, nil, Options{})
	want, _, err := plain.SearchContextSensitive(query.MustParse("leukemia | digestive_system"), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res[i].DocID != want[i].DocID || math.Abs(res[i].Score-want[i].Score) > 1e-12 {
			t.Fatalf("rank %d differs after back-fill", i)
		}
	}
}

// singleShardCache builds a cache with exactly one shard so FIFO order
// is observable regardless of GOMAXPROCS.
func singleShardCache(max int) *statsCache {
	c := &statsCache{shards: make([]cacheShard, 1)}
	c.shards[0] = cacheShard{
		max:     max,
		entries: make(map[string]*cacheEntry, max),
		ring:    make([]string, max),
	}
	return c
}

func TestStatsCacheEviction(t *testing.T) {
	c := singleShardCache(2)
	c.store([]string{"a"}, 1, 10, nil, nil)
	c.store([]string{"b"}, 2, 20, nil, nil)
	c.store([]string{"c"}, 3, 30, nil, nil)
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, _, _, ok := c.lookup([]string{"a"}, nil, nil); ok {
		t.Error("oldest entry not evicted")
	}
	if n, _, _, ok := c.lookup([]string{"c"}, nil, nil); !ok || n != 3 {
		t.Error("newest entry missing")
	}
	// The ring wraps: keep inserting well past capacity and verify the
	// bound holds and the freshest entry always survives.
	for i := 0; i < 20; i++ {
		key := []string{string(rune('d' + i))}
		c.store(key, int64(i), 1, nil, nil)
		if c.len() > 2 {
			t.Fatalf("cache grew past max: %d", c.len())
		}
		if _, _, _, ok := c.lookup(key, nil, nil); !ok {
			t.Fatalf("entry %d missing right after store", i)
		}
	}
}

// TestStatsCacheShardedBound checks the sharded cache's global capacity:
// however keys hash, the population stays within the configured maximum
// (rounded up by at most one entry per shard) and fresh stores hit.
func TestStatsCacheShardedBound(t *testing.T) {
	const max = 8
	c := newStatsCache(max)
	for i := 0; i < 100; i++ {
		key := []string{fmt.Sprintf("ctx%d", i)}
		c.store(key, int64(i), 1, nil, nil)
		if _, _, _, ok := c.lookup(key, nil, nil); !ok {
			t.Fatalf("entry %d missing right after store", i)
		}
	}
	if c.len() > max+len(c.shards) {
		t.Fatalf("len = %d exceeds global bound for max %d over %d shards",
			c.len(), max, len(c.shards))
	}
}

// TestStatsCacheSelectiveLookup checks that lookup copies out only the
// requested keywords, not the whole accumulated word map.
func TestStatsCacheSelectiveLookup(t *testing.T) {
	c := newStatsCache(4)
	ctx := []string{"m"}
	c.store(ctx, 5, 50, map[string]dfTC{
		"w1": {1, 10}, "w2": {2, 20}, "w3": {3, 30},
	}, nil)
	_, _, words, ok := c.lookup(ctx, []string{"w2", "absent"}, nil)
	if !ok {
		t.Fatal("miss")
	}
	if len(words) != 1 || words["w2"] != (dfTC{2, 20}) {
		t.Fatalf("words = %v, want only w2", words)
	}
}

// TestStatsCacheCatalogTagging covers the SwapCatalog race: a query in
// flight across a swap can complete its store after the swap's purge,
// and that entry — computed against the old catalog — must never serve
// queries running on the new one.
func TestStatsCacheCatalogTagging(t *testing.T) {
	oldCat := views.NewCatalog(nil, 1, 1)
	newCat := views.NewCatalog(nil, 1, 1)
	c := newStatsCache(4)
	ctx := []string{"m"}

	c.store(ctx, 5, 50, map[string]dfTC{"w1": {1, 10}}, oldCat)
	if n, _, _, ok := c.lookup(ctx, []string{"w1"}, oldCat); !ok || n != 5 {
		t.Fatal("same-catalog lookup missed")
	}

	// The swap purges, then the in-flight query's store lands late.
	c.purge()
	c.store(ctx, 5, 50, map[string]dfTC{"w1": {1, 10}}, oldCat)
	if _, _, _, ok := c.lookup(ctx, []string{"w1"}, newCat); ok {
		t.Fatal("stale old-catalog entry served across the swap")
	}

	// A store for the new catalog resets the entry in place — no
	// old-catalog keyword may survive the reset.
	c.store(ctx, 7, 70, map[string]dfTC{"w2": {2, 20}}, newCat)
	n, totalLen, words, ok := c.lookup(ctx, []string{"w1", "w2"}, newCat)
	if !ok || n != 7 || totalLen != 70 {
		t.Fatalf("new-catalog entry: n=%d len=%d ok=%v", n, totalLen, ok)
	}
	if _, stale := words["w1"]; stale {
		t.Fatal("old-catalog keyword survived the reset")
	}
	if words["w2"] != (dfTC{2, 20}) {
		t.Fatalf("words = %v", words)
	}
	if _, _, _, ok := c.lookup(ctx, nil, oldCat); ok {
		t.Fatal("reset entry still serves the old catalog")
	}
}

func TestStatsCacheDisabled(t *testing.T) {
	if newStatsCache(0) != nil {
		t.Error("zero-size cache should be nil")
	}
	var c *statsCache
	// nil cache is a no-op everywhere.
	c.store([]string{"a"}, 1, 1, nil, nil)
	if _, _, _, ok := c.lookup([]string{"a"}, nil, nil); ok {
		t.Error("nil cache returned a hit")
	}
	if c.len() != 0 {
		t.Error("nil cache has length")
	}
}

func TestCostBasedPrefersStraightforwardForTinyContexts(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	tbl := widetable.FromIndex(ix, nil)
	// One view covering both predicate terms; "neoplasms ∧
	// digestive_system" is an (empty) tiny context, yet the view is
	// usable for it.
	v, err := views.Materialize(tbl, []string{"digestive_system", "neoplasms"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cat := views.NewCatalog([]*views.View{v}, 100, 4096)

	always := New(ix, cat, Options{})
	costed := New(ix, cat, Options{CostBased: true})

	// Large context: both engines should use the view (its size, ≤ 4
	// groups, undercuts Σ|L_m| ≈ 302 × (n+1)).
	big := query.MustParse("pancreas leukemia | digestive_system")
	_, stAlways, err := always.SearchContextSensitive(big, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, stCosted, err := costed.SearchContextSensitive(big, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !stAlways.UsedView || !stCosted.UsedView {
		t.Errorf("large context: views not used (always=%v, costed=%v)",
			stAlways.UsedView, stCosted.UsedView)
	}
}

func TestCostBasedSkipsViewWhenScanDominates(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	tbl := widetable.FromIndex(ix, nil)
	// Inflate the view with many irrelevant keyword columns so its group
	// count dwarfs the straightforward bound for a rare context term.
	terms := ix.Terms("mesh")
	v, err := views.Materialize(tbl, terms, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Give the collection a rare predicate by picking the context with
	// the smallest list: here both terms are frequent, so synthesize the
	// comparison directly through viewWorthwhile.
	e := New(ix, views.NewCatalog([]*views.View{v}, 100, 4096), Options{CostBased: true})
	a := analyzed{kwTerms: []string{"w"}, context: []string{"digestive_system"}}
	ctx := []*postings.List{ix.Postings("mesh", "digestive_system")}
	// straight bound = 302 × 2 = 604; decision tracks the view size.
	if v.Size() < 604 && !e.viewWorthwhile(v, a, ctx) {
		t.Error("cheap view rejected")
	}
	if v.Size() >= 604 && e.viewWorthwhile(v, a, ctx) {
		t.Error("expensive view accepted")
	}
	// Nil context lists (unknown term): bound 0, view never worthwhile.
	if e.viewWorthwhile(v, a, []*postings.List{nil}) {
		t.Error("view accepted against empty context bound")
	}
}
