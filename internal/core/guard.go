package core

import (
	"fmt"
	"runtime/debug"
)

// Panic isolation. A panic anywhere in the query path — a scoring worker,
// the statistics fan-out, the overlapped result-set goroutine, or the
// sequential path itself — must fail only the query that triggered it,
// never the process and never a sibling query. Worker goroutines recover
// at their boundary and report through their error slot; the public
// Search*Ctx entry points carry a final recover so even sequential
// execution converts a panic into an error.

// panicError converts a recovered panic value into a query error carrying
// the captured stack, so the crash site is diagnosable from the error
// alone.
func panicError(what string, r interface{}) error {
	return fmt.Errorf("core: panic in %s: %v\n%s", what, r, debug.Stack())
}

// recoverToError is the deferred form of panicError for functions with a
// named error result: `defer recoverToError(&err, "scoring worker")`.
func recoverToError(err *error, what string) {
	if r := recover(); r != nil {
		*err = panicError(what, r)
	}
}
