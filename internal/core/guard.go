package core

import (
	"fmt"
	"runtime/debug"
)

// Panic isolation. A panic anywhere in the query path — a scoring worker,
// the statistics fan-out, the overlapped result-set goroutine, or the
// sequential path itself — must fail only the query that triggered it,
// never the process and never a sibling query. Worker goroutines recover
// at their boundary and report through their error slot; the public
// Search*Ctx entry points carry a final recover so even sequential
// execution converts a panic into an error.

// PanicError is a recovered query-path panic converted into an error:
// the crash site, the panic value, and the captured stack. When the
// panic value is itself an error (e.g. a *postings.BlockCorruptError
// escaping a strict decode), Unwrap exposes it so errors.As can classify
// the failure through the recovery boundary — the shard layer uses this
// to attribute a shard loss to corruption rather than a generic panic.
type PanicError struct {
	// What names the execution site that panicked.
	What string
	// Value is the recovered panic value.
	Value interface{}
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: panic in %s: %v\n%s", e.What, e.Value, e.Stack)
}

// Unwrap returns the panic value when it was an error, nil otherwise.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// panicError converts a recovered panic value into a query error carrying
// the captured stack, so the crash site is diagnosable from the error
// alone.
func panicError(what string, r interface{}) error {
	return &PanicError{What: what, Value: r, Stack: debug.Stack()}
}

// recoverToError is the deferred form of panicError for functions with a
// named error result: `defer recoverToError(&err, "scoring worker")`.
func recoverToError(err *error, what string) {
	if r := recover(); r != nil {
		*err = panicError(what, r)
	}
}
