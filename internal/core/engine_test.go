package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"csrank/internal/corpus"
	"csrank/internal/index"
	"csrank/internal/query"
	"csrank/internal/ranking"
	"csrank/internal/selection"
	"csrank/internal/views"
	"csrank/internal/widetable"
)

// motivatingCollection builds a handcrafted collection reproducing the
// §1.1 example: "leukemia" is globally common (neoplasms research
// dominates) but rare within the digestive-system context, where
// "pancreas" is ubiquitous. C1 emphasizes pancreas, C2 emphasizes
// leukemia; both are digestive-system citations containing both query
// terms.
func motivatingCollection(t *testing.T) (*index.Index, uint32, uint32) {
	t.Helper()
	var docs []index.Document
	add := func(content, mesh string) uint32 {
		docs = append(docs, index.Document{Fields: map[string]string{
			"title": content, "content": content, "mesh": mesh,
		}})
		return uint32(len(docs) - 1)
	}
	c1 := add("pancreas pancreas pancreas transplant complications leukemia", "digestive_system")
	c2 := add("leukemia leukemia leukemia organ failure pancreas", "digestive_system")
	for i := 0; i < 600; i++ {
		add(fmt.Sprintf("leukemia lymphoma tumor study cohort v%d", i), "neoplasms")
	}
	for i := 0; i < 300; i++ {
		mesh := "digestive_system"
		content := fmt.Sprintf("pancreas liver gastric surgery outcome v%d", i)
		if i < 5 {
			// A few digestive citations also mention leukemia so the
			// conjunctive result set is non-trivial.
			content += " leukemia"
		}
		add(content, mesh)
	}
	ix, err := index.BuildFrom(corpus.Schema(), 0, docs)
	if err != nil {
		t.Fatal(err)
	}
	return ix, c1, c2
}

func TestMotivatingExampleRankReversal(t *testing.T) {
	ix, c1, c2 := motivatingCollection(t)
	e := New(ix, nil, Options{})
	q := query.MustParse("pancreas leukemia | digestive_system")

	conv, convSt, err := e.SearchConventional(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, ctxSt, err := e.SearchContextSensitive(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if convSt.Plan != PlanConventional || ctxSt.Plan != PlanStraightforward {
		t.Errorf("plans = %s, %s", convSt.Plan, ctxSt.Plan)
	}
	// Identical unranked result sets (query semantics).
	if convSt.ResultSize != ctxSt.ResultSize || convSt.ResultSize != 7 {
		t.Errorf("result sizes = %d, %d (want 7)", convSt.ResultSize, ctxSt.ResultSize)
	}
	pos := func(rs []Result, d uint32) int {
		for i, r := range rs {
			if r.DocID == d {
				return i
			}
		}
		return -1
	}
	// Conventional: pancreas is globally rarer → C1 above C2.
	if pos(conv, c1) >= pos(conv, c2) || pos(conv, c1) < 0 {
		t.Errorf("conventional order: C1 at %d, C2 at %d", pos(conv, c1), pos(conv, c2))
	}
	// Context-sensitive: leukemia is rare among digestive docs → C2 above C1.
	if pos(ctx, c2) >= pos(ctx, c1) || pos(ctx, c2) < 0 {
		t.Errorf("context order: C1 at %d, C2 at %d", pos(ctx, c1), pos(ctx, c2))
	}
	if ctxSt.ContextSize != 302 {
		t.Errorf("ContextSize = %d, want 302", ctxSt.ContextSize)
	}
}

func TestViewAndStraightforwardAgree(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	tbl := widetable.FromIndex(ix, []string{"pancreas", "leukemia"})
	v, err := views.Materialize(tbl, []string{"digestive_system", "neoplasms"}, []string{"pancreas", "leukemia"})
	if err != nil {
		t.Fatal(err)
	}
	cat := views.NewCatalog([]*views.View{v}, 100, 4096)
	e := New(ix, cat, Options{})
	q := query.MustParse("pancreas leukemia | digestive_system")

	viaView, viewSt, err := e.SearchContextSensitive(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	direct, directSt, err := e.SearchStraightforward(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !viewSt.UsedView || viewSt.Plan != PlanView {
		t.Fatalf("view not used: %+v", viewSt)
	}
	if directSt.UsedView {
		t.Fatal("straightforward used a view")
	}
	if len(viaView) != len(direct) {
		t.Fatalf("result counts differ: %d vs %d", len(viaView), len(direct))
	}
	for i := range viaView {
		if viaView[i].DocID != direct[i].DocID || math.Abs(viaView[i].Score-direct[i].Score) > 1e-12 {
			t.Fatalf("rank %d differs: %+v vs %+v", i, viaView[i], direct[i])
		}
	}
	if viewSt.ViewSize == 0 || viewSt.ViewGroupsScanned == 0 {
		t.Errorf("view stats not recorded: %+v", viewSt)
	}
	if viewSt.FallbackKeywords != 0 {
		t.Errorf("unexpected fallbacks: %d", viewSt.FallbackKeywords)
	}
}

func TestViewFallbackForUntrackedKeyword(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	tbl := widetable.FromIndex(ix, []string{"pancreas"}) // leukemia untracked
	v, err := views.Materialize(tbl, []string{"digestive_system"}, []string{"pancreas"})
	if err != nil {
		t.Fatal(err)
	}
	cat := views.NewCatalog([]*views.View{v}, 100, 4096)
	e := New(ix, cat, Options{})
	q := query.MustParse("pancreas leukemia | digestive_system")

	viaView, viewSt, err := e.SearchContextSensitive(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !viewSt.UsedView || viewSt.FallbackKeywords != 1 {
		t.Fatalf("stats = %+v, want view with 1 fallback", viewSt)
	}
	direct, _, err := e.SearchStraightforward(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range viaView {
		if viaView[i].DocID != direct[i].DocID || math.Abs(viaView[i].Score-direct[i].Score) > 1e-12 {
			t.Fatalf("rank %d differs with fallback: %+v vs %+v", i, viaView[i], direct[i])
		}
	}
}

func TestUncoveredContextFallsBack(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	tbl := widetable.FromIndex(ix, nil)
	v, err := views.Materialize(tbl, []string{"neoplasms"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cat := views.NewCatalog([]*views.View{v}, 100, 4096)
	e := New(ix, cat, Options{})
	_, st, err := e.SearchContextSensitive(query.MustParse("pancreas leukemia | digestive_system"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.UsedView || st.Plan != PlanStraightforward {
		t.Errorf("expected straightforward fallback, got %+v", st)
	}
}

func TestNonContextualQueryRoutesToConventional(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	e := New(ix, nil, Options{})
	_, st, err := e.Search(query.MustParse("leukemia"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Plan != PlanConventional {
		t.Errorf("plan = %s", st.Plan)
	}
	// Context-sensitive entry point with empty context also degrades.
	_, st2, err := e.SearchContextSensitive(query.Query{Keywords: []string{"leukemia"}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Plan != PlanConventional {
		t.Errorf("plan = %s", st2.Plan)
	}
}

func TestMissingTermsGiveEmptyResults(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	e := New(ix, nil, Options{})
	res, st, err := e.Search(query.MustParse("xyzzy | digestive_system"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 || st.ResultSize != 0 {
		t.Errorf("results = %v", res)
	}
	// Unknown context term: empty too.
	res, _, err = e.Search(query.MustParse("pancreas | no_such_context"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("results = %v", res)
	}
}

func TestQueryValidationErrors(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	e := New(ix, nil, Options{})
	if _, _, err := e.Search(query.Query{}, 5); err == nil {
		t.Error("empty query accepted")
	}
	// Keywords that analyze away entirely (stopwords).
	if _, _, err := e.Search(query.Query{Keywords: []string{"the", "of"}}, 5); err == nil {
		t.Error("stopword-only query accepted")
	}
}

func TestTopKMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		rs := make([]Result, n)
		for i := range rs {
			rs[i] = Result{DocID: uint32(i), Score: math.Floor(rng.Float64()*20) / 4}
		}
		k := 1 + rng.Intn(20)
		top := newTopK(k)
		all := newTopK(0)
		for _, r := range rs {
			top.push(r)
			all.push(r)
		}
		full := all.results()
		got := top.results()
		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("top-k returned %d, want %d", len(got), wantLen)
		}
		for i := range got {
			if got[i] != full[i] {
				t.Fatalf("trial %d rank %d: %+v != %+v", trial, i, got[i], full[i])
			}
		}
		// Full results are sorted desc by score, asc by DocID.
		if !sort.SliceIsSorted(full, func(i, j int) bool { return worseThan(full[j], full[i]) }) {
			t.Fatal("full results unsorted")
		}
	}
}

func TestContextSize(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	e := New(ix, nil, Options{})
	if got := e.ContextSize([]string{"digestive_system"}); got != 302 {
		t.Errorf("ContextSize = %d", got)
	}
	if got := e.ContextSize([]string{"digestive_system", "neoplasms"}); got != 0 {
		t.Errorf("disjoint ContextSize = %d", got)
	}
	if got := e.ContextSize(nil); got != int64(ix.NumDocs()) {
		t.Errorf("empty ContextSize = %d", got)
	}
}

func TestContextSizeUsesViews(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	tbl := widetable.FromIndex(ix, nil)
	v, _ := views.Materialize(tbl, []string{"digestive_system", "neoplasms"}, nil)
	cat := views.NewCatalog([]*views.View{v}, 100, 4096)
	e := New(ix, cat, Options{})
	if got := e.ContextSize([]string{"digestive_system"}); got != 302 {
		t.Errorf("view-based ContextSize = %d", got)
	}
}

func TestAccessors(t *testing.T) {
	// Pointer identity is exactly what the force-mapped seam breaks.
	t.Setenv("CSRANK_FORCE_MAPPED", "")
	ix, _, _ := motivatingCollection(t)
	e := New(ix, nil, Options{Scorer: ranking.NewBM25()})
	if e.Index() != ix || e.Catalog() != nil {
		t.Error("accessors wrong")
	}
	if e.Scorer().Name() != "bm25" {
		t.Error("scorer not honored")
	}
}

func TestAlternativeScorersAgreeAcrossPlans(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	tbl := widetable.FromIndex(ix, []string{"pancreas", "leukemia"})
	v, _ := views.Materialize(tbl, []string{"digestive_system"}, []string{"pancreas", "leukemia"})
	cat := views.NewCatalog([]*views.View{v}, 100, 4096)
	q := query.MustParse("pancreas leukemia | digestive_system")
	for _, s := range []ranking.Scorer{ranking.NewBM25(), ranking.NewDirichletLM()} {
		e := New(ix, cat, Options{Scorer: s})
		a, _, err := e.SearchContextSensitive(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := e.SearchStraightforward(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i].DocID != b[i].DocID || math.Abs(a[i].Score-b[i].Score) > 1e-9 {
				t.Fatalf("%s: plans disagree at rank %d", s.Name(), i)
			}
		}
	}
}

// TestEndToEndWithSelectedViews wires the full §4+§5 pipeline: generate a
// corpus, select views with the hybrid algorithm, and verify that queries
// over large contexts use views and agree with the straightforward plan.
func TestEndToEndWithSelectedViews(t *testing.T) {
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 4000
	cfg.OntologyTerms = 120
	cfg.NumTopics = 0
	c, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := c.BuildIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	selCfg := selection.Config{TC: int64(cfg.NumDocs) / 25, TV: 4096}
	m, err := selection.Select(ix, selCfg)
	if err != nil {
		t.Fatal(err)
	}
	e := New(ix, m.Catalog, Options{})

	// Pick a frequent predicate term and a frequent content word.
	terms := selection.FrequentPredicateTerms(ix, selCfg.TC)
	if len(terms) == 0 {
		t.Fatal("no frequent terms")
	}
	words := selection.TrackedContentWords(ix, 50)
	if len(words) == 0 {
		t.Fatal("no query words")
	}
	tested := 0
	for _, term := range terms[:min(8, len(terms))] {
		q := query.Query{Keywords: []string{words[0], words[min(3, len(words)-1)]}, Context: []string{term}}
		viaView, st, err := e.SearchContextSensitive(q, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !st.UsedView {
			t.Errorf("context %q (size %d ≥ T_C) did not use a view", term, e.ContextSize([]string{term}))
			continue
		}
		direct, _, err := e.SearchStraightforward(q, 20)
		if err != nil {
			t.Fatal(err)
		}
		if len(viaView) != len(direct) {
			t.Fatalf("context %q: result lengths differ", term)
		}
		for i := range viaView {
			if viaView[i].DocID != direct[i].DocID || math.Abs(viaView[i].Score-direct[i].Score) > 1e-9 {
				t.Fatalf("context %q rank %d: view %+v vs direct %+v", term, i, viaView[i], direct[i])
			}
		}
		tested++
	}
	if tested == 0 {
		t.Fatal("no contexts tested")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestNilStatsAndCostBounds(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	e := New(ix, nil, Options{})
	q := query.MustParse("pancreas leukemia | digestive_system")
	_, st, err := e.SearchStraightforward(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Proposition 3.1: list work bounded by total list lengths involved.
	var bound int64
	for _, w := range []string{"pancreas", "leukemia"} {
		bound += 3 * ix.DF("content", w) // each keyword list scanned ≤ 3 times (result set + its own stats + others' seeks)
	}
	bound += 4 * ix.DF("mesh", "digestive_system") // context list reused per stat
	if st.ListWork() > bound*2 {
		t.Errorf("list work %d far exceeds the Prop 3.1 bound scale %d", st.ListWork(), bound)
	}
	if st.AggregatedEntries == 0 {
		t.Error("no aggregation cost recorded for the straightforward plan")
	}
}

// TestConcurrentSearches exercises the engine from many goroutines; the
// engine documents itself as safe for concurrent use (run under -race in
// development).
func TestConcurrentSearches(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	tbl := widetable.FromIndex(ix, []string{"pancreas", "leukemia"})
	v, err := views.Materialize(tbl, []string{"digestive_system"}, []string{"pancreas", "leukemia"})
	if err != nil {
		t.Fatal(err)
	}
	e := New(ix, views.NewCatalog([]*views.View{v}, 100, 4096), Options{CacheContexts: 8})
	q := query.MustParse("pancreas leukemia | digestive_system")
	want, _, err := e.SearchContextSensitive(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, _, err := e.SearchContextSensitive(q, 5)
				if err != nil {
					errs <- err
					return
				}
				for j := range want {
					if got[j].DocID != want[j].DocID {
						errs <- fmt.Errorf("rank %d changed under concurrency", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
