package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestResultCacheLookupStoreTag(t *testing.T) {
	c := NewResultCache(1 << 20)
	if _, ok := c.Lookup("k", "g1"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Store("k", "g1", "v1", 100)
	v, ok := c.Lookup("k", "g1")
	if !ok || v.(string) != "v1" {
		t.Fatalf("lookup = %v, %v", v, ok)
	}
	// Same key, moved generation: must miss, drop the entry, count an
	// invalidation — and keep missing even on the old tag (the entry is
	// gone, not shadowed).
	if _, ok := c.Lookup("k", "g2"); ok {
		t.Fatal("stale-tagged entry served")
	}
	if _, ok := c.Lookup("k", "g1"); ok {
		t.Fatal("invalidated entry resurrected")
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Hits != 1 || st.Misses != 3 {
		t.Fatalf("stats %+v, want 1 invalidation, 1 hit, 3 misses", st)
	}
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("population %d entries / %d bytes after invalidation", st.Entries, st.Bytes)
	}
}

func TestResultCacheByteBudgetEviction(t *testing.T) {
	c := NewResultCache(8 * 100) // 100 bytes per shard
	for i := 0; i < 200; i++ {
		c.Store(fmt.Sprintf("k%d", i), "g", i, 40)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("over-budget stores never evicted")
	}
	if st.Bytes > st.Budget {
		t.Fatalf("resident %d bytes over budget %d", st.Bytes, st.Budget)
	}
	// Overwrite accounting: replacing a value adjusts bytes, not doubles.
	c2 := NewResultCache(1 << 20)
	c2.Store("k", "g", "a", 100)
	c2.Store("k", "g", "b", 60)
	if st := c2.Stats(); st.Bytes != 60 || st.Entries != 1 {
		t.Fatalf("after overwrite: %d bytes, %d entries", st.Bytes, st.Entries)
	}
}

// TestResultCacheClockSecondChance: an entry that has hit survives one
// eviction pressure wave that removes never-hit entries around it.
func TestResultCacheClockSecondChance(t *testing.T) {
	c := NewResultCache(8 * 100)
	// All keys land in known shards; use one shard's worth of pressure.
	c.Store("hot", "g", 1, 30)
	if _, ok := c.Lookup("hot", "g"); !ok {
		t.Fatal("miss on fresh entry")
	}
	s := c.shard("hot")
	// Pressure the same shard with cold entries until eviction runs.
	for i := 0; len(s.entries) > 0 && i < 500; i++ {
		k := fmt.Sprintf("cold%d", i)
		if c.shard(k) != s {
			continue
		}
		c.Store(k, "g", i, 30)
		if _, stillThere := s.entries["hot"]; !stillThere && c.Stats().Evictions < 2 {
			t.Fatal("hot entry evicted before never-hit cold entries")
		}
	}
}

func TestSingleFlightLeaderShares(t *testing.T) {
	c := NewResultCache(1 << 20)
	f, leader := c.Join("q")
	if !leader {
		t.Fatal("first join not leader")
	}
	if _, again := c.Join("q"); again {
		t.Fatal("second join also leader")
	}
	var wg sync.WaitGroup
	results := make([]any, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fl, lead := c.Join("q")
			if lead {
				t.Errorf("follower %d became leader", i)
				c.Finish("q", fl, nil, false)
				return
			}
			v, ok, err := fl.Wait(context.Background())
			if err != nil || !ok {
				t.Errorf("follower %d: ok=%v err=%v", i, ok, err)
			}
			results[i] = v
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	c.Finish("q", f, "answer", true)
	wg.Wait()
	for i, v := range results {
		if v != "answer" {
			t.Fatalf("follower %d got %v", i, v)
		}
	}
	// The flight is retired: the next join leads again.
	if _, lead := c.Join("q"); !lead {
		t.Fatal("flight not retired after Finish")
	}
}

func TestSingleFlightLeaderFailureNotShared(t *testing.T) {
	c := NewResultCache(1 << 20)
	f, _ := c.Join("q")
	done := make(chan bool)
	go func() {
		fl, _ := c.Join("q")
		_, ok, err := fl.Wait(context.Background())
		done <- ok || err != nil
	}()
	time.Sleep(5 * time.Millisecond)
	c.Finish("q", f, nil, false) // leader failed / result not cacheable
	if shared := <-done; shared {
		t.Fatal("follower treated a failed leader's outcome as shareable")
	}
}

func TestSingleFlightFollowerOwnDeadline(t *testing.T) {
	c := NewResultCache(1 << 20)
	c.Join("q") // leader never finishes
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	fl, lead := c.Join("q")
	if lead {
		t.Fatal("unexpected leadership")
	}
	start := time.Now()
	_, _, err := fl.Wait(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("follower waited far past its own deadline")
	}
}

func TestResultCacheConcurrent(t *testing.T) {
	c := NewResultCache(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", i%64)
				tag := fmt.Sprintf("g%d", i%3)
				if v, ok := c.Lookup(k, tag); ok && v == nil {
					t.Error("hit with nil value")
				}
				c.Store(k, tag, i, 64)
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > st.Budget {
		t.Fatalf("resident %d over budget %d", st.Bytes, st.Budget)
	}
}

func TestResultCacheNil(t *testing.T) {
	var c *ResultCache
	if _, ok := c.Lookup("k", "g"); ok {
		t.Fatal("nil cache hit")
	}
	c.Store("k", "g", 1, 1)
	c.Purge()
	c.NoteCoalesced()
	if st := c.Stats(); st != (ResultCacheStats{}) {
		t.Fatalf("nil stats %+v", st)
	}
	if NewResultCache(0) != nil {
		t.Fatal("zero budget must disable the cache")
	}
}
