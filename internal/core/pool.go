package core

import "sync"

// scoreScratch is a scoring worker's per-range scratch: the term-
// frequency buffer handed to the scorer through ranking.DocStats (tf
// for the indexed slice path, tfm for the map path). Pooled because
// every query allocates one per scoring partition; nothing in it
// escapes into returned results — DocStats is read during the Score
// call and Result copies only the docID and score — so recycling is
// invisible to callers.
type scoreScratch struct {
	tf  []int64
	tfm map[string]int64
}

var scratchPool = sync.Pool{New: func() any { return &scoreScratch{} }}

// getScratch checks a scratch out of the pool with tf sized for n
// terms. The map is cleared here rather than at put time so a scorer
// that iterates DocStats.TF never observes another query's terms.
func getScratch(n int) *scoreScratch {
	s := scratchPool.Get().(*scoreScratch)
	if cap(s.tf) < n {
		s.tf = make([]int64, n)
	}
	s.tf = s.tf[:n]
	clear(s.tfm)
	return s
}

func putScratch(s *scoreScratch) {
	scratchPool.Put(s)
}
