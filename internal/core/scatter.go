package core

import (
	"context"
	"errors"
	"sort"
	"strings"
	"time"

	"csrank/internal/query"
	"csrank/internal/ranking"
)

// Scatter-gather execution. A document-partitioned cluster cannot run
// SearchCtx independently per shard: collection statistics (N, len(D),
// df, tc — whether over the whole collection or over the context D_P)
// are properties of the union, and a shard ranking under its local
// counts would score documents differently from a single-engine run.
// The two entry points below split one query at exactly the right seam:
//
//   - StatsFor computes the statistics this engine's documents
//     contribute. Every field the scorers consume is an integer count
//     over a disjoint document subset, so per-shard partial statistics
//     sum — exactly, with no floating-point involvement — to the
//     statistics a single engine holding the union would compute
//     (MergeCollectionStats).
//   - SearchWithStats evaluates the result set and scores it under
//     externally supplied statistics. Per-document scores are pure
//     functions of (S_q, S_d, S_c); S_d (term frequencies, document
//     length) is a local fact identical in sharded and unsharded
//     indexes, so with the merged S_c every shard produces exactly the
//     floats the single engine would.
//
// The distributed merge then needs only MergeResults' strict
// (score, docID) total order to be provably bit-identical to the
// single-engine ranking, tie-breaks included.

// StatsFor computes the collection statistics SearchCtx would rank q
// with, without evaluating the result set: whole-collection aggregates
// for context-free queries, S_c(D_P) (view-accelerated, cached, and
// budget-degradable exactly like SearchCtx) for contextual ones. In a
// document-partitioned cluster the returned statistics are one shard's
// partial addend; MergeCollectionStats sums them into the union's
// statistics. A deadline expiry degrades to approximate statistics and
// flags st.Degraded instead of failing, mirroring the search path's
// boundedness contract; explicit cancellation fails the call.
func (e *Engine) StatsFor(ctx context.Context, q query.Query) (cs ranking.CollectionStats, st ExecStats, err error) {
	ctx, cancel := e.applyDeadline(ctx)
	defer cancel()
	defer recoverToError(&err, "statistics phase")
	defer noteQuarantine(&st)
	start := time.Now()
	defer func() { st.Elapsed = time.Since(start) }()
	a, aerr := e.analyze(q)
	if aerr != nil {
		err = aerr
		return
	}
	st.Phases.Analyze = time.Since(start)
	if !q.IsContextual() || len(a.context) == 0 {
		st.Plan = PlanConventional
		// Whole-collection statistics are O(#keywords) aggregate reads —
		// cheap enough to answer exactly even after a deadline expired
		// (the scoring phase is where a dead deadline degrades). Explicit
		// cancellation still fails the call.
		if cerr := ctx.Err(); cerr != nil && !errors.Is(cerr, context.DeadlineExceeded) {
			err = cerr
			return
		}
		tStats := time.Now()
		cs = e.globalStats(a)
		st.Phases.Stats = time.Since(tStats)
		return
	}
	st.Plan = PlanStraightforward
	cat := e.catalog.Load()
	if cerr := ctx.Err(); cerr != nil {
		if !errors.Is(cerr, context.DeadlineExceeded) {
			err = cerr
			return
		}
		cs = e.approximateStats(a, true, &st, cat)
		st.ContextSize = cs.N
		st.degrade("deadline expired before statistics: approximate statistics")
		return
	}
	kw, preds := e.lists(a)
	tStats := time.Now()
	statsCtx, statsCancel := ctx, context.CancelFunc(nil)
	if e.statsBudget > 0 {
		statsCtx, statsCancel = context.WithTimeout(ctx, e.statsBudget)
	}
	var cerr error
	cs, cerr = e.contextStats(statsCtx, a, kw, preds, true, &st, cat)
	if statsCancel != nil {
		statsCancel()
	}
	st.Phases.Stats = time.Since(tStats)
	if cerr != nil {
		if !errors.Is(cerr, context.DeadlineExceeded) {
			cs = ranking.CollectionStats{}
			err = cerr
			return
		}
		cs = e.approximateStats(a, true, &st, cat)
		if ctx.Err() == nil {
			st.degrade("stats budget exceeded: approximate statistics")
		} else {
			st.degrade("deadline exceeded during statistics: approximate statistics")
		}
	}
	st.ContextSize = cs.N
	return
}

// SearchWithStats evaluates q's result set on this engine's documents
// and ranks it under the caller-supplied collection statistics instead
// of computing its own — the scoring half of a scatter-gather query,
// run after the cluster merged every shard's StatsFor contribution.
// Results use this engine's docID space; st.Plan is left empty (the
// plan is a property of the statistics phase). Deadline expiry degrades
// to flagged partial results exactly like SearchCtx. cs is only read,
// so one merged statistics value can fan out to every shard
// concurrently.
func (e *Engine) SearchWithStats(ctx context.Context, q query.Query, k int, cs ranking.CollectionStats) (res []Result, st ExecStats, err error) {
	ctx, cancel := e.applyDeadline(ctx)
	defer cancel()
	defer recoverToError(&err, "scatter-gather scoring")
	defer noteQuarantine(&st)
	start := time.Now()
	defer func() { st.Elapsed = time.Since(start) }()
	a, aerr := e.analyze(q)
	if aerr != nil {
		err = aerr
		return
	}
	st.Phases.Analyze = time.Since(start)
	if stop, out, herr := shortCircuit(ctx, &st); stop {
		res, err = out, herr
		return
	}
	kw, preds := e.lists(a)
	if e.prunedEligible(kw, preds, k) {
		tScore := time.Now()
		out, serr := e.prunedSearch(ctx, a, kw, preds, cs, k, &st)
		st.Phases.Score = time.Since(tScore)
		if serr != nil && !degradeOnDeadline(serr, &st, "deadline exceeded during pruned scoring: partial top-k") {
			err = serr
			return
		}
		res = out
		return
	}
	tRes := time.Now()
	rs, rerr := evaluateResultSet(ctx, kw, preds, &st.Stats)
	st.Phases.ResultSet = time.Since(tRes)
	if rerr != nil && !degradeOnDeadline(rerr, &st, "deadline exceeded during result-set intersection: partial results") {
		err = rerr
		return
	}
	st.ResultSize = rs.Len()
	tScore := time.Now()
	out, serr := e.score(ctx, a, rs, cs, k)
	st.Phases.Score = time.Since(tScore)
	if serr != nil && !degradeOnDeadline(serr, &st, "deadline exceeded during scoring: partial top-k") {
		err = serr
		return
	}
	res = out
	return
}

// globalStats assembles whole-collection statistics for the analyzed
// keywords: O(#keywords) reads of precomputed aggregates.
func (e *Engine) globalStats(a analyzed) ranking.CollectionStats {
	cs := ranking.CollectionStats{
		N:        e.globalN,
		TotalLen: e.globalLen,
		DF:       make(map[string]int64, len(a.kwTerms)),
		TC:       make(map[string]int64, len(a.kwTerms)),
	}
	for _, w := range a.kwTerms {
		cs.DF[w] = e.ix.DF(e.contentField, w)
		cs.TC[w] = e.ix.TotalTF(e.contentField, w)
	}
	return cs
}

// MergeCollectionStats sums per-shard partial collection statistics
// into the statistics of the union. Every summed field is an int64
// count over disjoint document sets — |D|, len(D), df(w, D), tc(w, D)
// are all additive under disjoint union — so the result is exactly (not
// approximately) the statistics a single engine holding all documents
// would compute, regardless of summation order. UniqueTerms is not
// additive (shard dictionaries overlap) and is left zero, matching the
// single-engine query paths, which never populate it either.
func MergeCollectionStats(parts ...ranking.CollectionStats) ranking.CollectionStats {
	m := ranking.CollectionStats{
		DF: make(map[string]int64),
		TC: make(map[string]int64),
	}
	for _, p := range parts {
		m.N += p.N
		m.TotalLen += p.TotalLen
		for w, v := range p.DF {
			m.DF[w] += v
		}
		for w, v := range p.TC {
			m.TC[w] += v
		}
	}
	return m
}

// PlanMixed marks a merged execution whose shards reported different
// plans (e.g. a view answered the context on some shards while others
// fell back to the straightforward aggregation).
const PlanMixed Plan = "mixed"

// MergeStats aggregates per-shard (and per-phase) execution reports
// into one cluster-level ExecStats: cost counters, result/context
// cardinalities, fallback keyword counts and pruning counters sum;
// Degraded and UsedView are sticky ORs; CacheHit reports whether any
// part was answered from a statistics cache; phase timings and Elapsed
// take the maximum, the wall-clock shape of a concurrent fan-out. The
// merged DegradedReason is the *union* of every part's individual
// reasons (each part's "; "-joined list is split back into its atoms),
// deduplicated and sorted, so the merged reason is deterministic no
// matter which shard reported first and no reason is lost when shards
// degrade differently. Parts with an empty Plan (scoring-phase reports)
// do not vote on the merged plan.
func MergeStats(parts ...ExecStats) ExecStats {
	var m ExecStats
	var reasons []string
	seen := map[string]bool{}
	for _, p := range parts {
		m.Stats.Add(p.Stats)
		if p.Plan != "" {
			switch {
			case m.Plan == "":
				m.Plan = p.Plan
			case m.Plan != p.Plan:
				m.Plan = PlanMixed
			}
		}
		m.UsedView = m.UsedView || p.UsedView
		m.ViewSize += p.ViewSize
		m.FallbackKeywords += p.FallbackKeywords
		m.ResultSize += p.ResultSize
		m.ContextSize += p.ContextSize
		m.CacheHit = m.CacheHit || p.CacheHit
		if p.Degraded {
			m.Degraded = true
			for _, r := range strings.Split(p.DegradedReason, "; ") {
				if r != "" && !seen[r] {
					seen[r] = true
					reasons = append(reasons, r)
				}
			}
		}
		m.Pruning.add(p.Pruning)
		m.Phases = maxPhases(m.Phases, p.Phases)
		if p.Elapsed > m.Elapsed {
			m.Elapsed = p.Elapsed
		}
	}
	if len(reasons) > 0 {
		sort.Strings(reasons)
		m.DegradedReason = strings.Join(reasons, "; ")
	}
	return m
}

func maxPhases(a, b PhaseTimings) PhaseTimings {
	return PhaseTimings{
		Analyze:   maxDuration(a.Analyze, b.Analyze),
		Stats:     maxDuration(a.Stats, b.Stats),
		ResultSet: maxDuration(a.ResultSet, b.ResultSet),
		Score:     maxDuration(a.Score, b.Score),
	}
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
