package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"csrank/internal/postings"
	"csrank/internal/query"
	"csrank/internal/ranking"
)

// Multi-slice execution. A live collection is a set of disjoint
// document slices — immutable shards plus a small mutable segment —
// that must rank as one: collection statistics are properties of the
// union, so slices cannot score independently. SearchSlices runs the
// same two-phase protocol the scatter path proves bit-identical
// (StatsFor partial statistics summed by MergeCollectionStats, then
// SearchWithStats under the merged statistics, then MergeResults'
// strict total order), parameterized over an explicit slice list
// instead of a fixed cluster, so the shard fan-out and the
// mutable-segment overlay share one implementation.

// Slice is one disjoint piece of a logical collection: an engine and
// its local→global docID map. Globals must be strictly increasing
// (local order = global order — the invariant that makes per-slice
// top-k truncation rank-safe) and pairwise disjoint across the slices
// of one search; callers own those invariants.
type Slice struct {
	Eng     *Engine
	Globals []uint32
}

// SliceHit is one merged result: the slice that produced it, the
// document's docID in that slice's engine (for stored-field lookup)
// and in the logical collection (the tie-break key), and its score.
type SliceHit struct {
	Slice  int
	Local  uint32
	Global uint32
	Score  float64
}

// SliceHook is a fault-injection seam called inside a slice's isolated
// worker at the start of each phase ("stats", "score"), before the
// engine call. A hook may sleep (latency injection — it should select on
// ctx.Done so per-slice timeouts still bound it) or panic (crash and
// corruption injection); panics are recovered by the same boundary that
// isolates engine panics. Production paths leave hooks nil.
type SliceHook func(ctx context.Context, phase string)

// SliceFailure attributes the loss of one slice during a partial
// scatter-gather: which slice, a coarse failure kind for operators and
// breakers, and the underlying error.
type SliceFailure struct {
	Slice int
	// Kind is one of "corruption" (a *postings.BlockCorruptError escaped
	// the slice, through a panic or not), "panic" (any other recovered
	// panic), "timeout" (the per-slice timeout fired), or "error".
	Kind string
	Err  error
}

// Failure kinds reported by SliceFailure.Kind.
const (
	FailKindCorruption = "corruption"
	FailKindPanic      = "panic"
	FailKindTimeout    = "timeout"
	FailKindError      = "error"
)

// SliceOptions configures SearchSlicesPartial's failure policy.
type SliceOptions struct {
	// MinSlices is the fewest surviving slices for which a partial answer
	// is still acceptable; with fewer the query fails with
	// ErrTooFewSlices (fail-closed). ≤ 0 means 1: answer as long as any
	// slice survives. len(slices) means fail-fast on any loss.
	MinSlices int
	// Timeout bounds each slice's work per phase; an expired slice is
	// dropped from the query (unlike an engine-level Deadline, which
	// degrades in place). 0 disables the per-slice timeout.
	Timeout time.Duration
	// Hooks holds an optional fault-injection hook per slice (parallel to
	// the slices; shorter is allowed, missing or nil entries inject
	// nothing).
	Hooks []SliceHook
}

// ErrTooFewSlices fails a partial scatter-gather when fewer slices
// survive than SliceOptions.MinSlices allows.
var ErrTooFewSlices = errors.New("core: too few healthy slices for a partial answer")

// errSliceTimeout is the cancel cause installed by a per-slice timeout,
// distinguishing it from a caller cancellation.
var errSliceTimeout = errors.New("core: slice timed out")

// classifySliceFailure maps a slice error to its SliceFailure kind.
// Corruption is checked first: a *BlockCorruptError that escaped by
// panic unwraps through PanicError and must not be masked as a generic
// panic.
func classifySliceFailure(err error) string {
	var bce *postings.BlockCorruptError
	if errors.As(err, &bce) {
		return FailKindCorruption
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return FailKindPanic
	}
	if errors.Is(err, errSliceTimeout) {
		return FailKindTimeout
	}
	return FailKindError
}

// SearchSlices evaluates q over the union of the slices and returns the
// global top k (everything when k ≤ 0), bit-identical — scores, order,
// tie-breaks — to a single engine holding all documents, plus each
// slice's merged (stats + scoring phase) execution report. A deadline
// expiry inside any slice degrades that slice's report instead of
// failing; cancellation or a slice panic fails the query with the first
// error in slice order. It is SearchSlicesPartial under the strictest
// policy (every slice must answer); callers that can serve partial
// results use SearchSlicesPartial directly.
func SearchSlices(ctx context.Context, slices []Slice, q query.Query, k int) ([]SliceHit, []ExecStats, error) {
	hits, per, failures, err := SearchSlicesPartial(ctx, slices, q, k, SliceOptions{MinSlices: len(slices)})
	if err != nil {
		if len(failures) > 0 {
			// Fail-fast contract: surface the first failed slice's own
			// error, not the policy wrapper.
			return nil, nil, failures[0].Err
		}
		return nil, nil, err
	}
	return hits, per, nil
}

// SearchSlicesPartial is SearchSlices with per-slice failure isolation:
// a slice that panics, reads a corrupt block, or exceeds opt.Timeout is
// dropped from the query — from both the statistics merge and the
// scoring phase — and the remaining slices answer alone. The returned
// hits are bit-identical to SearchSlices over exactly the surviving
// slices: when a slice fails *after* its statistics were merged, scoring
// is re-run for every survivor under the re-merged statistics, so a
// partial answer is never ranked under statistics of documents it cannot
// return. Failures attributes every lost slice; stats entries of lost
// slices are zero. The error is non-nil only when the caller's context
// was canceled, fewer than opt.MinSlices slices survived
// (ErrTooFewSlices), or the merge itself failed — never for an isolated
// slice loss within policy.
func SearchSlicesPartial(ctx context.Context, slices []Slice, q query.Query, k int, opt SliceOptions) ([]SliceHit, []ExecStats, []SliceFailure, error) {
	n := len(slices)
	if n == 0 {
		return nil, nil, nil, fmt.Errorf("core: search over zero slices")
	}
	minAlive := opt.MinSlices
	if minAlive < 1 {
		minAlive = 1
	}
	if minAlive > n {
		minAlive = n
	}

	hook := func(i int) SliceHook {
		if i < len(opt.Hooks) {
			return opt.Hooks[i]
		}
		return nil
	}
	// runSlice executes one slice's phase work behind the isolation
	// boundary: a per-slice timeout context (cancel cause errSliceTimeout,
	// so a timeout is distinguishable from a caller cancellation), the
	// fault-injection hook, and panic recovery. The engine treats the
	// timeout's cancellation as a hard error — exactly what drops the
	// slice — while its own Deadline option would merely degrade in
	// place.
	runSlice := func(i int, phase string, fn func(sctx context.Context) error) error {
		sctx := ctx
		if opt.Timeout > 0 {
			c, cancel := context.WithCancelCause(ctx)
			timer := time.AfterFunc(opt.Timeout, func() { cancel(errSliceTimeout) })
			defer timer.Stop()
			defer cancel(nil)
			sctx = c
		}
		err := func() (err error) {
			defer recoverToError(&err, "slice "+phase+" phase")
			if h := hook(i); h != nil {
				h(sctx, phase)
			}
			return fn(sctx)
		}()
		if err != nil && context.Cause(sctx) == errSliceTimeout {
			err = fmt.Errorf("slice %d: %w after %v in %s phase (%v)", i, errSliceTimeout, opt.Timeout, phase, err)
		}
		return err
	}

	alive := make([]bool, n)
	errs := make([]error, n)
	var failures []SliceFailure
	fail := func(i int) {
		alive[i] = false
		failures = append(failures, SliceFailure{Slice: i, Kind: classifySliceFailure(errs[i]), Err: errs[i]})
	}

	// Phase 1: partial statistics, every slice isolated.
	partCS := make([]ranking.CollectionStats, n)
	statsSt := make([]ExecStats, n)
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runSlice(i, "stats", func(sctx context.Context) error {
				var err error
				partCS[i], statsSt[i], err = slices[i].Eng.StatsFor(sctx, q)
				return err
			})
		}(i)
	}
	errs[0] = runSlice(0, "stats", func(sctx context.Context) error {
		var err error
		partCS[0], statsSt[0], err = slices[0].Eng.StatsFor(sctx, q)
		return err
	})
	wg.Wait()
	if cerr := ctx.Err(); cerr != nil {
		// The caller's own context died: that fails the query, it does not
		// degrade it.
		return nil, nil, nil, cerr
	}
	aliveCount := 0
	for i := range slices {
		if errs[i] != nil {
			fail(i)
		} else {
			alive[i] = true
			aliveCount++
		}
	}

	// Phase 2: scoring under the survivors' merged statistics. A slice
	// lost during scoring invalidates the merge it was scored under —
	// its phase-1 statistics are folded into every survivor's ranking —
	// so the loop re-merges over the remaining survivors and re-scores
	// all of them. Each round removes at least one slice; the loop runs
	// at most n times. Per-slice phase-1 statistics stay valid addends
	// throughout (they are facts about disjoint document sets).
	results := make([][]Result, n)
	scoreSt := make([]ExecStats, n)
	for {
		if aliveCount < minAlive {
			return nil, nil, failures, fmt.Errorf("%w: %d of %d shards healthy, policy requires %d", ErrTooFewSlices, aliveCount, n, minAlive)
		}
		var aliveCS []ranking.CollectionStats
		for i := range slices {
			if alive[i] {
				aliveCS = append(aliveCS, partCS[i])
			}
		}
		cs := MergeCollectionStats(aliveCS...)
		// Run the lowest-numbered survivor on the caller's goroutine,
		// everything else concurrently — same shape as phase 1.
		self := -1
		for i := range slices {
			if !alive[i] {
				continue
			}
			if self < 0 {
				self = i
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = runSlice(i, "score", func(sctx context.Context) error {
					var err error
					results[i], scoreSt[i], err = slices[i].Eng.SearchWithStats(sctx, q, k, cs)
					return err
				})
			}(i)
		}
		errs[self] = runSlice(self, "score", func(sctx context.Context) error {
			var err error
			results[self], scoreSt[self], err = slices[self].Eng.SearchWithStats(sctx, q, k, cs)
			return err
		})
		wg.Wait()
		if cerr := ctx.Err(); cerr != nil {
			return nil, nil, nil, cerr
		}
		lost := false
		for i := range slices {
			if alive[i] && errs[i] != nil {
				fail(i)
				aliveCount--
				lost = true
			}
		}
		if !lost {
			break
		}
	}

	// Rank-safe merge in the global docID space, over survivors only.
	lists := make([][]Result, 0, aliveCount)
	for i := range slices {
		if !alive[i] {
			continue
		}
		mapped := make([]Result, len(results[i]))
		for j, r := range results[i] {
			mapped[j] = Result{DocID: slices[i].Globals[r.DocID], Score: r.Score}
		}
		lists = append(lists, mapped)
	}
	merged := MergeResults(k, lists...)
	hits := make([]SliceHit, len(merged))
	for i, r := range merged {
		s, local, ok := locateSlice(slices, r.DocID)
		if !ok {
			return nil, nil, failures, fmt.Errorf("core: merged docID %d belongs to no slice", r.DocID)
		}
		hits[i] = SliceHit{Slice: s, Local: local, Global: r.DocID, Score: r.Score}
	}

	per := make([]ExecStats, n)
	for i := range per {
		if alive[i] {
			per[i] = MergeStats(statsSt[i], scoreSt[i])
		}
	}
	return hits, per, failures, nil
}

// locateSlice maps a global docID back to (slice, local) by binary
// search over each slice's sorted globals.
func locateSlice(slices []Slice, global uint32) (idx int, local uint32, ok bool) {
	for s, sl := range slices {
		g := sl.Globals
		j := sort.Search(len(g), func(i int) bool { return g[i] >= global })
		if j < len(g) && g[j] == global {
			return s, uint32(j), true
		}
	}
	return 0, 0, false
}
