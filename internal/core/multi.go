package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"csrank/internal/query"
	"csrank/internal/ranking"
)

// Multi-slice execution. A live collection is a set of disjoint
// document slices — immutable shards plus a small mutable segment —
// that must rank as one: collection statistics are properties of the
// union, so slices cannot score independently. SearchSlices runs the
// same two-phase protocol the scatter path proves bit-identical
// (StatsFor partial statistics summed by MergeCollectionStats, then
// SearchWithStats under the merged statistics, then MergeResults'
// strict total order), parameterized over an explicit slice list
// instead of a fixed cluster, so the shard fan-out and the
// mutable-segment overlay share one implementation.

// Slice is one disjoint piece of a logical collection: an engine and
// its local→global docID map. Globals must be strictly increasing
// (local order = global order — the invariant that makes per-slice
// top-k truncation rank-safe) and pairwise disjoint across the slices
// of one search; callers own those invariants.
type Slice struct {
	Eng     *Engine
	Globals []uint32
}

// SliceHit is one merged result: the slice that produced it, the
// document's docID in that slice's engine (for stored-field lookup)
// and in the logical collection (the tie-break key), and its score.
type SliceHit struct {
	Slice  int
	Local  uint32
	Global uint32
	Score  float64
}

// SearchSlices evaluates q over the union of the slices and returns the
// global top k (everything when k ≤ 0), bit-identical — scores, order,
// tie-breaks — to a single engine holding all documents, plus each
// slice's merged (stats + scoring phase) execution report. A deadline
// expiry inside any slice degrades that slice's report instead of
// failing; cancellation or a slice panic fails the query with the first
// error in slice order.
func SearchSlices(ctx context.Context, slices []Slice, q query.Query, k int) ([]SliceHit, []ExecStats, error) {
	n := len(slices)
	if n == 0 {
		return nil, nil, fmt.Errorf("core: search over zero slices")
	}

	// Phase 1: partial statistics.
	partCS := make([]ranking.CollectionStats, n)
	statsSt := make([]ExecStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partCS[i], statsSt[i], errs[i] = slices[i].Eng.StatsFor(ctx, q)
		}(i)
	}
	partCS[0], statsSt[0], errs[0] = slices[0].Eng.StatsFor(ctx, q)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	cs := MergeCollectionStats(partCS...)

	// Phase 2: scoring under the merged statistics.
	results := make([][]Result, n)
	scoreSt := make([]ExecStats, n)
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], scoreSt[i], errs[i] = slices[i].Eng.SearchWithStats(ctx, q, k, cs)
		}(i)
	}
	results[0], scoreSt[0], errs[0] = slices[0].Eng.SearchWithStats(ctx, q, k, cs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	// Rank-safe merge in the global docID space.
	lists := make([][]Result, n)
	for i, rs := range results {
		mapped := make([]Result, len(rs))
		for j, r := range rs {
			mapped[j] = Result{DocID: slices[i].Globals[r.DocID], Score: r.Score}
		}
		lists[i] = mapped
	}
	merged := MergeResults(k, lists...)
	hits := make([]SliceHit, len(merged))
	for i, r := range merged {
		s, local, ok := locateSlice(slices, r.DocID)
		if !ok {
			return nil, nil, fmt.Errorf("core: merged docID %d belongs to no slice", r.DocID)
		}
		hits[i] = SliceHit{Slice: s, Local: local, Global: r.DocID, Score: r.Score}
	}

	per := make([]ExecStats, n)
	for i := range per {
		per[i] = MergeStats(statsSt[i], scoreSt[i])
	}
	return hits, per, nil
}

// locateSlice maps a global docID back to (slice, local) by binary
// search over each slice's sorted globals.
func locateSlice(slices []Slice, global uint32) (idx int, local uint32, ok bool) {
	for s, sl := range slices {
		g := sl.Globals
		j := sort.Search(len(g), func(i int) bool { return g[i] >= global })
		if j < len(g) && g[j] == global {
			return s, uint32(j), true
		}
	}
	return 0, 0, false
}
