package core

import (
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// ResultCache memoizes final, fully-merged query results at the serving
// layer. It stores opaque values (the public layer's hits + stats
// bundle) under a string key — normalized query, context, k, engine
// configuration — paired with a *tag*: a string encoding of every input
// generation the result was computed from (per-shard serving
// generation, per-engine catalog version, live-view sequence number).
// A lookup only serves an entry whose tag equals the tag of the current
// serving state; because every tag component is monotonic, equality
// proves no input changed between store and lookup, which is what makes
// a hit provably bit-identical to re-execution. A stale-tagged entry is
// dropped on sight rather than waiting for byte-pressure eviction.
//
// The cache is sharded (FNV-1a over the key) so concurrent lookups in
// different keys never contend on one lock, and byte-budgeted: each
// store charges a caller-estimated size, and a CLOCK sweep (FIFO with
// one second chance for entries that have hit) keeps each shard inside
// its slice of the budget — scan-resistant enough for a result cache
// without LRU bookkeeping on the hit path.
//
// ResultCache also hosts the single-flight table (Join/Finish/Wait):
// concurrent identical queries coalesce onto one in-flight execution,
// with followers waiting under their own contexts.
type ResultCache struct {
	shards []resultShard
	mask   uint32

	hits          atomic.Int64
	misses        atomic.Int64
	stores        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	coalesced     atomic.Int64

	fmu     sync.Mutex
	flights map[string]*Flight
}

type resultShard struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[string]*resultEntry
	// ring holds keys in insertion order for the CLOCK sweep. A key may
	// linger after its entry was invalidated; the sweep skips such
	// tombstones.
	ring  []string
	head  int
	count int
}

type resultEntry struct {
	tag      string
	val      any
	bytes    int64
	accessed bool
}

// ResultCacheStats is a counter snapshot for telemetry surfaces.
type ResultCacheStats struct {
	Entries       int
	Bytes         int64
	Budget        int64
	Hits          int64
	Misses        int64
	Stores        int64
	Evictions     int64
	Invalidations int64
	Coalesced     int64
}

// NewResultCache returns a cache bounded to roughly budget bytes of
// stored results (nil when budget <= 0, meaning caching disabled).
func NewResultCache(budget int64) *ResultCache {
	if budget <= 0 {
		return nil
	}
	const n = 8 // power of two; modest — contention is per-key, not per-shard-count
	c := &ResultCache{
		shards:  make([]resultShard, n),
		mask:    uint32(n - 1),
		flights: make(map[string]*Flight),
	}
	per := budget / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].budget = per
		c.shards[i].entries = make(map[string]*resultEntry)
	}
	return c
}

func (c *ResultCache) shard(key string) *resultShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()&c.mask]
}

// Lookup returns the value stored under key if its tag matches the
// caller's view of the current serving state. A tag mismatch means some
// input generation moved since the store: the entry can never be served
// again (tags are built from monotonic counters), so it is dropped now
// and counted as an invalidation.
func (c *ResultCache) Lookup(key, tag string) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	if e.tag != tag {
		delete(s.entries, key)
		s.used -= e.bytes
		s.mu.Unlock()
		c.invalidations.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	e.accessed = true
	v := e.val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Store inserts (or replaces) the value under key with the given tag
// and size estimate, then sweeps the shard back inside its budget. A
// value larger than the whole shard budget is simply not retained.
func (c *ResultCache) Store(key, tag string, val any, bytes int64) {
	if c == nil {
		return
	}
	if bytes < 1 {
		bytes = 1
	}
	s := c.shard(key)
	s.mu.Lock()
	if e := s.entries[key]; e != nil {
		s.used += bytes - e.bytes
		e.tag, e.val, e.bytes, e.accessed = tag, val, bytes, false
	} else {
		s.entries[key] = &resultEntry{tag: tag, val: val, bytes: bytes}
		s.used += bytes
		s.pushKey(key)
	}
	c.stores.Add(1)
	// CLOCK sweep: pop from the head; an entry that has hit since it was
	// queued gets one more lap, everything else leaves. Tombstoned keys
	// (invalidated entries) are skipped for free. The scan is bounded to
	// one full lap plus the reinsertions it can cause.
	scans := s.count + 2
	for s.used > s.budget && s.count > 0 && scans > 0 {
		scans--
		k := s.popKey()
		e := s.entries[k]
		if e == nil {
			continue // tombstone
		}
		if e.accessed && scans > 0 {
			e.accessed = false
			s.pushKey(k)
			continue
		}
		delete(s.entries, k)
		s.used -= e.bytes
		c.evictions.Add(1)
	}
	s.mu.Unlock()
}

func (s *resultShard) pushKey(k string) {
	if s.count == len(s.ring) {
		n := len(s.ring) * 2
		if n == 0 {
			n = 16
		}
		ring := make([]string, n)
		for i := 0; i < s.count; i++ {
			ring[i] = s.ring[(s.head+i)%len(s.ring)]
		}
		s.ring, s.head = ring, 0
	}
	s.ring[(s.head+s.count)%len(s.ring)] = k
	s.count++
}

func (s *resultShard) popKey() string {
	k := s.ring[s.head]
	s.ring[s.head] = ""
	s.head = (s.head + 1) % len(s.ring)
	s.count--
	return k
}

// Purge drops every entry (tests and operational resets; correctness
// never depends on it — stale tags already make entries unservable).
func (c *ResultCache) Purge() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[string]*resultEntry)
		for j := range s.ring {
			s.ring[j] = ""
		}
		s.head, s.count, s.used = 0, 0, 0
		s.mu.Unlock()
	}
}

// NoteCoalesced counts one follower served by a leader's execution.
func (c *ResultCache) NoteCoalesced() {
	if c != nil {
		c.coalesced.Add(1)
	}
}

// Stats snapshots the cache's population and counters.
func (c *ResultCache) Stats() ResultCacheStats {
	if c == nil {
		return ResultCacheStats{}
	}
	st := ResultCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Stores:        c.stores.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Coalesced:     c.coalesced.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		st.Bytes += s.used
		st.Budget += s.budget
		s.mu.Unlock()
	}
	return st
}

// Flight is one in-flight execution concurrent identical queries
// coalesce onto. The leader executes and publishes through Finish;
// followers Wait under their own contexts.
type Flight struct {
	done chan struct{}
	val  any
	ok   bool
}

// Join returns the flight for key and whether the caller is its leader.
// The leader MUST call Finish exactly once — on every path, including
// panics and errors — or followers joined after it would wait until
// their own deadlines for nothing.
func (c *ResultCache) Join(key string) (*Flight, bool) {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	if f := c.flights[key]; f != nil {
		return f, false
	}
	f := &Flight{done: make(chan struct{})}
	c.flights[key] = f
	return f, true
}

// Finish publishes the leader's outcome and retires the flight: val is
// shared with every waiting follower when shareable is true (a clean,
// cacheable result); shareable false — an error, degraded or partial
// result, or a mid-execution generation change — tells followers to
// execute for themselves. New arrivals after Finish start a new flight.
func (c *ResultCache) Finish(key string, f *Flight, val any, shareable bool) {
	c.fmu.Lock()
	if c.flights[key] == f {
		delete(c.flights, key)
	}
	c.fmu.Unlock()
	f.val, f.ok = val, shareable
	close(f.done)
}

// Wait blocks until the flight's leader finishes or ctx ends. ok
// reports whether the leader's value is shareable; err is non-nil only
// for the follower's own context expiring.
func (f *Flight) Wait(ctx context.Context) (val any, ok bool, err error) {
	select {
	case <-f.done:
		return f.val, f.ok, nil
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}
