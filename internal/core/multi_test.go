package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"csrank/internal/analysis"
	"csrank/internal/index"
	"csrank/internal/postings"
	"csrank/internal/query"
)

// randomSlices builds one random corpus, splits it into n contiguous
// slices (each with its own index and a strictly increasing, pairwise
// disjoint global map), and returns some non-trivial queries.
func randomSlices(t *testing.T, rng *rand.Rand, nDocs, n int) ([]Slice, []query.Query) {
	t.Helper()
	meshTerms := make([]string, 6)
	for i := range meshTerms {
		meshTerms[i] = fmt.Sprintf("m%02d", i)
	}
	words := make([]string, 6)
	for i := range words {
		words[i] = fmt.Sprintf("w%02d", i)
	}
	docs := make([]index.Document, nDocs)
	for d := range docs {
		var mesh, content []string
		for _, m := range meshTerms {
			if rng.Float64() < 0.3 {
				mesh = append(mesh, m)
			}
		}
		for _, w := range words {
			for k := rng.Intn(4); k > 0; k-- {
				content = append(content, w)
			}
		}
		if len(content) == 0 {
			content = append(content, "pad")
		}
		docs[d] = index.Document{Fields: map[string]string{
			"title":   "t",
			"content": strings.Join(content, " "),
			"mesh":    strings.Join(mesh, " "),
		}}
	}
	schema := index.Schema{
		Fields: []index.FieldSpec{
			{Name: "title", Analyzer: analysis.Keyword(), Stored: true},
			{Name: "content", Analyzer: analysis.Keyword()},
			{Name: "mesh", Analyzer: analysis.Keyword()},
		},
		PredicateField: "mesh",
		ContentField:   "content",
	}
	slices := make([]Slice, n)
	per := (nDocs + n - 1) / n
	for i := 0; i < n; i++ {
		lo, hi := i*per, (i+1)*per
		if hi > nDocs {
			hi = nDocs
		}
		ix, err := index.BuildFrom(schema, 16, docs[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		globals := make([]uint32, hi-lo)
		for j := range globals {
			globals[j] = uint32(lo + j)
		}
		slices[i] = Slice{Eng: New(ix, nil, Options{}), Globals: globals}
	}
	queries := []query.Query{
		{Keywords: []string{words[0]}},
		{Keywords: []string{words[1], words[2]}, Context: meshTerms[:2]},
		{Keywords: []string{words[3]}, Context: meshTerms[2:4]},
	}
	return slices, queries
}

// without returns slices with index i removed.
func without(slices []Slice, i int) []Slice {
	out := make([]Slice, 0, len(slices)-1)
	out = append(out, slices[:i]...)
	return append(out, slices[i+1:]...)
}

// TestSearchSlicesPartialBitIdentical: a partial answer with one slice
// lost — in the stats phase or, harder, in the scoring phase after its
// statistics were already merged — must be bit-identical to a fresh
// fail-fast scatter-gather over only the surviving slices. The scoring
// phase case is the re-merge contract: survivors must be re-scored
// under the survivors-only statistics, not the stale 4-slice merge.
func TestSearchSlicesPartialBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	slices, queries := randomSlices(t, rng, 200, 4)
	for _, phase := range []string{"stats", "score"} {
		for target := 0; target < len(slices); target++ {
			hooks := make([]SliceHook, len(slices))
			ph := phase
			hooks[target] = func(ctx context.Context, p string) {
				if p == ph {
					panic(fmt.Sprintf("injected %s-phase crash", p))
				}
			}
			healthy := without(slices, target)
			for _, q := range queries {
				hits, per, failures, err := SearchSlicesPartial(
					context.Background(), slices, q, 10, SliceOptions{Hooks: hooks})
				if err != nil {
					t.Fatalf("%s/slice %d: %v", phase, target, err)
				}
				if len(failures) != 1 || failures[0].Slice != target || failures[0].Kind != FailKindPanic {
					t.Fatalf("%s/slice %d: failures %+v", phase, target, failures)
				}
				if len(per) != len(slices) {
					t.Fatalf("per-slice stats length %d, want %d", len(per), len(slices))
				}
				want, _, err := SearchSlices(context.Background(), healthy, q, 10)
				if err != nil {
					t.Fatal(err)
				}
				if len(hits) != len(want) {
					t.Fatalf("%s/slice %d: %d hits, healthy-only has %d", phase, target, len(hits), len(want))
				}
				for i := range want {
					if hits[i].Global != want[i].Global || hits[i].Score != want[i].Score {
						t.Fatalf("%s/slice %d rank %d: (%d, %v), healthy-only has (%d, %v)",
							phase, target, i, hits[i].Global, hits[i].Score, want[i].Global, want[i].Score)
					}
				}
			}
		}
	}
}

// TestSearchSlicesPartialFailureKinds: each injected misbehavior maps to
// its documented failure kind — a *postings.BlockCorruptError panic to
// "corruption", a stall past the per-slice timeout to "timeout", a
// generic panic to "panic".
func TestSearchSlicesPartialFailureKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	slices, queries := randomSlices(t, rng, 120, 3)
	cases := []struct {
		name string
		hook SliceHook
		kind string
	}{
		{"corrupt", func(ctx context.Context, phase string) {
			panic(&postings.BlockCorruptError{Detail: "injected"})
		}, FailKindCorruption},
		{"panic", func(ctx context.Context, phase string) {
			panic("injected")
		}, FailKindPanic},
		{"stall", func(ctx context.Context, phase string) {
			select {
			case <-ctx.Done():
			case <-time.After(time.Minute):
			}
		}, FailKindTimeout},
	}
	for _, tc := range cases {
		hooks := []SliceHook{nil, tc.hook, nil}
		_, _, failures, err := SearchSlicesPartial(
			context.Background(), slices, queries[1], 10,
			SliceOptions{Timeout: 30 * time.Millisecond, Hooks: hooks})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(failures) != 1 || failures[0].Slice != 1 || failures[0].Kind != tc.kind {
			t.Fatalf("%s: failures %+v", tc.name, failures)
		}
	}
}

// TestSearchSlicesPartialFailClosed: MinSlices is a floor — losing
// enough slices fails the query with ErrTooFewSlices rather than
// serving an answer over too little of the collection.
func TestSearchSlicesPartialFailClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	slices, queries := randomSlices(t, rng, 120, 3)
	boom := func(ctx context.Context, phase string) { panic("injected") }
	hooks := []SliceHook{boom, boom, nil}
	_, _, failures, err := SearchSlicesPartial(
		context.Background(), slices, queries[0], 10,
		SliceOptions{MinSlices: 2, Hooks: hooks})
	if !errors.Is(err, ErrTooFewSlices) {
		t.Fatalf("err %v, want ErrTooFewSlices", err)
	}
	if len(failures) != 2 {
		t.Fatalf("failures %+v, want both dead slices attributed", failures)
	}
	// MinSlices = len(slices) turns any single loss into a failure.
	_, _, _, err = SearchSlicesPartial(
		context.Background(), slices, queries[0], 10,
		SliceOptions{MinSlices: 3, Hooks: []SliceHook{nil, boom, nil}})
	if !errors.Is(err, ErrTooFewSlices) {
		t.Fatalf("fail-fast err %v, want ErrTooFewSlices", err)
	}
}

// TestSearchSlicesPartialCallerCancel: a caller-cancelled context fails
// the whole query with the context's error — no slice is blamed, no
// partial answer fabricated.
func TestSearchSlicesPartialCallerCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	slices, queries := randomSlices(t, rng, 120, 3)
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	slow := func(c context.Context, phase string) {
		if calls.Add(1) == 1 {
			cancel()
		}
		<-c.Done()
	}
	hits, per, failures, err := SearchSlicesPartial(
		ctx, slices, queries[0], 10, SliceOptions{Hooks: []SliceHook{slow, slow, slow}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if hits != nil || per != nil || failures != nil {
		t.Fatalf("cancelled query fabricated results: hits=%v failures=%v", hits, failures)
	}
}
