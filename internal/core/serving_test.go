package core

import (
	"math/rand"
	"sync"
	"testing"

	"csrank/internal/query"
	"csrank/internal/views"
	"csrank/internal/widetable"
)

// TestSwapCatalogChangesPlan swaps a catalog into an engine built
// without one and back out, checking the plan flips between
// straightforward and view-based, and that the stats cache is purged at
// each swap (a cached entry must not survive into the new state).
func TestSwapCatalogChangesPlan(t *testing.T) {
	ix, meshTerms, words := randomCollection(t, rand.New(rand.NewSource(13)), 400, 6, 3)
	tbl := widetable.FromIndex(ix, words)
	v, err := views.Materialize(tbl, meshTerms[:3], words)
	if err != nil {
		t.Fatal(err)
	}
	cat := views.NewCatalog([]*views.View{v}, 1, 1<<20)

	eng := New(ix, nil, Options{CacheContexts: 16})
	q := query.Query{Keywords: []string{words[0]}, Context: meshTerms[:2]}

	_, st, err := eng.SearchContextSensitive(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.UsedView {
		t.Fatal("no catalog installed, yet a view answered")
	}
	if eng.cache.len() == 0 {
		t.Fatal("expected the context to be cached")
	}

	eng.SwapCatalog(cat)
	if eng.cache.len() != 0 {
		t.Fatal("swap did not purge the statistics cache")
	}
	if eng.Catalog() != cat {
		t.Fatal("Catalog() does not reflect the swap")
	}
	_, st, err = eng.SearchContextSensitive(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !st.UsedView {
		t.Fatal("swapped-in catalog not consulted")
	}

	eng.SwapCatalog(nil)
	_, st, err = eng.SearchContextSensitive(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.UsedView {
		t.Fatal("view used after the catalog was swapped out")
	}
}

// TestSwapCatalogPreservesRanking: with and without a catalog the
// rankings must be identical (views are an acceleration, not a
// different scoring function), so a swap mid-stream is invisible in
// results.
func TestSwapCatalogPreservesRanking(t *testing.T) {
	ix, meshTerms, words := randomCollection(t, rand.New(rand.NewSource(17)), 400, 6, 3)
	tbl := widetable.FromIndex(ix, words)
	v, err := views.Materialize(tbl, meshTerms[:3], words)
	if err != nil {
		t.Fatal(err)
	}
	cat := views.NewCatalog([]*views.View{v}, 1, 1<<20)
	eng := New(ix, nil, Options{})
	q := query.Query{Keywords: []string{words[0], words[1]}, Context: meshTerms[:1]}

	before, _, err := eng.SearchContextSensitive(q, 20)
	if err != nil {
		t.Fatal(err)
	}
	eng.SwapCatalog(cat)
	after, st, err := eng.SearchContextSensitive(q, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !st.UsedView {
		t.Fatal("catalog not consulted after swap")
	}
	if len(before) != len(after) {
		t.Fatalf("result count changed across swap: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("rank %d changed across swap: %+v vs %+v", i, before[i], after[i])
		}
	}
}

// TestSwapCatalogConcurrentWithQueries hammers searches while catalogs
// swap in and out; run under -race this is the proof the query path
// never reads the catalog field unsynchronized.
func TestSwapCatalogConcurrentWithQueries(t *testing.T) {
	ix, meshTerms, words := randomCollection(t, rand.New(rand.NewSource(19)), 200, 6, 2)
	tbl := widetable.FromIndex(ix, words)
	v, err := views.Materialize(tbl, meshTerms[:2], words)
	if err != nil {
		t.Fatal(err)
	}
	cat := views.NewCatalog([]*views.View{v}, 1, 1<<20)
	eng := New(ix, nil, Options{CacheContexts: 8})
	q := query.Query{Keywords: []string{words[0]}, Context: meshTerms[:1]}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, _, err := eng.SearchContextSensitive(q, 5); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			eng.SwapCatalog(cat)
			eng.SwapCatalog(nil)
		}
	}()
	wg.Wait()
}

// TestServingSwap checks the generation-tagged engine swap: consistent
// (engine, generation) pairs, old pair returned, request-granularity
// pickup.
func TestServingSwap(t *testing.T) {
	ix, _, _ := randomCollection(t, rand.New(rand.NewSource(23)), 100, 4, 2)
	e1 := New(ix, nil, Options{})
	e2 := New(ix, nil, Options{})

	s := NewServing(e1, 1)
	if eng, gen := s.Snapshot(); eng != e1 || gen != 1 {
		t.Fatalf("initial state (%p, %d), want (%p, 1)", eng, gen, e1)
	}
	oldEng, oldGen := s.Swap(e2, 7)
	if oldEng != e1 || oldGen != 1 {
		t.Fatalf("swap returned (%p, %d), want (%p, 1)", oldEng, oldGen, e1)
	}
	if s.Engine() != e2 || s.Generation() != 7 {
		t.Fatal("swap not visible")
	}

	// Concurrent swaps and reads stay consistent pairs.
	var wg sync.WaitGroup
	engines := map[*Engine]uint64{e1: 101, e2: 102}
	for eng, gen := range engines {
		wg.Add(1)
		go func(eng *Engine, gen uint64) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Swap(eng, gen)
			}
		}(eng, gen)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			eng, gen := s.Snapshot()
			if want, ok := engines[eng]; ok && gen != want && gen != 7 {
				t.Errorf("torn pair: engine tagged %d", gen)
				return
			}
		}
	}()
	wg.Wait()
}
