package core

import (
	"container/heap"
	"sort"
	"sync"
)

// topK keeps the k best results seen so far in a min-heap (the weakest
// kept result at the root), so pushing n results costs O(n log k).
// k ≤ 0 keeps everything.
type topK struct {
	k    int
	heap resultHeap
	all  []Result // used when k ≤ 0
}

// topKPool recycles topK values — and, more importantly, their heap
// backing arrays — across queries and scoring partitions. Only the
// heap is reused: results() copies it before returning, so nothing a
// caller holds ever aliases pooled memory. The k ≤ 0 'all' slice is
// handed to the caller verbatim and therefore never pooled.
var topKPool = sync.Pool{New: func() any { return new(topK) }}

func newTopK(k int) *topK {
	t := topKPool.Get().(*topK)
	t.k = k
	t.heap = t.heap[:0]
	t.all = nil
	return t
}

// release returns t and its heap backing to the pool. Call only after
// results() (or on an error path that discards the heap).
func (t *topK) release() {
	t.all = nil
	topKPool.Put(t)
}

// full reports whether the heap holds k results — the precondition for
// reading a pruning threshold from it.
func (t *topK) full() bool { return t.k > 0 && len(t.heap) >= t.k }

// floor returns the weakest kept score (the heap root). Only valid
// when full() — the root of an underfull heap bounds nothing.
func (t *topK) floor() float64 { return t.heap[0].Score }

func (t *topK) push(r Result) {
	if t.k <= 0 {
		t.all = append(t.all, r)
		return
	}
	if len(t.heap) < t.k {
		heap.Push(&t.heap, r)
		return
	}
	if worseThan(t.heap[0], r) {
		t.heap[0] = r
		heap.Fix(&t.heap, 0)
	}
}

// merge absorbs everything other has collected. Both heaps keep the k
// best under the strict total order worseThan, and the k best of a
// multiset do not depend on arrival order, so merging per-partition
// heaps yields exactly the heap a sequential pass would have built.
func (t *topK) merge(other *topK) {
	if t.k <= 0 {
		t.all = append(t.all, other.all...)
		return
	}
	for _, r := range other.heap {
		t.push(r)
	}
}

// results returns the collected hits by descending score (ties broken by
// ascending DocID for deterministic output).
func (t *topK) results() []Result {
	out := t.all
	if t.k > 0 {
		out = append([]Result(nil), t.heap...)
	}
	sort.Slice(out, func(i, j int) bool { return worseThan(out[j], out[i]) })
	return out
}

// MergeResults merges ranked result lists — each sorted under the
// engine's strict (score desc, DocID asc) total order, as every Search
// variant returns — into the global top k (everything when k ≤ 0). The
// merge is rank-safe when each input list is its partition's top k under
// the same order: a document a partition truncated away ranks strictly
// below k documents of that partition, hence below k documents of the
// union, so it cannot appear in the union's top k. Partitions are
// disjoint by construction (document-partitioned shards), so the k best
// of the concatenation are exactly the k best of the union, and the
// strict total order makes the output independent of list arrival
// order — bit-identical to a single-engine run over the union.
func MergeResults(k int, lists ...[]Result) []Result {
	top := newTopK(k)
	for _, l := range lists {
		for _, r := range l {
			top.push(r)
		}
	}
	out := top.results()
	top.release()
	return out
}

// worseThan reports whether a ranks strictly below b.
func worseThan(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.DocID > b.DocID
}

type resultHeap []Result

func (h resultHeap) Len() int           { return len(h) }
func (h resultHeap) Less(i, j int) bool { return worseThan(h[i], h[j]) }
func (h resultHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)        { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
