package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"csrank/internal/analysis"
	"csrank/internal/index"
	"csrank/internal/query"
	"csrank/internal/ranking"
	"csrank/internal/views"
	"csrank/internal/widetable"
)

// TestRandomizedPlanEquivalence is a randomized end-to-end differential
// test: on random collections with random view catalogs, every contextual
// query must produce identical rankings and scores through the view plan
// and the straightforward plan, under every scorer.
func TestRandomizedPlanEquivalence(t *testing.T) {
	scorers := []ranking.Scorer{
		ranking.NewPivotedTFIDF(),
		ranking.NewBM25(),
		ranking.NewDirichletLM(),
		ranking.NewJelinekMercerLM(),
		ranking.NewCosineTFIDF(),
	}
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 31))
		ix, meshTerms, words := randomCollection(t, rng, 400, 8, 10)
		tbl := widetable.FromIndex(ix, words)

		// Random catalog: 3 views over random predicate subsets; random
		// tracked-word subsets so the fallback path gets exercised.
		var vs []*views.View
		for i := 0; i < 3; i++ {
			kn := 2 + rng.Intn(4)
			perm := rng.Perm(len(meshTerms))
			k := make([]string, kn)
			for j := range k {
				k[j] = meshTerms[perm[j]]
			}
			tracked := words[:rng.Intn(len(words)+1)]
			v, err := views.Materialize(tbl, k, tracked)
			if err != nil {
				t.Fatal(err)
			}
			vs = append(vs, v)
		}
		cat := views.NewCatalog(vs, 10, 1<<20)

		for _, sc := range scorers {
			withViews := New(ix, cat, Options{Scorer: sc})
			noViews := New(ix, nil, Options{Scorer: sc})
			for qn := 0; qn < 10; qn++ {
				q := randomQuery(rng, meshTerms, words)
				a, stA, errA := withViews.SearchContextSensitive(q, 0)
				b, stB, errB := noViews.SearchStraightforward(q, 0)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("trial %d %s: error mismatch: %v vs %v", trial, sc.Name(), errA, errB)
				}
				if errA != nil {
					continue
				}
				if stA.ResultSize != stB.ResultSize {
					t.Fatalf("trial %d %s q=%v: result sizes %d vs %d",
						trial, sc.Name(), q, stA.ResultSize, stB.ResultSize)
				}
				if len(a) != len(b) {
					t.Fatalf("trial %d %s q=%v: lengths %d vs %d", trial, sc.Name(), q, len(a), len(b))
				}
				for i := range a {
					if a[i].DocID != b[i].DocID || math.Abs(a[i].Score-b[i].Score) > 1e-9 {
						t.Fatalf("trial %d %s q=%v rank %d: %+v vs %+v",
							trial, sc.Name(), q, i, a[i], b[i])
					}
				}
			}
		}
	}
}

func randomCollection(t *testing.T, rng *rand.Rand, nDocs, nMesh, nWords int) (*index.Index, []string, []string) {
	t.Helper()
	meshTerms := make([]string, nMesh)
	for i := range meshTerms {
		meshTerms[i] = fmt.Sprintf("m%02d", i)
	}
	words := make([]string, nWords)
	for i := range words {
		words[i] = fmt.Sprintf("w%02d", i)
	}
	docs := make([]index.Document, nDocs)
	for d := range docs {
		var mesh, content []string
		for _, m := range meshTerms {
			if rng.Float64() < 0.3 {
				mesh = append(mesh, m)
			}
		}
		for _, w := range words {
			for k := rng.Intn(4); k > 0; k-- {
				content = append(content, w)
			}
		}
		if len(content) == 0 {
			content = append(content, "pad")
		}
		docs[d] = index.Document{Fields: map[string]string{
			"title":   "t",
			"content": strings.Join(content, " "),
			"mesh":    strings.Join(mesh, " "),
		}}
	}
	schema := index.Schema{
		Fields: []index.FieldSpec{
			{Name: "title", Analyzer: analysis.Keyword(), Stored: true},
			{Name: "content", Analyzer: analysis.Keyword()},
			{Name: "mesh", Analyzer: analysis.Keyword()},
		},
		PredicateField: "mesh",
		ContentField:   "content",
	}
	ix, err := index.BuildFrom(schema, 1+rng.Intn(64), docs)
	if err != nil {
		t.Fatal(err)
	}
	return ix, meshTerms, words
}

func randomQuery(rng *rand.Rand, meshTerms, words []string) query.Query {
	nk := 1 + rng.Intn(3)
	nc := 1 + rng.Intn(3)
	q := query.Query{}
	for i := 0; i < nk; i++ {
		q.Keywords = append(q.Keywords, words[rng.Intn(len(words))])
	}
	for i := 0; i < nc; i++ {
		q.Context = append(q.Context, meshTerms[rng.Intn(len(meshTerms))])
	}
	return q
}

func TestExplain(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	tbl := widetable.FromIndex(ix, []string{"pancreas"})
	v, err := views.Materialize(tbl, []string{"digestive_system"}, []string{"pancreas"})
	if err != nil {
		t.Fatal(err)
	}
	e := New(ix, views.NewCatalog([]*views.View{v}, 100, 4096), Options{})

	ex, err := e.Explain(query.MustParse("pancreas leukemia | digestive_system"))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Plan != PlanView {
		t.Errorf("Plan = %s", ex.Plan)
	}
	if len(ex.TrackedKeywords) != 1 || ex.TrackedKeywords[0] != "pancreas" {
		t.Errorf("Tracked = %v", ex.TrackedKeywords)
	}
	if len(ex.FallbackKeywords) != 1 || ex.FallbackKeywords[0] != "leukemia" {
		t.Errorf("Fallback = %v", ex.FallbackKeywords)
	}
	if ex.StraightforwardBound != 302*3 {
		t.Errorf("Bound = %d, want %d", ex.StraightforwardBound, 302*3)
	}
	if !strings.Contains(ex.String(), "plan: view") {
		t.Errorf("String = %q", ex.String())
	}

	// Conventional for context-free queries.
	ex, err = e.Explain(query.MustParse("pancreas"))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Plan != PlanConventional {
		t.Errorf("Plan = %s", ex.Plan)
	}
	// Straightforward for uncovered contexts.
	ex, err = e.Explain(query.MustParse("pancreas | neoplasms"))
	if err != nil {
		t.Fatal(err)
	}
	if ex.Plan != PlanStraightforward {
		t.Errorf("Plan = %s", ex.Plan)
	}
	// Analysis errors propagate.
	if _, err := e.Explain(query.Query{}); err == nil {
		t.Error("empty query accepted")
	}
}
