package core

import (
	"fmt"
	"strings"

	"csrank/internal/query"
)

// Explanation describes how the engine would evaluate a query, without
// executing it — the debugging surface for "why was this plan chosen?".
type Explanation struct {
	// Plan is the strategy Search would pick.
	Plan Plan
	// AnalyzedKeywords are the content terms after analysis.
	AnalyzedKeywords []string
	// Context is the normalized context specification.
	Context []string
	// ViewK is the chosen view's keyword set (nil if no view).
	ViewK []string
	// ViewSize is the chosen view's non-empty tuple count.
	ViewSize int
	// TrackedKeywords and FallbackKeywords split the analyzed keywords by
	// whether the chosen view stores their df/tc columns.
	TrackedKeywords  []string
	FallbackKeywords []string
	// ContextListLengths are the |L_m| of the context predicates — the
	// terms of the straightforward plan's cost bound.
	ContextListLengths []int
	// StraightforwardBound is the Proposition 3.1 cost bound
	// (n+1)·Σ|L_m| the cost-based policy compares against.
	StraightforwardBound int64
}

// Explain analyzes q and reports the evaluation plan Search would choose,
// with the inputs to that choice.
func (e *Engine) Explain(q query.Query) (Explanation, error) {
	var ex Explanation
	a, err := e.analyze(q)
	if err != nil {
		return ex, err
	}
	ex.AnalyzedKeywords = a.kwTerms
	ex.Context = a.context
	if len(a.context) == 0 {
		ex.Plan = PlanConventional
		return ex, nil
	}
	_, ctx := e.lists(a)
	var bound int64
	for _, l := range ctx {
		n := 0
		if l != nil {
			n = l.Len()
		}
		ex.ContextListLengths = append(ex.ContextListLengths, n)
		bound += int64(n)
	}
	ex.StraightforwardBound = bound * int64(len(a.kwTerms)+1)

	ex.Plan = PlanStraightforward
	if cat := e.catalog.Load(); cat != nil {
		if v := cat.Match(a.context); v != nil && e.viewWorthwhile(v, a, ctx) {
			ex.Plan = PlanView
			ex.ViewK = v.K()
			ex.ViewSize = v.Size()
			for _, w := range a.kwTerms {
				if v.TracksWord(w) {
					ex.TrackedKeywords = append(ex.TrackedKeywords, w)
				} else {
					ex.FallbackKeywords = append(ex.FallbackKeywords, w)
				}
			}
		}
	}
	return ex, nil
}

// String renders the explanation as a compact multi-line report.
func (ex Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %s\n", ex.Plan)
	fmt.Fprintf(&b, "keywords: %s\n", strings.Join(ex.AnalyzedKeywords, " "))
	if len(ex.Context) > 0 {
		fmt.Fprintf(&b, "context: %s (list lengths %v, straightforward bound %d)\n",
			strings.Join(ex.Context, " "), ex.ContextListLengths, ex.StraightforwardBound)
	}
	if ex.Plan == PlanView {
		fmt.Fprintf(&b, "view: |K|=%d size=%d tracked=%v fallback=%v\n",
			len(ex.ViewK), ex.ViewSize, ex.TrackedKeywords, ex.FallbackKeywords)
	}
	return b.String()
}
