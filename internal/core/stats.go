package core

import (
	"csrank/internal/postings"
	"csrank/internal/ranking"
	"csrank/internal/views"
)

// statsStraightforward computes S_c(D_P) with the Figure 3 plan: the
// context is materialized by intersecting the predicate lists; γ_count
// and γ_sum aggregations over it yield |D_P| and len(D_P); each keyword's
// df(w, D_P) and tc(w, D_P) come from intersecting L_w with the context
// lists. Its cost is bounded by O(Σ |L_m|) (Proposition 3.1).
func (e *Engine) statsStraightforward(a analyzed, kw, ctx []*postings.List, st *postings.Stats) ranking.CollectionStats {
	cs := ranking.CollectionStats{
		DF: make(map[string]int64, len(a.kwTerms)),
		TC: make(map[string]int64, len(a.kwTerms)),
	}
	// L_m1 ∩ L_m2 with aggregations, fused: the count-only conjunction
	// kernel computes γ_count and γ_sum (|D_P| and len(D_P)) in one pass —
	// a word-AND + popcount over dense predicate containers — without
	// materializing the context.
	cs.N, cs.TotalLen = postings.CountSum(ctx, func(d uint32) int64 {
		return e.ix.FieldLen(d, e.contentField)
	}, st)
	// L_wi ∩ L_m1 ∩ L_m2 per keyword — each intersection is independent,
	// so keywordStatsBatch fans them out when parallelism is enabled.
	idxs := make([]int, len(a.kwTerms))
	for i := range idxs {
		idxs[i] = i
	}
	e.keywordStatsBatch(idxs, kw, ctx, st, func(i int, df, tc int64) {
		cs.DF[a.kwTerms[i]] = df
		cs.TC[a.kwTerms[i]] = tc
	})
	return cs
}

// keywordContextStats computes df(w, D_P) and tc(w, D_P) by intersecting
// w's posting list with the context lists. The intersection starts from
// the most selective list (Intersect orders by length), so this is cheap
// when w is rare — the argument §6.2 makes for not storing df columns of
// infrequent keywords.
func (e *Engine) keywordContextStats(l *postings.List, ctx []*postings.List, st *postings.Stats) (df, tc int64) {
	// CountTFSum runs the same cursor-driven conjunction Intersect would,
	// but folds df and tc in as it goes instead of materializing the
	// DocID/TF slices.
	return postings.CountTFSum(l, ctx, st)
}

// statsFromView answers S_c(D_P) from a materialized view: |D_P|,
// len(D_P) and the df/tc of every tracked keyword come from one scan of
// the view's groups; untracked keywords (df < T_C) fall back to
// query-time intersections. Returns the statistics and the number of
// fallback keywords.
func (e *Engine) statsFromView(v *views.View, a analyzed, kw, ctx []*postings.List, st *postings.Stats) (ranking.CollectionStats, int, error) {
	ans, err := v.Answer(a.context, a.kwTerms, st)
	if err != nil {
		return ranking.CollectionStats{}, 0, err
	}
	cs := ranking.CollectionStats{
		N:        ans.Count,
		TotalLen: ans.Len,
		DF:       ans.DF,
		TC:       ans.TC,
	}
	var fallback []int
	for i, w := range a.kwTerms {
		if !v.TracksWord(w) {
			fallback = append(fallback, i)
		}
	}
	e.keywordStatsBatch(fallback, kw, ctx, st, func(i int, df, tc int64) {
		cs.DF[a.kwTerms[i]] = df
		cs.TC[a.kwTerms[i]] = tc
	})
	return cs, len(fallback), nil
}

// viewWorthwhile applies the cost-based plan choice: with CostBased off,
// any usable view wins (the paper's policy); with it on, the view's scan
// cost must undercut the straightforward plan's Proposition 3.1 bound of
// (n+1)·Σ|L_m| — one context materialization plus one keyword-list
// intersection pass per keyword.
func (e *Engine) viewWorthwhile(v *views.View, a analyzed, ctx []*postings.List) bool {
	if !e.costBased {
		return true
	}
	var straightBound int64
	for _, l := range ctx {
		if l != nil {
			straightBound += int64(l.Len())
		}
	}
	straightBound *= int64(len(a.kwTerms) + 1)
	return int64(v.Size()) < straightBound
}

// statsFromCache assembles collection statistics from the statistics
// cache, computing and back-filling any keywords the cached entry lacks:
// view-tracked keywords are answered in one view scan, the rest by
// (possibly fanned-out) intersections. ok is false on a cache miss.
func (e *Engine) statsFromCache(a analyzed, kw, ctx []*postings.List, useViews bool, st *ExecStats) (ranking.CollectionStats, bool) {
	n, totalLen, words, ok := e.cache.lookup(a.context, a.kwTerms)
	if !ok {
		return ranking.CollectionStats{}, false
	}
	st.CacheHit = true
	cs := ranking.CollectionStats{
		N:        n,
		TotalLen: totalLen,
		DF:       make(map[string]int64, len(a.kwTerms)),
		TC:       make(map[string]int64, len(a.kwTerms)),
	}
	var view *views.View
	if useViews && e.catalog != nil {
		view = e.catalog.Match(a.context)
	}
	var missTracked []string // view-tracked keywords, one Answer scan
	var missTrackedIdx []int // their positions, for the error fallback
	var missIntersect []int  // the rest, by intersection
	for i, w := range a.kwTerms {
		if v, hit := words[w]; hit {
			cs.DF[w] = v.df
			cs.TC[w] = v.tc
			continue
		}
		if view != nil && view.TracksWord(w) {
			missTracked = append(missTracked, w)
			missTrackedIdx = append(missTrackedIdx, i)
		} else {
			missIntersect = append(missIntersect, i)
		}
	}
	var filled map[string]dfTC
	record := func(w string, df, tc int64) {
		cs.DF[w] = df
		cs.TC[w] = tc
		if filled == nil {
			filled = make(map[string]dfTC)
		}
		filled[w] = dfTC{df: df, tc: tc}
	}
	if len(missTracked) > 0 {
		if ans, err := view.Answer(a.context, missTracked, &st.Stats); err == nil {
			for _, w := range missTracked {
				record(w, ans.DF[w], ans.TC[w])
			}
		} else {
			// Unusable view (e.g. concurrent catalog change): intersect.
			missIntersect = append(missIntersect, missTrackedIdx...)
		}
	}
	e.keywordStatsBatch(missIntersect, kw, ctx, &st.Stats, func(i int, df, tc int64) {
		record(a.kwTerms[i], df, tc)
	})
	if filled != nil {
		e.cache.store(a.context, n, totalLen, filled)
	}
	return cs, true
}

// cacheStore records freshly computed statistics for future queries in
// the same context.
func (e *Engine) cacheStore(a analyzed, cs ranking.CollectionStats) {
	if e.cache == nil {
		return
	}
	words := make(map[string]dfTC, len(cs.DF))
	for _, w := range a.kwTerms {
		words[w] = dfTC{df: cs.DF[w], tc: cs.TC[w]}
	}
	e.cache.store(a.context, cs.N, cs.TotalLen, words)
}

// ContextSize returns |D_P| for a context specification, answered from
// the smallest usable view when possible and by intersection otherwise.
// Workload generators use it to classify contexts against T_C.
func (e *Engine) ContextSize(context []string) int64 {
	var norm []string
	seen := map[string]bool{}
	for _, m := range context {
		for _, term := range e.predAn.Analyze(m) {
			if !seen[term] {
				seen[term] = true
				norm = append(norm, term)
			}
		}
	}
	if len(norm) == 0 {
		return e.globalN
	}
	if e.catalog != nil {
		if v := e.catalog.Match(norm); v != nil {
			if ans, err := v.Answer(norm, nil, nil); err == nil {
				return ans.Count
			}
		}
	}
	lists := make([]*postings.List, len(norm))
	for i, m := range norm {
		lists[i] = e.ix.Postings(e.predField, m)
	}
	return postings.IntersectionSize(lists, nil)
}
