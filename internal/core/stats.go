package core

import (
	"context"
	"errors"

	"csrank/internal/postings"
	"csrank/internal/ranking"
	"csrank/internal/views"
)

// contextStats computes S_c(D_P): from the statistics cache when one is
// configured, else from the smallest usable materialized view (with
// per-keyword intersection fallback), else with the straightforward
// Figure 3 plan. cat is the catalog snapshot the query loaded — the one
// pointer every view match and cache access of this execution uses, so
// statistics never mix catalog states. Freshly computed exact statistics
// are cached; a caller that later substitutes approximate statistics
// never reaches the store, so the cache only ever holds exact values.
func (e *Engine) contextStats(ctx context.Context, a analyzed, kw, preds []*postings.List, useViews bool, st *ExecStats, cat *views.Catalog) (ranking.CollectionStats, error) {
	if e.cache != nil {
		cs, cached, err := e.statsFromCache(ctx, a, kw, preds, useViews, st, cat)
		if err != nil {
			return ranking.CollectionStats{}, err
		}
		if cached {
			return cs, nil
		}
	}
	var cs ranking.CollectionStats
	var err error
	if useViews && cat != nil {
		if v := cat.Match(a.context); v != nil && e.viewWorthwhile(v, a, preds) {
			st.Plan = PlanView
			st.UsedView = true
			st.ViewSize = v.Size()
			cs, st.FallbackKeywords, err = e.statsFromView(ctx, v, a, kw, preds, &st.Stats)
			if err != nil {
				return ranking.CollectionStats{}, err
			}
		}
	}
	if !st.UsedView {
		cs, err = e.statsStraightforward(ctx, a, kw, preds, &st.Stats)
		if err != nil {
			return ranking.CollectionStats{}, err
		}
	}
	e.cacheStore(a, cs, cat)
	return cs, nil
}

// approximateStats assembles degraded-mode context statistics after the
// statistics budget expired before the exact S_c(D_P) computation
// finished. A usable view still answers in O(ViewSize) with no
// inverted-list work, so tracked keywords stay exact and only untracked
// ones are estimated — the whole-collection df/tc scaled to the context
// cardinality, clamped so a globally present keyword never reaches the
// scorer with a zero denominator. Without a usable view, the
// whole-collection statistics stand in unscaled: exactly the conventional
// baseline's ranking, which keeps every score finite and well-defined.
// The result is approximate by construction and is never cached.
func (e *Engine) approximateStats(a analyzed, useViews bool, st *ExecStats, cat *views.Catalog) ranking.CollectionStats {
	cs := ranking.CollectionStats{
		DF: make(map[string]int64, len(a.kwTerms)),
		TC: make(map[string]int64, len(a.kwTerms)),
	}
	if useViews && cat != nil {
		if v := cat.Match(a.context); v != nil {
			if ans, err := v.Answer(a.context, a.kwTerms, &st.Stats); err == nil {
				st.Plan = PlanView
				st.UsedView = true
				st.ViewSize = v.Size()
				ratio := float64(ans.Count) / float64(e.globalN)
				fallback := 0
				for _, w := range a.kwTerms {
					if v.TracksWord(w) {
						cs.DF[w] = ans.DF[w]
						cs.TC[w] = ans.TC[w]
						continue
					}
					fallback++
					cs.DF[w] = scaleEstimate(e.ix.DF(e.contentField, w), ratio, ans.Count)
					cs.TC[w] = scaleEstimate(e.ix.TotalTF(e.contentField, w), ratio, 0)
				}
				st.FallbackKeywords = fallback
				cs.N, cs.TotalLen = ans.Count, ans.Len
				return cs
			}
		}
	}
	// No usable view: whole-collection statistics, the conventional
	// baseline's ranking inputs.
	st.Plan = PlanStraightforward
	st.UsedView = false
	st.ViewSize = 0
	st.FallbackKeywords = len(a.kwTerms)
	cs.N, cs.TotalLen = e.globalN, e.globalLen
	for _, w := range a.kwTerms {
		cs.DF[w] = e.ix.DF(e.contentField, w)
		cs.TC[w] = e.ix.TotalTF(e.contentField, w)
	}
	return cs
}

// scaleEstimate scales a whole-collection count down to a context of
// ratio = |D_P| / N, clamping into [1, max] (when max > 0) so scorers
// never divide by zero for a keyword that exists globally.
func scaleEstimate(global int64, ratio float64, max int64) int64 {
	if global == 0 {
		return 0
	}
	est := int64(float64(global)*ratio + 0.5)
	if est < 1 {
		est = 1
	}
	if max > 0 && est > max {
		est = max
	}
	return est
}

// statsStraightforward computes S_c(D_P) with the Figure 3 plan: the
// context is materialized by intersecting the predicate lists; γ_count
// and γ_sum aggregations over it yield |D_P| and len(D_P); each keyword's
// df(w, D_P) and tc(w, D_P) come from intersecting L_w with the context
// lists. Its cost is bounded by O(Σ |L_m|) (Proposition 3.1).
func (e *Engine) statsStraightforward(ctx context.Context, a analyzed, kw, preds []*postings.List, st *postings.Stats) (ranking.CollectionStats, error) {
	cs := ranking.CollectionStats{
		DF: make(map[string]int64, len(a.kwTerms)),
		TC: make(map[string]int64, len(a.kwTerms)),
	}
	// L_m1 ∩ L_m2 with aggregations, fused: the count-only conjunction
	// kernel computes γ_count and γ_sum (|D_P| and len(D_P)) in one pass —
	// a word-AND + popcount over dense predicate containers — without
	// materializing the context.
	var err error
	cs.N, cs.TotalLen, err = postings.CountSumCtx(ctx, preds, func(d uint32) int64 {
		return e.ix.FieldLen(d, e.contentField)
	}, st)
	if err != nil {
		return cs, err
	}
	// L_wi ∩ L_m1 ∩ L_m2 per keyword — each intersection is independent,
	// so keywordStatsBatch fans them out when parallelism is enabled.
	idxs := make([]int, len(a.kwTerms))
	for i := range idxs {
		idxs[i] = i
	}
	err = e.keywordStatsBatch(ctx, idxs, kw, preds, st, func(i int, df, tc int64) {
		cs.DF[a.kwTerms[i]] = df
		cs.TC[a.kwTerms[i]] = tc
	})
	return cs, err
}

// keywordContextStats computes df(w, D_P) and tc(w, D_P) by intersecting
// w's posting list with the context lists. The intersection starts from
// the most selective list (Intersect orders by length), so this is cheap
// when w is rare — the argument §6.2 makes for not storing df columns of
// infrequent keywords.
func (e *Engine) keywordContextStats(ctx context.Context, l *postings.List, preds []*postings.List, st *postings.Stats) (df, tc int64, err error) {
	// CountTFSum runs the same cursor-driven conjunction Intersect would,
	// but folds df and tc in as it goes instead of materializing the
	// DocID/TF slices.
	return postings.CountTFSumCtx(ctx, l, preds, st)
}

// statsFromView answers S_c(D_P) from a materialized view: |D_P|,
// len(D_P) and the df/tc of every tracked keyword come from one scan of
// the view's groups; untracked keywords (df < T_C) fall back to
// query-time intersections. Returns the statistics and the number of
// fallback keywords.
func (e *Engine) statsFromView(ctx context.Context, v *views.View, a analyzed, kw, preds []*postings.List, st *postings.Stats) (ranking.CollectionStats, int, error) {
	ans, err := v.AnswerCtx(ctx, a.context, a.kwTerms, st)
	if err != nil {
		return ranking.CollectionStats{}, 0, err
	}
	cs := ranking.CollectionStats{
		N:        ans.Count,
		TotalLen: ans.Len,
		DF:       ans.DF,
		TC:       ans.TC,
	}
	var fallback []int
	for i, w := range a.kwTerms {
		if !v.TracksWord(w) {
			fallback = append(fallback, i)
		}
	}
	if err := e.keywordStatsBatch(ctx, fallback, kw, preds, st, func(i int, df, tc int64) {
		cs.DF[a.kwTerms[i]] = df
		cs.TC[a.kwTerms[i]] = tc
	}); err != nil {
		return ranking.CollectionStats{}, len(fallback), err
	}
	return cs, len(fallback), nil
}

// viewWorthwhile applies the cost-based plan choice: with CostBased off,
// any usable view wins (the paper's policy); with it on, the view's scan
// cost must undercut the straightforward plan's Proposition 3.1 bound of
// (n+1)·Σ|L_m| — one context materialization plus one keyword-list
// intersection pass per keyword.
func (e *Engine) viewWorthwhile(v *views.View, a analyzed, preds []*postings.List) bool {
	if !e.costBased {
		return true
	}
	var straightBound int64
	for _, l := range preds {
		if l != nil {
			straightBound += int64(l.Len())
		}
	}
	straightBound *= int64(len(a.kwTerms) + 1)
	return int64(v.Size()) < straightBound
}

// statsFromCache assembles collection statistics from the statistics
// cache, computing and back-filling any keywords the cached entry lacks:
// view-tracked keywords are answered in one view scan, the rest by
// (possibly fanned-out) intersections. cached is false on a cache miss.
func (e *Engine) statsFromCache(ctx context.Context, a analyzed, kw, preds []*postings.List, useViews bool, st *ExecStats, cat *views.Catalog) (ranking.CollectionStats, bool, error) {
	n, totalLen, words, ok := e.cache.lookup(a.context, a.kwTerms, cat)
	if !ok {
		return ranking.CollectionStats{}, false, nil
	}
	st.CacheHit = true
	cs := ranking.CollectionStats{
		N:        n,
		TotalLen: totalLen,
		DF:       make(map[string]int64, len(a.kwTerms)),
		TC:       make(map[string]int64, len(a.kwTerms)),
	}
	var view *views.View
	if useViews && cat != nil {
		view = cat.Match(a.context)
	}
	var missTracked []string // view-tracked keywords, one Answer scan
	var missTrackedIdx []int // their positions, for the error fallback
	var missIntersect []int  // the rest, by intersection
	for i, w := range a.kwTerms {
		if v, hit := words[w]; hit {
			cs.DF[w] = v.df
			cs.TC[w] = v.tc
			continue
		}
		if view != nil && view.TracksWord(w) {
			missTracked = append(missTracked, w)
			missTrackedIdx = append(missTrackedIdx, i)
		} else {
			missIntersect = append(missIntersect, i)
		}
	}
	var filled map[string]dfTC
	record := func(w string, df, tc int64) {
		cs.DF[w] = df
		cs.TC[w] = tc
		if filled == nil {
			filled = make(map[string]dfTC)
		}
		filled[w] = dfTC{df: df, tc: tc}
	}
	if len(missTracked) > 0 {
		ans, err := view.AnswerCtx(ctx, a.context, missTracked, &st.Stats)
		switch {
		case err == nil:
			for _, w := range missTracked {
				record(w, ans.DF[w], ans.TC[w])
			}
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return ranking.CollectionStats{}, false, err
		default:
			// Unusable view (e.g. concurrent catalog change): intersect.
			missIntersect = append(missIntersect, missTrackedIdx...)
		}
	}
	if err := e.keywordStatsBatch(ctx, missIntersect, kw, preds, &st.Stats, func(i int, df, tc int64) {
		record(a.kwTerms[i], df, tc)
	}); err != nil {
		return ranking.CollectionStats{}, false, err
	}
	if filled != nil {
		e.cache.store(a.context, n, totalLen, filled, cat)
	}
	return cs, true, nil
}

// cacheStore records freshly computed statistics for future queries in
// the same context running on the same catalog.
func (e *Engine) cacheStore(a analyzed, cs ranking.CollectionStats, cat *views.Catalog) {
	if e.cache == nil {
		return
	}
	words := make(map[string]dfTC, len(cs.DF))
	for _, w := range a.kwTerms {
		words[w] = dfTC{df: cs.DF[w], tc: cs.TC[w]}
	}
	e.cache.store(a.context, cs.N, cs.TotalLen, words, cat)
}

// ContextSize returns |D_P| for a context specification, answered from
// the smallest usable view when possible and by intersection otherwise.
// Workload generators use it to classify contexts against T_C.
func (e *Engine) ContextSize(context []string) int64 {
	var norm []string
	seen := map[string]bool{}
	for _, m := range context {
		for _, term := range e.predAn.Analyze(m) {
			if !seen[term] {
				seen[term] = true
				norm = append(norm, term)
			}
		}
	}
	if len(norm) == 0 {
		return e.globalN
	}
	if cat := e.catalog.Load(); cat != nil {
		if v := cat.Match(norm); v != nil {
			if ans, err := v.Answer(norm, nil, nil); err == nil {
				return ans.Count
			}
		}
	}
	lists := make([]*postings.List, len(norm))
	for i, m := range norm {
		lists[i] = e.ix.Postings(e.predField, m)
	}
	return postings.IntersectionSize(lists, nil)
}
