package core

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"csrank/internal/postings"
	"csrank/internal/ranking"
)

// Block-max dynamic pruning: safe top-k scoring that skips documents
// which cannot rank. The exhaustive path materializes the full
// conjunction and scores every member; the pruned path walks the same
// lists with bound-aware cursors and maintains the running top-k
// threshold τ (the k-th best score seen so far). Work is skipped at two
// granularities, both strictly safe:
//
//   - container level: each keyword list carries per-2^16-chunk
//     (MaxTF, MinDocLen) metadata (postings.ChunkBound). Summing every
//     keyword's per-container score ceiling bounds any document the
//     aligned container range can hold; when that sum is < τ the whole
//     range is skipped without touching a posting.
//   - document level: when the driver (shortest) list is a keyword, a
//     staged check runs first — the driver's summand bound at its actual
//     tf plus the other keywords' container ceilings — skipping hopeless
//     candidates before any other cursor is probed. For candidates that
//     survive and match the conjunction, per-term bounds are accumulated
//     at the document's actual term frequencies in descending
//     list-ceiling order (the MaxScore ordering: with conjunctive
//     semantics every list is "essential" for candidate generation, so
//     the essential/non-essential split degenerates to this
//     bound-evaluation order plus the suffix bound below). After each
//     term the remaining terms are bounded by the suffix sum of their
//     container ceilings; once the partial sum plus suffix drops below τ
//     the document is skipped before its score — and its log-heavy
//     per-term math — is computed.
//
// Safety argument (bit-identical top-k): τ is only read from heaps
// holding ≥ k results, so at any moment at least k already-scored
// documents score ≥ τ, hence the final k-th best score ≥ τ. Skipping
// requires UpperBound < τ strictly, and Score ≤ UpperBound
// (ranking.BoundedScorer's contract), so every skipped document scores
// strictly below the final k-th best — it cannot appear in the top k
// even under the DocID tie-break, which only arbitrates equal scores.
// Documents that are scored produce exactly the exhaustive path's
// floats: term frequencies come from the same lists in the same
// canonical order, and ScoreIndexed runs with the same statistics.
//
// The Score ≤ UpperBound contract holds in exact arithmetic, but the two
// sides are computed by different floating-point expressions (different
// association, different summation order), so the computed bound can
// land a few ulps BELOW the computed score. That matters precisely at
// ties: when a document's score equals τ bit-for-bit (e.g. an identical
// twin in another partition already raised τ to it), a bound one ulp
// under τ would wrongly skip it and break the DocID tie-break. Every
// skip comparison therefore inflates the bound by boundFPMargin times
// the sum of the summands' magnitudes — ~100× the worst-case
// accumulated rounding drift of these expressions (tens of ops, each
// within 2⁻⁵³ relative), yet far below any score gap a differing (tf,
// len) can produce, so pruning power is unaffected.
//
// Ordering constraint: bounds are functions of the CollectionStats the
// query ranks with. Under context-sensitive evaluation that is S_c(D_P),
// so the pruned path runs strictly after the statistics phase — the
// exhaustive path's stats/result-set overlap does not apply (see
// ranking/bounds.go).

// PruningStats counts what dynamic pruning did during one execution.
// All zero when pruning was off or ineligible and Active is false.
type PruningStats struct {
	// Active reports that the pruned scoring path executed (it may still
	// have skipped nothing if the bounds never dropped below τ).
	Active bool
	// ContainersSkipped counts aligned container ranges dismissed
	// wholesale by the summed per-container ceilings.
	ContainersSkipped int64
	// ContainersSkippedUndecoded counts, among the cursors party to those
	// wholesale dismissals, the containers whose on-disk block was never
	// decompressed: the bound came from the mapped block directory alone,
	// so skipping cost zero payload I/O (always 0 on heap indexes, where
	// every container is resident by definition).
	ContainersSkippedUndecoded int64
	// DocsSkipped counts candidate documents dismissed by a
	// document-level bound without being scored. When the driver list is
	// a keyword, its bound is checked before the conjunction probe, so
	// some skipped candidates may lie outside the conjunction entirely.
	DocsSkipped int64
	// BoundChecks counts document-level bound evaluations (each may or
	// may not lead to a skip); the ratio DocsSkipped/BoundChecks is the
	// pruning hit rate.
	BoundChecks int64
}

// add merges a worker's counters (Active is sticky).
func (p *PruningStats) add(o PruningStats) {
	p.Active = p.Active || o.Active
	p.ContainersSkipped += o.ContainersSkipped
	p.ContainersSkippedUndecoded += o.ContainersSkippedUndecoded
	p.DocsSkipped += o.DocsSkipped
	p.BoundChecks += o.BoundChecks
}

// sharedThreshold is the cross-partition top-k threshold: the maximum
// over all partitions' published full-heap roots. Stored as float64
// bits but compared as float64 (raw-bit ordering is wrong for negative
// scores, which language-model scorers produce routinely).
type sharedThreshold struct {
	bits atomic.Uint64
}

func newSharedThreshold() *sharedThreshold {
	s := &sharedThreshold{}
	s.bits.Store(math.Float64bits(math.Inf(-1)))
	return s
}

func (s *sharedThreshold) load() float64 {
	return math.Float64frombits(s.bits.Load())
}

// raise lifts the threshold to v if v is higher; lock-free CAS loop.
func (s *sharedThreshold) raise(v float64) {
	for {
		old := s.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if s.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// boundFPMargin scales the magnitude-proportional inflation applied to
// every pruning bound before it is compared against τ (see the package
// comment's safety argument): skip only when bound + boundFPMargin·Σ|summand|
// < τ. Worst-case floating-point drift between the bound and score
// expressions is ~10⁻¹⁴ relative to the summand magnitudes; 10⁻¹² keeps
// two orders of magnitude of headroom.
const boundFPMargin = 1e-12

// memoCap bounds the per-term tf → UpperBound memo table: term
// frequencies at or below it hit the table, rarer larger ones compute
// directly. Tables reset at container granularity (MinDocLen changes).
const memoCap = 256

// prunedEligible reports whether the pruned path can serve this query:
// pruning on, a real top-k (k > 0), a scorer exposing both the bound
// and the indexed fast path (all five built-ins), and bound metadata on
// every keyword list. Any nil or empty list means an empty conjunction,
// which the exhaustive path already handles in O(1).
func (e *Engine) prunedEligible(kw, preds []*postings.List, k int) bool {
	if !e.pruning || k <= 0 {
		return false
	}
	if _, ok := e.scorer.(ranking.BoundedScorer); !ok {
		return false
	}
	if _, ok := e.scorer.(ranking.IndexedScorer); !ok {
		return false
	}
	for _, l := range kw {
		if l == nil || l.Len() == 0 || !l.HasBounds() {
			return false
		}
	}
	for _, l := range preds {
		if l == nil || l.Len() == 0 {
			return false
		}
	}
	return true
}

// prunedQuery is the per-query immutable state shared by all pruned
// scoring workers.
type prunedQuery struct {
	qs      ranking.QueryStats
	cs      ranking.CollectionStats
	bounded ranking.BoundedScorer
	indexed ranking.IndexedScorer
	// all holds the keyword lists (first nk entries, aligned with
	// a.kwTerms so cursor TFs fill the canonical tf slice) followed by
	// the predicate lists.
	all []*postings.List
	nk  int
	// termQ/termC are single-term projections of qs/cs: UpperBound over
	// termQ[i] yields keyword i's summand ceiling, and the full bound is
	// the sum of the per-term ceilings (every built-in formula is such a
	// sum).
	termQ []ranking.QueryStats
	termC []ranking.CollectionStats
	// order lists keyword indices by descending list-level ceiling —
	// the MaxScore evaluation order for the document-level suffix bound.
	order []int
	// seekOrder lists the non-driver cursor indices (into all) by
	// ascending list length, the cheapest probing order; driver is the
	// shortest list's index.
	seekOrder []int
	driver    int
	k         int
}

// termUpperBound evaluates one keyword's summand ceiling, routing
// through the int32 BoundedScorer surface. A term frequency beyond
// int32 cannot be represented there, so it disables pruning for the
// container (+Inf) rather than risk an under-estimate.
func termUpperBound(b ranking.BoundedScorer, q ranking.QueryStats, maxTF uint32, minLen int32, c ranking.CollectionStats) float64 {
	if maxTF > math.MaxInt32 {
		return math.Inf(1)
	}
	return b.UpperBound(q, int32(maxTF), minLen, c)
}

// newPrunedQuery assembles the shared pruned-query state. Caller has
// verified prunedEligible.
func (e *Engine) newPrunedQuery(a analyzed, kw, preds []*postings.List, cs ranking.CollectionStats, k int) *prunedQuery {
	nk := len(kw)
	pq := &prunedQuery{
		qs:      ranking.NewQueryStats(a.kwStream),
		cs:      cs,
		bounded: e.scorer.(ranking.BoundedScorer),
		indexed: e.scorer.(ranking.IndexedScorer),
		all:     make([]*postings.List, 0, nk+len(preds)),
		nk:      nk,
		termQ:   make([]ranking.QueryStats, nk),
		termC:   make([]ranking.CollectionStats, nk),
		order:   make([]int, nk),
		k:       k,
	}
	pq.all = append(pq.all, kw...)
	pq.all = append(pq.all, preds...)
	// a.kwTerms is distinct first-occurrence order — the canonical
	// summation order ScoreIndexed uses.
	pq.cs.IndexTerms(a.kwTerms)
	listUB := make([]float64, nk)
	for i, w := range a.kwTerms {
		rep := make([]string, pq.qs.TQ[w])
		for j := range rep {
			rep[j] = w
		}
		pq.termQ[i] = ranking.NewQueryStats(rep)
		pq.termC[i] = ranking.CollectionStats{
			N:        cs.N,
			TotalLen: cs.TotalLen,
			DF:       map[string]int64{w: cs.DF[w]},
			TC:       map[string]int64{w: cs.TC[w]},
		}
		listUB[i] = termUpperBound(pq.bounded, pq.termQ[i], kw[i].MaxTF(), kw[i].MinDocLen(), pq.termC[i])
		pq.order[i] = i
	}
	sort.SliceStable(pq.order, func(x, y int) bool {
		return listUB[pq.order[x]] > listUB[pq.order[y]]
	})
	pq.driver = 0
	for i, l := range pq.all {
		if l.Len() < pq.all[pq.driver].Len() {
			pq.driver = i
		}
	}
	for i := range pq.all {
		if i != pq.driver {
			pq.seekOrder = append(pq.seekOrder, i)
		}
	}
	sort.SliceStable(pq.seekOrder, func(x, y int) bool {
		return pq.all[pq.seekOrder[x]].Len() < pq.all[pq.seekOrder[y]].Len()
	})
	return pq
}

// threshold is the current skip threshold: the best of this worker's
// full-heap root and the shared cross-partition threshold; -Inf while
// fewer than k results exist anywhere.
func threshold(top *topK, shared *sharedThreshold) float64 {
	t := math.Inf(-1)
	if top.full() {
		t = top.floor()
	}
	if s := shared.load(); s > t {
		t = s
	}
	return t
}

// prunedWorker is one partition's scoring state.
type prunedWorker struct {
	e       *Engine
	pq      *prunedQuery
	curs    []*postings.BoundCursor
	top     *topK
	shared  *sharedThreshold
	pst     *PruningStats
	matched int

	// Per-container scratch: cUB[i] is keyword i's ceiling over the
	// aligned container range, suffix[j] the sum of cUB over
	// order[j:] with suffixAbs[j] its magnitude counterpart (Σ|cUB|,
	// feeding the FP-drift margin), memo[i] the tf → bound table, eff
	// the range's effective MinDocLen (max over the keyword containers).
	// othersUB/othersAbs bound every keyword except the driver — the
	// staged pre-probe check (see run) uses them when the driver is a
	// keyword list.
	// stagedUB[tf] is the staged check's fully margin-inflated left-hand
	// side for a driver posting with term frequency tf in this container
	// (filled eagerly up to the container's MaxTF, capped at memoCap).
	// mask is its projection at threshold maskTau — bit tf set iff
	// stagedUB[tf] survives — handed to the cursor so runs of hopeless
	// driver postings are dismissed at tf-array scan speed
	// (postings.SkipNonSurvivors); it is rebuilt lazily whenever the
	// cached τ moves (maskTau is NaN-poisoned at container entry).
	cUB       []float64
	suffix    []float64
	suffixAbs []float64
	othersUB  float64
	othersAbs float64
	stagedUB  []float64
	mask      postings.TFMask
	maskTau   float64
	memo      [][]float64
	eff       int32
}

// enterContainer computes the aligned container range's bounds and
// resets the memo tables. Every keyword cursor sits in the container
// based at base. The container's margin-inflated ceiling is
// suffix[0] + boundFPMargin·suffixAbs[0] afterwards.
func (w *prunedWorker) enterContainer() {
	pq := w.pq
	w.eff = math.MinInt32
	for i := 0; i < pq.nk; i++ {
		if b, ok := w.curs[i].ContainerBound(); ok && b.MinDocLen > w.eff {
			w.eff = b.MinDocLen
		}
	}
	for i := 0; i < pq.nk; i++ {
		b, _ := w.curs[i].ContainerBound()
		w.cUB[i] = termUpperBound(pq.bounded, pq.termQ[i], b.MaxTF, w.eff, pq.termC[i])
	}
	w.suffix[pq.nk] = 0
	w.suffixAbs[pq.nk] = 0
	for j := pq.nk - 1; j >= 0; j-- {
		w.suffix[j] = w.suffix[j+1] + w.cUB[pq.order[j]]
		w.suffixAbs[j] = w.suffixAbs[j+1] + math.Abs(w.cUB[pq.order[j]])
	}
	w.othersUB, w.othersAbs = 0, 0
	w.stagedUB = w.stagedUB[:0]
	if pq.driver < pq.nk {
		for i := 0; i < pq.nk; i++ {
			if i != pq.driver {
				w.othersUB += w.cUB[i]
				w.othersAbs += math.Abs(w.cUB[i])
			}
		}
		if b, ok := w.curs[pq.driver].ContainerBound(); ok {
			n := b.MaxTF
			if n > memoCap {
				n = memoCap
			}
			for tf := uint32(0); tf <= n; tf++ {
				tb := termUpperBound(pq.bounded, pq.termQ[pq.driver], tf, w.eff, pq.termC[pq.driver])
				w.stagedUB = append(w.stagedUB, tb+w.othersUB+boundFPMargin*(math.Abs(tb)+w.othersAbs))
			}
		}
	}
	w.maskTau = math.NaN()
	for i := range w.memo {
		w.memo[i] = w.memo[i][:0]
	}
}

// rebuildMask projects stagedUB at threshold tau into the tf survivor
// mask. Frequencies beyond stagedUB's range are implicit survivors
// (TFMask treats tf ≥ 256 as set; a container never holds a tf above
// its own MaxTF, which stagedUB covers up to the memo cap).
func (w *prunedWorker) rebuildMask(tau float64) {
	w.mask.Clear()
	for tf, ub := range w.stagedUB {
		if !(ub < tau) {
			w.mask.Set(uint32(tf))
		}
	}
	w.maskTau = tau
}

// termBound returns keyword i's summand ceiling at its actual term
// frequency in the current container, memoized per (container, tf).
func (w *prunedWorker) termBound(i int, tf uint32) float64 {
	if tf > memoCap {
		return termUpperBound(w.pq.bounded, w.pq.termQ[i], tf, w.eff, w.pq.termC[i])
	}
	m := w.memo[i]
	for len(m) <= int(tf) {
		m = append(m, math.NaN())
	}
	if v := m[tf]; !math.IsNaN(v) {
		w.memo[i] = m
		return v
	}
	v := termUpperBound(w.pq.bounded, w.pq.termQ[i], tf, w.eff, w.pq.termC[i])
	m[tf] = v
	w.memo[i] = m
	return v
}

// run scores the window [lo, hi) of the conjunction (hi exclusive, as
// uint64 so the last window can cover the full docID space). Results
// accumulate into w.top; matched counts the conjunction members
// visited. ctx is polled at container alignment and every
// scoreCheckMask+1 candidate probes.
func (w *prunedWorker) run(ctx context.Context, lo uint32, hi uint64) error {
	pq := w.pq
	for _, c := range w.curs {
		if !c.NextAtLeast(lo) {
			return nil
		}
	}
	driver := w.curs[pq.driver]
	scratch := getScratch(pq.nk)
	defer putScratch(scratch)
	tf := scratch.tf
	probes := 0
	// tau is a locally cached copy of the skip threshold (haveTau: it is
	// above -Inf, i.e. k results exist somewhere). The true threshold
	// only ever rises, and skipping against a stale (lower) value is
	// strictly safe — it can only skip less — so the atomic load and
	// heap peek are paid at container entry, on every heap push, and at
	// the periodic poll, not per candidate. Bound-check counters
	// accumulate in locals for the same reason and flush on return.
	tau := threshold(w.top, w.shared)
	haveTau := !math.IsInf(tau, -1)
	var checks, skips int64
	defer func() {
		w.pst.BoundChecks += checks
		w.pst.DocsSkipped += skips
	}()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Align every cursor into one container range. Seeks can
		// overshoot into later containers, so iterate to a fixed point;
		// positions only move forward, so this terminates.
		var base uint32
		for {
			base = 0
			for _, c := range w.curs {
				if c.Exhausted() {
					return nil
				}
				if b := c.ContainerBase(); b > base {
					base = b
				}
			}
			moved := false
			for _, c := range w.curs {
				if c.ContainerBase() < base {
					if !c.NextAtLeast(base) {
						return nil
					}
					moved = true
				}
			}
			if !moved {
				break
			}
		}
		if uint64(base) >= hi {
			return nil
		}
		rangeEnd := uint64(base) + postings.ContainerSpan
		if rangeEnd > hi {
			rangeEnd = hi
		}

		w.enterContainer()
		tau = threshold(w.top, w.shared)
		haveTau = !math.IsInf(tau, -1)
		if w.suffix[0]+boundFPMargin*w.suffixAbs[0] < tau {
			// No document in this container range can enter the top k:
			// jump every cursor past it. (Documents beyond rangeEnd in a
			// window-truncated container belong to the next partition,
			// which probes them with its own cursors.)
			w.pst.ContainersSkipped++
			alive := true
			for _, c := range w.curs {
				if !c.ContainerResident() {
					// Mapped block dismissed straight off its directory
					// entry — never decompressed.
					w.pst.ContainersSkippedUndecoded++
				}
				if !c.SkipContainer() {
					alive = false
				}
			}
			if !alive {
				return nil
			}
			continue
		}

		// Conjunction scan within [base, rangeEnd). staged: when the
		// driver is itself a keyword list its tf alone (plus the other
		// keywords' container ceilings, folded into stagedUB) bounds the
		// document before any other cursor moves, so runs of hopeless
		// candidates are dismissed by the tf survivor mask at tf-array
		// scan speed — no conjunction probe, no per-posting cursor step.
		// The ContainerBase conjunct is redundant logically (base ≤ DocID
		// always) but decisive physically: when the driver has moved on to
		// a later container whose mapped block is still pending, the base
		// alone proves the range is done — asking DocID would decompress
		// the block this loop exists to avoid touching.
		staged := pq.driver < pq.nk
		for !driver.Exhausted() && uint64(driver.ContainerBase()) < rangeEnd && uint64(driver.DocID()) < rangeEnd {
			probes++
			if probes&scoreCheckMask == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
				tau = threshold(w.top, w.shared)
				haveTau = !math.IsInf(tau, -1)
			}
			if staged && haveTau {
				if tau != w.maskTau {
					w.rebuildMask(tau)
				}
				if n := driver.SkipNonSurvivors(&w.mask); n > 0 {
					checks += int64(n)
					skips += int64(n)
					continue
				}
			}
			d := driver.DocID()
			if driver.Exhausted() {
				// DocID resolution ran off a quarantined tail.
				return nil
			}
			match := true
			for _, i := range pq.seekOrder {
				c := w.curs[i]
				if !c.NextAtLeast(d) {
					return nil
				}
				got := c.DocID()
				if c.Exhausted() {
					return nil
				}
				if got != d {
					if !driver.NextAtLeast(got) {
						return nil
					}
					match = false
					break
				}
			}
			if !match {
				continue
			}
			w.matched++
			// The full ordered bound over actual tfs is strictly tighter
			// than the staged check whenever more than one keyword
			// contributes; for a single keyword the staged check was
			// already exact, so repeating it cannot skip anything new.
			if (pq.nk > 1 || !staged) && haveTau {
				checks++
				acc, accAbs := 0.0, 0.0
				skip := false
				for j, i := range pq.order {
					tb := w.termBound(i, w.curs[i].TF())
					acc += tb
					accAbs += math.Abs(tb)
					if acc+w.suffix[j+1]+boundFPMargin*(accAbs+w.suffixAbs[j+1]) < tau {
						skip = true
						break
					}
				}
				if skip {
					skips++
					driver.Next()
					continue
				}
			}
			for i := 0; i < pq.nk; i++ {
				tf[i] = int64(w.curs[i].TF())
			}
			ds := ranking.DocStats{TFs: tf, Len: w.e.ix.FieldLen(d, w.e.contentField)}
			w.top.push(Result{DocID: d, Score: pq.indexed.ScoreIndexed(pq.qs, ds, pq.cs)})
			if w.top.full() {
				w.shared.raise(w.top.floor())
				tau = threshold(w.top, w.shared)
				haveTau = true
			}
			driver.Next()
		}
		// End-of-window check, metadata first for the same reason as the
		// scan condition above. A pending block whose base is inside the
		// window genuinely might hold in-window documents, so fall through
		// to the outer loop: its container-skip check gets a chance to
		// dismiss the block off its directory bounds before anything asks
		// for a DocID. Only a resident cursor can prove a mid-container
		// window end here.
		if driver.Exhausted() || uint64(driver.ContainerBase()) >= hi {
			return nil
		}
		if driver.ContainerResident() && uint64(driver.DocID()) >= hi {
			return nil
		}
	}
}

// guardedPrunedRange runs one pruned partition behind a panic guard.
func (e *Engine) guardedPrunedRange(ctx context.Context, pq *prunedQuery, lo uint32, hi uint64, top *topK, shared *sharedThreshold, lst *postings.Stats, pst *PruningStats) (matched int, err error) {
	defer recoverToError(&err, "pruned scoring worker")
	w := &prunedWorker{
		e:         e,
		pq:        pq,
		curs:      make([]*postings.BoundCursor, len(pq.all)),
		top:       top,
		shared:    shared,
		pst:       pst,
		cUB:       make([]float64, pq.nk),
		suffix:    make([]float64, pq.nk+1),
		suffixAbs: make([]float64, pq.nk+1),
		stagedUB:  make([]float64, 0, memoCap+1),
		memo:      make([][]float64, pq.nk),
	}
	for i, l := range pq.all {
		w.curs[i] = postings.NewBoundCursor(l, lst)
	}
	err = w.run(ctx, lo, hi)
	return w.matched, err
}

// prunedSearch is the pruned replacement for evaluateResultSet + score:
// it walks the conjunction with bound-aware cursors and returns the top
// k directly, never materializing the result set. st receives the
// pruning counters, the list cost, and ResultSize (which under pruning
// counts only the conjunction members the loop visited — skipped
// containers hide their members by design). On deadline expiry the
// merged partial top-k is returned with context.DeadlineExceeded, like
// score.
func (e *Engine) prunedSearch(ctx context.Context, a analyzed, kw, preds []*postings.List, cs ranking.CollectionStats, k int, st *ExecStats) ([]Result, error) {
	pq := e.newPrunedQuery(a, kw, preds, cs, k)
	st.Pruning.Active = true
	drv := pq.all[pq.driver]
	n := drv.Len()
	chunks := scoreChunks(n, e.workers)
	shared := newSharedThreshold()
	if chunks <= 1 {
		top := newTopK(k)
		var pst PruningStats
		matched, err := e.guardedPrunedRange(ctx, pq, 0, 1<<32, top, shared, &st.Stats, &pst)
		st.ResultSize = matched
		st.Pruning.add(pst)
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			top.release()
			return nil, err
		}
		out := top.results()
		top.release()
		return out, err
	}
	// Partition the docID space at driver-list positions so windows
	// carry equal driver work. Window c is [los[c], los[c+1]) with the
	// last extending to the end of the docID space; windows are
	// disjoint, so per-partition heaps merge exactly like the
	// exhaustive path's.
	los := make([]uint32, chunks)
	for c := range los {
		los[c] = drv.At(c * n / chunks).DocID
	}
	tops := make([]*topK, chunks)
	errs := make([]error, chunks)
	stats := make([]postings.Stats, chunks)
	psts := make([]PruningStats, chunks)
	matches := make([]int, chunks)
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		lo := los[c]
		hi := uint64(1) << 32
		if c+1 < chunks {
			hi = uint64(los[c+1])
		}
		tops[c] = newTopK(k)
		if c == chunks-1 {
			// The calling goroutine scores the last window itself.
			matches[c], errs[c] = e.guardedPrunedRange(ctx, pq, lo, hi, tops[c], shared, &stats[c], &psts[c])
			continue
		}
		wg.Add(1)
		go func(c int, lo uint32, hi uint64) {
			defer wg.Done()
			matches[c], errs[c] = e.guardedPrunedRange(ctx, pq, lo, hi, tops[c], shared, &stats[c], &psts[c])
		}(c, lo, hi)
	}
	wg.Wait()
	for c := 0; c < chunks; c++ {
		st.Stats.Add(stats[c])
		st.Pruning.add(psts[c])
		st.ResultSize += matches[c]
	}
	var deadlineErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.DeadlineExceeded) {
			deadlineErr = err
			continue
		}
		for _, t := range tops {
			t.release()
		}
		return nil, err
	}
	final := tops[0]
	for _, t := range tops[1:] {
		final.merge(t)
	}
	out := final.results()
	for _, t := range tops {
		t.release()
	}
	return out, deadlineErr
}
