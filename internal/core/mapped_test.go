package core

import (
	"fmt"
	"sync"
	"testing"

	"csrank/internal/index"
	"csrank/internal/query"
)

var (
	mappedOnce sync.Once
	mappedIx   *index.Index
	mappedErr  error
)

// mappedPrunedIndex is the format-v4 twin of the pruned-corpus index,
// built once per process (the in-memory round-trip of a 140k-doc index
// is the expensive part, not the queries).
func mappedPrunedIndex(t testing.TB) *index.Index {
	t.Helper()
	ix, _ := buildPrunedSystem(t)
	mappedOnce.Do(func() {
		mappedIx, mappedErr = index.MappedCopy(ix)
	})
	if mappedErr != nil {
		t.Fatal(mappedErr)
	}
	return mappedIx
}

// TestMappedBitIdenticalToHeap is the tentpole acceptance property:
// rankings over the heap-loaded index and the mapped v4 image must be
// bit-identical — same DocIDs, same order, bit-for-bit equal scores —
// across all five scorers, pruning on and off, parallelism 1, 2 and 4.
// The cost counters (Seeks, SegmentsSkipped, EntriesScanned) must agree
// too: mapped cursors charge the M0 model from global positions, never
// from how blocks happen to materialize.
func TestMappedBitIdenticalToHeap(t *testing.T) {
	// The heap side must really be the heap engine, even when the suite
	// runs under CSRANK_FORCE_MAPPED (the mapped side is built explicitly).
	t.Setenv("CSRANK_FORCE_MAPPED", "")
	hx, _ := buildPrunedSystem(t)
	mx := mappedPrunedIndex(t)
	queries := []string{
		"alpha",
		"beta",
		"alpha beta",
		"alpha | ctx_a",
		"alpha beta | ctx_a",
	}
	combo := 0
	for _, sc := range prunedScorers() {
		for _, pruning := range []bool{false, true} {
			for _, p := range []int{1, 2, 4} {
				heap := New(hx, nil, Options{Parallelism: p, Scorer: sc, Pruning: pruning})
				mapped := New(mx, nil, Options{Parallelism: p, Scorer: sc, Pruning: pruning})
				qs := queries[combo%len(queries)]
				combo++
				q := query.MustParse(qs)
				for _, k := range []int{1, 10} {
					want, wst, err := heap.Search(q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, gst, err := mapped.Search(q, k)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("%s pruning=%v p=%d k=%d %q", sc.Name(), pruning, p, k, qs)
					assertBitIdentical(t, label, want, got)
					if wst.Pruning.Active != gst.Pruning.Active {
						t.Fatalf("%s: pruning active differs", label)
					}
					if p != 1 {
						// With multiple workers the shared threshold is
						// raised at schedule-dependent moments, so skip
						// counters legitimately vary run to run; only the
						// rankings are deterministic.
						continue
					}
					if wst.Seeks != gst.Seeks || wst.SegmentsSkipped != gst.SegmentsSkipped ||
						wst.EntriesScanned != gst.EntriesScanned || wst.BitmapWords != gst.BitmapWords {
						t.Fatalf("%s: cost charges differ: heap %+v mapped %+v", label, wst.Stats, gst.Stats)
					}
					if wst.Pruning.ContainersSkipped != gst.Pruning.ContainersSkipped ||
						wst.Pruning.DocsSkipped != gst.Pruning.DocsSkipped {
						t.Fatalf("%s: pruning counters differ: heap %+v mapped %+v", label, wst.Pruning, gst.Pruning)
					}
				}
			}
		}
	}
}

// TestMappedSkipsBlocksUndecoded asserts the point of the lazy reader:
// on a broad pruned query, containers dismissed by their directory
// bounds must be counted as never-decompressed, and the heap engine must
// report zero such skips (everything is resident there).
func TestMappedSkipsBlocksUndecoded(t *testing.T) {
	t.Setenv("CSRANK_FORCE_MAPPED", "")
	hx, _ := buildPrunedSystem(t)
	q := query.MustParse("alpha")
	_, hst, err := New(hx, nil, Options{Parallelism: 1, Pruning: true}).Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if hst.Pruning.ContainersSkipped == 0 {
		t.Fatal("fixture lost its skippable container")
	}
	if hst.Pruning.ContainersSkippedUndecoded != 0 {
		t.Fatalf("heap engine claims %d undecoded skips", hst.Pruning.ContainersSkippedUndecoded)
	}
	// Fresh mapped copy: earlier tests may have materialized blocks in
	// the shared fixture, and the counter is about genuinely cold blocks.
	cold, err := index.MappedCopy(hx)
	if err != nil {
		t.Fatal(err)
	}
	_, mst, err := New(cold, nil, Options{Parallelism: 1, Pruning: true}).Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if mst.Pruning.ContainersSkipped == 0 {
		t.Fatal("mapped engine skipped no containers")
	}
	if mst.Pruning.ContainersSkippedUndecoded == 0 {
		t.Fatal("mapped engine decoded every skipped container: the dismiss-before-decompress path is dead")
	}
	t.Logf("mapped: containers skipped=%d, undecoded=%d, docs skipped=%d",
		mst.Pruning.ContainersSkipped, mst.Pruning.ContainersSkippedUndecoded, mst.Pruning.DocsSkipped)
}

// TestForceMappedSeam: with CSRANK_FORCE_MAPPED set, New must serve a
// heap index through its mapped twin transparently.
func TestForceMappedSeam(t *testing.T) {
	hx, _ := buildPrunedSystem(t)
	want, _, err := New(hx, nil, Options{Parallelism: 1}).Search(query.MustParse("alpha beta"), 10)
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("CSRANK_FORCE_MAPPED", "1")
	e := New(hx, nil, Options{Parallelism: 1, Pruning: true})
	if !e.Index().Mapped() {
		t.Fatal("CSRANK_FORCE_MAPPED did not swap in a mapped index")
	}
	got, _, err := e.Search(query.MustParse("alpha beta"), 10)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "force-mapped", want, got)
}

// BenchmarkPrunedSearchMapped compares pruned top-k latency over the
// heap index and its mapped v4 twin on the multi-container corpus; the
// mapped arm amortizes block decoding across iterations through the
// block cache exactly as a server would.
func BenchmarkPrunedSearchMapped(b *testing.B) {
	hx, _ := buildPrunedSystem(b)
	mx, err := index.MappedCopy(hx)
	if err != nil {
		b.Fatal(err)
	}
	q := query.MustParse("alpha beta")
	for _, arm := range []struct {
		name string
		ix   *index.Index
	}{{"heap", hx}, {"mapped", mx}} {
		b.Run(arm.name, func(b *testing.B) {
			e := New(arm.ix, nil, Options{Parallelism: 1, Pruning: true})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.Search(q, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
