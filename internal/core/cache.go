package core

import (
	"strings"
	"sync"
)

// statsCache memoizes collection-specific statistics per normalized
// context. Contexts repeat heavily in practice — a working domain expert
// issues many queries inside one context — and S_c(D_P) depends only on
// P and the query keywords, so |D_P| and len(D_P) are reusable verbatim
// while per-keyword df/tc accumulate lazily as new keywords appear.
//
// The cache is a bounded map with FIFO eviction: contexts are few (the
// predicate vocabulary is controlled) and recency hardly matters at this
// population, so simplicity wins over LRU bookkeeping. Safe for
// concurrent use.
type statsCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*cacheEntry
	order   []string // insertion order for FIFO eviction
}

type cacheEntry struct {
	n, totalLen int64
	// words maps keyword -> (df, tc) within the context.
	words map[string]dfTC
}

type dfTC struct {
	df, tc int64
}

func newStatsCache(max int) *statsCache {
	if max <= 0 {
		return nil
	}
	return &statsCache{max: max, entries: make(map[string]*cacheEntry, max)}
}

func cacheKey(context []string) string { return strings.Join(context, "\x00") }

// lookup returns the cached entry for the context, if any. The returned
// snapshot copies the per-word map so callers never race with concurrent
// extend calls.
func (c *statsCache) lookup(context []string) (n, totalLen int64, words map[string]dfTC, ok bool) {
	if c == nil {
		return 0, 0, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[cacheKey(context)]
	if e == nil {
		return 0, 0, nil, false
	}
	snapshot := make(map[string]dfTC, len(e.words))
	for w, v := range e.words {
		snapshot[w] = v
	}
	return e.n, e.totalLen, snapshot, true
}

// store inserts or extends the context's entry with the given statistics.
func (c *statsCache) store(context []string, n, totalLen int64, words map[string]dfTC) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey(context)
	e := c.entries[key]
	if e == nil {
		if len(c.entries) >= c.max {
			// FIFO eviction.
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, oldest)
		}
		e = &cacheEntry{n: n, totalLen: totalLen, words: make(map[string]dfTC)}
		c.entries[key] = e
		c.order = append(c.order, key)
	}
	for w, v := range words {
		e.words[w] = v
	}
}

// len reports the number of cached contexts (for tests).
func (c *statsCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
