package core

import (
	"hash/fnv"
	"runtime"
	"strings"
	"sync"

	"csrank/internal/views"
)

// statsCache memoizes collection-specific statistics per normalized
// context. Contexts repeat heavily in practice — a working domain expert
// issues many queries inside one context — and S_c(D_P) depends only on
// P and the query keywords, so |D_P| and len(D_P) are reusable verbatim
// while per-keyword df/tc accumulate lazily as new keywords appear.
//
// The cache is sharded: the context key is hashed (FNV-1a) onto a
// power-of-two number of shards, each with its own mutex, so concurrent
// queries in different contexts never contend on one lock. Within a
// shard, entries live in a bounded map with FIFO eviction backed by a
// fixed-capacity ring buffer: contexts are few (the predicate vocabulary
// is controlled) and recency hardly matters at this population, so
// simplicity wins over LRU bookkeeping; the ring never grows, so no
// evicted key pins its backing array. Safe for concurrent use.
type statsCache struct {
	shards []cacheShard
	mask   uint32
}

type cacheShard struct {
	mu      sync.Mutex
	max     int
	entries map[string]*cacheEntry
	// ring holds the insertion order for FIFO eviction: a fixed-capacity
	// circular buffer of max slots. head is the oldest entry, count the
	// population.
	ring  []string
	head  int
	count int
}

type cacheEntry struct {
	// cat is the catalog the statistics were computed against, by
	// pointer identity (possibly nil). An entry only ever serves queries
	// running on the same catalog: a query in flight across a
	// SwapCatalog can complete its store after the swap's purge, and
	// without the tag that stale entry would feed old-catalog statistics
	// to queries on the new one.
	cat         *views.Catalog
	n, totalLen int64
	// words maps keyword -> (df, tc) within the context.
	words map[string]dfTC
}

type dfTC struct {
	df, tc int64
}

// cacheShardCount picks the shard count: a power of two near the
// parallelism available, but never more shards than the cache holds
// entries (each shard needs capacity for at least one entry).
func cacheShardCount(max int) int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 16 {
		n <<= 1
	}
	for n > max {
		n >>= 1
	}
	if n < 1 {
		n = 1
	}
	return n
}

func newStatsCache(max int) *statsCache {
	if max <= 0 {
		return nil
	}
	n := cacheShardCount(max)
	c := &statsCache{shards: make([]cacheShard, n), mask: uint32(n - 1)}
	perShard := (max + n - 1) / n
	for i := range c.shards {
		c.shards[i].max = perShard
		c.shards[i].entries = make(map[string]*cacheEntry, perShard)
		c.shards[i].ring = make([]string, perShard)
	}
	return c
}

func cacheKey(context []string) string { return strings.Join(context, "\x00") }

func (c *statsCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()&c.mask]
}

// lookup returns the cached entry for the context, if it was computed
// against cat (by pointer identity); an entry for another catalog is a
// miss, left in place for the next store to overwrite. Only the
// statistics of the requested keywords are copied out — not the whole
// accumulated word map — so a hit costs O(len(need)) regardless of how
// many keywords earlier queries cached for the context. The returned map
// is a private copy, so callers never race with concurrent store calls.
func (c *statsCache) lookup(context, need []string, cat *views.Catalog) (n, totalLen int64, words map[string]dfTC, ok bool) {
	if c == nil {
		return 0, 0, nil, false
	}
	key := cacheKey(context)
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil || e.cat != cat {
		return 0, 0, nil, false
	}
	snapshot := make(map[string]dfTC, len(need))
	for _, w := range need {
		if v, hit := e.words[w]; hit {
			snapshot[w] = v
		}
	}
	return e.n, e.totalLen, snapshot, true
}

// store inserts or extends the context's entry with statistics computed
// against cat. An existing entry for another catalog is reset in place
// (same ring slot) rather than extended — mixing statistics across
// catalog states is exactly what the tag exists to prevent.
func (c *statsCache) store(context []string, n, totalLen int64, words map[string]dfTC, cat *views.Catalog) {
	if c == nil {
		return
	}
	key := cacheKey(context)
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e != nil && e.cat != cat {
		e.cat, e.n, e.totalLen = cat, n, totalLen
		clear(e.words)
	}
	if e == nil {
		if s.count >= s.max {
			// FIFO eviction: drop the oldest, freeing its ring slot.
			oldest := s.ring[s.head]
			s.ring[s.head] = ""
			s.head = (s.head + 1) % len(s.ring)
			s.count--
			delete(s.entries, oldest)
		}
		e = &cacheEntry{cat: cat, n: n, totalLen: totalLen, words: make(map[string]dfTC)}
		s.entries[key] = e
		s.ring[(s.head+s.count)%len(s.ring)] = key
		s.count++
	}
	for w, v := range words {
		e.words[w] = v
	}
}

// purge drops every cached context, releasing the old entries' memory
// promptly when the catalog changes. Correctness does not depend on it:
// the per-entry catalog tag already makes entries from other catalog
// states unservable, including one stored by an in-flight query after
// this purge completes.
func (c *statsCache) purge() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[string]*cacheEntry, s.max)
		for j := range s.ring {
			s.ring[j] = ""
		}
		s.head, s.count = 0, 0
		s.mu.Unlock()
	}
}

// len reports the number of cached contexts (for tests).
func (c *statsCache) len() int {
	if c == nil {
		return 0
	}
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.entries)
		s.mu.Unlock()
	}
	return total
}
