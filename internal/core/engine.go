// Package core implements the context-sensitive search engine — the
// paper's primary contribution. It evaluates queries Q_c = Q_k | P three
// ways:
//
//   - Conventional (the baseline Q_t = Q_k ∪ P of §6): the context terms
//     act as boolean filters and ranking uses whole-collection statistics.
//   - Straightforward context-sensitive (§3.1, Figure 3): the context is
//     materialized by inverted-list intersection and every
//     collection-specific statistic is computed by intersection +
//     aggregation at query time.
//   - View-based context-sensitive (§4): statistics are answered from the
//     smallest usable materialized view; only statistics the views do not
//     carry (df/tc of infrequent keywords) fall back to intersections,
//     which are cheap precisely because those keywords are infrequent
//     (§6.2).
//
// All three share one ranking function f(S_q, S_d, S_c) — only the
// statistics source differs, exactly as Formula 2 prescribes.
//
// Failure semantics: every Search variant has a *Ctx form threading a
// context.Context through the whole query path — the parallel workers,
// the statistics cache, and cooperative checkpoints inside the postings
// kernels. An expired deadline degrades gracefully (flagged partial or
// empty results, never an error); an explicit cancellation fails the
// query with ctx's error; a panic anywhere in the query path — worker
// goroutine or not — is recovered, converted to an error carrying the
// captured stack, and fails only that query. With no deadline, rankings
// are bit-identical to fully sequential execution at every parallelism.
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"csrank/internal/analysis"
	"csrank/internal/index"
	"csrank/internal/postings"
	"csrank/internal/query"
	"csrank/internal/ranking"
	"csrank/internal/views"
)

// Plan names the evaluation strategy an execution used.
type Plan string

// The three evaluation strategies.
const (
	PlanConventional    Plan = "conventional"
	PlanView            Plan = "view"
	PlanStraightforward Plan = "straightforward"
)

// Options configures an Engine.
type Options struct {
	// Scorer is the ranking function; nil selects pivoted TF-IDF with the
	// paper's s = 0.2.
	Scorer ranking.Scorer
	// CacheContexts, when positive, memoizes collection statistics for up
	// to that many distinct contexts. Repeated queries inside the same
	// context then skip both the view scan and the straightforward
	// aggregation. Zero disables caching (the experiments run uncached so
	// they measure the paper's plans, not the cache).
	CacheContexts int
	// CostBased enables plan selection by the §3.2 cost model: a usable
	// view is consulted only when its scan cost (ViewSize) undercuts the
	// straightforward bound ((n+1)·Σ|L_m|, Proposition 3.1). Without it,
	// a usable view always wins — the paper's policy, which is right for
	// the covered-context regime it targets but can lose to the
	// straightforward plan on incidentally covered tiny contexts.
	CostBased bool
	// Parallelism bounds intra-query parallelism: the result-set
	// intersection overlaps the statistics computation, per-keyword df/tc
	// intersections fan out over a worker pool, and scoring partitions
	// the result set into concurrently scored chunks. 0 uses GOMAXPROCS;
	// 1 keeps today's fully sequential execution (the setting all §6
	// reproduction experiments run with). Rankings are bit-identical at
	// every setting.
	Parallelism int
	// Deadline bounds each query's wall-clock execution (layered onto
	// whatever deadline the caller's context already carries). When it
	// expires the engine degrades gracefully instead of failing: partial
	// top-k results (or an empty result when nothing was evaluated yet)
	// are returned flagged Degraded. Zero means no per-query deadline.
	Deadline time.Duration
	// StatsBudget bounds the context-statistics phase of contextual
	// queries. When it expires before the exact S_c(D_P) computation
	// finishes, the engine falls back to approximate statistics — a
	// usable view's O(ViewSize) answer when one exists, whole-collection
	// statistics otherwise — and flags the result Degraded, per the
	// paper's hybrid bounded-worst-case philosophy. Zero means no budget.
	StatsBudget time.Duration
	// Pruning enables block-max dynamic pruning: top-k scoring walks the
	// conjunction with bound-aware cursors and skips documents — or whole
	// 2^16-docID containers — whose score upper bound proves they cannot
	// enter the top k. The skipped work is the only difference: results
	// are bit-identical to exhaustive scoring at every parallelism. The
	// pruned path engages when k > 0, the scorer implements
	// ranking.BoundedScorer (all five built-ins do), and every keyword
	// list carries bound metadata (any index built or loaded by this
	// version); other queries fall back to exhaustive scoring. The §6
	// reproduction experiments pin it off so measured list costs match
	// the paper's cost model.
	Pruning bool
}

// Result is one ranked hit.
type Result struct {
	DocID uint32
	Score float64
}

// PhaseTimings breaks one execution's wall clock into its phases. With
// intra-query parallelism the result-set phase overlaps the statistics
// phase (ResultSet then measures the wait after statistics completed),
// so the parts need not sum to Elapsed.
type PhaseTimings struct {
	// Analyze is query analysis (tokenization, normalization).
	Analyze time.Duration
	// Stats is the context-statistics phase (cache, views, aggregation).
	Stats time.Duration
	// ResultSet is the unranked result-set intersection.
	ResultSet time.Duration
	// Score is ranking and top-k selection.
	Score time.Duration
}

// ExecStats reports what one query execution did and cost.
type ExecStats struct {
	// Stats accumulates the inverted-list and view-scan cost counters.
	postings.Stats
	// Plan is the strategy used.
	Plan Plan
	// UsedView reports whether a materialized view answered statistics.
	UsedView bool
	// ViewSize is the group count of the used view (0 if none).
	ViewSize int
	// FallbackKeywords counts query keywords whose df/tc had to be
	// computed by intersection because no view tracks them (or, in
	// degraded mode, estimated because the budget was gone).
	FallbackKeywords int
	// ResultSize is the unranked result cardinality. When the pruned
	// path ran (Pruning.Active) it counts only the conjunction members
	// the pruned loop visited: members inside skipped containers are
	// provably outside the top k but were never enumerated.
	ResultSize int
	// ContextSize is |D_P| (0 for conventional evaluation of a
	// context-free query).
	ContextSize int64
	// CacheHit reports that the context statistics came from the
	// statistics cache (possibly extended with per-keyword fills).
	CacheHit bool
	// Degraded reports that a deadline or statistics budget expired and
	// the results are partial and/or ranked under approximate
	// statistics. Degraded executions return a nil error: boundedness is
	// the contract, and the flag (plus DegradedReason) tells the caller
	// what was traded away.
	Degraded bool
	// DegradedReason explains each degradation, "; "-joined in the order
	// the phases hit their limits. Empty when Degraded is false.
	DegradedReason string
	// Pruning reports what dynamic pruning did (all-zero with Active
	// false when Options.Pruning was off or the query was ineligible).
	Pruning PruningStats
	// Phases is the per-phase wall-clock breakdown.
	Phases PhaseTimings
	// Elapsed is wall-clock execution time.
	Elapsed time.Duration
}

// degrade flags the execution as degraded, accumulating reasons.
func (st *ExecStats) degrade(reason string) {
	st.Degraded = true
	if st.DegradedReason == "" {
		st.DegradedReason = reason
	} else {
		st.DegradedReason += "; " + reason
	}
}

// Degrade flags the execution as degraded with the given reason,
// accumulating "; "-joined reasons. Exported for layers above the engine
// (the shard scatter-gather marks cluster-level partial results through
// it).
func (st *ExecStats) Degrade(reason string) { st.degrade(reason) }

// quarantineReason is the degradation reason attached when an execution
// touched quarantined (corrupt, empty-serving) mapped blocks.
const quarantineReason = "corrupt block(s) quarantined: affected containers skipped"

// noteQuarantine is deferred by every public query entry point: an
// execution that touched quarantined blocks silently skipped their
// containers, so its results are partial and must say so.
func noteQuarantine(st *ExecStats) {
	if st.QuarantineSkips > 0 {
		st.degrade(quarantineReason)
	}
}

// Engine evaluates context-sensitive queries over an index, optionally
// accelerated by a view catalog. It is safe for concurrent use,
// including SwapCatalog racing with in-flight queries.
type Engine struct {
	ix *index.Index
	// catalog may hold nil. It is atomic so a recovered or freshly
	// rolled catalog can replace the serving one mid-flight: each query
	// path loads the pointer once and sticks with that snapshot, so a
	// query never mixes statistics from two catalog states.
	catalog atomic.Pointer[views.Catalog]
	// catVersion counts catalog swaps. It is the engine's contribution to
	// serving-layer result-cache tags: a result computed under one
	// catalog state must never serve after SwapCatalog (plans and stats
	// differ even when scores do not), and the monotonic counter makes
	// the staleness check an equality test.
	catVersion atomic.Uint64
	scorer     ranking.Scorer

	contentField string
	predField    string
	contentAn    *analysis.Analyzer
	predAn       *analysis.Analyzer

	globalN   int64
	globalLen int64

	costBased   bool
	cache       *statsCache // nil when disabled
	workers     int         // resolved Options.Parallelism (≥ 1)
	deadline    time.Duration
	statsBudget time.Duration
	pruning     bool
}

// New creates an engine. catalog may be nil (no view acceleration).
//
// When the environment variable CSRANK_FORCE_MAPPED is set to a
// non-empty value and ix is a heap index, the engine round-trips it
// through the format-v4 codec in memory and serves the mapped twin
// instead — the CI seam that drives every engine test over the mapped
// reader without touching the test code. Rankings are bit-identical by
// the mapped reader's contract, so this substitution is observable only
// through ExecStats.Pruning.ContainersSkippedUndecoded.
func New(ix *index.Index, catalog *views.Catalog, opts Options) *Engine {
	if os.Getenv("CSRANK_FORCE_MAPPED") != "" && !ix.Mapped() {
		if mx, err := index.MappedCopy(ix); err == nil {
			ix = mx
		}
		// On error keep the heap index: the seam must never turn a
		// working engine into a broken one.
	}
	scorer := opts.Scorer
	if scorer == nil {
		scorer = ranking.NewPivotedTFIDF()
	}
	schema := ix.Schema()
	e := &Engine{
		ix:           ix,
		scorer:       scorer,
		contentField: schema.ContentField,
		predField:    schema.PredicateField,
		contentAn:    ix.AnalyzerFor(schema.ContentField),
		predAn:       ix.AnalyzerFor(schema.PredicateField),
		globalN:      int64(ix.NumDocs()),
		globalLen:    ix.TotalFieldLen(schema.ContentField),
		costBased:    opts.CostBased,
		cache:        newStatsCache(opts.CacheContexts),
		workers:      resolveWorkers(opts.Parallelism),
		deadline:     opts.Deadline,
		statsBudget:  opts.StatsBudget,
		pruning:      opts.Pruning,
	}
	e.catalog.Store(catalog)
	return e
}

// Index returns the engine's index.
func (e *Engine) Index() *index.Index { return e.ix }

// Catalog returns the engine's view catalog (nil if none).
func (e *Engine) Catalog() *views.Catalog { return e.catalog.Load() }

// SwapCatalog atomically replaces the engine's view catalog and purges
// the statistics cache, whose entries describe the catalog state they
// were computed against. In-flight queries finish on the catalog they
// already loaded — both states are internally consistent — so a catalog
// recovered from snapshot + WAL replay can go live without a restart or
// a lock on the query path. An in-flight query on the old catalog may
// complete a cache store after the purge; such entries are tagged with
// the catalog they were computed against and never serve queries on the
// new one. Pass nil to disable view acceleration.
func (e *Engine) SwapCatalog(cat *views.Catalog) {
	e.catalog.Store(cat)
	e.catVersion.Add(1)
	e.cache.purge()
}

// CatalogVersion returns how many times SwapCatalog has run on this
// engine — a monotonic component of result-cache tags.
func (e *Engine) CatalogVersion() uint64 { return e.catVersion.Load() }

// Scorer returns the engine's ranking function.
func (e *Engine) Scorer() ranking.Scorer { return e.scorer }

// analyzed holds a query after analysis: distinct content terms (in first
// occurrence order), the full analyzed keyword stream (for tq), and the
// normalized context predicates.
type analyzed struct {
	kwTerms  []string // distinct
	kwStream []string // with duplicates, for S_q
	context  []string // normalized predicates
}

func (e *Engine) analyze(q query.Query) (analyzed, error) {
	if err := q.Validate(); err != nil {
		return analyzed{}, err
	}
	var a analyzed
	seen := map[string]bool{}
	for _, kw := range q.Keywords {
		for _, term := range e.contentAn.Analyze(kw) {
			a.kwStream = append(a.kwStream, term)
			if !seen[term] {
				seen[term] = true
				a.kwTerms = append(a.kwTerms, term)
			}
		}
	}
	if len(a.kwTerms) == 0 {
		return analyzed{}, fmt.Errorf("core: query %q has no indexable keywords", q)
	}
	seenCtx := map[string]bool{}
	for _, m := range q.Context {
		for _, term := range e.predAn.Analyze(m) {
			if !seenCtx[term] {
				seenCtx[term] = true
				a.context = append(a.context, term)
			}
		}
	}
	sort.Strings(a.context)
	return a, nil
}

// lists fetches the posting lists for the analyzed query. A nil list
// means the term is absent and the conjunctive result is empty.
func (e *Engine) lists(a analyzed) (kw, preds []*postings.List) {
	kw = make([]*postings.List, len(a.kwTerms))
	for i, w := range a.kwTerms {
		kw[i] = e.ix.Postings(e.contentField, w)
	}
	preds = make([]*postings.List, len(a.context))
	for i, m := range a.context {
		preds[i] = e.ix.Postings(e.predField, m)
	}
	return kw, preds
}

// evaluateResultSet computes the unranked result
// σ_P(D) ∩ σ_w1(D) ∩ … ∩ σ_wn(D) with the keyword lists first so the
// returned TFs align with a.kwTerms. On cancellation the partial prefix
// is returned together with ctx's error.
func evaluateResultSet(ctx context.Context, kw, preds []*postings.List, st *postings.Stats) (*postings.Intersection, error) {
	all := make([]*postings.List, 0, len(kw)+len(preds))
	all = append(all, kw...)
	all = append(all, preds...)
	return postings.IntersectCtx(ctx, all, st)
}

// applyDeadline derives the execution context for one query, layering
// the engine's per-query Deadline (when configured) onto the caller's
// context. The returned cancel must always be called.
func (e *Engine) applyDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if e.deadline > 0 {
		return context.WithTimeout(ctx, e.deadline)
	}
	return ctx, func() {}
}

// shortCircuit handles a context that is already dead before any list
// work happened: an expired deadline degrades to an empty flagged result
// (the boundedness contract), an explicit cancellation fails the query.
func shortCircuit(ctx context.Context, st *ExecStats) (stop bool, res []Result, err error) {
	cerr := ctx.Err()
	if cerr == nil {
		return false, nil, nil
	}
	if errors.Is(cerr, context.DeadlineExceeded) {
		st.degrade("deadline expired before evaluation: empty result")
		return true, []Result{}, nil
	}
	return true, nil, cerr
}

// degradeOnDeadline absorbs a deadline expiry into the degradation flag
// and reports whether it did; cancellations and panics pass through.
func degradeOnDeadline(err error, st *ExecStats, reason string) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		st.degrade(reason)
		return true
	}
	return false
}

// Search evaluates q with the engine's best strategy: conventional for
// context-free queries, view-based for contextual queries when a usable
// view exists, straightforward otherwise.
func (e *Engine) Search(q query.Query, k int) ([]Result, ExecStats, error) {
	return e.SearchCtx(context.Background(), q, k)
}

// SearchCtx is Search with cooperative cancellation and deadline-bounded
// degradation (see the package comment for the failure semantics).
func (e *Engine) SearchCtx(ctx context.Context, q query.Query, k int) ([]Result, ExecStats, error) {
	if !q.IsContextual() {
		return e.SearchConventionalCtx(ctx, q, k)
	}
	return e.SearchContextSensitiveCtx(ctx, q, k)
}

// SearchConventional evaluates the baseline Q_t = Q_k ∪ P: identical
// unranked result set, whole-collection statistics (context terms are
// boolean filters that "do not contribute to ranking scores").
func (e *Engine) SearchConventional(q query.Query, k int) ([]Result, ExecStats, error) {
	return e.SearchConventionalCtx(context.Background(), q, k)
}

// SearchConventionalCtx is SearchConventional with cancellation and
// deadline-bounded degradation.
func (e *Engine) SearchConventionalCtx(ctx context.Context, q query.Query, k int) (res []Result, st ExecStats, err error) {
	ctx, cancel := e.applyDeadline(ctx)
	defer cancel()
	defer recoverToError(&err, "conventional search")
	defer noteQuarantine(&st)
	return e.searchConventional(ctx, q, k)
}

// SearchContextSensitive evaluates Q_c = Q_k | P with context statistics,
// answering them from the smallest usable materialized view when the
// catalog has one and falling back to the straightforward plan otherwise.
func (e *Engine) SearchContextSensitive(q query.Query, k int) ([]Result, ExecStats, error) {
	return e.SearchContextSensitiveCtx(context.Background(), q, k)
}

// SearchContextSensitiveCtx is SearchContextSensitive with cancellation
// and deadline-bounded degradation.
func (e *Engine) SearchContextSensitiveCtx(ctx context.Context, q query.Query, k int) (res []Result, st ExecStats, err error) {
	ctx, cancel := e.applyDeadline(ctx)
	defer cancel()
	defer recoverToError(&err, "context-sensitive search")
	defer noteQuarantine(&st)
	return e.searchContextual(ctx, q, k, true)
}

// SearchStraightforward evaluates Q_c with the §3.1 plan unconditionally,
// never consulting views — the paper's "without materialized views"
// series.
func (e *Engine) SearchStraightforward(q query.Query, k int) ([]Result, ExecStats, error) {
	return e.SearchStraightforwardCtx(context.Background(), q, k)
}

// SearchStraightforwardCtx is SearchStraightforward with cancellation
// and deadline-bounded degradation.
func (e *Engine) SearchStraightforwardCtx(ctx context.Context, q query.Query, k int) (res []Result, st ExecStats, err error) {
	ctx, cancel := e.applyDeadline(ctx)
	defer cancel()
	defer recoverToError(&err, "straightforward search")
	defer noteQuarantine(&st)
	return e.searchContextual(ctx, q, k, false)
}

// searchConventional is the conventional plan under an already-derived
// execution context.
func (e *Engine) searchConventional(ctx context.Context, q query.Query, k int) ([]Result, ExecStats, error) {
	start := time.Now()
	var st ExecStats
	st.Plan = PlanConventional
	a, err := e.analyze(q)
	if err != nil {
		return nil, st, err
	}
	st.Phases.Analyze = time.Since(start)
	if stop, out, herr := shortCircuit(ctx, &st); stop {
		st.Elapsed = time.Since(start)
		return out, st, herr
	}
	kw, preds := e.lists(a)
	// Statistics first: they are O(#keywords) map fills from precomputed
	// aggregates, and the pruned path needs them before any scoring
	// decision (score upper bounds are functions of the statistics).
	tStats := time.Now()
	cs := ranking.CollectionStats{
		N:        e.globalN,
		TotalLen: e.globalLen,
		DF:       make(map[string]int64, len(a.kwTerms)),
		TC:       make(map[string]int64, len(a.kwTerms)),
	}
	for _, w := range a.kwTerms {
		cs.DF[w] = e.ix.DF(e.contentField, w)
		cs.TC[w] = e.ix.TotalTF(e.contentField, w)
	}
	st.Phases.Stats = time.Since(tStats)

	if e.prunedEligible(kw, preds, k) {
		tScore := time.Now()
		out, serr := e.prunedSearch(ctx, a, kw, preds, cs, k, &st)
		st.Phases.Score = time.Since(tScore)
		if serr != nil && !degradeOnDeadline(serr, &st, "deadline exceeded during pruned scoring: partial top-k") {
			st.Elapsed = time.Since(start)
			return nil, st, serr
		}
		st.Elapsed = time.Since(start)
		return out, st, nil
	}

	tRes := time.Now()
	res, rerr := evaluateResultSet(ctx, kw, preds, &st.Stats)
	st.Phases.ResultSet = time.Since(tRes)
	if rerr != nil && !degradeOnDeadline(rerr, &st, "deadline exceeded during result-set intersection: partial results") {
		st.Elapsed = time.Since(start)
		return nil, st, rerr
	}
	st.ResultSize = res.Len()

	tScore := time.Now()
	out, serr := e.score(ctx, a, res, cs, k)
	st.Phases.Score = time.Since(tScore)
	if serr != nil && !degradeOnDeadline(serr, &st, "deadline exceeded during scoring: partial top-k") {
		st.Elapsed = time.Since(start)
		return nil, st, serr
	}
	st.Elapsed = time.Since(start)
	return out, st, nil
}

// searchContextual is the context-sensitive plan under an
// already-derived execution context.
func (e *Engine) searchContextual(ctx context.Context, q query.Query, k int, useViews bool) ([]Result, ExecStats, error) {
	start := time.Now()
	var st ExecStats
	st.Plan = PlanStraightforward
	a, err := e.analyze(q)
	if err != nil {
		return nil, st, err
	}
	if len(a.context) == 0 {
		// No effective context: identical to conventional evaluation.
		return e.searchConventional(ctx, q, k)
	}
	st.Phases.Analyze = time.Since(start)
	if stop, out, herr := shortCircuit(ctx, &st); stop {
		st.Elapsed = time.Since(start)
		return out, st, herr
	}
	kw, preds := e.lists(a)
	// One catalog load per query: every view match and cache access of
	// this execution uses this snapshot, so a concurrent SwapCatalog can
	// never mix statistics from two catalog states.
	cat := e.catalog.Load()

	// The pruned path replaces the materialized result set with a
	// bound-aware walk, and its bounds are functions of the context
	// statistics S_c(D_P) — it cannot start until contextStats returns
	// (see ranking/bounds.go). So under pruning there is no result-set
	// phase to overlap with statistics and no worker to spawn.
	pruned := e.prunedEligible(kw, preds, k)

	// Phase overlap: the unranked result-set intersection and the context
	// statistics computation are data-independent, so with parallelism
	// enabled the intersection runs on its own panic-guarded goroutine
	// (with a private cost counter, merged below) while this goroutine
	// computes statistics. The channel is buffered so the worker never
	// blocks and an early error return leaks nothing.
	type resOut struct {
		res *postings.Intersection
		st  postings.Stats
		err error
	}
	var resCh chan resOut
	if e.workers > 1 && !pruned {
		resCh = make(chan resOut, 1)
		go func() {
			var out resOut
			defer func() {
				if r := recover(); r != nil {
					out.err = panicError("result-set worker", r)
				}
				resCh <- out
			}()
			out.res, out.err = evaluateResultSet(ctx, kw, preds, &out.st)
		}()
	}

	// Statistics phase, optionally under its own budget.
	tStats := time.Now()
	statsCtx, statsCancel := ctx, context.CancelFunc(nil)
	if e.statsBudget > 0 {
		statsCtx, statsCancel = context.WithTimeout(ctx, e.statsBudget)
	}
	cs, cerr := e.contextStats(statsCtx, a, kw, preds, useViews, &st, cat)
	if statsCancel != nil {
		statsCancel()
	}
	st.Phases.Stats = time.Since(tStats)
	if cerr != nil {
		switch {
		case ctx.Err() == nil && errors.Is(cerr, context.DeadlineExceeded):
			// Only the stats budget expired; the query itself is alive.
			// Fall back to approximate statistics — bounded work, flagged
			// result — per the hybrid philosophy.
			cs = e.approximateStats(a, useViews, &st, cat)
			st.degrade("stats budget exceeded: approximate statistics")
		case errors.Is(cerr, context.DeadlineExceeded):
			// The whole-query deadline died during statistics: nothing
			// trustworthy to rank with. Degrade to an empty result.
			st.degrade("deadline exceeded during statistics: empty result")
			if resCh != nil {
				out := <-resCh
				st.Stats.Add(out.st)
			}
			st.Elapsed = time.Since(start)
			return []Result{}, st, nil
		default:
			// Explicit cancellation, a worker panic, or an unusable view.
			st.Elapsed = time.Since(start)
			return nil, st, cerr
		}
	}
	st.ContextSize = cs.N

	if pruned {
		// Statistics are settled (exact or approximate — the bounds are
		// valid ceilings for whatever statistics the query ranks with):
		// walk the conjunction with bound-aware cursors directly.
		tScore := time.Now()
		out, serr := e.prunedSearch(ctx, a, kw, preds, cs, k, &st)
		st.Phases.Score = time.Since(tScore)
		if serr != nil && !degradeOnDeadline(serr, &st, "deadline exceeded during pruned scoring: partial top-k") {
			st.Elapsed = time.Since(start)
			return nil, st, serr
		}
		st.Elapsed = time.Since(start)
		return out, st, nil
	}

	tRes := time.Now()
	var res *postings.Intersection
	var rerr error
	if resCh != nil {
		out := <-resCh
		res, rerr = out.res, out.err
		st.Stats.Add(out.st)
	} else {
		res, rerr = evaluateResultSet(ctx, kw, preds, &st.Stats)
	}
	st.Phases.ResultSet = time.Since(tRes)
	if rerr != nil {
		if res == nil || !degradeOnDeadline(rerr, &st, "deadline exceeded during result-set intersection: partial results") {
			st.Elapsed = time.Since(start)
			return nil, st, rerr
		}
	}
	st.ResultSize = res.Len()

	tScore := time.Now()
	out, serr := e.score(ctx, a, res, cs, k)
	st.Phases.Score = time.Since(tScore)
	if serr != nil && !degradeOnDeadline(serr, &st, "deadline exceeded during scoring: partial top-k") {
		st.Elapsed = time.Since(start)
		return nil, st, serr
	}
	st.Elapsed = time.Since(start)
	return out, st, nil
}
