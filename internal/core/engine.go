// Package core implements the context-sensitive search engine — the
// paper's primary contribution. It evaluates queries Q_c = Q_k | P three
// ways:
//
//   - Conventional (the baseline Q_t = Q_k ∪ P of §6): the context terms
//     act as boolean filters and ranking uses whole-collection statistics.
//   - Straightforward context-sensitive (§3.1, Figure 3): the context is
//     materialized by inverted-list intersection and every
//     collection-specific statistic is computed by intersection +
//     aggregation at query time.
//   - View-based context-sensitive (§4): statistics are answered from the
//     smallest usable materialized view; only statistics the views do not
//     carry (df/tc of infrequent keywords) fall back to intersections,
//     which are cheap precisely because those keywords are infrequent
//     (§6.2).
//
// All three share one ranking function f(S_q, S_d, S_c) — only the
// statistics source differs, exactly as Formula 2 prescribes.
package core

import (
	"fmt"
	"sort"

	"time"

	"csrank/internal/analysis"
	"csrank/internal/index"
	"csrank/internal/postings"
	"csrank/internal/query"
	"csrank/internal/ranking"
	"csrank/internal/views"
)

// Plan names the evaluation strategy an execution used.
type Plan string

// The three evaluation strategies.
const (
	PlanConventional    Plan = "conventional"
	PlanView            Plan = "view"
	PlanStraightforward Plan = "straightforward"
)

// Options configures an Engine.
type Options struct {
	// Scorer is the ranking function; nil selects pivoted TF-IDF with the
	// paper's s = 0.2.
	Scorer ranking.Scorer
	// CacheContexts, when positive, memoizes collection statistics for up
	// to that many distinct contexts. Repeated queries inside the same
	// context then skip both the view scan and the straightforward
	// aggregation. Zero disables caching (the experiments run uncached so
	// they measure the paper's plans, not the cache).
	CacheContexts int
	// CostBased enables plan selection by the §3.2 cost model: a usable
	// view is consulted only when its scan cost (ViewSize) undercuts the
	// straightforward bound ((n+1)·Σ|L_m|, Proposition 3.1). Without it,
	// a usable view always wins — the paper's policy, which is right for
	// the covered-context regime it targets but can lose to the
	// straightforward plan on incidentally covered tiny contexts.
	CostBased bool
	// Parallelism bounds intra-query parallelism: the result-set
	// intersection overlaps the statistics computation, per-keyword df/tc
	// intersections fan out over a worker pool, and scoring partitions
	// the result set into concurrently scored chunks. 0 uses GOMAXPROCS;
	// 1 keeps today's fully sequential execution (the setting all §6
	// reproduction experiments run with). Rankings are bit-identical at
	// every setting.
	Parallelism int
}

// Result is one ranked hit.
type Result struct {
	DocID uint32
	Score float64
}

// ExecStats reports what one query execution did and cost.
type ExecStats struct {
	// Stats accumulates the inverted-list and view-scan cost counters.
	postings.Stats
	// Plan is the strategy used.
	Plan Plan
	// UsedView reports whether a materialized view answered statistics.
	UsedView bool
	// ViewSize is the group count of the used view (0 if none).
	ViewSize int
	// FallbackKeywords counts query keywords whose df/tc had to be
	// computed by intersection because no view tracks them.
	FallbackKeywords int
	// ResultSize is the unranked result cardinality.
	ResultSize int
	// ContextSize is |D_P| (0 for conventional evaluation of a
	// context-free query).
	ContextSize int64
	// CacheHit reports that the context statistics came from the
	// statistics cache (possibly extended with per-keyword fills).
	CacheHit bool
	// Elapsed is wall-clock execution time.
	Elapsed time.Duration
}

// Engine evaluates context-sensitive queries over an index, optionally
// accelerated by a view catalog. It is safe for concurrent use.
type Engine struct {
	ix      *index.Index
	catalog *views.Catalog // may be nil
	scorer  ranking.Scorer

	contentField string
	predField    string
	contentAn    *analysis.Analyzer
	predAn       *analysis.Analyzer

	globalN   int64
	globalLen int64

	costBased bool
	cache     *statsCache // nil when disabled
	workers   int         // resolved Options.Parallelism (≥ 1)
}

// New creates an engine. catalog may be nil (no view acceleration).
func New(ix *index.Index, catalog *views.Catalog, opts Options) *Engine {
	scorer := opts.Scorer
	if scorer == nil {
		scorer = ranking.NewPivotedTFIDF()
	}
	schema := ix.Schema()
	return &Engine{
		ix:           ix,
		catalog:      catalog,
		scorer:       scorer,
		contentField: schema.ContentField,
		predField:    schema.PredicateField,
		contentAn:    ix.AnalyzerFor(schema.ContentField),
		predAn:       ix.AnalyzerFor(schema.PredicateField),
		globalN:      int64(ix.NumDocs()),
		globalLen:    ix.TotalFieldLen(schema.ContentField),
		costBased:    opts.CostBased,
		cache:        newStatsCache(opts.CacheContexts),
		workers:      resolveWorkers(opts.Parallelism),
	}
}

// Index returns the engine's index.
func (e *Engine) Index() *index.Index { return e.ix }

// Catalog returns the engine's view catalog (nil if none).
func (e *Engine) Catalog() *views.Catalog { return e.catalog }

// Scorer returns the engine's ranking function.
func (e *Engine) Scorer() ranking.Scorer { return e.scorer }

// analyzed holds a query after analysis: distinct content terms (in first
// occurrence order), the full analyzed keyword stream (for tq), and the
// normalized context predicates.
type analyzed struct {
	kwTerms  []string // distinct
	kwStream []string // with duplicates, for S_q
	context  []string // normalized predicates
}

func (e *Engine) analyze(q query.Query) (analyzed, error) {
	if err := q.Validate(); err != nil {
		return analyzed{}, err
	}
	var a analyzed
	seen := map[string]bool{}
	for _, kw := range q.Keywords {
		for _, term := range e.contentAn.Analyze(kw) {
			a.kwStream = append(a.kwStream, term)
			if !seen[term] {
				seen[term] = true
				a.kwTerms = append(a.kwTerms, term)
			}
		}
	}
	if len(a.kwTerms) == 0 {
		return analyzed{}, fmt.Errorf("core: query %q has no indexable keywords", q)
	}
	seenCtx := map[string]bool{}
	for _, m := range q.Context {
		for _, term := range e.predAn.Analyze(m) {
			if !seenCtx[term] {
				seenCtx[term] = true
				a.context = append(a.context, term)
			}
		}
	}
	sort.Strings(a.context)
	return a, nil
}

// lists fetches the posting lists for the analyzed query. A nil list
// means the term is absent and the conjunctive result is empty.
func (e *Engine) lists(a analyzed) (kw, ctx []*postings.List) {
	kw = make([]*postings.List, len(a.kwTerms))
	for i, w := range a.kwTerms {
		kw[i] = e.ix.Postings(e.contentField, w)
	}
	ctx = make([]*postings.List, len(a.context))
	for i, m := range a.context {
		ctx[i] = e.ix.Postings(e.predField, m)
	}
	return kw, ctx
}

// evaluateResultSet computes the unranked result
// σ_P(D) ∩ σ_w1(D) ∩ … ∩ σ_wn(D) with the keyword lists first so the
// returned TFs align with a.kwTerms.
func evaluateResultSet(kw, ctx []*postings.List, st *postings.Stats) *postings.Intersection {
	all := make([]*postings.List, 0, len(kw)+len(ctx))
	all = append(all, kw...)
	all = append(all, ctx...)
	return postings.Intersect(all, st)
}

// Search evaluates q with the engine's best strategy: conventional for
// context-free queries, view-based for contextual queries when a usable
// view exists, straightforward otherwise.
func (e *Engine) Search(q query.Query, k int) ([]Result, ExecStats, error) {
	if !q.IsContextual() {
		return e.SearchConventional(q, k)
	}
	return e.SearchContextSensitive(q, k)
}

// SearchConventional evaluates the baseline Q_t = Q_k ∪ P: identical
// unranked result set, whole-collection statistics (context terms are
// boolean filters that "do not contribute to ranking scores").
func (e *Engine) SearchConventional(q query.Query, k int) ([]Result, ExecStats, error) {
	start := time.Now()
	var st ExecStats
	st.Plan = PlanConventional
	a, err := e.analyze(q)
	if err != nil {
		return nil, st, err
	}
	kw, ctx := e.lists(a)
	res := evaluateResultSet(kw, ctx, &st.Stats)
	st.ResultSize = res.Len()

	cs := ranking.CollectionStats{
		N:        e.globalN,
		TotalLen: e.globalLen,
		DF:       make(map[string]int64, len(a.kwTerms)),
		TC:       make(map[string]int64, len(a.kwTerms)),
	}
	for _, w := range a.kwTerms {
		cs.DF[w] = e.ix.DF(e.contentField, w)
		cs.TC[w] = e.ix.TotalTF(e.contentField, w)
	}
	out := e.score(a, res, cs, k)
	st.Elapsed = time.Since(start)
	return out, st, nil
}

// SearchContextSensitive evaluates Q_c = Q_k | P with context statistics,
// answering them from the smallest usable materialized view when the
// catalog has one and falling back to the straightforward plan otherwise.
func (e *Engine) SearchContextSensitive(q query.Query, k int) ([]Result, ExecStats, error) {
	return e.searchContextual(q, k, true)
}

// SearchStraightforward evaluates Q_c with the §3.1 plan unconditionally,
// never consulting views — the paper's "without materialized views"
// series.
func (e *Engine) SearchStraightforward(q query.Query, k int) ([]Result, ExecStats, error) {
	return e.searchContextual(q, k, false)
}

func (e *Engine) searchContextual(q query.Query, k int, useViews bool) ([]Result, ExecStats, error) {
	start := time.Now()
	var st ExecStats
	st.Plan = PlanStraightforward
	a, err := e.analyze(q)
	if err != nil {
		return nil, st, err
	}
	if len(a.context) == 0 {
		// No effective context: identical to conventional evaluation.
		return e.SearchConventional(q, k)
	}
	kw, ctx := e.lists(a)

	// Phase overlap: the unranked result-set intersection and the context
	// statistics computation are data-independent, so with parallelism
	// enabled the intersection runs on its own goroutine (with a private
	// cost counter, merged below) while this goroutine computes
	// statistics.
	var res *postings.Intersection
	var resStats postings.Stats
	var resDone chan struct{}
	if e.workers > 1 {
		resDone = make(chan struct{})
		go func() {
			res = evaluateResultSet(kw, ctx, &resStats)
			close(resDone)
		}()
	}

	var cs ranking.CollectionStats
	cached := false
	if e.cache != nil {
		cs, cached = e.statsFromCache(a, kw, ctx, useViews, &st)
	}
	if !cached {
		if useViews && e.catalog != nil {
			if v := e.catalog.Match(a.context); v != nil && e.viewWorthwhile(v, a, ctx) {
				st.Plan = PlanView
				st.UsedView = true
				st.ViewSize = v.Size()
				cs, st.FallbackKeywords, err = e.statsFromView(v, a, kw, ctx, &st.Stats)
				if err != nil {
					if resDone != nil {
						<-resDone
					}
					return nil, st, err
				}
			}
		}
		if !st.UsedView {
			cs = e.statsStraightforward(a, kw, ctx, &st.Stats)
		}
		e.cacheStore(a, cs)
	}
	st.ContextSize = cs.N

	if resDone != nil {
		<-resDone
		st.Stats.Add(resStats)
	} else {
		res = evaluateResultSet(kw, ctx, &st.Stats)
	}
	st.ResultSize = res.Len()
	out := e.score(a, res, cs, k)
	st.Elapsed = time.Since(start)
	return out, st, nil
}
