package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"csrank/internal/corpus"
	"csrank/internal/index"
	"csrank/internal/query"
	"csrank/internal/selection"
	"csrank/internal/views"
	"csrank/internal/widetable"
)

// bigResultCollection builds an index where one query matches thousands
// of documents, so partitioned scoring actually splits into chunks.
func bigResultCollection(t testing.TB, n int) *index.Index {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	docs := make([]index.Document, n)
	for i := range docs {
		content := "disease"
		for j := 0; j < rng.Intn(4); j++ {
			content += " disease"
		}
		for j := 0; j < rng.Intn(3); j++ {
			content += " organ"
		}
		for j := 0; j < 5+rng.Intn(40); j++ {
			content += fmt.Sprintf(" filler%d", rng.Intn(500))
		}
		mesh := "ctx_a"
		if i%3 == 0 {
			mesh += " ctx_b"
		}
		docs[i] = index.Document{Fields: map[string]string{
			"title": fmt.Sprintf("doc %d", i), "content": content, "mesh": mesh,
		}}
	}
	ix, err := index.BuildFrom(corpus.Schema(), 0, docs)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// assertBitIdentical fails unless both rankings agree exactly — same
// DocIDs in the same order with bit-for-bit equal scores.
func assertBitIdentical(t *testing.T, label string, want, got []Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: result counts differ: %d vs %d", label, len(want), len(got))
	}
	for i := range want {
		if want[i].DocID != got[i].DocID ||
			math.Float64bits(want[i].Score) != math.Float64bits(got[i].Score) {
			t.Fatalf("%s: rank %d differs: %+v vs %+v", label, i, want[i], got[i])
		}
	}
}

// TestParallelScoringDeterministicOnLargeResult drives the partitioned
// scoring path (thousands of matches, several chunks) and checks the
// merged top-k is bit-identical to the sequential heap at every k.
func TestParallelScoringDeterministicOnLargeResult(t *testing.T) {
	ix := bigResultCollection(t, 4000)
	seq := New(ix, nil, Options{Parallelism: 1})
	par := New(ix, nil, Options{Parallelism: 4})
	for _, qs := range []string{"disease | ctx_a", "disease organ | ctx_a ctx_b", "disease disease organ | ctx_b"} {
		q := query.MustParse(qs)
		for _, k := range []int{1, 10, 0} {
			want, _, err := seq.SearchContextSensitive(q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := par.SearchContextSensitive(q, k)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, fmt.Sprintf("%s k=%d", qs, k), want, got)
		}
	}
}

// parallelTestSystem builds a generated corpus with selected views, plus
// a deterministic 200-query workload mixing keyword counts and contexts.
func parallelTestSystem(t testing.TB) (*index.Index, *views.Catalog, []query.Query) {
	t.Helper()
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 3000
	cfg.OntologyTerms = 100
	cfg.NumTopics = 0
	cfg.Seed = 5
	c, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := c.BuildIndex(0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := selection.Select(ix, selection.Config{TC: int64(cfg.NumDocs) / 25, TV: 4096})
	if err != nil {
		t.Fatal(err)
	}
	words := selection.TrackedContentWords(ix, 60)
	terms := ix.Terms("mesh")
	if len(words) < 4 || len(terms) < 2 {
		t.Fatal("corpus too sparse for workload generation")
	}
	rng := rand.New(rand.NewSource(99))
	qs := make([]query.Query, 0, 200)
	for len(qs) < 200 {
		nk := 1 + rng.Intn(4)
		var kws []string
		for i := 0; i < nk; i++ {
			kws = append(kws, words[rng.Intn(len(words))])
		}
		nc := 1 + rng.Intn(2)
		var ctx []string
		for i := 0; i < nc; i++ {
			ctx = append(ctx, terms[rng.Intn(len(terms))])
		}
		qs = append(qs, query.Query{Keywords: kws, Context: ctx})
	}
	return ix, m.Catalog, qs
}

// TestParallelSearchDeterminism asserts that parallel Search output is
// bit-identical to Parallelism: 1 across k ∈ {1, 10, all} on 200 seeded
// queries, with and without views, with and without the stats cache.
func TestParallelSearchDeterminism(t *testing.T) {
	ix, cat, qs := parallelTestSystem(t)
	engines := []struct {
		label    string
		seq, par *Engine
	}{
		{"views",
			New(ix, cat, Options{Parallelism: 1}),
			New(ix, cat, Options{Parallelism: 4})},
		{"straightforward",
			New(ix, nil, Options{Parallelism: 1}),
			New(ix, nil, Options{Parallelism: 4})},
		{"cached",
			New(ix, cat, Options{Parallelism: 1, CacheContexts: 32}),
			New(ix, cat, Options{Parallelism: 4, CacheContexts: 32})},
	}
	for _, pair := range engines {
		for qi, q := range qs {
			for _, k := range []int{1, 10, 0} {
				want, _, err := pair.seq.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				got, _, err := pair.par.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, fmt.Sprintf("%s q%d k=%d", pair.label, qi, k), want, got)
			}
		}
	}
}

// TestParallelEngineRaceStress hammers one engine — views, sharded stats
// cache and intra-query parallelism all enabled — from many goroutines.
// Run under -race (the CI workflow does) to hunt data races between the
// phase-overlap goroutine, the stats worker pool, the scoring partitions
// and the cache shards.
func TestParallelEngineRaceStress(t *testing.T) {
	ix, _, _ := motivatingCollection(t)
	tbl := widetable.FromIndex(ix, []string{"pancreas", "leukemia"})
	v, err := views.Materialize(tbl, []string{"digestive_system"}, []string{"pancreas", "leukemia"})
	if err != nil {
		t.Fatal(err)
	}
	cat := views.NewCatalog([]*views.View{v}, 100, 4096)
	e := New(ix, cat, Options{Parallelism: 4, CacheContexts: 4})
	queries := []string{
		"pancreas leukemia | digestive_system",
		"leukemia | neoplasms",
		"pancreas | digestive_system",
		"pancreas leukemia tumor | digestive_system",
		"leukemia lymphoma | neoplasms",
		"surgery outcome | digestive_system",
	}
	want := make([][]Result, len(queries))
	for i, qs := range queries {
		if want[i], _, err = e.Search(query.MustParse(qs), 5); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				qi := (g + i) % len(queries)
				got, _, err := e.Search(query.MustParse(queries[qi]), 5)
				if err != nil {
					errs <- err
					return
				}
				for j := range want[qi] {
					if got[j].DocID != want[qi][j].DocID {
						errs <- fmt.Errorf("query %d rank %d changed under concurrency", qi, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
