package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"csrank/internal/corpus"
	"csrank/internal/index"
	"csrank/internal/query"
	"csrank/internal/ranking"
	"csrank/internal/views"
	"csrank/internal/widetable"
)

// prunedCorpusDocs spans three posting-list containers (docIDs run past
// 2·2^16), so container-granular skipping is actually reachable. Every
// document has exactly the same analyzed content length, which makes the
// guaranteed-skip test's threshold argument exact: with equal lengths,
// score is monotone in tf alone.
const prunedCorpusDocs = 140000

var (
	prunedOnce sync.Once
	prunedIx   *index.Index
	prunedCat  *views.Catalog
	prunedErr  error
)

// prunedTFAlpha is the tf of "alpha" in doc i (0 when absent). Documents
// past 120000 — covering the whole last container — carry tf 1 only, so
// a filled top-10 heap makes their containers skippable.
func prunedTFAlpha(i int) int {
	if i%2 != 0 {
		return 0
	}
	if i >= 120000 {
		return 1
	}
	return 1 + int((uint32(i)*2654435761)>>20)%20
}

func prunedTFBeta(i int) int {
	if i%5 != 0 {
		return 0
	}
	return 1 + i%7
}

// buildPrunedSystem builds the shared multi-container corpus once per
// process, plus a catalog with one view over {ctx_a} tracking both
// keywords (for the views-on arm of the equivalence matrix).
func buildPrunedSystem(t testing.TB) (*index.Index, *views.Catalog) {
	t.Helper()
	prunedOnce.Do(func() {
		const docLen = 40
		pads := []string{"pada", "padb", "padc", "padd", "pade", "padf"}
		docs := make([]index.Document, prunedCorpusDocs)
		var sb strings.Builder
		for i := range docs {
			sb.Reset()
			ta, tb := prunedTFAlpha(i), prunedTFBeta(i)
			for j := 0; j < ta; j++ {
				sb.WriteString("alpha ")
			}
			for j := 0; j < tb; j++ {
				sb.WriteString("beta ")
			}
			for j := ta + tb; j < docLen; j++ {
				sb.WriteString(pads[(i+j)%len(pads)])
				sb.WriteByte(' ')
			}
			mesh := "ctx_other"
			if i%5 != 0 {
				mesh = "ctx_a"
			}
			if i%16 == 0 {
				mesh += " ctx_b"
			}
			docs[i] = index.Document{Fields: map[string]string{
				"title": fmt.Sprintf("d%d", i), "content": sb.String(), "mesh": mesh,
			}}
		}
		var ix *index.Index
		ix, prunedErr = index.BuildFrom(corpus.Schema(), 0, docs)
		if prunedErr != nil {
			return
		}
		tbl := widetable.FromIndex(ix, []string{"alpha", "beta"})
		v, err := views.Materialize(tbl, []string{"ctx_a"}, []string{"alpha", "beta"})
		if err != nil {
			prunedErr = err
			return
		}
		prunedIx = ix
		prunedCat = views.NewCatalog([]*views.View{v}, 100, 1<<30)
	})
	if prunedErr != nil {
		t.Fatal(prunedErr)
	}
	return prunedIx, prunedCat
}

func prunedScorers() []ranking.Scorer {
	return []ranking.Scorer{
		ranking.NewPivotedTFIDF(),
		ranking.NewBM25(),
		ranking.NewDirichletLM(),
		ranking.NewCosineTFIDF(),
		ranking.NewJelinekMercerLM(),
	}
}

// TestPrunedBitIdenticalToExhaustive is the safety contract: with pruning
// on, Search must return exactly the exhaustive top-k — same DocIDs, same
// order, bit-for-bit equal scores — for every scorer, every k, every
// parallelism, conventional and contextual queries alike. The query pool
// rotates so the full (scorer × parallelism × k) cross is exercised
// without scoring the 140k-doc corpus hundreds of times.
func TestPrunedBitIdenticalToExhaustive(t *testing.T) {
	ix, _ := buildPrunedSystem(t)
	queries := []string{
		"alpha",
		"beta",
		"alpha beta",
		"alpha | ctx_a",
		"beta | ctx_b",
		"alpha beta | ctx_a",
	}
	ks := []int{1, 10, 100}
	pars := []int{1, 2, 4}
	combo := 0
	for _, sc := range prunedScorers() {
		for _, p := range pars {
			exh := New(ix, nil, Options{Parallelism: p, Scorer: sc})
			prn := New(ix, nil, Options{Parallelism: p, Scorer: sc, Pruning: true})
			for _, k := range ks {
				qs := queries[combo%len(queries)]
				combo++
				q := query.MustParse(qs)
				want, wst, err := exh.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				got, gst, err := prn.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s p=%d k=%d %q", sc.Name(), p, k, qs)
				if wst.Pruning.Active {
					t.Fatalf("%s: exhaustive engine reported pruning active", label)
				}
				if !gst.Pruning.Active {
					t.Fatalf("%s: pruning engine did not engage the pruned path", label)
				}
				assertBitIdentical(t, label, want, got)
			}
		}
	}
}

// TestPrunedBitIdenticalWithViews repeats the equivalence check on the
// view-backed contextual plan: bounds are computed from whatever
// statistics the query ranks with, so a view-answered S_c(D_P) must
// prune just as safely as the straightforward one.
func TestPrunedBitIdenticalWithViews(t *testing.T) {
	ix, cat := buildPrunedSystem(t)
	for _, p := range []int{1, 4} {
		exh := New(ix, cat, Options{Parallelism: p})
		prn := New(ix, cat, Options{Parallelism: p, Pruning: true})
		for _, k := range []int{1, 10, 100} {
			for _, qs := range []string{"alpha | ctx_a", "alpha beta | ctx_a", "beta | ctx_b"} {
				q := query.MustParse(qs)
				want, _, err := exh.SearchContextSensitive(q, k)
				if err != nil {
					t.Fatal(err)
				}
				got, gst, err := prn.SearchContextSensitive(q, k)
				if err != nil {
					t.Fatal(err)
				}
				if !gst.Pruning.Active {
					t.Fatalf("views p=%d k=%d %q: pruned path not engaged", p, k, qs)
				}
				assertBitIdentical(t, fmt.Sprintf("views p=%d k=%d %q", p, k, qs), want, got)
			}
		}
	}
}

// TestPrunedSkipsWork asserts pruning actually prunes on the corpus built
// for it: the last container holds only tf-1 "alpha" documents, so once
// the top-10 heap fills with the tf≥10 scores of earlier containers, its
// summed ceiling falls below the threshold and the container is skipped
// wholesale; low-tf documents inside the surviving containers fail their
// document-level bound checks too.
func TestPrunedSkipsWork(t *testing.T) {
	ix, _ := buildPrunedSystem(t)
	e := New(ix, nil, Options{Parallelism: 1, Pruning: true})
	_, st, err := e.Search(query.MustParse("alpha"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Pruning.Active {
		t.Fatal("pruned path not engaged")
	}
	if st.Pruning.ContainersSkipped < 1 {
		t.Fatalf("ContainersSkipped = %d, want ≥ 1 (tf-1 tail container must be skipped)", st.Pruning.ContainersSkipped)
	}
	if st.Pruning.DocsSkipped == 0 {
		t.Fatal("DocsSkipped = 0, want document-level skips inside surviving containers")
	}
	if st.Pruning.BoundChecks < st.Pruning.DocsSkipped {
		t.Fatalf("BoundChecks %d < DocsSkipped %d", st.Pruning.BoundChecks, st.Pruning.DocsSkipped)
	}
	// The cost model must show the savings: a pruned search of the same
	// query scans strictly fewer posting entries than the exhaustive one.
	_, est, err := New(ix, nil, Options{Parallelism: 1}).Search(query.MustParse("alpha"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.EntriesScanned >= est.EntriesScanned {
		t.Fatalf("pruned EntriesScanned %d ≥ exhaustive %d", st.EntriesScanned, est.EntriesScanned)
	}
}

// TestPrunedDeadlineDegrades: an already-expired per-query deadline with
// pruning enabled must degrade gracefully — flagged partial (here empty)
// results and a nil error — exactly like the exhaustive path.
func TestPrunedDeadlineDegrades(t *testing.T) {
	ix, _ := buildPrunedSystem(t)
	for _, p := range []int{1, 4} {
		e := New(ix, nil, Options{Parallelism: p, Pruning: true, Deadline: time.Nanosecond})
		res, st, err := e.SearchContextSensitive(query.MustParse("alpha | ctx_a"), 10)
		if err != nil {
			t.Fatalf("parallelism %d: expired deadline returned error %v, want degraded result", p, err)
		}
		if !st.Degraded || st.DegradedReason == "" {
			t.Fatalf("parallelism %d: Degraded = %v (%q), want flagged", p, st.Degraded, st.DegradedReason)
		}
		if len(res) != 0 {
			t.Fatalf("parallelism %d: got %d results before any evaluation, want 0", p, len(res))
		}
	}
}

// unboundedScorer wraps BM25 but hides UpperBound, modeling a
// user-supplied Scorer with no bound derivation.
type unboundedScorer struct{ inner ranking.Scorer }

func (u unboundedScorer) Name() string { return "unbounded-" + u.inner.Name() }
func (u unboundedScorer) Score(q ranking.QueryStats, d ranking.DocStats, c ranking.CollectionStats) float64 {
	return u.inner.Score(q, d, c)
}

// TestPrunedFallsBackForUnboundedScorer: Options.Pruning with a scorer
// that cannot bound itself must silently fall back to exhaustive scoring
// and still return the exact ranking.
func TestPrunedFallsBackForUnboundedScorer(t *testing.T) {
	ix, _ := buildPrunedSystem(t)
	base := New(ix, nil, Options{Parallelism: 2, Scorer: ranking.NewBM25()})
	e := New(ix, nil, Options{Parallelism: 2, Scorer: unboundedScorer{ranking.NewBM25()}, Pruning: true})
	q := query.MustParse("alpha | ctx_a")
	want, _, err := base.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := e.Search(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pruning.Active {
		t.Fatal("pruning reported active for a scorer with no UpperBound")
	}
	if st.Pruning.ContainersSkipped != 0 || st.Pruning.DocsSkipped != 0 {
		t.Fatalf("fallback path recorded pruning work: %+v", st.Pruning)
	}
	assertBitIdentical(t, "unbounded fallback", want, got)
}

// TestPrunedZeroAndAllK: k ≤ 0 (return everything) can prune nothing and
// must take the exhaustive path; a k larger than the result set must
// return the full set, identically.
func TestPrunedZeroAndAllK(t *testing.T) {
	ix, _ := buildPrunedSystem(t)
	exh := New(ix, nil, Options{Parallelism: 2})
	prn := New(ix, nil, Options{Parallelism: 2, Pruning: true})
	q := query.MustParse("beta | ctx_b")
	want, _, err := exh.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := prn.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pruning.Active {
		t.Fatal("k=0 engaged the pruned path; nothing can be pruned when everything is returned")
	}
	assertBitIdentical(t, "k=0", want, got)

	want, _, err = exh.Search(q, len(want)+50)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err = prn.Search(q, len(want)+50)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "k>matches", want, got)
}
