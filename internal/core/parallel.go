package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"csrank/internal/postings"
	"csrank/internal/ranking"
)

// Intra-query parallel execution. One query exposes three independent
// sources of parallelism, all bounded by Options.Parallelism:
//
//   - phase overlap: the unranked result-set intersection and the context
//     statistics computation share no data, so searchContextual runs them
//     concurrently (one goroutine each);
//   - statistics fan-out: each keyword's df/tc intersection is
//     independent, so keywordStatsBatch spreads them over a worker pool;
//   - partitioned scoring: the scoring loop splits res.DocIDs into
//     contiguous chunks, scores each into a private top-k heap and merges.
//
// Every parallel path produces bit-identical output to the sequential
// one: per-document scores are pure functions of per-document statistics,
// df/tc values are exact regardless of computation order, cost counters
// accumulate into goroutine-private postings.Stats and merge with Add
// (commutative sums), and top-k selection under the strict total order
// worseThan does not depend on arrival order.

// resolveWorkers maps Options.Parallelism to a worker count: 0 means
// GOMAXPROCS, anything below 1 is clamped to sequential.
func resolveWorkers(p int) int {
	if p == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		return 1
	}
	return p
}

// minScoreChunk is the smallest per-chunk document count worth a
// goroutine; below it the spawn overhead dwarfs the scoring work.
const minScoreChunk = 256

// scoreChunks picks how many contiguous partitions to score n documents
// in, given w available workers.
func scoreChunks(n, w int) int {
	if w <= 1 || n < 2*minScoreChunk {
		return 1
	}
	chunks := (n + minScoreChunk - 1) / minScoreChunk
	if chunks > w {
		chunks = w
	}
	return chunks
}

// keywordStatsBatch computes df(w, D_P) and tc(w, D_P) for the keywords
// at positions idxs (indices into kw and a.kwTerms), fanning the
// independent intersections out over the engine's worker pool when it
// pays. Results are emitted in idxs order on the calling goroutine; list
// cost from all workers accumulates into st.
func (e *Engine) keywordStatsBatch(idxs []int, kw, ctx []*postings.List, st *postings.Stats, emit func(i int, df, tc int64)) {
	w := e.workers
	if w > len(idxs) {
		w = len(idxs)
	}
	if w <= 1 {
		for _, i := range idxs {
			df, tc := e.keywordContextStats(kw[i], ctx, st)
			emit(i, df, tc)
		}
		return
	}
	dfs := make([]int64, len(idxs))
	tcs := make([]int64, len(idxs))
	stats := make([]postings.Stats, w)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 1; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			e.keywordStatsWorker(&next, idxs, kw, ctx, &stats[g], dfs, tcs)
		}(g)
	}
	// The calling goroutine is worker 0.
	e.keywordStatsWorker(&next, idxs, kw, ctx, &stats[0], dfs, tcs)
	wg.Wait()
	if st != nil {
		for g := range stats {
			st.Add(stats[g])
		}
	}
	for j, i := range idxs {
		emit(i, dfs[j], tcs[j])
	}
}

// keywordStatsWorker drains the shared work queue: each claimed slot j
// is one keyword intersection, written to dfs[j]/tcs[j] without locks.
func (e *Engine) keywordStatsWorker(next *atomic.Int64, idxs []int, kw, ctx []*postings.List, st *postings.Stats, dfs, tcs []int64) {
	for {
		j := int(next.Add(1)) - 1
		if j >= len(idxs) {
			return
		}
		dfs[j], tcs[j] = e.keywordContextStats(kw[idxs[j]], ctx, st)
	}
}

// score ranks the unranked result under the given collection statistics
// and returns the top k (all results if k ≤ 0), ordered by descending
// score then ascending DocID. When the scorer supports the term-indexed
// fast path the per-document loop performs zero map operations and zero
// allocations; when the engine allows parallelism and the result is
// large enough, contiguous partitions are scored concurrently.
func (e *Engine) score(a analyzed, res *postings.Intersection, cs ranking.CollectionStats, k int) []Result {
	qs := ranking.NewQueryStats(a.kwStream)
	indexed, _ := e.scorer.(ranking.IndexedScorer)
	if indexed != nil {
		// a.kwTerms is the distinct keywords in first-occurrence order —
		// the same order qs.DistinctTerms() iterates — so the slice loop
		// sums in the map loop's exact floating-point order.
		cs.IndexTerms(a.kwTerms)
	}
	n := res.Len()
	chunks := scoreChunks(n, e.workers)
	if chunks <= 1 {
		top := newTopK(k)
		e.scoreRange(qs, a.kwTerms, res, cs, indexed, 0, n, top)
		return top.results()
	}
	tops := make([]*topK, chunks)
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		tops[c] = newTopK(k)
		if c == chunks-1 {
			// The calling goroutine scores the last chunk itself.
			e.scoreRange(qs, a.kwTerms, res, cs, indexed, lo, hi, tops[c])
			continue
		}
		wg.Add(1)
		go func(lo, hi int, top *topK) {
			defer wg.Done()
			e.scoreRange(qs, a.kwTerms, res, cs, indexed, lo, hi, top)
		}(lo, hi, tops[c])
	}
	wg.Wait()
	final := tops[0]
	for _, t := range tops[1:] {
		final.merge(t)
	}
	return final.results()
}

// scoreRange scores documents [lo, hi) of res into top. One TF buffer
// (slice or map, depending on the scorer's capabilities) is reused for
// the whole range.
func (e *Engine) scoreRange(qs ranking.QueryStats, terms []string, res *postings.Intersection, cs ranking.CollectionStats, indexed ranking.IndexedScorer, lo, hi int, top *topK) {
	if indexed != nil {
		tf := make([]int64, len(terms))
		for i := lo; i < hi; i++ {
			docID := res.DocIDs[i]
			for j := range terms {
				tf[j] = int64(res.TFs[j][i])
			}
			ds := ranking.DocStats{TFs: tf, Len: e.ix.FieldLen(docID, e.contentField)}
			top.push(Result{DocID: docID, Score: indexed.ScoreIndexed(qs, ds, cs)})
		}
		return
	}
	tf := make(map[string]int64, len(terms))
	for i := lo; i < hi; i++ {
		docID := res.DocIDs[i]
		for j, w := range terms {
			tf[w] = int64(res.TFs[j][i])
		}
		ds := ranking.DocStats{TF: tf, Len: e.ix.FieldLen(docID, e.contentField)}
		top.push(Result{DocID: docID, Score: e.scorer.Score(qs, ds, cs)})
	}
}
