package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"csrank/internal/postings"
	"csrank/internal/ranking"
)

// Intra-query parallel execution. One query exposes three independent
// sources of parallelism, all bounded by Options.Parallelism:
//
//   - phase overlap: the unranked result-set intersection and the context
//     statistics computation share no data, so searchContextual runs them
//     concurrently (one goroutine each);
//   - statistics fan-out: each keyword's df/tc intersection is
//     independent, so keywordStatsBatch spreads them over a worker pool;
//   - partitioned scoring: the scoring loop splits res.DocIDs into
//     contiguous chunks, scores each into a private top-k heap and merges.
//
// Every parallel path produces bit-identical output to the sequential
// one: per-document scores are pure functions of per-document statistics,
// df/tc values are exact regardless of computation order, cost counters
// accumulate into goroutine-private postings.Stats and merge with Add
// (commutative sums), and top-k selection under the strict total order
// worseThan does not depend on arrival order.
//
// Every worker is panic-isolated: a recover at the goroutine boundary
// converts the panic into an error (with the captured stack) in the
// worker's private error slot, a shared failure flag stops siblings from
// claiming further work, and the query — only that query — fails.
// Cancellation is cooperative: workers poll ctx between work items (the
// postings kernels poll inside items, scoring polls every scoreCheckMask+1
// documents).

// resolveWorkers maps Options.Parallelism to a worker count: 0 means
// GOMAXPROCS, anything below 1 is clamped to sequential.
func resolveWorkers(p int) int {
	if p == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		return 1
	}
	return p
}

// minScoreChunk is the smallest per-chunk document count worth a
// goroutine; below it the spawn overhead dwarfs the scoring work.
const minScoreChunk = 256

// scoreCheckMask throttles ctx polling in the scoring loop: one Err()
// call per mask+1 documents keeps the hot loop branch-cheap.
const scoreCheckMask = 1023

// scoreChunks picks how many contiguous partitions to score n documents
// in, given w available workers.
func scoreChunks(n, w int) int {
	if w <= 1 || n < 2*minScoreChunk {
		return 1
	}
	chunks := (n + minScoreChunk - 1) / minScoreChunk
	if chunks > w {
		chunks = w
	}
	return chunks
}

// testHookKeywordStats, when non-nil, runs before each keyword-stats work
// item with the keyword's position; tests use it to inject worker panics.
// Set it only while no queries are in flight.
var testHookKeywordStats func(i int)

// keywordStatsBatch computes df(w, D_P) and tc(w, D_P) for the keywords
// at positions idxs (indices into kw and a.kwTerms), fanning the
// independent intersections out over the engine's worker pool when it
// pays. Results are emitted in idxs order on the calling goroutine; list
// cost from all workers accumulates into st. On error (cancellation,
// deadline, worker panic) nothing is emitted and the first error in
// worker order is returned.
func (e *Engine) keywordStatsBatch(ctx context.Context, idxs []int, kw, preds []*postings.List, st *postings.Stats, emit func(i int, df, tc int64)) error {
	w := e.workers
	if w > len(idxs) {
		w = len(idxs)
	}
	if w <= 1 {
		for _, i := range idxs {
			if hook := testHookKeywordStats; hook != nil {
				hook(i)
			}
			df, tc, err := e.keywordContextStats(ctx, kw[i], preds, st)
			if err != nil {
				return err
			}
			emit(i, df, tc)
		}
		return nil
	}
	dfs := make([]int64, len(idxs))
	tcs := make([]int64, len(idxs))
	stats := make([]postings.Stats, w)
	errs := make([]error, w)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for g := 1; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = e.keywordStatsWorker(ctx, &next, &failed, idxs, kw, preds, &stats[g], dfs, tcs)
		}(g)
	}
	// The calling goroutine is worker 0.
	errs[0] = e.keywordStatsWorker(ctx, &next, &failed, idxs, kw, preds, &stats[0], dfs, tcs)
	wg.Wait()
	if st != nil {
		for g := range stats {
			st.Add(stats[g])
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for j, i := range idxs {
		emit(i, dfs[j], tcs[j])
	}
	return nil
}

// keywordStatsWorker drains the shared work queue: each claimed slot j
// is one keyword intersection, written to dfs[j]/tcs[j] without locks.
// A recovered panic or an error trips the shared failure flag so sibling
// workers stop claiming slots promptly.
func (e *Engine) keywordStatsWorker(ctx context.Context, next *atomic.Int64, failed *atomic.Bool, idxs []int, kw, preds []*postings.List, st *postings.Stats, dfs, tcs []int64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			failed.Store(true)
			err = panicError("keyword-statistics worker", r)
		}
	}()
	for !failed.Load() {
		j := int(next.Add(1)) - 1
		if j >= len(idxs) {
			return nil
		}
		if hook := testHookKeywordStats; hook != nil {
			hook(idxs[j])
		}
		var cerr error
		dfs[j], tcs[j], cerr = e.keywordContextStats(ctx, kw[idxs[j]], preds, st)
		if cerr != nil {
			failed.Store(true)
			return cerr
		}
	}
	return nil
}

// score ranks the unranked result under the given collection statistics
// and returns the top k (all results if k ≤ 0), ordered by descending
// score then ascending DocID. When the scorer supports the term-indexed
// fast path the per-document loop performs zero map operations and zero
// allocations; when the engine allows parallelism and the result is
// large enough, contiguous partitions are scored concurrently. On
// deadline expiry the merged heaps form a valid partial top-k (over the
// documents scored before the cutoff), returned with the deadline error;
// a cancellation or worker panic returns nil results with the error.
func (e *Engine) score(ctx context.Context, a analyzed, res *postings.Intersection, cs ranking.CollectionStats, k int) ([]Result, error) {
	qs := ranking.NewQueryStats(a.kwStream)
	indexed, _ := e.scorer.(ranking.IndexedScorer)
	if indexed != nil {
		// a.kwTerms is the distinct keywords in first-occurrence order —
		// the same order qs.DistinctTerms() iterates — so the slice loop
		// sums in the map loop's exact floating-point order.
		cs.IndexTerms(a.kwTerms)
	}
	n := res.Len()
	chunks := scoreChunks(n, e.workers)
	if chunks <= 1 {
		top := newTopK(k)
		err := e.scoreRange(ctx, qs, a.kwTerms, res, cs, indexed, 0, n, top)
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			top.release()
			return nil, err
		}
		out := top.results()
		top.release()
		return out, err
	}
	tops := make([]*topK, chunks)
	errs := make([]error, chunks)
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		tops[c] = newTopK(k)
		if c == chunks-1 {
			// The calling goroutine scores the last chunk itself.
			errs[c] = e.guardedScoreRange(ctx, qs, a.kwTerms, res, cs, indexed, lo, hi, tops[c])
			continue
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			errs[c] = e.guardedScoreRange(ctx, qs, a.kwTerms, res, cs, indexed, lo, hi, tops[c])
		}(c, lo, hi)
	}
	wg.Wait()
	// A deadline expiry in any chunk still yields a valid partial top-k
	// from the documents all chunks managed to score; a cancellation or
	// panic fails the query.
	var deadlineErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.DeadlineExceeded) {
			deadlineErr = err
			continue
		}
		for _, t := range tops {
			t.release()
		}
		return nil, err
	}
	final := tops[0]
	for _, t := range tops[1:] {
		final.merge(t)
	}
	out := final.results()
	for _, t := range tops {
		t.release()
	}
	return out, deadlineErr
}

// guardedScoreRange is scoreRange behind a panic guard, for use as a
// scoring worker body.
func (e *Engine) guardedScoreRange(ctx context.Context, qs ranking.QueryStats, terms []string, res *postings.Intersection, cs ranking.CollectionStats, indexed ranking.IndexedScorer, lo, hi int, top *topK) (err error) {
	defer recoverToError(&err, "scoring worker")
	return e.scoreRange(ctx, qs, terms, res, cs, indexed, lo, hi, top)
}

// scoreRange scores documents [lo, hi) of res into top. One pooled TF
// buffer (slice or map, depending on the scorer's capabilities) is
// reused for the whole range. ctx is polled every scoreCheckMask+1
// documents; on expiry the heap keeps what was scored so far and ctx's
// error is returned.
func (e *Engine) scoreRange(ctx context.Context, qs ranking.QueryStats, terms []string, res *postings.Intersection, cs ranking.CollectionStats, indexed ranking.IndexedScorer, lo, hi int, top *topK) error {
	s := getScratch(len(terms))
	defer putScratch(s)
	if indexed != nil {
		tf := s.tf
		for i := lo; i < hi; i++ {
			if i&scoreCheckMask == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			docID := res.DocIDs[i]
			for j := range terms {
				tf[j] = int64(res.TFs[j][i])
			}
			ds := ranking.DocStats{TFs: tf, Len: e.ix.FieldLen(docID, e.contentField)}
			top.push(Result{DocID: docID, Score: indexed.ScoreIndexed(qs, ds, cs)})
		}
		return nil
	}
	if s.tfm == nil {
		s.tfm = make(map[string]int64, len(terms))
	}
	tf := s.tfm
	for i := lo; i < hi; i++ {
		if i&scoreCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		docID := res.DocIDs[i]
		for j, w := range terms {
			tf[w] = int64(res.TFs[j][i])
		}
		ds := ranking.DocStats{TF: tf, Len: e.ix.FieldLen(docID, e.contentField)}
		top.push(Result{DocID: docID, Score: e.scorer.Score(qs, ds, cs)})
	}
	return nil
}
