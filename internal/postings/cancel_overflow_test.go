package postings

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestBuilderAddSaturates: accumulating TFs past the uint32 ceiling must
// saturate at MaxUint32, not wrap to a small count.
func TestBuilderAddSaturates(t *testing.T) {
	b := NewBuilder(0)
	b.Add(7, math.MaxUint32)
	b.Add(7, 5)
	l := b.Build()
	if got := l.TF(7); got != math.MaxUint32 {
		t.Fatalf("TF(7) = %d, want saturated MaxUint32", got)
	}
}

// TestUnionTFSaturates: summing per-document TFs across lists widens to
// 64-bit and saturates on emission; previously two MaxUint32 postings
// wrapped to a tiny count.
func TestUnionTFSaturates(t *testing.T) {
	a := NewList([]Posting{{DocID: 1, TF: math.MaxUint32}, {DocID: 2, TF: 3}}, 0)
	b := NewList([]Posting{{DocID: 1, TF: math.MaxUint32}, {DocID: 3, TF: 4}}, 0)
	u := Union([]*List{a, b}, nil)
	if got := u.TF(1); got != math.MaxUint32 {
		t.Fatalf("union TF(1) = %d, want saturated MaxUint32 (wrap would give %d)",
			got, uint32(2*uint64(math.MaxUint32)&math.MaxUint32))
	}
	if u.TF(2) != 3 || u.TF(3) != 4 {
		t.Fatalf("union disturbed unshared TFs: %d, %d", u.TF(2), u.TF(3))
	}
}

// TestCountTFSumPastUint32: tc accumulates in int64, so a context whose
// TF total exceeds MaxUint32 must be reported exactly.
func TestCountTFSumPastUint32(t *testing.T) {
	const n = 5
	ps := make([]Posting, n)
	ids := make([]uint32, n)
	for i := range ps {
		ps[i] = Posting{DocID: uint32(i + 1), TF: math.MaxUint32}
		ids[i] = uint32(i + 1)
	}
	l := NewList(ps, 0)
	pred := FromDocIDs(ids, 0)
	df, tc := CountTFSum(l, []*List{pred}, nil)
	want := int64(n) * int64(math.MaxUint32)
	if df != n || tc != want {
		t.Fatalf("df, tc = %d, %d; want %d, %d", df, tc, n, want)
	}
	// The degenerate no-predicate path sums via SumTF — same widening.
	if _, tc0 := CountTFSum(l, nil, nil); tc0 != want {
		t.Fatalf("no-predicate tc = %d, want %d", tc0, want)
	}
}

// denseTestLists builds k overlapping lists big enough that every kernel
// crosses multiple chunk ranges and stride checkpoints.
func denseTestLists(k, n int) []*List {
	lists := make([]*List, k)
	for i := 0; i < k; i++ {
		var ids []uint32
		for d := 0; d < n; d++ {
			if d%(i+1) == 0 {
				ids = append(ids, uint32(d*3)) // spread across chunk ranges
			}
		}
		lists[i] = FromDocIDs(ids, 0)
	}
	return lists
}

// TestKernelsBackgroundCtxParity: every *Ctx kernel under
// context.Background must be error-free and agree exactly with its plain
// wrapper — the zero-overhead no-deadline guarantee at the kernel level.
func TestKernelsBackgroundCtxParity(t *testing.T) {
	lists := denseTestLists(3, 50000)
	bg := context.Background()

	plain := Intersect(lists, nil)
	ctxRes, err := IntersectCtx(bg, lists, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.DocIDs) != len(ctxRes.DocIDs) {
		t.Fatalf("IntersectCtx cardinality %d vs %d", len(ctxRes.DocIDs), len(plain.DocIDs))
	}
	for i := range plain.DocIDs {
		if plain.DocIDs[i] != ctxRes.DocIDs[i] {
			t.Fatalf("IntersectCtx DocIDs diverge at %d", i)
		}
	}

	if n, nc := IntersectionSize(lists, nil), int64(0); true {
		var err error
		nc, err = IntersectionSizeCtx(bg, lists, nil)
		if err != nil || nc != n {
			t.Fatalf("IntersectionSizeCtx = %d, %v; want %d", nc, err, n)
		}
	}

	param := func(d uint32) int64 { return int64(d % 17) }
	c1, s1 := CountSum(lists, param, nil)
	c2, s2, err := CountSumCtx(bg, lists, param, nil)
	if err != nil || c1 != c2 || s1 != s2 {
		t.Fatalf("CountSumCtx = (%d, %d, %v); want (%d, %d)", c2, s2, err, c1, s1)
	}

	u1 := Union(lists, nil)
	u2, err := UnionCtx(bg, lists, nil)
	if err != nil || u1.Len() != u2.Len() {
		t.Fatalf("UnionCtx len %d, %v; want %d", u2.Len(), err, u1.Len())
	}
}

// TestKernelsCancelledCtx: a pre-cancelled ctx stops every kernel early
// with context.Canceled and a partial (possibly empty) result.
func TestKernelsCancelledCtx(t *testing.T) {
	lists := denseTestLists(3, 50000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	full := IntersectionSize(lists, nil)
	if res, err := IntersectCtx(ctx, lists, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("IntersectCtx err = %v", err)
	} else if int64(res.Len()) >= full && full > 0 {
		t.Fatalf("IntersectCtx did not stop early: %d of %d", res.Len(), full)
	}
	if n, err := IntersectionSizeCtx(ctx, lists, nil); !errors.Is(err, context.Canceled) || (n >= full && full > 0) {
		t.Fatalf("IntersectionSizeCtx = %d, %v", n, err)
	}
	if _, _, err := CountSumCtx(ctx, lists, func(uint32) int64 { return 1 }, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("CountSumCtx err = %v", err)
	}
	if _, _, err := CountTFSumCtx(ctx, lists[0], lists[1:], nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("CountTFSumCtx err = %v", err)
	}
	if _, err := UnionCtx(ctx, lists, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("UnionCtx err = %v", err)
	}
}
