package postings

// cursor walks a List during an intersection. Physically it advances
// through the adaptive containers — galloping within array chunks, jumping
// straight to the target word within bitset chunks — but its cost
// reporting reproduces the §3.2.1 skip-pointer model exactly: a seek
// charges one Seek, SegmentsSkipped for every M0-segment wholly below the
// target, and EntriesScanned for the entries of the landing segment that
// precede it. Because the global element position is tracked at all times
// (dense chunks maintain an incremental rank), the reported numbers are
// identical to what the former segment-skip implementation produced.
//
// Over a mapped list the cursor is additionally *lazy*: entering a chunk
// only records its metadata position (the chunk's first element, whose
// global index is exact without the payload) and defers materializing
// the block until the first docID/tf/step actually needs it. A pruned
// scoring loop that dismisses the container via its bound therefore
// skips the block without ever decompressing it, and the cost charges
// are unchanged because they are functions of global positions only.
type cursor struct {
	l  *List
	st *Stats
	// ci is the current chunk; len(chunks) means exhausted. Within the
	// chunk the position is ki (array) or bit+rank (bitset); gpos is the
	// global element index and cur the current docID.
	ci   int
	ki   int
	bit  int
	rank int
	gpos int
	cur  uint32
	// Resident payload views of the current chunk, loaded by resolve.
	// keys/bits mirror the chunk representation; tfs is the chunk-local
	// TF column (nil ⇒ TF = 1).
	keys []uint16
	bits []uint64
	tfs  []uint32
	// pending marks a cursor positioned at the first element of a mapped
	// chunk whose payload has not been materialized. gpos is exact
	// (offsets[ci]); cur/ki/bit/rank are not yet valid.
	pending bool
}

func newCursor(l *List, st *Stats) *cursor {
	c := &cursor{l: l, st: st}
	c.enterChunk(0)
	return c
}

// enterChunk positions the cursor on the first element of chunk ci, or
// marks it exhausted when no chunk remains. Chunks are never empty. For
// mapped chunks the position is recorded lazily: the payload stays on
// disk until resolve.
func (c *cursor) enterChunk(ci int) {
	c.ci = ci
	if ci >= len(c.l.chunks) {
		c.gpos = c.l.n
		c.pending = false
		return
	}
	c.gpos = c.l.offsets[ci]
	if c.l.src != nil {
		c.pending = true
		return
	}
	c.loadViews(ci)
	c.firstInChunk()
}

// loadViews installs the payload views of chunk ci, charging a
// quarantine skip when the chunk's mapped block is blacklisted.
func (c *cursor) loadViews(ci int) {
	var quarantined bool
	c.keys, c.bits, c.tfs, quarantined = c.l.payloadQ(ci)
	if quarantined {
		c.st.addQuarantineSkip()
	}
}

// firstInChunk positions on the chunk's first element (views loaded) and
// reports whether one exists. Heap chunks are never empty; a quarantined
// mapped chunk serves an empty payload and answers false.
func (c *cursor) firstInChunk() bool {
	base := c.l.chunks[c.ci].base
	if c.bits != nil {
		b := bitsFirstFrom(c.bits, 0)
		if b < 0 {
			return false
		}
		c.bit = b
		c.rank = 0
		c.cur = base | uint32(b)
		return true
	}
	if len(c.keys) == 0 {
		return false
	}
	c.ki = 0
	c.cur = base | uint32(c.keys[0])
	return true
}

// resolve materializes a pending chunk and fixes the in-chunk position.
// Quarantined (empty-serving) chunks are walked past rank-safely. When
// every remaining chunk is quarantined the cursor exhausts with cur set
// to MaxUint32 — callers that resolved through docID must re-check
// exhausted() before trusting the value (the kernels in this package and
// core's pruned loop all do).
func (c *cursor) resolve() {
	for {
		c.loadViews(c.ci)
		if c.firstInChunk() {
			c.pending = false
			return
		}
		c.ci++
		if c.ci >= len(c.l.chunks) {
			c.gpos = c.l.n
			c.cur = ^uint32(0)
			c.pending = false
			return
		}
		c.gpos = c.l.offsets[c.ci]
	}
}

func (c *cursor) exhausted() bool { return c.gpos >= c.l.n }

func (c *cursor) docID() uint32 {
	if c.pending {
		c.resolve()
	}
	return c.cur
}

func (c *cursor) tf() uint32 {
	if c.pending {
		c.resolve()
	}
	if c.tfs == nil {
		return 1
	}
	return c.tfs[c.gpos-c.l.offsets[c.ci]]
}

// next advances the cursor by one posting, counting the consumed entry.
func (c *cursor) next() {
	if c.pending {
		c.resolve()
	}
	c.st.addEntries(1)
	c.gpos++
	if c.bits != nil {
		if nb := bitsFirstFrom(c.bits, c.bit+1); nb >= 0 {
			c.bit = nb
			c.rank++
			c.cur = c.l.chunks[c.ci].base | uint32(nb)
			return
		}
	} else if c.ki+1 < len(c.keys) {
		c.ki++
		c.cur = c.l.chunks[c.ci].base | uint32(c.keys[c.ki])
		return
	}
	c.enterChunk(c.ci + 1)
}

// seek advances the cursor to the first posting with DocID ≥ target and
// reports whether such a posting exists. The physical move is a chunk jump
// plus a gallop (array) or word probe (bitset); the charge is the M0
// model's, computed from the before/after global positions. A pending
// cursor whose chunk base already satisfies the target stays pending —
// that is the no-decompression skip path.
func (c *cursor) seek(target uint32) bool {
	c.st.addSeek()
	if c.gpos >= c.l.n {
		return false
	}
	if c.pending {
		if c.l.chunks[c.ci].base >= target {
			// The chunk's first element is ≥ its base ≥ target: already
			// positioned, no payload needed, no movement to charge.
			return true
		}
		if target <= c.l.chunks[c.ci].base|(chunkSpan-1) {
			// Target falls inside this chunk's range: the payload decides.
			c.resolve()
			if c.exhausted() {
				return false
			}
			if c.cur >= target {
				return true
			}
		}
		// Target at or beyond this chunk's end: walking chunk metadata
		// suffices until the landing chunk.
	} else if c.cur >= target {
		return true
	}
	old := c.gpos
	c.advanceTo(target)
	c.chargeSeek(old, c.gpos)
	return c.gpos < c.l.n
}

// advanceTo moves the cursor to the first element ≥ target (target > cur,
// or the cursor is pending with target > its chunk base).
func (c *cursor) advanceTo(target uint32) {
	tb := target &^ uint32(chunkSpan-1)
	ci := c.ci
	if c.l.chunks[ci].base != tb {
		// The target lies beyond this chunk's range. The walk is linear
		// because a cursor only moves forward: across a whole traversal it
		// visits each chunk at most once.
		for ci++; ci < len(c.l.chunks) && c.l.chunks[ci].base < tb; ci++ {
		}
		if ci == len(c.l.chunks) || c.l.chunks[ci].base > tb {
			// No chunk covers target's range: the first element of the next
			// populated range (if any) is the answer.
			c.enterChunk(ci)
			return
		}
		// Fresh chunk covering target's range: search it from the start.
		c.ci = ci
		c.pending = false
		c.loadViews(ci)
		lo := target & (chunkSpan - 1)
		if c.bits != nil {
			nb := bitsFirstFrom(c.bits, int(lo))
			if nb < 0 {
				c.enterChunk(ci + 1)
				return
			}
			c.bit = nb
			c.rank = bitsPopRange(c.bits, 0, nb)
			c.gpos = c.l.offsets[ci] + c.rank
			c.cur = c.l.chunks[ci].base | uint32(nb)
			return
		}
		ki := gallopSearch16(c.keys, 0, uint16(lo))
		if ki == len(c.keys) {
			c.enterChunk(ci + 1)
			return
		}
		c.ki = ki
		c.gpos = c.l.offsets[ci] + ki
		c.cur = c.l.chunks[ci].base | uint32(c.keys[ki])
		return
	}
	// Same chunk: advance within it.
	if c.pending {
		c.resolve()
		if c.exhausted() || c.cur >= target {
			// Resolution may have skipped quarantined chunks: any landing
			// position is ≥ the next chunk's base > target, so it stands.
			return
		}
	}
	lo := target & (chunkSpan - 1)
	if c.bits != nil {
		nb := bitsFirstFrom(c.bits, int(lo))
		if nb < 0 {
			c.enterChunk(ci + 1)
			return
		}
		c.rank += bitsPopRange(c.bits, c.bit, nb)
		c.bit = nb
		c.gpos = c.l.offsets[ci] + c.rank
		c.cur = c.l.chunks[ci].base | uint32(nb)
		return
	}
	ki := gallopSearch16(c.keys, c.ki, uint16(lo))
	if ki == len(c.keys) {
		c.enterChunk(ci + 1)
		return
	}
	c.ki = ki
	c.gpos = c.l.offsets[ci] + ki
	c.cur = c.l.chunks[ci].base | uint32(c.keys[ki])
}

// chargeSeek reports the M0 cost model's charge for a seek that moved the
// global position from old to pos: every segment wholly below the landing
// point is skipped, and the landing segment is scanned up to the landing
// entry — exactly the charge of a skip-table walk.
func (c *cursor) chargeSeek(old, pos int) {
	m := c.l.segSize
	sOld := old / m
	sMin := pos / m
	if pos >= c.l.n {
		// Past the end: every remaining segment was skipped.
		sMin = (c.l.n + m - 1) / m
	}
	if sMin > sOld {
		c.st.addSkipped(int64(sMin - sOld))
		if start := sMin * m; pos > start {
			c.st.addEntries(int64(pos - start))
		}
		return
	}
	c.st.addEntries(int64(pos - old))
}
