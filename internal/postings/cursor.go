package postings

// cursor walks a List during an intersection. Physically it advances
// through the adaptive containers — galloping within array chunks, jumping
// straight to the target word within bitset chunks — but its cost
// reporting reproduces the §3.2.1 skip-pointer model exactly: a seek
// charges one Seek, SegmentsSkipped for every M0-segment wholly below the
// target, and EntriesScanned for the entries of the landing segment that
// precede it. Because the global element position is tracked at all times
// (dense chunks maintain an incremental rank), the reported numbers are
// identical to what the former segment-skip implementation produced.
type cursor struct {
	l  *List
	st *Stats
	// ci is the current chunk; len(chunks) means exhausted. Within the
	// chunk the position is ki (array) or bit+rank (bitset); gpos is the
	// global element index and cur the current docID.
	ci   int
	ki   int
	bit  int
	rank int
	gpos int
	cur  uint32
}

func newCursor(l *List, st *Stats) *cursor {
	c := &cursor{l: l, st: st}
	c.enterChunk(0)
	return c
}

// enterChunk positions the cursor on the first element of chunk ci, or
// marks it exhausted when no chunk remains. Chunks are never empty.
func (c *cursor) enterChunk(ci int) {
	c.ci = ci
	if ci >= len(c.l.chunks) {
		c.gpos = c.l.n
		return
	}
	ch := &c.l.chunks[ci]
	c.gpos = c.l.offsets[ci]
	if ch.dense() {
		c.bit = ch.firstFrom(0)
		c.rank = 0
		c.cur = ch.base | uint32(c.bit)
		return
	}
	c.ki = 0
	c.cur = ch.base | uint32(ch.keys[0])
}

func (c *cursor) exhausted() bool { return c.gpos >= c.l.n }

func (c *cursor) docID() uint32 { return c.cur }

func (c *cursor) tf() uint32 { return c.l.tfAt(c.gpos) }

// next advances the cursor by one posting, counting the consumed entry.
func (c *cursor) next() {
	c.st.addEntries(1)
	ch := &c.l.chunks[c.ci]
	c.gpos++
	if ch.dense() {
		if nb := ch.firstFrom(c.bit + 1); nb >= 0 {
			c.bit = nb
			c.rank++
			c.cur = ch.base | uint32(nb)
			return
		}
	} else if c.ki+1 < len(ch.keys) {
		c.ki++
		c.cur = ch.base | uint32(ch.keys[c.ki])
		return
	}
	c.enterChunk(c.ci + 1)
}

// seek advances the cursor to the first posting with DocID ≥ target and
// reports whether such a posting exists. The physical move is a chunk jump
// plus a gallop (array) or word probe (bitset); the charge is the M0
// model's, computed from the before/after global positions.
func (c *cursor) seek(target uint32) bool {
	c.st.addSeek()
	if c.gpos >= c.l.n {
		return false
	}
	if c.cur >= target {
		return true
	}
	old := c.gpos
	c.advanceTo(target)
	c.chargeSeek(old, c.gpos)
	return c.gpos < c.l.n
}

// advanceTo moves the cursor to the first element ≥ target (target > cur).
func (c *cursor) advanceTo(target uint32) {
	tb := target &^ uint32(chunkSpan-1)
	ci := c.ci
	if c.l.chunks[ci].base != tb {
		// The target lies beyond this chunk's range. The walk is linear
		// because a cursor only moves forward: across a whole traversal it
		// visits each chunk at most once.
		for ci++; ci < len(c.l.chunks) && c.l.chunks[ci].base < tb; ci++ {
		}
		if ci == len(c.l.chunks) || c.l.chunks[ci].base > tb {
			// No chunk covers target's range: the first element of the next
			// populated range (if any) is the answer.
			c.enterChunk(ci)
			return
		}
		// Fresh chunk covering target's range: search it from the start.
		ch := &c.l.chunks[ci]
		lo := target & (chunkSpan - 1)
		if ch.dense() {
			nb := ch.firstFrom(int(lo))
			if nb < 0 {
				c.enterChunk(ci + 1)
				return
			}
			c.ci = ci
			c.bit = nb
			c.rank = ch.popRange(0, nb)
			c.gpos = c.l.offsets[ci] + c.rank
			c.cur = ch.base | uint32(nb)
			return
		}
		ki := gallopSearch16(ch.keys, 0, uint16(lo))
		if ki == len(ch.keys) {
			c.enterChunk(ci + 1)
			return
		}
		c.ci = ci
		c.ki = ki
		c.gpos = c.l.offsets[ci] + ki
		c.cur = ch.base | uint32(ch.keys[ki])
		return
	}
	// Same chunk: advance within it.
	ch := &c.l.chunks[ci]
	lo := target & (chunkSpan - 1)
	if ch.dense() {
		nb := ch.firstFrom(int(lo))
		if nb < 0 {
			c.enterChunk(ci + 1)
			return
		}
		c.rank += ch.popRange(c.bit, nb)
		c.bit = nb
		c.gpos = c.l.offsets[ci] + c.rank
		c.cur = ch.base | uint32(nb)
		return
	}
	ki := gallopSearch16(ch.keys, c.ki, uint16(lo))
	if ki == len(ch.keys) {
		c.enterChunk(ci + 1)
		return
	}
	c.ki = ki
	c.gpos = c.l.offsets[ci] + ki
	c.cur = ch.base | uint32(ch.keys[ki])
}

// chargeSeek reports the M0 cost model's charge for a seek that moved the
// global position from old to pos: every segment wholly below the landing
// point is skipped, and the landing segment is scanned up to the landing
// entry — exactly the charge of a skip-table walk.
func (c *cursor) chargeSeek(old, pos int) {
	m := c.l.segSize
	sOld := old / m
	sMin := pos / m
	if pos >= c.l.n {
		// Past the end: every remaining segment was skipped.
		sMin = (c.l.n + m - 1) / m
	}
	if sMin > sOld {
		c.st.addSkipped(int64(sMin - sOld))
		if start := sMin * m; pos > start {
			c.st.addEntries(int64(pos - start))
		}
		return
	}
	c.st.addEntries(int64(pos - old))
}
