package postings

// cursor walks a List during an intersection, advancing with skip pointers.
// Advancing first consults the skip table to jump whole segments whose max
// DocID is below the target — the optimization whose cost model the paper
// analyzes — then scans linearly within the final segment.
type cursor struct {
	list *List
	pos  int // index of the current posting; len(postings) means exhausted
	st   *Stats
}

func newCursor(l *List, st *Stats) *cursor {
	return &cursor{list: l, st: st}
}

func (c *cursor) exhausted() bool { return c.pos >= len(c.list.postings) }

func (c *cursor) current() Posting { return c.list.postings[c.pos] }

// seek advances the cursor to the first posting with DocID ≥ target and
// reports whether such a posting exists. Segments whose skip entry (max
// DocID) is below target are skipped wholesale; each skipped segment counts
// one SegmentsSkipped and zero EntriesScanned, each examined posting counts
// one EntriesScanned.
func (c *cursor) seek(target uint32) bool {
	c.st.addSeek()
	ps := c.list.postings
	if c.pos >= len(ps) {
		return false
	}
	if ps[c.pos].DocID >= target {
		return true
	}
	seg := c.pos / c.list.segSize
	nseg := len(c.list.skips)
	skipped := int64(0)
	for seg < nseg && c.list.skips[seg] < target {
		seg++
		skipped++
	}
	if skipped > 0 {
		c.st.addSkipped(skipped)
		c.pos = seg * c.list.segSize
		if c.pos >= len(ps) {
			return false
		}
	}
	// Linear scan within the remaining segment(s); in the worst case this
	// touches M0 entries of the final overlapping segment.
	scanned := int64(0)
	for c.pos < len(ps) && ps[c.pos].DocID < target {
		c.pos++
		scanned++
	}
	c.st.addEntries(scanned)
	return c.pos < len(ps)
}

// next advances the cursor by one posting, counting the consumed entry.
func (c *cursor) next() {
	c.pos++
	c.st.addEntries(1)
}
