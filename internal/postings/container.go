package postings

import "math/bits"

// Adaptive containers: every list is partitioned into fixed ranges of 2^16
// document IDs, and each populated range (a "chunk") is stored either as a
// sorted array of 16-bit keys (sparse) or as a 1024-word bitset (dense),
// chosen by cardinality at build time. The layout is roaring-style but
// purpose-built for this system's two list shapes: keyword lists carry one
// parallel TF array in global element order, predicate lists drop TFs
// entirely (TF = 1 is implicit). Dense chunks make count-only
// intersections — the γ_count work that dominates the paper's cost model —
// a word-AND plus popcount instead of a merge.
//
// Since format v4 a chunk is either *heap-resident* (keys or bits
// populated, as built by buildChunks) or *mapped* (keys and bits nil;
// the payload lives in an on-disk block reached through the list's
// mappedSource and is materialized on demand). Every kernel below asks
// for a chunk's payload through List.payload, which is a field read for
// heap chunks and a lazy decode for mapped ones; chunk-level metadata
// (base, n, representation) is always resident, so alignment, skipping
// and routing decisions never touch the payload.
const (
	chunkBits  = 16
	chunkSpan  = 1 << chunkBits // docIDs covered by one chunk
	chunkWords = chunkSpan / 64 // bitset words of a dense chunk
	// DenseThreshold is the chunk cardinality at which the sorted-array
	// representation gives way to the bitset. 4096 keys × 2 B equals the
	// bitset's 8 KiB, so a dense chunk is never larger than the array it
	// replaces.
	DenseThreshold = 4096
)

// chunk holds the documents of one 2^16-wide docID range. Heap chunks
// store the payload inline in exactly one of the two representations;
// mapped chunks store only metadata plus the block encoding tag.
type chunk struct {
	base uint32 // first docID of the range (low 16 bits zero)
	n    int32
	enc  uint8    // block encoding (mapped lists); heap chunks leave it 0
	keys []uint16 // sparse: sorted low-16-bit keys; nil when dense or mapped
	bits []uint64 // dense: chunkWords-word bitset; nil when sparse or mapped
}

// dense reports the chunk's representation. For mapped chunks the
// answer comes from the encoding tag, so it never requires the payload.
func (c *chunk) dense() bool { return c.bits != nil || c.enc == BlockDenseRaw }

// bitsHas reports whether the bitset contains the low-16-bit key lo.
func bitsHas(b []uint64, lo uint32) bool {
	return b[lo>>6]&(1<<(lo&63)) != 0
}

// bitsFirstFrom returns the position of the first set bit ≥ from in the
// bitset, or -1 when none remains.
func bitsFirstFrom(b []uint64, from int) int {
	w := from >> 6
	if w >= chunkWords {
		return -1
	}
	x := b[w] & (^uint64(0) << uint(from&63))
	for x == 0 {
		w++
		if w == chunkWords {
			return -1
		}
		x = b[w]
	}
	return w<<6 + bits.TrailingZeros64(x)
}

// bitsSelectFrom returns the position of the n-th set bit (n ≥ 1)
// strictly after position bit in the bitset. The caller guarantees it
// exists.
func bitsSelectFrom(b []uint64, bit, n int) int {
	w := bit >> 6
	x := b[w] & (^uint64(0) << (uint(bit&63) + 1))
	for {
		if p := bits.OnesCount64(x); p >= n {
			for ; n > 1; n-- {
				x &= x - 1
			}
			return w<<6 + bits.TrailingZeros64(x)
		} else {
			n -= p
		}
		w++
		x = b[w]
	}
}

// bitsPopRange counts the set bits of the bitset in [from, to).
func bitsPopRange(b []uint64, from, to int) int {
	if from >= to {
		return 0
	}
	fw, tw := from>>6, to>>6
	fm := ^uint64(0) << uint(from&63)
	if fw == tw {
		return bits.OnesCount64(b[fw] & fm & ((1 << uint(to&63)) - 1))
	}
	n := bits.OnesCount64(b[fw] & fm)
	for w := fw + 1; w < tw; w++ {
		n += bits.OnesCount64(b[w])
	}
	if tw < chunkWords {
		n += bits.OnesCount64(b[tw] & ((1 << uint(to&63)) - 1))
	}
	return n
}

// segments returns the chunk's size in skip segments of the M0 cost model,
// rounded up; used to account chunk skips in SegmentsSkipped terms.
func (c *chunk) segments(segSize int) int64 {
	return int64((int(c.n) + segSize - 1) / segSize)
}

// buildChunks partitions strictly ascending ids into chunks, choosing the
// representation of each by cardinality against threshold.
func buildChunks(ids []uint32, threshold int) (chunks []chunk, offsets []int) {
	offsets = append(offsets, 0)
	for i := 0; i < len(ids); {
		base := ids[i] &^ (chunkSpan - 1)
		j := i + 1
		for j < len(ids) && ids[j]&^uint32(chunkSpan-1) == base {
			j++
		}
		c := chunk{base: base, n: int32(j - i)}
		if j-i >= threshold {
			c.bits = make([]uint64, chunkWords)
			for _, id := range ids[i:j] {
				lo := id & (chunkSpan - 1)
				c.bits[lo>>6] |= 1 << (lo & 63)
			}
		} else {
			c.keys = make([]uint16, j-i)
			for t, id := range ids[i:j] {
				c.keys[t] = uint16(id)
			}
		}
		chunks = append(chunks, c)
		offsets = append(offsets, j)
		i = j
	}
	return chunks, offsets
}

// gallopSearch16 returns the smallest index ≥ from with keys[i] ≥ target,
// or len(keys). It probes exponentially from the current position before
// binary-searching the bracketed range, so seeking d elements ahead costs
// O(log d) — the galloping scheme for skewed intersections.
func gallopSearch16(keys []uint16, from int, target uint16) int {
	if from >= len(keys) || keys[from] >= target {
		return from
	}
	bound := 1
	for from+bound < len(keys) && keys[from+bound] < target {
		bound <<= 1
	}
	lo := from + bound>>1 + 1
	hi := from + bound
	if hi > len(keys) {
		hi = len(keys)
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// visitConjunction is the count-only k-way conjunction kernel over chunked
// lists: it never materializes DocID or TF slices. All lists must be
// non-nil and non-empty and len(lists) ≥ 2. When visit is non-nil it is
// called once per matching docID in ascending order. Returns the number of
// matches. A non-nil canceler is polled once per chunk range — 2^16
// docIDs of work per poll keeps the kernel branch-cheap — and stops the
// conjunction early when it fires (the caller reports the cause).
//
// The kernel synchronizes the lists chunk range by chunk range. When every
// list's chunk for a common range is dense, the range is resolved by
// word-AND + popcount; otherwise the smallest chunk drives and the others
// are probed (O(1) bit tests into bitsets, galloping forward seeks into
// arrays). Chunk alignment and skipping read only resident metadata;
// mapped payloads materialize when a common range is actually resolved.
// Cost accounting: skipped chunks charge SegmentsSkipped in M0-model
// segments; bitset work charges EntriesScanned in entry-equivalents (one
// 64-doc word ≈ one entry probe) and is also tallied separately in
// Stats.BitmapWords.
func visitConjunction(lists []*List, st *Stats, cc *canceler, visit func(docID uint32)) int64 {
	k := len(lists)
	cis := make([]int, k)       // per-list chunk index
	aps := make([]int, k)       // per-list in-chunk array pointer, reset per range
	keys := make([][]uint16, k) // per-list resident payload for the common range
	words := make([][]uint64, k)
	var count int64
align:
	for {
		if cc.halted() {
			return count
		}
		// Establish the largest current chunk base; any exhausted list ends
		// the conjunction.
		var base uint32
		for i, l := range lists {
			if cis[i] == len(l.chunks) {
				return count
			}
			if b := l.chunks[cis[i]].base; b > base {
				base = b
			}
		}
		// Advance every list to that base, charging skipped chunks.
		for i, l := range lists {
			for cis[i] < len(l.chunks) && l.chunks[cis[i]].base < base {
				st.addSkipped(l.chunks[cis[i]].segments(l.segSize))
				cis[i]++
			}
			if cis[i] == len(l.chunks) {
				return count
			}
			if l.chunks[cis[i]].base > base {
				continue align // overshot: realign on the larger base
			}
		}
		// All lists hold a chunk for [base, base+chunkSpan).
		allDense := true
		minIdx := 0
		for i, l := range lists {
			if !l.chunks[cis[i]].dense() {
				allDense = false
			}
			if l.chunks[cis[i]].n < lists[minIdx].chunks[cis[minIdx]].n {
				minIdx = i
			}
		}
		for i, l := range lists {
			var quarantined bool
			keys[i], words[i], _, quarantined = l.payloadQ(cis[i])
			if quarantined {
				st.addQuarantineSkip()
			}
		}
		if allDense {
			count += andChunks(words, base, visit)
			st.addBitmapWords(int64(k) * chunkWords)
			st.addEntries(int64(k) * chunkWords)
		} else {
			count += probeChunks(lists, cis, aps, keys, words, minIdx, base, st, visit)
		}
		for i := range cis {
			cis[i]++
		}
	}
}

// andChunks resolves one all-dense chunk range by word-AND; with visit nil
// matches are only popcounted.
func andChunks(words [][]uint64, base uint32, visit func(uint32)) int64 {
	var count int64
	for w := 0; w < chunkWords; w++ {
		x := words[0][w]
		for i := 1; i < len(words) && x != 0; i++ {
			x &= words[i][w]
		}
		if x == 0 {
			continue
		}
		if visit == nil {
			count += int64(bits.OnesCount64(x))
			continue
		}
		for x != 0 {
			visit(base | uint32(w<<6|bits.TrailingZeros64(x)))
			x &= x - 1
			count++
		}
	}
	return count
}

// probeChunks resolves one mixed chunk range: the smallest chunk (minIdx)
// drives, and every driver element is probed in the other chunks.
func probeChunks(lists []*List, cis, aps []int, keys [][]uint16, words [][]uint64, minIdx int, base uint32, st *Stats, visit func(uint32)) int64 {
	for i := range aps {
		aps[i] = 0
	}
	var count int64
	probe := func(lo uint16) bool {
		for i := range lists {
			if i == minIdx {
				continue
			}
			if words[i] != nil {
				st.addBitmapWords(1)
				st.addEntries(1)
				if !bitsHas(words[i], uint32(lo)) {
					return false
				}
				continue
			}
			p := gallopSearch16(keys[i], aps[i], lo)
			st.addEntries(int64(p - aps[i]))
			aps[i] = p
			if p == len(keys[i]) || keys[i][p] != lo {
				return false
			}
		}
		return true
	}
	st.addEntries(int64(lists[minIdx].chunks[cis[minIdx]].n))
	if words[minIdx] != nil {
		for w := 0; w < chunkWords; w++ {
			x := words[minIdx][w]
			for x != 0 {
				lo := uint16(w<<6 | bits.TrailingZeros64(x))
				x &= x - 1
				if probe(lo) {
					count++
					if visit != nil {
						visit(base | uint32(lo))
					}
				}
			}
		}
		return count
	}
	for _, lo := range keys[minIdx] {
		if probe(lo) {
			count++
			if visit != nil {
				visit(base | uint32(lo))
			}
		}
	}
	return count
}
