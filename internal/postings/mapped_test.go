package postings

import (
	"fmt"
	"math/rand"
	"testing"
)

// mappedCopy round-trips l through the v4 block codec, returning a
// mapped list backed by the encoder's buffers.
func mappedCopy(t *testing.T, l *List, cache *BlockCache) *List {
	t.Helper()
	var e MappedEncoder
	meta := e.EncodeList(l)
	ml, err := NewMappedList(meta, e.Dir(), e.Payload(), l.segSize, cache)
	if err != nil {
		t.Fatalf("NewMappedList: %v", err)
	}
	if !ml.Mapped() {
		t.Fatalf("mapped copy not mapped")
	}
	return ml
}

// assertListsEqual compares every posting and the aggregate accessors.
func assertListsEqual(t *testing.T, want, got *List) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("Len: %d != %d", got.Len(), want.Len())
	}
	if want.SumTF() != got.SumTF() {
		t.Fatalf("SumTF: %d != %d", got.SumTF(), want.SumTF())
	}
	if want.HasTFs() != got.HasTFs() {
		t.Fatalf("HasTFs: %v != %v", got.HasTFs(), want.HasTFs())
	}
	if want.HasBounds() != got.HasBounds() {
		t.Fatalf("HasBounds: %v != %v", got.HasBounds(), want.HasBounds())
	}
	if want.MaxDocID() != got.MaxDocID() {
		t.Fatalf("MaxDocID: %d != %d", got.MaxDocID(), want.MaxDocID())
	}
	type pt struct{ d, tf uint32 }
	var wps, gps []pt
	want.ForEach(func(d, tf uint32) { wps = append(wps, pt{d, tf}) })
	got.ForEach(func(d, tf uint32) { gps = append(gps, pt{d, tf}) })
	for i := range wps {
		if wps[i] != gps[i] {
			t.Fatalf("posting %d: %+v != %+v", i, gps[i], wps[i])
		}
	}
	if want.HasBounds() {
		for ci := 0; ci < want.NumChunks(); ci++ {
			if want.ChunkBoundAt(ci) != got.ChunkBoundAt(ci) {
				t.Fatalf("chunk %d bound: %+v != %+v", ci, got.ChunkBoundAt(ci), want.ChunkBoundAt(ci))
			}
		}
		if want.MaxTF() != got.MaxTF() || want.MinDocLen() != got.MinDocLen() {
			t.Fatalf("list ceilings differ")
		}
	}
}

// mixedList builds a list exercising every chunk shape: sparse raw-ish,
// sparse packed-ish (tight gaps), dense, TFs present or elided.
func mixedList(rng *rand.Rand, n int, maxID uint32, withTF bool, segSize int) *List {
	ids := randomSortedIDs(rng, n, maxID)
	var tfs []uint32
	if withTF {
		tfs = make([]uint32, len(ids))
		for i := range tfs {
			switch rng.Intn(4) {
			case 0:
				tfs[i] = 1 // all-ones runs → elided TF columns in some blocks
			default:
				tfs[i] = uint32(rng.Intn(9) + 1)
			}
		}
	}
	return newListRaw(ids, tfs, segSize, DenseThreshold)
}

func TestMappedListEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(9000) + 1
		maxID := uint32(rng.Intn(1<<18) + 1)
		withTF := trial%2 == 0
		l := mixedList(rng, n, maxID, withTF, 4)
		if trial%3 == 0 {
			l.BuildBounds(fakeDocLen)
		}
		ml := mappedCopy(t, l, nil)
		assertListsEqual(t, l, ml)
		// Random access mirrors too.
		for i := 0; i < 50; i++ {
			r := rng.Intn(l.Len())
			if l.At(r) != ml.At(r) {
				t.Fatalf("At(%d): %d != %d", r, ml.At(r), l.At(r))
			}
			d := uint32(rng.Intn(int(maxID) + 2))
			if l.Contains(d) != ml.Contains(d) {
				t.Fatalf("Contains(%d) differs", d)
			}
			if l.TF(d) != ml.TF(d) {
				t.Fatalf("TF(%d): %d != %d", d, ml.TF(d), l.TF(d))
			}
		}
	}
}

func TestMappedCursorCostParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		a := mixedList(rng, rng.Intn(4000)+1, 1<<17, trial%2 == 0, 4)
		b := mixedList(rng, rng.Intn(4000)+1, 1<<17, trial%2 == 1, 4)
		var stHeap, stMapped Stats
		rh := Intersect([]*List{a, b}, &stHeap)
		rm := Intersect([]*List{mappedCopy(t, a, nil), mappedCopy(t, b, nil)}, &stMapped)
		if !equalIDs(rh.DocIDs, rm.DocIDs) {
			t.Fatalf("trial %d: intersection differs", trial)
		}
		for i := range rh.TFs {
			for j := range rh.TFs[i] {
				if rh.TFs[i][j] != rm.TFs[i][j] {
					t.Fatalf("trial %d: TF alignment differs", trial)
				}
			}
		}
		if stHeap != stMapped {
			t.Fatalf("trial %d: cost charges differ: heap %+v mapped %+v", trial, stHeap, stMapped)
		}
	}
}

func TestMappedUnionAndSizeParity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		var heap, mapped []*List
		for i := 0; i < rng.Intn(3)+2; i++ {
			l := mixedList(rng, rng.Intn(3000)+1, 1<<17, i%2 == 0, 0)
			heap = append(heap, l)
			mapped = append(mapped, mappedCopy(t, l, nil))
		}
		uh := Union(heap, nil)
		um := Union(mapped, nil)
		assertListsEqual(t, uh, um)
		if IntersectionSize(heap, nil) != IntersectionSize(mapped, nil) {
			t.Fatalf("trial %d: IntersectionSize differs", trial)
		}
	}
}

// TestMappedSeekStaysPending verifies the skip-without-decompress path:
// a seek that is satisfied by a pending chunk's base must not
// materialize the block.
func TestMappedSeekStaysPending(t *testing.T) {
	// Two chunks: [0..9] and a second at base 1<<16.
	ids := []uint32{1, 5, 9, 1 << 16, 1<<16 + 3}
	l := newListRaw(ids, nil, 4, DenseThreshold)
	ml := mappedCopy(t, l, nil)
	c := NewBoundCursor(ml, nil)
	if ml.residentAt(0) {
		t.Fatalf("chunk 0 materialized before any access")
	}
	if !c.NextAtLeast(1 << 15) {
		t.Fatalf("seek failed")
	}
	// The landing chunk (ci=1) must still be pending: target is below its
	// base, so metadata alone answers the position.
	if ml.residentAt(1) {
		t.Fatalf("chunk 1 materialized by a base-satisfied seek")
	}
	if !c.ContainerResident() == false {
		// ContainerResident must agree with residentAt.
		t.Fatalf("ContainerResident inconsistent")
	}
	if got := c.DocID(); got != 1<<16 {
		t.Fatalf("DocID after resolve = %d", got)
	}
	if !ml.residentAt(1) {
		t.Fatalf("chunk 1 not materialized by DocID")
	}
}

// TestMappedSkipContainerNoDecode verifies SkipContainer over a pending
// chunk never touches its payload.
func TestMappedSkipContainerNoDecode(t *testing.T) {
	var ids []uint32
	for c := 0; c < 4; c++ {
		base := uint32(c) << 16
		for i := 0; i < 100; i++ {
			ids = append(ids, base+uint32(i*7))
		}
	}
	l := newListRaw(ids, nil, 4, DenseThreshold)
	ml := mappedCopy(t, l, nil)
	var st Stats
	bc := NewBoundCursor(ml, &st)
	for !bc.Exhausted() {
		if !bc.SkipContainer() {
			break
		}
	}
	for ci := 0; ci < ml.NumChunks(); ci++ {
		if ml.residentAt(ci) {
			t.Fatalf("chunk %d materialized during container-only skipping", ci)
		}
	}
	if st.SegmentsSkipped == 0 {
		t.Fatalf("no skip charges recorded")
	}
}

// TestMappedSkipNonSurvivorsElidedTF verifies the O(1) dismissal of a
// mapped block whose all-ones TF column was elided.
func TestMappedSkipNonSurvivorsElidedTF(t *testing.T) {
	ids := make([]uint32, 500)
	tfs := make([]uint32, 500)
	for i := range ids {
		ids[i] = uint32(i * 3)
		tfs[i] = 1 // all ones → elided on encode, but HasTFs stays true
	}
	ids = append(ids, 1<<16)
	tfs = append(tfs, 5)
	l := newListRaw(ids, tfs, 4, DenseThreshold)
	ml := mappedCopy(t, l, nil)
	if !ml.HasTFs() {
		t.Fatalf("list lost its TF flag")
	}
	var m TFMask
	m.Set(5) // 1 is not a survivor
	bc := NewBoundCursor(ml, nil)
	skipped := bc.SkipNonSurvivors(&m)
	if skipped != 500 {
		t.Fatalf("skipped %d, want 500", skipped)
	}
	if ml.residentAt(0) {
		t.Fatalf("all-ones block materialized during TF dismissal")
	}
	if bc.DocID() != 1<<16 || bc.TF() != 5 {
		t.Fatalf("landed on %d/%d", bc.DocID(), bc.TF())
	}
}

func TestMappedSkipNonSurvivorsParity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		l := mixedList(rng, rng.Intn(5000)+1, 1<<17, true, 4)
		ml := mappedCopy(t, l, nil)
		var m TFMask
		for tf := uint32(0); tf < 10; tf++ {
			if rng.Intn(2) == 0 {
				m.Set(tf)
			}
		}
		var stH, stM Stats
		ch := NewBoundCursor(l, &stH)
		cm := NewBoundCursor(ml, &stM)
		for !ch.Exhausted() {
			sh := ch.SkipNonSurvivors(&m)
			sm := cm.SkipNonSurvivors(&m)
			if sh != sm {
				t.Fatalf("trial %d: skip runs differ: %d != %d", trial, sh, sm)
			}
			if ch.Exhausted() != cm.Exhausted() {
				t.Fatalf("trial %d: exhaustion differs", trial)
			}
			if ch.Exhausted() {
				break
			}
			if ch.DocID() != cm.DocID() || ch.TF() != cm.TF() {
				t.Fatalf("trial %d: position differs", trial)
			}
			ch.Next()
			cm.Next()
		}
		if stH != stM {
			t.Fatalf("trial %d: charges differ: %+v != %+v", trial, stH, stM)
		}
	}
}

func TestMappedBlockCacheEvicts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// TF columns force decoded (charged) payloads.
	l := mixedList(rng, 20000, 1<<19, true, 0)
	for {
		// Ensure at least one block carries a real TF column.
		if l.BlockStats().TFBlocks > 0 {
			break
		}
		l = mixedList(rng, 20000, 1<<19, true, 0)
	}
	cache := NewBlockCache(512) // tiny: constant eviction
	ml := mappedCopy(t, l, cache)
	assertListsEqual(t, l, ml)
	if cache.Insertions() == 0 {
		t.Fatalf("no decoded blocks were charged")
	}
	if cache.Evictions() == 0 {
		t.Fatalf("tiny budget never evicted")
	}
	if cache.Used() > 512*2 {
		t.Fatalf("cache used %d over budget", cache.Used())
	}
	// A second full walk after evictions must still be correct.
	assertListsEqual(t, l, ml)
}

func TestMappedBlockCorruptionPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := mixedList(rng, 2000, 1<<17, true, 4)
	var e MappedEncoder
	meta := e.EncodeList(l)
	payload := append([]byte(nil), e.Payload()...)
	payload[len(payload)/2] ^= 0x40
	ml, err := NewMappedList(meta, e.Dir(), payload, l.segSize, nil)
	if err != nil {
		t.Fatalf("open rejected directory unexpectedly: %v", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("walking a corrupt payload did not panic")
		}
		if _, ok := r.(*BlockCorruptError); !ok {
			t.Fatalf("panic value %T, want *BlockCorruptError", r)
		}
	}()
	ml.ForEach(func(d, tf uint32) {})
}

func TestMappedDirectoryValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := mixedList(rng, 3000, 1<<17, true, 4)
	var e MappedEncoder
	meta := e.EncodeList(l)
	// Every single-byte corruption of the directory must either be
	// rejected at open, or yield a list that still walks without
	// violating memory safety and panics on payload mismatch. The strict
	// check: flipping structural fields (offsets, lengths, counts, bases,
	// encodings) is caught by open-time validation or the per-block CRC.
	for off := 0; off < len(e.Dir()); off++ {
		dir := append([]byte(nil), e.Dir()...)
		dir[off] ^= 0xff
		ml, err := NewMappedList(meta, dir, e.Payload(), l.segSize, nil)
		if err != nil {
			continue // rejected at open: good
		}
		func() {
			defer func() { recover() }() // CRC panic: good
			ok := true
			ml.ForEach(func(d, tf uint32) { ok = ok && true })
			_ = ok
		}()
	}
	// Sanity: unmodified directory still opens.
	if _, err := NewMappedList(meta, e.Dir(), e.Payload(), l.segSize, nil); err != nil {
		t.Fatalf("clean directory rejected: %v", err)
	}
}

func TestMappedEncoderPicksEncodings(t *testing.T) {
	// Dense chunk: > DenseThreshold keys in one range.
	denseIDs := make([]uint32, 5000)
	for i := range denseIDs {
		denseIDs[i] = uint32(i * 13)
	}
	dense := newListRaw(denseIDs, nil, 0, DenseThreshold)
	bs := dense.BlockStats()
	if bs.DenseRaw != 1 || bs.SparseRaw+bs.SparsePacked != 0 {
		t.Fatalf("dense stats %+v", bs)
	}
	// Tight gaps: packed wins.
	tight := make([]uint32, DenseThreshold)
	for i := range tight {
		tight[i] = uint32(i)
	}
	packed := newListRaw(tight[:DenseThreshold-1], nil, 0, DenseThreshold)
	if s := packed.BlockStats(); s.SparsePacked != 1 {
		t.Fatalf("tight-gap stats %+v", s)
	}
	// Huge gaps: raw wins (3-byte varint gaps vs 2-byte raw keys).
	wide := []uint32{0, 20000, 50000, 65000}
	raw := newListRaw(wide, nil, 0, DenseThreshold)
	if s := raw.BlockStats(); s.SparseRaw != 1 {
		t.Fatalf("wide-gap stats %+v", s)
	}
	// Mapped lists report identical stats to their heap source.
	for _, l := range []*List{dense, packed, raw} {
		ml := mappedCopy(t, l, nil)
		if l.BlockStats() != ml.BlockStats() {
			t.Fatalf("BlockStats diverge: %+v != %+v", ml.BlockStats(), l.BlockStats())
		}
	}
}

func TestMappedBytesAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		l := mixedList(rng, rng.Intn(4000)+1, 1<<17, trial%2 == 0, 0)
		ml := mappedCopy(t, l, nil)
		if ml.Bytes() <= 0 {
			t.Fatalf("mapped Bytes() = %d", ml.Bytes())
		}
		st := ml.BlockStats()
		if st.PayloadBytes <= 0 || st.DirBytes != int64(ml.NumChunks()*BlockDirEntrySize) {
			t.Fatalf("stats %+v", st)
		}
	}
}

func TestNewMappedListRejectsGarbage(t *testing.T) {
	cases := []struct {
		name    string
		meta    MappedListMeta
		dir     []byte
		payload []byte
	}{
		{"empty", MappedListMeta{N: 0, NumBlocks: 0}, nil, nil},
		{"short dir", MappedListMeta{N: 1, NumBlocks: 1}, make([]byte, 10), nil},
		{"count mismatch", MappedListMeta{N: 5, NumBlocks: 1}, func() []byte {
			l := newListRaw([]uint32{1, 2}, nil, 0, DenseThreshold)
			var e MappedEncoder
			e.EncodeList(l)
			return e.Dir()
		}(), make([]byte, 64)},
	}
	for _, tc := range cases {
		if _, err := NewMappedList(tc.meta, tc.dir, tc.payload, 0, nil); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

func BenchmarkMappedIntersect(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := mixedList(rng, 200000, 1<<22, true, 0)
	c := mixedList(rng, 20000, 1<<22, true, 0)
	for _, mode := range []string{"heap", "mapped"} {
		la, lc := a, c
		if mode == "mapped" {
			var e MappedEncoder
			ma := e.EncodeList(a)
			mc := e.EncodeList(c)
			var err error
			la, err = NewMappedList(ma, e.Dir()[:ma.NumBlocks*BlockDirEntrySize], e.Payload(), 0, nil)
			if err != nil {
				b.Fatal(err)
			}
			lc, err = NewMappedList(mc, e.Dir()[ma.NumBlocks*BlockDirEntrySize:], e.Payload(), 0, nil)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("%s", mode), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Intersect([]*List{la, lc}, nil)
			}
		})
	}
}
