package postings

import "context"

// Cooperative cancellation for the long-running kernels. Every kernel has
// a *Ctx variant that polls a context at coarse checkpoints — once per
// 2^16-docID chunk range in the chunk-synchronized kernels, once per
// checkStride fine-grained steps in the cursor-driven conjunction — so a
// cancelled query stops burning CPU mid-intersection while the hot inner
// loops stay branch-cheap. The context-free entry points pass a nil
// canceler, which compiles to a single nil check per checkpoint, keeping
// the uncancellable path's work (and its bit-identical results) intact.

// checkStride is the number of fine-grained kernel steps (driver
// advances, match emissions) between context polls in loops that are not
// naturally chunk-structured. 1024 postings of work amortize the poll to
// noise while still bounding the post-cancellation overrun.
const checkStride = 1024

// canceler wraps a context for checkpoint polling. A nil canceler never
// cancels; newCanceler returns nil for contexts that can never be
// cancelled (e.g. context.Background()), so those pay nothing.
type canceler struct {
	ctx context.Context
	n   int
	err error
}

func newCanceler(ctx context.Context) *canceler {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return &canceler{ctx: ctx}
}

// halted polls the context once and reports whether the kernel should
// stop. A cancellation, once observed, is sticky.
func (c *canceler) halted() bool {
	if c == nil {
		return false
	}
	if c.err != nil {
		return true
	}
	c.err = c.ctx.Err()
	return c.err != nil
}

// strideHalted is halted with the poll rate-limited to every checkStride
// calls, for per-posting loops.
func (c *canceler) strideHalted() bool {
	if c == nil {
		return false
	}
	if c.err != nil {
		return true
	}
	if c.n++; c.n < checkStride {
		return false
	}
	c.n = 0
	c.err = c.ctx.Err()
	return c.err != nil
}

// cause returns the sticky cancellation error (nil while running).
func (c *canceler) cause() error {
	if c == nil {
		return nil
	}
	return c.err
}
