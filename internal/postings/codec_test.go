package postings

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	cases := [][]Posting{
		nil,
		{{DocID: 0, TF: 1}},
		{{DocID: 0, TF: 0}},
		{{DocID: 5, TF: 2}, {DocID: 6, TF: 1}, {DocID: 1000000, TF: 255}},
		{{DocID: 1<<32 - 1, TF: 1}},
	}
	for _, ps := range cases {
		data := EncodePostings(ps)
		got, err := DecodePostings(data)
		if err != nil {
			t.Fatalf("decode(%v): %v", ps, err)
		}
		if len(ps) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, ps) {
			t.Errorf("round trip %v -> %v", ps, got)
		}
	}
}

func TestCodecCompresses(t *testing.T) {
	// Dense lists (small gaps) should compress well below 8 B/posting.
	rng := rand.New(rand.NewSource(1))
	ps := randPostings(rng, 10000, 40000)
	data := EncodePostings(ps)
	raw := len(ps) * 8
	if len(data) >= raw/2 {
		t.Errorf("compressed %d bytes vs raw %d — expected < half", len(data), raw)
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	ps := []Posting{{DocID: 3, TF: 1}, {DocID: 9, TF: 2}}
	data := EncodePostings(ps)
	// Truncations at every prefix must error, not panic.
	for i := 0; i < len(data); i++ {
		if _, err := DecodePostings(data[:i]); err == nil && i < len(data) {
			// A prefix could accidentally parse as a shorter valid list
			// only if it is self-consistent; the count byte prevents it
			// here.
			t.Errorf("truncated prefix of %d bytes decoded", i)
		}
	}
	// Trailing garbage.
	if _, err := DecodePostings(append(append([]byte(nil), data...), 0x7)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Zero gap (duplicate docid).
	bad := EncodePostings(ps)
	// Craft: count=1, gap=0.
	if _, err := DecodePostings([]byte{1, 0}); err == nil {
		t.Error("zero first-gap accepted")
	}
	_ = bad
	// Absurd count.
	if _, err := DecodePostings([]byte{0xFF, 0xFF, 0xFF, 0x7F}); err == nil {
		t.Error("absurd count accepted")
	}
}

// Property: encode/decode is the identity on random sorted postings.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 500)
		var ps []Posting
		if n > 0 {
			ps = randPostings(rng, n, 1<<20)
		}
		got, err := DecodePostings(EncodePostings(ps))
		if err != nil {
			return false
		}
		if len(got) != len(ps) {
			return false
		}
		for i := range ps {
			if got[i] != ps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
