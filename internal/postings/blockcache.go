package postings

import (
	"sync"
	"sync/atomic"
)

// BlockCache bounds the heap held by decoded mapped blocks. Only blocks
// that required real decoding are charged — packed docIDs and uvarint TF
// columns — while zero-copy views of the mapping weigh nothing and are
// memoized permanently in their list's slot. Eviction clears the
// decoded block's slot, so the next touch re-decodes it; readers that
// obtained the payload pointer before the eviction keep using it safely
// (the garbage collector keeps it alive for them).
//
// The policy is S3-FIFO-style scan resistance rather than plain FIFO or
// LRU: a new block enters a small probationary queue (~10% of the
// budget); blocks evicted from it unreferenced go to a *ghost* list
// (identity only, no payload) and free their bytes, while blocks that
// were re-touched — or whose identity is still in the ghost list when
// they are decoded again — graduate to the main queue. Main-queue
// eviction gives each re-touched block one more lap before letting it
// go. One cold broad query therefore streams through the probationary
// queue without displacing the blocks hot queries keep re-touching,
// and a hit still costs only one atomic load plus one cheap
// reference-bit write on the query path — no list manipulation.
//
// Both queues are fixed-ring deques that recycle their backing arrays:
// the earlier plain-slice FIFO re-sliced itself forward on every
// eviction (c.fifo = c.fifo[1:]), so under steady churn the backing
// array grew with the total insertion count — a leak proportional to
// uptime, not to the budget.
type BlockCache struct {
	mu          sync.Mutex
	budget      int64
	used        int64
	smallTarget int64 // byte budget of the probationary queue
	smallUsed   int64
	small       blockRing
	main        blockRing
	ghost       ghostList

	hits       atomic.Int64
	insertions atomic.Int64
	evictions  atomic.Int64
	promotions atomic.Int64
	ghostHits  atomic.Int64
}

type blockCacheEntry struct {
	slot   *atomic.Pointer[chunkPayload]
	weight int64
}

// BlockCacheStats is one cache's counter snapshot. Hits and Misses
// describe only cache-managed (decoded, charged) blocks: zero-copy
// aliases are memoized outside the budget and touch no counter.
type BlockCacheStats struct {
	Budget     int64
	Used       int64
	Hits       int64
	Misses     int64
	Insertions int64
	Evictions  int64
	Promotions int64
	GhostHits  int64
}

// NewBlockCache returns a cache that keeps at most budget bytes of
// decoded block payloads. A nil *BlockCache is valid and means
// "memoize everything, never evict".
func NewBlockCache(budget int64) *BlockCache {
	if budget <= 0 {
		return nil
	}
	c := &BlockCache{budget: budget, smallTarget: budget / 10}
	c.ghost.init()
	return c
}

// blockRing is a FIFO deque over a circular buffer. The buffer grows
// geometrically when full and is otherwise recycled, so its capacity
// tracks the peak resident population — bounded by budget/min-weight —
// never the cumulative insertion count.
type blockRing struct {
	buf   []blockCacheEntry
	head  int
	count int
}

func (r *blockRing) push(e blockCacheEntry) {
	if r.count == len(r.buf) {
		n := len(r.buf) * 2
		if n == 0 {
			n = 16
		}
		buf := make([]blockCacheEntry, n)
		for i := 0; i < r.count; i++ {
			buf[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = buf, 0
	}
	r.buf[(r.head+r.count)%len(r.buf)] = e
	r.count++
}

func (r *blockRing) pop() blockCacheEntry {
	e := r.buf[r.head]
	r.buf[r.head] = blockCacheEntry{}
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return e
}

// ghostList remembers the identity of blocks recently evicted from the
// probationary queue, so a block with a reuse interval longer than the
// small queue still reaches the main queue on its second decode. A slot
// may be ghosted again after its membership was consumed; the sequence
// number lets a stale ring occupant (superseded or promoted) be skipped
// on pop-out without scanning.
type ghostList struct {
	ring  []ghostEntry
	head  int
	count int
	seqs  map[*atomic.Pointer[chunkPayload]]uint64
	next  uint64
	limit int // target population; grows with the resident high-water mark
}

type ghostEntry struct {
	slot *atomic.Pointer[chunkPayload]
	seq  uint64
}

func (g *ghostList) init() {
	g.seqs = make(map[*atomic.Pointer[chunkPayload]]uint64)
	g.limit = 64
}

func (g *ghostList) add(slot *atomic.Pointer[chunkPayload]) {
	for g.count >= g.limit && g.count > 0 {
		g.popOldest()
	}
	if g.count == len(g.ring) {
		n := len(g.ring) * 2
		if n == 0 {
			n = 16
		}
		ring := make([]ghostEntry, n)
		for i := 0; i < g.count; i++ {
			ring[i] = g.ring[(g.head+i)%len(g.ring)]
		}
		g.ring, g.head = ring, 0
	}
	g.next++
	g.ring[(g.head+g.count)%len(g.ring)] = ghostEntry{slot: slot, seq: g.next}
	g.count++
	g.seqs[slot] = g.next
}

func (g *ghostList) popOldest() {
	e := g.ring[g.head]
	g.ring[g.head] = ghostEntry{}
	g.head = (g.head + 1) % len(g.ring)
	g.count--
	if s, ok := g.seqs[e.slot]; ok && s == e.seq {
		delete(g.seqs, e.slot)
	}
}

// take consumes the slot's ghost membership, reporting whether it held
// one. The ring occupant is left to age out as a stale entry.
func (g *ghostList) take(slot *atomic.Pointer[chunkPayload]) bool {
	if _, ok := g.seqs[slot]; !ok {
		return false
	}
	delete(g.seqs, slot)
	return true
}

// noteHit records a fast-path slot hit on a charged block and is called
// locklessly from materialize.
func (c *BlockCache) noteHit() {
	if c != nil {
		c.hits.Add(1)
	}
}

// insert charges a freshly decoded block and evicts until the budget
// holds again. A first-time block enters the probationary queue; a
// block whose identity is still ghosted re-enters the main queue
// directly (its reuse interval proved longer than the small queue).
//
// Invariant: a slot has at most one live queue entry. insert is only
// reached after a CAS from nil won the slot, the slot is set to nil
// only by eviction (which retires the entry), and promotion moves an
// entry rather than copying it — so an entry's slot is non-nil for
// exactly as long as the entry is queued, and the weight accounting in
// evictLocked is exact.
func (c *BlockCache) insert(slot *atomic.Pointer[chunkPayload], weight int64) {
	c.insertions.Add(1)
	c.mu.Lock()
	e := blockCacheEntry{slot: slot, weight: weight}
	if c.ghost.take(slot) {
		c.ghostHits.Add(1)
		c.main.push(e)
	} else {
		c.small.push(e)
		c.smallUsed += weight
	}
	c.used += weight
	c.evictLocked()
	if hw := c.small.count + c.main.count; hw > c.ghost.limit {
		c.ghost.limit = hw
	}
	c.mu.Unlock()
}

// evictLocked restores the byte budget: the probationary queue sheds
// first while over its own target, re-touched blocks graduating to the
// main queue instead of leaving; the main queue gives a re-touched
// block one extra lap. The scan is bounded so concurrent reference-bit
// setters cannot spin the evictor: past one full lap over the resident
// population, eviction stops honoring the bits.
func (c *BlockCache) evictLocked() {
	scans := c.small.count + c.main.count + 2
	for c.used > c.budget && (c.small.count > 0 || c.main.count > 0) {
		scans--
		fromSmall := c.small.count > 0 && (c.smallUsed > c.smallTarget || c.main.count == 0)
		if fromSmall {
			e := c.small.pop()
			c.smallUsed -= e.weight
			if scans > 0 {
				if p := e.slot.Load(); p != nil && p.accessed.Load() != 0 {
					p.accessed.Store(0)
					c.main.push(e)
					c.promotions.Add(1)
					continue
				}
			}
			if p := e.slot.Swap(nil); p != nil {
				c.used -= e.weight
			}
			c.ghost.add(e.slot)
			c.evictions.Add(1)
			continue
		}
		e := c.main.pop()
		if scans > 0 {
			if p := e.slot.Load(); p != nil && p.accessed.Load() != 0 {
				p.accessed.Store(0)
				c.main.push(e)
				continue
			}
		}
		if p := e.slot.Swap(nil); p != nil {
			c.used -= e.weight
		}
		c.evictions.Add(1)
	}
}

// Used returns the bytes currently charged to the cache.
func (c *BlockCache) Used() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Budget returns the configured byte budget (0 for a nil cache).
func (c *BlockCache) Budget() int64 {
	if c == nil {
		return 0
	}
	return c.budget
}

// Hits returns how many times a charged block was served resident from
// its slot.
func (c *BlockCache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Insertions returns how many decoded blocks were ever charged. Every
// insertion is a miss — the block had to be decoded — so this doubles
// as the miss count for charged blocks.
func (c *BlockCache) Insertions() int64 {
	if c == nil {
		return 0
	}
	return c.insertions.Load()
}

// Evictions returns how many cache entries were evicted.
func (c *BlockCache) Evictions() int64 {
	if c == nil {
		return 0
	}
	return c.evictions.Load()
}

// Stats snapshots every counter (zeros for a nil cache).
func (c *BlockCache) Stats() BlockCacheStats {
	if c == nil {
		return BlockCacheStats{}
	}
	c.mu.Lock()
	used := c.used
	c.mu.Unlock()
	ins := c.insertions.Load()
	return BlockCacheStats{
		Budget:     c.budget,
		Used:       used,
		Hits:       c.hits.Load(),
		Misses:     ins,
		Insertions: ins,
		Evictions:  c.evictions.Load(),
		Promotions: c.promotions.Load(),
		GhostHits:  c.ghostHits.Load(),
	}
}
