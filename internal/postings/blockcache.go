package postings

import (
	"sync"
	"sync/atomic"
)

// BlockCache bounds the heap held by decoded mapped blocks. Only blocks
// that required real decoding are charged — packed docIDs and uvarint TF
// columns — while zero-copy views of the mapping weigh nothing and are
// memoized permanently in their list's slot. Eviction is FIFO: the
// oldest decoded block's slot is cleared, so the next touch re-decodes
// it; readers that obtained the payload pointer before the eviction keep
// using it safely (the garbage collector keeps it alive for them).
//
// FIFO rather than LRU is deliberate: the query kernels stream blocks in
// ascending docID order, so recency tracking buys little, and a hit
// costs one atomic load with no bookkeeping writes on the hot path.
type BlockCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	// FIFO of charged slots. An entry's slot may have been re-filled
	// after an earlier eviction; the Swap in evict keeps the accounting
	// exact either way because a block's decoded weight is deterministic.
	fifo []blockCacheEntry

	insertions atomic.Int64
	evictions  atomic.Int64
}

type blockCacheEntry struct {
	slot   *atomic.Pointer[chunkPayload]
	weight int64
}

// NewBlockCache returns a cache that keeps at most budget bytes of
// decoded block payloads. A nil *BlockCache is valid and means
// "memoize everything, never evict".
func NewBlockCache(budget int64) *BlockCache {
	if budget <= 0 {
		return nil
	}
	return &BlockCache{budget: budget}
}

// insert charges a freshly decoded block and evicts the oldest charged
// blocks until the budget holds again. The new entry is evicted last,
// so a single block larger than the whole budget is simply not retained.
func (c *BlockCache) insert(slot *atomic.Pointer[chunkPayload], weight int64) {
	c.insertions.Add(1)
	c.mu.Lock()
	c.fifo = append(c.fifo, blockCacheEntry{slot: slot, weight: weight})
	c.used += weight
	for c.used > c.budget && len(c.fifo) > 0 {
		e := c.fifo[0]
		c.fifo[0] = blockCacheEntry{}
		c.fifo = c.fifo[1:]
		if p := e.slot.Swap(nil); p != nil {
			c.used -= e.weight
		}
		c.evictions.Add(1)
	}
	if len(c.fifo) == 0 {
		c.fifo = nil // let the drained backing array go
	}
	c.mu.Unlock()
}

// Used returns the bytes currently charged to the cache.
func (c *BlockCache) Used() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Budget returns the configured byte budget (0 for a nil cache).
func (c *BlockCache) Budget() int64 {
	if c == nil {
		return 0
	}
	return c.budget
}

// Insertions returns how many decoded blocks were ever charged.
func (c *BlockCache) Insertions() int64 {
	if c == nil {
		return 0
	}
	return c.insertions.Load()
}

// Evictions returns how many cache entries were evicted.
func (c *BlockCache) Evictions() int64 {
	if c == nil {
		return 0
	}
	return c.evictions.Load()
}
