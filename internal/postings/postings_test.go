package postings

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func listFrom(ids ...uint32) *List { return FromDocIDs(ids, 4) }

// randomSortedIDs returns n distinct sorted docids below max.
func randomSortedIDs(rng *rand.Rand, n int, max uint32) []uint32 {
	seen := make(map[uint32]bool, n)
	for len(seen) < n {
		seen[rng.Uint32()%max] = true
	}
	ids := make([]uint32, 0, n)
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func setIntersect(lists [][]uint32) []uint32 {
	if len(lists) == 0 {
		return nil
	}
	count := make(map[uint32]int)
	for _, l := range lists {
		for _, id := range l {
			count[id]++
		}
	}
	var out []uint32
	for id, c := range count {
		if c == len(lists) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestNewListPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewList did not panic on unsorted postings")
		}
	}()
	NewList([]Posting{{DocID: 5}, {DocID: 3}}, 0)
}

func TestNewListPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewList did not panic on duplicate DocIDs")
		}
	}()
	NewList([]Posting{{DocID: 5}, {DocID: 5}}, 0)
}

func TestListAccessors(t *testing.T) {
	l := NewList([]Posting{{1, 2}, {4, 1}, {9, 7}}, 2)
	if l.Len() != 3 {
		t.Errorf("Len = %d", l.Len())
	}
	if l.Segments() != 2 {
		t.Errorf("Segments = %d", l.Segments())
	}
	if l.MaxDocID() != 9 {
		t.Errorf("MaxDocID = %d", l.MaxDocID())
	}
	if !l.Contains(4) || l.Contains(5) {
		t.Error("Contains wrong")
	}
	if l.TF(9) != 7 || l.TF(2) != 0 {
		t.Error("TF wrong")
	}
	if got := l.DocIDs(); !reflect.DeepEqual(got, []uint32{1, 4, 9}) {
		t.Errorf("DocIDs = %v", got)
	}
}

func TestEmptyList(t *testing.T) {
	l := NewList(nil, 0)
	if l.Len() != 0 || l.Segments() != 0 || l.MaxDocID() != 0 {
		t.Error("empty list accessors wrong")
	}
	r := Intersect([]*List{l, listFrom(1, 2)}, nil)
	if r.Len() != 0 {
		t.Error("intersection with empty list should be empty")
	}
}

func TestBuilderAccumulatesTF(t *testing.T) {
	b := NewBuilder(0)
	b.Add(3, 1)
	b.Add(3, 2)
	b.Add(7, 1)
	l := b.Build()
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.TF(3) != 3 || l.TF(7) != 1 {
		t.Errorf("TFs = %d, %d", l.TF(3), l.TF(7))
	}
}

func TestBuilderPanicsOnDescending(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Builder.Add did not panic on descending DocID")
		}
	}()
	b := NewBuilder(0)
	b.Add(5, 1)
	b.Add(4, 1)
}

func TestIntersectPair(t *testing.T) {
	a := listFrom(1, 3, 5, 7, 9, 11)
	b := listFrom(3, 4, 7, 8, 11, 20)
	r := Intersect([]*List{a, b}, nil)
	if !reflect.DeepEqual(r.DocIDs, []uint32{3, 7, 11}) {
		t.Errorf("DocIDs = %v", r.DocIDs)
	}
}

func TestIntersectPreservesTFAlignment(t *testing.T) {
	a := NewList([]Posting{{1, 10}, {5, 50}, {9, 90}}, 2)
	b := NewList([]Posting{{5, 2}, {9, 3}, {12, 4}}, 2)
	r := Intersect([]*List{a, b}, nil)
	if !reflect.DeepEqual(r.DocIDs, []uint32{5, 9}) {
		t.Fatalf("DocIDs = %v", r.DocIDs)
	}
	if !reflect.DeepEqual(r.TFs[0], []uint32{50, 90}) {
		t.Errorf("TFs[0] = %v", r.TFs[0])
	}
	if !reflect.DeepEqual(r.TFs[1], []uint32{2, 3}) {
		t.Errorf("TFs[1] = %v", r.TFs[1])
	}
}

func TestIntersectTFAlignmentWhenDriverIsNotFirst(t *testing.T) {
	// The shorter list is second; TFs must still come back in input order.
	a := NewList([]Posting{{1, 10}, {5, 50}, {9, 90}, {12, 1}, {15, 2}}, 2)
	b := NewList([]Posting{{5, 7}, {15, 8}}, 2)
	r := Intersect([]*List{a, b}, nil)
	if !reflect.DeepEqual(r.DocIDs, []uint32{5, 15}) {
		t.Fatalf("DocIDs = %v", r.DocIDs)
	}
	if !reflect.DeepEqual(r.TFs[0], []uint32{50, 2}) || !reflect.DeepEqual(r.TFs[1], []uint32{7, 8}) {
		t.Errorf("TFs = %v", r.TFs)
	}
}

func TestIntersectThreeWay(t *testing.T) {
	a := listFrom(1, 2, 3, 4, 5, 6, 7, 8)
	b := listFrom(2, 4, 6, 8)
	c := listFrom(4, 8, 16)
	r := Intersect([]*List{a, b, c}, nil)
	if !reflect.DeepEqual(r.DocIDs, []uint32{4, 8}) {
		t.Errorf("DocIDs = %v", r.DocIDs)
	}
}

func TestIntersectDisjoint(t *testing.T) {
	a := listFrom(1, 2, 3)
	b := listFrom(10, 20, 30)
	if r := Intersect([]*List{a, b}, nil); r.Len() != 0 {
		t.Errorf("Len = %d, want 0", r.Len())
	}
}

func TestIntersectSingleList(t *testing.T) {
	a := listFrom(1, 2, 3)
	r := Intersect([]*List{a}, nil)
	if !reflect.DeepEqual(r.DocIDs, []uint32{1, 2, 3}) {
		t.Errorf("DocIDs = %v", r.DocIDs)
	}
}

func TestIntersectNoLists(t *testing.T) {
	if r := Intersect(nil, nil); r.Len() != 0 {
		t.Error("empty input should give empty result")
	}
}

func TestIntersectMatchesMergeIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		a := NewList(randPostings(rng, 1+rng.Intn(200), 500), 8)
		b := NewList(randPostings(rng, 1+rng.Intn(200), 500), 8)
		skip := Intersect([]*List{a, b}, nil)
		merge := MergeIntersect(a, b, nil)
		if !equalIDs(skip.DocIDs, merge.DocIDs) {
			t.Fatalf("trial %d: skip %v != merge %v", trial, skip.DocIDs, merge.DocIDs)
		}
		for i := range skip.TFs {
			if !equalIDs(skip.TFs[i], merge.TFs[i]) {
				t.Fatalf("trial %d: TFs[%d] differ: %v vs %v", trial, i, skip.TFs[i], merge.TFs[i])
			}
		}
	}
}

// equalIDs compares two slices treating nil and empty as equal.
func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randPostings(rng *rand.Rand, n int, max uint32) []Posting {
	ids := randomSortedIDs(rng, n, max)
	ps := make([]Posting, len(ids))
	for i, id := range ids {
		ps[i] = Posting{DocID: id, TF: uint32(1 + rng.Intn(20))}
	}
	return ps
}

// Property: k-way intersection equals the set-theoretic intersection.
func TestIntersectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(3)
		lists := make([]*List, k)
		raw := make([][]uint32, k)
		for i := 0; i < k; i++ {
			ids := randomSortedIDs(r, 1+r.Intn(100), 200)
			raw[i] = ids
			lists[i] = FromDocIDs(ids, 1+r.Intn(16))
		}
		got := Intersect(lists, nil).DocIDs
		want := setIntersect(raw)
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSkipCostModelBound(t *testing.T) {
	// cost(L_i ∩ L_j) with skips must be ≤ |L_i| + |L_j| (§3.2.1).
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		a := NewList(randPostings(rng, 1+rng.Intn(2000), 100000), DefaultSegmentSize)
		b := NewList(randPostings(rng, 1+rng.Intn(2000), 100000), DefaultSegmentSize)
		var st Stats
		Intersect([]*List{a, b}, &st)
		if st.EntriesScanned > int64(a.Len()+b.Len()) {
			t.Fatalf("entries scanned %d exceeds |a|+|b| = %d", st.EntriesScanned, a.Len()+b.Len())
		}
	}
}

func TestSkipSavingsWhenSelective(t *testing.T) {
	// When |L_i| ≪ |L_j|, skip pointers should avoid scanning most of the
	// long list: cost ≈ |L_i| + |L_i|·M0 (§3.2.2).
	rng := rand.New(rand.NewSource(5))
	long := NewList(randPostings(rng, 100000, 1<<24), DefaultSegmentSize)
	short := NewList(randPostings(rng, 50, 1<<24), DefaultSegmentSize)
	var st Stats
	Intersect([]*List{short, long}, &st)
	bound := int64(short.Len()) + int64(short.Len())*int64(DefaultSegmentSize) + int64(short.Len())
	if st.EntriesScanned > bound {
		t.Errorf("entries scanned %d exceeds selective bound %d", st.EntriesScanned, bound)
	}
	if st.SegmentsSkipped == 0 {
		t.Error("expected some segments to be skipped")
	}
}

func TestIntersectionSize(t *testing.T) {
	a := listFrom(1, 2, 3, 4)
	b := listFrom(2, 4, 6)
	var st Stats
	if got := IntersectionSize([]*List{a, b}, &st); got != 2 {
		t.Errorf("IntersectionSize = %d, want 2", got)
	}
	if got := IntersectionSize([]*List{a}, &st); got != 4 {
		t.Errorf("single-list size = %d, want 4", got)
	}
	if got := IntersectionSize(nil, &st); got != 0 {
		t.Errorf("no-list size = %d, want 0", got)
	}
}

func TestAggregations(t *testing.T) {
	a := listFrom(1, 2, 3, 4)
	b := listFrom(2, 4, 6)
	r := Intersect([]*List{a, b}, nil)
	var st Stats
	if got := Count(r, &st); got != 2 {
		t.Errorf("Count = %d", got)
	}
	lens := map[uint32]int64{2: 100, 4: 50}
	sum := SumOver(r, func(id uint32) int64 { return lens[id] }, &st)
	if sum != 150 {
		t.Errorf("SumOver = %d", sum)
	}
	if st.AggregatedEntries != 4 {
		t.Errorf("AggregatedEntries = %d, want 4", st.AggregatedEntries)
	}
}

func TestSumList(t *testing.T) {
	l := listFrom(1, 2, 3)
	var st Stats
	sum := SumList(l, func(id uint32) int64 { return int64(id) * 10 }, &st)
	if sum != 60 {
		t.Errorf("SumList = %d", sum)
	}
	if st.AggregatedEntries != 3 {
		t.Errorf("AggregatedEntries = %d", st.AggregatedEntries)
	}
}

func TestUnion(t *testing.T) {
	a := NewList([]Posting{{1, 1}, {3, 2}}, 2)
	b := NewList([]Posting{{2, 5}, {3, 4}}, 2)
	u := Union([]*List{a, b}, nil)
	if !reflect.DeepEqual(u.DocIDs(), []uint32{1, 2, 3}) {
		t.Errorf("Union DocIDs = %v", u.DocIDs())
	}
	if u.TF(3) != 6 {
		t.Errorf("Union TF(3) = %d, want 6", u.TF(3))
	}
}

func TestUnionEdgeCases(t *testing.T) {
	if Union(nil, nil).Len() != 0 {
		t.Error("Union(nil) not empty")
	}
	a := listFrom(1, 2)
	if got := Union([]*List{a}, nil); got != a {
		t.Error("Union of one list should return it unchanged")
	}
}

func TestIntersectionToList(t *testing.T) {
	a := listFrom(1, 2, 3, 4)
	b := listFrom(2, 4)
	l := Intersect([]*List{a, b}, nil).ToList()
	if !reflect.DeepEqual(l.DocIDs(), []uint32{2, 4}) {
		t.Errorf("ToList DocIDs = %v", l.DocIDs())
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{EntriesScanned: 1, SegmentsSkipped: 2, Seeks: 3, AggregatedEntries: 4, Intersections: 5, ViewGroupsScanned: 6}
	b := a
	a.Add(b)
	if a.EntriesScanned != 2 || a.ViewGroupsScanned != 12 || a.Intersections != 10 {
		t.Errorf("Stats.Add wrong: %+v", a)
	}
	if a.ListWork() != 2+8 {
		t.Errorf("ListWork = %d", a.ListWork())
	}
}

func TestNilStatsSafe(t *testing.T) {
	// All operations must accept a nil *Stats without panicking.
	a := listFrom(1, 2, 3)
	b := listFrom(2, 3, 4)
	r := Intersect([]*List{a, b}, nil)
	MergeIntersect(a, b, nil)
	Count(r, nil)
	SumOver(r, func(uint32) int64 { return 1 }, nil)
	SumList(a, nil2, nil)
	Union([]*List{a, b}, nil)
}

func nil2(uint32) int64 { return 0 }
