package postings

import (
	"context"
	"math"
	"math/bits"
	"sort"
)

// Intersection is the result of a k-way conjunctive intersection: the
// matching document IDs plus, for every input list, the term frequencies
// aligned with DocIDs. The aligned TFs let the ranking layer compute
// tf(w, d) for each query keyword without any further index probes.
type Intersection struct {
	DocIDs []uint32
	// TFs[i][j] is the TF recorded by input list i for document DocIDs[j].
	TFs [][]uint32
}

// Len returns the number of matching documents (the join cardinality).
func (r *Intersection) Len() int { return len(r.DocIDs) }

// ToList converts the intersection result into a List with TF = 1, suitable
// for feeding into further intersections (intermediate results of a
// multi-way plan). Segment size follows DefaultSegmentSize.
func (r *Intersection) ToList() *List {
	return FromDocIDs(r.DocIDs, 0)
}

// conjoin runs the document-at-a-time k-way conjunction with the shortest
// list driving and the rest sought in ascending length order, and calls
// onMatch for every matching docID with all cursors positioned on it. It
// is the shared engine of Intersect and the count-style kernels that need
// TFs (CountTFSum). A non-nil canceler is polled every checkStride driver
// steps; on cancellation the conjunction stops early (the caller reports
// the cause).
func conjoin(lists []*List, st *Stats, cc *canceler, onMatch func(docID uint32, cursors []*cursor)) {
	// Evaluation order: ascending by length, remembering original slots.
	order := make([]int, len(lists))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return lists[order[a]].Len() < lists[order[b]].Len()
	})

	cursors := make([]*cursor, len(lists))
	for _, idx := range order {
		cursors[idx] = newCursor(lists[idx], st)
	}

	driver := cursors[order[0]]
	for !driver.exhausted() {
		if cc.strideHalted() {
			return
		}
		candidate := driver.docID()
		if driver.exhausted() {
			// docID resolution ran off a quarantined tail: done.
			return
		}
		matched := true
		for _, idx := range order[1:] {
			c := cursors[idx]
			if !c.seek(candidate) {
				// Some list is exhausted: no further matches anywhere.
				return
			}
			got := c.docID()
			if c.exhausted() {
				return
			}
			if got != candidate {
				// Re-seek the driver to the larger DocID and restart.
				if !driver.seek(got) {
					return
				}
				matched = false
				break
			}
		}
		if matched {
			onMatch(candidate, cursors)
			driver.next()
		}
	}
}

// Intersect computes the conjunction of all input lists using the
// document-at-a-time algorithm: the shortest list drives, and every
// candidate DocID is sought in the remaining lists ordered by ascending
// length so mismatches are discovered as cheaply as possible. Cost
// counters accumulate into st (which may be nil).
//
// The result's TFs are ordered like the *input* lists, not the internal
// evaluation order.
func Intersect(lists []*List, st *Stats) *Intersection {
	res, _ := IntersectCtx(context.Background(), lists, st)
	return res
}

// IntersectCtx is Intersect with cooperative cancellation: the
// conjunction polls ctx at chunk-range (dense kernel) or checkStride
// (cursor kernel) granularity. On cancellation it returns the matches
// accumulated so far — a valid prefix of the full result, usable for
// degraded partial answers — together with ctx's error.
func IntersectCtx(ctx context.Context, lists []*List, st *Stats) (*Intersection, error) {
	cc := newCanceler(ctx)
	res := &Intersection{TFs: make([][]uint32, len(lists))}
	if len(lists) == 0 {
		return res, nil
	}
	for _, l := range lists {
		if l == nil || l.Len() == 0 {
			// A nil list stands for a term absent from the index: the
			// conjunction is empty.
			return res, nil
		}
	}
	if len(lists) > 1 {
		st.addIntersection()
	}
	est := lists[0].Len()
	for _, l := range lists[1:] {
		if l.Len() < est {
			est = l.Len()
		}
	}
	allTFLess := true
	for _, l := range lists {
		if l.HasTFs() {
			allTFLess = false
			break
		}
	}
	if allTFLess && len(lists) > 1 {
		// Every list is predicate-shaped (implicit TF = 1): the count-only
		// conjunction kernel can materialize too — dense ranges go through
		// word-AND + popcount instead of cursor stepping. The TF columns
		// are a single shared all-ones slice; Intersection consumers treat
		// TFs as read-only.
		res.DocIDs = make([]uint32, 0, est/4+1)
		visitConjunction(lists, st, cc, func(d uint32) {
			res.DocIDs = append(res.DocIDs, d)
		})
		ones := make([]uint32, len(res.DocIDs))
		for i := range ones {
			ones[i] = 1
		}
		for i := range res.TFs {
			res.TFs[i] = ones
		}
		return res, cc.cause()
	}
	res.DocIDs = make([]uint32, 0, est/4+1)
	for i := range res.TFs {
		res.TFs[i] = make([]uint32, 0, est/4+1)
	}
	conjoin(lists, st, cc, func(d uint32, cursors []*cursor) {
		res.DocIDs = append(res.DocIDs, d)
		for i, c := range cursors {
			res.TFs[i] = append(res.TFs[i], c.tf())
		}
	})
	return res, cc.cause()
}

// Intersect2 is a convenience wrapper for the common pairwise case.
func Intersect2(a, b *List, st *Stats) *Intersection {
	return Intersect([]*List{a, b}, st)
}

// IntersectionSize returns only the cardinality |∩ lists|, the quantity
// needed for df(w, D_P) and |D_P|. It runs the count-only conjunction
// kernel over the adaptive containers — a word-AND + popcount when every
// list is dense over a docID range — and never materializes the result.
func IntersectionSize(lists []*List, st *Stats) int64 {
	n, _ := IntersectionSizeCtx(context.Background(), lists, st)
	return n
}

// IntersectionSizeCtx is IntersectionSize with cooperative cancellation
// at chunk-range granularity. On cancellation it returns the partial
// count together with ctx's error.
func IntersectionSizeCtx(ctx context.Context, lists []*List, st *Stats) (int64, error) {
	if len(lists) == 0 {
		return 0, nil
	}
	if len(lists) == 1 {
		if lists[0] == nil {
			return 0, nil
		}
		return int64(lists[0].Len()), nil
	}
	for _, l := range lists {
		if l == nil || l.Len() == 0 {
			return 0, nil
		}
	}
	st.addIntersection()
	cc := newCanceler(ctx)
	n := visitConjunction(lists, st, cc, nil)
	return n, cc.cause()
}

// MergeIntersect computes the pairwise intersection by a plain two-pointer
// merge without container skipping, touching every entry of both lists. It
// exists as the baseline of the paper's cost comparison
// (cost = |L_i| + |L_j|) and for differential testing of the skip-aware
// path.
func MergeIntersect(a, b *List, st *Stats) *Intersection {
	st.addIntersection()
	res := &Intersection{TFs: make([][]uint32, 2)}
	ca, cb := newCursor(a, st), newCursor(b, st)
	for !ca.exhausted() && !cb.exhausted() {
		da, db := ca.docID(), cb.docID()
		if ca.exhausted() || cb.exhausted() {
			// docID resolution ran off a quarantined tail.
			break
		}
		switch {
		case da < db:
			ca.next()
		case da > db:
			cb.next()
		default:
			res.DocIDs = append(res.DocIDs, da)
			res.TFs[0] = append(res.TFs[0], ca.tf())
			res.TFs[1] = append(res.TFs[1], cb.tf())
			ca.next()
			cb.next()
		}
	}
	return res
}

// Union returns the DocIDs present in at least one input list, with TFs
// summed across lists, as a single k-way merge instead of the pairwise
// fold's O(k · total). The merge is container-aligned: lists partition
// docID space into the same 2^16 ranges, so each active range is
// processed once — dense chunks OR their words into a presence bitset,
// sparse chunks set individual bits, TFs accumulate in a range-local
// array, and one TrailingZeros sweep emits the range in sorted order.
// Cost is O(total + activeRanges · 1024), comparison-free. Union is not
// used by conjunctive query evaluation but completes the substrate
// (disjunctive retrieval, ancestor-closure construction, tests).
//
// TFs accumulate in 64-bit per-range slots and saturate at the posting
// format's uint32 ceiling on emission, so summing many large-TF lists
// can never wrap around to a small count.
func Union(lists []*List, st *Stats) *List {
	l, _ := UnionCtx(context.Background(), lists, st)
	return l
}

// UnionCtx is Union with cooperative cancellation at chunk-range
// granularity. On cancellation it returns the merged prefix built so far
// together with ctx's error; callers that need the complete union must
// treat a non-nil error as failure.
func UnionCtx(ctx context.Context, lists []*List, st *Stats) (*List, error) {
	switch len(lists) {
	case 0:
		return NewList(nil, 0), nil
	}
	var live []*List
	segSize, total := 0, 0
	for _, l := range lists {
		if l == nil || l.Len() == 0 {
			continue
		}
		if segSize == 0 {
			segSize = l.segSize
		}
		total += l.Len()
		live = append(live, l)
	}
	switch len(live) {
	case 0:
		return NewList(nil, segSize), nil
	case 1:
		return live[0], nil
	}
	cc := newCanceler(ctx)
	ids := make([]uint32, 0, total)
	tfs := make([]uint32, 0, total)
	// Range-local TF accumulators are 64-bit: k input lists can each
	// contribute up to MaxUint32 per document, which overflows a uint32
	// slot silently. The widened sum saturates at MaxUint32 on emission
	// (the posting format's TF width).
	acc := make([]uint64, chunkSpan)
	var pres [chunkWords]uint64
	cis := make([]int, len(live))
	consumed := 0
	for {
		if cc.halted() {
			break
		}
		// The lowest pending chunk base decides the next active range.
		base, none := uint32(0), true
		for i, l := range live {
			if cis[i] < len(l.chunks) {
				if b := l.chunks[cis[i]].base; none || b < base {
					base, none = b, false
				}
			}
		}
		if none {
			break
		}
		for i, l := range live {
			if cis[i] >= len(l.chunks) || l.chunks[cis[i]].base != base {
				continue
			}
			n := int(l.chunks[cis[i]].n)
			keys, words, tfs, quarantined := l.payloadQ(cis[i])
			if quarantined {
				st.addQuarantineSkip()
			}
			if words != nil {
				r := 0
				for w, word := range words {
					pres[w] |= word
					for word != 0 {
						lo := w<<6 + bits.TrailingZeros64(word)
						if tfs == nil {
							acc[lo]++
						} else {
							acc[lo] += uint64(tfs[r])
						}
						r++
						word &= word - 1
					}
				}
			} else {
				for j, key := range keys {
					lo := int(key)
					pres[lo>>6] |= 1 << uint(lo&63)
					if tfs == nil {
						acc[lo]++
					} else {
						acc[lo] += uint64(tfs[j])
					}
				}
			}
			consumed += n
			cis[i]++
		}
		for w := range pres {
			word := pres[w]
			if word == 0 {
				continue
			}
			pres[w] = 0
			for word != 0 {
				lo := w<<6 + bits.TrailingZeros64(word)
				ids = append(ids, base+uint32(lo))
				tf := acc[lo]
				if tf > math.MaxUint32 {
					tf = math.MaxUint32 // saturate at the TF column width
				}
				tfs = append(tfs, uint32(tf))
				acc[lo] = 0
				word &= word - 1
			}
		}
	}
	// Every input entry is consumed exactly once (all of them unless the
	// merge was cancelled mid-way).
	st.addEntries(int64(consumed))
	return newListRaw(ids, tfs, segSize, DenseThreshold), cc.cause()
}
