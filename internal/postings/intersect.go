package postings

import "sort"

// Intersection is the result of a k-way conjunctive intersection: the
// matching document IDs plus, for every input list, the term frequencies
// aligned with DocIDs. The aligned TFs let the ranking layer compute
// tf(w, d) for each query keyword without any further index probes.
type Intersection struct {
	DocIDs []uint32
	// TFs[i][j] is the TF recorded by input list i for document DocIDs[j].
	TFs [][]uint32
}

// Len returns the number of matching documents (the join cardinality).
func (r *Intersection) Len() int { return len(r.DocIDs) }

// ToList converts the intersection result into a List with TF = 1, suitable
// for feeding into further intersections (intermediate results of a
// multi-way plan). Segment size follows DefaultSegmentSize.
func (r *Intersection) ToList() *List {
	return FromDocIDs(r.DocIDs, 0)
}

// Intersect computes the conjunction of all input lists using the
// document-at-a-time algorithm with skip pointers: the shortest list drives,
// and every candidate DocID is sought in the remaining lists ordered by
// ascending length so mismatches are discovered as cheaply as possible.
// Cost counters accumulate into st (which may be nil).
//
// The result's TFs are ordered like the *input* lists, not the internal
// evaluation order.
func Intersect(lists []*List, st *Stats) *Intersection {
	res := &Intersection{TFs: make([][]uint32, len(lists))}
	if len(lists) == 0 {
		return res
	}
	for _, l := range lists {
		if l == nil || l.Len() == 0 {
			// A nil list stands for a term absent from the index: the
			// conjunction is empty.
			return res
		}
	}
	if len(lists) > 1 {
		st.addIntersection()
	}

	// Evaluation order: ascending by length, remembering original slots.
	order := make([]int, len(lists))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return lists[order[a]].Len() < lists[order[b]].Len()
	})

	cursors := make([]*cursor, len(lists))
	for _, idx := range order {
		cursors[idx] = newCursor(lists[idx], st)
	}

	driver := cursors[order[0]]
	est := driver.list.Len()
	res.DocIDs = make([]uint32, 0, est/4+1)
	for i := range res.TFs {
		res.TFs[i] = make([]uint32, 0, est/4+1)
	}

	for !driver.exhausted() {
		candidate := driver.current().DocID
		matched := true
		for _, idx := range order[1:] {
			c := cursors[idx]
			if !c.seek(candidate) {
				// Some list is exhausted: no further matches anywhere.
				return res
			}
			if got := c.current().DocID; got != candidate {
				// Re-seek the driver to the larger DocID and restart.
				if !driver.seek(got) {
					return res
				}
				matched = false
				break
			}
		}
		if matched {
			res.DocIDs = append(res.DocIDs, candidate)
			for i, c := range cursors {
				res.TFs[i] = append(res.TFs[i], c.current().TF)
			}
			driver.next()
		}
	}
	return res
}

// Intersect2 is a convenience wrapper for the common pairwise case.
func Intersect2(a, b *List, st *Stats) *Intersection {
	return Intersect([]*List{a, b}, st)
}

// IntersectionSize returns only the cardinality |∩ lists|, the quantity
// needed for df(w, D_P) and |D_P|. It runs the same skip-aware algorithm
// but avoids materializing the result.
func IntersectionSize(lists []*List, st *Stats) int64 {
	if len(lists) == 0 {
		return 0
	}
	if len(lists) == 1 {
		if lists[0] == nil {
			return 0
		}
		return int64(lists[0].Len())
	}
	// Materialization cost is dominated by scanning; reuse Intersect but
	// drop the result. The allocation overhead is acceptable because the
	// engine prefers view-based answers for large contexts anyway.
	return int64(Intersect(lists, st).Len())
}

// MergeIntersect computes the pairwise intersection by a plain two-pointer
// merge without skip pointers, touching every entry of both lists. It
// exists as the baseline of the paper's cost comparison
// (cost = |L_i| + |L_j|) and for differential testing of the skip-aware
// path.
func MergeIntersect(a, b *List, st *Stats) *Intersection {
	st.addIntersection()
	res := &Intersection{TFs: make([][]uint32, 2)}
	i, j := 0, 0
	ap, bp := a.postings, b.postings
	for i < len(ap) && j < len(bp) {
		switch {
		case ap[i].DocID < bp[j].DocID:
			i++
			st.addEntries(1)
		case ap[i].DocID > bp[j].DocID:
			j++
			st.addEntries(1)
		default:
			res.DocIDs = append(res.DocIDs, ap[i].DocID)
			res.TFs[0] = append(res.TFs[0], ap[i].TF)
			res.TFs[1] = append(res.TFs[1], bp[j].TF)
			i++
			j++
			st.addEntries(2)
		}
	}
	return res
}

// Union returns the DocIDs present in at least one input list, with TFs
// summed across lists. It is not used by conjunctive query evaluation but
// completes the substrate (disjunctive retrieval, tests).
func Union(lists []*List, st *Stats) *List {
	switch len(lists) {
	case 0:
		return NewList(nil, 0)
	case 1:
		return lists[0]
	}
	// k-way merge over sorted lists via repeated pairwise merge; list
	// counts are small (query terms), so simplicity beats a heap.
	acc := lists[0]
	for _, l := range lists[1:] {
		acc = mergeUnion(acc, l, st)
	}
	return acc
}

func mergeUnion(a, b *List, st *Stats) *List {
	out := make([]Posting, 0, a.Len()+b.Len())
	i, j := 0, 0
	ap, bp := a.postings, b.postings
	for i < len(ap) && j < len(bp) {
		switch {
		case ap[i].DocID < bp[j].DocID:
			out = append(out, ap[i])
			i++
		case ap[i].DocID > bp[j].DocID:
			out = append(out, bp[j])
			j++
		default:
			out = append(out, Posting{DocID: ap[i].DocID, TF: ap[i].TF + bp[j].TF})
			i++
			j++
		}
	}
	out = append(out, ap[i:]...)
	out = append(out, bp[j:]...)
	st.addEntries(int64(a.Len() + b.Len()))
	return NewList(out, a.segSize)
}
