package postings

import (
	"encoding/binary"
	"fmt"
)

// Compressed on-disk representation of posting lists: document IDs are
// delta-encoded (sorted, strictly ascending, so gaps are ≥ 1) and both
// gaps and term frequencies are written as unsigned varints — the
// standard compression scheme of text search systems, here used by the
// index's persistence layer. A typical synthetic-corpus list shrinks to
// roughly a third of its raw 8-bytes-per-posting footprint.

// EncodePostings serializes a sorted posting slice: a uvarint count,
// then per posting the docid gap (first posting stores docid+1) and the
// TF, both as uvarints.
func EncodePostings(ps []Posting) []byte {
	buf := make([]byte, 0, len(ps)*2+binary.MaxVarintLen64)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(uint64(len(ps)))
	prev := uint32(0)
	for i, p := range ps {
		if i == 0 {
			put(uint64(p.DocID) + 1)
		} else {
			put(uint64(p.DocID - prev))
		}
		put(uint64(p.TF))
		prev = p.DocID
	}
	return buf
}

// EncodeList serializes a List in the container-aware layout used by
// index formats 2 and 3: a flags byte (bit 0: explicit TFs present,
// bit 1: per-container score bounds present), a uvarint count, the docid
// gaps (first docid stored +1), then — only when the respective flag is
// set — the TF array as uvarints and the per-container (MaxTF,
// MinDocLen) pairs as uvarints, one pair per populated container in
// order. Predicate lists (TF = 1 implicit) therefore pay nothing per
// posting for TFs, unlike EncodePostings which interleaves a TF byte for
// every entry.
func EncodeList(l *List) []byte {
	buf := make([]byte, 0, l.Len()*2+binary.MaxVarintLen64+1)
	var flags byte
	if l.HasTFs() {
		flags |= 1
	}
	if l.HasBounds() {
		flags |= 2
	}
	buf = append(buf, flags)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(uint64(l.Len()))
	prev := uint32(0)
	first := true
	writeTFs := l.HasTFs()
	var tfBuf []uint32
	if writeTFs {
		tfBuf = make([]uint32, 0, l.Len())
	}
	l.ForEach(func(d, tf uint32) {
		if first {
			put(uint64(d) + 1)
			first = false
		} else {
			put(uint64(d - prev))
		}
		prev = d
		if writeTFs {
			tfBuf = append(tfBuf, tf)
		}
	})
	for _, tf := range tfBuf {
		put(uint64(tf))
	}
	for _, b := range l.bounds {
		put(uint64(b.MaxTF))
		put(uint64(b.MinDocLen))
	}
	return buf
}

// DecodeList reverses EncodeList, building the adaptive-container list
// directly (no intermediate []Posting). It validates structure and returns
// an error on truncated or corrupt input rather than panicking.
func DecodeList(data []byte, segSize int) (*List, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("postings: empty list encoding")
	}
	flags := data[0]
	if flags&^byte(3) != 0 {
		return nil, fmt.Errorf("postings: unknown list flags %#x", flags)
	}
	data = data[1:]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("postings: corrupt count")
	}
	data = data[n:]
	if count > uint64(len(data))*2 {
		return nil, fmt.Errorf("postings: count %d exceeds payload", count)
	}
	ids := make([]uint32, 0, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		gap, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("postings: truncated gap at %d", i)
		}
		data = data[n:]
		if gap == 0 {
			return nil, fmt.Errorf("postings: zero gap at %d", i)
		}
		docID := prev + gap
		if i == 0 {
			docID = gap - 1
		}
		if docID > 1<<32-1 {
			return nil, fmt.Errorf("postings: docid overflow at %d", i)
		}
		ids = append(ids, uint32(docID))
		prev = docID
	}
	var tfs []uint32
	if flags&1 != 0 {
		tfs = make([]uint32, 0, count)
		for i := uint64(0); i < count; i++ {
			tf, n := binary.Uvarint(data)
			if n <= 0 {
				return nil, fmt.Errorf("postings: truncated tf at %d", i)
			}
			data = data[n:]
			tfs = append(tfs, uint32(tf))
		}
	}
	l := newListRaw(ids, tfs, segSize, DenseThreshold)
	if flags&2 != 0 {
		// One (MaxTF, MinDocLen) pair per populated container; the
		// container count is fully determined by the docIDs just decoded,
		// so no length prefix is needed (or trusted).
		bounds := make([]ChunkBound, len(l.chunks))
		for i := range bounds {
			maxTF, n := binary.Uvarint(data)
			if n <= 0 || maxTF > 1<<32-1 {
				return nil, fmt.Errorf("postings: corrupt bound max-tf at container %d", i)
			}
			data = data[n:]
			minLen, n := binary.Uvarint(data)
			if n <= 0 || minLen > 1<<31-1 {
				return nil, fmt.Errorf("postings: corrupt bound min-len at container %d", i)
			}
			data = data[n:]
			bounds[i] = ChunkBound{MaxTF: uint32(maxTF), MinDocLen: int32(minLen)}
		}
		l.adoptBounds(bounds)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("postings: %d trailing bytes", len(data))
	}
	return l, nil
}

// DecodePostings reverses EncodePostings. It validates structure (count,
// strict docid ascent via positive gaps) and returns an error on
// truncated or corrupt input rather than panicking.
func DecodePostings(data []byte) ([]Posting, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("postings: corrupt count")
	}
	data = data[n:]
	if count > uint64(len(data))+1 {
		// Each posting needs ≥ 2 bytes except possibly degenerate TFs;
		// this cheap bound rejects absurd counts before allocating.
		if count > uint64(len(data))*2 {
			return nil, fmt.Errorf("postings: count %d exceeds payload", count)
		}
	}
	ps := make([]Posting, 0, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		gap, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("postings: truncated gap at %d", i)
		}
		data = data[n:]
		if gap == 0 {
			return nil, fmt.Errorf("postings: zero gap at %d", i)
		}
		var docID uint64
		if i == 0 {
			docID = gap - 1
		} else {
			docID = prev + gap
		}
		if docID > 1<<32-1 {
			return nil, fmt.Errorf("postings: docid overflow at %d", i)
		}
		tf, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("postings: truncated tf at %d", i)
		}
		data = data[n:]
		ps = append(ps, Posting{DocID: uint32(docID), TF: uint32(tf)})
		prev = docID
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("postings: %d trailing bytes", len(data))
	}
	return ps, nil
}
