package postings

import (
	"encoding/binary"
	"fmt"
)

// Compressed on-disk representation of posting lists: document IDs are
// delta-encoded (sorted, strictly ascending, so gaps are ≥ 1) and both
// gaps and term frequencies are written as unsigned varints — the
// standard compression scheme of text search systems, here used by the
// index's persistence layer. A typical synthetic-corpus list shrinks to
// roughly a third of its raw 8-bytes-per-posting footprint.

// EncodePostings serializes a sorted posting slice: a uvarint count,
// then per posting the docid gap (first posting stores docid+1) and the
// TF, both as uvarints.
func EncodePostings(ps []Posting) []byte {
	buf := make([]byte, 0, len(ps)*2+binary.MaxVarintLen64)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(uint64(len(ps)))
	prev := uint32(0)
	for i, p := range ps {
		if i == 0 {
			put(uint64(p.DocID) + 1)
		} else {
			put(uint64(p.DocID - prev))
		}
		put(uint64(p.TF))
		prev = p.DocID
	}
	return buf
}

// DecodePostings reverses EncodePostings. It validates structure (count,
// strict docid ascent via positive gaps) and returns an error on
// truncated or corrupt input rather than panicking.
func DecodePostings(data []byte) ([]Posting, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("postings: corrupt count")
	}
	data = data[n:]
	if count > uint64(len(data))+1 {
		// Each posting needs ≥ 2 bytes except possibly degenerate TFs;
		// this cheap bound rejects absurd counts before allocating.
		if count > uint64(len(data))*2 {
			return nil, fmt.Errorf("postings: count %d exceeds payload", count)
		}
	}
	ps := make([]Posting, 0, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		gap, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("postings: truncated gap at %d", i)
		}
		data = data[n:]
		if gap == 0 {
			return nil, fmt.Errorf("postings: zero gap at %d", i)
		}
		var docID uint64
		if i == 0 {
			docID = gap - 1
		} else {
			docID = prev + gap
		}
		if docID > 1<<32-1 {
			return nil, fmt.Errorf("postings: docid overflow at %d", i)
		}
		tf, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("postings: truncated tf at %d", i)
		}
		data = data[n:]
		ps = append(ps, Posting{DocID: uint32(docID), TF: uint32(tf)})
		prev = docID
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("postings: %d trailing bytes", len(data))
	}
	return ps, nil
}
