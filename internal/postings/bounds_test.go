package postings

import (
	"math/rand"
	"testing"
)

// fakeDocLen gives every doc a deterministic pseudo-length derived from
// its ID, so tests can recompute expected bounds independently.
func fakeDocLen(d uint32) int32 { return int32(7 + (d*2654435761)%500) }

// randomTFList builds a list with explicit TFs over random sorted IDs.
func randomTFList(rng *rand.Rand, n int, max uint32, segSize int) *List {
	ids := randomSortedIDs(rng, n, max)
	b := NewBuilder(segSize)
	for _, id := range ids {
		b.Add(id, uint32(1+rng.Intn(40)))
	}
	return b.Build()
}

func TestBuildBoundsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		// Mix sparse and dense containers: small max keeps everything in
		// one chunk, large max spreads across several; high n within one
		// chunk forces dense bitset storage.
		max := uint32(1+rng.Intn(4)) * chunkSpan
		n := 1 + rng.Intn(9000)
		l := randomTFList(rng, n, max, DefaultSegmentSize)
		l.BuildBounds(fakeDocLen)

		if !l.HasBounds() {
			t.Fatalf("trial %d: HasBounds false after BuildBounds", trial)
		}
		// Brute-force per-container expectation from the Postings dump.
		type agg struct {
			maxTF  uint32
			minLen int32
			seen   bool
		}
		want := map[uint32]*agg{}
		for _, p := range l.Postings() {
			base := p.DocID &^ uint32(chunkSpan-1)
			a := want[base]
			if a == nil {
				a = &agg{minLen: 1<<31 - 1}
				want[base] = a
			}
			a.seen = true
			if p.TF > a.maxTF {
				a.maxTF = p.TF
			}
			if dl := fakeDocLen(p.DocID); dl < a.minLen {
				a.minLen = dl
			}
		}
		if got := l.NumChunks(); got != len(want) {
			t.Fatalf("trial %d: %d chunks, want %d", trial, got, len(want))
		}
		var listMax uint32
		listMin := int32(1<<31 - 1)
		cur := NewBoundCursor(l, nil)
		for ci := 0; ci < l.NumChunks(); ci++ {
			base := cur.ContainerBase()
			cb, ok := cur.ContainerBound()
			if !ok {
				t.Fatalf("trial %d: no bound at container %d", trial, ci)
			}
			a := want[base]
			if a == nil {
				t.Fatalf("trial %d: unexpected container base %d", trial, base)
			}
			if cb != l.ChunkBoundAt(ci) {
				t.Fatalf("trial %d: cursor bound %v != ChunkBoundAt %v", trial, cb, l.ChunkBoundAt(ci))
			}
			if cb.MaxTF != a.maxTF || cb.MinDocLen != a.minLen {
				t.Fatalf("trial %d container %d: bound (%d,%d), want (%d,%d)",
					trial, ci, cb.MaxTF, cb.MinDocLen, a.maxTF, a.minLen)
			}
			if cb.MaxTF > listMax {
				listMax = cb.MaxTF
			}
			if cb.MinDocLen < listMin {
				listMin = cb.MinDocLen
			}
			if !cur.SkipContainer() {
				break
			}
		}
		if l.MaxTF() != listMax || l.MinDocLen() != listMin {
			t.Fatalf("trial %d: list ceilings (%d,%d), want (%d,%d)",
				trial, l.MaxTF(), l.MinDocLen(), listMax, listMin)
		}
	}
}

func TestBoundCursorWalkMatchesForEach(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	l := randomTFList(rng, 5000, 3*chunkSpan, 8)
	l.BuildBounds(fakeDocLen)
	var want []Posting
	l.ForEach(func(d, tf uint32) { want = append(want, Posting{DocID: d, TF: tf}) })
	c := NewBoundCursor(l, nil)
	for i := 0; !c.Exhausted(); i++ {
		if i >= len(want) {
			t.Fatalf("cursor yields more than %d postings", len(want))
		}
		if c.DocID() != want[i].DocID || c.TF() != want[i].TF {
			t.Fatalf("posting %d: cursor (%d,%d), want (%d,%d)", i, c.DocID(), c.TF(), want[i].DocID, want[i].TF)
		}
		c.Next()
	}
}

func TestBoundCursorNextAtLeastWithBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	l := randomTFList(rng, 4000, 4*chunkSpan, DefaultSegmentSize)
	l.BuildBounds(fakeDocLen)
	ids := l.DocIDs()
	for trial := 0; trial < 300; trial++ {
		target := uint32(rng.Int63n(int64(4*chunkSpan) + 10))
		c := NewBoundCursor(l, &Stats{})
		d, cb, ok := c.NextAtLeastWithBound(target)
		// Reference: first id ≥ target.
		var wantID uint32
		found := false
		for _, id := range ids {
			if id >= target {
				wantID = id
				found = true
				break
			}
		}
		if ok != found {
			t.Fatalf("target %d: ok=%v, want %v", target, ok, found)
		}
		if !found {
			continue
		}
		if d != wantID {
			t.Fatalf("target %d: landed %d, want %d", target, d, wantID)
		}
		wantBound := l.ChunkBoundAt(int(findChunkIndex(l, wantID)))
		if cb != wantBound {
			t.Fatalf("target %d: bound %v, want %v", target, cb, wantBound)
		}
	}
}

// findChunkIndex locates the chunk holding docID (test helper; the
// production path tracks it incrementally).
func findChunkIndex(l *List, docID uint32) int {
	base := docID &^ uint32(chunkSpan-1)
	for ci := range l.chunks {
		if l.chunks[ci].base == base {
			return ci
		}
	}
	return -1
}

func TestSkipContainerChargesSegmentsNotEntries(t *testing.T) {
	// One dense-ish container plus a second one.
	b := NewBuilder(4)
	for d := uint32(0); d < 1000; d++ {
		b.Add(d*3, 1+d%5)
	}
	b.Add(uint32(chunkSpan)+7, 9)
	l := b.Build()
	l.BuildBounds(fakeDocLen)
	var st Stats
	c := NewBoundCursor(l, &st)
	before := st
	if !c.SkipContainer() {
		t.Fatal("SkipContainer: list should have a second container")
	}
	if c.DocID() != uint32(chunkSpan)+7 {
		t.Fatalf("landed on %d, want %d", c.DocID(), chunkSpan+7)
	}
	if st.EntriesScanned != before.EntriesScanned {
		t.Fatalf("SkipContainer scanned %d entries; must scan none", st.EntriesScanned-before.EntriesScanned)
	}
	// 1000 postings were skipped from position 0 in segments of 4.
	if got := st.SegmentsSkipped - before.SegmentsSkipped; got != 250 {
		t.Fatalf("SegmentsSkipped += %d, want 250", got)
	}
	if !c.SkipContainer() && !c.Exhausted() {
		t.Fatal("second SkipContainer should exhaust the list")
	}
}

func TestEncodeDecodeBoundsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 20; trial++ {
		l := randomTFList(rng, 1+rng.Intn(6000), 3*chunkSpan, DefaultSegmentSize)
		l.BuildBounds(fakeDocLen)
		enc := EncodeList(l)
		got, err := DecodeList(enc, l.SegmentSize())
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !got.HasBounds() {
			t.Fatalf("trial %d: bounds lost in round trip", trial)
		}
		if got.NumChunks() != l.NumChunks() {
			t.Fatalf("trial %d: chunks %d != %d", trial, got.NumChunks(), l.NumChunks())
		}
		for ci := 0; ci < l.NumChunks(); ci++ {
			if got.ChunkBoundAt(ci) != l.ChunkBoundAt(ci) {
				t.Fatalf("trial %d container %d: %v != %v", trial, ci, got.ChunkBoundAt(ci), l.ChunkBoundAt(ci))
			}
		}
		if got.MaxTF() != l.MaxTF() || got.MinDocLen() != l.MinDocLen() {
			t.Fatalf("trial %d: list ceilings differ", trial)
		}
	}
}

func TestDecodeListWithoutBoundsStaysBoundless(t *testing.T) {
	l := FromDocIDs([]uint32{1, 5, 9}, 4)
	enc := EncodeList(l)
	got, err := DecodeList(enc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasBounds() {
		t.Fatal("bound-less encoding decoded with bounds")
	}
}

func TestDecodeListRejectsUnknownFlagBits(t *testing.T) {
	l := FromDocIDs([]uint32{1, 2, 3}, 4)
	enc := EncodeList(l)
	enc[0] |= 4 // a flag bit this build does not define
	if _, err := DecodeList(enc, 4); err == nil {
		t.Fatal("flag bit 4 accepted")
	}
}

func TestDecodeListRejectsTruncatedBounds(t *testing.T) {
	b := NewBuilder(4)
	b.Add(3, 2)
	b.Add(70000, 5)
	l := b.Build()
	l.BuildBounds(fakeDocLen)
	enc := EncodeList(l)
	for cut := 1; cut < 5; cut++ {
		if _, err := DecodeList(enc[:len(enc)-cut], 4); err == nil {
			t.Fatalf("truncation of %d bytes accepted", cut)
		}
	}
}

func TestBuildBoundsTFLessListUsesImplicitOne(t *testing.T) {
	l := FromDocIDs([]uint32{10, 20, 70000}, 4)
	l.BuildBounds(fakeDocLen)
	if l.MaxTF() != 1 {
		t.Fatalf("TF-less list MaxTF = %d, want 1", l.MaxTF())
	}
	want := fakeDocLen(10)
	if fakeDocLen(20) < want {
		want = fakeDocLen(20)
	}
	if l.ChunkBoundAt(0).MinDocLen != want {
		t.Fatalf("container 0 MinDocLen = %d, want %d", l.ChunkBoundAt(0).MinDocLen, want)
	}
}

// TestSkipNonSurvivorsMatchesReference drives the in-container tf skip
// against a reference walk over the Postings dump: from any position,
// SkipNonSurvivors must dismiss exactly the maximal run of same-container
// postings whose term frequency is outside the mask, land on the first
// survivor (or the next container's first posting), and charge each
// dismissed posting as one scanned entry — never a skipped segment.
func TestSkipNonSurvivorsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		max := uint32(1+rng.Intn(3)) * chunkSpan
		n := 1 + rng.Intn(9000)
		var l *List
		if trial%5 == 4 {
			// All-ones TFs collapse to the implicit-1 representation: a
			// mask without bit 1 must dismiss whole container runs in O(1).
			ids := randomSortedIDs(rng, n, max)
			b := NewBuilder(DefaultSegmentSize)
			for _, id := range ids {
				b.Add(id, 1)
			}
			l = b.Build()
		} else {
			l = randomTFList(rng, n, max, DefaultSegmentSize)
		}
		var ps []Posting
		l.ForEach(func(d, tf uint32) { ps = append(ps, Posting{DocID: d, TF: tf}) })
		var m TFMask
		for tf := uint32(0); tf <= 41; tf++ {
			if rng.Intn(4) == 0 {
				m.Set(tf)
			}
		}
		var st Stats
		c := NewBoundCursor(l, &st)
		i := 0
		for !c.Exhausted() {
			if c.DocID() != ps[i].DocID || c.TF() != ps[i].TF {
				t.Fatalf("trial %d pos %d: cursor (%d,%d), want (%d,%d)",
					trial, i, c.DocID(), c.TF(), ps[i].DocID, ps[i].TF)
			}
			before := st.EntriesScanned
			skipped := c.SkipNonSurvivors(&m)
			base := ps[i].DocID &^ uint32(chunkSpan-1)
			j := i
			for j < len(ps) && ps[j].DocID&^uint32(chunkSpan-1) == base && !m.has(ps[j].TF) {
				j++
			}
			if skipped != j-i {
				t.Fatalf("trial %d pos %d: skipped %d postings, want %d", trial, i, skipped, j-i)
			}
			if st.EntriesScanned-before != int64(skipped) {
				t.Fatalf("trial %d pos %d: charged %d entries for %d dismissals",
					trial, i, st.EntriesScanned-before, skipped)
			}
			i = j
			if i == len(ps) {
				if !c.Exhausted() {
					t.Fatalf("trial %d: cursor not exhausted after final skip", trial)
				}
				break
			}
			if c.Exhausted() || c.DocID() != ps[i].DocID || c.TF() != ps[i].TF {
				t.Fatalf("trial %d pos %d: landed on (%d,%d), want (%d,%d)",
					trial, i, c.DocID(), c.TF(), ps[i].DocID, ps[i].TF)
			}
			// Step over the landing posting with a plain Next so the walk
			// repositions from every cursor state, dense and sparse alike.
			c.Next()
			i++
		}
		if i != len(ps) {
			t.Fatalf("trial %d: walk covered %d of %d postings", trial, i, len(ps))
		}
		if st.SegmentsSkipped != 0 {
			t.Fatalf("trial %d: tf dismissals charged %d skipped segments", trial, st.SegmentsSkipped)
		}
	}
}

// TestTFMaskRange pins the conservative edges: frequencies at or above
// 256 are always survivors, Set outside the range is a no-op, and Clear
// empties everything below it.
func TestTFMaskRange(t *testing.T) {
	var m TFMask
	if m.has(0) || m.has(255) {
		t.Fatal("empty mask reports survivors below 256")
	}
	if !m.has(256) || !m.has(1 << 20) {
		t.Fatal("tf ≥ 256 must always survive")
	}
	m.Set(0)
	m.Set(255)
	m.Set(300) // ignored, already implicit
	if !m.has(0) || !m.has(255) {
		t.Fatal("Set bits not visible")
	}
	m.Clear()
	if m.has(0) || m.has(255) {
		t.Fatal("Clear left bits set")
	}
}
