package postings

import "math/bits"

// Per-container score-bound metadata for block-max dynamic pruning. Each
// 2^16-docID chunk of a keyword list records the largest term frequency
// and the smallest document length among its postings; every built-in
// ranking formula is monotone nondecreasing in tf and nonincreasing in
// len(d), so (MaxTF, MinDocLen) suffice to compute a score upper bound
// for every document the container can contain. The list-level ceiling
// (max over chunks / min over chunks) orders lists for MaxScore-style
// essential/non-essential splits.
//
// Bounds are built at index time (Builder.Build calls BuildBounds with
// the field's document lengths) and persisted by the format-v3 codec;
// older snapshots rebuild them on load. A list without bounds simply
// disables pruning for queries touching it — correctness never depends
// on the metadata being present.

// ContainerSpan is the docID width of one adaptive container (2^16): the
// granularity at which bound metadata is kept and at which the pruned
// scoring loop can skip work wholesale.
const ContainerSpan = chunkSpan

// ChunkBound is the score-bound metadata of one container: the largest
// term frequency and the smallest document length among its postings.
type ChunkBound struct {
	MaxTF     uint32
	MinDocLen int32
}

// BuildBounds computes per-container (and list-level) score-bound
// metadata, looking document lengths up through docLen. It must be called
// before the list is shared across goroutines (index build or load time);
// the query path only reads the result. Calling it again recomputes the
// metadata.
func (l *List) BuildBounds(docLen func(docID uint32) int32) {
	bounds := make([]ChunkBound, len(l.chunks))
	for ci := range l.chunks {
		b := ChunkBound{MinDocLen: int32(^uint32(0) >> 1)}
		n := 0
		visitChunk(l, ci, func(docID, tf uint32) {
			if tf > b.MaxTF {
				b.MaxTF = tf
			}
			if dl := docLen(docID); dl < b.MinDocLen {
				b.MinDocLen = dl
			}
			n++
		})
		if n != int(l.chunks[ci].n) {
			panic("postings: BuildBounds chunk walk out of sync")
		}
		bounds[ci] = b
	}
	l.adoptBounds(bounds)
}

// visitChunk calls fn for every (docID, tf) of chunk ci in ascending
// docID order.
func visitChunk(l *List, ci int, fn func(docID, tf uint32)) {
	base := l.chunks[ci].base
	keys, bs, tfs := l.payload(ci)
	if bs != nil {
		r := 0
		for w := 0; w < chunkWords; w++ {
			x := bs[w]
			for x != 0 {
				fn(base|uint32(w<<6|bits.TrailingZeros64(x)), tfOf(tfs, r))
				x &= x - 1
				r++
			}
		}
		return
	}
	for r, key := range keys {
		fn(base|uint32(key), tfOf(tfs, r))
	}
}

// adoptBounds installs a per-chunk bound slice (len must equal the chunk
// count) and derives the list-level ceilings.
func (l *List) adoptBounds(bounds []ChunkBound) {
	l.bounds = bounds
	l.maxTF = 0
	l.minLen = 0
	first := true
	for _, b := range bounds {
		if b.MaxTF > l.maxTF {
			l.maxTF = b.MaxTF
		}
		if first || b.MinDocLen < l.minLen {
			l.minLen = b.MinDocLen
		}
		first = false
	}
}

// HasBounds reports whether the list carries score-bound metadata.
func (l *List) HasBounds() bool { return l.bounds != nil }

// MaxTF returns the list-level term-frequency ceiling (0 when the list
// has no bounds or no postings).
func (l *List) MaxTF() uint32 { return l.maxTF }

// MinDocLen returns the list-level document-length floor (0 when the
// list has no bounds or no postings).
func (l *List) MinDocLen() int32 { return l.minLen }

// ChunkBoundAt returns the bound metadata of chunk ci; for in-package
// and index-layer inspection (liststats, tests).
func (l *List) ChunkBoundAt(ci int) ChunkBound { return l.bounds[ci] }

// NumChunks returns the number of populated containers.
func (l *List) NumChunks() int { return len(l.chunks) }

// BoundCursor is the pruning-aware cursor over a list with (optional)
// score-bound metadata. It is the exported face of the internal cursor:
// the same M0 cost accounting (Seeks, SegmentsSkipped, EntriesScanned),
// plus access to the current container's bound and the ability to skip
// the rest of a container wholesale when its bound proves no document in
// it can rank.
type BoundCursor struct {
	c cursor
}

// NewBoundCursor positions a cursor on the first posting of l. st may be
// nil (no cost accounting).
func NewBoundCursor(l *List, st *Stats) *BoundCursor {
	b := &BoundCursor{}
	b.c.l = l
	b.c.st = st
	b.c.enterChunk(0)
	return b
}

// Exhausted reports whether the cursor has run off the end of the list.
func (b *BoundCursor) Exhausted() bool { return b.c.exhausted() }

// DocID returns the current posting's document ID (undefined when
// exhausted).
func (b *BoundCursor) DocID() uint32 { return b.c.docID() }

// TF returns the current posting's term frequency.
func (b *BoundCursor) TF() uint32 { return b.c.tf() }

// Next advances by one posting, charging one scanned entry.
func (b *BoundCursor) Next() { b.c.next() }

// NextAtLeast advances to the first posting with DocID ≥ target and
// reports whether one exists, with the M0 model's seek charge.
func (b *BoundCursor) NextAtLeast(target uint32) bool { return b.c.seek(target) }

// ContainerBase returns the first docID of the current container's range
// (undefined when exhausted).
func (b *BoundCursor) ContainerBase() uint32 { return b.c.l.chunks[b.c.ci].base }

// ContainerEnd returns one past the last docID of the current
// container's range.
func (b *BoundCursor) ContainerEnd() uint32 { return b.ContainerBase() + ContainerSpan }

// ContainerBound returns the current container's score-bound metadata.
// ok is false when the cursor is exhausted or the list carries no bounds.
func (b *BoundCursor) ContainerBound() (bound ChunkBound, ok bool) {
	if b.c.exhausted() || b.c.l.bounds == nil {
		return ChunkBound{}, false
	}
	return b.c.l.bounds[b.c.ci], true
}

// NextAtLeastWithBound advances to the first posting with DocID ≥ target
// and returns it together with its container's bound metadata, so a
// pruned scoring loop can decide in one call whether the landing
// container is worth scanning. ok is false when the list is exhausted;
// bound is the zero value when the list carries no metadata.
func (b *BoundCursor) NextAtLeastWithBound(target uint32) (docID uint32, bound ChunkBound, ok bool) {
	if !b.c.seek(target) {
		return 0, ChunkBound{}, false
	}
	docID = b.c.docID()
	if b.c.exhausted() {
		// docID resolution ran off a quarantined tail.
		return 0, ChunkBound{}, false
	}
	bound, _ = b.ContainerBound()
	return docID, bound, true
}

// TFMask is a survivor set over term frequencies 0..255 for
// SkipNonSurvivors: bit tf set means a posting with that term frequency
// might still beat the caller's score threshold. Frequencies ≥ 256 are
// always treated as survivors, so a mask only ever errs on the side of
// not skipping.
type TFMask struct {
	bits [4]uint64
}

// Set marks tf as a survivor (tf ≥ 256 is implicit and ignored).
func (m *TFMask) Set(tf uint32) {
	if tf < 256 {
		m.bits[tf>>6] |= 1 << (tf & 63)
	}
}

// Clear empties the mask.
func (m *TFMask) Clear() { m.bits = [4]uint64{} }

func (m *TFMask) has(tf uint32) bool {
	return tf >= 256 || m.bits[tf>>6]&(1<<(tf&63)) != 0
}

// SkipNonSurvivors advances the cursor past the run of consecutive
// postings, starting at the current one, whose term frequencies are not
// in the survivor mask. It stops on the first survivor or, when the run
// reaches the end of the current container, on the first posting of the
// next one, and returns the number of postings skipped. This is the
// block-internal counterpart of SkipContainer: the per-posting work is
// one tf-array read instead of a full cursor step, so a pruned scoring
// loop can dismiss the bulk of a surviving container at memory-scan
// speed. Dismissed postings charge scanned entries — their term
// frequencies were examined — never skipped segments. A list without a
// tf array has implicit tf 1 everywhere: the whole container run is
// dismissed in O(1) when the mask excludes 1.
func (b *BoundCursor) SkipNonSurvivors(m *TFMask) int {
	c := &b.c
	if c.exhausted() {
		return 0
	}
	l := c.l
	end := l.offsets[c.ci+1]
	if !l.blockHasTFs(c.ci) {
		// TF = 1 for the whole block — the list drops TF storage, or this
		// mapped block elided an all-ones TF column. Either the mask keeps
		// 1 (nothing to skip) or the entire remaining run is dismissed in
		// O(1), without materializing a mapped block.
		if m.has(1) {
			return 0
		}
		n := end - c.gpos
		c.st.addEntries(int64(n))
		c.enterChunk(c.ci + 1)
		return n
	}
	if c.pending {
		c.resolve()
	}
	off := l.offsets[c.ci]
	g := c.gpos
	for g < end && !m.has(c.tfs[g-off]) {
		g++
	}
	n := g - c.gpos
	if n == 0 {
		return 0
	}
	c.st.addEntries(int64(n))
	if g == end {
		c.enterChunk(c.ci + 1)
		return n
	}
	base := l.chunks[c.ci].base
	if c.bits != nil {
		c.bit = bitsSelectFrom(c.bits, c.bit, n)
		c.rank += n
		c.cur = base | uint32(c.bit)
	} else {
		c.ki += n
		c.cur = base | uint32(c.keys[c.ki])
	}
	c.gpos = g
	return n
}

// ContainerResident reports whether the current container's payload is
// resident in memory: always for a heap list, only after
// materialization for a mapped block. The pruned path reads it before
// SkipContainer to count containers dismissed without ever decoding
// their on-disk blocks.
func (b *BoundCursor) ContainerResident() bool {
	if b.c.exhausted() {
		return true
	}
	return b.c.l.residentAt(b.c.ci)
}

// SkipContainer jumps over the remainder of the current container —
// every unread posting in it — and lands on the first posting of the
// next one, reporting whether the list still has postings. The skipped
// postings charge SegmentsSkipped in M0-model segments (never scanned
// entries): the §3.2.1 accounting for work a skip structure avoided.
func (b *BoundCursor) SkipContainer() bool {
	if b.c.exhausted() {
		return false
	}
	remaining := b.c.l.offsets[b.c.ci+1] - b.c.gpos
	if remaining > 0 {
		seg := b.c.l.segSize
		b.c.st.addSkipped(int64((remaining + seg - 1) / seg))
	}
	b.c.enterChunk(b.c.ci + 1)
	return !b.c.exhausted()
}
