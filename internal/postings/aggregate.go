package postings

// This file implements the aggregation operators (γ in the paper's Figure 3
// plan) that compute collection-specific statistics from a materialized
// context. Each aggregation performs a full scan of its input, so its cost
// is the context cardinality — the bottleneck the materialized-view
// technique removes.

// Count implements γ_count over an intersection result: the context
// cardinality |D_P|.
func Count(r *Intersection, st *Stats) int64 {
	st.addAggregated(int64(r.Len()))
	return int64(r.Len())
}

// SumOver implements γ_sum over an intersection result, summing
// param(docID) for every matching document — e.g. document length, giving
// the context length len(D_P).
func SumOver(r *Intersection, param func(docID uint32) int64, st *Stats) int64 {
	var sum int64
	for _, id := range r.DocIDs {
		sum += param(id)
	}
	st.addAggregated(int64(r.Len()))
	return sum
}

// SumList sums param over every document of a single list (the degenerate
// one-predicate context).
func SumList(l *List, param func(docID uint32) int64, st *Stats) int64 {
	var sum int64
	for _, p := range l.postings {
		sum += param(p.DocID)
	}
	st.addAggregated(int64(l.Len()))
	return sum
}
