package postings

import "context"

// This file implements the aggregation operators (γ in the paper's Figure 3
// plan) that compute collection-specific statistics from a context. The
// slice-scanning forms (Count, SumOver) work over a materialized
// intersection; the fused kernels (CountSum, CountTFSum) push the
// aggregation into the conjunction itself so the context is never
// materialized — the count-only path of the adaptive-container layer.
// Both fused kernels have *Ctx variants with cooperative cancellation;
// all accumulators are 64-bit, so TF totals cannot overflow even when
// every posting carries the maximum uint32 term frequency.

// Count implements γ_count over an intersection result: the context
// cardinality |D_P|.
func Count(r *Intersection, st *Stats) int64 {
	st.addAggregated(int64(r.Len()))
	return int64(r.Len())
}

// SumOver implements γ_sum over an intersection result, summing
// param(docID) for every matching document — e.g. document length, giving
// the context length len(D_P).
func SumOver(r *Intersection, param func(docID uint32) int64, st *Stats) int64 {
	var sum int64
	for _, id := range r.DocIDs {
		sum += param(id)
	}
	st.addAggregated(int64(r.Len()))
	return sum
}

// SumList sums param over every document of a single list (the degenerate
// one-predicate context).
func SumList(l *List, param func(docID uint32) int64, st *Stats) int64 {
	var sum int64
	l.ForEach(func(id, _ uint32) {
		sum += param(id)
	})
	st.addAggregated(int64(l.Len()))
	return sum
}

// CountSum fuses the context phase of the straightforward plan: γ_count
// and γ_sum over ∩ lists in one pass of the count-only conjunction kernel,
// returning |D_P| and Σ param(d) without materializing the intersection.
// The Stats charges mirror the materializing pipeline it replaces: one
// Intersections tick for a real conjunction and 2·count AggregatedEntries
// for the two aggregations.
func CountSum(lists []*List, param func(docID uint32) int64, st *Stats) (count, sum int64) {
	count, sum, _ = CountSumCtx(context.Background(), lists, param, st)
	return count, sum
}

// CountSumCtx is CountSum with cooperative cancellation at chunk-range
// granularity. On cancellation the partial aggregates are returned with
// ctx's error; callers must not treat them as exact.
func CountSumCtx(ctx context.Context, lists []*List, param func(docID uint32) int64, st *Stats) (count, sum int64, err error) {
	if len(lists) == 0 {
		return 0, 0, nil
	}
	for _, l := range lists {
		if l == nil || l.Len() == 0 {
			return 0, 0, nil
		}
	}
	if len(lists) == 1 {
		l := lists[0]
		l.ForEach(func(d, _ uint32) {
			sum += param(d)
		})
		count = int64(l.Len())
		st.addEntries(count)
		st.addAggregated(2 * count)
		return count, sum, nil
	}
	st.addIntersection()
	cc := newCanceler(ctx)
	count = visitConjunction(lists, st, cc, func(d uint32) {
		sum += param(d)
	})
	st.addAggregated(2 * count)
	return count, sum, cc.cause()
}

// CountTFSum computes df(w, D_P) and tc(w, D_P): the cardinality of
// l ∩ (∩ preds) and the sum of l's term frequencies over it, without
// materializing DocID or TF slices. It runs the same cursor-driven
// document-at-a-time conjunction as Intersect (so the seek/skip/entry
// charges are identical), reading l's TF at each match. df and tc
// accumulate in int64, so even pathological TF totals (every posting at
// MaxUint32) cannot overflow.
func CountTFSum(l *List, preds []*List, st *Stats) (df, tc int64) {
	df, tc, _ = CountTFSumCtx(context.Background(), l, preds, st)
	return df, tc
}

// CountTFSumCtx is CountTFSum with cooperative cancellation every
// checkStride conjunction steps. On cancellation the partial aggregates
// are returned with ctx's error; callers must not treat them as exact.
func CountTFSumCtx(ctx context.Context, l *List, preds []*List, st *Stats) (df, tc int64, err error) {
	if l == nil || l.Len() == 0 {
		return 0, 0, nil
	}
	for _, c := range preds {
		if c == nil || c.Len() == 0 {
			return 0, 0, nil
		}
	}
	if len(preds) == 0 {
		// Degenerate empty context: every document of l matches.
		df = int64(l.Len())
		st.addEntries(df)
		st.addAggregated(df)
		return df, l.SumTF(), nil
	}
	st.addIntersection()
	cc := newCanceler(ctx)
	lists := make([]*List, 0, len(preds)+1)
	lists = append(lists, l)
	lists = append(lists, preds...)
	conjoin(lists, st, cc, func(_ uint32, cursors []*cursor) {
		df++
		tc += int64(cursors[0].tf())
	})
	st.addAggregated(df)
	return df, tc, cc.cause()
}
