package postings

import (
	"math"
	"math/rand"
	"testing"
)

// rebuild returns the same posting data laid out with a forced container
// policy: threshold 1 makes every non-empty chunk a bitset, a huge
// threshold keeps every chunk a sorted array, and DenseThreshold is the
// adaptive production choice.
func rebuild(l *List, threshold int) *List {
	ids := make([]uint32, 0, l.Len())
	tfs := make([]uint32, 0, l.Len())
	l.ForEach(func(docID, tf uint32) {
		ids = append(ids, docID)
		tfs = append(tfs, tf)
	})
	return newListRaw(ids, tfs, l.SegmentSize(), threshold)
}

const allSparse = math.MaxInt32 // threshold no real chunk reaches

// representations returns the three container layouts of the same list.
func representations(l *List) map[string]*List {
	return map[string]*List{
		"adaptive": l,
		"sparse":   rebuild(l, allSparse),
		"dense":    rebuild(l, 1),
	}
}

// shapes builds a mix of list shapes around the container machinery's
// edges: empty, single element, chunk-boundary stragglers, dense runs,
// uniform sparse, and the top of the docID space.
func shapes(rng *rand.Rand) map[string]*List {
	strided := func(start, stride, n uint32) []uint32 {
		ids := make([]uint32, n)
		for i := range ids {
			ids[i] = start + uint32(i)*stride
		}
		return ids
	}
	withTFs := func(ids []uint32) *List {
		tfs := make([]uint32, len(ids))
		for i := range tfs {
			tfs[i] = uint32(rng.Intn(7) + 1)
		}
		return newListRaw(append([]uint32(nil), ids...), tfs, 4, DenseThreshold)
	}
	return map[string]*List{
		"empty":       FromDocIDs(nil, 4),
		"single":      FromDocIDs([]uint32{chunkSpan}, 4),
		"boundary":    FromDocIDs([]uint32{0, chunkSpan - 1, chunkSpan, 2*chunkSpan - 1, 2 * chunkSpan}, 4),
		"top":         FromDocIDs([]uint32{math.MaxUint32 - 1, math.MaxUint32}, 4),
		"denseRun":    FromDocIDs(strided(100, 3, 3*DenseThreshold), 128),
		"denseTF":     withTFs(strided(chunkSpan/2, 2, 2*DenseThreshold)),
		"sparseWide":  FromDocIDs(randomSortedIDs(rng, 300, 10*chunkSpan), 16),
		"sparseTF":    withTFs(randomSortedIDs(rng, 500, 6*chunkSpan)),
		"mixedChunks": FromDocIDs(append(strided(0, 2, DenseThreshold+500), randomSortedIDs(rng, 80, 4*chunkSpan)[40:]...), 64),
	}
}

// TestContainerAccessEquivalence checks that every point and streaming
// accessor is independent of the container layout.
func TestContainerAccessEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for name, l := range shapes(rng) {
		want := l.Postings()
		reps := representations(l)
		for repName, r := range reps {
			if r.Len() != l.Len() {
				t.Fatalf("%s/%s: Len=%d want %d", name, repName, r.Len(), l.Len())
			}
			got := r.Postings()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s/%s: Postings[%d]=%v want %v", name, repName, i, got[i], want[i])
				}
				if p := r.At(i); p != want[i] {
					t.Fatalf("%s/%s: At(%d)=%v want %v", name, repName, i, p, want[i])
				}
			}
			if r.SumTF() != l.SumTF() {
				t.Fatalf("%s/%s: SumTF=%d want %d", name, repName, r.SumTF(), l.SumTF())
			}
			if l.Len() > 0 && r.MaxDocID() != l.MaxDocID() {
				t.Fatalf("%s/%s: MaxDocID=%d want %d", name, repName, r.MaxDocID(), l.MaxDocID())
			}
			if r.Segments() != l.Segments() {
				t.Fatalf("%s/%s: Segments=%d want %d", name, repName, r.Segments(), l.Segments())
			}
			// Probe members, near-misses, and chunk boundaries.
			probes := []uint32{0, chunkSpan - 1, chunkSpan, math.MaxUint32}
			for _, p := range want {
				probes = append(probes, p.DocID)
				if p.DocID > 0 {
					probes = append(probes, p.DocID-1)
				}
				if p.DocID < math.MaxUint32 {
					probes = append(probes, p.DocID+1)
				}
			}
			for _, d := range probes {
				if r.Contains(d) != l.Contains(d) {
					t.Fatalf("%s/%s: Contains(%d)=%v want %v", name, repName, d, r.Contains(d), l.Contains(d))
				}
				if r.TF(d) != l.TF(d) {
					t.Fatalf("%s/%s: TF(%d)=%d want %d", name, repName, d, r.TF(d), l.TF(d))
				}
			}
		}
	}
}

// TestContainerSetOpEquivalence intersects and unions every pair of
// shapes under all 3×3 layout combinations and checks the results (and
// count-only sizes) against the brute-force set operations.
func TestContainerSetOpEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	all := shapes(rng)
	for aName, a := range all {
		for bName, b := range all {
			wantIDs := setIntersect([][]uint32{a.DocIDs(), b.DocIDs()})
			for aRep, ra := range representations(a) {
				for bRep, rb := range representations(b) {
					label := aName + "(" + aRep + ")∩" + bName + "(" + bRep + ")"
					res := Intersect([]*List{ra, rb}, nil)
					if !equalIDs(res.DocIDs, wantIDs) {
						t.Fatalf("%s: got %d docs, want %d", label, len(res.DocIDs), len(wantIDs))
					}
					for i, d := range res.DocIDs {
						if res.TFs[0][i] != a.TF(d) || res.TFs[1][i] != b.TF(d) {
							t.Fatalf("%s: TFs at doc %d = (%d,%d), want (%d,%d)",
								label, d, res.TFs[0][i], res.TFs[1][i], a.TF(d), b.TF(d))
						}
					}
					if n := IntersectionSize([]*List{ra, rb}, nil); n != int64(len(wantIDs)) {
						t.Fatalf("%s: IntersectionSize=%d want %d", label, n, len(wantIDs))
					}
					u := Union([]*List{ra, rb}, nil)
					checkUnion(t, label, u, a, b)
				}
			}
		}
	}
}

func checkUnion(t *testing.T, label string, u *List, a, b *List) {
	t.Helper()
	want := make(map[uint32]uint32)
	for _, l := range []*List{a, b} {
		l.ForEach(func(docID, tf uint32) { want[docID] += tf })
	}
	if u.Len() != len(want) {
		t.Fatalf("%s: Union Len=%d want %d", label, u.Len(), len(want))
	}
	prev := int64(-1)
	u.ForEach(func(docID, tf uint32) {
		if int64(docID) <= prev {
			t.Fatalf("%s: Union out of order at %d", label, docID)
		}
		prev = int64(docID)
		if tf != want[docID] {
			t.Fatalf("%s: Union TF(%d)=%d want %d", label, docID, tf, want[docID])
		}
	})
}

// TestContainerAggregateEquivalence checks the count-only kernels
// (CountSum, CountTFSum) across layouts against brute force.
func TestContainerAggregateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	param := func(d uint32) int64 { return int64(d%13) + 1 }
	kw := newListRaw(randomSortedIDs(rng, 2000, 3*chunkSpan), nil, 32, DenseThreshold)
	{
		tfs := make([]uint32, kw.Len())
		for i := range tfs {
			tfs[i] = uint32(rng.Intn(5) + 1)
		}
		kw = newListRaw(kw.DocIDs(), tfs, 32, DenseThreshold)
	}
	ctxA := FromDocIDs(randomSortedIDs(rng, DenseThreshold*2, 3*chunkSpan), 32)
	ctxB := FromDocIDs(randomSortedIDs(rng, 900, 3*chunkSpan), 32)

	wantIDs := setIntersect([][]uint32{ctxA.DocIDs(), ctxB.DocIDs()})
	var wantSum int64
	for _, d := range wantIDs {
		wantSum += param(d)
	}
	kwInCtx := setIntersect([][]uint32{kw.DocIDs(), ctxA.DocIDs(), ctxB.DocIDs()})
	var wantTC int64
	for _, d := range kwInCtx {
		wantTC += int64(kw.TF(d))
	}

	for aRep, ra := range representations(ctxA) {
		for bRep, rb := range representations(ctxB) {
			for kRep, rk := range representations(kw) {
				label := aRep + "/" + bRep + "/" + kRep
				count, sum := CountSum([]*List{ra, rb}, param, nil)
				if count != int64(len(wantIDs)) || sum != wantSum {
					t.Fatalf("%s: CountSum=(%d,%d) want (%d,%d)", label, count, sum, len(wantIDs), wantSum)
				}
				df, tc := CountTFSum(rk, []*List{ra, rb}, nil)
				if df != int64(len(kwInCtx)) || tc != wantTC {
					t.Fatalf("%s: CountTFSum=(%d,%d) want (%d,%d)", label, df, tc, len(kwInCtx), wantTC)
				}
			}
		}
	}
}

// TestContainerStatParity pins the skip-model bookkeeping to the layout:
// the cursor paths (Intersect over TF-carrying lists, CountTFSum,
// MergeIntersect) must charge the same EntriesScanned/SegmentsSkipped/
// Seeks regardless of whether a chunk is an array or a bitset, because
// the cost model counts logical entries, not physical words. (TF-less
// intersections ride the count-only kernel, whose charges are
// entry-equivalents and layout-dependent by design.)
func TestContainerStatParity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	withTFs := func(ids []uint32) *List {
		tfs := make([]uint32, len(ids))
		for i := range tfs {
			tfs[i] = uint32(rng.Intn(4) + 2) // ≥ 2 so the TF array is kept
		}
		return newListRaw(ids, tfs, 128, DenseThreshold)
	}
	a := withTFs(randomSortedIDs(rng, 6000, 2*chunkSpan))
	b := withTFs(randomSortedIDs(rng, 400, 2*chunkSpan))
	layouts := []int{allSparse, 1, DenseThreshold}
	var want *Stats
	for _, th := range layouts {
		ra, rb := rebuild(a, th), rebuild(b, th)
		st := &Stats{}
		Intersect([]*List{ra, rb}, st)
		CountTFSum(rb, []*List{ra}, st)
		MergeIntersect(ra, rb, st)
		st.BitmapWords = 0 // physical-representation counter, layout-dependent by design
		if want == nil {
			w := *st
			want = &w
			continue
		}
		if *st != *want {
			t.Fatalf("threshold %d: stats %+v differ from %+v", th, *st, *want)
		}
	}
}

// TestEncodeDecodeListRoundTrip checks the format-v2 list codec over
// both container kinds, with and without TF payloads.
func TestEncodeDecodeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for name, l := range shapes(rng) {
		data := EncodeList(l)
		got, err := DecodeList(data, l.SegmentSize())
		if err != nil {
			t.Fatalf("%s: DecodeList: %v", name, err)
		}
		if got.Len() != l.Len() || got.HasTFs() != l.HasTFs() {
			t.Fatalf("%s: round trip Len=%d HasTFs=%v, want %d/%v",
				name, got.Len(), got.HasTFs(), l.Len(), l.HasTFs())
		}
		want := l.Postings()
		for i, p := range got.Postings() {
			if p != want[i] {
				t.Fatalf("%s: round trip posting %d = %v, want %v", name, i, p, want[i])
			}
		}
		sp, dn := l.Containers()
		gsp, gdn := got.Containers()
		if sp != gsp || dn != gdn {
			t.Fatalf("%s: containers (%d,%d) → (%d,%d) after round trip", name, sp, dn, gsp, gdn)
		}
	}
}

// TestDecodeListRejectsCorruptInput exercises the codec's error paths.
func TestDecodeListRejectsCorruptInput(t *testing.T) {
	valid := EncodeList(FromDocIDs([]uint32{1, 5, 9}, 4))
	cases := map[string][]byte{
		"empty":         {},
		"badFlags":      {0xFE, 0},
		"truncated":     valid[:len(valid)-1],
		"trailing":      append(append([]byte(nil), valid...), 0x01),
		"zeroGap":       {0x00, 0x02, 0x05, 0x00},
		"countOverrun":  {0x00, 0xFF, 0xFF, 0x01},
		"docIDOverflow": {0x00, 0x02, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 0x02},
	}
	for name, data := range cases {
		if _, err := DecodeList(data, 4); err == nil {
			t.Errorf("%s: DecodeList accepted corrupt input", name)
		}
	}
}

// TestGallopSearch16 pins the galloping primitive against the linear
// scan it replaces.
func TestGallopSearch16(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint16, 0, 200)
	seen := map[uint16]bool{}
	for len(keys) < 200 {
		k := uint16(rng.Intn(1 << 16))
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sortU16(keys)
	for trial := 0; trial < 2000; trial++ {
		from := rng.Intn(len(keys) + 1)
		target := uint16(rng.Intn(1 << 16))
		got := gallopSearch16(keys, from, target)
		want := from
		for want < len(keys) && keys[want] < target {
			want++
		}
		if got != want {
			t.Fatalf("gallopSearch16(from=%d, target=%d)=%d want %d", from, target, got, want)
		}
	}
}

func sortU16(s []uint16) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
