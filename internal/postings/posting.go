// Package postings implements the inverted-list substrate of the system:
// postings sorted by document ID, segmented lists with skip pointers, merge
// intersection, and the aggregation operators (γ_count, γ_sum) that
// context-sensitive ranking layers on top.
//
// The implementation mirrors the cost model of §3.2.1 of the paper: lists
// are partitioned into segments of M0 entries; an intersection touches a
// segment only when its docid range overlaps the other list's current
// position, so cost(L_i ∩ L_j) = M0·(N_i^o + N_j^o) ≤ |L_i| + |L_j|.
// Every operation reports its cost through a Stats accumulator so the
// analytical claims of the paper (Proposition 3.1, Theorem 4.2) are
// observable in tests and benchmarks.
package postings

import "sort"

// DefaultSegmentSize is the default number of postings per skip segment
// (M0 in the paper's cost model). 128 matches common practice in text
// search systems (e.g. Lucene's skip interval).
const DefaultSegmentSize = 128

// Posting is one entry of an inverted list: a document ID and the term's
// occurrence count in that document.
type Posting struct {
	DocID uint32
	TF    uint32
}

// List is an immutable inverted list: postings sorted by ascending DocID,
// partitioned into segments of segSize entries with a skip table recording
// each segment's maximum DocID. Build lists with NewList or a Builder.
type List struct {
	postings []Posting
	// skips[i] is the largest DocID in segment i, i.e. in
	// postings[i*segSize : min((i+1)*segSize, len)].
	skips   []uint32
	segSize int
}

// NewList constructs a list from postings that must already be sorted by
// strictly ascending DocID. segSize ≤ 0 selects DefaultSegmentSize.
// NewList panics if the postings are not strictly ascending, because a
// mis-sorted list corrupts every downstream intersection silently.
func NewList(ps []Posting, segSize int) *List {
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].DocID <= ps[i-1].DocID {
			panic("postings: NewList requires strictly ascending DocIDs")
		}
	}
	l := &List{postings: ps, segSize: segSize}
	l.buildSkips()
	return l
}

// FromDocIDs builds a list with TF = 1 for every document, the shape of a
// predicate-field list (e.g. a MeSH term's list, where a document either
// carries the annotation or does not).
func FromDocIDs(ids []uint32, segSize int) *List {
	ps := make([]Posting, len(ids))
	for i, id := range ids {
		ps[i] = Posting{DocID: id, TF: 1}
	}
	return NewList(ps, segSize)
}

func (l *List) buildSkips() {
	n := len(l.postings)
	if n == 0 {
		l.skips = nil
		return
	}
	nseg := (n + l.segSize - 1) / l.segSize
	l.skips = make([]uint32, nseg)
	for s := 0; s < nseg; s++ {
		end := (s+1)*l.segSize - 1
		if end >= n {
			end = n - 1
		}
		l.skips[s] = l.postings[end].DocID
	}
}

// Len returns the number of postings in the list (|L| in the paper).
func (l *List) Len() int { return len(l.postings) }

// SegmentSize returns the list's segment size (M0).
func (l *List) SegmentSize() int { return l.segSize }

// Segments returns the number of skip segments.
func (l *List) Segments() int { return len(l.skips) }

// At returns the i-th posting.
func (l *List) At(i int) Posting { return l.postings[i] }

// Postings exposes the underlying slice. Callers must not modify it.
func (l *List) Postings() []Posting { return l.postings }

// DocIDs returns a newly allocated slice of the list's document IDs.
func (l *List) DocIDs() []uint32 {
	ids := make([]uint32, len(l.postings))
	for i, p := range l.postings {
		ids[i] = p.DocID
	}
	return ids
}

// MaxDocID returns the largest DocID in the list, or 0 for an empty list.
func (l *List) MaxDocID() uint32 {
	if len(l.postings) == 0 {
		return 0
	}
	return l.postings[len(l.postings)-1].DocID
}

// Contains reports whether the list holds a posting for docID, using binary
// search. It is a point lookup for callers outside the streaming
// intersection path (e.g. tests and the wide-table oracle).
func (l *List) Contains(docID uint32) bool {
	i := sort.Search(len(l.postings), func(i int) bool {
		return l.postings[i].DocID >= docID
	})
	return i < len(l.postings) && l.postings[i].DocID == docID
}

// TF returns the term frequency recorded for docID, or 0 if absent.
func (l *List) TF(docID uint32) uint32 {
	i := sort.Search(len(l.postings), func(i int) bool {
		return l.postings[i].DocID >= docID
	})
	if i < len(l.postings) && l.postings[i].DocID == docID {
		return l.postings[i].TF
	}
	return 0
}

// Builder accumulates postings during indexing. DocIDs must be appended in
// ascending order; repeated appends for the same DocID accumulate TF, which
// is what a token-at-a-time indexer produces.
type Builder struct {
	postings []Posting
	segSize  int
}

// NewBuilder returns a Builder with the given segment size (≤ 0 selects
// DefaultSegmentSize).
func NewBuilder(segSize int) *Builder {
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	return &Builder{segSize: segSize}
}

// Add records tf occurrences of the term in docID. docID must be ≥ the last
// added DocID.
func (b *Builder) Add(docID uint32, tf uint32) {
	n := len(b.postings)
	if n > 0 && b.postings[n-1].DocID == docID {
		b.postings[n-1].TF += tf
		return
	}
	if n > 0 && b.postings[n-1].DocID > docID {
		panic("postings: Builder.Add requires ascending DocIDs")
	}
	b.postings = append(b.postings, Posting{DocID: docID, TF: tf})
}

// Len returns the number of distinct documents added so far.
func (b *Builder) Len() int { return len(b.postings) }

// Build finalizes the list. The Builder must not be used afterwards.
func (b *Builder) Build() *List {
	l := &List{postings: b.postings, segSize: b.segSize}
	l.buildSkips()
	b.postings = nil
	return l
}
