// Package postings implements the inverted-list substrate of the system:
// postings sorted by document ID, adaptive array/bitset containers, merge
// and galloping intersection, and the aggregation operators (γ_count,
// γ_sum) that context-sensitive ranking layers on top.
//
// Lists are stored in adaptive containers (see container.go): each 2^16
// range of docIDs is a sorted uint16 array when sparse and a bitset when
// dense, with TFs in a parallel array that predicate-shaped lists (TF = 1
// everywhere) drop entirely.
//
// The cost accounting still follows §3.2.1 of the paper: lists are
// *accounted* in segments of M0 entries, an intersection touches a segment
// only when its docid range overlaps the other list's current position,
// so cost(L_i ∩ L_j) = M0·(N_i^o + N_j^o) ≤ |L_i| + |L_j|. Every operation
// reports its cost through a Stats accumulator so the analytical claims of
// the paper (Proposition 3.1, Theorem 4.2) are observable in tests and
// benchmarks; bitset work is reported in entry-equivalents plus a separate
// BitmapWords tally.
package postings

import (
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
)

// DefaultSegmentSize is the default number of postings per skip segment
// (M0 in the paper's cost model). 128 matches common practice in text
// search systems (e.g. Lucene's skip interval).
const DefaultSegmentSize = 128

// Posting is one entry of an inverted list: a document ID and the term's
// occurrence count in that document.
type Posting struct {
	DocID uint32
	TF    uint32
}

// List is an immutable inverted list: docIDs strictly ascending, stored in
// adaptive chunk containers, with term frequencies in a parallel array in
// element order. A nil TF array means TF = 1 for every document — the
// shape of a predicate-field list. Build lists with NewList, FromDocIDs or
// a Builder; format-v4 files open lists in mapped form (see mapped.go),
// where chunk payloads stay on disk until first touched.
type List struct {
	chunks []chunk
	// offsets[i] is the global element index of chunk i's first document;
	// offsets[len(chunks)] == n.
	offsets []int
	tfs     []uint32 // nil ⇒ TF = 1 everywhere (heap lists only)
	n       int
	segSize int
	// bounds holds per-container score-bound metadata (parallel to
	// chunks; nil when never built), with the list-level ceilings cached
	// in maxTF/minLen. See bounds.go.
	bounds []ChunkBound
	maxTF  uint32
	minLen int32
	// src is non-nil for mapped lists: chunk payloads (and chunk-local
	// TF columns) materialize lazily from the on-disk block layout.
	src *mappedSource
}

// chunkPayload is one chunk's resident payload: exactly one of
// keys/bits is non-nil, and tfs is the chunk-local TF column (nil ⇒
// TF = 1 for every posting of the chunk). A quarantined payload is the
// permanent empty stand-in for a corrupt mapped block: no keys, an
// all-zero bitset for dense encodings, so every kernel reads the
// container as empty (see mapped.go).
type chunkPayload struct {
	keys        []uint16
	bits        []uint64
	tfs         []uint32
	quarantined bool
	// cached marks a payload charged to a BlockCache (decoded, weight
	// > 0), set before publication. Only cached payloads pay the
	// reference-bit write and hit count on the materialize fast path;
	// zero-copy aliases and quarantined stand-ins skip both.
	cached bool
	// accessed is the cache's S3-FIFO reference bit: set on a slot hit,
	// read and cleared by the evictor deciding promotion.
	accessed atomic.Uint32
}

// payload returns chunk ci's payload views. Heap chunks answer with
// field reads (the TF view is a subslice of the global array); mapped
// chunks materialize the block on first touch — decoding it, or
// aliasing the mapping directly for raw encodings — and memoize the
// result. Mapped materialization verifies the block's CRC; with a
// Quarantine registry armed a corrupt block is served as a permanently
// empty container (quarantine), otherwise the *BlockCorruptError panic
// escapes and the engine's worker recovery turns it into a query error.
func (l *List) payload(ci int) (keys []uint16, bits []uint64, tfs []uint32) {
	keys, bits, tfs, _ = l.payloadQ(ci)
	return keys, bits, tfs
}

// payloadQ is payload plus the quarantined bit, for query-path callers
// that account quarantine skips against their Stats.
func (l *List) payloadQ(ci int) (keys []uint16, bits []uint64, tfs []uint32, quarantined bool) {
	if l.src == nil {
		ch := &l.chunks[ci]
		if l.tfs != nil {
			tfs = l.tfs[l.offsets[ci]:l.offsets[ci+1]]
		}
		return ch.keys, ch.bits, tfs, false
	}
	p := l.src.materialize(l, ci)
	return p.keys, p.bits, p.tfs, p.quarantined
}

// blockHasTFs reports whether chunk ci stores explicit TFs, without
// materializing it. Blocks whose TFs are all 1 are stored TF-less even
// in lists that carry TFs elsewhere.
func (l *List) blockHasTFs(ci int) bool {
	if l.src == nil {
		return l.tfs != nil
	}
	return l.src.blockTFLen(ci) > 0
}

// residentAt reports whether chunk ci's payload is resident — always
// for heap chunks, only after materialization for mapped ones. The
// pruned path uses it to count containers dismissed without ever
// decoding their blocks.
func (l *List) residentAt(ci int) bool {
	if l.src == nil {
		return true
	}
	return l.src.mat[ci].Load() != nil
}

// Mapped reports whether the list reads its payloads from a mapped
// format-v4 file rather than the heap.
func (l *List) Mapped() bool { return l.src != nil }

// newListRaw builds a list from strictly ascending ids (not validated) and
// an optional parallel TF slice; an all-ones TF slice is dropped.
func newListRaw(ids []uint32, tfs []uint32, segSize, threshold int) *List {
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	if tfs != nil && allOnes(tfs) {
		tfs = nil
	}
	l := &List{tfs: tfs, n: len(ids), segSize: segSize}
	l.chunks, l.offsets = buildChunks(ids, threshold)
	return l
}

func allOnes(tfs []uint32) bool {
	for _, tf := range tfs {
		if tf != 1 {
			return false
		}
	}
	return true
}

// NewList constructs a list from postings that must already be sorted by
// strictly ascending DocID. segSize ≤ 0 selects DefaultSegmentSize.
// NewList panics if the postings are not strictly ascending, because a
// mis-sorted list corrupts every downstream intersection silently.
func NewList(ps []Posting, segSize int) *List {
	ids := make([]uint32, len(ps))
	tfs := make([]uint32, len(ps))
	for i, p := range ps {
		if i > 0 && p.DocID <= ps[i-1].DocID {
			panic("postings: NewList requires strictly ascending DocIDs")
		}
		ids[i] = p.DocID
		tfs[i] = p.TF
	}
	return newListRaw(ids, tfs, segSize, DenseThreshold)
}

// FromDocIDs builds a list with TF = 1 for every document, the shape of a
// predicate-field list (e.g. a MeSH term's list, where a document either
// carries the annotation or does not). No per-posting TF storage is
// materialized.
func FromDocIDs(ids []uint32, segSize int) *List {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			panic("postings: FromDocIDs requires strictly ascending DocIDs")
		}
	}
	return newListRaw(ids, nil, segSize, DenseThreshold)
}

// Len returns the number of postings in the list (|L| in the paper).
func (l *List) Len() int { return l.n }

// SegmentSize returns the list's segment size (M0).
func (l *List) SegmentSize() int { return l.segSize }

// Segments returns the number of skip segments of the M0 cost model,
// ceil(|L| / M0). The physical representation is chunked, but costs are
// accounted — and reported by Stats — in these model segments.
func (l *List) Segments() int {
	if l.n == 0 {
		return 0
	}
	return (l.n + l.segSize - 1) / l.segSize
}

// HasTFs reports whether the list stores explicit term frequencies; lists
// without them (predicate lists) have TF = 1 for every document.
func (l *List) HasTFs() bool {
	if l.src != nil {
		return l.src.hasTFs
	}
	return l.tfs != nil
}

// chunkAt returns the index of the chunk containing global element index g.
func (l *List) chunkAt(g int) int {
	return sort.Search(len(l.chunks), func(c int) bool { return l.offsets[c+1] > g })
}

// tfOf reads a chunk-local TF view: nil means TF = 1.
func tfOf(tfs []uint32, r int) uint32 {
	if tfs == nil {
		return 1
	}
	return tfs[r]
}

// At returns the i-th posting. It is a positional lookup for offline
// consumers (tests, inspection); dense chunks answer it by a bit-select
// walk.
func (l *List) At(i int) Posting {
	ci := l.chunkAt(i)
	base := l.chunks[ci].base
	rank := i - l.offsets[ci]
	keys, bs, tfs := l.payload(ci)
	if bs == nil {
		return Posting{DocID: base | uint32(keys[rank]), TF: tfOf(tfs, rank)}
	}
	tf := tfOf(tfs, rank)
	for w := 0; w < chunkWords; w++ {
		x := bs[w]
		c := bits.OnesCount64(x)
		if rank >= c {
			rank -= c
			continue
		}
		for ; rank > 0; rank-- {
			x &= x - 1
		}
		return Posting{DocID: base | uint32(w<<6|bits.TrailingZeros64(x)), TF: tf}
	}
	panic("postings: At index out of range")
}

// ForEach calls fn for every posting in ascending DocID order. It is the
// streaming accessor: no slice is materialized (mapped chunks
// materialize one block at a time).
func (l *List) ForEach(fn func(docID, tf uint32)) {
	for ci := range l.chunks {
		base := l.chunks[ci].base
		keys, bs, tfs := l.payload(ci)
		if bs != nil {
			r := 0
			for w := 0; w < chunkWords; w++ {
				x := bs[w]
				for x != 0 {
					fn(base|uint32(w<<6|bits.TrailingZeros64(x)), tfOf(tfs, r))
					x &= x - 1
					r++
				}
			}
			continue
		}
		for r, key := range keys {
			fn(base|uint32(key), tfOf(tfs, r))
		}
	}
}

// Postings materializes the list as a posting slice. It allocates; offline
// consumers only (persistence, table building, tests) — the query path
// streams via cursors and ForEach.
func (l *List) Postings() []Posting {
	ps := make([]Posting, 0, l.n)
	l.ForEach(func(d, tf uint32) {
		ps = append(ps, Posting{DocID: d, TF: tf})
	})
	return ps
}

// DocIDs returns a newly allocated slice of the list's document IDs.
func (l *List) DocIDs() []uint32 {
	ids := make([]uint32, 0, l.n)
	l.ForEach(func(d, _ uint32) {
		ids = append(ids, d)
	})
	return ids
}

// SumTF returns Σ tf over the list — tc(w, D) for a whole collection.
// Mapped lists answer from the value persisted in the file's table of
// contents, never touching a block.
func (l *List) SumTF() int64 {
	if l.src != nil {
		return l.src.sumTF
	}
	if l.tfs == nil {
		return int64(l.n)
	}
	var sum int64
	for _, tf := range l.tfs {
		sum += int64(tf)
	}
	return sum
}

// MaxDocID returns the largest DocID in the list, or 0 for an empty
// list. Quarantined (corrupt, empty-serving) trailing chunks are walked
// past; 0 if every chunk is quarantined.
func (l *List) MaxDocID() uint32 {
	if l.n == 0 {
		return 0
	}
	for ci := len(l.chunks) - 1; ci >= 0; ci-- {
		base := l.chunks[ci].base
		keys, bs, _ := l.payload(ci)
		if bs == nil {
			if len(keys) == 0 {
				continue
			}
			return base | uint32(keys[len(keys)-1])
		}
		for w := chunkWords - 1; w >= 0; w-- {
			if x := bs[w]; x != 0 {
				return base | uint32(w<<6+63-bits.LeadingZeros64(x))
			}
		}
	}
	return 0
}

// findChunk returns the index of the chunk whose range covers docID, or -1.
func (l *List) findChunk(docID uint32) int {
	base := docID &^ uint32(chunkSpan-1)
	ci := sort.Search(len(l.chunks), func(c int) bool { return l.chunks[c].base >= base })
	if ci == len(l.chunks) || l.chunks[ci].base != base {
		return -1
	}
	return ci
}

// Contains reports whether the list holds a posting for docID. The lookup
// narrows to the single container covering docID's range first — an O(1)
// bit test for dense chunks, a binary search within one array otherwise.
func (l *List) Contains(docID uint32) bool {
	ci := l.findChunk(docID)
	if ci < 0 {
		return false
	}
	lo := docID & (chunkSpan - 1)
	keys, bs, _ := l.payload(ci)
	if bs != nil {
		return bitsHas(bs, lo)
	}
	k := uint16(lo)
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	return i < len(keys) && keys[i] == k
}

// TF returns the term frequency recorded for docID, or 0 if absent.
func (l *List) TF(docID uint32) uint32 {
	ci := l.findChunk(docID)
	if ci < 0 {
		return 0
	}
	lo := docID & (chunkSpan - 1)
	keys, bs, tfs := l.payload(ci)
	if bs != nil {
		if !bitsHas(bs, lo) {
			return 0
		}
		return tfOf(tfs, bitsPopRange(bs, 0, int(lo)))
	}
	k := uint16(lo)
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
	if i == len(keys) || keys[i] != k {
		return 0
	}
	return tfOf(tfs, i)
}

// Bytes returns the decoded payload footprint of the list: container
// storage (2 B per sparse key, 8 KiB per dense chunk) plus the TF
// columns. Dense predicate chunks undercut the seed's 8 B/posting
// whenever a chunk holds more than DenseThreshold documents. For mapped
// lists this is the footprint the list *would* occupy fully decoded,
// computed from resident metadata — the actual resident bytes are
// whatever blocks have materialized. On-disk footprints come from
// DiskBytes.
func (l *List) Bytes() int64 {
	var total int64
	for i := range l.chunks {
		if l.chunks[i].dense() {
			total += chunkWords * 8
		} else {
			total += int64(l.chunks[i].n) * 2
		}
		if l.src != nil && l.blockHasTFs(i) {
			total += int64(l.chunks[i].n) * 4
		}
	}
	return total + int64(len(l.tfs))*4
}

// Containers reports how many of the list's chunks use each
// representation.
func (l *List) Containers() (sparse, dense int) {
	for i := range l.chunks {
		if l.chunks[i].dense() {
			dense++
		} else {
			sparse++
		}
	}
	return sparse, dense
}

// Builder accumulates postings during indexing. DocIDs must be appended in
// ascending order; repeated appends for the same DocID accumulate TF, which
// is what a token-at-a-time indexer produces.
type Builder struct {
	ids     []uint32
	tfs     []uint32
	segSize int
}

// NewBuilder returns a Builder with the given segment size (≤ 0 selects
// DefaultSegmentSize).
func NewBuilder(segSize int) *Builder {
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	return &Builder{segSize: segSize}
}

// Add records tf occurrences of the term in docID. docID must be ≥ the last
// added DocID. Accumulated TFs saturate at MaxUint32 instead of wrapping,
// so a pathological document cannot turn a huge term count into a tiny one.
func (b *Builder) Add(docID uint32, tf uint32) {
	n := len(b.ids)
	if n > 0 && b.ids[n-1] == docID {
		if s := uint64(b.tfs[n-1]) + uint64(tf); s > math.MaxUint32 {
			b.tfs[n-1] = math.MaxUint32
		} else {
			b.tfs[n-1] = uint32(s)
		}
		return
	}
	if n > 0 && b.ids[n-1] > docID {
		panic("postings: Builder.Add requires ascending DocIDs")
	}
	b.ids = append(b.ids, docID)
	b.tfs = append(b.tfs, tf)
}

// Len returns the number of distinct documents added so far.
func (b *Builder) Len() int { return len(b.ids) }

// Build finalizes the list. The Builder must not be used afterwards.
func (b *Builder) Build() *List {
	l := newListRaw(b.ids, b.tfs, b.segSize, DenseThreshold)
	b.ids, b.tfs = nil, nil
	return l
}
