package postings

import (
	"sync/atomic"
	"testing"
)

// fillSlots fabricates n charged slots holding decoded-looking payloads,
// as materialize would publish them before calling insert.
func fillSlots(n int) []atomic.Pointer[chunkPayload] {
	slots := make([]atomic.Pointer[chunkPayload], n)
	for i := range slots {
		p := &chunkPayload{keys: []uint16{uint16(i)}, cached: true}
		slots[i].Store(p)
	}
	return slots
}

// touch simulates the materialize fast path on a resident slot: set the
// reference bit and count a hit.
func touch(c *BlockCache, slot *atomic.Pointer[chunkPayload]) bool {
	p := slot.Load()
	if p == nil {
		return false
	}
	if p.accessed.Load() == 0 {
		p.accessed.Store(1)
	}
	c.noteHit()
	return true
}

// TestBlockCacheScanResistance is the point of the S3-FIFO policy: a
// long one-shot scan must not displace the blocks hot queries keep
// re-touching.
func TestBlockCacheScanResistance(t *testing.T) {
	c := NewBlockCache(10) // ten 1-byte entries
	hot := fillSlots(5)
	for i := range hot {
		c.insert(&hot[i], 1)
	}
	// The hot set is re-touched before any pressure arrives.
	for i := range hot {
		if !touch(c, &hot[i]) {
			t.Fatalf("hot block %d not resident before scan", i)
		}
	}
	// A 200-block one-shot scan, never re-touched.
	scan := fillSlots(200)
	for i := range scan {
		c.insert(&scan[i], 1)
	}
	for i := range hot {
		if hot[i].Load() == nil {
			t.Fatalf("scan evicted hot block %d (accessed, should have been promoted)", i)
		}
	}
	resident := 0
	for i := range scan {
		if scan[i].Load() != nil {
			resident++
		}
	}
	if resident > 10 {
		t.Fatalf("%d scan blocks resident, budget holds at most 10", resident)
	}
	if c.Stats().Promotions < 5 {
		t.Fatalf("promotions %d, want >= 5 (the hot set graduating to main)", c.Stats().Promotions)
	}
	if got := c.Used(); got > c.Budget() {
		t.Fatalf("used %d over budget %d", got, c.Budget())
	}
}

// TestBlockCacheGhostPromotion: a block whose reuse interval exceeds the
// probationary queue is evicted unreferenced, but its second decode must
// land in the main queue via the ghost list — the 2Q behavior that keeps
// a steadily re-decoded block from churning in probation forever.
func TestBlockCacheGhostPromotion(t *testing.T) {
	c := NewBlockCache(10)
	victim := fillSlots(1)
	c.insert(&victim[0], 1)
	// Push it out of the small queue without ever touching it.
	filler := fillSlots(20)
	for i := range filler {
		c.insert(&filler[i], 1)
	}
	if victim[0].Load() != nil {
		t.Fatal("untouched victim survived 20 insertions in a 10-byte cache")
	}
	// Re-decode: the ghost entry must route it to the main queue.
	victim[0].Store(&chunkPayload{keys: []uint16{7}, cached: true})
	c.insert(&victim[0], 1)
	st := c.Stats()
	if st.GhostHits != 1 {
		t.Fatalf("ghost hits %d, want 1", st.GhostHits)
	}
	// Another untouched scan: the ghost-promoted block now outlives it.
	scan := fillSlots(40)
	for i := range scan {
		c.insert(&scan[i], 1)
	}
	if victim[0].Load() == nil {
		t.Fatal("ghost-promoted block evicted by an untouched scan")
	}
}

// TestBlockCacheSteadyStateAllocation is the regression test for the
// queue leak: the old plain-slice FIFO re-sliced itself forward on every
// eviction, growing its backing array with the cumulative insertion
// count. The ring deques must keep capacity proportional to the peak
// resident population under unbounded churn.
func TestBlockCacheSteadyStateAllocation(t *testing.T) {
	c := NewBlockCache(8)
	slots := fillSlots(64)
	for i := 0; i < 100_000; i++ {
		s := &slots[i%len(slots)]
		if s.Load() == nil {
			s.Store(&chunkPayload{keys: []uint16{uint16(i)}, cached: true})
		}
		c.insert(s, 1)
	}
	c.mu.Lock()
	smallCap, mainCap, ghostCap := len(c.small.buf), len(c.main.buf), len(c.ghost.ring)
	resident := c.small.count + c.main.count
	c.mu.Unlock()
	if resident > 8 {
		t.Fatalf("%d entries resident, budget holds at most 8", resident)
	}
	// Generous bound: a leak puts these in the tens of thousands.
	if smallCap > 256 || mainCap > 256 || ghostCap > 1024 {
		t.Fatalf("ring capacities small=%d main=%d ghost=%d grew with churn (leak)", smallCap, mainCap, ghostCap)
	}
	if c.Evictions() == 0 {
		t.Fatal("churn produced no evictions")
	}
}

// TestBlockCacheCounters pins the counter semantics: hits only on
// resident re-touches, misses ≡ insertions, eviction refunds the budget.
func TestBlockCacheCounters(t *testing.T) {
	c := NewBlockCache(100)
	slots := fillSlots(3)
	for i := range slots {
		c.insert(&slots[i], 10)
	}
	for i := 0; i < 7; i++ {
		touch(c, &slots[i%3])
	}
	st := c.Stats()
	if st.Hits != 7 || st.Misses != 3 || st.Insertions != 3 {
		t.Fatalf("hits=%d misses=%d insertions=%d, want 7/3/3", st.Hits, st.Misses, st.Insertions)
	}
	if st.Used != 30 {
		t.Fatalf("used %d, want 30", st.Used)
	}
	var nilCache *BlockCache
	if s := nilCache.Stats(); s != (BlockCacheStats{}) {
		t.Fatalf("nil cache stats %+v", s)
	}
	nilCache.noteHit() // must not panic
}

// TestBlockCacheOversizedEntry: a single block larger than the whole
// budget is simply not retained, and the accounting returns to zero.
func TestBlockCacheOversizedEntry(t *testing.T) {
	c := NewBlockCache(10)
	slots := fillSlots(1)
	c.insert(&slots[0], 100)
	if slots[0].Load() != nil {
		t.Fatal("over-budget block retained")
	}
	if c.Used() != 0 {
		t.Fatalf("used %d after evicting the only entry", c.Used())
	}
}
