package postings

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Format-v4 block layout: the on-disk, mmap-friendly representation of
// the adaptive containers. Every chunk of a list becomes one *block*
// with a fixed-width directory entry (metadata, encoding tag, the PR 5
// score bound, a CRC) and a payload placed in a shared byte region:
//
//	directory entry (BlockDirEntrySize = 40 bytes, little-endian):
//	  0:4   base       first docID of the container range
//	  4:8   n          posting count (1 .. 65536)
//	  8:16  off        payload offset of the docID bytes
//	  16:20 idLen      docID payload length
//	  20:24 tfLen      TF payload length (0 ⇒ TF = 1 for the block)
//	  24:28 crc        CRC32-C over payload[off : off+idLen+tfLen]
//	  28:32 maxTF      block score bound (see bounds.go)
//	  32:36 minDocLen  block score bound
//	  36    enc        block encoding
//	  37:40 zero
//
// Raw encodings (sparse key arrays, dense bitsets) are written 8-byte
// aligned so a little-endian reader materializes them as zero-copy
// slices of the mapping — "readable in place". Sparse blocks whose
// delta+varint form is smaller are stored packed instead; dense bitsets
// always stay raw. A block's TF column is uvarint-coded and elided
// entirely when every TF in the block is 1 (predicate lists therefore
// store no TF bytes at all). The directory is eagerly validated and
// checksummed at open; payload bytes are verified per block, at
// materialization time, so opening an index never touches them.
const (
	// BlockSparseRaw stores n little-endian uint16 keys (zero-copy).
	BlockSparseRaw uint8 = 0
	// BlockDenseRaw stores the 1024-word bitset little-endian (zero-copy).
	BlockDenseRaw uint8 = 1
	// BlockSparsePacked stores the keys delta+uvarint coded (first key
	// stored +1, then gaps ≥ 1).
	BlockSparsePacked uint8 = 2

	// BlockDirEntrySize is the fixed width of one directory entry.
	BlockDirEntrySize = 40
)

var mappedCRC = crc32.MakeTable(crc32.Castagnoli)

// nativeLittleEndian gates the zero-copy materialization path; on a
// big-endian host every raw block is copy-decoded instead, which is
// slower but bit-identical.
var nativeLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// BlockCorruptError reports a mapped block whose payload failed its CRC
// or structural validation at materialization time. On the query path
// the block is *quarantined* instead of failing the process: the source
// memoizes a permanent empty payload for the block, the query skips the
// container rank-safely (exactly as pruning's SkipContainer would have)
// and reports the skip through Stats.QuarantineSkips, which the engine
// surfaces as a degraded execution. The error type still escapes by
// panic from paths that decode without a quarantining source (offline
// strict decoding) so Index verification and tests can detect raw
// corruption.
type BlockCorruptError struct{ Detail string }

func (e *BlockCorruptError) Error() string {
	return "postings: mapped block corrupt: " + e.Detail
}

// Quarantine is the corrupt-block blacklist shared by every mapped list
// of one index: cumulative counters plus a bounded sample of details,
// for operator surfaces (/healthz, /statsz, fsck tooling). The per-block
// blacklist itself lives in each source's materialization slots — a
// quarantined block's empty payload is memoized outside the block cache
// budget, so it is never evicted and never re-decoded.
type Quarantine struct {
	blocks atomic.Int64

	mu      sync.Mutex
	details []string
}

// maxQuarantineDetails bounds the retained corruption reports; the
// counter keeps the true total.
const maxQuarantineDetails = 16

func (q *Quarantine) record(detail string) {
	if q == nil {
		return
	}
	q.blocks.Add(1)
	q.mu.Lock()
	if len(q.details) < maxQuarantineDetails {
		q.details = append(q.details, detail)
	}
	q.mu.Unlock()
}

// Blocks returns how many distinct blocks have been quarantined.
func (q *Quarantine) Blocks() int64 {
	if q == nil {
		return 0
	}
	return q.blocks.Load()
}

// Details returns a copy of the retained corruption reports (at most
// maxQuarantineDetails; Blocks() is the true total).
func (q *Quarantine) Details() []string {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]string, len(q.details))
	copy(out, q.details)
	return out
}

// MappedListMeta is the per-list record a format-v4 table of contents
// keeps: everything the reader needs to reconstruct the list shell
// without touching a payload byte.
type MappedListMeta struct {
	N          int
	SumTF      int64
	HasTFs     bool
	HasBounds  bool
	FirstBlock int // index of the list's first directory entry
	NumBlocks  int
}

// MappedEncoder accumulates the block payload region and directory for
// a set of lists, in the order EncodeList is called.
type MappedEncoder struct {
	payload []byte
	dir     []byte
	blocks  int
	scratch []byte
}

// Payload returns the accumulated payload region.
func (e *MappedEncoder) Payload() []byte { return e.payload }

// Dir returns the accumulated directory (blocks × BlockDirEntrySize).
func (e *MappedEncoder) Dir() []byte { return e.dir }

// Blocks returns the number of directory entries written so far.
func (e *MappedEncoder) Blocks() int { return e.blocks }

func (e *MappedEncoder) align8() {
	for len(e.payload)%8 != 0 {
		e.payload = append(e.payload, 0)
	}
}

func (e *MappedEncoder) putUvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	e.payload = append(e.payload, tmp[:n]...)
}

// EncodeList appends every chunk of l as one block and returns the
// list's TOC record. Raw sparse/dense payloads are 8-aligned for
// in-place reads; sparse chunks whose packed form is strictly smaller
// are packed; a block's TF column is dropped when all its TFs are 1.
func (e *MappedEncoder) EncodeList(l *List) MappedListMeta {
	meta := MappedListMeta{
		N:          l.Len(),
		SumTF:      l.SumTF(),
		HasTFs:     l.HasTFs(),
		HasBounds:  l.HasBounds(),
		FirstBlock: e.blocks,
		NumBlocks:  len(l.chunks),
	}
	for ci := range l.chunks {
		ch := &l.chunks[ci]
		keys, bs, tfs := l.payload(ci)
		var enc uint8
		var idOff int
		if bs != nil {
			e.align8()
			enc = BlockDenseRaw
			idOff = len(e.payload)
			var tmp [8]byte
			for _, w := range bs {
				binary.LittleEndian.PutUint64(tmp[:], w)
				e.payload = append(e.payload, tmp[:]...)
			}
		} else {
			packed := packKeys16(e.scratch[:0], keys)
			if len(packed) < 2*len(keys) {
				enc = BlockSparsePacked
				idOff = len(e.payload)
				e.payload = append(e.payload, packed...)
			} else {
				e.align8()
				enc = BlockSparseRaw
				idOff = len(e.payload)
				var tmp [2]byte
				for _, k := range keys {
					binary.LittleEndian.PutUint16(tmp[:], k)
					e.payload = append(e.payload, tmp[:]...)
				}
			}
			e.scratch = packed[:0]
		}
		idLen := len(e.payload) - idOff
		tfStart := len(e.payload)
		if tfs != nil && !allOnes(tfs) {
			for _, tf := range tfs {
				e.putUvarint(uint64(tf))
			}
		}
		tfLen := len(e.payload) - tfStart
		var bound ChunkBound
		if l.bounds != nil {
			bound = l.bounds[ci]
		}
		var ent [BlockDirEntrySize]byte
		binary.LittleEndian.PutUint32(ent[0:4], ch.base)
		binary.LittleEndian.PutUint32(ent[4:8], uint32(ch.n))
		binary.LittleEndian.PutUint64(ent[8:16], uint64(idOff))
		binary.LittleEndian.PutUint32(ent[16:20], uint32(idLen))
		binary.LittleEndian.PutUint32(ent[20:24], uint32(tfLen))
		binary.LittleEndian.PutUint32(ent[24:28], crc32.Checksum(e.payload[idOff:idOff+idLen+tfLen], mappedCRC))
		binary.LittleEndian.PutUint32(ent[28:32], bound.MaxTF)
		binary.LittleEndian.PutUint32(ent[32:36], uint32(bound.MinDocLen))
		ent[36] = enc
		e.dir = append(e.dir, ent[:]...)
		e.blocks++
	}
	return meta
}

// packKeys16 appends the delta+uvarint coding of sorted keys to dst.
func packKeys16(dst []byte, keys []uint16) []byte {
	var tmp [binary.MaxVarintLen64]byte
	prev := uint32(0)
	for i, k := range keys {
		v := uint64(uint32(k) - prev)
		if i == 0 {
			v = uint64(k) + 1
		}
		prev = uint32(k)
		n := binary.PutUvarint(tmp[:], v)
		dst = append(dst, tmp[:n]...)
	}
	return dst
}

// dirEntry is one decoded directory record.
type dirEntry struct {
	base  uint32
	n     int32
	off   uint64
	idLen uint32
	tfLen uint32
	crc   uint32
	bound ChunkBound
	enc   uint8
}

func decodeDirEntry(b []byte) dirEntry {
	return dirEntry{
		base:  binary.LittleEndian.Uint32(b[0:4]),
		n:     int32(binary.LittleEndian.Uint32(b[4:8])),
		off:   binary.LittleEndian.Uint64(b[8:16]),
		idLen: binary.LittleEndian.Uint32(b[16:20]),
		tfLen: binary.LittleEndian.Uint32(b[20:24]),
		crc:   binary.LittleEndian.Uint32(b[24:28]),
		bound: ChunkBound{
			MaxTF:     binary.LittleEndian.Uint32(b[28:32]),
			MinDocLen: int32(binary.LittleEndian.Uint32(b[32:36])),
		},
		enc: b[36],
	}
}

// mappedSource is a mapped list's connection to the on-disk blocks: the
// list's directory slice, the shared payload region, and one lazily
// filled payload slot per chunk.
type mappedSource struct {
	dir     []byte // NumBlocks × BlockDirEntrySize, this list only
	payload []byte // whole payload region (offsets are absolute)
	cache   *BlockCache
	hasTFs  bool
	sumTF   int64
	mat     []atomic.Pointer[chunkPayload]
	// quar is the index-wide corrupt-block registry (nil ⇒ strict mode:
	// corruption panics a *BlockCorruptError instead of quarantining).
	quar *Quarantine
}

func (s *mappedSource) entry(ci int) dirEntry {
	return decodeDirEntry(s.dir[ci*BlockDirEntrySize:])
}

func (s *mappedSource) blockTFLen(ci int) uint32 {
	return binary.LittleEndian.Uint32(s.dir[ci*BlockDirEntrySize+20:])
}

// materialize returns chunk ci's payload, decoding (or zero-copy
// aliasing) the block on first touch. Concurrent callers may decode the
// same block; one wins the CAS and the duplicates are garbage. A cache
// eviction clears the slot, after which the next touch decodes again.
//
// A block whose payload fails validation is quarantined when the source
// carries a Quarantine registry: the slot memoizes a permanent empty
// payload flagged quarantined — never inserted into the cache, so never
// evicted and never re-decoded — and the container reads as empty from
// then on. A bitflip costs one container, not the process. Without a
// registry the *BlockCorruptError panic escapes as before (strict mode,
// used by offline verification).
func (s *mappedSource) materialize(l *List, ci int) *chunkPayload {
	if p := s.mat[ci].Load(); p != nil {
		if p.cached {
			// Scan-resistance bookkeeping for cache-charged blocks: mark
			// the block re-touched (checked-then-set, so a hot block costs
			// one read, not a contended write, per touch) and count the
			// hit. Zero-copy and quarantined payloads are memoized outside
			// the cache and skip both.
			if p.accessed.Load() == 0 {
				p.accessed.Store(1)
			}
			s.cache.noteHit()
		}
		return p
	}
	p, weight, corrupt := s.decodeBlockSafe(l, ci)
	if corrupt != nil {
		p, weight = quarantinedPayload(l.chunks[ci].enc), 0
		if s.mat[ci].CompareAndSwap(nil, p) {
			// First discoverer records; CAS losers saw another copy (the
			// same bytes are corrupt for every decoder) and must not
			// double-count the block.
			s.quar.record(corrupt.Detail)
			return p
		}
		if q := s.mat[ci].Load(); q != nil {
			return q
		}
		return p
	}
	p.cached = weight > 0 && s.cache != nil
	if s.mat[ci].CompareAndSwap(nil, p) {
		if p.cached {
			s.cache.insert(&s.mat[ci], weight)
		}
		return p
	}
	if q := s.mat[ci].Load(); q != nil {
		return q
	}
	// Lost the CAS but the winner was already evicted: our copy serves.
	return p
}

// decodeBlockSafe is decodeBlock with the corruption panic converted to
// a value when the source quarantines; any other panic (and corruption
// in strict mode) propagates.
func (s *mappedSource) decodeBlockSafe(l *List, ci int) (p *chunkPayload, weight int64, corrupt *BlockCorruptError) {
	if s.quar == nil {
		p, weight = s.decodeBlock(l, ci)
		return p, weight, nil
	}
	defer func() {
		if r := recover(); r != nil {
			be, ok := r.(*BlockCorruptError)
			if !ok {
				panic(r)
			}
			p, weight, corrupt = nil, 0, be
		}
	}()
	p, weight = s.decodeBlock(l, ci)
	return p, weight, nil
}

// zeroChunkBits is the shared all-zero bitset quarantined dense blocks
// alias: full chunkWords length, so the word-AND kernels index it like
// any dense payload, with every bit off. Read-only by contract.
var zeroChunkBits [chunkWords]uint64

// quarantinedPayload builds the permanent empty payload of a
// quarantined block, shaped after the block's declared encoding so every
// consumer branch (dense word loops, sparse key walks) reads it safely.
func quarantinedPayload(enc uint8) *chunkPayload {
	p := &chunkPayload{quarantined: true}
	if enc == BlockDenseRaw {
		p.bits = zeroChunkBits[:]
	}
	return p
}

// SetQuarantine arms corrupt-block quarantine on a mapped list, sharing
// the given registry (one per index). Heap lists ignore it. Must be
// called before the list serves queries.
func (l *List) SetQuarantine(q *Quarantine) {
	if l.src != nil {
		l.src.quar = q
	}
}

// decodeBlock verifies and decodes block ci. weight is the decoded heap
// footprint in bytes; zero-copy blocks weigh nothing and are memoized
// outside the cache budget (they are slice headers into the mapping).
func (s *mappedSource) decodeBlock(l *List, ci int) (p *chunkPayload, weight int64) {
	ent := s.entry(ci)
	blob := s.payload[ent.off : ent.off+uint64(ent.idLen)+uint64(ent.tfLen)]
	if got := crc32.Checksum(blob, mappedCRC); got != ent.crc {
		panic(&BlockCorruptError{Detail: fmt.Sprintf("block at payload offset %d: checksum mismatch 0x%08x != 0x%08x", ent.off, got, ent.crc)})
	}
	idBytes := blob[:ent.idLen]
	n := int(ent.n)
	p = &chunkPayload{}
	switch ent.enc {
	case BlockDenseRaw:
		if w, ok := aliasU64(idBytes, chunkWords); ok {
			p.bits = w
		} else {
			w := make([]uint64, chunkWords)
			for i := range w {
				w[i] = binary.LittleEndian.Uint64(idBytes[i*8:])
			}
			p.bits = w
			weight += chunkWords * 8
		}
	case BlockSparseRaw:
		if k, ok := aliasU16(idBytes, n); ok {
			p.keys = k
		} else {
			k := make([]uint16, n)
			for i := range k {
				k[i] = binary.LittleEndian.Uint16(idBytes[i*2:])
			}
			p.keys = k
			weight += int64(n) * 2
		}
	case BlockSparsePacked:
		p.keys = unpackKeys16(idBytes, n, ent.off)
		weight += int64(n) * 2
	default:
		panic(&BlockCorruptError{Detail: fmt.Sprintf("block at payload offset %d: unknown encoding %d", ent.off, ent.enc)})
	}
	if ent.tfLen > 0 {
		tfBytes := blob[ent.idLen:]
		tfs := make([]uint32, n)
		for i := 0; i < n; i++ {
			v, c := binary.Uvarint(tfBytes)
			if c <= 0 || v > 1<<32-1 {
				panic(&BlockCorruptError{Detail: fmt.Sprintf("block at payload offset %d: corrupt tf %d", ent.off, i)})
			}
			tfBytes = tfBytes[c:]
			tfs[i] = uint32(v)
		}
		if len(tfBytes) != 0 {
			panic(&BlockCorruptError{Detail: fmt.Sprintf("block at payload offset %d: %d trailing tf bytes", ent.off, len(tfBytes))})
		}
		p.tfs = tfs
		weight += int64(n) * 4
	}
	return p, weight
}

// unpackKeys16 decodes a delta+uvarint key block, validating strict
// ascent, range and exact consumption.
func unpackKeys16(b []byte, n int, off uint64) []uint16 {
	keys := make([]uint16, n)
	prev := uint64(0)
	for i := 0; i < n; i++ {
		v, c := binary.Uvarint(b)
		if c <= 0 || v == 0 {
			panic(&BlockCorruptError{Detail: fmt.Sprintf("block at payload offset %d: corrupt key gap %d", off, i)})
		}
		b = b[c:]
		k := prev + v
		if i == 0 {
			k = v - 1
		}
		if k >= chunkSpan {
			panic(&BlockCorruptError{Detail: fmt.Sprintf("block at payload offset %d: key %d out of range", off, i)})
		}
		keys[i] = uint16(k)
		prev = k
	}
	if len(b) != 0 {
		panic(&BlockCorruptError{Detail: fmt.Sprintf("block at payload offset %d: %d trailing key bytes", off, len(b))})
	}
	return keys
}

// aliasU16 reinterprets b as n uint16s without copying when the host is
// little-endian and the data is aligned.
func aliasU16(b []byte, n int) ([]uint16, bool) {
	if !nativeLittleEndian || len(b) != n*2 || n == 0 {
		return nil, false
	}
	ptr := unsafe.Pointer(&b[0])
	if uintptr(ptr)%2 != 0 {
		return nil, false
	}
	return unsafe.Slice((*uint16)(ptr), n), true
}

// aliasU64 reinterprets b as n uint64s without copying when the host is
// little-endian and the data is aligned.
func aliasU64(b []byte, n int) ([]uint64, bool) {
	if !nativeLittleEndian || len(b) != n*8 || n == 0 {
		return nil, false
	}
	ptr := unsafe.Pointer(&b[0])
	if uintptr(ptr)%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*uint64)(ptr), n), true
}

// NewMappedList builds the resident shell of a mapped list: chunk
// metadata, offsets, and score bounds come from the directory; payloads
// stay on disk until a kernel touches them. dir must be the list's own
// directory slice (meta.NumBlocks entries) and payload the whole
// region its offsets index. The directory is untrusted and fully
// validated here; payload bytes are validated per block at
// materialization. maxDocs bounds the docID space (the index layer's
// document count cap).
func NewMappedList(meta MappedListMeta, dir, payload []byte, segSize int, cache *BlockCache) (*List, error) {
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	if meta.NumBlocks <= 0 || meta.N <= 0 {
		return nil, fmt.Errorf("postings: mapped list with %d blocks, %d postings", meta.NumBlocks, meta.N)
	}
	if len(dir) != meta.NumBlocks*BlockDirEntrySize {
		return nil, fmt.Errorf("postings: mapped list directory is %d bytes, want %d", len(dir), meta.NumBlocks*BlockDirEntrySize)
	}
	l := &List{
		chunks:  make([]chunk, meta.NumBlocks),
		offsets: make([]int, meta.NumBlocks+1),
		n:       meta.N,
		segSize: segSize,
	}
	var bounds []ChunkBound
	if meta.HasBounds {
		bounds = make([]ChunkBound, meta.NumBlocks)
	}
	total := 0
	prevBase := int64(-1)
	for ci := 0; ci < meta.NumBlocks; ci++ {
		ent := decodeDirEntry(dir[ci*BlockDirEntrySize:])
		if ent.base&(chunkSpan-1) != 0 || int64(ent.base) <= prevBase {
			return nil, fmt.Errorf("postings: mapped block %d has base %d (prev %d): directory corrupt", ci, ent.base, prevBase)
		}
		prevBase = int64(ent.base)
		if ent.n < 1 || ent.n > chunkSpan {
			return nil, fmt.Errorf("postings: mapped block %d claims %d postings: directory corrupt", ci, ent.n)
		}
		need := uint64(ent.idLen) + uint64(ent.tfLen)
		if ent.off > uint64(len(payload)) || need > uint64(len(payload))-ent.off {
			return nil, fmt.Errorf("postings: mapped block %d payload [%d, +%d) outside region of %d bytes", ci, ent.off, need, len(payload))
		}
		n := int(ent.n)
		switch ent.enc {
		case BlockSparseRaw:
			if int(ent.idLen) != 2*n {
				return nil, fmt.Errorf("postings: mapped block %d: raw sparse length %d for %d keys", ci, ent.idLen, n)
			}
		case BlockDenseRaw:
			if int(ent.idLen) != chunkWords*8 {
				return nil, fmt.Errorf("postings: mapped block %d: raw dense length %d", ci, ent.idLen)
			}
		case BlockSparsePacked:
			if int(ent.idLen) < n || int(ent.idLen) > 3*n {
				return nil, fmt.Errorf("postings: mapped block %d: packed length %d for %d keys", ci, ent.idLen, n)
			}
		default:
			return nil, fmt.Errorf("postings: mapped block %d: unknown encoding %d", ci, ent.enc)
		}
		if ent.tfLen != 0 && (int(ent.tfLen) < n || int(ent.tfLen) > 5*n) {
			return nil, fmt.Errorf("postings: mapped block %d: tf length %d for %d postings", ci, ent.tfLen, n)
		}
		if ent.tfLen != 0 && !meta.HasTFs {
			return nil, fmt.Errorf("postings: mapped block %d carries TFs in a TF-less list", ci)
		}
		l.chunks[ci] = chunk{base: ent.base, n: ent.n, enc: ent.enc}
		l.offsets[ci+1] = l.offsets[ci] + n
		total += n
		if bounds != nil {
			bounds[ci] = ent.bound
		}
	}
	if total != meta.N {
		return nil, fmt.Errorf("postings: mapped list blocks hold %d postings, TOC says %d", total, meta.N)
	}
	l.src = &mappedSource{
		dir:     dir,
		payload: payload,
		cache:   cache,
		hasTFs:  meta.HasTFs,
		sumTF:   meta.SumTF,
		mat:     make([]atomic.Pointer[chunkPayload], meta.NumBlocks),
	}
	if bounds != nil {
		l.adoptBounds(bounds)
	}
	return l, nil
}

// BlockStats summarizes a list's format-v4 block layout: encoding mix
// and on-disk footprint. For mapped lists it reads the directory; for
// heap lists it measures what EncodeList would write, so build-time
// tooling can report disk footprints without producing a file.
type BlockStats struct {
	SparseRaw    int // blocks stored as raw key arrays
	DenseRaw     int // blocks stored as raw bitsets
	SparsePacked int // blocks stored delta+varint packed
	TFBlocks     int // blocks carrying an explicit TF column
	PayloadBytes int64
	DirBytes     int64
}

func (s *BlockStats) add(o BlockStats) {
	s.SparseRaw += o.SparseRaw
	s.DenseRaw += o.DenseRaw
	s.SparsePacked += o.SparsePacked
	s.TFBlocks += o.TFBlocks
	s.PayloadBytes += o.PayloadBytes
	s.DirBytes += o.DirBytes
}

// AddTo accumulates o into s (exported face for the index layer).
func (s *BlockStats) AddTo(o BlockStats) { s.add(o) }

// BlockStats reports the list's v4 block layout.
func (l *List) BlockStats() BlockStats {
	var bs BlockStats
	if l.src != nil {
		for ci := range l.chunks {
			ent := l.src.entry(ci)
			bs.tally(ent.enc, int64(ent.idLen)+int64(ent.tfLen), ent.tfLen > 0)
		}
		return bs
	}
	var e MappedEncoder
	e.EncodeList(l)
	for ci := range l.chunks {
		ent := decodeDirEntry(e.dir[ci*BlockDirEntrySize:])
		bs.tally(ent.enc, int64(ent.idLen)+int64(ent.tfLen), ent.tfLen > 0)
	}
	return bs
}

func (s *BlockStats) tally(enc uint8, payloadBytes int64, hasTF bool) {
	switch enc {
	case BlockSparseRaw:
		s.SparseRaw++
	case BlockDenseRaw:
		s.DenseRaw++
	case BlockSparsePacked:
		s.SparsePacked++
	}
	if hasTF {
		s.TFBlocks++
	}
	s.PayloadBytes += payloadBytes
	s.DirBytes += BlockDirEntrySize
}
