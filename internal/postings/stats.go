package postings

// Stats accumulates the cost counters of the paper's §3.2.1 cost model.
// All list operations in this package take an optional *Stats (nil is
// allowed) and add to it, so a query plan can report exactly how much
// inverted-list work it performed. The counters are deliberately the terms
// that appear in the paper's formulas:
//
//	cost(L_i ∩ L_j)   = M0 · (segments touched)      → EntriesScanned
//	cost(γ(P))        = |∩ L_m|                      → AggregatedEntries
type Stats struct {
	// EntriesScanned counts postings examined during intersections. With
	// skip pointers this is at most M0 · (N_i^o + N_j^o); without, it is
	// |L_i| + |L_j|.
	EntriesScanned int64
	// SegmentsSkipped counts whole segments jumped over via skip pointers.
	SegmentsSkipped int64
	// Seeks counts skip-aware seek operations (one per advance target).
	Seeks int64
	// AggregatedEntries counts list entries consumed by γ aggregations.
	AggregatedEntries int64
	// Intersections counts pairwise intersection operations performed.
	Intersections int64
	// ViewGroupsScanned counts materialized-view groups examined when
	// statistics are answered from views instead of lists; it is the cost
	// term of Theorem 4.2 (O(ViewSize)).
	ViewGroupsScanned int64
	// BitmapWords counts 64-document bitset words touched by the
	// count-only conjunction kernels. Bitset work also charges
	// EntriesScanned in entry-equivalents (one word ≈ one entry probe), so
	// ListWork stays comparable across container representations; this
	// counter isolates how much of it was popcount work.
	BitmapWords int64
	// QuarantineSkips counts touches of quarantined mapped blocks — blocks
	// whose payload failed its CRC or structural validation and is served
	// as an empty container instead of panicking (see mapped.go). A
	// non-zero count means this execution silently skipped corrupt
	// containers and its results are partial; the engine surfaces that as
	// a degraded execution.
	QuarantineSkips int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.EntriesScanned += other.EntriesScanned
	s.SegmentsSkipped += other.SegmentsSkipped
	s.Seeks += other.Seeks
	s.AggregatedEntries += other.AggregatedEntries
	s.Intersections += other.Intersections
	s.ViewGroupsScanned += other.ViewGroupsScanned
	s.BitmapWords += other.BitmapWords
	s.QuarantineSkips += other.QuarantineSkips
}

// ListWork returns the total inverted-list cost: entries scanned during
// intersections plus entries consumed by aggregations. It is the quantity
// bounded by O(Σ|L_m|) in Proposition 3.1.
func (s *Stats) ListWork() int64 {
	return s.EntriesScanned + s.AggregatedEntries
}

func (s *Stats) addEntries(n int64) {
	if s != nil {
		s.EntriesScanned += n
	}
}

func (s *Stats) addSkipped(n int64) {
	if s != nil {
		s.SegmentsSkipped += n
	}
}

func (s *Stats) addSeek() {
	if s != nil {
		s.Seeks++
	}
}

func (s *Stats) addAggregated(n int64) {
	if s != nil {
		s.AggregatedEntries += n
	}
}

func (s *Stats) addIntersection() {
	if s != nil {
		s.Intersections++
	}
}

func (s *Stats) addBitmapWords(n int64) {
	if s != nil {
		s.BitmapWords += n
	}
}

func (s *Stats) addQuarantineSkip() {
	if s != nil {
		s.QuarantineSkips++
	}
}
