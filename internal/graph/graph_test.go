package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("m%02d", i)
	}
	return out
}

// pathGraph: 0-1-2-...-n-1.
func pathGraph(n int) *KAG {
	g := NewKAG(names(n))
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 10)
	}
	return g
}

// completeGraph on n vertices.
func completeGraph(n int) *KAG {
	g := NewKAG(names(n))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 10)
		}
	}
	return g
}

// barbell: two k-cliques joined through a single bridge vertex.
func barbell(k int) *KAG {
	n := 2*k + 1
	g := NewKAG(names(n))
	bridge := k
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(i, j, 10)
		}
		g.AddEdge(i, bridge, 10)
	}
	for i := k + 1; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 10)
		}
		g.AddEdge(bridge, i, 10)
	}
	return g
}

func TestKAGBasics(t *testing.T) {
	g := pathGraph(4)
	if g.N() != 4 || g.Edges() != 3 {
		t.Fatalf("N=%d E=%d", g.N(), g.Edges())
	}
	if !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
	if g.Weight(0, 1) != 10 || g.Weight(0, 2) != 0 {
		t.Error("Weight wrong")
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Neighbors = %v", got)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Error("Degree wrong")
	}
	if g.Name(2) != "m02" {
		t.Error("Name wrong")
	}
	if g.String() == "" {
		t.Error("String empty")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := pathGraph(3)
	if err := g.AddEdge(1, 1, 5); err == nil {
		t.Error("self-loop: expected error")
	}
	// Re-inserting an existing edge with the same weight is an idempotent
	// no-op: no error, no edge-count change.
	before := g.Edges()
	if err := g.AddEdge(0, 1, 10); err != nil {
		t.Errorf("idempotent re-insert: unexpected error %v", err)
	}
	if g.Edges() != before {
		t.Errorf("idempotent re-insert changed edge count: %d -> %d", before, g.Edges())
	}
	// A conflicting weight for an existing edge is a builder bug and must
	// be reported, not silently overwrite.
	if err := g.AddEdge(0, 1, 5); err == nil {
		t.Error("conflicting duplicate: expected error")
	}
	if g.Weight(0, 1) != 10 {
		t.Errorf("conflicting duplicate mutated weight: %d", g.Weight(0, 1))
	}
	// The graph stays fully usable after rejected inserts.
	if err := g.AddEdge(0, 2, 7); err != nil {
		t.Errorf("valid insert after errors: %v", err)
	}
	if !g.HasEdge(0, 2) || g.Weight(0, 2) != 7 {
		t.Error("valid insert after errors not applied")
	}
}

func TestBuildFiltersByThreshold(t *testing.T) {
	weights := map[[2]int]int64{{0, 1}: 100, {1, 2}: 5, {0, 2}: 50}
	g := Build(names(3), func(i, j int) int64 {
		if i > j {
			i, j = j, i
		}
		return weights[[2]int{i, j}]
	}, 50)
	if g.Edges() != 2 || g.HasEdge(1, 2) {
		t.Errorf("Build kept wrong edges: %v", g)
	}
}

func TestIsClique(t *testing.T) {
	if !completeGraph(4).IsClique() {
		t.Error("complete graph not detected")
	}
	if pathGraph(3).IsClique() {
		t.Error("path detected as clique")
	}
	if !NewKAG(names(1)).IsClique() || !NewKAG(nil).IsClique() {
		t.Error("degenerate cliques")
	}
	if !completeGraph(2).IsClique() {
		t.Error("edge is a clique")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewKAG(names(5))
	g.AddEdge(0, 1, 10)
	g.AddEdge(3, 4, 10)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	want := [][]int{{0, 1}, {2}, {3, 4}}
	for i := range want {
		if fmt.Sprint(comps[i]) != fmt.Sprint(want[i]) {
			t.Errorf("component %d = %v, want %v", i, comps[i], want[i])
		}
	}
}

func TestInduced(t *testing.T) {
	g := completeGraph(4)
	sub := g.Induced([]int{0, 2, 3})
	if sub.N() != 3 || sub.Edges() != 3 {
		t.Fatalf("Induced = %v", sub)
	}
	if sub.Name(1) != "m02" {
		t.Errorf("Induced name = %s", sub.Name(1))
	}
	sub2 := pathGraph(4).Induced([]int{0, 3})
	if sub2.Edges() != 0 {
		t.Error("non-adjacent induced subgraph should have no edges")
	}
}

// verifySeparates checks that removing S0 really disconnects S1 from S2.
func verifySeparates(t *testing.T, g *KAG, sep Separator) {
	t.Helper()
	removed := map[int]bool{}
	for _, v := range sep.S0 {
		removed[v] = true
	}
	side := map[int]int{}
	for _, v := range sep.S1 {
		side[v] = 1
	}
	for _, v := range sep.S2 {
		side[v] = 2
	}
	// BFS from each S1 vertex avoiding S0 must never reach S2.
	for _, start := range sep.S1 {
		stack := []int{start}
		seen := map[int]bool{start: true}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if side[v] == 2 {
				t.Fatalf("separator fails: reached S2 vertex %d from S1", v)
			}
			for u := range g.adj[v] {
				if !removed[u] && !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
	}
	if len(sep.S0)+len(sep.S1)+len(sep.S2) != g.N() {
		t.Fatalf("separator does not partition: %d+%d+%d != %d",
			len(sep.S0), len(sep.S1), len(sep.S2), g.N())
	}
}

func TestSeparatorOnBarbell(t *testing.T) {
	g := barbell(4) // bridge vertex 4
	sep, ok := FindBalancedSeparator(g)
	if !ok {
		t.Fatal("no separator found")
	}
	verifySeparates(t, g, sep)
	if len(sep.S0) != 1 || g.Name(sep.S0[0]) != "m04" {
		t.Errorf("S0 = %v (names %v), want the bridge", sep.S0, g.Names(sep.S0))
	}
	if sep.BalanceObjective() <= 0 || sep.BalanceObjective() > 1 {
		t.Errorf("BalanceObjective = %v", sep.BalanceObjective())
	}
}

func TestSeparatorOnPath(t *testing.T) {
	g := pathGraph(7)
	sep, ok := FindBalancedSeparator(g)
	if !ok {
		t.Fatal("no separator found")
	}
	verifySeparates(t, g, sep)
	if len(sep.S0) != 1 {
		t.Errorf("path should separate at one vertex, got %v", sep.S0)
	}
}

func TestSeparatorOnClique(t *testing.T) {
	if _, ok := FindBalancedSeparator(completeGraph(5)); ok {
		t.Error("complete graph should have no decomposing separator")
	}
	if _, ok := FindBalancedSeparator(completeGraph(2)); ok {
		t.Error("tiny graph should have no separator")
	}
}

func TestSeparatorRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(15)
		g := NewKAG(names(n))
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.25 {
					g.AddEdge(i, j, 10)
				}
			}
		}
		sep, ok := FindBalancedSeparator(g)
		if !ok {
			continue
		}
		// A separator is only meaningful within one connected component,
		// but the partition invariant and separation must hold globally.
		verifySeparates(t, g, sep)
	}
}

func TestDecomposePathIntoCoverablePieces(t *testing.T) {
	g := pathGraph(10)
	d := Decompose(g, func(ns []string) bool { return len(ns) <= 3 }, nil, 5)
	if len(d.Cliques) != 0 {
		t.Errorf("path decomposition left cliques: %v", d.Cliques)
	}
	if len(d.Coverable) == 0 {
		t.Fatal("no coverable pieces")
	}
	for _, ns := range d.Coverable {
		if len(ns) > 3 {
			t.Errorf("piece %v exceeds coverable bound", ns)
		}
	}
	// Every edge of the path must be inside some piece.
	assertEdgesCovered(t, g, d)
}

func TestDecomposeCliqueGoesToMining(t *testing.T) {
	g := completeGraph(6)
	d := Decompose(g, func(ns []string) bool { return len(ns) <= 3 }, nil, 5)
	if len(d.Cliques) != 1 || len(d.Cliques[0]) != 6 {
		t.Fatalf("Cliques = %v", d.Cliques)
	}
	if len(d.Coverable) != 0 {
		t.Errorf("Coverable = %v", d.Coverable)
	}
}

func TestDecomposeDisconnected(t *testing.T) {
	g := NewKAG(names(6))
	g.AddEdge(0, 1, 10)
	g.AddEdge(2, 3, 10)
	d := Decompose(g, func(ns []string) bool { return len(ns) <= 2 }, nil, 5)
	if len(d.Coverable) != 6-2 { // {0,1},{2,3},{4},{5}
		t.Errorf("Coverable = %v", d.Coverable)
	}
}

func TestDecomposeEmpty(t *testing.T) {
	d := Decompose(NewKAG(nil), func([]string) bool { return true }, nil, 1)
	if len(d.Coverable) != 0 || len(d.Cliques) != 0 {
		t.Errorf("empty decomposition = %+v", d)
	}
}

// assertEdgesCovered checks the 2-clique coverage invariant: every KAG
// edge (a frequent pair, by construction of the KAG) appears holistically
// in at least one output leaf.
func assertEdgesCovered(t *testing.T, g *KAG, d Decomposition) {
	t.Helper()
	leaves := append(append([][]string(nil), d.Coverable...), d.Cliques...)
	for u := 0; u < g.N(); u++ {
		for v := range g.adj[u] {
			if v <= u {
				continue
			}
			if !someLeafContains(leaves, g.Name(u), g.Name(v)) {
				t.Errorf("edge %s-%s not covered by any leaf", g.Name(u), g.Name(v))
			}
		}
	}
}

func someLeafContains(leaves [][]string, ns ...string) bool {
	for _, leaf := range leaves {
		all := true
		for _, n := range ns {
			if !containsStr(leaf, n) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// TestDecomposePreservesFrequentCliques is the central §5.2.1 invariant:
// every clique whose support is ≥ T_C must survive holistically in some
// leaf, whichever replication scheme the decomposition used. The support
// oracle is a deterministic hash of the sorted names.
func TestDecomposePreservesFrequentCliques(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const tc = 50
	oracle := func(ns []string) int64 {
		sorted := append([]string(nil), ns...)
		sort.Strings(sorted)
		h := int64(1469598103934665603)
		for _, c := range strings.Join(sorted, "|") {
			h = (h ^ int64(c)) * 16777619 % 1000003
			if h < 0 {
				h = -h
			}
		}
		return h % 100 // support in [0, 100); tc = 50 splits roughly evenly
	}
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(10)
		g := NewKAG(names(n))
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.35 {
					g.AddEdge(i, j, tc+10)
				}
			}
		}
		d := Decompose(g, func(ns []string) bool { return len(ns) <= 4 }, oracle, tc)
		assertEdgesCovered(t, g, d)
		leaves := append(append([][]string(nil), d.Coverable...), d.Cliques...)
		// Every frequent triangle must be inside one leaf.
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if !g.HasEdge(a, b) {
					continue
				}
				for c := b + 1; c < n; c++ {
					if !g.HasEdge(a, c) || !g.HasEdge(b, c) {
						continue
					}
					tri := []string{g.Name(a), g.Name(b), g.Name(c)}
					if oracle(tri) >= tc && !someLeafContains(leaves, tri...) {
						t.Errorf("trial %d: frequent triangle %v lost", trial, tri)
					}
				}
			}
		}
	}
}

func TestDecomposeScheme1WithoutOracle(t *testing.T) {
	// With a nil oracle every S0-S0 edge with a crossing triangle is
	// replicated (scheme 1) — all triangles must survive, frequent or
	// not.
	rng := rand.New(rand.NewSource(31))
	n := 12
	g := NewKAG(names(n))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				g.AddEdge(i, j, 100)
			}
		}
	}
	d := Decompose(g, func(ns []string) bool { return len(ns) <= 4 }, nil, 50)
	leaves := append(append([][]string(nil), d.Coverable...), d.Cliques...)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				if g.HasEdge(a, b) && g.HasEdge(a, c) && g.HasEdge(b, c) {
					tri := []string{g.Name(a), g.Name(b), g.Name(c)}
					if !someLeafContains(leaves, tri...) {
						t.Errorf("triangle %v lost under scheme 1", tri)
					}
				}
			}
		}
	}
	if d.SupportQueries != 0 {
		t.Errorf("nil oracle should never be queried, got %d", d.SupportQueries)
	}
}

func TestDecomposeCountsWork(t *testing.T) {
	g := barbell(5)
	d := Decompose(g, func(ns []string) bool { return len(ns) <= 4 }, nil, 5)
	if d.Separators == 0 {
		t.Error("no separator computations recorded")
	}
	// Two 5-cliques (+bridge) cannot fit in 4-term views: they must end
	// up as mining cliques.
	if len(d.Cliques) < 2 {
		t.Errorf("Cliques = %v", d.Cliques)
	}
}

// TestMinVertexSeparatorMatchesBruteForce validates the max-flow vertex
// cut against exhaustive search on small random graphs: when the
// separator search returns a result, its size must equal the true
// minimum vertex cut between the prefix and suffix vertex sets.
func TestMinVertexSeparatorMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(5) // 4..8 vertices
		g := NewKAG(names(n))
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.45 {
					g.AddEdge(i, j, 10)
				}
			}
		}
		for split := 1; split < n; split++ {
			sep, ok := minVertexSeparator(g, split)
			want := bruteMinVertexCut(g, split)
			if !ok {
				// The optimum swallows one whole side; the flow value
				// must still equal the brute-force optimum, we just
				// cannot use it as a decomposition.
				continue
			}
			if len(sep.S0) != want {
				t.Fatalf("trial %d split %d: separator %v size %d, brute force %d",
					trial, split, sep.S0, len(sep.S0), want)
			}
			verifySeparates(t, g, sep)
		}
	}
}

// bruteMinVertexCut finds the minimum |S| over all vertex subsets S such
// that removing S leaves no path from a prefix vertex ∉ S to a suffix
// vertex ∉ S.
func bruteMinVertexCut(g *KAG, split int) int {
	n := g.N()
	best := n
	for mask := 0; mask < 1<<n; mask++ {
		size := 0
		removed := make([]bool, n)
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				removed[v] = true
				size++
			}
		}
		if size >= best {
			continue
		}
		if separatesPrefix(g, split, removed) {
			best = size
		}
	}
	return best
}

func separatesPrefix(g *KAG, split int, removed []bool) bool {
	n := g.N()
	seen := make([]bool, n)
	var stack []int
	for v := 0; v < split; v++ {
		if !removed[v] {
			stack = append(stack, v)
			seen[v] = true
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v >= split {
			return false
		}
		for u := range g.adj[v] {
			if !removed[u] && !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return true
}
