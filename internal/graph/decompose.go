package graph

import "sort"

// SupportFunc returns the document support of a predicate-term
// combination, or a negative value when the support is unknown (the
// decomposition then conservatively assumes it exceeds the threshold and
// replicates, which §5.2.1 shows is always correct).
type SupportFunc func(names []string) int64

// Decomposition is the output of the top-down selection phase.
type Decomposition struct {
	// Coverable lists term sets small enough for a single view each.
	Coverable [][]string
	// Cliques lists dense remainders (complete subgraphs still too large
	// for one view); §5.3's hybrid hands them to the mining-based
	// selection.
	Cliques [][]string
	// Separators counts balanced-separator computations performed.
	Separators int
	// SupportQueries counts SupportFunc invocations (the work the
	// top-down approach saves versus exhaustive mining).
	SupportQueries int
}

// Decompose runs the recursive §5.2.2 decomposition: split into connected
// components; emit components coverable by one view (per the coverable
// predicate, typically ViewSize ≤ T_V); emit oversized cliques for the
// mining-based stage; otherwise find a balanced vertex separator and
// recurse on G1 = S1 ∪ S0 (all edges kept) and G2 = S2 ∪ S0, where an
// S0-internal edge is replicated into G2 only if some crossing clique
// may have support ≥ tc (scheme 1) and dropped when every crossing
// triangle provably has support < tc (scheme 2).
func Decompose(g *KAG, coverable func(names []string) bool, support SupportFunc, tc int64) Decomposition {
	var d Decomposition
	d.decompose(g, coverable, support, tc)
	sortStringSets(d.Coverable)
	sortStringSets(d.Cliques)
	return d
}

func (d *Decomposition) decompose(g *KAG, coverable func(names []string) bool, support SupportFunc, tc int64) {
	if g.N() == 0 {
		return
	}
	comps := g.ConnectedComponents()
	if len(comps) > 1 {
		for _, comp := range comps {
			d.decompose(g.Induced(comp), coverable, support, tc)
		}
		return
	}
	names := g.Names(nil)
	if coverable(names) {
		d.Coverable = append(d.Coverable, names)
		return
	}
	if g.IsClique() {
		d.Cliques = append(d.Cliques, names)
		return
	}
	d.Separators++
	sep, ok := FindBalancedSeparator(g)
	if !ok {
		// Dense but not complete, and no decomposing separator: treat as
		// a dense remainder for the mining stage.
		d.Cliques = append(d.Cliques, names)
		return
	}
	g1, g2 := d.split(g, sep, support, tc)
	d.decompose(g1, coverable, support, tc)
	d.decompose(g2, coverable, support, tc)
}

// split builds G1 and G2 per Definition 4's decomposition rules.
func (d *Decomposition) split(g *KAG, sep Separator, support SupportFunc, tc int64) (*KAG, *KAG) {
	v1 := append(append([]int(nil), sep.S1...), sep.S0...)
	sort.Ints(v1)
	// G1 keeps every edge among S1 ∪ S0, including all S0-internal edges.
	g1 := g.Induced(v1)

	// G2 holds S2 ∪ S0 with edges within S2, edges S0–S2, and S0-internal
	// edges only when a crossing clique may be frequent.
	v2 := append(append([]int(nil), sep.S2...), sep.S0...)
	sort.Ints(v2)
	g2 := NewKAG(g.Names(v2))
	pos := make(map[int]int, len(v2))
	for i, v := range v2 {
		pos[v] = i
	}
	inS0 := make(map[int]bool, len(sep.S0))
	for _, v := range sep.S0 {
		inS0[v] = true
	}
	inS2 := make(map[int]bool, len(sep.S2))
	for _, v := range sep.S2 {
		inS2[v] = true
	}
	for i, u := range v2 {
		for v, w := range g.adj[u] {
			j, ok := pos[v]
			if !ok || j <= i {
				continue
			}
			if inS0[u] && inS0[v] && !d.crossingCliqueMayBeFrequent(g, u, v, inS2, support, tc) {
				continue
			}
			// j > i (checked above) yields each pair once: AddEdge cannot
			// fail.
			_ = g2.AddEdge(i, j, w)
		}
	}
	return g1, g2
}

// crossingCliqueMayBeFrequent decides whether the S0-internal edge u–v
// must be replicated into G2. A clique containing u, v and S2 vertices
// exists only if u and v share a neighbor in S2; each such triangle
// bounds the support of every larger crossing clique, so the edge may be
// dropped exactly when every crossing triangle has support < tc. An
// unknown support (negative return) forces replication — the always-safe
// scheme 1.
func (d *Decomposition) crossingCliqueMayBeFrequent(g *KAG, u, v int, inS2 map[int]bool, support SupportFunc, tc int64) bool {
	for w := range g.adj[u] {
		if !inS2[w] || !g.HasEdge(v, w) {
			continue
		}
		if support == nil {
			return true // no oracle: assume frequent (scheme 1)
		}
		d.SupportQueries++
		s := support([]string{g.Name(u), g.Name(v), g.Name(w)})
		if s < 0 || s >= tc {
			return true
		}
	}
	return false
}

func sortStringSets(sets [][]string) {
	for _, s := range sets {
		sort.Strings(s)
	}
	sort.Slice(sets, func(a, b int) bool {
		x, y := sets[a], sets[b]
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return len(x) < len(y)
	})
}
