package graph

// Separator is a balanced vertex separator: removing S0 disconnects S1
// from S2 (Definition 4). Indices refer to the graph the separator was
// computed on.
type Separator struct {
	S0, S1, S2 []int
}

// FindBalancedSeparator implements Algorithm 2: for each prefix split of
// the vertex order, attach a source to the prefix and a sink to the
// suffix, compute a minimum s–t *vertex* separator via max-flow on the
// split-vertex network, and return the candidate minimizing |S0|/|E12|
// (ties broken toward smaller |S0|), where E12 counts edges incident to
// S0 or crossing between the sides. Candidates with an empty side are
// discarded — they do not decompose the graph.
//
// The boolean result is false when no decomposing separator exists (e.g.
// the graph is complete or too small).
func FindBalancedSeparator(g *KAG) (Separator, bool) {
	n := g.N()
	if n < 3 {
		return Separator{}, false
	}
	best := Separator{}
	bestRatio := 0.0
	found := false
	for i := 1; i < n; i++ {
		sep, ok := minVertexSeparator(g, i)
		if !ok {
			continue
		}
		e12 := countE12(g, sep)
		if e12 == 0 {
			continue
		}
		ratio := float64(len(sep.S0)) / float64(e12)
		if !found || ratio < bestRatio ||
			(ratio == bestRatio && len(sep.S0) < len(best.S0)) {
			best, bestRatio, found = sep, ratio, true
		}
	}
	return best, found
}

// minVertexSeparator computes a minimum vertex separator between the
// prefix v_0..v_{split-1} and the suffix v_split..v_{n-1} using the
// standard node-splitting reduction: each vertex becomes in→out with
// capacity 1; each undirected edge u–v becomes u_out→v_in and v_out→u_in
// with infinite capacity; the source feeds every prefix v_in and every
// suffix v_out feeds the sink. A minimum cut then saturates only split
// arcs, and those vertices form the separator.
func minVertexSeparator(g *KAG, split int) (Separator, bool) {
	n := g.N()
	inNode := func(v int) int { return 2 * v }
	outNode := func(v int) int { return 2*v + 1 }
	s, t := 2*n, 2*n+1
	f := newFlowNet(2*n + 2)
	for v := 0; v < n; v++ {
		f.addArc(inNode(v), outNode(v), 1)
	}
	for u := 0; u < n; u++ {
		for v := range g.adj[u] {
			// Each undirected edge contributes both directions; the map
			// iteration visits (u,v) and (v,u), adding each arc once.
			f.addArc(outNode(u), inNode(v), inf)
		}
	}
	for v := 0; v < split; v++ {
		f.addArc(s, inNode(v), inf)
	}
	for v := split; v < n; v++ {
		f.addArc(outNode(v), t, inf)
	}
	flow := f.maxflow(s, t)
	if flow >= int64(n) || flow >= inf {
		// No finite vertex cut separates the sides (they share a vertex
		// path through every vertex) — cannot happen with unit split
		// arcs, but guard anyway.
		return Separator{}, false
	}
	reach := f.residualReachable(s)
	var sep Separator
	for v := 0; v < n; v++ {
		switch {
		case reach[inNode(v)] && !reach[outNode(v)]:
			sep.S0 = append(sep.S0, v)
		case reach[inNode(v)]:
			sep.S1 = append(sep.S1, v)
		default:
			sep.S2 = append(sep.S2, v)
		}
	}
	if len(sep.S1) == 0 || len(sep.S2) == 0 {
		return Separator{}, false
	}
	return sep, true
}

// countE12 counts the edges e_{u-v} with u ∈ S1 ∪ S0 and v ∈ S2 ∪ S0 —
// the denominator of Algorithm 2's selection ratio.
func countE12(g *KAG, sep Separator) int {
	side := make([]int, g.N()) // 0 = S1, 1 = S0, 2 = S2
	for _, v := range sep.S0 {
		side[v] = 1
	}
	for _, v := range sep.S2 {
		side[v] = 2
	}
	count := 0
	for u := 0; u < g.N(); u++ {
		for v := range g.adj[u] {
			if v <= u {
				continue
			}
			left := side[u] <= 1 && side[v] >= 1
			right := side[u] >= 1 && side[v] <= 1
			if left || right {
				count++
			}
		}
	}
	return count
}

// BalanceObjective evaluates Formula 5 — |S0| / (min(|S1|,|S2|) + |S0|)
// — for reporting and tests.
func (s Separator) BalanceObjective() float64 {
	m := len(s.S1)
	if len(s.S2) < m {
		m = len(s.S2)
	}
	den := m + len(s.S0)
	if den == 0 {
		return 0
	}
	return float64(len(s.S0)) / float64(den)
}
