package graph

// Dinic's max-flow over an explicit arc list. Used by the vertex-separator
// search: vertices are split into in/out nodes with unit capacity, so a
// minimum s–t cut corresponds to a minimum vertex separator.

const inf int64 = 1 << 60

type arc struct {
	to  int
	cap int64
	rev int // index of the reverse arc in arcs[to]
}

type flowNet struct {
	arcs  [][]arc
	level []int
	iter  []int
}

func newFlowNet(n int) *flowNet {
	return &flowNet{
		arcs:  make([][]arc, n),
		level: make([]int, n),
		iter:  make([]int, n),
	}
}

// addArc inserts a directed arc u→v with the given capacity (plus the
// zero-capacity reverse arc).
func (f *flowNet) addArc(u, v int, c int64) {
	f.arcs[u] = append(f.arcs[u], arc{to: v, cap: c, rev: len(f.arcs[v])})
	f.arcs[v] = append(f.arcs[v], arc{to: u, cap: 0, rev: len(f.arcs[u]) - 1})
}

func (f *flowNet) bfs(s, t int) bool {
	for i := range f.level {
		f.level[i] = -1
	}
	queue := []int{s}
	f.level[s] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range f.arcs[v] {
			if a.cap > 0 && f.level[a.to] < 0 {
				f.level[a.to] = f.level[v] + 1
				queue = append(queue, a.to)
			}
		}
	}
	return f.level[t] >= 0
}

func (f *flowNet) dfs(v, t int, want int64) int64 {
	if v == t {
		return want
	}
	for ; f.iter[v] < len(f.arcs[v]); f.iter[v]++ {
		a := &f.arcs[v][f.iter[v]]
		if a.cap <= 0 || f.level[a.to] != f.level[v]+1 {
			continue
		}
		got := f.dfs(a.to, t, minInt64(want, a.cap))
		if got > 0 {
			a.cap -= got
			f.arcs[a.to][a.rev].cap += got
			return got
		}
	}
	return 0
}

// maxflow runs Dinic from s to t and returns the flow value. The residual
// network remains in f for min-cut extraction.
func (f *flowNet) maxflow(s, t int) int64 {
	var flow int64
	for f.bfs(s, t) {
		for i := range f.iter {
			f.iter[i] = 0
		}
		for {
			aug := f.dfs(s, t, inf)
			if aug == 0 {
				break
			}
			flow += aug
		}
	}
	return flow
}

// residualReachable returns the set of nodes reachable from s in the
// residual network — the source side of a minimum cut.
func (f *flowNet) residualReachable(s int) []bool {
	seen := make([]bool, len(f.arcs))
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range f.arcs[v] {
			if a.cap > 0 && !seen[a.to] {
				seen[a.to] = true
				stack = append(stack, a.to)
			}
		}
	}
	return seen
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
