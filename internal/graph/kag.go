// Package graph implements the Keyword Association Graph machinery of
// §5.2: the KAG itself (vertices = frequent predicate terms, weighted
// edges = document co-occurrence counts), minimum s–t vertex separators
// via max-flow on the split-vertex graph, the balanced-separator search of
// Algorithm 2, and the recursive top-down decomposition with both edge
// replication schemes.
package graph

import (
	"fmt"
	"sort"
)

// KAG is a keyword association graph. Vertices are identified by index;
// Names maps them back to predicate terms. Edges are undirected with
// positive weights (co-occurrence counts); edges below the selection
// threshold T_C are expected to be filtered out by the builder ("edges
// whose weights are less than T_C can be removed from the graph").
type KAG struct {
	names  []string
	adj    []map[int]int64 // adj[u][v] = weight
	nEdges int
}

// NewKAG creates a graph with the given vertex names and no edges.
func NewKAG(names []string) *KAG {
	g := &KAG{
		names: append([]string(nil), names...),
		adj:   make([]map[int]int64, len(names)),
	}
	for i := range g.adj {
		g.adj[i] = make(map[int]int64)
	}
	return g
}

// Build constructs a KAG from a co-occurrence oracle: names are the
// frequent predicate terms, cooc(i, j) returns their document
// co-occurrence count, and edges with weight < tc are omitted.
func Build(names []string, cooc func(i, j int) int64, tc int64) *KAG {
	g := NewKAG(names)
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if w := cooc(i, j); w >= tc {
				// Each unordered pair {i, j}, i < j, is visited once, so
				// AddEdge cannot fail.
				_ = g.AddEdge(i, j, w)
			}
		}
	}
	return g
}

// N returns the vertex count.
func (g *KAG) N() int { return len(g.names) }

// Edges returns the edge count.
func (g *KAG) Edges() int { return g.nEdges }

// Name returns the predicate term of vertex v.
func (g *KAG) Name(v int) string { return g.names[v] }

// Names returns the vertex names of the given indices (all vertices if
// idx is nil).
func (g *KAG) Names(idx []int) []string {
	if idx == nil {
		return append([]string(nil), g.names...)
	}
	out := make([]string, len(idx))
	for i, v := range idx {
		out[i] = g.names[v]
	}
	return out
}

// AddEdge inserts an undirected edge. Malformed inserts are rejected with
// an error instead of crashing the caller: a self-loop is never valid in
// a co-occurrence graph, and a duplicate insert with a conflicting weight
// means two builders disagree about the same co-occurrence count. A
// duplicate insert with the same weight is an idempotent no-op, so
// mining pipelines that rediscover an edge (e.g. from both endpoints)
// need no dedup bookkeeping of their own.
func (g *KAG) AddEdge(u, v int, w int64) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at vertex %d (%s)", u, g.names[u])
	}
	if old, dup := g.adj[u][v]; dup {
		if old == w {
			return nil
		}
		return fmt.Errorf("graph: conflicting duplicate edge %d-%d: weight %d vs existing %d", u, v, w, old)
	}
	g.adj[u][v] = w
	g.adj[v][u] = w
	g.nEdges++
	return nil
}

// HasEdge reports whether u and v are adjacent.
func (g *KAG) HasEdge(u, v int) bool {
	_, ok := g.adj[u][v]
	return ok
}

// Weight returns the edge weight, or 0 if absent.
func (g *KAG) Weight(u, v int) int64 { return g.adj[u][v] }

// Neighbors returns v's adjacent vertices in ascending order.
func (g *KAG) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Degree returns the number of edges at v.
func (g *KAG) Degree(v int) int { return len(g.adj[v]) }

// IsClique reports whether the graph is complete. Singletons and the
// empty graph are cliques.
func (g *KAG) IsClique() bool {
	n := g.N()
	return g.nEdges == n*(n-1)/2
}

// ConnectedComponents returns the vertex sets of the graph's connected
// components, each ascending, ordered by smallest vertex. The first
// decomposition step considers components independently.
func (g *KAG) ConnectedComponents() [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for start := 0; start < g.N(); start++ {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for u := range g.adj[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Induced returns the subgraph induced by vertices (which keeps all edges
// among them). Vertex order in the result follows the input order.
func (g *KAG) Induced(vertices []int) *KAG {
	sub := NewKAG(g.Names(vertices))
	pos := make(map[int]int, len(vertices))
	for i, v := range vertices {
		pos[v] = i
	}
	for i, v := range vertices {
		for u, w := range g.adj[v] {
			if j, ok := pos[u]; ok && j > i {
				// j > i filters each adjacency to one direction, so every
				// pair arrives exactly once and AddEdge cannot fail.
				_ = sub.AddEdge(i, j, w)
			}
		}
	}
	return sub
}

// String implements fmt.Stringer.
func (g *KAG) String() string {
	return fmt.Sprintf("KAG{vertices=%d, edges=%d}", g.N(), g.Edges())
}
