package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"csrank/internal/core"
	"csrank/internal/query"
)

// chaosCluster builds an nShards-shard cluster plus the per-shard
// engines, so tests can compare degraded answers against a fresh
// scatter-gather over only the healthy slices.
func chaosCluster(t *testing.T, rng *rand.Rand, nShards int) (*Cluster, []core.Slice, []query.Query) {
	t.Helper()
	docs, meshTerms, words := randomDocs(rng, 240, 8, 8)
	parts, globals, err := Split(docs, nShards)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*core.Engine, nShards)
	slices := make([]core.Slice, nShards)
	for i := range parts {
		ix := buildIndex(t, parts[i], 16)
		engines[i] = core.New(ix, nil, core.Options{})
		slices[i] = core.Slice{Eng: engines[i], Globals: globals[i]}
	}
	cluster, err := NewCluster(engines, globals)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]query.Query, 6)
	for i := range queries {
		queries[i] = randomQuery(rng, meshTerms, words)
	}
	return cluster, slices, queries
}

// settleGoroutines waits for the goroutine count to drop back to at
// most base, tolerating runtime background noise with a deadline.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d goroutines, started with %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosSweep is the robustness acceptance test: with 1 of 4 shards
// misbehaving (panic, corrupt block, or stall past the shard timeout),
// every query still answers — no crash — flagged degraded with the
// fault attributed to the right shard and kind, and the hit list is
// bit-identical to a fresh scatter-gather over only the three healthy
// slices. No goroutines may leak across the sweep.
func TestChaosSweep(t *testing.T) {
	const nShards = 4
	rng := rand.New(rand.NewSource(91))
	cluster, slices, queries := chaosCluster(t, rng, nShards)
	cluster.SetPolicy(Policy{
		MinShards:    1,
		ShardTimeout: 50 * time.Millisecond,
		// High threshold: this test exercises degraded answers, not
		// breaker trips (TestChaosBreakerLifecycle covers those), so
		// the sweep must not shed the faulty shard mid-sweep.
		Breaker: BreakerConfig{Threshold: 1 << 20},
	})

	base := runtime.NumGoroutine()
	faults := []struct {
		name string
		f    Fault
		kind string
	}{
		{"panic", Fault{Panic: true}, core.FailKindPanic},
		{"corrupt", Fault{Corrupt: true}, core.FailKindCorruption},
		{"timeout", Fault{Delay: 2 * time.Second}, core.FailKindTimeout},
	}
	for _, fc := range faults {
		for target := 0; target < nShards; target++ {
			cluster.DisarmFaults() // faults accumulate per shard; one at a time
			if err := cluster.ArmFault(target, fc.f); err != nil {
				t.Fatal(err)
			}
			// The healthy remainder, in shard order — what a fresh
			// engine over only the surviving shards would serve.
			var healthy []core.Slice
			for i, s := range slices {
				if i != target {
					healthy = append(healthy, s)
				}
			}
			for _, q := range queries {
				hits, sum, err := cluster.Search(context.Background(), q, 10)
				if err != nil {
					t.Fatalf("%s/shard %d: query failed instead of degrading: %v", fc.name, target, err)
				}
				if !sum.Agg.Degraded {
					t.Fatalf("%s/shard %d: answer not flagged degraded", fc.name, target)
				}
				if len(sum.Failed) != 1 || sum.Failed[0].Shard != target || sum.Failed[0].Kind != fc.kind {
					t.Fatalf("%s/shard %d: failure attribution %+v", fc.name, target, sum.Failed)
				}
				want, _, err := core.SearchSlices(context.Background(), healthy, q, 10)
				if err != nil {
					t.Fatal(err)
				}
				if len(hits) != len(want) {
					t.Fatalf("%s/shard %d: %d hits, healthy-only engine has %d", fc.name, target, len(hits), len(want))
				}
				for i := range want {
					if hits[i].Global != want[i].Global || hits[i].Score != want[i].Score {
						t.Fatalf("%s/shard %d rank %d: (%d, %v), healthy-only engine has (%d, %v)",
							fc.name, target, i, hits[i].Global, hits[i].Score, want[i].Global, want[i].Score)
					}
				}
			}
		}
		cluster.DisarmFaults()
	}
	// Disarmed: back to full, non-degraded answers.
	for _, q := range queries {
		_, sum, err := cluster.Search(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Agg.Degraded || len(sum.Failed) != 0 {
			t.Fatalf("still degraded after disarm: %+v", sum.Failed)
		}
	}
	settleGoroutines(t, base)
}

// TestChaosBreakerLifecycle drives one shard's breaker through the full
// closed → open → half-open → closed cycle with real queries: repeated
// injected panics trip it, tripped means the shard is shed up front
// (kind "breaker-open", no panic cost paid), and after the backoff a
// healthy probe closes it again.
func TestChaosBreakerLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	cluster, _, queries := chaosCluster(t, rng, 4)
	cluster.SetPolicy(Policy{
		MinShards: 1,
		Breaker:   BreakerConfig{Threshold: 3, Backoff: 30 * time.Millisecond, MaxBackoff: 100 * time.Millisecond},
	})
	const target = 2
	if err := cluster.ArmFault(target, Fault{Panic: true}); err != nil {
		t.Fatal(err)
	}

	// Threshold consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if h := cluster.Health(); h.Shards[target].State != BreakerClosed {
			t.Fatalf("query %d: breaker %v before threshold", i, h.Shards[target].State)
		}
		_, sum, err := cluster.Search(context.Background(), queries[0], 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(sum.Failed) != 1 || sum.Failed[0].Kind != core.FailKindPanic {
			t.Fatalf("query %d: failures %+v", i, sum.Failed)
		}
	}
	h := cluster.Health()
	if h.Shards[target].State != BreakerOpen || h.Shards[target].Trips != 1 {
		t.Fatalf("after threshold failures: %+v", h.Shards[target])
	}
	if h.Available != 3 {
		t.Fatalf("available %d, want 3", h.Available)
	}

	// While open, the shard is shed before the fan-out: the failure kind
	// is breaker-open, not panic.
	_, sum, err := cluster.Search(context.Background(), queries[1], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failed) != 1 || sum.Failed[0].Shard != target || sum.Failed[0].Kind != KindBreakerOpen {
		t.Fatalf("open-breaker query: failures %+v", sum.Failed)
	}
	if !sum.Agg.Degraded || !strings.Contains(sum.Agg.DegradedReason, "unavailable") {
		t.Fatalf("open-breaker query not degraded: %+v", sum.Agg)
	}

	// Shard recovers; past the backoff the next query is the half-open
	// probe, its success closes the breaker, and answers are whole again.
	cluster.DisarmFaults()
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := cluster.Health()
		if h.Shards[target].State == BreakerHalfOpen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never reached half-open: %+v", h.Shards[target])
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, sum, err = cluster.Search(context.Background(), queries[2], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failed) != 0 || sum.Agg.Degraded {
		t.Fatalf("probe query after recovery: %+v", sum.Failed)
	}
	h = cluster.Health()
	if h.Shards[target].State != BreakerClosed || h.Shards[target].Recoveries != 1 {
		t.Fatalf("after successful probe: %+v", h.Shards[target])
	}
	if h.Available != 4 {
		t.Fatalf("available %d, want 4", h.Available)
	}
}

// TestChaosFailClosed: with MinShards = NumShards, any shard loss fails
// the whole query with ErrTooFewSlices instead of serving a partial
// answer — and an open breaker sheds the query before the fan-out.
func TestChaosFailClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cluster, _, queries := chaosCluster(t, rng, 4)
	cluster.SetPolicy(Policy{
		MinShards: 4,
		Breaker:   BreakerConfig{Threshold: 1, Backoff: time.Minute, MaxBackoff: time.Minute},
	})
	if err := cluster.ArmFault(1, Fault{Panic: true}); err != nil {
		t.Fatal(err)
	}
	_, _, err := cluster.Search(context.Background(), queries[0], 10)
	if !errors.Is(err, core.ErrTooFewSlices) {
		t.Fatalf("err %v, want ErrTooFewSlices", err)
	}
	// One failure tripped the breaker (threshold 1): now the query is
	// refused at admission, before any shard does work.
	if cluster.CanServe() {
		t.Fatal("CanServe true with a tripped breaker under MinShards=NumShards")
	}
	_, _, err = cluster.Search(context.Background(), queries[0], 10)
	if !errors.Is(err, core.ErrTooFewSlices) {
		t.Fatalf("admission err %v, want ErrTooFewSlices", err)
	}
}

// TestStatsPhasePanicNoLeak is the regression test for the
// stats-phase-panic goroutine leak: a shard that dies during the
// statistics phase of a contextual query must not strand the other
// shards' workers or wedge the cluster — the survivors answer, and
// repeated queries keep working.
func TestStatsPhasePanicNoLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	cluster, _, _ := chaosCluster(t, rng, 4)
	cluster.SetPolicy(Policy{MinShards: 1, Breaker: BreakerConfig{Threshold: 1 << 20}})
	// A contextual query exercises the two-phase path: stats fan-out,
	// merge, then scoring fan-out.
	q := query.Query{Keywords: []string{"w01"}, Context: []string{"m00"}}
	if !q.IsContextual() {
		t.Fatal("test query must be contextual")
	}
	base := runtime.NumGoroutine()
	if err := cluster.ArmFault(3, Fault{Panic: true}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		_, sum, err := cluster.Search(context.Background(), q, 10)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(sum.Failed) != 1 || sum.Failed[0].Shard != 3 || sum.Failed[0].Kind != core.FailKindPanic {
			t.Fatalf("query %d: failures %+v", i, sum.Failed)
		}
	}
	if !cluster.CanServe() {
		t.Fatal("cluster stopped serving after stats-phase panics")
	}
	cluster.DisarmFaults()
	if _, sum, err := cluster.Search(context.Background(), q, 10); err != nil || sum.Agg.Degraded {
		t.Fatalf("after disarm: err=%v degraded=%v", err, sum.Agg.Degraded)
	}
	settleGoroutines(t, base)
}

// TestChaosConcurrentStorm hammers a faulty cluster from many
// goroutines while faults are armed, re-armed, and disarmed underneath
// it — the invariant is simply no crash, no deadlock, and every
// successful answer internally consistent (sorted, attributed).
func TestChaosConcurrentStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	cluster, _, queries := chaosCluster(t, rng, 4)
	cluster.SetPolicy(Policy{
		MinShards:    1,
		ShardTimeout: 20 * time.Millisecond,
		Breaker:      BreakerConfig{Threshold: 5, Backoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond},
	})
	base := runtime.NumGoroutine()
	stop := make(chan struct{})
	errc := make(chan error, 16)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			defer func() { errc <- nil }()
			lrng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[lrng.Intn(len(queries))]
				hits, sum, err := cluster.Search(context.Background(), q, 10)
				if err != nil && !errors.Is(err, core.ErrTooFewSlices) {
					errc <- fmt.Errorf("goroutine %d query %d: %v", g, i, err)
					return
				}
				for r := 1; r < len(hits); r++ {
					a, b := hits[r-1], hits[r]
					if a.Score < b.Score || (a.Score == b.Score && a.Global > b.Global) {
						errc <- fmt.Errorf("goroutine %d query %d: unsorted hits at rank %d", g, i, r)
						return
					}
				}
				if len(sum.Failed) > 0 && !sum.Agg.Degraded && err == nil {
					errc <- fmt.Errorf("goroutine %d query %d: failures without degraded flag", g, i)
					return
				}
			}
		}()
	}
	fseq := []Fault{{Panic: true}, {Corrupt: true}, {Delay: 100 * time.Millisecond}, {}}
	for round := 0; round < 12; round++ {
		f := fseq[round%len(fseq)]
		if f.active() {
			if err := cluster.ArmFault(round%4, f); err != nil {
				t.Fatal(err)
			}
		} else {
			cluster.DisarmFaults()
		}
		time.Sleep(15 * time.Millisecond)
	}
	cluster.DisarmFaults()
	close(stop)
	for g := 0; g < 8; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	settleGoroutines(t, base)
}
