package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"csrank/internal/core"
	"csrank/internal/fsx"
	"csrank/internal/index"
	"csrank/internal/views"
)

// ManifestName is the cluster manifest file inside a sharded data
// directory; its presence is how tools detect a sharded layout.
const ManifestName = "cluster.json"

// manifestVersion is the manifest schema version this package writes.
const manifestVersion = 1

// Manifest describes a persisted cluster: shard-%03d subdirectories
// each holding an ordinary engine data directory (index.gob in any
// supported format, optional views.gob). Because the partition function
// is pure, the manifest needs only (TotalDocs, Shards, Partition) to
// reconstruct every local→global docID map; ShardDocs is recorded
// redundantly so Open can detect a shard directory that drifted from
// the partition it claims to be.
type Manifest struct {
	Version   int    `json:"version"`
	Shards    int    `json:"shards"`
	TotalDocs int    `json:"total_docs"`
	Partition string `json:"partition"`
	ShardDocs []int  `json:"shard_docs"`
}

// Validate checks internal consistency.
func (m Manifest) Validate() error {
	if m.Version != manifestVersion {
		return fmt.Errorf("shard: manifest version %d, this build reads %d", m.Version, manifestVersion)
	}
	if m.Shards < 1 {
		return fmt.Errorf("shard: manifest declares %d shards", m.Shards)
	}
	if m.Partition != PartitionFNV {
		return fmt.Errorf("shard: unknown partition function %q (this build knows %q)", m.Partition, PartitionFNV)
	}
	if len(m.ShardDocs) != m.Shards {
		return fmt.Errorf("shard: manifest lists %d shard sizes for %d shards", len(m.ShardDocs), m.Shards)
	}
	total := 0
	for _, n := range m.ShardDocs {
		total += n
	}
	if total != m.TotalDocs {
		return fmt.Errorf("shard: shard sizes sum to %d, manifest declares %d documents", total, m.TotalDocs)
	}
	return nil
}

// NewManifest builds the manifest for total documents over n shards
// under the built-in partitioner.
func NewManifest(total, n int) Manifest {
	m := Manifest{Version: manifestVersion, Shards: n, TotalDocs: total, Partition: PartitionFNV}
	for _, g := range GlobalMaps(total, n) {
		m.ShardDocs = append(m.ShardDocs, len(g))
	}
	return m
}

// ShardDir returns shard i's subdirectory under a cluster data dir.
func ShardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// SaveManifest writes the manifest atomically (temp + fsync + rename).
func SaveManifest(dir string, m Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	return fsx.WriteFileAtomic(fsx.OS, filepath.Join(dir, ManifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// LoadManifest reads and validates dir's cluster manifest.
func LoadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("shard: parse %s: %w", ManifestName, err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// IsSharded reports whether dir holds a cluster manifest.
func IsSharded(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, ManifestName))
	return err == nil
}

// Save persists the cluster under dir: one engine data directory per
// shard (shard-%03d/index.gob + views.gob) plus the manifest. mapped
// selects the format-v4 paged index layout (mmap-ready, the right
// choice when N shards must not multiply resident heap); otherwise the
// framed format-v3 snapshot is written. Only clusters whose docID maps
// match the built-in partitioner can be persisted — the manifest
// records no explicit maps, so anything else could not be reopened.
func (c *Cluster) Save(dir string, mapped bool) error {
	top := c.state.Load()
	m := NewManifest(top.total, len(c.shards))
	for i, g := range GlobalMaps(top.total, len(c.shards)) {
		if len(g) != len(top.globals[i]) {
			return fmt.Errorf("shard: cluster partition is not %s; cannot persist", PartitionFNV)
		}
		for j := range g {
			if g[j] != top.globals[i][j] {
				return fmt.Errorf("shard: cluster partition is not %s; cannot persist", PartitionFNV)
			}
		}
	}
	for i := range c.shards {
		eng, _ := c.shards[i].Snapshot()
		sd := ShardDir(dir, i)
		if err := os.MkdirAll(sd, 0o755); err != nil {
			return err
		}
		save := eng.Index().SaveFile
		if mapped {
			save = eng.Index().SaveMapped
		}
		if err := save(filepath.Join(sd, "index.gob")); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if cat := eng.Catalog(); cat != nil {
			if err := cat.SaveFile(filepath.Join(sd, "views.gob")); err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
		}
	}
	return SaveManifest(dir, m)
}

// Open loads a persisted cluster: the manifest, then every shard's
// index (any supported format — a format-v4 paged index maps its
// postings lazily, so N shards do not multiply resident heap) and
// optional view catalog, each behind an engine built with opts. A
// shard whose document count disagrees with the manifest fails the
// open — serving a drifted partition would silently corrupt rankings.
func Open(dir string, opts core.Options) (*Cluster, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	globals := GlobalMaps(m.TotalDocs, m.Shards)
	engines := make([]*core.Engine, m.Shards)
	for i := 0; i < m.Shards; i++ {
		sd := ShardDir(dir, i)
		ix, err := index.LoadFile(filepath.Join(sd, "index.gob"))
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if ix.NumDocs() != m.ShardDocs[i] {
			return nil, fmt.Errorf("shard %d: index holds %d documents, manifest says %d", i, ix.NumDocs(), m.ShardDocs[i])
		}
		cat, err := views.LoadFile(filepath.Join(sd, "views.gob"))
		if err != nil {
			cat = nil // view-less shard
		}
		engines[i] = core.New(ix, cat, opts)
	}
	return NewCluster(engines, globals)
}
