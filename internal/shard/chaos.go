package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"csrank/internal/core"
	"csrank/internal/postings"
)

// Fault injection. The partial-results machinery (isolation, breakers,
// quarantine) only earns trust if it can be exercised deliberately:
// chaos faults are armed per shard and fire inside the slice worker —
// behind the same recovery boundary that isolates real failures — so an
// injected panic or corrupt-block read takes exactly the path a real one
// would. Production clusters arm nothing and pay one nil-map check per
// query.

// Fault describes the misbehavior injected into one shard's query
// execution. Fields combine: a Delay with a Panic stalls, then crashes.
type Fault struct {
	// Delay stalls each phase's start by this long (respecting the
	// per-shard timeout's context, so a large delay manifests as a
	// timeout — the way a seized disk would).
	Delay time.Duration
	// Panic crashes the slice worker at phase start with a generic panic.
	Panic bool
	// Corrupt panics with a *postings.BlockCorruptError, simulating a
	// corrupt block escaping a strict decode path.
	Corrupt bool
}

func (f Fault) active() bool { return f.Delay > 0 || f.Panic || f.Corrupt }

// chaosRegistry holds the armed faults, keyed by shard.
type chaosRegistry struct {
	mu     sync.Mutex
	faults map[int]Fault
}

func (r *chaosRegistry) arm(shard int, f Fault) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.faults == nil {
		r.faults = make(map[int]Fault)
	}
	if f.active() {
		r.faults[shard] = f
	} else {
		delete(r.faults, shard)
	}
}

func (r *chaosRegistry) disarmAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.faults = nil
}

// get returns the fault armed for shard (zero Fault when none).
func (r *chaosRegistry) get(shard int) Fault {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.faults[shard]
}

// armed reports whether any fault is armed.
func (r *chaosRegistry) armed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.faults) > 0
}

// hook builds the core.SliceHook injecting shard's armed fault, or nil
// when the shard is clean. The fault is re-read per phase so disarming
// takes effect mid-query.
func (r *chaosRegistry) hook(shard int) core.SliceHook {
	if !r.get(shard).active() {
		return nil
	}
	return func(ctx context.Context, phase string) {
		f := r.get(shard)
		if f.Delay > 0 {
			select {
			case <-time.After(f.Delay):
			case <-ctx.Done():
				// The per-shard timeout (or the caller) fired mid-stall; the
				// engine call below will observe the dead context.
			}
		}
		if f.Corrupt {
			panic(&postings.BlockCorruptError{Detail: fmt.Sprintf("chaos: injected corrupt block on shard %d (%s phase)", shard, phase)})
		}
		if f.Panic {
			panic(fmt.Sprintf("chaos: injected panic on shard %d (%s phase)", shard, phase))
		}
	}
}

// ArmFault injects f into shard i's query execution until disarmed (a
// zero Fault disarms just that shard). Test and chaos-drill seam; never
// armed in production serving.
func (c *Cluster) ArmFault(i int, f Fault) error {
	if i < 0 || i >= len(c.shards) {
		return fmt.Errorf("shard: no shard %d in a %d-shard cluster", i, len(c.shards))
	}
	c.chaos.arm(i, f)
	return nil
}

// DisarmFaults removes every armed fault.
func (c *Cluster) DisarmFaults() { c.chaos.disarmAll() }
