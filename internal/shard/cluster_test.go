package shard

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"csrank/internal/analysis"
	"csrank/internal/core"
	"csrank/internal/index"
	"csrank/internal/query"
	"csrank/internal/views"
	"csrank/internal/widetable"
)

// randomDocs generates a random collection in the builders' global
// docID numbering (slice position), with mesh predicates and content
// words engineered so contexts and conjunctions are non-trivial.
func randomDocs(rng *rand.Rand, nDocs, nMesh, nWords int) (docs []index.Document, meshTerms, words []string) {
	meshTerms = make([]string, nMesh)
	for i := range meshTerms {
		meshTerms[i] = fmt.Sprintf("m%02d", i)
	}
	words = make([]string, nWords)
	for i := range words {
		words[i] = fmt.Sprintf("w%02d", i)
	}
	docs = make([]index.Document, nDocs)
	for d := range docs {
		var mesh, content []string
		for _, m := range meshTerms {
			if rng.Float64() < 0.3 {
				mesh = append(mesh, m)
			}
		}
		for _, w := range words {
			for k := rng.Intn(4); k > 0; k-- {
				content = append(content, w)
			}
		}
		if len(content) == 0 {
			content = append(content, "pad")
		}
		docs[d] = index.Document{Fields: map[string]string{
			"title":   fmt.Sprintf("doc-%d", d),
			"content": strings.Join(content, " "),
			"mesh":    strings.Join(mesh, " "),
		}}
	}
	return docs, meshTerms, words
}

func testSchema() index.Schema {
	return index.Schema{
		Fields: []index.FieldSpec{
			{Name: "title", Analyzer: analysis.Keyword(), Stored: true},
			{Name: "content", Analyzer: analysis.Keyword()},
			{Name: "mesh", Analyzer: analysis.Keyword()},
		},
		PredicateField: "mesh",
		ContentField:   "content",
	}
}

func buildIndex(t *testing.T, docs []index.Document, segSize int) *index.Index {
	t.Helper()
	ix, err := index.BuildFrom(testSchema(), segSize, docs)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func randomQuery(rng *rand.Rand, meshTerms, words []string) query.Query {
	var q query.Query
	for i := 0; i < 1+rng.Intn(2); i++ {
		q.Keywords = append(q.Keywords, words[rng.Intn(len(words))])
	}
	if rng.Float64() < 0.7 {
		for i := 0; i < 1+rng.Intn(2); i++ {
			q.Context = append(q.Context, meshTerms[rng.Intn(len(meshTerms))])
		}
	}
	return q
}

// shardCatalog materializes one random view per shard so the partial
// statistics of some shards come from views while others fall back.
func shardCatalog(t *testing.T, rng *rand.Rand, ix *index.Index, meshTerms, words []string) *views.Catalog {
	t.Helper()
	if ix.NumDocs() == 0 {
		return nil
	}
	kn := 2 + rng.Intn(3)
	perm := rng.Perm(len(meshTerms))
	key := make([]string, kn)
	for j := range key {
		key[j] = meshTerms[perm[j]]
	}
	tracked := words[:rng.Intn(len(words)+1)]
	v, err := views.Materialize(widetable.FromIndex(ix, words), key, tracked)
	if err != nil {
		t.Fatal(err)
	}
	return views.NewCatalog([]*views.View{v}, 4, 1<<20)
}

// TestShardedBitIdenticalToSingleEngine is the acceptance property
// test: for random corpora and queries, the sharded top-k — across
// shard counts 1/2/4/8, pruning on/off, parallelism 1/2/4, shards with
// and without view catalogs — is bit-identical to the single-engine
// run: same documents, same score bits, same tie-break order.
func TestShardedBitIdenticalToSingleEngine(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		rng := rand.New(rand.NewSource(int64(61 + trial*17)))
		docs, meshTerms, words := randomDocs(rng, 250+rng.Intn(150), 8, 8)
		fullIx := buildIndex(t, docs, 1+rng.Intn(64))

		for _, nShards := range []int{1, 2, 4, 8} {
			parts, globals, err := Split(docs, nShards)
			if err != nil {
				t.Fatal(err)
			}
			shardIxs := make([]*index.Index, nShards)
			cats := make([]*views.Catalog, nShards)
			for i := range parts {
				shardIxs[i] = buildIndex(t, parts[i], 1+rng.Intn(64))
				if rng.Float64() < 0.5 {
					cats[i] = shardCatalog(t, rng, shardIxs[i], meshTerms, words)
				}
			}
			queries := make([]query.Query, 8)
			for i := range queries {
				queries[i] = randomQuery(rng, meshTerms, words)
			}
			for _, pruning := range []bool{false, true} {
				for _, par := range []int{1, 2, 4} {
					opts := core.Options{Pruning: pruning, Parallelism: par}
					single := core.New(fullIx, nil, opts)
					engines := make([]*core.Engine, nShards)
					for i := range engines {
						engines[i] = core.New(shardIxs[i], cats[i], opts)
					}
					cluster, err := NewCluster(engines, globals)
					if err != nil {
						t.Fatal(err)
					}
					for _, q := range queries {
						for _, k := range []int{0, 3, 25} {
							want, _, err := single.SearchCtx(context.Background(), q, k)
							if err != nil {
								t.Fatal(err)
							}
							got, sum, err := cluster.Search(context.Background(), q, k)
							if err != nil {
								t.Fatal(err)
							}
							if len(got) != len(want) {
								t.Fatalf("shards=%d pruning=%v par=%d q=%v k=%d: %d hits, want %d",
									nShards, pruning, par, q, k, len(got), len(want))
							}
							for i := range want {
								if got[i].Global != want[i].DocID || got[i].Score != want[i].Score {
									t.Fatalf("shards=%d pruning=%v par=%d q=%v k=%d rank %d: (%d, %v), want (%d, %v)",
										nShards, pruning, par, q, k, i,
										got[i].Global, got[i].Score, want[i].DocID, want[i].Score)
								}
								if s := ShardOf(got[i].Global, nShards); s != got[i].Shard {
									t.Fatalf("hit claims shard %d, partitioner says %d", got[i].Shard, s)
								}
							}
							if q.IsContextual() && len(sum.PerShard) != nShards {
								t.Fatalf("expected %d per-shard reports, got %d", nShards, len(sum.PerShard))
							}
						}
					}
				}
			}
		}
	}
}

// TestClusterContextSizeAggregation: the merged ContextSize must equal
// the single engine's |D_P| (partial counts over disjoint subsets).
func TestClusterContextSizeAggregation(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	docs, meshTerms, words := randomDocs(rng, 300, 6, 6)
	fullIx := buildIndex(t, docs, 16)
	single := core.New(fullIx, nil, core.Options{})

	parts, globals, err := Split(docs, 4)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*core.Engine, 4)
	for i := range engines {
		engines[i] = core.New(buildIndex(t, parts[i], 16), nil, core.Options{})
	}
	cluster, err := NewCluster(engines, globals)
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{Keywords: []string{words[0]}, Context: meshTerms[:2]}
	_, wantSt, err := single.SearchCtx(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	_, sum, err := cluster.Search(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Agg.ContextSize != wantSt.ContextSize {
		t.Fatalf("merged ContextSize %d, want %d", sum.Agg.ContextSize, wantSt.ContextSize)
	}
	if sum.Agg.ResultSize != wantSt.ResultSize {
		t.Fatalf("merged ResultSize %d, want %d", sum.Agg.ResultSize, wantSt.ResultSize)
	}
}

// TestNewClusterValidation: the partition invariants the merge rests on
// are enforced at construction.
func TestNewClusterValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	docs, _, _ := randomDocs(rng, 50, 4, 4)
	ix := buildIndex(t, docs, 16)
	eng := core.New(ix, nil, core.Options{})

	if _, err := NewCluster(nil, nil); err == nil {
		t.Fatal("empty cluster accepted")
	}
	// Wrong document count.
	bad := GlobalMaps(49, 1)
	if _, err := NewCluster([]*core.Engine{eng}, bad); err == nil {
		t.Fatal("docID map shorter than engine accepted")
	}
	// Not strictly increasing.
	g := GlobalMaps(50, 1)
	g[0][3], g[0][4] = g[0][4], g[0][3]
	if _, err := NewCluster([]*core.Engine{eng}, g); err == nil {
		t.Fatal("non-monotone docID map accepted")
	}
	// Duplicate global across shards.
	parts, globals, err := Split(docs, 2)
	if err != nil {
		t.Fatal(err)
	}
	e0 := core.New(buildIndex(t, parts[0], 16), nil, core.Options{})
	e1 := core.New(buildIndex(t, parts[1], 16), nil, core.Options{})
	globals[1][0] = globals[0][0]
	// Restore monotonicity of shard 1 if broken by the overwrite.
	if len(globals[1]) > 1 && globals[1][0] >= globals[1][1] {
		globals[1][1] = globals[1][0] + 1
	}
	if _, err := NewCluster([]*core.Engine{e0, e1}, globals); err == nil {
		t.Fatal("overlapping docID maps accepted")
	}
}

// TestLocate: every global docID maps back to its (shard, local) pair,
// and unknown docIDs report !ok.
func TestLocate(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	docs, _, _ := randomDocs(rng, 120, 4, 4)
	parts, globals, err := Split(docs, 3)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*core.Engine, 3)
	for i := range engines {
		engines[i] = core.New(buildIndex(t, parts[i], 16), nil, core.Options{})
	}
	c, err := NewCluster(engines, globals)
	if err != nil {
		t.Fatal(err)
	}
	for g := uint32(0); g < 120; g++ {
		s, local, ok := c.Locate(g)
		if !ok {
			t.Fatalf("docID %d not located", g)
		}
		if want := ShardOf(g, 3); s != want {
			t.Fatalf("docID %d located on shard %d, partitioner says %d", g, s, want)
		}
		if globals[s][local] != g {
			t.Fatalf("docID %d located at local %d of shard %d, which is global %d", g, local, s, globals[s][local])
		}
	}
	if _, _, ok := c.Locate(120); ok {
		t.Fatal("docID outside the collection located")
	}
}

// TestSplitPartition: Split covers every document exactly once with
// strictly increasing local→global maps matching GlobalMaps.
func TestSplitPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	docs, _, _ := randomDocs(rng, 333, 4, 4)
	for _, n := range []int{1, 2, 5, 8} {
		parts, globals, err := Split(docs, n)
		if err != nil {
			t.Fatal(err)
		}
		want := GlobalMaps(len(docs), n)
		seen := make([]bool, len(docs))
		total := 0
		for s := range globals {
			if len(parts[s]) != len(globals[s]) {
				t.Fatalf("n=%d shard %d: %d docs but %d globals", n, s, len(parts[s]), len(globals[s]))
			}
			for j, g := range globals[s] {
				if want[s][j] != g {
					t.Fatalf("n=%d shard %d: globals disagree with GlobalMaps at %d", n, s, j)
				}
				if j > 0 && globals[s][j-1] >= g {
					t.Fatalf("n=%d shard %d: not strictly increasing", n, s)
				}
				if seen[g] {
					t.Fatalf("n=%d: docID %d assigned twice", n, g)
				}
				seen[g] = true
				// The shard really holds that document's content.
				if parts[s][j].Fields["title"] != docs[g].Fields["title"] {
					t.Fatalf("n=%d shard %d local %d: wrong document", n, s, j)
				}
				total++
			}
		}
		if total != len(docs) {
			t.Fatalf("n=%d: %d docs partitioned, want %d", n, total, len(docs))
		}
	}
	if _, _, err := Split(docs, 0); err == nil {
		t.Fatal("Split into 0 shards accepted")
	}
}
