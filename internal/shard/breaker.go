package shard

import (
	"math/rand"
	"sync"
	"time"
)

// Per-shard circuit breakers. A shard that keeps failing — a corrupt
// mmap, a sick disk stalling every read into timeout — should not be
// asked again on every query: each attempt burns the per-shard timeout
// (the cluster's tail latency) to learn what the last attempt already
// learned. The breaker converts repeated failure into fast local
// knowledge: after Threshold consecutive failures the shard is *open*
// (excluded from fan-out up front, at zero cost), and after a jittered
// backoff a single *half-open* probe query tests recovery — success
// closes the breaker, failure re-opens it with doubled backoff.

// BreakerState is a breaker's position in the closed → open → half-open
// cycle.
type BreakerState string

const (
	// BreakerClosed: healthy; requests flow.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: tripped; requests are shed until the backoff expires.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: backoff expired; exactly one probe request is in
	// flight to test recovery.
	BreakerHalfOpen BreakerState = "half-open"
)

// BreakerConfig tunes a Breaker. The zero value selects the defaults.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the breaker.
	// ≤ 0 selects 3.
	Threshold int
	// Backoff is the first open interval; each consecutive re-open
	// doubles it. ≤ 0 selects 500ms.
	Backoff time.Duration
	// MaxBackoff caps the doubling. ≤ 0 selects 30s.
	MaxBackoff time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 500 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.MaxBackoff < c.Backoff {
		c.MaxBackoff = c.Backoff
	}
	return c
}

// Breaker is one shard's circuit breaker. All methods are
// mutex-serialized; the breaker sits on the admission path, where one
// uncontended lock per query per shard is noise.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig

	state       BreakerState
	consecutive int           // consecutive failures while closed
	backoff     time.Duration // next open interval
	openUntil   time.Time     // when open → half-open
	probing     bool          // a half-open probe is in flight
	trips       int64         // closed→open transitions (monotonic)
	recoveries  int64         // half-open→closed transitions (monotonic)
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, state: BreakerClosed, backoff: cfg.Backoff}
}

// Allow reports whether a request may be sent to the shard now, and is
// the mutating half of admission: an open breaker whose backoff has
// expired transitions to half-open here, and a half-open breaker grants
// exactly one probe (concurrent queries see false until the probe's
// Record lands). Every Allow(true) must be paired with one Record.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Before(b.openUntil) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports the outcome of a request Allow admitted. In the closed
// state failures accumulate toward the threshold and any success resets
// the count; in the half-open state the probe's outcome decides — success
// closes the breaker and resets the backoff, failure re-opens it with
// doubled backoff.
func (b *Breaker) Record(ok bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if ok {
			b.consecutive = 0
			return
		}
		b.consecutive++
		if b.consecutive >= b.cfg.Threshold {
			b.open(now)
		}
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			b.state = BreakerClosed
			b.consecutive = 0
			b.backoff = b.cfg.Backoff
			b.recoveries++
			return
		}
		b.backoff *= 2
		if b.backoff > b.cfg.MaxBackoff {
			b.backoff = b.cfg.MaxBackoff
		}
		b.open(now)
	default:
		// A Record can land after the breaker already opened (two queries
		// in flight when the threshold tripped). The shard is already
		// shedding; nothing to learn.
	}
}

// open transitions to the open state for the current backoff interval,
// jittered ±25% so a cluster of breakers tripped by one event does not
// probe in lockstep.
func (b *Breaker) open(now time.Time) {
	b.state = BreakerOpen
	b.probing = false
	b.trips++
	interval := b.backoff
	jitter := time.Duration(rand.Int63n(int64(interval)/2+1)) - interval/4
	b.openUntil = now.Add(interval + jitter)
}

// BreakerSnapshot is a point-in-time view for health reporting.
type BreakerSnapshot struct {
	State               BreakerState
	ConsecutiveFailures int
	Trips               int64
	Recoveries          int64
	// RetryIn is how long until an open breaker will probe (0 otherwise).
	RetryIn time.Duration
}

// Snapshot returns the breaker's current state without mutating it: an
// open breaker past its backoff reports half-open (that is what the next
// Allow would make it), so health endpoints and admission checks see the
// effective state.
func (b *Breaker) Snapshot(now time.Time) BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BreakerSnapshot{
		State:               b.state,
		ConsecutiveFailures: b.consecutive,
		Trips:               b.trips,
		Recoveries:          b.recoveries,
	}
	if b.state == BreakerOpen {
		if retry := b.openUntil.Sub(now); retry > 0 {
			s.RetryIn = retry
		} else {
			s.State = BreakerHalfOpen
		}
	}
	return s
}

// Available reports, without mutating state, whether Allow would admit a
// request now — closed, or due for a half-open probe. Admission control
// counts Available shards against the MinShards policy before paying for
// a fan-out.
func (b *Breaker) Available(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return !now.Before(b.openUntil)
	default:
		return !b.probing
	}
}
