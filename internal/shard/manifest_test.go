package shard

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"csrank/internal/core"
	"csrank/internal/query"
)

// TestSaveOpenRoundTrip persists a cluster (both index formats) and
// reopens it; rankings must be bit-identical to the in-memory cluster
// and the manifest must detect drifted shard directories.
func TestSaveOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	docs, meshTerms, words := randomDocs(rng, 200, 6, 6)
	parts, globals, err := Split(docs, 3)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*core.Engine, 3)
	for i := range engines {
		ix := buildIndex(t, parts[i], 16)
		engines[i] = core.New(ix, shardCatalog(t, rng, ix, meshTerms, words), core.Options{})
	}
	mem, err := NewCluster(engines, globals)
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{Keywords: []string{words[0]}, Context: meshTerms[:1]}
	want, _, err := mem.Search(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}

	for _, mapped := range []bool{false, true} {
		dir := t.TempDir()
		if err := mem.Save(dir, mapped); err != nil {
			t.Fatal(err)
		}
		if !IsSharded(dir) {
			t.Fatal("saved directory not detected as sharded")
		}
		got, err := Open(dir, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.NumShards() != 3 || got.NumDocs() != len(docs) {
			t.Fatalf("reopened cluster %d shards / %d docs, want 3 / %d", got.NumShards(), got.NumDocs(), len(docs))
		}
		hits, _, err := got.Search(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != len(want) {
			t.Fatalf("mapped=%v: %d hits, want %d", mapped, len(hits), len(want))
		}
		for i := range want {
			if hits[i].Global != want[i].Global || hits[i].Score != want[i].Score {
				t.Fatalf("mapped=%v rank %d: (%d, %v), want (%d, %v)",
					mapped, i, hits[i].Global, hits[i].Score, want[i].Global, want[i].Score)
			}
		}
	}
}

// TestOpenRejectsDrift: a shard directory whose index disagrees with
// the manifest's partition must fail to open.
func TestOpenRejectsDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	docs, _, _ := randomDocs(rng, 120, 4, 4)
	parts, globals, err := Split(docs, 2)
	if err != nil {
		t.Fatal(err)
	}
	engines := []*core.Engine{
		core.New(buildIndex(t, parts[0], 16), nil, core.Options{}),
		core.New(buildIndex(t, parts[1], 16), nil, core.Options{}),
	}
	c, err := NewCluster(engines, globals)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := c.Save(dir, false); err != nil {
		t.Fatal(err)
	}
	// Overwrite shard 1's index with shard 0's (wrong partition).
	src, err := os.ReadFile(filepath.Join(ShardDir(dir, 0), "index.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ShardDir(dir, 1), "index.gob"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, core.Options{}); err == nil && len(parts[0]) != len(parts[1]) {
		t.Fatal("drifted shard directory opened")
	}
}

// TestManifestValidate covers the manifest's self-checks.
func TestManifestValidate(t *testing.T) {
	good := NewManifest(100, 4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"bad version", func(m *Manifest) { m.Version = 99 }},
		{"zero shards", func(m *Manifest) { m.Shards = 0 }},
		{"unknown partition", func(m *Manifest) { m.Partition = "mod" }},
		{"size mismatch", func(m *Manifest) { m.ShardDocs[0]++ }},
		{"wrong count", func(m *Manifest) { m.ShardDocs = m.ShardDocs[:2] }},
	}
	for _, tc := range cases {
		m := NewManifest(100, 4)
		m.ShardDocs = append([]int(nil), m.ShardDocs...)
		tc.mutate(&m)
		if err := m.Validate(); err == nil {
			t.Fatalf("%s: validated", tc.name)
		}
	}
}
