// Package shard implements document-partitioned scatter-gather query
// serving: a Cluster hash-partitions one logical collection across N
// independent engines, fans each query out concurrently in two phases
// (partial statistics, then scoring under the merged global
// statistics), and merges the per-shard top-k under the engine's strict
// (score, docID) total order. The merged ranking — scores, order and
// tie-breaks — is provably bit-identical to a single engine holding the
// whole collection (see core/scatter.go for the statistics argument and
// core.MergeResults for the merge argument), so sharding is purely a
// latency/scale lever, never a ranking change.
package shard

import (
	"fmt"

	"csrank/internal/index"
)

// PartitionFNV names the built-in partition function: FNV-1a over the
// little-endian bytes of the 32-bit global docID. It is the only
// partitioner this package writes into manifests; the name is recorded
// so a future scheme can be introduced without ambiguity.
const PartitionFNV = "fnv1a/doc32"

// ShardOf assigns global document g to one of n shards by FNV-1a
// hashing its 32-bit little-endian representation. The function is a
// pure function of (g, n), so the local→global docID maps of a cluster
// never need persisting — GlobalMaps recomputes them from the two
// numbers a manifest records.
func ShardOf(g uint32, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < 32; i += 8 {
		h ^= uint32(byte(g >> i))
		h *= prime32
	}
	return int(h % uint32(n))
}

// Split partitions docs — global docID = slice position, the same
// insertion-order numbering every builder uses — into n per-shard
// document sets plus the local→global docID maps. Within a shard,
// locals are assigned in ascending global order, so the local→global
// map is strictly increasing: a shard's internal (score, local docID)
// tie-break order coincides with the global (score, global docID)
// order, which is what makes per-shard top-k truncation rank-safe.
func Split(docs []index.Document, n int) (parts [][]index.Document, globals [][]uint32, err error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("shard: cannot split into %d shards", n)
	}
	parts = make([][]index.Document, n)
	globals = GlobalMaps(len(docs), n)
	for i := range parts {
		parts[i] = make([]index.Document, 0, len(globals[i]))
	}
	for g, d := range docs {
		s := ShardOf(uint32(g), n)
		parts[s] = append(parts[s], d)
	}
	return parts, globals, nil
}

// GlobalMaps recomputes the local→global docID maps for total documents
// hash-partitioned over n shards: globals[s][local] is the global docID
// of shard s's local document. Each map is strictly increasing and the
// maps partition [0, total).
func GlobalMaps(total, n int) [][]uint32 {
	globals := make([][]uint32, n)
	for g := 0; g < total; g++ {
		s := ShardOf(uint32(g), n)
		globals[s] = append(globals[s], uint32(g))
	}
	return globals
}
