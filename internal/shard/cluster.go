package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"csrank/internal/core"
	"csrank/internal/query"
	"csrank/internal/ranking"
)

// Cluster is a document-partitioned set of engines serving one logical
// collection. Each shard sits behind a core.Serving, so catalog/index
// generation rollover (recovery, background rebuilds) swaps one shard
// at a time with zero downtime — in-flight queries finish on the
// engine snapshot they already fanned out to. The local→global docID
// maps are fixed at construction: a swapped-in engine must hold the
// same document partition (same count, same local numbering), which is
// exactly what a rebuilt or recovered index of the same shard does.
type Cluster struct {
	shards  []*core.Serving
	globals [][]uint32
	total   int
}

// Hit is one merged result: the shard that produced it, the document's
// docID in that shard's engine (for stored-field lookup) and in the
// logical collection (the tie-break key), and its score.
type Hit struct {
	Shard  int
	Local  uint32
	Global uint32
	Score  float64
}

// Summary reports what one scatter-gather execution did.
type Summary struct {
	// Agg is the cluster-level aggregation (core.MergeStats) of every
	// shard's statistics-phase and scoring-phase reports.
	Agg core.ExecStats
	// PerShard holds each shard's merged (stats + scoring) report.
	PerShard []core.ExecStats
	// Generations are the serving generations the query ran against,
	// one per shard, captured as one snapshot per shard at fan-out.
	Generations []uint64
	// Engines are the engine snapshots the query ran on, one per shard;
	// callers use them to resolve stored fields for the returned hits
	// (the serving pointer may have swapped since).
	Engines []*core.Engine
	// Elapsed is the cluster-level wall clock: fan-out, both phases,
	// merge.
	Elapsed time.Duration
}

// NewCluster assembles a cluster from per-shard engines and their
// local→global docID maps (as produced by Split or GlobalMaps). It
// validates the partition invariants the rank-safe merge rests on:
// every map strictly increasing (local order = global order), maps
// pairwise disjoint, and each map's length equal to its engine's
// document count. Shard generations start at 0.
func NewCluster(engines []*core.Engine, globals [][]uint32) (*Cluster, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("shard: cluster needs at least one engine")
	}
	if len(engines) != len(globals) {
		return nil, fmt.Errorf("shard: %d engines but %d docID maps", len(engines), len(globals))
	}
	total := 0
	for i, g := range globals {
		if n := engines[i].Index().NumDocs(); n != len(g) {
			return nil, fmt.Errorf("shard %d: engine holds %d documents but the docID map has %d", i, n, len(g))
		}
		for j := 1; j < len(g); j++ {
			if g[j] <= g[j-1] {
				return nil, fmt.Errorf("shard %d: docID map not strictly increasing at local %d", i, j)
			}
		}
		total += len(g)
	}
	// Disjointness across shards: the concatenation sorted must be
	// strictly increasing. O(total log total) once at construction.
	all := make([]uint32, 0, total)
	for _, g := range globals {
		all = append(all, g...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			return nil, fmt.Errorf("shard: global docID %d assigned to two shards", all[i])
		}
	}
	c := &Cluster{globals: globals, total: total}
	for _, e := range engines {
		c.shards = append(c.shards, core.NewServing(e, 0))
	}
	return c, nil
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// NumDocs returns the logical collection size.
func (c *Cluster) NumDocs() int { return c.total }

// Engine returns shard i's current engine and generation.
func (c *Cluster) Engine(i int) (*core.Engine, uint64) { return c.shards[i].Snapshot() }

// Generations returns each shard's current serving generation.
func (c *Cluster) Generations() []uint64 {
	gens := make([]uint64, len(c.shards))
	for i, s := range c.shards {
		gens[i] = s.Generation()
	}
	return gens
}

// Swap atomically replaces shard i's engine, returning the previous
// engine and generation. The replacement must hold exactly the same
// document partition — same count and local numbering — which a rebuilt
// or recovered index of the shard does by construction; the count is
// validated here, the numbering is the builder's insertion-order
// contract. In-flight queries finish on the engine they already hold.
func (c *Cluster) Swap(i int, eng *core.Engine, gen uint64) (*core.Engine, uint64, error) {
	if i < 0 || i >= len(c.shards) {
		return nil, 0, fmt.Errorf("shard: no shard %d in a %d-shard cluster", i, len(c.shards))
	}
	if n := eng.Index().NumDocs(); n != len(c.globals[i]) {
		return nil, 0, fmt.Errorf("shard %d: replacement engine holds %d documents, want %d", i, n, len(c.globals[i]))
	}
	old, oldGen := c.shards[i].Swap(eng, gen)
	return old, oldGen, nil
}

// Locate maps a global docID back to (shard, local). ok is false when
// the docID belongs to no shard.
func (c *Cluster) Locate(global uint32) (shard int, local uint32, ok bool) {
	for s, g := range c.globals {
		j := sort.Search(len(g), func(i int) bool { return g[i] >= global })
		if j < len(g) && g[j] == global {
			return s, uint32(j), true
		}
	}
	return 0, 0, false
}

// Search evaluates q over the whole cluster and returns the global top
// k (everything when k ≤ 0), bit-identical — scores, order, tie-breaks
// — to a single engine holding all documents. Execution is two
// concurrent fan-outs over one engine snapshot per shard:
//
//  1. statistics: every shard computes the statistics its documents
//     contribute (views, caches and budgets apply per shard), and the
//     partial integer counts are summed into the union's statistics;
//  2. scoring: every shard ranks its documents under the merged global
//     statistics and returns its local top k, which is rank-safe to
//     truncate because shard-local tie-break order equals global order.
//
// A deadline expiry inside any shard degrades that shard's report (and
// therefore the merged Summary) instead of failing, matching the
// engine's boundedness contract; cancellation or a shard panic fails
// the query with the first error in shard order.
func (c *Cluster) Search(ctx context.Context, q query.Query, k int) ([]Hit, Summary, error) {
	start := time.Now()
	n := len(c.shards)
	sum := Summary{
		PerShard:    make([]core.ExecStats, n),
		Generations: make([]uint64, n),
		Engines:     make([]*core.Engine, n),
	}
	for i, s := range c.shards {
		sum.Engines[i], sum.Generations[i] = s.Snapshot()
	}

	// Phase 1: partial statistics.
	partCS := make([]ranking.CollectionStats, n)
	statsSt := make([]core.ExecStats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			partCS[i], statsSt[i], errs[i] = sum.Engines[i].StatsFor(ctx, q)
		}(i)
	}
	partCS[0], statsSt[0], errs[0] = sum.Engines[0].StatsFor(ctx, q)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, sum, err
		}
	}
	cs := core.MergeCollectionStats(partCS...)

	// Phase 2: scoring under the merged statistics.
	results := make([][]core.Result, n)
	scoreSt := make([]core.ExecStats, n)
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], scoreSt[i], errs[i] = sum.Engines[i].SearchWithStats(ctx, q, k, cs)
		}(i)
	}
	results[0], scoreSt[0], errs[0] = sum.Engines[0].SearchWithStats(ctx, q, k, cs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, sum, err
		}
	}

	// Rank-safe merge in the global docID space.
	lists := make([][]core.Result, n)
	for i, rs := range results {
		mapped := make([]core.Result, len(rs))
		for j, r := range rs {
			mapped[j] = core.Result{DocID: c.globals[i][r.DocID], Score: r.Score}
		}
		lists[i] = mapped
	}
	merged := core.MergeResults(k, lists...)
	hits := make([]Hit, len(merged))
	for i, r := range merged {
		s, local, ok := c.Locate(r.DocID)
		if !ok {
			return nil, sum, fmt.Errorf("shard: merged docID %d belongs to no shard", r.DocID)
		}
		hits[i] = Hit{Shard: s, Local: local, Global: r.DocID, Score: r.Score}
	}

	for i := range sum.PerShard {
		sum.PerShard[i] = core.MergeStats(statsSt[i], scoreSt[i])
	}
	sum.Agg = core.MergeStats(sum.PerShard...)
	sum.Elapsed = time.Since(start)
	return hits, sum, nil
}
