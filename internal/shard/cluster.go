package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"csrank/internal/core"
	"csrank/internal/query"
)

// ErrStaleGeneration marks Swap/SwapExtend rejections of a generation
// that does not advance the shard's current one. Generations are the
// audit trail of what each shard served; accepting a stale or duplicate
// gen would silently regress Generations() and confuse swap-under-load
// accounting, so non-monotonic swaps are refused with this typed error.
var ErrStaleGeneration = errors.New("shard: swap generation not greater than the shard's current generation")

// Cluster is a document-partitioned set of engines serving one logical
// collection. Each shard sits behind a core.Serving, so catalog/index
// generation rollover (recovery, background rebuilds, ingestion
// compaction) swaps one shard at a time with zero downtime — in-flight
// queries finish on the engine snapshot they already fanned out to.
//
// The local→global docID maps live behind one atomic pointer so
// compaction can grow a shard: SwapExtend publishes extended maps
// *before* the grown engine, and maps only ever grow by appending
// globals larger than every existing entry, so any interleaving a
// concurrent query observes — old engine with new maps (the extension
// is an unused suffix) or matched pairs — maps every result it can
// produce correctly. Plain Swap keeps the PR 7 contract: the
// replacement must hold the same partition (same count, same local
// numbering).
type Cluster struct {
	shards []*core.Serving
	state  atomic.Pointer[topology]
	mu     sync.Mutex // serializes Swap/SwapExtend

	polMu    sync.Mutex // guards policy and breakers
	policy   Policy
	breakers []*Breaker

	chaos chaosRegistry
}

// Policy is the cluster's failure policy: how much of the collection may
// be missing before a partial answer is worse than no answer, and how
// long one shard may stall the fan-out.
type Policy struct {
	// MinShards is the fewest healthy shards for which a partial answer
	// is still served; with fewer the query fails with
	// core.ErrTooFewSlices (fail-closed). ≤ 0 means 1 — answer as long
	// as any shard survives. NumShards means fail-fast on any loss.
	MinShards int
	// ShardTimeout bounds each shard's work per phase; an expired shard
	// is dropped from the query and the survivors answer. 0 disables the
	// per-shard timeout (the engine-level deadline still degrades
	// in-shard).
	ShardTimeout time.Duration
	// Breaker tunes the per-shard circuit breakers (zero value =
	// defaults).
	Breaker BreakerConfig
}

// ShardError attributes the loss of one shard in a degraded execution.
type ShardError struct {
	// Shard is the cluster shard index.
	Shard int `json:"shard"`
	// Kind is the failure class: "corruption", "panic", "timeout",
	// "error", or "breaker-open" (shed up front, never attempted).
	Kind string `json:"kind"`
	// Err is the underlying error text.
	Err string `json:"error"`
}

// KindBreakerOpen marks a shard shed by its open circuit breaker before
// the fan-out, in addition to core's failure kinds.
const KindBreakerOpen = "breaker-open"

// SetPolicy installs a failure policy, recreating the per-shard circuit
// breakers with pol.Breaker's settings (breaker state is reset). Install
// policy before serving; swapping it under load loses breaker history
// but is otherwise safe — in-flight queries finish against the breakers
// they admitted through.
func (c *Cluster) SetPolicy(pol Policy) {
	breakers := make([]*Breaker, len(c.shards))
	for i := range breakers {
		breakers[i] = NewBreaker(pol.Breaker)
	}
	c.polMu.Lock()
	defer c.polMu.Unlock()
	c.policy = pol
	c.breakers = breakers
}

// Policy returns the current failure policy.
func (c *Cluster) Policy() Policy {
	c.polMu.Lock()
	defer c.polMu.Unlock()
	return c.policy
}

func (c *Cluster) breakerSnapshot() []*Breaker {
	c.polMu.Lock()
	defer c.polMu.Unlock()
	return c.breakers
}

// topology is the immutable docID-mapping snapshot queries read once
// per request.
type topology struct {
	globals [][]uint32
	total   int
}

// Hit is one merged result: the shard that produced it, the document's
// docID in that shard's engine (for stored-field lookup) and in the
// logical collection (the tie-break key), and its score.
type Hit struct {
	Shard  int
	Local  uint32
	Global uint32
	Score  float64
}

// Summary reports what one scatter-gather execution did.
type Summary struct {
	// Agg is the cluster-level aggregation (core.MergeStats) of every
	// shard's statistics-phase and scoring-phase reports.
	Agg core.ExecStats
	// PerShard holds each shard's merged (stats + scoring) report.
	PerShard []core.ExecStats
	// Generations are the serving generations the query ran against,
	// one per shard, captured as one snapshot per shard at fan-out.
	Generations []uint64
	// Engines are the engine snapshots the query ran on, one per shard;
	// callers use them to resolve stored fields for the returned hits
	// (the serving pointer may have swapped since).
	Engines []*core.Engine
	// Failed attributes every shard that did not contribute to the
	// answer — shed by its breaker or lost to a panic, timeout, or
	// corruption. Non-empty exactly when the answer is partial (and
	// Agg.Degraded is then set).
	Failed []ShardError
	// Elapsed is the cluster-level wall clock: fan-out, both phases,
	// merge.
	Elapsed time.Duration
}

// NewCluster assembles a cluster from per-shard engines and their
// local→global docID maps (as produced by Split or GlobalMaps). It
// validates the partition invariants the rank-safe merge rests on:
// every map strictly increasing (local order = global order), maps
// pairwise disjoint, and each map's length equal to its engine's
// document count. Shard generations start at 0.
func NewCluster(engines []*core.Engine, globals [][]uint32) (*Cluster, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("shard: cluster needs at least one engine")
	}
	if len(engines) != len(globals) {
		return nil, fmt.Errorf("shard: %d engines but %d docID maps", len(engines), len(globals))
	}
	total := 0
	for i, g := range globals {
		if n := engines[i].Index().NumDocs(); n != len(g) {
			return nil, fmt.Errorf("shard %d: engine holds %d documents but the docID map has %d", i, n, len(g))
		}
		for j := 1; j < len(g); j++ {
			if g[j] <= g[j-1] {
				return nil, fmt.Errorf("shard %d: docID map not strictly increasing at local %d", i, j)
			}
		}
		total += len(g)
	}
	// Disjointness across shards: the concatenation sorted must be
	// strictly increasing. O(total log total) once at construction.
	all := make([]uint32, 0, total)
	for _, g := range globals {
		all = append(all, g...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			return nil, fmt.Errorf("shard: global docID %d assigned to two shards", all[i])
		}
	}
	c := &Cluster{}
	c.state.Store(&topology{globals: globals, total: total})
	for _, e := range engines {
		c.shards = append(c.shards, core.NewServing(e, 0))
	}
	c.SetPolicy(Policy{})
	return c, nil
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// NumDocs returns the logical collection size.
func (c *Cluster) NumDocs() int { return c.state.Load().total }

// Engine returns shard i's current engine and generation.
func (c *Cluster) Engine(i int) (*core.Engine, uint64) { return c.shards[i].Snapshot() }

// Globals returns shard i's current local→global docID map. The slice
// is shared with concurrent queries and must not be mutated.
func (c *Cluster) Globals(i int) []uint32 { return c.state.Load().globals[i] }

// Generations returns each shard's current serving generation.
func (c *Cluster) Generations() []uint64 {
	gens := make([]uint64, len(c.shards))
	for i, s := range c.shards {
		gens[i] = s.Generation()
	}
	return gens
}

// Swap atomically replaces shard i's engine, returning the previous
// engine and generation. The replacement must hold exactly the same
// document partition — same count and local numbering — which a rebuilt
// or recovered index of the shard does by construction; the count is
// validated here, the numbering is the builder's insertion-order
// contract. gen must be greater than the shard's current generation
// (ErrStaleGeneration otherwise): generations are an audit trail, and a
// stale or duplicate gen would silently rewind it. In-flight queries
// finish on the engine they already hold.
func (c *Cluster) Swap(i int, eng *core.Engine, gen uint64) (*core.Engine, uint64, error) {
	if i < 0 || i >= len(c.shards) {
		return nil, 0, fmt.Errorf("shard: no shard %d in a %d-shard cluster", i, len(c.shards))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := eng.Index().NumDocs(); n != len(c.state.Load().globals[i]) {
		return nil, 0, fmt.Errorf("shard %d: replacement engine holds %d documents, want %d", i, n, len(c.state.Load().globals[i]))
	}
	if cur := c.shards[i].Generation(); gen <= cur {
		return nil, 0, fmt.Errorf("shard %d: %w (have %d, got %d)", i, ErrStaleGeneration, cur, gen)
	}
	old, oldGen := c.shards[i].Swap(eng, gen)
	return old, oldGen, nil
}

// SwapExtend atomically replaces shard i's engine with one holding a
// *grown* partition — the old documents in their old local order plus
// new documents appended — and publishes the matching extended docID
// map. globals must extend the shard's current map as a strict prefix,
// appended entries must keep the map strictly increasing and belong to
// no other shard, and len(globals) must equal the new engine's document
// count; gen must advance the shard's generation.
// The map is published before the engine, so a concurrent query sees
// either the old engine (the map extension is an unused suffix) or the
// new engine with the map it needs — never a grown engine with a short
// map.
func (c *Cluster) SwapExtend(i int, eng *core.Engine, globals []uint32, gen uint64) (*core.Engine, uint64, error) {
	if i < 0 || i >= len(c.shards) {
		return nil, 0, fmt.Errorf("shard: no shard %d in a %d-shard cluster", i, len(c.shards))
	}
	if n := eng.Index().NumDocs(); n != len(globals) {
		return nil, 0, fmt.Errorf("shard %d: replacement engine holds %d documents but the docID map has %d", i, n, len(globals))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	top := c.state.Load()
	old := top.globals[i]
	if len(globals) < len(old) {
		return nil, 0, fmt.Errorf("shard %d: extended docID map shrinks %d → %d", i, len(old), len(globals))
	}
	for j, g := range old {
		if globals[j] != g {
			return nil, 0, fmt.Errorf("shard %d: extended docID map rewrites local %d (%d → %d)", i, j, g, globals[j])
		}
	}
	// Appended entries: strictly increasing above the shard's own last
	// entry (local order = global order) and absent from every other
	// shard's map (disjointness). The membership check is a binary
	// search per appended entry — compaction extends every shard of the
	// same collection in turn, so a shard's new globals routinely fall
	// below another shard's maximum and a cluster-wide floor would be
	// wrong.
	for j := len(old); j < len(globals); j++ {
		if j > 0 && globals[j] <= globals[j-1] {
			return nil, 0, fmt.Errorf("shard %d: extended docID map not strictly increasing at local %d", i, j)
		}
		for s, g := range top.globals {
			if s == i {
				continue
			}
			at := sort.Search(len(g), func(x int) bool { return g[x] >= globals[j] })
			if at < len(g) && g[at] == globals[j] {
				return nil, 0, fmt.Errorf("shard %d: appended global %d already lives on shard %d", i, globals[j], s)
			}
		}
	}
	if cur := c.shards[i].Generation(); gen <= cur {
		return nil, 0, fmt.Errorf("shard %d: %w (have %d, got %d)", i, ErrStaleGeneration, cur, gen)
	}

	next := &topology{globals: make([][]uint32, len(top.globals)), total: top.total + len(globals) - len(old)}
	copy(next.globals, top.globals)
	next.globals[i] = globals
	c.state.Store(next) // map first, engine second — see the ordering contract above
	oldEng, oldGen := c.shards[i].Swap(eng, gen)
	return oldEng, oldGen, nil
}

// Locate maps a global docID back to (shard, local) in the current
// topology. ok is false when the docID belongs to no shard.
func (c *Cluster) Locate(global uint32) (shard int, local uint32, ok bool) {
	for s, g := range c.state.Load().globals {
		j := sort.Search(len(g), func(i int) bool { return g[i] >= global })
		if j < len(g) && g[j] == global {
			return s, uint32(j), true
		}
	}
	return 0, 0, false
}

// Slices snapshots the cluster as a consistent []core.Slice — one
// engine snapshot and docID map per shard — plus the generations the
// snapshot serves. Engines are snapshotted before the topology is
// loaded; with SwapExtend's publish order (map before engine) that
// guarantees every engine's map is at least as long as the engine
// needs.
func (c *Cluster) Slices() ([]core.Slice, []uint64) {
	n := len(c.shards)
	slices := make([]core.Slice, n)
	gens := make([]uint64, n)
	for i, s := range c.shards {
		slices[i].Eng, gens[i] = s.Snapshot()
	}
	top := c.state.Load()
	for i := range slices {
		slices[i].Globals = top.globals[i]
	}
	return slices, gens
}

// Search evaluates q over the whole cluster and returns the global top
// k (everything when k ≤ 0). With every shard healthy the answer is
// bit-identical — scores, order, tie-breaks — to a single engine
// holding all documents: core.SearchSlicesPartial's two-phase
// scatter-gather over one engine snapshot per shard (partial statistics
// summed exactly into the union's statistics, then per-shard scoring
// under the merged statistics, then a rank-safe merge in the global
// docID space).
//
// Shards are failure domains, not a shared fate: a shard that panics,
// reads a corrupt block, or exceeds Policy.ShardTimeout is dropped from
// the query, and — as long as at least Policy.MinShards survive — the
// rest answer alone, bit-identically to a cluster built over exactly
// the surviving shards, with Summary.Failed attributing each loss and
// Agg.Degraded set. Shards whose circuit breaker is open are shed
// before the fan-out at zero cost; breakers observe every attempted
// shard's outcome. Fewer than MinShards survivors fail the query with
// core.ErrTooFewSlices (fail-closed), and caller cancellation fails it
// with ctx's error. An engine-level deadline expiry still degrades
// in-shard rather than dropping the shard, matching the single-engine
// boundedness contract.
func (c *Cluster) Search(ctx context.Context, q query.Query, k int) ([]Hit, Summary, error) {
	start := time.Now()
	slices, gens := c.Slices()
	n := len(slices)
	pol := c.Policy()
	breakers := c.breakerSnapshot()
	minShards := pol.MinShards
	if minShards < 1 {
		minShards = 1
	}
	if minShards > n {
		minShards = n
	}

	sum := Summary{
		Generations: gens,
		Engines:     make([]*core.Engine, n),
	}
	for i := range slices {
		sum.Engines[i] = slices[i].Eng
	}

	// Admission: shed shards whose breaker is open before paying for any
	// fan-out, and fail closed up front when too few remain.
	now := time.Now()
	include := make([]int, 0, n) // cluster shard index per included slice
	for i := range slices {
		if breakers[i].Allow(now) {
			include = append(include, i)
		} else {
			sum.Failed = append(sum.Failed, ShardError{Shard: i, Kind: KindBreakerOpen, Err: "circuit breaker open: shard is shedding"})
		}
	}
	if len(include) < minShards {
		sum.Elapsed = time.Since(start)
		return nil, sum, fmt.Errorf("%w: %d of %d shards admitted, policy requires %d", core.ErrTooFewSlices, len(include), n, minShards)
	}

	sub := make([]core.Slice, len(include))
	var hooks []core.SliceHook
	armed := c.chaos.armed()
	if armed {
		hooks = make([]core.SliceHook, len(include))
	}
	for j, i := range include {
		sub[j] = slices[i]
		if armed {
			hooks[j] = c.chaos.hook(i)
		}
	}

	sliceHits, per, failures, err := core.SearchSlicesPartial(ctx, sub, q, k, core.SliceOptions{
		MinSlices: minShards,
		Timeout:   pol.ShardTimeout,
		Hooks:     hooks,
	})

	// Feed the breakers: every admitted shard records its outcome. A
	// caller cancellation attributes no failures (it says nothing about
	// shard health), so all record success — which also releases any
	// half-open probe this query consumed.
	lost := make(map[int]bool, len(failures))
	for _, f := range failures {
		lost[f.Slice] = true
		sum.Failed = append(sum.Failed, ShardError{Shard: include[f.Slice], Kind: f.Kind, Err: f.Err.Error()})
	}
	now = time.Now()
	for j, i := range include {
		breakers[i].Record(!lost[j], now)
	}
	if err != nil {
		sum.Elapsed = time.Since(start)
		return nil, sum, err
	}

	// Map slice-space hits and reports back to cluster shard indices.
	hits := make([]Hit, len(sliceHits))
	for i, h := range sliceHits {
		hits[i] = Hit{Shard: include[h.Slice], Local: h.Local, Global: h.Global, Score: h.Score}
	}
	sum.PerShard = make([]core.ExecStats, n)
	for j, i := range include {
		sum.PerShard[i] = per[j]
	}
	sum.Agg = core.MergeStats(per...)
	if len(sum.Failed) > 0 {
		sum.Agg.Degrade(fmt.Sprintf("%d of %d shards unavailable: partial results over %d shards", len(sum.Failed), n, len(include)-len(lost)))
	}
	sum.Elapsed = time.Since(start)
	return hits, sum, nil
}

// ShardHealth is one shard's view in a Health report.
type ShardHealth struct {
	Shard               int
	Generation          uint64
	State               BreakerState
	ConsecutiveFailures int
	Trips               int64
	Recoveries          int64
	RetryIn             time.Duration
}

// Health reports each shard's breaker state and the number of shards
// admission would currently accept queries for.
type Health struct {
	NumShards int
	Available int
	Shards    []ShardHealth
}

// Health snapshots the cluster's serving health without mutating any
// breaker.
func (c *Cluster) Health() Health {
	breakers := c.breakerSnapshot()
	now := time.Now()
	h := Health{NumShards: len(c.shards), Shards: make([]ShardHealth, len(c.shards))}
	for i, b := range breakers {
		s := b.Snapshot(now)
		h.Shards[i] = ShardHealth{
			Shard:               i,
			Generation:          c.shards[i].Generation(),
			State:               s.State,
			ConsecutiveFailures: s.ConsecutiveFailures,
			Trips:               s.Trips,
			Recoveries:          s.Recoveries,
			RetryIn:             s.RetryIn,
		}
		if b.Available(now) {
			h.Available++
		}
	}
	return h
}

// CanServe reports whether admission would currently accept a query:
// at least max(1, Policy.MinShards) shards have an available breaker.
// Cheaper than Health (no per-shard snapshots built), for the serving
// hot path's early shed.
func (c *Cluster) CanServe() bool {
	breakers := c.breakerSnapshot()
	pol := c.Policy()
	min := pol.MinShards
	if min < 1 {
		min = 1
	}
	if min > len(c.shards) {
		min = len(c.shards)
	}
	now := time.Now()
	avail := 0
	for _, b := range breakers {
		if b.Available(now) {
			avail++
			if avail >= min {
				return true
			}
		}
	}
	return false
}

// Quarantined returns the total number of corrupt blocks quarantined
// across every shard's current engine (always 0 for heap-resident
// indexes, which decode strictly at load).
func (c *Cluster) Quarantined() int64 {
	var total int64
	for _, s := range c.shards {
		eng, _ := s.Snapshot()
		total += eng.Index().Quarantined()
	}
	return total
}
