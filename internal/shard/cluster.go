package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"csrank/internal/core"
	"csrank/internal/query"
)

// ErrStaleGeneration marks Swap/SwapExtend rejections of a generation
// that does not advance the shard's current one. Generations are the
// audit trail of what each shard served; accepting a stale or duplicate
// gen would silently regress Generations() and confuse swap-under-load
// accounting, so non-monotonic swaps are refused with this typed error.
var ErrStaleGeneration = errors.New("shard: swap generation not greater than the shard's current generation")

// Cluster is a document-partitioned set of engines serving one logical
// collection. Each shard sits behind a core.Serving, so catalog/index
// generation rollover (recovery, background rebuilds, ingestion
// compaction) swaps one shard at a time with zero downtime — in-flight
// queries finish on the engine snapshot they already fanned out to.
//
// The local→global docID maps live behind one atomic pointer so
// compaction can grow a shard: SwapExtend publishes extended maps
// *before* the grown engine, and maps only ever grow by appending
// globals larger than every existing entry, so any interleaving a
// concurrent query observes — old engine with new maps (the extension
// is an unused suffix) or matched pairs — maps every result it can
// produce correctly. Plain Swap keeps the PR 7 contract: the
// replacement must hold the same partition (same count, same local
// numbering).
type Cluster struct {
	shards []*core.Serving
	state  atomic.Pointer[topology]
	mu     sync.Mutex // serializes Swap/SwapExtend
}

// topology is the immutable docID-mapping snapshot queries read once
// per request.
type topology struct {
	globals [][]uint32
	total   int
}

// Hit is one merged result: the shard that produced it, the document's
// docID in that shard's engine (for stored-field lookup) and in the
// logical collection (the tie-break key), and its score.
type Hit struct {
	Shard  int
	Local  uint32
	Global uint32
	Score  float64
}

// Summary reports what one scatter-gather execution did.
type Summary struct {
	// Agg is the cluster-level aggregation (core.MergeStats) of every
	// shard's statistics-phase and scoring-phase reports.
	Agg core.ExecStats
	// PerShard holds each shard's merged (stats + scoring) report.
	PerShard []core.ExecStats
	// Generations are the serving generations the query ran against,
	// one per shard, captured as one snapshot per shard at fan-out.
	Generations []uint64
	// Engines are the engine snapshots the query ran on, one per shard;
	// callers use them to resolve stored fields for the returned hits
	// (the serving pointer may have swapped since).
	Engines []*core.Engine
	// Elapsed is the cluster-level wall clock: fan-out, both phases,
	// merge.
	Elapsed time.Duration
}

// NewCluster assembles a cluster from per-shard engines and their
// local→global docID maps (as produced by Split or GlobalMaps). It
// validates the partition invariants the rank-safe merge rests on:
// every map strictly increasing (local order = global order), maps
// pairwise disjoint, and each map's length equal to its engine's
// document count. Shard generations start at 0.
func NewCluster(engines []*core.Engine, globals [][]uint32) (*Cluster, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("shard: cluster needs at least one engine")
	}
	if len(engines) != len(globals) {
		return nil, fmt.Errorf("shard: %d engines but %d docID maps", len(engines), len(globals))
	}
	total := 0
	for i, g := range globals {
		if n := engines[i].Index().NumDocs(); n != len(g) {
			return nil, fmt.Errorf("shard %d: engine holds %d documents but the docID map has %d", i, n, len(g))
		}
		for j := 1; j < len(g); j++ {
			if g[j] <= g[j-1] {
				return nil, fmt.Errorf("shard %d: docID map not strictly increasing at local %d", i, j)
			}
		}
		total += len(g)
	}
	// Disjointness across shards: the concatenation sorted must be
	// strictly increasing. O(total log total) once at construction.
	all := make([]uint32, 0, total)
	for _, g := range globals {
		all = append(all, g...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			return nil, fmt.Errorf("shard: global docID %d assigned to two shards", all[i])
		}
	}
	c := &Cluster{}
	c.state.Store(&topology{globals: globals, total: total})
	for _, e := range engines {
		c.shards = append(c.shards, core.NewServing(e, 0))
	}
	return c, nil
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// NumDocs returns the logical collection size.
func (c *Cluster) NumDocs() int { return c.state.Load().total }

// Engine returns shard i's current engine and generation.
func (c *Cluster) Engine(i int) (*core.Engine, uint64) { return c.shards[i].Snapshot() }

// Globals returns shard i's current local→global docID map. The slice
// is shared with concurrent queries and must not be mutated.
func (c *Cluster) Globals(i int) []uint32 { return c.state.Load().globals[i] }

// Generations returns each shard's current serving generation.
func (c *Cluster) Generations() []uint64 {
	gens := make([]uint64, len(c.shards))
	for i, s := range c.shards {
		gens[i] = s.Generation()
	}
	return gens
}

// Swap atomically replaces shard i's engine, returning the previous
// engine and generation. The replacement must hold exactly the same
// document partition — same count and local numbering — which a rebuilt
// or recovered index of the shard does by construction; the count is
// validated here, the numbering is the builder's insertion-order
// contract. gen must be greater than the shard's current generation
// (ErrStaleGeneration otherwise): generations are an audit trail, and a
// stale or duplicate gen would silently rewind it. In-flight queries
// finish on the engine they already hold.
func (c *Cluster) Swap(i int, eng *core.Engine, gen uint64) (*core.Engine, uint64, error) {
	if i < 0 || i >= len(c.shards) {
		return nil, 0, fmt.Errorf("shard: no shard %d in a %d-shard cluster", i, len(c.shards))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := eng.Index().NumDocs(); n != len(c.state.Load().globals[i]) {
		return nil, 0, fmt.Errorf("shard %d: replacement engine holds %d documents, want %d", i, n, len(c.state.Load().globals[i]))
	}
	if cur := c.shards[i].Generation(); gen <= cur {
		return nil, 0, fmt.Errorf("shard %d: %w (have %d, got %d)", i, ErrStaleGeneration, cur, gen)
	}
	old, oldGen := c.shards[i].Swap(eng, gen)
	return old, oldGen, nil
}

// SwapExtend atomically replaces shard i's engine with one holding a
// *grown* partition — the old documents in their old local order plus
// new documents appended — and publishes the matching extended docID
// map. globals must extend the shard's current map as a strict prefix,
// appended entries must keep the map strictly increasing and belong to
// no other shard, and len(globals) must equal the new engine's document
// count; gen must advance the shard's generation.
// The map is published before the engine, so a concurrent query sees
// either the old engine (the map extension is an unused suffix) or the
// new engine with the map it needs — never a grown engine with a short
// map.
func (c *Cluster) SwapExtend(i int, eng *core.Engine, globals []uint32, gen uint64) (*core.Engine, uint64, error) {
	if i < 0 || i >= len(c.shards) {
		return nil, 0, fmt.Errorf("shard: no shard %d in a %d-shard cluster", i, len(c.shards))
	}
	if n := eng.Index().NumDocs(); n != len(globals) {
		return nil, 0, fmt.Errorf("shard %d: replacement engine holds %d documents but the docID map has %d", i, n, len(globals))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	top := c.state.Load()
	old := top.globals[i]
	if len(globals) < len(old) {
		return nil, 0, fmt.Errorf("shard %d: extended docID map shrinks %d → %d", i, len(old), len(globals))
	}
	for j, g := range old {
		if globals[j] != g {
			return nil, 0, fmt.Errorf("shard %d: extended docID map rewrites local %d (%d → %d)", i, j, g, globals[j])
		}
	}
	// Appended entries: strictly increasing above the shard's own last
	// entry (local order = global order) and absent from every other
	// shard's map (disjointness). The membership check is a binary
	// search per appended entry — compaction extends every shard of the
	// same collection in turn, so a shard's new globals routinely fall
	// below another shard's maximum and a cluster-wide floor would be
	// wrong.
	for j := len(old); j < len(globals); j++ {
		if j > 0 && globals[j] <= globals[j-1] {
			return nil, 0, fmt.Errorf("shard %d: extended docID map not strictly increasing at local %d", i, j)
		}
		for s, g := range top.globals {
			if s == i {
				continue
			}
			at := sort.Search(len(g), func(x int) bool { return g[x] >= globals[j] })
			if at < len(g) && g[at] == globals[j] {
				return nil, 0, fmt.Errorf("shard %d: appended global %d already lives on shard %d", i, globals[j], s)
			}
		}
	}
	if cur := c.shards[i].Generation(); gen <= cur {
		return nil, 0, fmt.Errorf("shard %d: %w (have %d, got %d)", i, ErrStaleGeneration, cur, gen)
	}

	next := &topology{globals: make([][]uint32, len(top.globals)), total: top.total + len(globals) - len(old)}
	copy(next.globals, top.globals)
	next.globals[i] = globals
	c.state.Store(next) // map first, engine second — see the ordering contract above
	oldEng, oldGen := c.shards[i].Swap(eng, gen)
	return oldEng, oldGen, nil
}

// Locate maps a global docID back to (shard, local) in the current
// topology. ok is false when the docID belongs to no shard.
func (c *Cluster) Locate(global uint32) (shard int, local uint32, ok bool) {
	for s, g := range c.state.Load().globals {
		j := sort.Search(len(g), func(i int) bool { return g[i] >= global })
		if j < len(g) && g[j] == global {
			return s, uint32(j), true
		}
	}
	return 0, 0, false
}

// Slices snapshots the cluster as a consistent []core.Slice — one
// engine snapshot and docID map per shard — plus the generations the
// snapshot serves. Engines are snapshotted before the topology is
// loaded; with SwapExtend's publish order (map before engine) that
// guarantees every engine's map is at least as long as the engine
// needs.
func (c *Cluster) Slices() ([]core.Slice, []uint64) {
	n := len(c.shards)
	slices := make([]core.Slice, n)
	gens := make([]uint64, n)
	for i, s := range c.shards {
		slices[i].Eng, gens[i] = s.Snapshot()
	}
	top := c.state.Load()
	for i := range slices {
		slices[i].Globals = top.globals[i]
	}
	return slices, gens
}

// Search evaluates q over the whole cluster and returns the global top
// k (everything when k ≤ 0), bit-identical — scores, order, tie-breaks
// — to a single engine holding all documents. Execution is
// core.SearchSlices' two-phase scatter-gather over one engine snapshot
// per shard: partial statistics summed exactly into the union's
// statistics, then per-shard scoring under the merged statistics, then
// a rank-safe merge in the global docID space.
//
// A deadline expiry inside any shard degrades that shard's report (and
// therefore the merged Summary) instead of failing, matching the
// engine's boundedness contract; cancellation or a shard panic fails
// the query with the first error in shard order.
func (c *Cluster) Search(ctx context.Context, q query.Query, k int) ([]Hit, Summary, error) {
	start := time.Now()
	slices, gens := c.Slices()
	sum := Summary{
		Generations: gens,
		Engines:     make([]*core.Engine, len(slices)),
	}
	for i := range slices {
		sum.Engines[i] = slices[i].Eng
	}
	sliceHits, per, err := core.SearchSlices(ctx, slices, q, k)
	if err != nil {
		return nil, sum, err
	}
	hits := make([]Hit, len(sliceHits))
	for i, h := range sliceHits {
		hits[i] = Hit{Shard: h.Slice, Local: h.Local, Global: h.Global, Score: h.Score}
	}
	sum.PerShard = per
	sum.Agg = core.MergeStats(per...)
	sum.Elapsed = time.Since(start)
	return hits, sum, nil
}
