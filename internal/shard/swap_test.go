package shard

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"csrank/internal/core"
	"csrank/internal/query"
)

// TestSwapUnderQueryStorm swaps one shard's engine (catalog-less ↔
// view-accelerated twins of the same partition, which rank identically
// by the views-are-acceleration contract) while a storm of concurrent
// sharded searches runs. Under -race this is the proof the fan-out
// never reads serving state unsynchronized; the assertions prove
// results stay bit-identical to the single-engine reference across
// every swap, and that no query observes a stale generation: a search
// started after Swap(gen) returned must report generation ≥ gen for
// that shard.
func TestSwapUnderQueryStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	docs, meshTerms, words := randomDocs(rng, 300, 6, 6)
	fullIx := buildIndex(t, docs, 16)
	single := core.New(fullIx, nil, core.Options{})

	parts, globals, err := Split(docs, 2)
	if err != nil {
		t.Fatal(err)
	}
	ix0 := buildIndex(t, parts[0], 16)
	ix1 := buildIndex(t, parts[1], 16)
	// Two equivalent engines for shard 0: with and without a view
	// catalog. Swapping between them changes the statistics plan, never
	// the ranking.
	plain := core.New(ix0, nil, core.Options{})
	viewed := core.New(ix0, shardCatalog(t, rng, ix0, meshTerms, words), core.Options{})
	cluster, err := NewCluster([]*core.Engine{plain, core.New(ix1, nil, core.Options{})}, globals)
	if err != nil {
		t.Fatal(err)
	}

	queries := make([]query.Query, 6)
	references := make([][]core.Result, len(queries))
	for i := range queries {
		queries[i] = randomQuery(rng, meshTerms, words)
		references[i], _, err = single.SearchCtx(context.Background(), queries[i], 10)
		if err != nil {
			t.Fatal(err)
		}
	}

	// published is the highest generation Swap has returned for; a
	// query that reads published before fanning out must observe at
	// least that generation on shard 0.
	var published atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				qi := (g + i) % len(queries)
				floor := published.Load()
				hits, sum, err := cluster.Search(context.Background(), queries[qi], 10)
				if err != nil {
					t.Error(err)
					return
				}
				if sum.Generations[0] < floor {
					t.Errorf("stale generation %d observed after %d was published", sum.Generations[0], floor)
					return
				}
				want := references[qi]
				if len(hits) != len(want) {
					t.Errorf("q=%v: %d hits, want %d", queries[qi], len(hits), len(want))
					return
				}
				for r := range want {
					if hits[r].Global != want[r].DocID || hits[r].Score != want[r].Score {
						t.Errorf("q=%v rank %d: (%d, %v), want (%d, %v) — ranking changed across swap",
							queries[qi], r, hits[r].Global, hits[r].Score, want[r].DocID, want[r].Score)
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		engines := []*core.Engine{plain, viewed}
		for gen := uint64(1); gen <= 80; gen++ {
			if _, _, err := cluster.Swap(0, engines[gen%2], gen); err != nil {
				t.Error(err)
				return
			}
			published.Store(gen)
		}
	}()
	wg.Wait()

	// After the storm the final swap must be visible to a fresh query.
	_, sum, err := cluster.Search(context.Background(), queries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Generations[0] != 80 {
		t.Fatalf("final generation %d, want 80", sum.Generations[0])
	}
}

// TestSwapValidation: a replacement engine holding a different document
// partition is rejected, and out-of-range shard indices error.
func TestSwapValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	docs, _, _ := randomDocs(rng, 100, 4, 4)
	parts, globals, err := Split(docs, 2)
	if err != nil {
		t.Fatal(err)
	}
	e0 := core.New(buildIndex(t, parts[0], 16), nil, core.Options{})
	e1 := core.New(buildIndex(t, parts[1], 16), nil, core.Options{})
	c, err := NewCluster([]*core.Engine{e0, e1}, globals)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Swap(0, e1, 1); err == nil && len(parts[0]) != len(parts[1]) {
		t.Fatal("engine with a different partition accepted")
	}
	if _, _, err := c.Swap(5, e0, 1); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, _, err := c.Swap(0, e0, 2); err != nil {
		t.Fatal(err)
	}
	if got := c.Generations()[0]; got != 2 {
		t.Fatalf("generation %d after swap, want 2", got)
	}
}
