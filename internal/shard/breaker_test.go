package shard

import (
	"testing"
	"time"
)

// TestBreakerStateMachine walks the breaker deterministically with an
// injected clock: closed tolerates Threshold-1 failures, trips on the
// Threshold-th, refuses while open, grants exactly one half-open probe
// after the backoff, and a probe success closes it with the backoff
// reset while a probe failure re-opens it with the backoff doubled.
func TestBreakerStateMachine(t *testing.T) {
	cfg := BreakerConfig{Threshold: 3, Backoff: time.Second, MaxBackoff: 4 * time.Second}
	b := NewBreaker(cfg)
	now := time.Unix(1000, 0)

	// Closed: always admits; a success resets the failure streak.
	for i := 0; i < 2; i++ {
		if !b.Allow(now) {
			t.Fatalf("closed breaker refused query %d", i)
		}
		b.Record(false, now)
	}
	if s := b.Snapshot(now); s.State != BreakerClosed || s.ConsecutiveFailures != 2 {
		t.Fatalf("after 2 failures: %+v", s)
	}
	b.Record(true, now)
	if s := b.Snapshot(now); s.ConsecutiveFailures != 0 {
		t.Fatalf("success did not reset the streak: %+v", s)
	}

	// Threshold consecutive failures trip it.
	for i := 0; i < 3; i++ {
		if !b.Allow(now) {
			t.Fatal("closed breaker refused")
		}
		b.Record(false, now)
	}
	s := b.Snapshot(now)
	if s.State != BreakerOpen || s.Trips != 1 {
		t.Fatalf("after threshold failures: %+v", s)
	}
	if s.RetryIn <= 0 || s.RetryIn > 4*time.Second {
		t.Fatalf("RetryIn %v outside (0, MaxBackoff]", s.RetryIn)
	}
	if b.Allow(now) || b.Available(now) {
		t.Fatal("open breaker admitted a query")
	}

	// Past the (jittered ≤ 1.25×base) backoff: exactly one probe.
	now = now.Add(2 * time.Second)
	if s := b.Snapshot(now); s.State != BreakerHalfOpen {
		t.Fatalf("expired open not reported half-open: %+v", s)
	}
	if !b.Allow(now) {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow(now) {
		t.Fatal("half-open breaker granted a second probe")
	}

	// Probe failure: re-open with the backoff doubled.
	b.Record(false, now)
	if s := b.Snapshot(now); s.State != BreakerOpen || s.Trips != 2 {
		t.Fatalf("after failed probe: %+v", s)
	}
	if b.Allow(now.Add(1200 * time.Millisecond)) {
		t.Fatal("doubled backoff (≥ 1.5s even with -25% jitter) admitted at 1.2s")
	}
	now = now.Add(3 * time.Second)
	if !b.Allow(now) {
		t.Fatal("second probe refused past the doubled backoff")
	}

	// Probe success: closed, streak cleared, recovery counted.
	b.Record(true, now)
	s = b.Snapshot(now)
	if s.State != BreakerClosed || s.ConsecutiveFailures != 0 || s.Recoveries != 1 {
		t.Fatalf("after successful probe: %+v", s)
	}
	if !b.Allow(now) || !b.Available(now) {
		t.Fatal("recovered breaker refused a query")
	}
}

// TestBreakerBackoffCap: repeated failed probes double the backoff only
// up to MaxBackoff (with jitter ≤ 1.25× that), never unbounded.
func TestBreakerBackoffCap(t *testing.T) {
	cfg := BreakerConfig{Threshold: 1, Backoff: 100 * time.Millisecond, MaxBackoff: time.Second}
	b := NewBreaker(cfg)
	now := time.Unix(2000, 0)
	for i := 0; i < 12; i++ {
		for !b.Allow(now) {
			now = now.Add(50 * time.Millisecond)
		}
		b.Record(false, now)
		if s := b.Snapshot(now); s.RetryIn > 1250*time.Millisecond {
			t.Fatalf("round %d: RetryIn %v exceeds jittered MaxBackoff", i, s.RetryIn)
		}
	}
}

// TestBreakerDefaults: the zero config serves with the documented
// defaults instead of a breaker that trips on nothing or instantly.
func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	now := time.Unix(3000, 0)
	b.Record(false, now)
	b.Record(false, now)
	if s := b.Snapshot(now); s.State != BreakerClosed {
		t.Fatalf("tripped below the default threshold of 3: %+v", s)
	}
	b.Record(false, now)
	if s := b.Snapshot(now); s.State != BreakerOpen {
		t.Fatalf("did not trip at the default threshold: %+v", s)
	}
	if b.Allow(now.Add(100 * time.Millisecond)) {
		t.Fatal("admitted before the default 500ms backoff (even with -25% jitter)")
	}
}
