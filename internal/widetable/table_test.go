package widetable

import (
	"fmt"
	"math/rand"
	"testing"

	"csrank/internal/analysis"
	"csrank/internal/index"
)

func buildIndex(t *testing.T, docs []index.Document) *index.Index {
	t.Helper()
	schema := index.Schema{
		Fields: []index.FieldSpec{
			{Name: "content", Analyzer: analysis.Keyword()},
			{Name: "mesh", Analyzer: analysis.Keyword()},
		},
		PredicateField: "mesh",
		ContentField:   "content",
	}
	ix, err := index.BuildFrom(schema, 0, docs)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func doc(content, mesh string) index.Document {
	return index.Document{Fields: map[string]string{"content": content, "mesh": mesh}}
}

func smallTable(t *testing.T) *Table {
	ix := buildIndex(t, []index.Document{
		doc("w1 w1 w2", "m1 m2"),
		doc("w2", "m2"),
		doc("w1 w3 w3 w3", "m1 m3"),
		doc("w3", "m1 m2 m3"),
	})
	return FromIndex(ix, []string{"w1", "w2", "w3"})
}

func TestTableShape(t *testing.T) {
	tbl := smallTable(t)
	if tbl.NumDocs() != 4 {
		t.Fatalf("NumDocs = %d", tbl.NumDocs())
	}
	if got := tbl.Keywords(); len(got) != 3 {
		t.Fatalf("Keywords = %v", got)
	}
	if _, ok := tbl.ColumnID("m2"); !ok {
		t.Error("m2 column missing")
	}
	if _, ok := tbl.ColumnID("zzz"); ok {
		t.Error("phantom column")
	}
	if got := tbl.TrackedWords(); len(got) != 3 {
		t.Errorf("TrackedWords = %v", got)
	}
	if !tbl.Tracked("w1") || tbl.Tracked("w9") {
		t.Error("Tracked wrong")
	}
}

func TestTableMembership(t *testing.T) {
	tbl := smallTable(t)
	m1, _ := tbl.ColumnID("m1")
	m2, _ := tbl.ColumnID("m2")
	if !tbl.Has(0, m1) || !tbl.Has(0, m2) {
		t.Error("doc 0 membership wrong")
	}
	if tbl.Has(1, m1) {
		t.Error("doc 1 should lack m1")
	}
	if got := len(tbl.Row(3)); got != 3 {
		t.Errorf("Row(3) = %d cols", got)
	}
}

func TestTableParameters(t *testing.T) {
	tbl := smallTable(t)
	if tbl.Len(0) != 3 {
		t.Errorf("Len(0) = %d", tbl.Len(0))
	}
	if tbl.TF("w1", 0) != 2 {
		t.Errorf("TF(w1,0) = %d", tbl.TF("w1", 0))
	}
	if tbl.TF("w3", 2) != 3 {
		t.Errorf("TF(w3,2) = %d", tbl.TF("w3", 2))
	}
	if tbl.TF("w1", 1) != 0 {
		t.Errorf("TF(w1,1) = %d", tbl.TF("w1", 1))
	}
}

func TestAggregations(t *testing.T) {
	tbl := smallTable(t)
	cases := []struct {
		pred []string
		n    int64
		len  int64
	}{
		{[]string{"m1"}, 3, 3 + 4 + 1},
		{[]string{"m2"}, 3, 3 + 1 + 1},
		{[]string{"m1", "m2"}, 2, 3 + 1},
		{[]string{"m1", "m2", "m3"}, 1, 1},
		{nil, 4, 9},
	}
	for _, c := range cases {
		n, err := tbl.Count(c.pred)
		if err != nil {
			t.Fatal(err)
		}
		if n != c.n {
			t.Errorf("Count(%v) = %d, want %d", c.pred, n, c.n)
		}
		l, err := tbl.SumLen(c.pred)
		if err != nil {
			t.Fatal(err)
		}
		if l != c.len {
			t.Errorf("SumLen(%v) = %d, want %d", c.pred, l, c.len)
		}
	}
}

func TestDFTC(t *testing.T) {
	tbl := smallTable(t)
	df, err := tbl.DF("w1", []string{"m1"})
	if err != nil {
		t.Fatal(err)
	}
	if df != 2 { // docs 0 and 2 have m1 and contain w1
		t.Errorf("DF(w1|m1) = %d, want 2", df)
	}
	tc, err := tbl.TC("w3", []string{"m1"})
	if err != nil {
		t.Fatal(err)
	}
	if tc != 4 { // doc2 has 3, doc3 has 1
		t.Errorf("TC(w3|m1) = %d, want 4", tc)
	}
	df, err = tbl.DF("w2", []string{"m3"})
	if err != nil {
		t.Fatal(err)
	}
	if df != 0 {
		t.Errorf("DF(w2|m3) = %d, want 0", df)
	}
}

func TestErrors(t *testing.T) {
	tbl := smallTable(t)
	if _, err := tbl.Count([]string{"nosuch"}); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := tbl.DF("untracked", []string{"m1"}); err == nil {
		t.Error("untracked word accepted in DF")
	}
	if _, err := tbl.TC("untracked", []string{"m1"}); err == nil {
		t.Error("untracked word accepted in TC")
	}
}

// TestAgainstBruteForce cross-checks the table's aggregation queries
// against a naive recount on a random collection.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	meshTerms := []string{"m1", "m2", "m3", "m4", "m5"}
	words := []string{"w1", "w2", "w3"}
	n := 300
	docs := make([]index.Document, n)
	type rawDoc struct {
		mesh map[string]bool
		tf   map[string]int
	}
	raw := make([]rawDoc, n)
	for i := range docs {
		rd := rawDoc{mesh: map[string]bool{}, tf: map[string]int{}}
		var meshStr, contentStr string
		for _, m := range meshTerms {
			if rng.Float64() < 0.4 {
				rd.mesh[m] = true
				meshStr += m + " "
			}
		}
		for _, w := range words {
			k := rng.Intn(4)
			rd.tf[w] = k
			for j := 0; j < k; j++ {
				contentStr += w + " "
			}
		}
		if contentStr == "" {
			contentStr = "filler"
		}
		raw[i] = rd
		docs[i] = doc(contentStr, meshStr)
	}
	tbl := FromIndex(buildIndex(t, docs), words)

	for trial := 0; trial < 30; trial++ {
		var pred []string
		for _, m := range meshTerms {
			if rng.Float64() < 0.4 {
				pred = append(pred, m)
			}
		}
		match := func(rd rawDoc) bool {
			for _, p := range pred {
				if !rd.mesh[p] {
					return false
				}
			}
			return true
		}
		var wantN, wantLen int64
		wantDF := map[string]int64{}
		wantTC := map[string]int64{}
		for _, rd := range raw {
			if !match(rd) {
				continue
			}
			wantN++
			for _, w := range words {
				wantLen += int64(rd.tf[w])
				if rd.tf[w] > 0 {
					wantDF[w]++
					wantTC[w] += int64(rd.tf[w])
				}
			}
			if rd.tf["w1"]+rd.tf["w2"]+rd.tf["w3"] == 0 {
				wantLen++ // the "filler" token
			}
		}
		n, err := tbl.Count(pred)
		if err != nil {
			t.Fatal(err)
		}
		if n != wantN {
			t.Fatalf("Count(%v) = %d, want %d", pred, n, wantN)
		}
		l, _ := tbl.SumLen(pred)
		if l != wantLen {
			t.Fatalf("SumLen(%v) = %d, want %d", pred, l, wantLen)
		}
		for _, w := range words {
			df, _ := tbl.DF(w, pred)
			if df != wantDF[w] {
				t.Fatalf("DF(%s|%v) = %d, want %d", w, pred, df, wantDF[w])
			}
			tc, _ := tbl.TC(w, pred)
			if tc != wantTC[w] {
				t.Fatalf("TC(%s|%v) = %d, want %d", w, pred, tc, wantTC[w])
			}
		}
	}
}

func TestFromIndexSkipsUnknownTrackedWords(t *testing.T) {
	ix := buildIndex(t, []index.Document{doc("w1", "m1")})
	tbl := FromIndex(ix, []string{"w1", "ghost"})
	if tbl.Tracked("ghost") {
		t.Error("ghost word tracked")
	}
	if !tbl.Tracked("w1") {
		t.Error("w1 not tracked")
	}
}

func ExampleTable_Count() {
	// Count documents annotated with both m1 and m2.
	schema := index.Schema{
		Fields: []index.FieldSpec{
			{Name: "content", Analyzer: analysis.Keyword()},
			{Name: "mesh", Analyzer: analysis.Keyword()},
		},
		PredicateField: "mesh",
		ContentField:   "content",
	}
	ix, _ := index.BuildFrom(schema, 0, []index.Document{
		{Fields: map[string]string{"content": "a", "mesh": "m1 m2"}},
		{Fields: map[string]string{"content": "b", "mesh": "m1"}},
	})
	tbl := FromIndex(ix, nil)
	n, _ := tbl.Count([]string{"m1", "m2"})
	fmt.Println(n)
	// Output: 1
}
