// Package widetable implements the relational formalization of §4.1: the
// document collection as a wide sparse table T whose keyword columns mark
// predicate-term membership (one column per context-specifiable keyword)
// and whose parameter columns carry the per-document values that
// collection-specific statistics aggregate (len(d), tf(d, w) for tracked
// content words).
//
// The table evaluates aggregation queries directly — SELECT Agg(param)
// FROM T WHERE m_j1 = 1 AND … — by scanning all rows. That O(|D|) scan is
// exactly what materialized views avoid; the table therefore serves both
// as the materialization source and as the semantic oracle the views
// package is differential-tested against.
package widetable

import (
	"fmt"
	"sort"

	"csrank/internal/index"
)

// ColID identifies a keyword column.
type ColID int32

// Table is the wide sparse table T.
type Table struct {
	numDocs int
	cols    []string
	colID   map[string]ColID
	// rows[d] lists the keyword columns set to 1 for document d, sorted.
	rows [][]ColID
	// lens[d] is the parameter column len(d).
	lens []int64
	// tf holds the tf(d, w) parameter columns for tracked words:
	// tf[w][d] (sparse per word).
	tf map[string]map[uint32]int64
}

// FromIndex builds the table from an index: keyword columns are the
// predicate-field terms, len(d) comes from the content field, and tf
// parameter columns are created for trackedWords (the content keywords
// whose df/tc statistics views will answer).
func FromIndex(ix *index.Index, trackedWords []string) *Table {
	schema := ix.Schema()
	keywords := ix.Terms(schema.PredicateField)
	t := &Table{
		numDocs: ix.NumDocs(),
		cols:    keywords,
		colID:   make(map[string]ColID, len(keywords)),
		rows:    make([][]ColID, ix.NumDocs()),
		lens:    make([]int64, ix.NumDocs()),
		tf:      make(map[string]map[uint32]int64, len(trackedWords)),
	}
	for i, k := range keywords {
		t.colID[k] = ColID(i)
	}
	for d := 0; d < ix.NumDocs(); d++ {
		t.lens[d] = ix.FieldLen(uint32(d), schema.ContentField)
	}
	// Invert predicate postings into per-row column sets. Iterating terms
	// in sorted order appends ascending ColIDs per row.
	for i, k := range keywords {
		id := ColID(i)
		ix.Postings(schema.PredicateField, k).ForEach(func(docID, _ uint32) {
			t.rows[docID] = append(t.rows[docID], id)
		})
	}
	for _, w := range trackedWords {
		l := ix.Postings(schema.ContentField, w)
		if l == nil {
			continue
		}
		m := make(map[uint32]int64, l.Len())
		l.ForEach(func(docID, tf uint32) {
			m[docID] = int64(tf)
		})
		t.tf[w] = m
	}
	return t
}

// NumDocs returns the number of rows.
func (t *Table) NumDocs() int { return t.numDocs }

// Keywords returns the keyword column names in column order.
func (t *Table) Keywords() []string { return t.cols }

// ColumnID resolves a keyword column name.
func (t *Table) ColumnID(name string) (ColID, bool) {
	id, ok := t.colID[name]
	return id, ok
}

// TrackedWords returns the words with tf parameter columns, sorted.
func (t *Table) TrackedWords() []string {
	out := make([]string, 0, len(t.tf))
	for w := range t.tf {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Row returns the keyword columns set for document d (sorted ascending).
// The returned slice is shared and must not be modified.
func (t *Table) Row(d int) []ColID { return t.rows[d] }

// Has reports whether row d has keyword column c set.
func (t *Table) Has(d int, c ColID) bool {
	row := t.rows[d]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= c })
	return i < len(row) && row[i] == c
}

// FillPattern zeroes buf and sets bit i for every column cols[i] present
// in row d, walking the row and the column list in one merge pass instead
// of one binary search per (row, column) pair. cols must be ascending —
// the order produced by resolving sorted keyword names — and buf must hold
// at least ceil(len(cols)/8) bytes. It is the materialization scan
// primitive of the views and rangeagg packages.
func (t *Table) FillPattern(d int, cols []ColID, buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
	row := t.rows[d]
	i, j := 0, 0
	for i < len(row) && j < len(cols) {
		switch {
		case row[i] < cols[j]:
			i++
		case row[i] > cols[j]:
			j++
		default:
			buf[j/8] |= 1 << (j % 8)
			i++
			j++
		}
	}
}

// Len returns the len(d) parameter of row d.
func (t *Table) Len(d int) int64 { return t.lens[d] }

// TF returns the tf(d, w) parameter, or 0 if w is untracked or absent.
func (t *Table) TF(w string, d int) int64 { return t.tf[w][uint32(d)] }

// Tracked reports whether w has a tf parameter column.
func (t *Table) Tracked(w string) bool {
	_, ok := t.tf[w]
	return ok
}

// TFColumn returns w's sparse tf parameter column (docID → tf), or nil if
// untracked. The returned map is shared and must not be modified; it lets
// view materialization iterate only the documents containing w instead of
// probing every document.
func (t *Table) TFColumn(w string) map[uint32]int64 { return t.tf[w] }

// resolve maps predicate names to column IDs, failing on unknown columns.
func (t *Table) resolve(pred []string) ([]ColID, error) {
	ids := make([]ColID, len(pred))
	for i, p := range pred {
		id, ok := t.colID[p]
		if !ok {
			return nil, fmt.Errorf("widetable: unknown keyword column %q", p)
		}
		ids[i] = id
	}
	return ids, nil
}

func (t *Table) matches(d int, ids []ColID) bool {
	for _, id := range ids {
		if !t.Has(d, id) {
			return false
		}
	}
	return true
}

// Count evaluates SELECT COUNT(*) FROM T WHERE pred=1…: the context
// cardinality |D_P|.
func (t *Table) Count(pred []string) (int64, error) {
	ids, err := t.resolve(pred)
	if err != nil {
		return 0, err
	}
	var n int64
	for d := 0; d < t.numDocs; d++ {
		if t.matches(d, ids) {
			n++
		}
	}
	return n, nil
}

// SumLen evaluates SELECT SUM(len(d)) FROM T WHERE pred=1…: the context
// length len(D_P).
func (t *Table) SumLen(pred []string) (int64, error) {
	ids, err := t.resolve(pred)
	if err != nil {
		return 0, err
	}
	var sum int64
	for d := 0; d < t.numDocs; d++ {
		if t.matches(d, ids) {
			sum += t.lens[d]
		}
	}
	return sum, nil
}

// DF evaluates SELECT COUNT(*) FROM T WHERE pred=1… AND tf(d,w) > 0:
// the document count df(w, D_P). The word must be tracked.
func (t *Table) DF(w string, pred []string) (int64, error) {
	ids, err := t.resolve(pred)
	if err != nil {
		return 0, err
	}
	col, ok := t.tf[w]
	if !ok {
		return 0, fmt.Errorf("widetable: word %q has no tf column", w)
	}
	var n int64
	for d := range col {
		if t.matches(int(d), ids) {
			n++
		}
	}
	return n, nil
}

// TC evaluates SELECT SUM(tf(d,w)) FROM T WHERE pred=1…: the term count
// tc(w, D_P). The word must be tracked.
func (t *Table) TC(w string, pred []string) (int64, error) {
	ids, err := t.resolve(pred)
	if err != nil {
		return 0, err
	}
	col, ok := t.tf[w]
	if !ok {
		return 0, fmt.Errorf("widetable: word %q has no tf column", w)
	}
	var sum int64
	for d, tf := range col {
		if t.matches(int(d), ids) {
			sum += tf
		}
	}
	return sum, nil
}
