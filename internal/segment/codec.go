// Package segment implements live ingestion for a served cluster: a
// small WAL-durable mutable segment that absorbs Add(doc) writes and is
// searched alongside the immutable shard indexes, plus the compactor
// that drains it into the next index generation and swaps the grown
// shards in without downtime.
package segment

import (
	"encoding/binary"
	"fmt"
	"sort"

	"csrank/internal/index"
)

// Document records are raw field text (the exact Add input), encoded
// deterministically — fields sorted by name — so re-encoding a replayed
// log is byte-identical, mirroring the view-WAL's determinism contract.
//
// Payload layout (varint = unsigned LEB128):
//
//	nfields uvarint
//	per field (sorted by name): uvarint len + name, uvarint len + value

func encodeDoc(d index.Document) []byte {
	names := make([]string, 0, len(d.Fields))
	for n := range d.Fields {
		names = append(names, n)
	}
	sort.Strings(names)
	out := appendUvarint(nil, uint64(len(names)))
	for _, n := range names {
		out = appendString(out, n)
		out = appendString(out, d.Fields[n])
	}
	return out
}

func decodeDoc(payload []byte) (index.Document, error) {
	d := index.Document{}
	pos := 0
	n, err := readUvarint(payload, &pos)
	if err != nil {
		return d, err
	}
	if n > uint64(len(payload)) {
		return d, fmt.Errorf("segment: document claims %d fields in %d bytes", n, len(payload))
	}
	d.Fields = make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		name, err := readString(payload, &pos)
		if err != nil {
			return d, err
		}
		value, err := readString(payload, &pos)
		if err != nil {
			return d, err
		}
		if _, dup := d.Fields[name]; dup {
			return d, fmt.Errorf("segment: duplicate field %q", name)
		}
		d.Fields[name] = value
	}
	if pos != len(payload) {
		return d, fmt.Errorf("segment: %d trailing payload bytes", len(payload)-pos)
	}
	return d, nil
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readUvarint(b []byte, pos *int) (uint64, error) {
	v, n := binary.Uvarint(b[*pos:])
	if n <= 0 {
		return 0, fmt.Errorf("segment: truncated varint at offset %d", *pos)
	}
	*pos += n
	return v, nil
}

func readString(b []byte, pos *int) (string, error) {
	n, err := readUvarint(b, pos)
	if err != nil {
		return "", err
	}
	if n > uint64(len(b)-*pos) {
		return "", fmt.Errorf("segment: string length %d exceeds payload at offset %d", n, *pos)
	}
	s := string(b[*pos : *pos+int(n)])
	*pos += int(n)
	return s, nil
}
