package segment

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"csrank/internal/core"
	"csrank/internal/fsx"
	"csrank/internal/index"
	"csrank/internal/query"
	"csrank/internal/shard"
	"csrank/internal/views"
)

// LiveName is the ingestion commit-point file inside a cluster data
// directory: it names the current index generation and committed
// document count. It is rewritten atomically exactly once per
// compaction, making "which generation is live" a single-file decision
// recovery can always answer.
const LiveName = "live.json"

type liveState struct {
	Version   int    `json:"version"`
	Gen       uint64 `json:"gen"`
	TotalDocs int    `json:"total_docs"`
}

// walName returns the ingestion log for a generation: the documents
// acknowledged after that generation's snapshot was committed.
func walName(gen uint64) string { return fmt.Sprintf("ingest-%06d.wal", gen) }

// indexName returns a shard's index file for a generation. Generation 0
// is the csbuild-written base layout, so an uncompacted live directory
// stays openable by every existing tool.
func indexName(gen uint64) string {
	if gen == 0 {
		return "index.gob"
	}
	return fmt.Sprintf("index.%06d.gob", gen)
}

// Options configures an Ingester.
type Options struct {
	// FS is the filesystem everything durable goes through (fsx.OS when
	// nil); fault-injection tests substitute a crashing one.
	FS fsx.FS
	// Core configures the engines built for shards and the mutable
	// segment.
	Core core.Options
	// RefreshEvery is the interval at which the mutable segment is
	// re-published for search. Zero refreshes synchronously inside every
	// Add — an acknowledged document is searchable when Add returns.
	RefreshEvery time.Duration
	// CompactThreshold triggers a background compaction when the segment
	// holds at least this many documents. Zero means compaction runs only
	// when Compact is called.
	CompactThreshold int
	// Mapped writes compacted snapshots in the paged format-v4 layout.
	Mapped bool
}

// View is one consistent snapshot of the searchable collection: the
// shard slices plus (when the segment is non-empty) the mutable-segment
// slice. Queries load it once and run entirely against it, so a
// concurrent compaction can never double-count a document — a view
// holds each document in exactly one slice by construction, and views
// are replaced whole.
type View struct {
	// Slices are the disjoint document slices; Slices[:Base] are the
	// immutable shards, the rest (at most one) is the mutable segment.
	Slices []core.Slice
	Base   int
	// Total is the searchable document count.
	Total int
	// Seq is a monotonic content sequence number: it advances exactly
	// when the searchable content changes — an acknowledged document
	// became visible, or a compaction committed a new generation — and
	// stays put across periodic refresh ticks that republish identical
	// content. Two views with equal Seq rank bit-identically (same
	// documents, same generation, deterministic index build), which is
	// what lets serving-layer result caches use Seq as their live-path
	// invalidation tag.
	Seq uint64
}

// Ingester owns live ingestion for one cluster data directory: the
// WAL-durable mutable segment, the searchable view over shards +
// segment, and the compactor that drains the segment into the next
// index generation. All mutation is serialized on one mutex; searches
// are lock-free view loads.
type Ingester struct {
	fs      fsx.FS
	dir     string
	cluster *shard.Cluster
	schema  index.Schema
	segSize int
	opts    Options

	mu         sync.Mutex
	seg        *Segment
	gen        uint64
	total      int // documents committed into the shard indexes
	compacting bool
	compactErr error
	closed     bool

	view atomic.Pointer[View]
	// viewSeq/lastGen/lastCount implement View.Seq (all under mu): the
	// sequence advances when (generation, acknowledged-doc count) moves.
	viewSeq   uint64
	lastGen   uint64
	lastCount int

	stop chan struct{}
	wg   sync.WaitGroup
}

// Open opens a cluster data directory for live ingestion and recovers
// its mutable segment: load the committed generation (live.json, or the
// csbuild manifest for a never-compacted directory), open each shard's
// index for that generation, replay the generation's ingestion WAL into
// the segment (truncating a torn tail), and sweep any orphan files a
// crash mid-compaction left behind. Every document whose Add was
// acknowledged before the crash is afterwards searchable exactly once.
func Open(dir string, o Options) (*Ingester, error) {
	fs := o.FS
	if fs == nil {
		fs = fsx.OS
	}
	m, err := shard.LoadManifest(dir)
	if err != nil {
		return nil, fmt.Errorf("segment: live ingestion requires a sharded data directory (csbuild -shards): %w", err)
	}
	st := liveState{Version: 1, Gen: 0, TotalDocs: m.TotalDocs}
	if data, rerr := readAll(fs, filepath.Join(dir, LiveName)); rerr == nil {
		if err := json.Unmarshal(data, &st); err != nil {
			return nil, fmt.Errorf("segment: parse %s: %w", LiveName, err)
		}
		if st.Version != 1 {
			return nil, fmt.Errorf("segment: %s version %d, this build reads 1", LiveName, st.Version)
		}
		if st.TotalDocs < m.TotalDocs {
			return nil, fmt.Errorf("segment: %s declares %d documents, below the manifest's %d", LiveName, st.TotalDocs, m.TotalDocs)
		}
	}

	globals := shard.GlobalMaps(st.TotalDocs, m.Shards)
	engines := make([]*core.Engine, m.Shards)
	for i := range engines {
		sd := shard.ShardDir(dir, i)
		ix, err := index.LoadFileFS(fs, filepath.Join(sd, indexName(st.Gen)))
		if err != nil {
			return nil, fmt.Errorf("segment: shard %d gen %d: %w", i, st.Gen, err)
		}
		if ix.NumDocs() != len(globals[i]) {
			return nil, fmt.Errorf("segment: shard %d holds %d documents, partition expects %d", i, ix.NumDocs(), len(globals[i]))
		}
		var cat *views.Catalog
		if st.Gen == 0 {
			// View catalogs describe the build-time corpus; compaction
			// changes the corpus, so catalogs serve only at generation 0
			// and contextual statistics fall back to the (exact)
			// straightforward plan afterwards.
			if c, err := views.LoadFileFS(fs, filepath.Join(sd, "views.gob")); err == nil {
				cat = c
			}
		}
		engines[i] = core.New(ix, cat, o.Core)
	}
	cluster, err := shard.NewCluster(engines, globals)
	if err != nil {
		return nil, err
	}

	seg, err := OpenSegment(fs, filepath.Join(dir, walName(st.Gen)))
	if err != nil {
		return nil, err
	}
	ing := &Ingester{
		fs:      fs,
		dir:     dir,
		cluster: cluster,
		schema:  engines[0].Index().Schema(),
		segSize: engines[0].Index().SegmentSize(),
		opts:    o,
		seg:     seg,
		gen:     st.Gen,
		total:   st.TotalDocs,
		stop:    make(chan struct{}),
	}
	ing.removeOrphans()
	ing.mu.Lock()
	err = ing.refreshLocked()
	ing.mu.Unlock()
	if err != nil {
		seg.Close()
		return nil, err
	}
	if o.RefreshEvery > 0 {
		ing.wg.Add(1)
		go ing.refreshLoop()
	}
	return ing, nil
}

func readAll(fs fsx.FS, path string) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Cluster returns the underlying shard cluster (for generation and
// manifest introspection).
func (ing *Ingester) Cluster() *shard.Cluster { return ing.cluster }

// Generation returns the committed compaction generation.
func (ing *Ingester) Generation() uint64 {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.gen
}

// Pending returns how many acknowledged documents await compaction.
func (ing *Ingester) Pending() int {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.seg.Len()
}

// NumDocs returns the total acknowledged document count (committed plus
// segment).
func (ing *Ingester) NumDocs() int {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.total + ing.seg.Len()
}

// CompactErr returns the most recent background-compaction failure (nil
// after a success). Compaction failures never lose acknowledged
// documents — the segment and its WAL are untouched until the commit
// point — so they are reported, not fatal.
func (ing *Ingester) CompactErr() error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.compactErr
}

// View returns the current searchable view.
func (ing *Ingester) View() *View { return ing.view.Load() }

// Search evaluates q over the current view — shards plus mutable
// segment, rank-safely merged — and returns the hits, each slice's
// execution report, and the view the query ran on (for stored-field
// resolution).
func (ing *Ingester) Search(ctx context.Context, q query.Query, k int) ([]core.SliceHit, []core.ExecStats, *View, error) {
	v := ing.view.Load()
	hits, per, err := core.SearchSlices(ctx, v.Slices, q, k)
	return hits, per, v, err
}

// Add durably logs the document — fsynced before return — and assigns
// it the next global docID. With RefreshEvery == 0 the document is
// searchable when Add returns; otherwise within one refresh interval.
// An error means the document was NOT acknowledged and may not survive
// a crash.
func (ing *Ingester) Add(d index.Document) (int, error) {
	ing.mu.Lock()
	if ing.closed {
		ing.mu.Unlock()
		return 0, fmt.Errorf("segment: ingester is closed")
	}
	pos, err := ing.seg.Add(d)
	if err != nil {
		ing.mu.Unlock()
		return 0, err
	}
	id := ing.total + pos
	pending := ing.seg.Len()
	if ing.opts.RefreshEvery == 0 {
		if err := ing.refreshLocked(); err != nil {
			ing.mu.Unlock()
			return id, err
		}
	}
	trigger := ing.opts.CompactThreshold > 0 && pending >= ing.opts.CompactThreshold && !ing.compacting
	if trigger {
		ing.compacting = true
		ing.wg.Add(1)
	}
	ing.mu.Unlock()
	if trigger {
		go func() {
			defer ing.wg.Done()
			err := ing.doCompact()
			ing.mu.Lock()
			ing.compacting = false
			ing.compactErr = err
			ing.mu.Unlock()
		}()
	}
	return id, nil
}

// Refresh republishes the searchable view: rebuild the mutable
// segment's in-memory index over the documents acknowledged so far and
// swap it in alongside the current shard slices, atomically.
func (ing *Ingester) Refresh() error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.refreshLocked()
}

func (ing *Ingester) refreshLocked() error {
	docs := ing.seg.Docs()
	docs = docs[:len(docs):len(docs)]
	base, _ := ing.cluster.Slices()
	slices := make([]core.Slice, 0, len(base)+1)
	slices = append(slices, base...)
	nBase := len(slices)
	if len(docs) > 0 {
		segIx, err := index.BuildFrom(ing.schema, ing.segSize, docs)
		if err != nil {
			return err
		}
		globals := make([]uint32, len(docs))
		for j := range globals {
			globals[j] = uint32(ing.total + j)
		}
		slices = append(slices, core.Slice{Eng: core.New(segIx, nil, ing.opts.Core), Globals: globals})
	}
	newCount := ing.total + len(docs)
	if ing.viewSeq == 0 || ing.gen != ing.lastGen || newCount != ing.lastCount {
		ing.viewSeq++
		ing.lastGen, ing.lastCount = ing.gen, newCount
	}
	ing.view.Store(&View{Slices: slices, Base: nBase, Total: newCount, Seq: ing.viewSeq})
	return nil
}

func (ing *Ingester) refreshLoop() {
	defer ing.wg.Done()
	t := time.NewTicker(ing.opts.RefreshEvery)
	defer t.Stop()
	for {
		select {
		case <-ing.stop:
			return
		case <-t.C:
			ing.mu.Lock()
			if !ing.closed {
				ing.refreshLocked() // a failed refresh retries next tick
			}
			ing.mu.Unlock()
		}
	}
}

// Compact synchronously drains the mutable segment into the next index
// generation: per shard, extend the immutable index with the drained
// documents (score bounds rebuilt over the merged corpus), persist the
// new generation, commit it by atomically rewriting live.json, swap the
// grown engines in, and retire the drained prefix from the WAL. A crash
// at any point recovers to either the old generation (old WAL intact)
// or the new one (drained documents in the indexes, the rest in the new
// WAL) — never to a state missing an acknowledged document.
func (ing *Ingester) Compact() error {
	ing.mu.Lock()
	if ing.compacting {
		ing.mu.Unlock()
		return fmt.Errorf("segment: compaction already in progress")
	}
	ing.compacting = true
	ing.mu.Unlock()
	err := ing.doCompact()
	ing.mu.Lock()
	ing.compacting = false
	ing.compactErr = err
	ing.mu.Unlock()
	return err
}

func (ing *Ingester) doCompact() error {
	// Build phase — off the lock, so Add keeps running. The drained
	// prefix is frozen (the segment is append-only); documents arriving
	// during the build stay in the segment past the commit.
	ing.mu.Lock()
	docs := ing.seg.Docs()
	n := len(docs)
	if n == 0 {
		ing.mu.Unlock()
		return nil
	}
	docs = docs[:n:n]
	base, _ := ing.cluster.Slices()
	total := ing.total
	gen := ing.gen
	ing.mu.Unlock()

	newGen := gen + 1
	nShards := len(base)
	newTotal := total + n
	newGlobals := shard.GlobalMaps(newTotal, nShards)
	parts := make([][]index.Document, nShards)
	for j, d := range docs {
		s := shard.ShardOf(uint32(total+j), nShards)
		parts[s] = append(parts[s], d)
	}
	newEngines := make([]*core.Engine, nShards)
	for i := range newEngines {
		ext, err := index.Extend(base[i].Eng.Index(), parts[i])
		if err != nil {
			return fmt.Errorf("segment: extend shard %d: %w", i, err)
		}
		path := filepath.Join(shard.ShardDir(ing.dir, i), indexName(newGen))
		save := ext.SaveFileFS
		if ing.opts.Mapped {
			save = ext.SaveMappedFS
		}
		if err := save(ing.fs, path); err != nil {
			return fmt.Errorf("segment: persist shard %d gen %d: %w", i, newGen, err)
		}
		newEngines[i] = core.New(ext, nil, ing.opts.Core)
	}

	// Commit phase — under the lock. Order is the crash-safety proof:
	// (1) the new generation's WAL is written and fsynced with every
	// document acknowledged after the drained prefix; (2) live.json
	// flips atomically — THE commit point; (3) the grown engines swap
	// in; (4) the old generation's files are retired (best-effort;
	// recovery sweeps orphans). Before (2) recovery sees the old
	// generation and the old WAL holds every acknowledged document;
	// after (2) the new indexes and new WAL together hold every one,
	// each exactly once.
	ing.mu.Lock()
	defer ing.mu.Unlock()
	rest := ing.seg.Docs()[n:]
	seg2, err := CreateSegment(ing.fs, filepath.Join(ing.dir, walName(newGen)))
	if err != nil {
		return err
	}
	for _, d := range rest {
		if _, err := seg2.Add(d); err != nil {
			seg2.Close()
			return err
		}
	}
	if err := fsx.WriteFileAtomic(ing.fs, filepath.Join(ing.dir, LiveName), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(liveState{Version: 1, Gen: newGen, TotalDocs: newTotal})
	}); err != nil {
		seg2.Close()
		return err
	}
	for i := range newEngines {
		if _, _, err := ing.cluster.SwapExtend(i, newEngines[i], newGlobals[i], newGen); err != nil {
			// The commit is already durable; a swap rejection here is an
			// invariant bug, not a recoverable condition.
			return fmt.Errorf("segment: post-commit swap of shard %d: %w", i, err)
		}
	}
	old := ing.seg
	ing.seg = seg2
	ing.gen = newGen
	ing.total = newTotal
	old.Close()
	ing.fs.Remove(old.Path())
	for i := 0; i < nShards; i++ {
		ing.fs.Remove(filepath.Join(shard.ShardDir(ing.dir, i), indexName(gen)))
	}
	return ing.refreshLocked()
}

// removeOrphans sweeps files a crash mid-compaction can leave behind:
// non-current ingestion WALs, non-current index generations, and
// write-temp files. Removal is best-effort — an orphan is re-swept on
// the next open.
func (ing *Ingester) removeOrphans() {
	entries, err := ing.fs.ReadDir(ing.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir() && strings.HasPrefix(name, "shard-"):
			sub, err := ing.fs.ReadDir(filepath.Join(ing.dir, name))
			if err != nil {
				continue
			}
			for _, f := range sub {
				fn := f.Name()
				if fn == indexName(ing.gen) {
					continue
				}
				if strings.HasPrefix(fn, "index") && (strings.HasSuffix(fn, ".gob") || strings.HasSuffix(fn, ".tmp")) {
					ing.fs.Remove(filepath.Join(ing.dir, name, fn))
				}
			}
		case name == walName(ing.gen):
		case strings.HasPrefix(name, "ingest-") && strings.HasSuffix(name, ".wal"):
			ing.fs.Remove(filepath.Join(ing.dir, name))
		case strings.HasSuffix(name, ".tmp"):
			ing.fs.Remove(filepath.Join(ing.dir, name))
		}
	}
}

// Close stops background refresh/compaction and releases the WAL
// handle. Acknowledged documents are durable regardless.
func (ing *Ingester) Close() error {
	ing.mu.Lock()
	if ing.closed {
		ing.mu.Unlock()
		return nil
	}
	ing.closed = true
	ing.mu.Unlock()
	close(ing.stop)
	ing.wg.Wait()
	return ing.seg.Close()
}
