package segment

import (
	"fmt"

	"csrank/internal/fsx"
	"csrank/internal/index"
	"csrank/internal/wal"
)

// Segment is the mutable tail of a live collection: an append-only
// in-memory document buffer whose every Add is WAL-logged and fsynced
// before it is acknowledged, so an acked document survives any crash.
// A Segment is not internally synchronized — the Ingester serializes
// all mutation under its own lock.
type Segment struct {
	fs   fsx.FS
	path string
	log  *wal.RawLog
	docs []index.Document
	// poisoned latches the first append failure: the log tail may hold a
	// torn record, and a record written after a torn one is unreachable
	// to replay, so further appends must be refused until the segment is
	// reopened through recovery.
	poisoned error
}

// CreateSegment starts an empty segment logging to path, truncating any
// stale log already there.
func CreateSegment(fs fsx.FS, path string) (*Segment, error) {
	log, err := wal.CreateRawLog(fs, path)
	if err != nil {
		return nil, err
	}
	return &Segment{fs: fs, path: path, log: log}, nil
}

// OpenSegment recovers the segment logged at path: every complete
// record is replayed into the document buffer, a torn final record —
// the residue of a crash mid-append, never acknowledged — is truncated
// away, and the log is reopened for appending. A missing file opens as
// an empty segment.
func OpenSegment(fs fsx.FS, path string) (*Segment, error) {
	var docs []index.Document
	res, err := wal.ReplayRaw(fs, path, func(payload []byte) error {
		d, derr := decodeDoc(payload)
		if derr != nil {
			return derr
		}
		docs = append(docs, d)
		return nil
	})
	if err != nil {
		if _, statErr := fs.Stat(path); statErr != nil {
			// No log yet: first open of a fresh directory.
			return CreateSegment(fs, path)
		}
		return nil, err
	}
	if res.TornTail {
		if err := fs.Truncate(path, res.TailOffset); err != nil {
			return nil, fmt.Errorf("segment: truncate torn tail of %s: %w", path, err)
		}
	}
	log, err := wal.OpenRawLog(fs, path)
	if err != nil {
		return nil, err
	}
	return &Segment{fs: fs, path: path, log: log, docs: docs}, nil
}

// Add logs the document — fsynced before return — and appends it to the
// buffer, returning its position in the segment. An error means the
// document was NOT acknowledged (it may or may not survive a crash) and
// poisons the segment against further appends.
func (s *Segment) Add(d index.Document) (int, error) {
	if s.poisoned != nil {
		return 0, fmt.Errorf("segment: log poisoned by earlier append failure: %w", s.poisoned)
	}
	if err := s.log.AppendRaw(encodeDoc(d)); err != nil {
		s.poisoned = err
		return 0, err
	}
	s.docs = append(s.docs, d)
	return len(s.docs) - 1, nil
}

// Docs returns the buffered documents. The slice is shared; callers
// must treat it as read-only and re-slice rather than mutate.
func (s *Segment) Docs() []index.Document { return s.docs }

// Len returns the buffered document count.
func (s *Segment) Len() int { return len(s.docs) }

// Path returns the segment's log path.
func (s *Segment) Path() string { return s.path }

// Close releases the log handle.
func (s *Segment) Close() error { return s.log.Close() }
