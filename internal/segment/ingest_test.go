package segment

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"csrank/internal/analysis"
	"csrank/internal/core"
	"csrank/internal/fsx"
	"csrank/internal/index"
	"csrank/internal/query"
	"csrank/internal/shard"
)

func testSchema() index.Schema {
	return index.Schema{
		Fields: []index.FieldSpec{
			{Name: "title", Analyzer: analysis.Keyword(), Stored: true},
			{Name: "content", Analyzer: analysis.Keyword()},
			{Name: "mesh", Analyzer: analysis.Keyword()},
		},
		PredicateField: "mesh",
		ContentField:   "content",
	}
}

// testDoc builds document number id: a unique content term (so presence
// and multiplicity are checkable by search), shared words, and mesh
// predicates for contextual queries.
func testDoc(rng *rand.Rand, id int, meshTerms, words []string) index.Document {
	content := []string{fmt.Sprintf("uniq%04d", id), "common"}
	for _, w := range words {
		for k := rng.Intn(3); k > 0; k-- {
			content = append(content, w)
		}
	}
	var mesh []string
	for _, m := range meshTerms {
		if rng.Float64() < 0.4 {
			mesh = append(mesh, m)
		}
	}
	return index.Document{Fields: map[string]string{
		"title":   fmt.Sprintf("doc-%d", id),
		"content": strings.Join(content, " "),
		"mesh":    strings.Join(mesh, " "),
	}}
}

func vocab() (meshTerms, words []string) {
	for i := 0; i < 6; i++ {
		meshTerms = append(meshTerms, fmt.Sprintf("m%02d", i))
	}
	for i := 0; i < 6; i++ {
		words = append(words, fmt.Sprintf("w%02d", i))
	}
	return
}

// buildLiveDir persists a fresh nShards cluster over docs into dir,
// exactly as csbuild -shards would.
func buildLiveDir(t *testing.T, dir string, docs []index.Document, nShards, segSize int, mapped bool) {
	t.Helper()
	parts, globals, err := shard.Split(docs, nShards)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*core.Engine, nShards)
	for i := range engines {
		ix, err := index.BuildFrom(testSchema(), segSize, parts[i])
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = core.New(ix, nil, core.Options{})
	}
	cluster, err := shard.NewCluster(engines, globals)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Save(dir, mapped); err != nil {
		t.Fatal(err)
	}
}

func searchTerm(t *testing.T, ing *Ingester, term string, k int) []core.SliceHit {
	t.Helper()
	hits, _, _, err := ing.Search(context.Background(), query.Query{Keywords: []string{term}}, k)
	if err != nil {
		t.Fatalf("search %q: %v", term, err)
	}
	return hits
}

// TestSearchableAfterAdd: with synchronous refresh, a document is
// searchable the moment Add returns, under its assigned global docID.
func TestSearchableAfterAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mesh, words := vocab()
	var docs []index.Document
	for i := 0; i < 30; i++ {
		docs = append(docs, testDoc(rng, i, mesh, words))
	}
	dir := t.TempDir()
	buildLiveDir(t, dir, docs, 2, 8, false)

	ing, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	if got := len(searchTerm(t, ing, "uniq9999", 5)); got != 0 {
		t.Fatalf("unknown term matched %d documents", got)
	}
	for i := 30; i < 45; i++ {
		id, err := ing.Add(testDoc(rng, i, mesh, words))
		if err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
		if id != i {
			t.Fatalf("document %d assigned docID %d", i, id)
		}
		hits := searchTerm(t, ing, fmt.Sprintf("uniq%04d", i), 5)
		if len(hits) != 1 || hits[0].Global != uint32(i) {
			t.Fatalf("doc %d not searchable after Add: hits=%v", i, hits)
		}
	}
	if n := ing.NumDocs(); n != 45 {
		t.Fatalf("NumDocs=%d, want 45", n)
	}
	if p := ing.Pending(); p != 15 {
		t.Fatalf("Pending=%d, want 15", p)
	}
	// Old documents are still there, exactly once.
	hits := searchTerm(t, ing, "uniq0003", 5)
	if len(hits) != 1 || hits[0].Global != 3 {
		t.Fatalf("base doc 3: hits=%v", hits)
	}
}

// TestCompactionEquivalence is the acceptance property: across shard
// counts 1/2/4 and pruning on/off, searching the live collection —
// before compaction (shards + mutable segment), after compaction, and
// after a close/reopen — is bit-identical to a single engine freshly
// built over the full concatenated corpus: same docIDs, same score
// bits, same order.
func TestCompactionEquivalence(t *testing.T) {
	const nBase, nMid, nLate = 60, 25, 15
	for _, nShards := range []int{1, 2, 4} {
		for _, pruning := range []bool{false, true} {
			rng := rand.New(rand.NewSource(int64(100 + nShards*10)))
			mesh, words := vocab()
			var docs []index.Document
			for i := 0; i < nBase+nMid+nLate; i++ {
				docs = append(docs, testDoc(rng, i, mesh, words))
			}
			opts := core.Options{Pruning: pruning, Parallelism: 2}
			fullIx, err := index.BuildFrom(testSchema(), 16, docs)
			if err != nil {
				t.Fatal(err)
			}
			single := core.New(fullIx, nil, opts)

			dir := t.TempDir()
			mapped := nShards == 2 // exercise extending a format-v4 base
			buildLiveDir(t, dir, docs[:nBase], nShards, 16, mapped)
			ing, err := Open(dir, Options{Core: opts, Mapped: mapped})
			if err != nil {
				t.Fatal(err)
			}

			addRange := func(lo, hi int) {
				t.Helper()
				for i := lo; i < hi; i++ {
					id, err := ing.Add(docs[i])
					if err != nil {
						t.Fatalf("add %d: %v", i, err)
					}
					if id != i {
						t.Fatalf("document %d assigned docID %d", i, id)
					}
				}
			}
			queries := make([]query.Query, 10)
			for i := range queries {
				q := query.Query{Keywords: []string{words[rng.Intn(len(words))]}}
				if i%3 != 0 {
					q.Context = []string{mesh[rng.Intn(len(mesh))]}
				}
				if i%4 == 0 {
					q.Keywords = append(q.Keywords, "common")
				}
				queries[i] = q
			}
			check := func(stage string, upto int) {
				t.Helper()
				sub, err := index.BuildFrom(testSchema(), 16, docs[:upto])
				if err != nil {
					t.Fatal(err)
				}
				want := single
				if upto != len(docs) {
					want = core.New(sub, nil, opts)
				}
				for _, q := range queries {
					for _, k := range []int{3, 25} {
						wantRes, _, err := want.SearchCtx(context.Background(), q, k)
						if err != nil {
							t.Fatal(err)
						}
						got, _, _, err := ing.Search(context.Background(), q, k)
						if err != nil {
							t.Fatal(err)
						}
						if len(got) != len(wantRes) {
							t.Fatalf("%s shards=%d pruning=%v q=%v k=%d: %d hits, want %d",
								stage, nShards, pruning, q, k, len(got), len(wantRes))
						}
						for i := range wantRes {
							if got[i].Global != wantRes[i].DocID || got[i].Score != wantRes[i].Score {
								t.Fatalf("%s shards=%d pruning=%v q=%v k=%d rank %d: (%d, %v), want (%d, %v)",
									stage, nShards, pruning, q, k, i,
									got[i].Global, got[i].Score, wantRes[i].DocID, wantRes[i].Score)
							}
						}
					}
				}
			}

			check("base", nBase)
			addRange(nBase, nBase+nMid)
			check("segment", nBase+nMid)
			if err := ing.Compact(); err != nil {
				t.Fatalf("compact: %v", err)
			}
			if g := ing.Generation(); g != 1 {
				t.Fatalf("generation %d after compaction, want 1", g)
			}
			if p := ing.Pending(); p != 0 {
				t.Fatalf("%d pending after compaction", p)
			}
			check("compacted", nBase+nMid)
			addRange(nBase+nMid, nBase+nMid+nLate)
			check("compacted+segment", nBase+nMid+nLate)

			// Everything must survive a close and reopen: the segment from
			// its WAL, the shards from the committed generation.
			if err := ing.Close(); err != nil {
				t.Fatal(err)
			}
			ing, err = Open(dir, Options{Core: opts, Mapped: mapped})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			if n := ing.NumDocs(); n != nBase+nMid+nLate {
				t.Fatalf("reopened NumDocs=%d, want %d", n, nBase+nMid+nLate)
			}
			check("reopened", nBase+nMid+nLate)
			if err := ing.Compact(); err != nil {
				t.Fatalf("second compact: %v", err)
			}
			check("recompacted", nBase+nMid+nLate)
			ing.Close()
		}
	}
}

// copyTree clones the pristine directory so every kill point starts
// from identical on-disk state.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			copyTree(t, s, d)
			continue
		}
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKillPointRecovery sweeps an injected crash across every mutating
// filesystem operation of an ingest + compact + ingest + compact
// schedule — clean failures and torn writes both — and after each crash
// recovers the directory and proves that every acknowledged document is
// searchable exactly once under its assigned docID. This is the WAL's
// fsync-before-ack contract, end to end.
func TestKillPointRecovery(t *testing.T) {
	const nBase = 20
	rng := rand.New(rand.NewSource(7))
	mesh, words := vocab()
	var baseDocs []index.Document
	for i := 0; i < nBase; i++ {
		baseDocs = append(baseDocs, testDoc(rng, i, mesh, words))
	}
	pristine := t.TempDir()
	buildLiveDir(t, pristine, baseDocs, 2, 8, false)
	// Documents the schedule will try to add, keyed by their docID.
	var addDocs []index.Document
	for i := nBase; i < nBase+12; i++ {
		addDocs = append(addDocs, testDoc(rng, i, mesh, words))
	}

	// schedule runs the ingest workload, tolerating failures (after the
	// fault fires everything errors), and returns which documents were
	// acknowledged.
	schedule := func(t *testing.T, fs fsx.FS, dir string) map[int]string {
		t.Helper()
		acked := make(map[int]string)
		ing, err := Open(dir, Options{FS: fs})
		if err != nil {
			return acked
		}
		defer ing.Close()
		next := 0
		addOne := func() {
			if next >= len(addDocs) {
				return
			}
			want := nBase + next
			id, err := ing.Add(addDocs[next])
			if err != nil {
				return
			}
			if id != want {
				t.Fatalf("document %d acknowledged under docID %d", want, id)
			}
			acked[id] = fmt.Sprintf("uniq%04d", id)
			next++
		}
		for i := 0; i < 5; i++ {
			addOne()
		}
		ing.Compact() // may fail under fault; never loses acked docs
		for i := 0; i < 4; i++ {
			addOne()
		}
		ing.Compact()
		for i := 0; i < 3; i++ {
			addOne()
		}
		return acked
	}

	verify := func(t *testing.T, point int, fault *fsx.FaultFS, dir string, acked map[int]string) {
		t.Helper()
		fault.Reset()
		ing, err := Open(dir, Options{FS: fault})
		if err != nil {
			t.Fatalf("point %d: recovery open: %v", point, err)
		}
		defer ing.Close()
		// Every base document and every acked document: present exactly
		// once, under its docID.
		expect := make(map[int]string, nBase+len(acked))
		for i := 0; i < nBase; i++ {
			expect[i] = fmt.Sprintf("uniq%04d", i)
		}
		for id, term := range acked {
			expect[id] = term
		}
		for id, term := range expect {
			hits := searchTerm(t, ing, term, 5)
			if len(hits) != 1 {
				t.Fatalf("point %d: doc %d present %d times after recovery", point, id, len(hits))
			}
			if hits[0].Global != uint32(id) {
				t.Fatalf("point %d: doc %d recovered under docID %d", point, id, hits[0].Global)
			}
		}
		// At most the single in-flight unacknowledged document may also
		// have survived.
		if n, lo := ing.NumDocs(), nBase+len(acked); n < lo || n > lo+1 {
			t.Fatalf("point %d: recovered %d documents, acked %d", point, n, lo)
		}
	}

	// Clean run: count the schedule's mutating operations.
	cleanDir := t.TempDir()
	copyTree(t, pristine, cleanDir)
	fault := fsx.NewFaultFS(fsx.OS)
	acked := schedule(t, fault, cleanDir)
	if len(acked) != 12 {
		t.Fatalf("clean run acked %d documents, want 12", len(acked))
	}
	ops := fault.Ops() // before verify's Reset zeroes the counter
	verify(t, 0, fault, cleanDir, acked)
	if ops < 20 {
		t.Fatalf("suspiciously few mutating ops (%d); fault sweep would be vacuous", ops)
	}

	for _, short := range []bool{false, true} {
		for point := 1; point <= ops; point++ {
			dir := filepath.Join(t.TempDir(), "run")
			copyTree(t, pristine, dir)
			f := fsx.NewFaultFS(fsx.OS)
			f.Arm(point, short)
			got := schedule(t, f, dir)
			if !f.Crashed() {
				t.Fatalf("point %d short=%v: fault never fired", point, short)
			}
			verify(t, point, f, dir, got)
		}
	}
}

// TestDocCodecRoundTrip: the WAL document codec is lossless and
// deterministic.
func TestDocCodecRoundTrip(t *testing.T) {
	docs := []index.Document{
		{Fields: map[string]string{}},
		{Fields: map[string]string{"title": "a"}},
		{Fields: map[string]string{"title": "x", "content": "some words here", "mesh": "m01 m02"}},
		{Fields: map[string]string{"content": strings.Repeat("long ", 1000)}},
		{Fields: map[string]string{"weird\x00name": "weird\xffvalue", "": ""}},
	}
	for i, d := range docs {
		enc := encodeDoc(d)
		if string(enc) != string(encodeDoc(d)) {
			t.Fatalf("doc %d: encoding not deterministic", i)
		}
		got, err := decodeDoc(enc)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if len(got.Fields) != len(d.Fields) {
			t.Fatalf("doc %d: %d fields, want %d", i, len(got.Fields), len(d.Fields))
		}
		for k, v := range d.Fields {
			if got.Fields[k] != v {
				t.Fatalf("doc %d field %q: %q, want %q", i, k, got.Fields[k], v)
			}
		}
	}
	if _, err := decodeDoc([]byte{0x02, 0x01, 'a'}); err == nil {
		t.Fatal("truncated payload decoded")
	}
	if _, err := decodeDoc(append(encodeDoc(docs[1]), 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
