package trec

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements the standard TREC interchange formats, so the
// synthetic benchmark interoperates with the usual IR tooling
// (trec_eval-style pipelines):
//
//   - qrels:  "topicID 0 docID relevance"
//   - runs:   "topicID Q0 docID rank score runTag"
//   - topics: a tab-separated variant carrying the context specification
//     alongside the keywords ("id<TAB>question<TAB>kw1 kw2<TAB>m1 m2").

// WriteQrels writes judgment sets in TREC qrels format, topics in
// ascending ID order and documents ascending within a topic.
func WriteQrels(w io.Writer, qrels map[int]Qrels) error {
	bw := bufio.NewWriter(w)
	ids := make([]int, 0, len(qrels))
	for id := range qrels {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, topic := range ids {
		docs := make([]int, 0, len(qrels[topic]))
		for d, rel := range qrels[topic] {
			if rel {
				docs = append(docs, d)
			}
		}
		sort.Ints(docs)
		for _, d := range docs {
			if _, err := fmt.Fprintf(bw, "%d 0 %d 1\n", topic, d); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadQrels parses TREC qrels. Lines with relevance 0 are kept as
// explicit negatives (mapped to false); malformed lines are errors.
func ReadQrels(r io.Reader) (map[int]Qrels, error) {
	out := make(map[int]Qrels)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 4 {
			return nil, fmt.Errorf("trec: qrels line %d: %d fields", lineNo, len(f))
		}
		topic, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("trec: qrels line %d: topic: %w", lineNo, err)
		}
		doc, err := strconv.Atoi(f[2])
		if err != nil {
			return nil, fmt.Errorf("trec: qrels line %d: doc: %w", lineNo, err)
		}
		rel, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, fmt.Errorf("trec: qrels line %d: relevance: %w", lineNo, err)
		}
		if out[topic] == nil {
			out[topic] = Qrels{}
		}
		out[topic][doc] = rel > 0
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// RunEntry is one line of a TREC run: a ranked document for a topic.
type RunEntry struct {
	Topic int
	DocID int
	Rank  int // 1-based
	Score float64
}

// WriteRun writes ranked results in TREC run format under the given run
// tag. Entries are emitted in the order given; callers pass them already
// ranked.
func WriteRun(w io.Writer, tag string, entries []RunEntry) error {
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		if _, err := fmt.Fprintf(bw, "%d Q0 %d %d %g %s\n", e.Topic, e.DocID, e.Rank, e.Score, tag); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRun parses a TREC run file, returning entries grouped by topic in
// file order plus the run tag (from the first line).
func ReadRun(r io.Reader) (entries []RunEntry, tag string, err error) {
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 6 {
			return nil, "", fmt.Errorf("trec: run line %d: %d fields", lineNo, len(f))
		}
		topic, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, "", fmt.Errorf("trec: run line %d: topic: %w", lineNo, err)
		}
		doc, err := strconv.Atoi(f[2])
		if err != nil {
			return nil, "", fmt.Errorf("trec: run line %d: doc: %w", lineNo, err)
		}
		rank, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, "", fmt.Errorf("trec: run line %d: rank: %w", lineNo, err)
		}
		score, err := strconv.ParseFloat(f[4], 64)
		if err != nil {
			return nil, "", fmt.Errorf("trec: run line %d: score: %w", lineNo, err)
		}
		if tag == "" {
			tag = f[5]
		}
		entries = append(entries, RunEntry{Topic: topic, DocID: doc, Rank: rank, Score: score})
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	return entries, tag, nil
}

// RankedToEntries converts a ranked docID list into run entries for one
// topic, assigning 1-based ranks.
func RankedToEntries(topic int, ranked []int, scores []float64) []RunEntry {
	out := make([]RunEntry, len(ranked))
	for i, d := range ranked {
		e := RunEntry{Topic: topic, DocID: d, Rank: i + 1}
		if i < len(scores) {
			e.Score = scores[i]
		}
		out[i] = e
	}
	return out
}

// TopicFile is one topic row of the tab-separated topic format.
type TopicFile struct {
	ID       int
	Question string
	Keywords []string
	Context  []string
}

// WriteTopics writes topics in the tab-separated format.
func WriteTopics(w io.Writer, topics []TopicFile) error {
	bw := bufio.NewWriter(w)
	for _, t := range topics {
		if strings.ContainsRune(t.Question, '\t') || strings.ContainsRune(t.Question, '\n') {
			return fmt.Errorf("trec: topic %d question contains tab or newline", t.ID)
		}
		if _, err := fmt.Fprintf(bw, "%d\t%s\t%s\t%s\n",
			t.ID, t.Question, strings.Join(t.Keywords, " "), strings.Join(t.Context, " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTopics parses the tab-separated topic format.
func ReadTopics(r io.Reader) ([]TopicFile, error) {
	var out []TopicFile
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("trec: topics line %d: %d fields", lineNo, len(parts))
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("trec: topics line %d: id: %w", lineNo, err)
		}
		out = append(out, TopicFile{
			ID:       id,
			Question: parts[1],
			Keywords: strings.Fields(parts[2]),
			Context:  strings.Fields(parts[3]),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
