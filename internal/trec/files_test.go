package trec

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestQrelsRoundTrip(t *testing.T) {
	in := map[int]Qrels{
		1: NewQrels([]int{10, 7}),
		3: NewQrels([]int{42}),
	}
	var buf bytes.Buffer
	if err := WriteQrels(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadQrels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip: %v vs %v", got, in)
	}
}

func TestQrelsFormatStable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteQrels(&buf, map[int]Qrels{2: NewQrels([]int{9, 3})}); err != nil {
		t.Fatal(err)
	}
	want := "2 0 3 1\n2 0 9 1\n"
	if buf.String() != want {
		t.Errorf("qrels output %q, want %q", buf.String(), want)
	}
}

func TestReadQrelsNegativesAndComments(t *testing.T) {
	in := "# comment\n1 0 5 1\n1 0 6 0\n\n"
	got, err := ReadQrels(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !got[1][5] || got[1][6] {
		t.Errorf("qrels = %v", got)
	}
}

func TestReadQrelsErrors(t *testing.T) {
	for _, bad := range []string{"1 0 5", "x 0 5 1", "1 0 y 1", "1 0 5 z"} {
		if _, err := ReadQrels(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestRunRoundTrip(t *testing.T) {
	entries := []RunEntry{
		{Topic: 1, DocID: 10, Rank: 1, Score: 3.25},
		{Topic: 1, DocID: 4, Rank: 2, Score: 1.5},
		{Topic: 2, DocID: 9, Rank: 1, Score: 0.125},
	}
	var buf bytes.Buffer
	if err := WriteRun(&buf, "csrank-ctx", entries); err != nil {
		t.Fatal(err)
	}
	got, tag, err := ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tag != "csrank-ctx" {
		t.Errorf("tag = %q", tag)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Errorf("round trip: %v vs %v", got, entries)
	}
}

func TestReadRunErrors(t *testing.T) {
	for _, bad := range []string{"1 Q0 2 3 4", "x Q0 2 3 4.0 tag", "1 Q0 y 3 4.0 tag", "1 Q0 2 z 4.0 tag", "1 Q0 2 3 zz tag"} {
		if _, _, err := ReadRun(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestRankedToEntries(t *testing.T) {
	got := RankedToEntries(7, []int{5, 3}, []float64{2.5, 1.25})
	want := []RunEntry{
		{Topic: 7, DocID: 5, Rank: 1, Score: 2.5},
		{Topic: 7, DocID: 3, Rank: 2, Score: 1.25},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RankedToEntries = %v", got)
	}
	// Short score slice tolerated.
	got = RankedToEntries(1, []int{5, 3}, []float64{2.5})
	if got[1].Score != 0 {
		t.Error("missing score should default to 0")
	}
}

func TestTopicsRoundTrip(t *testing.T) {
	in := []TopicFile{
		{ID: 1, Question: "What is the role of X in Y?",
			Keywords: []string{"x", "y"}, Context: []string{"humans", "neoplasms"}},
		{ID: 2, Question: "Another question", Keywords: []string{"z"}, Context: nil},
	}
	var buf bytes.Buffer
	if err := WriteTopics(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTopics(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 1 || got[0].Question != in[0].Question {
		t.Fatalf("round trip: %v", got)
	}
	if !reflect.DeepEqual(got[0].Keywords, in[0].Keywords) ||
		!reflect.DeepEqual(got[0].Context, in[0].Context) {
		t.Errorf("topic 1 fields: %v", got[0])
	}
	if len(got[1].Context) != 0 {
		t.Errorf("empty context round trip: %v", got[1].Context)
	}
}

func TestWriteTopicsRejectsTabs(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTopics(&buf, []TopicFile{{ID: 1, Question: "bad\tquestion"}})
	if err == nil {
		t.Error("tab in question accepted")
	}
}

func TestReadTopicsErrors(t *testing.T) {
	for _, bad := range []string{"1\tq\tk", "x\tq\tk\tc"} {
		if _, err := ReadTopics(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
