package trec

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestQualifies(t *testing.T) {
	if !Qualifies(20, 5) {
		t.Error("boundary should qualify")
	}
	if Qualifies(19, 5) || Qualifies(20, 4) {
		t.Error("below-threshold should not qualify")
	}
}

func TestNewQrels(t *testing.T) {
	q := NewQrels([]int{3, 7, 3})
	if len(q) != 2 || !q[3] || !q[7] || q[4] {
		t.Errorf("qrels = %v", q)
	}
}

func TestPrecisionAtK(t *testing.T) {
	rel := NewQrels([]int{1, 3, 5})
	ranked := []int{1, 2, 3, 4, 5, 6}
	if got := PrecisionAtK(ranked, rel, 3); got != 2 {
		t.Errorf("P@3 = %d, want 2", got)
	}
	if got := PrecisionAtK(ranked, rel, 6); got != 3 {
		t.Errorf("P@6 = %d, want 3", got)
	}
	if got := PrecisionAtK(ranked, rel, 100); got != 3 {
		t.Errorf("P@100 = %d, want 3 (short list)", got)
	}
	if got := PrecisionAtK(nil, rel, 20); got != 0 {
		t.Errorf("P over empty = %d", got)
	}
}

func TestReciprocalRank(t *testing.T) {
	rel := NewQrels([]int{5})
	if got := ReciprocalRank([]int{5, 1, 2}, rel); !approx(got, 1) {
		t.Errorf("RR = %v, want 1", got)
	}
	if got := ReciprocalRank([]int{1, 2, 5}, rel); !approx(got, 1.0/3) {
		t.Errorf("RR = %v, want 1/3", got)
	}
	if got := ReciprocalRank([]int{1, 2}, rel); got != 0 {
		t.Errorf("RR with no hit = %v", got)
	}
}

func TestAveragePrecision(t *testing.T) {
	rel := NewQrels([]int{1, 2})
	// Ranked: rel at positions 1 and 3 -> AP = (1/1 + 2/3)/2.
	got := AveragePrecision([]int{1, 9, 2}, rel)
	want := (1.0 + 2.0/3.0) / 2
	if !approx(got, want) {
		t.Errorf("AP = %v, want %v", got, want)
	}
	if AveragePrecision([]int{1}, Qrels{}) != 0 {
		t.Error("AP with empty qrels should be 0")
	}
}

func TestNDCG(t *testing.T) {
	rel := NewQrels([]int{1})
	if got := NDCGAtK([]int{1, 2}, rel, 2); !approx(got, 1) {
		t.Errorf("perfect NDCG = %v", got)
	}
	got := NDCGAtK([]int{2, 1}, rel, 2)
	want := (1 / math.Log2(3)) / 1
	if !approx(got, want) {
		t.Errorf("NDCG = %v, want %v", got, want)
	}
	if NDCGAtK([]int{2}, Qrels{}, 5) != 0 {
		t.Error("NDCG with empty qrels should be 0")
	}
}

func TestEvaluateAndSummarize(t *testing.T) {
	rel := NewQrels([]int{1, 2, 3, 4, 5})
	r := Evaluate(7, []int{1, 9, 2, 8, 3}, rel)
	if r.TopicID != 7 || r.PrecisionAt20 != 3 || !approx(r.ReciprocalRank, 1) {
		t.Errorf("Evaluate = %+v", r)
	}
	if r.ResultSize != 5 {
		t.Errorf("ResultSize = %d", r.ResultSize)
	}
	s := Summarize([]TopicResult{
		{PrecisionAt20: 10, ReciprocalRank: 1},
		{PrecisionAt20: 6, ReciprocalRank: 0.5},
	})
	if s.Queries != 2 || !approx(s.MeanPrecision, 8) || !approx(s.MRR, 0.75) {
		t.Errorf("Summarize = %+v", s)
	}
	if got := Summarize(nil); got.Queries != 0 {
		t.Errorf("empty Summarize = %+v", got)
	}
}

// Property: metrics are bounded — 0 ≤ RR, AP, NDCG ≤ 1 and
// 0 ≤ P@K ≤ min(K, |rel|).
func TestMetricBoundsProperty(t *testing.T) {
	f := func(rankedRaw []uint8, relRaw []uint8, kRaw uint8) bool {
		ranked := make([]int, len(rankedRaw))
		for i, v := range rankedRaw {
			ranked[i] = int(v)
		}
		var relList []int
		for _, v := range relRaw {
			relList = append(relList, int(v))
		}
		rel := NewQrels(relList)
		k := int(kRaw%30) + 1
		p := PrecisionAtK(ranked, rel, k)
		if p < 0 || p > k || p > len(rel) {
			return false
		}
		for _, v := range []float64{ReciprocalRank(ranked, rel), AveragePrecision(ranked, rel), NDCGAtK(ranked, rel, k)} {
			if v < 0 || v > 1+1e-12 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: a ranking with all relevant documents first maximizes every
// metric relative to any other permutation prefix.
func TestPerfectRankingProperty(t *testing.T) {
	rel := NewQrels([]int{0, 1, 2})
	perfect := []int{0, 1, 2, 3, 4}
	worst := []int{3, 4, 0, 1, 2}
	if AveragePrecision(perfect, rel) < AveragePrecision(worst, rel) {
		t.Error("AP ordering violated")
	}
	if NDCGAtK(perfect, rel, 5) < NDCGAtK(worst, rel, 5) {
		t.Error("NDCG ordering violated")
	}
	if !approx(AveragePrecision(perfect, rel), 1) {
		t.Error("perfect AP != 1")
	}
}
