// Package trec implements the ranking-quality evaluation harness of §6.1:
// TREC-style metrics over ranked result lists against gold-standard
// relevance judgments (qrels), plus the paper's query-qualification
// filters. Documents are identified by their collection index.
package trec

import "math"

// MinResultSize and MinRelevant are the paper's qualification filters:
// "we exclude those queries whose result sets are too small (less than
// 20), or the corresponding relevant document sets in the gold standard
// are too small (less than 5)".
const (
	MinResultSize = 20
	MinRelevant   = 5
)

// Qualifies applies the paper's query-qualification filters.
func Qualifies(resultSize, relevantCount int) bool {
	return resultSize >= MinResultSize && relevantCount >= MinRelevant
}

// Qrels is a gold-standard relevance judgment set for one topic.
type Qrels map[int]bool

// NewQrels builds a judgment set from a list of relevant document indices.
func NewQrels(relevant []int) Qrels {
	q := make(Qrels, len(relevant))
	for _, d := range relevant {
		q[d] = true
	}
	return q
}

// PrecisionAtK returns the *count* of relevant documents among the top K
// of ranked — the unit of the paper's Figures 6a/6b ("the y-axis denotes
// the number of relevant results in top 20 results"). If ranked is shorter
// than K, the shorter prefix is used.
func PrecisionAtK(ranked []int, rel Qrels, k int) int {
	if k > len(ranked) {
		k = len(ranked)
	}
	n := 0
	for _, d := range ranked[:k] {
		if rel[d] {
			n++
		}
	}
	return n
}

// ReciprocalRank returns 1/position of the first relevant document
// (1-based), or 0 if none appears — the measure of Figures 6c/6d.
func ReciprocalRank(ranked []int, rel Qrels) float64 {
	for i, d := range ranked {
		if rel[d] {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// AveragePrecision returns AP: the mean of precision@rank over the ranks
// of relevant retrieved documents, normalized by the total number of
// relevant documents.
func AveragePrecision(ranked []int, rel Qrels) float64 {
	if len(rel) == 0 {
		return 0
	}
	hits, sum := 0, 0.0
	for i, d := range ranked {
		if rel[d] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(len(rel))
}

// NDCGAtK returns the normalized discounted cumulative gain at K with
// binary gains.
func NDCGAtK(ranked []int, rel Qrels, k int) float64 {
	if k > len(ranked) {
		k = len(ranked)
	}
	dcg := 0.0
	for i, d := range ranked[:k] {
		if rel[d] {
			dcg += 1 / math.Log2(float64(i)+2)
		}
	}
	ideal := 0.0
	n := len(rel)
	if n > k {
		n = k
	}
	for i := 0; i < n; i++ {
		ideal += 1 / math.Log2(float64(i)+2)
	}
	if ideal == 0 {
		return 0
	}
	return dcg / ideal
}

// TopicResult aggregates the per-query measurements reported in Figure 6
// for one system.
type TopicResult struct {
	TopicID        int
	PrecisionAt20  int
	ReciprocalRank float64
	AP             float64
	NDCG20         float64
	ResultSize     int
}

// Evaluate computes a TopicResult from a ranked list and qrels.
func Evaluate(topicID int, ranked []int, rel Qrels) TopicResult {
	return TopicResult{
		TopicID:        topicID,
		PrecisionAt20:  PrecisionAtK(ranked, rel, 20),
		ReciprocalRank: ReciprocalRank(ranked, rel),
		AP:             AveragePrecision(ranked, rel),
		NDCG20:         NDCGAtK(ranked, rel, 20),
		ResultSize:     len(ranked),
	}
}

// Summary holds workload-level means (the statistics quoted in §6.1: mean
// precision and mean reciprocal rank over the 30 queries).
type Summary struct {
	Queries       int
	MeanPrecision float64
	MRR           float64
	MAP           float64
	MeanNDCG20    float64
}

// Summarize averages a set of per-topic results.
func Summarize(results []TopicResult) Summary {
	var s Summary
	if len(results) == 0 {
		return s
	}
	for _, r := range results {
		s.MeanPrecision += float64(r.PrecisionAt20)
		s.MRR += r.ReciprocalRank
		s.MAP += r.AP
		s.MeanNDCG20 += r.NDCG20
	}
	n := float64(len(results))
	s.Queries = len(results)
	s.MeanPrecision /= n
	s.MRR /= n
	s.MAP /= n
	s.MeanNDCG20 /= n
	return s
}
