package snapshot

import (
	"bytes"
	"testing"
)

// buildPaged writes a three-section paged file with one lazy section.
func buildPaged(t *testing.T, pageSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	pw, err := NewPagedWriter(&buf, KindIndex, 4, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.Begin("payload", SectionLazyVerify); err != nil {
		t.Fatal(err)
	}
	pw.Write(bytes.Repeat([]byte{0xAB, 1, 2, 3}, 100))
	if err := pw.Begin("dir", 0); err != nil {
		t.Fatal(err)
	}
	pw.Write([]byte("directory-bytes"))
	if err := pw.Begin("toc", 0); err != nil {
		t.Fatal(err)
	}
	pw.Write([]byte("toc-bytes"))
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPagedRoundTrip(t *testing.T) {
	for _, pageSize := range []int{64, 512, DefaultPageSize} {
		data := buildPaged(t, pageSize)
		pf, err := OpenPaged(data)
		if err != nil {
			t.Fatalf("pageSize %d: %v", pageSize, err)
		}
		if pf.Header().Kind != KindIndex || pf.Header().PayloadVersion != 4 {
			t.Fatalf("pageSize %d: header %+v", pageSize, pf.Header())
		}
		if pf.PageSize() != pageSize {
			t.Fatalf("pageSize %d: got %d", pageSize, pf.PageSize())
		}
		pay, ok := pf.Section("payload")
		if !ok || len(pay) != 400 || pay[0] != 0xAB {
			t.Fatalf("pageSize %d: payload section wrong (%d bytes)", pageSize, len(pay))
		}
		if d, ok := pf.Section("dir"); !ok || string(d) != "directory-bytes" {
			t.Fatalf("pageSize %d: dir section wrong", pageSize)
		}
		if _, ok := pf.Section("missing"); ok {
			t.Fatal("found a section that was never written")
		}
		// Sections start on page boundaries.
		for i := range pf.secs {
			if pf.secs[i].off%uint64(pageSize) != 0 {
				t.Fatalf("section %q at unaligned offset %d", pf.secs[i].Name, pf.secs[i].off)
			}
		}
		if err := pf.VerifyAll(); err != nil {
			t.Fatalf("pageSize %d: VerifyAll: %v", pageSize, err)
		}
	}
}

func TestPagedNotPaged(t *testing.T) {
	if _, err := OpenPaged([]byte("not a paged file at all........")); err != ErrNotPaged {
		t.Fatalf("got %v, want ErrNotPaged", err)
	}
}

// TestPagedDetectsCorruption flips every byte of a paged file in turn
// and requires each flip to be caught by OpenPaged or VerifyAll, and
// every truncation to be caught by OpenPaged.
func TestPagedDetectsCorruption(t *testing.T) {
	data := buildPaged(t, 64)

	verify := func(b []byte) error {
		pf, err := OpenPaged(b)
		if err != nil {
			return err
		}
		return pf.VerifyAll()
	}
	if err := verify(data); err != nil {
		t.Fatalf("pristine file failed verification: %v", err)
	}
	for cut := 0; cut < len(data); cut++ {
		if err := verify(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes undetected", cut)
		}
	}
	for off := 0; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		if err := verify(mut); err == nil {
			t.Fatalf("bit flip at offset %d undetected", off)
		}
	}
}

// TestPagedLazySectionSkipsEagerVerify shows the division of labor:
// corruption inside a lazy section passes OpenPaged but fails
// VerifySection.
func TestPagedLazySectionSkipsEagerVerify(t *testing.T) {
	data := buildPaged(t, 64)
	pf, err := OpenPaged(data)
	if err != nil {
		t.Fatal(err)
	}
	pay, _ := pf.Section("payload")
	// Corrupt a payload byte in place (the slice aliases data).
	pay[10] ^= 0xFF
	if _, err := OpenPaged(data); err != nil {
		t.Fatalf("lazy section corruption should pass OpenPaged, got %v", err)
	}
	if err := pf.VerifySection("payload"); err == nil {
		t.Fatal("VerifySection missed lazy-section corruption")
	}
	if err := pf.VerifySection("dir"); err != nil {
		t.Fatalf("dir section should still verify: %v", err)
	}
}

func TestPagedWriterRejectsMisuse(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewPagedWriter(&buf, KindIndex, 4, 7); err == nil {
		t.Fatal("page size 7 accepted")
	}
	pw, err := NewPagedWriter(&buf, KindIndex, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write([]byte("x")); err == nil {
		t.Fatal("Write outside a section accepted")
	}
	if err := pw.Begin("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := pw.Begin("a", 0); err == nil {
		t.Fatal("duplicate section name accepted")
	}
}
