package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Paged container: the random-access sibling of the streaming frame
// above, built for files that are read in place through a memory
// mapping rather than decoded front to back. A paged file is a set of
// named sections, each starting on a page boundary so an mmap-backed
// reader can hand out aligned slices of the raw file, with CRC32-C
// integrity at three granularities: the header, each section, and the
// section table itself. Readers locate the section table through a
// fixed-size footer at the end of the file — a sequential reader
// cannot use this format, which is the point: nothing before the
// footer needs to be touched to open the file.
//
// Layout (all integers little-endian):
//
//	header        magic "CSPAGEv1" | kind u16 | payload version u32 |
//	              page size u32 | header CRC32-C u32, zero-padded to
//	              one page
//	sections      each starts at a page boundary: raw bytes, then zero
//	              padding to the next page boundary
//	section table count u32, then per section:
//	              name len u16 | name | flags u16 | offset u64 |
//	              length u64 | CRC32-C u32
//	footer        32 bytes: table offset u64 | table length u64 |
//	              table CRC32-C u32 | footer CRC32-C u32 (over the
//	              preceding 20 bytes) | end magic "1vEGAPSC"
//
// OpenPaged verifies the header, footer, table, all padding (must be
// zero) and every section's CRC except sections flagged
// SectionLazyVerify, whose checksum the application checks on demand
// (VerifySection) or defers to its own finer-grained checks. Together
// with VerifyAll this makes every byte of the file either CRC-covered
// or required-zero, so any single corruption is detectable.

// PagedMagic identifies a paged container file.
const PagedMagic = "CSPAGEv1"

// pagedEndMagic seals the footer (PagedMagic reversed, so a file
// cannot begin and end with the same 8 bytes by accident).
const pagedEndMagic = "1vEGAPSC"

// DefaultPageSize is the section alignment written by default. 4 KiB
// matches the common CPU page size, so section starts are mappable
// page-aligned and 8-byte payload alignment inside a section holds in
// the file.
const DefaultPageSize = 4096

// MaxPageSize bounds the page size a reader accepts from an untrusted
// header.
const MaxPageSize = 1 << 20

// maxPagedSections bounds the section count a reader accepts; real
// files have a handful.
const maxPagedSections = 1024

// SectionLazyVerify marks a section whose CRC OpenPaged does not
// verify eagerly. The application either calls VerifySection when it
// wants the whole-section scan, or relies on its own per-record
// checksums (the index's per-block CRCs) to catch corruption lazily.
const SectionLazyVerify uint16 = 1

const (
	pagedHeaderLen = 22
	pagedFooterLen = 32
)

// ErrNotPaged reports that a byte slice does not begin with the paged
// container magic.
var ErrNotPaged = fmt.Errorf("snapshot: not a paged container (bad magic)")

// IsPaged reports whether a file beginning with prefix (at least 8
// bytes) is a paged container.
func IsPaged(prefix []byte) bool {
	return len(prefix) >= len(PagedMagic) && string(prefix[:len(PagedMagic)]) == PagedMagic
}

// PagedWriter assembles a paged container onto an io.Writer. Sections
// are written strictly in Begin order; Close emits the table and
// footer. The underlying writer is not closed.
type PagedWriter struct {
	w        io.Writer
	pageSize int
	off      uint64
	secs     []pagedSection
	cur      int // index of the open section, -1 when none
	crc      uint32
	err      error
}

type pagedSection struct {
	name  string
	flags uint16
	off   uint64
	len   uint64
	crc   uint32
}

// NewPagedWriter starts a paged container. pageSize ≤ 0 selects
// DefaultPageSize; tests use small pages to keep fixture files tiny.
// pageSize must be a multiple of 8 and at least the header length.
func NewPagedWriter(w io.Writer, kind uint16, payloadVersion uint32, pageSize int) (*PagedWriter, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if pageSize%8 != 0 || pageSize < 32 || pageSize > MaxPageSize {
		return nil, fmt.Errorf("snapshot: invalid page size %d", pageSize)
	}
	pw := &PagedWriter{w: w, pageSize: pageSize, cur: -1}
	var hdr [pagedHeaderLen]byte
	copy(hdr[:8], PagedMagic)
	binary.LittleEndian.PutUint16(hdr[8:10], kind)
	binary.LittleEndian.PutUint32(hdr[10:14], payloadVersion)
	binary.LittleEndian.PutUint32(hdr[14:18], uint32(pageSize))
	binary.LittleEndian.PutUint32(hdr[18:22], crc32.Checksum(hdr[:18], castagnoli))
	if err := pw.emit(hdr[:]); err != nil {
		return nil, err
	}
	return pw, pw.pad()
}

func (pw *PagedWriter) emit(p []byte) error {
	if pw.err != nil {
		return pw.err
	}
	if _, err := pw.w.Write(p); err != nil {
		pw.err = err
		return err
	}
	pw.off += uint64(len(p))
	return nil
}

var pagedZeros [4096]byte

// pad advances the file to the next page boundary with zero bytes.
func (pw *PagedWriter) pad() error {
	rem := int(pw.off % uint64(pw.pageSize))
	if rem == 0 {
		return nil
	}
	n := pw.pageSize - rem
	for n > 0 {
		c := n
		if c > len(pagedZeros) {
			c = len(pagedZeros)
		}
		if err := pw.emit(pagedZeros[:c]); err != nil {
			return err
		}
		n -= c
	}
	return nil
}

// Begin starts a new named section with the given flags. The previous
// section, if any, is sealed. Section names must be unique.
func (pw *PagedWriter) Begin(name string, flags uint16) error {
	if pw.err != nil {
		return pw.err
	}
	if name == "" || len(name) > 255 {
		return fmt.Errorf("snapshot: invalid section name %q", name)
	}
	for _, s := range pw.secs {
		if s.name == name {
			return fmt.Errorf("snapshot: duplicate section %q", name)
		}
	}
	if err := pw.seal(); err != nil {
		return err
	}
	pw.secs = append(pw.secs, pagedSection{name: name, flags: flags, off: pw.off})
	pw.cur = len(pw.secs) - 1
	return nil
}

// seal finishes the open section: records its length and pads to the
// next page boundary.
func (pw *PagedWriter) seal() error {
	if pw.cur >= 0 {
		s := &pw.secs[pw.cur]
		s.len = pw.off - s.off
		s.crc = pw.crc
		pw.crc = 0
		pw.cur = -1
	}
	return pw.pad()
}

// Write appends bytes to the open section.
func (pw *PagedWriter) Write(p []byte) (int, error) {
	if pw.err != nil {
		return 0, pw.err
	}
	if pw.cur < 0 {
		return 0, fmt.Errorf("snapshot: Write outside a section")
	}
	pw.crc = crc32.Update(pw.crc, castagnoli, p)
	if err := pw.emit(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Close seals the last section and writes the table and footer.
func (pw *PagedWriter) Close() error {
	if err := pw.seal(); err != nil {
		return err
	}
	table := make([]byte, 0, 64)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(pw.secs)))
	table = append(table, tmp[:4]...)
	for _, s := range pw.secs {
		binary.LittleEndian.PutUint16(tmp[:2], uint16(len(s.name)))
		table = append(table, tmp[:2]...)
		table = append(table, s.name...)
		binary.LittleEndian.PutUint16(tmp[:2], s.flags)
		table = append(table, tmp[:2]...)
		binary.LittleEndian.PutUint64(tmp[:8], s.off)
		table = append(table, tmp[:8]...)
		binary.LittleEndian.PutUint64(tmp[:8], s.len)
		table = append(table, tmp[:8]...)
		binary.LittleEndian.PutUint32(tmp[:4], s.crc)
		table = append(table, tmp[:4]...)
	}
	tableOff := pw.off
	if err := pw.emit(table); err != nil {
		return err
	}
	var foot [pagedFooterLen]byte
	binary.LittleEndian.PutUint64(foot[0:8], tableOff)
	binary.LittleEndian.PutUint64(foot[8:16], uint64(len(table)))
	binary.LittleEndian.PutUint32(foot[16:20], crc32.Checksum(table, castagnoli))
	binary.LittleEndian.PutUint32(foot[20:24], crc32.Checksum(foot[:20], castagnoli))
	copy(foot[24:32], pagedEndMagic)
	return pw.emit(foot[:])
}

// PagedSection describes one section of an opened paged container.
type PagedSection struct {
	Name  string
	Flags uint16
	Data  []byte
	off   uint64
	crc   uint32
}

// PagedFile is an opened, structurally verified paged container. All
// Data slices alias the byte slice given to OpenPaged.
type PagedFile struct {
	hdr      Header
	pageSize int
	secs     []PagedSection
	byName   map[string]int
}

// Header returns the container's kind and payload version.
func (pf *PagedFile) Header() Header { return pf.hdr }

// PageSize returns the page alignment the file was written with.
func (pf *PagedFile) PageSize() int { return pf.pageSize }

// Section returns the named section's bytes (aliasing the opened
// slice), or ok=false when absent.
func (pf *PagedFile) Section(name string) (data []byte, ok bool) {
	i, ok := pf.byName[name]
	if !ok {
		return nil, false
	}
	return pf.secs[i].Data, true
}

// VerifySection checks the named section's CRC; for sections opened
// lazily this is the deferred whole-section integrity scan.
func (pf *PagedFile) VerifySection(name string) error {
	i, ok := pf.byName[name]
	if !ok {
		return fmt.Errorf("snapshot: no section %q", name)
	}
	s := &pf.secs[i]
	if got := crc32.Checksum(s.Data, castagnoli); got != s.crc {
		return fmt.Errorf("snapshot: section %q checksum mismatch (file corrupt): 0x%08x != 0x%08x", s.Name, got, s.crc)
	}
	return nil
}

// VerifyAll checks every section's CRC, including lazily opened ones.
// OpenPaged + VerifyAll is a full integrity scan of a paged file.
func (pf *PagedFile) VerifyAll() error {
	for i := range pf.secs {
		if err := pf.VerifySection(pf.secs[i].Name); err != nil {
			return err
		}
	}
	return nil
}

// OpenPaged parses and verifies a paged container held in data
// (typically a memory mapping). Sections without SectionLazyVerify are
// checksum-verified now; lazy sections defer to VerifySection or the
// application's per-record checks. Padding bytes must be zero, so a
// bit flip anywhere in the file is caught by exactly one of: header
// CRC, section CRC (possibly deferred), table CRC, footer CRC, or the
// padding scan.
func OpenPaged(data []byte) (*PagedFile, error) {
	if !IsPaged(data) {
		return nil, ErrNotPaged
	}
	if len(data) < pagedHeaderLen+pagedFooterLen {
		return nil, fmt.Errorf("snapshot: paged file truncated at %d bytes", len(data))
	}
	wantHdr := binary.LittleEndian.Uint32(data[18:22])
	if got := crc32.Checksum(data[:18], castagnoli); got != wantHdr {
		return nil, fmt.Errorf("snapshot: paged header checksum mismatch (file corrupt): 0x%08x != 0x%08x", got, wantHdr)
	}
	pf := &PagedFile{
		hdr: Header{
			Kind:           binary.LittleEndian.Uint16(data[8:10]),
			PayloadVersion: binary.LittleEndian.Uint32(data[10:14]),
		},
		pageSize: int(binary.LittleEndian.Uint32(data[14:18])),
		byName:   make(map[string]int),
	}
	if pf.pageSize < 32 || pf.pageSize > MaxPageSize || pf.pageSize%8 != 0 {
		return nil, fmt.Errorf("snapshot: paged header claims page size %d: corrupt", pf.pageSize)
	}
	foot := data[len(data)-pagedFooterLen:]
	if string(foot[24:32]) != pagedEndMagic {
		return nil, fmt.Errorf("snapshot: paged footer magic missing (file truncated or corrupt)")
	}
	if got, want := crc32.Checksum(foot[:20], castagnoli), binary.LittleEndian.Uint32(foot[20:24]); got != want {
		return nil, fmt.Errorf("snapshot: paged footer checksum mismatch (file corrupt): 0x%08x != 0x%08x", got, want)
	}
	tableOff := binary.LittleEndian.Uint64(foot[0:8])
	tableLen := binary.LittleEndian.Uint64(foot[8:16])
	fileLen := uint64(len(data))
	if tableOff > fileLen || tableLen > fileLen-tableOff || tableOff+tableLen != fileLen-pagedFooterLen {
		return nil, fmt.Errorf("snapshot: paged table bounds [%d, +%d) inconsistent with file length %d", tableOff, tableLen, fileLen)
	}
	table := data[tableOff : tableOff+tableLen]
	if got, want := crc32.Checksum(table, castagnoli), binary.LittleEndian.Uint32(foot[16:20]); got != want {
		return nil, fmt.Errorf("snapshot: paged table checksum mismatch (file corrupt): 0x%08x != 0x%08x", got, want)
	}
	if len(table) < 4 {
		return nil, fmt.Errorf("snapshot: paged table truncated")
	}
	count := binary.LittleEndian.Uint32(table[:4])
	if count > maxPagedSections {
		return nil, fmt.Errorf("snapshot: paged table claims %d sections (max %d)", count, maxPagedSections)
	}
	table = table[4:]
	prevEnd := uint64(pf.pageSize) // sections start after the header page
	for i := 0; i < int(count); i++ {
		if len(table) < 2 {
			return nil, fmt.Errorf("snapshot: paged table entry %d truncated", i)
		}
		nameLen := int(binary.LittleEndian.Uint16(table[:2]))
		table = table[2:]
		if len(table) < nameLen+22 {
			return nil, fmt.Errorf("snapshot: paged table entry %d truncated", i)
		}
		s := PagedSection{
			Name:  string(table[:nameLen]),
			Flags: binary.LittleEndian.Uint16(table[nameLen : nameLen+2]),
		}
		off := binary.LittleEndian.Uint64(table[nameLen+2 : nameLen+10])
		slen := binary.LittleEndian.Uint64(table[nameLen+10 : nameLen+18])
		s.crc = binary.LittleEndian.Uint32(table[nameLen+18 : nameLen+22])
		table = table[nameLen+22:]
		// Sections must be in file order, page-aligned, non-overlapping
		// and inside [header page, table).
		if off%uint64(pf.pageSize) != 0 || off < prevEnd || off > tableOff || slen > tableOff-off {
			return nil, fmt.Errorf("snapshot: section %q bounds [%d, +%d) corrupt", s.Name, off, slen)
		}
		if _, dup := pf.byName[s.Name]; dup {
			return nil, fmt.Errorf("snapshot: duplicate section %q", s.Name)
		}
		s.off = off
		s.Data = data[off : off+slen]
		pf.byName[s.Name] = len(pf.secs)
		pf.secs = append(pf.secs, s)
		prevEnd = off + slen
	}
	if len(table) != 0 {
		return nil, fmt.Errorf("snapshot: paged table has %d trailing bytes", len(table))
	}
	// Padding scan: every byte outside header/sections/table/footer must
	// be zero. Gaps are bounded by (sections+1) pages, so this is cheap
	// relative to one section CRC.
	if err := verifyPagedPadding(data, pf, tableOff); err != nil {
		return nil, err
	}
	for i := range pf.secs {
		if pf.secs[i].Flags&SectionLazyVerify != 0 {
			continue
		}
		if err := pf.VerifySection(pf.secs[i].Name); err != nil {
			return nil, err
		}
	}
	return pf, nil
}

// verifyPagedPadding checks that every alignment-padding byte is zero,
// so corruption in the gaps between CRC-covered regions cannot hide.
func verifyPagedPadding(data []byte, pf *PagedFile, tableOff uint64) error {
	type span struct{ off, end uint64 }
	covered := make([]span, 0, len(pf.secs)+2)
	covered = append(covered, span{0, pagedHeaderLen})
	for i := range pf.secs {
		s := &pf.secs[i]
		covered = append(covered, span{s.off, s.off + uint64(len(s.Data))})
	}
	covered = append(covered, span{tableOff, uint64(len(data))})
	sort.Slice(covered, func(a, b int) bool { return covered[a].off < covered[b].off })
	pos := uint64(0)
	for _, sp := range covered {
		for ; pos < sp.off; pos++ {
			if data[pos] != 0 {
				return fmt.Errorf("snapshot: nonzero padding byte at offset %d (file corrupt)", pos)
			}
		}
		if sp.end > pos {
			pos = sp.end
		}
	}
	for ; pos < uint64(len(data)); pos++ {
		if data[pos] != 0 {
			return fmt.Errorf("snapshot: nonzero padding byte at offset %d (file corrupt)", pos)
		}
	}
	return nil
}
