// Package snapshot implements the framed, checksummed container format
// both the index and the view catalog persist through. The payload (a
// gob stream today) is wrapped so that every way a file can rot —
// truncation, a torn write, a flipped bit, a foreign file — is detected
// at load time with a precise error instead of a gob panic or a silently
// wrong index.
//
// Layout (all integers little-endian):
//
//	magic            8 bytes  "CSSNAPv1"
//	kind             uint16   payload type (index, views, ...)
//	payload version  uint32   app-level format version of the payload
//	header CRC       uint32   CRC32-C of the 14 header bytes above
//	sections         repeated { length uint32 (>0) | CRC32-C uint32 | bytes }
//	trailer          length 0 | CRC32-C of every preceding byte of the file
//
// Sections bound the blast radius of a checksum failure (the error names
// the section) and let the reader verify data before handing any of it
// to the decoder; the trailer sentinel distinguishes "file ends here by
// design" from truncation at a section boundary, and its whole-file CRC
// catches reordered or duplicated sections.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic identifies a framed snapshot file.
const Magic = "CSSNAPv1"

// Payload kinds.
const (
	KindIndex uint16 = 1
	KindViews uint16 = 2
)

// DefaultSectionSize is the payload byte count per section.
const DefaultSectionSize = 256 << 10

// MaxSectionSize caps the section length a reader accepts, so a
// corrupted length field cannot demand an absurd allocation.
const MaxSectionSize = 16 << 20

// ErrNotSnapshot reports that the stream does not begin with the
// snapshot magic — typically a legacy raw-gob file, which callers fall
// back to.
var ErrNotSnapshot = errors.New("snapshot: not a framed snapshot (bad magic)")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header is the decoded snapshot header.
type Header struct {
	Kind           uint16
	PayloadVersion uint32
}

// IsFramed reports whether a file beginning with prefix (at least 8
// bytes) is a framed snapshot.
func IsFramed(prefix []byte) bool {
	return len(prefix) >= len(Magic) && string(prefix[:len(Magic)]) == Magic
}

// Writer frames a payload stream into checksummed sections. Close must
// be called to emit the final section and the trailer; the underlying
// writer is not closed.
type Writer struct {
	w       io.Writer
	buf     []byte
	n       int
	fileCRC uint32 // running CRC over every byte emitted
	err     error
}

// NewWriter starts a framed snapshot with the default section size.
func NewWriter(w io.Writer, kind uint16, payloadVersion uint32) (*Writer, error) {
	return NewWriterSize(w, kind, payloadVersion, DefaultSectionSize)
}

// NewWriterSize starts a framed snapshot with an explicit section size
// (tests use tiny sections to exercise many section boundaries).
func NewWriterSize(w io.Writer, kind uint16, payloadVersion uint32, sectionSize int) (*Writer, error) {
	if sectionSize <= 0 || sectionSize > MaxSectionSize {
		return nil, fmt.Errorf("snapshot: invalid section size %d", sectionSize)
	}
	sw := &Writer{w: w, buf: make([]byte, sectionSize)}
	var hdr [18]byte
	copy(hdr[:8], Magic)
	binary.LittleEndian.PutUint16(hdr[8:10], kind)
	binary.LittleEndian.PutUint32(hdr[10:14], payloadVersion)
	binary.LittleEndian.PutUint32(hdr[14:18], crc32.Checksum(hdr[:14], castagnoli))
	if err := sw.emit(hdr[:]); err != nil {
		return nil, err
	}
	return sw, nil
}

// emit writes raw bytes, folding them into the whole-file CRC.
func (sw *Writer) emit(p []byte) error {
	if sw.err != nil {
		return sw.err
	}
	sw.fileCRC = crc32.Update(sw.fileCRC, castagnoli, p)
	if _, err := sw.w.Write(p); err != nil {
		sw.err = err
		return err
	}
	return nil
}

func (sw *Writer) Write(p []byte) (int, error) {
	if sw.err != nil {
		return 0, sw.err
	}
	written := 0
	for len(p) > 0 {
		c := copy(sw.buf[sw.n:], p)
		sw.n += c
		written += c
		p = p[c:]
		if sw.n == len(sw.buf) {
			if err := sw.flushSection(); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

func (sw *Writer) flushSection() error {
	if sw.n == 0 {
		return nil
	}
	var head [8]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(sw.n))
	binary.LittleEndian.PutUint32(head[4:8], crc32.Checksum(sw.buf[:sw.n], castagnoli))
	if err := sw.emit(head[:]); err != nil {
		return err
	}
	err := sw.emit(sw.buf[:sw.n])
	sw.n = 0
	return err
}

// Close flushes the final partial section and writes the trailer.
func (sw *Writer) Close() error {
	if err := sw.flushSection(); err != nil {
		return err
	}
	var trailer [8]byte
	// length 0 sentinel, then the CRC over everything before the trailer.
	binary.LittleEndian.PutUint32(trailer[4:8], sw.fileCRC)
	return sw.emit(trailer[:])
}

// Reader verifies and unwraps a framed snapshot. Each section's checksum
// is verified before any of its bytes are surfaced, so the consumer
// never decodes corrupt data.
type Reader struct {
	r       *bufio.Reader
	hdr     Header
	section []byte
	pos     int
	fileCRC uint32
	done    bool
	err     error
	nsec    int
}

// NewReader consumes and verifies the header. A stream without the
// snapshot magic returns ErrNotSnapshot with nothing consumed beyond
// what peeking required, if r supports it; callers that need legacy
// fallback should buffer the stream themselves and sniff with IsFramed.
func NewReader(r io.Reader) (*Reader, error) {
	sr := &Reader{r: bufio.NewReaderSize(r, 1<<20)}
	var hdr [18]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: truncated header: %w", err)
	}
	if !IsFramed(hdr[:]) {
		return nil, ErrNotSnapshot
	}
	want := binary.LittleEndian.Uint32(hdr[14:18])
	if got := crc32.Checksum(hdr[:14], castagnoli); got != want {
		return nil, fmt.Errorf("snapshot: header checksum mismatch (file corrupt): 0x%08x != 0x%08x", got, want)
	}
	sr.hdr.Kind = binary.LittleEndian.Uint16(hdr[8:10])
	sr.hdr.PayloadVersion = binary.LittleEndian.Uint32(hdr[10:14])
	sr.fileCRC = crc32.Update(0, castagnoli, hdr[:])
	return sr, nil
}

// Header returns the decoded snapshot header.
func (sr *Reader) Header() Header { return sr.hdr }

// next loads and verifies the next section, or the trailer.
func (sr *Reader) next() error {
	var head [8]byte
	if _, err := io.ReadFull(sr.r, head[:]); err != nil {
		return fmt.Errorf("snapshot: truncated after section %d (missing trailer): %w", sr.nsec, err)
	}
	n := binary.LittleEndian.Uint32(head[0:4])
	crc := binary.LittleEndian.Uint32(head[4:8])
	if n == 0 {
		// Trailer: crc is the whole-file checksum up to the trailer.
		if sr.fileCRC != crc {
			return fmt.Errorf("snapshot: file checksum mismatch (file corrupt): 0x%08x != 0x%08x", sr.fileCRC, crc)
		}
		sr.done = true
		return io.EOF
	}
	if n > MaxSectionSize {
		return fmt.Errorf("snapshot: section %d claims %d bytes (max %d): length corrupt", sr.nsec+1, n, MaxSectionSize)
	}
	sr.fileCRC = crc32.Update(sr.fileCRC, castagnoli, head[:])
	if cap(sr.section) < int(n) {
		sr.section = make([]byte, n)
	}
	sr.section = sr.section[:n]
	if _, err := io.ReadFull(sr.r, sr.section); err != nil {
		return fmt.Errorf("snapshot: section %d truncated at %d bytes: %w", sr.nsec+1, n, err)
	}
	if got := crc32.Checksum(sr.section, castagnoli); got != crc {
		return fmt.Errorf("snapshot: section %d checksum mismatch (file corrupt): 0x%08x != 0x%08x", sr.nsec+1, got, crc)
	}
	sr.fileCRC = crc32.Update(sr.fileCRC, castagnoli, sr.section)
	sr.nsec++
	sr.pos = 0
	return nil
}

func (sr *Reader) Read(p []byte) (int, error) {
	if sr.err != nil {
		return 0, sr.err
	}
	if sr.done {
		return 0, io.EOF
	}
	for sr.pos == len(sr.section) {
		if err := sr.next(); err != nil {
			if err != io.EOF {
				sr.err = err
			}
			return 0, err
		}
	}
	n := copy(p, sr.section[sr.pos:])
	sr.pos += n
	return n, nil
}

// Verify reads the remainder of the snapshot, checking every section and
// the trailer without retaining the payload. Combined with NewReader it
// is a full integrity scan of a snapshot file.
func (sr *Reader) Verify() error {
	_, err := io.Copy(io.Discard, sr)
	return err
}
