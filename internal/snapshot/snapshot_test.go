package snapshot

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// frame wraps payload into a snapshot with small sections so tests cross
// many section boundaries.
func frame(t *testing.T, payload []byte, sectionSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterSize(&buf, KindIndex, 7, sectionSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func unframe(b []byte) ([]byte, Header, error) {
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		return nil, Header{}, err
	}
	out, err := io.ReadAll(r)
	return out, r.Header(), err
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 10000} {
		payload := make([]byte, n)
		rand.New(rand.NewSource(int64(n))).Read(payload)
		got, hdr, err := unframe(frame(t, payload, 64))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("n=%d: payload mismatch", n)
		}
		if hdr.Kind != KindIndex || hdr.PayloadVersion != 7 {
			t.Fatalf("header = %+v", hdr)
		}
	}
}

func TestNotSnapshot(t *testing.T) {
	_, _, err := unframe([]byte("this is not a framed snapshot at all"))
	if !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("want ErrNotSnapshot, got %v", err)
	}
}

// TestTruncationAtEveryByte cuts the file at every possible length; all
// but the full length must error, and never panic.
func TestTruncationAtEveryByte(t *testing.T) {
	payload := []byte(strings.Repeat("durability is a property of the whole system ", 40))
	full := frame(t, payload, 128)
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := unframe(full[:cut]); err == nil {
			t.Fatalf("truncation to %d/%d bytes loaded cleanly", cut, len(full))
		}
	}
	if _, _, err := unframe(full); err != nil {
		t.Fatalf("full file failed: %v", err)
	}
}

// TestBitFlipAtEveryByte flips one bit in every byte of the file; every
// flip must be detected.
func TestBitFlipAtEveryByte(t *testing.T) {
	payload := []byte(strings.Repeat("x", 512))
	full := frame(t, payload, 100)
	for off := 0; off < len(full); off++ {
		mut := append([]byte(nil), full...)
		mut[off] ^= 1 << uint(off%8)
		got, _, err := unframe(mut)
		if err == nil && bytes.Equal(got, payload) {
			// A flip in the trailer CRC of the magic? Everything is
			// covered by a checksum; any clean load must be a bug.
			t.Fatalf("bit flip at byte %d went undetected", off)
		}
	}
}

func TestVerify(t *testing.T) {
	full := frame(t, []byte("payload"), 64)
	r, err := NewReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), full...)
	mut[len(mut)-3] ^= 0x40
	r, err = NewReader(bytes.NewReader(mut))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(); err == nil {
		t.Fatal("corrupt trailer passed Verify")
	}
}

func TestHugeSectionLengthRejected(t *testing.T) {
	full := frame(t, []byte("abc"), 64)
	// Overwrite the first section's length field (bytes 18..22) with an
	// absurd value.
	mut := append([]byte(nil), full...)
	mut[18], mut[19], mut[20], mut[21] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := unframe(mut); err == nil {
		t.Fatal("absurd section length accepted")
	}
}
