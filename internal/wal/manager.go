package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"csrank/internal/fsx"
	"csrank/internal/views"
)

// Manager pairs a live views.Catalog with its durability state: a
// generation-tagged snapshot on disk plus the write-ahead log of every
// batch applied since that snapshot. The directory layout is
//
//	catalog-<gen>.snap   framed, checksummed catalog snapshot
//	wal-<gen>.log        batches applied after snapshot <gen>
//
// where <gen> is a zero-padded hex generation counter. Snapshot rolls
// the generation forward: write catalog-<gen+1>.snap atomically, start
// an empty wal-<gen+1>.log, then retire generations older than the
// previous one. Recovery (Open) loads the newest snapshot that passes
// its checksums and replays its log; when newer generations exist whose
// snapshots failed verification, their logs are chain-replayed on top —
// each begins at exactly the state the previous generation's full
// replay reconstructs — so acknowledged batches survive snapshot rot. A
// torn final record in the last log of the chain is truncated away,
// anything worse is a hard error.
type Manager struct {
	fs   fsx.FS
	dir  string
	opts Options

	mu        sync.Mutex
	cat       *views.Catalog
	gen       uint64
	log       *Log
	sinceSnap int
	failed    error
}

// Options configures a Manager.
type Options struct {
	// FS is the filesystem to operate on; nil means the real one.
	FS fsx.FS
	// SnapshotEvery rolls a new snapshot automatically after this many
	// batches have been appended since the last one (0 = only explicit
	// Snapshot calls). Bounding the log bounds recovery replay time.
	SnapshotEvery int
}

func (o Options) fs() fsx.FS {
	if o.FS != nil {
		return o.FS
	}
	return fsx.OS
}

// Recovery reports what Open found and did.
type Recovery struct {
	// Generation is the snapshot generation recovery loaded.
	Generation uint64
	// BatchesReplayed is how many WAL batches were folded into the
	// snapshot to reach the recovered state.
	BatchesReplayed int
	// TornTail is true when the log ended in a crash-torn record; the
	// TruncatedBytes spanning it were cut off.
	TornTail       bool
	TruncatedBytes int64
	// CorruptSnapshots lists generations whose snapshot failed its
	// checksums and was skipped in favor of an older one.
	CorruptSnapshots []uint64
	// ChainedWALs lists the generations from CorruptSnapshots whose logs
	// were chain-replayed on top of the recovered snapshot, so their
	// acknowledged batches were not lost with the snapshot. The manager
	// resumes at the last of them.
	ChainedWALs []uint64
	// StaleWALs lists orphaned logs newer than the resumed generation (no
	// snapshot exists for them); they were removed so a later snapshot
	// roll cannot append after their abandoned records.
	StaleWALs []uint64
}

func snapName(gen uint64) string { return fmt.Sprintf("catalog-%016x.snap", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%016x.log", gen) }

// ErrBatchCommitted marks Apply failures that happened after the batch
// was durably appended to the log: the batch is committed and recovery
// will replay it, so the caller must NOT resubmit it — the aggregate
// updates are not idempotent and a resubmission after restart would
// double-apply. The manager itself is poisoned by the underlying
// failure (available via errors.Unwrap and Err).
var ErrBatchCommitted = errors.New("wal: batch committed, post-commit snapshot roll failed")

// Create initializes dir with generation 1: a snapshot of cat and an
// empty log. The catalog is owned by the manager from here on — mutate
// it only through Apply.
func Create(dir string, cat *views.Catalog, opts Options) (*Manager, error) {
	fs := opts.fs()
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	m := &Manager{fs: fs, dir: dir, opts: opts, cat: cat, gen: 1}
	if err := cat.SaveFileFS(fs, filepath.Join(dir, snapName(m.gen))); err != nil {
		return nil, err
	}
	log, err := CreateLog(fs, filepath.Join(dir, walName(m.gen)))
	if err != nil {
		return nil, err
	}
	m.log = log
	if err := fs.SyncDir(dir); err != nil {
		log.Close()
		return nil, fmt.Errorf("wal: sync %s: %w", dir, err)
	}
	return m, nil
}

// Open recovers the catalog from dir: load the newest snapshot whose
// checksums verify, replay its log, chain-replay the logs of any newer
// generations whose snapshots failed verification, truncate a torn tail
// if the crash left one, and resume appending at the last generation
// whose log was replayed.
func Open(dir string, opts Options) (*Manager, Recovery, error) {
	fs := opts.fs()
	var rec Recovery
	gens, err := listGenerations(fs, dir)
	if err != nil {
		return nil, rec, err
	}
	if len(gens) == 0 {
		return nil, rec, fmt.Errorf("wal: %s holds no catalog snapshots", dir)
	}

	var (
		cat     *views.Catalog
		gen     uint64
		loadErr error
	)
	for i := len(gens) - 1; i >= 0; i-- {
		g := gens[i]
		c, err := views.LoadFileFS(fs, filepath.Join(dir, snapName(g)))
		if err != nil {
			rec.CorruptSnapshots = append(rec.CorruptSnapshots, g)
			loadErr = errors.Join(loadErr, fmt.Errorf("generation %d: %w", g, err))
			continue
		}
		cat, gen = c, g
		break
	}
	if cat == nil {
		return nil, rec, fmt.Errorf("wal: no snapshot in %s passed verification: %w", dir, loadErr)
	}
	rec.Generation = gen

	// Every snapshot newer than the recovered one failed verification,
	// but their logs may still hold acknowledged batches. Snapshot <g+1>
	// is written at exactly the state snap <g> plus a full wal-<g> replay
	// reconstructs, so those logs chain: replay wal-<g>, then wal-<g+1>,
	// and so on. The chain requires contiguous generations — a gap means
	// the state the next log starts from is unreconstructable, and
	// resuming past it would silently drop acknowledged data.
	chain := append([]uint64(nil), rec.CorruptSnapshots...)
	sort.Slice(chain, func(i, j int) bool { return chain[i] < chain[j] })
	for i, g := range chain {
		if want := gen + 1 + uint64(i); g != want {
			return nil, rec, fmt.Errorf("wal: cannot chain to corrupt snapshot generation %d: generation %d is missing from %s", g, want, dir)
		}
	}

	cur := gen
	var last ReplayResult
	for {
		walPath := filepath.Join(dir, walName(cur))
		replay, err := Replay(fs, walPath, func(b Batch) error { return applyBatch(cat, b) })
		switch {
		case errors.Is(err, os.ErrNotExist):
			// A crash between snapshot rename and log creation leaves no
			// log for the generation; the snapshot alone is the state.
		case err != nil:
			return nil, rec, err
		}
		rec.BatchesReplayed += replay.Batches
		last = replay
		if len(chain) == 0 || chain[0] != cur+1 {
			break
		}
		if replay.TornTail {
			// Appends to wal-<cur> stop before snapshot <cur+1> rolls, so
			// a torn record here cannot be crash residue: it is an
			// acknowledged batch damaged at rest, and chaining past it
			// would apply wal-<cur+1> to the wrong base state.
			return nil, rec, fmt.Errorf("wal: %s ends in a torn record but generation %d exists — log is corrupt", walPath, cur+1)
		}
		cur, chain = chain[0], chain[1:]
		rec.ChainedWALs = append(rec.ChainedWALs, cur)
	}
	walPath := filepath.Join(dir, walName(cur))
	if last.TornTail {
		rec.TornTail = true
		rec.TruncatedBytes = last.TailBytes
		if err := fs.Truncate(walPath, last.TailOffset); err != nil {
			return nil, rec, fmt.Errorf("wal: truncate torn tail of %s: %w", walPath, err)
		}
	}

	// Orphaned logs newer than the resumed generation (no snapshot was
	// completed for them) hold batches whose base state is unknown; they
	// are unrecoverable, and a later snapshot roll reusing the generation
	// must not find them. Remove them, reporting which.
	if walGens, err := listWALGenerations(fs, dir); err == nil {
		for _, g := range walGens {
			if g > cur {
				fs.Remove(filepath.Join(dir, walName(g)))
				rec.StaleWALs = append(rec.StaleWALs, g)
			}
		}
	}

	log, err := OpenLog(fs, walPath)
	if err != nil {
		return nil, rec, err
	}
	m := &Manager{
		fs: fs, dir: dir, opts: opts,
		cat: cat, gen: cur, log: log, sinceSnap: last.Batches,
	}
	m.sweepTemp()
	return m, rec, nil
}

// listGenerations returns the snapshot generations present in dir in
// ascending order.
func listGenerations(fs fsx.FS, dir string) ([]uint64, error) {
	return listGens(fs, dir, "catalog-%016x.snap")
}

// listWALGenerations returns the log generations present in dir in
// ascending order.
func listWALGenerations(fs fsx.FS, dir string) ([]uint64, error) {
	return listGens(fs, dir, "wal-%016x.log")
}

func listGens(fs fsx.FS, dir, pattern string) ([]uint64, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	prefix := pattern[:strings.IndexByte(pattern, '%')]
	var gens []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		var g uint64
		if _, err := fmt.Sscanf(name, pattern, &g); err == nil && name == fmt.Sprintf(pattern, g) {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// sweepTemp removes write-to-temp residue a crash mid-snapshot left
// behind. Best effort: a leftover temp file is inert either way.
func (m *Manager) sweepTemp() {
	entries, err := m.fs.ReadDir(m.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			m.fs.Remove(filepath.Join(m.dir, e.Name()))
		}
	}
}

// Catalog returns the live catalog. The manager owns it: callers may
// read concurrently with nothing, and must route every mutation through
// Apply or the log diverges from memory.
func (m *Manager) Catalog() *views.Catalog {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cat
}

// Generation returns the current snapshot generation.
func (m *Manager) Generation() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen
}

// Err returns the sticky failure that poisoned the manager, if any.
func (m *Manager) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failed
}

// Apply runs one batch: the updates are folded into the in-memory
// catalog (validating every remove), the batch is appended to the log
// and fsynced, and — every Options.SnapshotEvery batches — a fresh
// snapshot generation is rolled. The in-memory fold happens first so a
// batch that mixes applies and removes of the same document validates
// sequentially; if the log append then fails, the fold is rolled back
// update by update, so memory never runs ahead of the durable state. A
// logging or snapshot failure poisons the manager: the on-disk tail may
// be torn, and appending past a torn record would strand every later
// batch beyond what recovery can read. Two append failures are softer:
// a batch the log rejects outright (ErrBatchUnloggable) wrote nothing,
// so the manager stays usable; and a failure of the automatic snapshot
// roll *after* a successful append returns an error wrapping
// ErrBatchCommitted — the batch is durable and will be replayed by
// recovery, so the caller must not resubmit it.
func (m *Manager) Apply(b Batch) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed != nil {
		return fmt.Errorf("wal: manager unusable after earlier failure: %w", m.failed)
	}
	if len(b) == 0 {
		return nil
	}

	applied := 0
	var err error
	for _, u := range b {
		switch u.Op {
		case OpApply:
			m.cat.Apply(u.Doc)
		case OpRemove:
			err = m.cat.Remove(u.Doc)
		default:
			err = fmt.Errorf("wal: unknown op %d", u.Op)
		}
		if err != nil {
			break
		}
		applied++
	}
	if err != nil {
		m.rollback(b[:applied])
		return err // validation failure: nothing was logged, state is unchanged
	}

	if err := m.log.Append(b); err != nil {
		m.rollback(b)
		if !errors.Is(err, ErrBatchUnloggable) {
			m.failed = err // the on-disk tail may hold a torn record
		}
		return err
	}
	m.sinceSnap++

	if m.opts.SnapshotEvery > 0 && m.sinceSnap >= m.opts.SnapshotEvery {
		if err := m.snapshotLocked(); err != nil {
			m.failed = err
			return fmt.Errorf("%w: %w", ErrBatchCommitted, err)
		}
	}
	return nil
}

// rollback undoes already-folded updates in reverse order. Each inverse
// must succeed — it reverses an operation that just succeeded under the
// same lock — so a failure here is a maintenance bug, not an I/O state.
func (m *Manager) rollback(done Batch) {
	for i := len(done) - 1; i >= 0; i-- {
		u := done[i]
		switch u.Op {
		case OpApply:
			if err := m.cat.Remove(u.Doc); err != nil {
				panic(fmt.Sprintf("wal: rollback of apply failed: %v", err))
			}
		case OpRemove:
			m.cat.Apply(u.Doc)
		}
	}
}

// Snapshot rolls a new generation now: the catalog is written to
// catalog-<gen+1>.snap atomically, an empty wal-<gen+1>.log becomes the
// live log, and generations older than the previous one are retired.
func (m *Manager) Snapshot() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed != nil {
		return fmt.Errorf("wal: manager unusable after earlier failure: %w", m.failed)
	}
	if err := m.snapshotLocked(); err != nil {
		m.failed = err
		return err
	}
	return nil
}

func (m *Manager) snapshotLocked() error {
	next := m.gen + 1
	if err := m.cat.SaveFileFS(m.fs, filepath.Join(m.dir, snapName(next))); err != nil {
		return err
	}
	// CreateLog truncates: a stale wal-<next> (left by a recovery that
	// fell back past a corrupt catalog-<next>.snap) must not contribute
	// its abandoned records to the fresh generation's replay.
	log, err := CreateLog(m.fs, filepath.Join(m.dir, walName(next)))
	if err != nil {
		return err
	}
	if err := m.fs.SyncDir(m.dir); err != nil {
		log.Close()
		return fmt.Errorf("wal: sync %s: %w", m.dir, err)
	}
	m.log.Close()
	prev := m.gen
	m.log, m.gen, m.sinceSnap = log, next, 0

	// Retire generations older than the previous one, best effort: a
	// leftover generation costs disk, never correctness — recovery always
	// prefers the newest verifiable snapshot.
	if gens, err := listGenerations(m.fs, m.dir); err == nil {
		for _, g := range gens {
			if g < prev {
				m.fs.Remove(filepath.Join(m.dir, snapName(g)))
				m.fs.Remove(filepath.Join(m.dir, walName(g)))
			}
		}
	}
	return nil
}

// Close releases the live log handle. The manager is not usable after.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return nil
	}
	err := m.log.Close()
	m.log = nil
	return err
}

// applyBatch folds a recovered batch into cat, mirroring Apply's fold.
func applyBatch(cat *views.Catalog, b Batch) error {
	for i, u := range b {
		switch u.Op {
		case OpApply:
			cat.Apply(u.Doc)
		case OpRemove:
			if err := cat.Remove(u.Doc); err != nil {
				return fmt.Errorf("update %d: %w", i, err)
			}
		default:
			return fmt.Errorf("update %d: unknown op %d", i, u.Op)
		}
	}
	return nil
}
