package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"csrank/internal/fsx"
	"csrank/internal/views"
)

// Manager pairs a live views.Catalog with its durability state: a
// generation-tagged snapshot on disk plus the write-ahead log of every
// batch applied since that snapshot. The directory layout is
//
//	catalog-<gen>.snap   framed, checksummed catalog snapshot
//	wal-<gen>.log        batches applied after snapshot <gen>
//
// where <gen> is a zero-padded hex generation counter. Snapshot rolls
// the generation forward: write catalog-<gen+1>.snap atomically, start
// an empty wal-<gen+1>.log, then retire generations older than the
// previous one. Recovery (Open) loads the newest snapshot that passes
// its checksums and replays its log; a torn final record is truncated
// away, anything worse is a hard error.
type Manager struct {
	fs   fsx.FS
	dir  string
	opts Options

	mu        sync.Mutex
	cat       *views.Catalog
	gen       uint64
	log       *Log
	sinceSnap int
	failed    error
}

// Options configures a Manager.
type Options struct {
	// FS is the filesystem to operate on; nil means the real one.
	FS fsx.FS
	// SnapshotEvery rolls a new snapshot automatically after this many
	// batches have been appended since the last one (0 = only explicit
	// Snapshot calls). Bounding the log bounds recovery replay time.
	SnapshotEvery int
}

func (o Options) fs() fsx.FS {
	if o.FS != nil {
		return o.FS
	}
	return fsx.OS
}

// Recovery reports what Open found and did.
type Recovery struct {
	// Generation is the snapshot generation recovery loaded.
	Generation uint64
	// BatchesReplayed is how many WAL batches were folded into the
	// snapshot to reach the recovered state.
	BatchesReplayed int
	// TornTail is true when the log ended in a crash-torn record; the
	// TruncatedBytes spanning it were cut off.
	TornTail       bool
	TruncatedBytes int64
	// CorruptSnapshots lists generations whose snapshot failed its
	// checksums and was skipped in favor of an older one.
	CorruptSnapshots []uint64
}

func snapName(gen uint64) string { return fmt.Sprintf("catalog-%016x.snap", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%016x.log", gen) }

// Create initializes dir with generation 1: a snapshot of cat and an
// empty log. The catalog is owned by the manager from here on — mutate
// it only through Apply.
func Create(dir string, cat *views.Catalog, opts Options) (*Manager, error) {
	fs := opts.fs()
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	m := &Manager{fs: fs, dir: dir, opts: opts, cat: cat, gen: 1}
	if err := cat.SaveFileFS(fs, filepath.Join(dir, snapName(m.gen))); err != nil {
		return nil, err
	}
	log, err := OpenLog(fs, filepath.Join(dir, walName(m.gen)))
	if err != nil {
		return nil, err
	}
	m.log = log
	if err := fs.SyncDir(dir); err != nil {
		log.Close()
		return nil, fmt.Errorf("wal: sync %s: %w", dir, err)
	}
	return m, nil
}

// Open recovers the catalog from dir: load the newest snapshot whose
// checksums verify, replay its log, truncate a torn tail if the crash
// left one, and resume appending at the recovered generation.
func Open(dir string, opts Options) (*Manager, Recovery, error) {
	fs := opts.fs()
	var rec Recovery
	gens, err := listGenerations(fs, dir)
	if err != nil {
		return nil, rec, err
	}
	if len(gens) == 0 {
		return nil, rec, fmt.Errorf("wal: %s holds no catalog snapshots", dir)
	}

	var (
		cat     *views.Catalog
		gen     uint64
		loadErr error
	)
	for i := len(gens) - 1; i >= 0; i-- {
		g := gens[i]
		c, err := views.LoadFileFS(fs, filepath.Join(dir, snapName(g)))
		if err != nil {
			rec.CorruptSnapshots = append(rec.CorruptSnapshots, g)
			loadErr = errors.Join(loadErr, fmt.Errorf("generation %d: %w", g, err))
			continue
		}
		cat, gen = c, g
		break
	}
	if cat == nil {
		return nil, rec, fmt.Errorf("wal: no snapshot in %s passed verification: %w", dir, loadErr)
	}
	rec.Generation = gen

	walPath := filepath.Join(dir, walName(gen))
	replay, err := Replay(fs, walPath, func(b Batch) error { return applyBatch(cat, b) })
	switch {
	case errors.Is(err, os.ErrNotExist):
		// A crash between snapshot rename and log creation leaves no log
		// for the newest generation; the snapshot alone is the state.
	case err != nil:
		return nil, rec, err
	}
	rec.BatchesReplayed = replay.Batches
	if replay.TornTail {
		rec.TornTail = true
		rec.TruncatedBytes = replay.TailBytes
		if err := fs.Truncate(walPath, replay.TailOffset); err != nil {
			return nil, rec, fmt.Errorf("wal: truncate torn tail of %s: %w", walPath, err)
		}
	}

	log, err := OpenLog(fs, walPath)
	if err != nil {
		return nil, rec, err
	}
	m := &Manager{
		fs: fs, dir: dir, opts: opts,
		cat: cat, gen: gen, log: log, sinceSnap: replay.Batches,
	}
	m.sweepTemp()
	return m, rec, nil
}

// listGenerations returns the snapshot generations present in dir in
// ascending order.
func listGenerations(fs fsx.FS, dir string) ([]uint64, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var gens []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "catalog-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		var g uint64
		if _, err := fmt.Sscanf(name, "catalog-%016x.snap", &g); err == nil {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// sweepTemp removes write-to-temp residue a crash mid-snapshot left
// behind. Best effort: a leftover temp file is inert either way.
func (m *Manager) sweepTemp() {
	entries, err := m.fs.ReadDir(m.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			m.fs.Remove(filepath.Join(m.dir, e.Name()))
		}
	}
}

// Catalog returns the live catalog. The manager owns it: callers may
// read concurrently with nothing, and must route every mutation through
// Apply or the log diverges from memory.
func (m *Manager) Catalog() *views.Catalog {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cat
}

// Generation returns the current snapshot generation.
func (m *Manager) Generation() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen
}

// Err returns the sticky failure that poisoned the manager, if any.
func (m *Manager) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failed
}

// Apply runs one batch: the updates are folded into the in-memory
// catalog (validating every remove), the batch is appended to the log
// and fsynced, and — every Options.SnapshotEvery batches — a fresh
// snapshot generation is rolled. The in-memory fold happens first so a
// batch that mixes applies and removes of the same document validates
// sequentially; if the log append then fails, the fold is rolled back
// update by update, so memory never runs ahead of the durable state. A
// logging or snapshot failure poisons the manager: the on-disk tail may
// be torn, and appending past a torn record would strand every later
// batch beyond what recovery can read.
func (m *Manager) Apply(b Batch) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed != nil {
		return fmt.Errorf("wal: manager unusable after earlier failure: %w", m.failed)
	}
	if len(b) == 0 {
		return nil
	}

	applied := 0
	var err error
	for _, u := range b {
		switch u.Op {
		case OpApply:
			m.cat.Apply(u.Doc)
		case OpRemove:
			err = m.cat.Remove(u.Doc)
		default:
			err = fmt.Errorf("wal: unknown op %d", u.Op)
		}
		if err != nil {
			break
		}
		applied++
	}
	if err != nil {
		m.rollback(b[:applied])
		return err // validation failure: nothing was logged, state is unchanged
	}

	if err := m.log.Append(b); err != nil {
		m.rollback(b)
		m.failed = err
		return err
	}
	m.sinceSnap++

	if m.opts.SnapshotEvery > 0 && m.sinceSnap >= m.opts.SnapshotEvery {
		if err := m.snapshotLocked(); err != nil {
			m.failed = err
			return err
		}
	}
	return nil
}

// rollback undoes already-folded updates in reverse order. Each inverse
// must succeed — it reverses an operation that just succeeded under the
// same lock — so a failure here is a maintenance bug, not an I/O state.
func (m *Manager) rollback(done Batch) {
	for i := len(done) - 1; i >= 0; i-- {
		u := done[i]
		switch u.Op {
		case OpApply:
			if err := m.cat.Remove(u.Doc); err != nil {
				panic(fmt.Sprintf("wal: rollback of apply failed: %v", err))
			}
		case OpRemove:
			m.cat.Apply(u.Doc)
		}
	}
}

// Snapshot rolls a new generation now: the catalog is written to
// catalog-<gen+1>.snap atomically, an empty wal-<gen+1>.log becomes the
// live log, and generations older than the previous one are retired.
func (m *Manager) Snapshot() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed != nil {
		return fmt.Errorf("wal: manager unusable after earlier failure: %w", m.failed)
	}
	if err := m.snapshotLocked(); err != nil {
		m.failed = err
		return err
	}
	return nil
}

func (m *Manager) snapshotLocked() error {
	next := m.gen + 1
	if err := m.cat.SaveFileFS(m.fs, filepath.Join(m.dir, snapName(next))); err != nil {
		return err
	}
	log, err := OpenLog(m.fs, filepath.Join(m.dir, walName(next)))
	if err != nil {
		return err
	}
	if err := m.fs.SyncDir(m.dir); err != nil {
		log.Close()
		return fmt.Errorf("wal: sync %s: %w", m.dir, err)
	}
	m.log.Close()
	prev := m.gen
	m.log, m.gen, m.sinceSnap = log, next, 0

	// Retire generations older than the previous one, best effort: a
	// leftover generation costs disk, never correctness — recovery always
	// prefers the newest verifiable snapshot.
	if gens, err := listGenerations(m.fs, m.dir); err == nil {
		for _, g := range gens {
			if g < prev {
				m.fs.Remove(filepath.Join(m.dir, snapName(g)))
				m.fs.Remove(filepath.Join(m.dir, walName(g)))
			}
		}
	}
	return nil
}

// Close releases the live log handle. The manager is not usable after.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.log == nil {
		return nil
	}
	err := m.log.Close()
	m.log = nil
	return err
}

// applyBatch folds a recovered batch into cat, mirroring Apply's fold.
func applyBatch(cat *views.Catalog, b Batch) error {
	for i, u := range b {
		switch u.Op {
		case OpApply:
			cat.Apply(u.Doc)
		case OpRemove:
			if err := cat.Remove(u.Doc); err != nil {
				return fmt.Errorf("update %d: %w", i, err)
			}
		default:
			return fmt.Errorf("update %d: unknown op %d", i, u.Op)
		}
	}
	return nil
}
