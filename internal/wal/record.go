// Package wal implements the write-ahead update log and the
// snapshot-plus-replay recovery protocol for the materialized-view
// catalog. Incremental view maintenance is only safe if every DocUpdate
// is durably logged before it mutates the aggregates (views.Remove can
// validate an update but cannot reconstruct a lost one); the WAL is that
// log, and the Manager pairs it with generation-tagged checksummed
// catalog snapshots so recovery is: load the newest valid snapshot, then
// replay its log tail, skipping at most one torn final record.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"csrank/internal/views"
)

// Op tags one update's direction.
type Op uint8

// The two update directions.
const (
	OpApply  Op = 1
	OpRemove Op = 2
)

// Update is one logged document update.
type Update struct {
	Op  Op
	Doc views.DocUpdate
}

// Batch is the atomic unit of the log: one WAL record holds one batch,
// and recovery replays whole records only, so a crash can never leave
// half a batch applied. Ingestion pipelines that need multi-document
// atomicity put the documents in one batch.
type Batch []Update

// Record layout (all integers little-endian):
//
//	length  uint32   payload byte count
//	CRC     uint32   CRC32-C of the payload
//	payload encoded batch (see encodeBatch)
//
// Payload layout (varint = unsigned LEB128 as in encoding/binary):
//
//	count   uvarint  updates in the batch
//	per update:
//	  op          byte
//	  npred       uvarint, then per predicate: uvarint length + bytes
//	  len         uvarint
//	  ntf         uvarint, then per word: uvarint length + bytes, uvarint tf
//
// TF words are sorted so encoding is deterministic — replaying a log
// twice produces byte-identical re-encodings, which the recovery tests
// rely on.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxRecordBytes caps a record's payload so a corrupted length field
// cannot demand an absurd allocation during replay.
const maxRecordBytes = 64 << 20

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodeBatch serializes a batch into the payload layout above.
func encodeBatch(b Batch) ([]byte, error) {
	out := appendUvarint(nil, uint64(len(b)))
	for i, u := range b {
		if u.Op != OpApply && u.Op != OpRemove {
			return nil, fmt.Errorf("wal: update %d has unknown op %d", i, u.Op)
		}
		if u.Doc.Len < 0 {
			return nil, fmt.Errorf("wal: update %d has negative len %d", i, u.Doc.Len)
		}
		out = append(out, byte(u.Op))
		out = appendUvarint(out, uint64(len(u.Doc.Predicates)))
		for _, p := range u.Doc.Predicates {
			out = appendString(out, p)
		}
		out = appendUvarint(out, uint64(u.Doc.Len))
		words := make([]string, 0, len(u.Doc.TF))
		for w := range u.Doc.TF {
			words = append(words, w)
		}
		sort.Strings(words)
		out = appendUvarint(out, uint64(len(words)))
		for _, w := range words {
			tf := u.Doc.TF[w]
			if tf < 0 {
				return nil, fmt.Errorf("wal: update %d has negative tf(%s)=%d", i, w, tf)
			}
			out = appendString(out, w)
			out = appendUvarint(out, uint64(tf))
		}
	}
	return out, nil
}

// payloadReader walks an encoded payload with bounds checking.
type payloadReader struct {
	b   []byte
	pos int
}

func (r *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated varint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *payloadReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)-r.pos) {
		return "", fmt.Errorf("wal: string length %d exceeds payload at offset %d", n, r.pos)
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

func (r *payloadReader) byte() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, fmt.Errorf("wal: truncated payload at offset %d", r.pos)
	}
	c := r.b[r.pos]
	r.pos++
	return c, nil
}

// decodeBatch reverses encodeBatch, treating the payload as untrusted:
// every length is bounds-checked against the remaining bytes and
// trailing garbage is an error.
func decodeBatch(payload []byte) (Batch, error) {
	r := &payloadReader{b: payload}
	count, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if count > uint64(len(payload)) {
		return nil, fmt.Errorf("wal: batch claims %d updates in %d bytes", count, len(payload))
	}
	batch := make(Batch, 0, count)
	for i := uint64(0); i < count; i++ {
		var u Update
		op, err := r.byte()
		if err != nil {
			return nil, err
		}
		u.Op = Op(op)
		if u.Op != OpApply && u.Op != OpRemove {
			return nil, fmt.Errorf("wal: update %d has unknown op %d", i, op)
		}
		npred, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if npred > uint64(len(payload)) {
			return nil, fmt.Errorf("wal: update %d claims %d predicates", i, npred)
		}
		if npred > 0 {
			u.Doc.Predicates = make([]string, 0, npred)
			for j := uint64(0); j < npred; j++ {
				p, err := r.str()
				if err != nil {
					return nil, err
				}
				u.Doc.Predicates = append(u.Doc.Predicates, p)
			}
		}
		l, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		u.Doc.Len = int64(l)
		if u.Doc.Len < 0 {
			return nil, fmt.Errorf("wal: update %d len overflows", i)
		}
		ntf, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if ntf > uint64(len(payload)) {
			return nil, fmt.Errorf("wal: update %d claims %d tf entries", i, ntf)
		}
		if ntf > 0 {
			u.Doc.TF = make(map[string]int64, ntf)
			for j := uint64(0); j < ntf; j++ {
				w, err := r.str()
				if err != nil {
					return nil, err
				}
				tf, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if int64(tf) < 0 {
					return nil, fmt.Errorf("wal: update %d tf(%s) overflows", i, w)
				}
				u.Doc.TF[w] = int64(tf)
			}
		}
		batch = append(batch, u)
	}
	if r.pos != len(payload) {
		return nil, fmt.Errorf("wal: %d trailing payload bytes", len(payload)-r.pos)
	}
	return batch, nil
}
