package wal

import (
	"math"
	"math/rand"
	"testing"

	"csrank/internal/core"
	"csrank/internal/fsx"
	"csrank/internal/index"
	"csrank/internal/query"
	"csrank/internal/views"
	"csrank/internal/widetable"
)

// ingestOutcome reports how far a faulted ingest run got.
type ingestOutcome struct {
	created bool // Create returned nil
	acked   int  // batches whose Apply returned nil
	err     error
}

// runIngest executes the full ingest protocol — Create, Apply every
// batch (with automatic snapshot rollover every second batch), then an
// explicit Snapshot — against the given filesystem, stopping at the
// first error the way a crashing process would.
func runIngest(t *testing.T, fs fsx.FS, dir string, ix *index.Index, batches []Batch) ingestOutcome {
	t.Helper()
	var out ingestOutcome
	m, err := Create(dir, buildTestCatalog(t, ix), Options{FS: fs, SnapshotEvery: 2})
	if err != nil {
		out.err = err
		return out
	}
	defer m.Close()
	out.created = true
	for _, b := range batches {
		if err := m.Apply(b); err != nil {
			out.err = err
			return out
		}
		out.acked++
	}
	if err := m.Snapshot(); err != nil {
		out.err = err
		return out
	}
	return out
}

// stateFingerprints returns the fingerprint of every intermediate state
// S_0 (initial) .. S_n (all batches applied).
func stateFingerprints(t *testing.T, ix *index.Index, batches []Batch) []string {
	t.Helper()
	mirror := buildTestCatalog(t, ix)
	fps := []string{mirror.Fingerprint()}
	for _, b := range batches {
		if err := applyBatch(mirror, b); err != nil {
			t.Fatal(err)
		}
		fps = append(fps, mirror.Fingerprint())
	}
	return fps
}

func stateIndex(fps []string, fp string) int {
	for i, s := range fps {
		if s == fp {
			return i
		}
	}
	return -1
}

// TestKillPointSweep is the tentpole recovery guarantee: the ingest
// protocol is run against a fault injector armed at every mutating
// filesystem operation it performs (twice — clean failure and torn
// write), and after each simulated crash, recovery must land on exactly
// the pre-batch or post-batch state of the batch that was in flight.
// Acknowledged batches are never lost, unacknowledged batches never
// surface partially, and no crash point panics or corrupts.
func TestKillPointSweep(t *testing.T) {
	ix := buildTestIndex(t, 83, 200)
	rng := rand.New(rand.NewSource(89))
	batches := randomBatches(rng, 6)
	fps := stateFingerprints(t, ix, batches)
	n := len(batches)

	// Clean run: count the protocol's mutating operations and confirm
	// the final state recovers exactly.
	ffs := fsx.NewFaultFS(fsx.OS)
	cleanDir := t.TempDir()
	clean := runIngest(t, ffs, cleanDir, ix, batches)
	if clean.err != nil {
		t.Fatal(clean.err)
	}
	ops := ffs.Ops()
	if ops < 10 {
		t.Fatalf("implausible op count %d for the full protocol", ops)
	}
	m, _, err := Open(cleanDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Catalog().Fingerprint(); got != fps[n] {
		t.Fatalf("clean run recovered to state %d, want %d", stateIndex(fps, got), n)
	}
	m.Close()

	for point := 1; point <= ops; point++ {
		for _, short := range []bool{false, true} {
			dir := t.TempDir()
			ffs := fsx.NewFaultFS(fsx.OS)
			ffs.Arm(point, short)
			out := runIngest(t, ffs, dir, ix, batches)
			ffs.Reset()

			m, rec, err := Open(dir, Options{})
			if err != nil {
				// Only a crash before Create completed may leave nothing
				// recoverable — afterwards a valid snapshot exists on disk.
				if out.created {
					t.Fatalf("point %d short=%v: created but recovery failed: %v", point, short, err)
				}
				continue
			}
			// The crash hit batch out.acked (or the final snapshot): the
			// only legal recovered states are its pre-batch and post-batch
			// boundaries. Random batches can legitimately revisit an
			// earlier state (removes cancelling applies), so membership in
			// the allowed set is checked by fingerprint, not by first
			// match.
			fp := m.Catalog().Fingerprint()
			lo, hi := out.acked, out.acked+1
			if out.err == nil {
				lo, hi = n, n
			}
			if hi > n {
				hi = n
			}
			allowed := false
			for i := lo; i <= hi; i++ {
				if fps[i] == fp {
					allowed = true
					break
				}
			}
			if !allowed {
				t.Fatalf("point %d short=%v: recovered to state S_%d, acked %d, allowed S_%d..S_%d",
					point, short, stateIndex(fps, fp), out.acked, lo, hi)
			}
			if rec.TornTail && rec.TruncatedBytes == 0 {
				t.Fatalf("point %d short=%v: torn tail with zero truncated bytes", point, short)
			}
			// The recovered manager must be fully usable: an apply-only
			// batch always validates, and it must ack durably.
			extra := Batch{{Op: OpApply, Doc: randomUpdate(rng)}}
			if err := m.Apply(extra); err != nil {
				t.Fatalf("point %d short=%v: recovered manager rejected a valid batch: %v", point, short, err)
			}
			m.Close()
		}
	}
}

// --- integrity: ingest real documents, crash, recover, audit ---------

// docUpdates extracts the per-document DocUpdate stream from an index —
// the shape the ingestion pipeline produces.
func docUpdates(ix *index.Index, wordList []string) []views.DocUpdate {
	schema := ix.Schema()
	out := make([]views.DocUpdate, ix.NumDocs())
	for d := 0; d < ix.NumDocs(); d++ {
		out[d] = views.DocUpdate{
			Len: ix.FieldLen(uint32(d), schema.ContentField),
			TF:  map[string]int64{},
		}
	}
	for _, m := range ix.Terms(schema.PredicateField) {
		for _, p := range ix.Postings(schema.PredicateField, m).Postings() {
			out[p.DocID].Predicates = append(out[p.DocID].Predicates, m)
		}
	}
	for _, w := range wordList {
		l := ix.Postings(schema.ContentField, w)
		if l == nil {
			continue
		}
		for _, p := range l.Postings() {
			out[p.DocID].TF[w] = int64(p.TF)
		}
	}
	return out
}

// TestCrashRecoverVerifyZeroDrift closes the loop from the durability
// layer to the query engine. Documents are ingested one per batch with
// a crash injected at every kill point; after each recovery the
// recovered catalog is audited against an index rebuilt over exactly
// the documents of the recovered state (views.Verify must report zero
// drift), and a contextual query against the recovered catalog must
// return results bit-identical to the same engine running on a
// directly-maintained catalog of that state.
func TestCrashRecoverVerifyZeroDrift(t *testing.T) {
	const base, extra = 120, 5
	fullIx := buildTestIndex(t, 101, base+extra)
	updates := docUpdates(fullIx, words)
	schema := fullIx.Schema()

	// Rebuild the document set so prefixes can be indexed independently.
	docs := rebuildDocs(t, fullIx)

	// Index and mirror catalog for every reachable state S_0..S_extra.
	states := make([]*index.Index, extra+1)
	mirrors := make([]*views.Catalog, extra+1)
	fps := make([]string, extra+1)
	for i := 0; i <= extra; i++ {
		ix, err := index.BuildFrom(schema, 0, docs[:base+i])
		if err != nil {
			t.Fatal(err)
		}
		states[i] = ix
		mirrors[i] = catalogOver(t, states[0])
		for _, u := range updates[base : base+i] {
			mirrors[i].Apply(u)
		}
		fps[i] = mirrors[i].Fingerprint()
	}

	batches := make([]Batch, extra)
	for i := 0; i < extra; i++ {
		batches[i] = Batch{{Op: OpApply, Doc: updates[base+i]}}
	}

	ingest := func(fs fsx.FS, dir string) ingestOutcome {
		var out ingestOutcome
		m, err := Create(dir, catalogOver(t, states[0]), Options{FS: fs, SnapshotEvery: 3})
		if err != nil {
			out.err = err
			return out
		}
		defer m.Close()
		out.created = true
		for _, b := range batches {
			if err := m.Apply(b); err != nil {
				out.err = err
				return out
			}
			out.acked++
		}
		return out
	}

	ffs := fsx.NewFaultFS(fsx.OS)
	if out := ingest(ffs, t.TempDir()); out.err != nil {
		t.Fatal(out.err)
	}
	ops := ffs.Ops()

	probe := query.Query{Keywords: []string{"w0", "w1"}, Context: []string{"m0", "m2"}}
	for point := 1; point <= ops; point++ {
		dir := t.TempDir()
		ffs := fsx.NewFaultFS(fsx.OS)
		ffs.Arm(point, true)
		out := ingest(ffs, dir)
		ffs.Reset()

		m, _, err := Open(dir, Options{})
		if err != nil {
			if out.created {
				t.Fatalf("point %d: created but recovery failed: %v", point, err)
			}
			continue
		}
		recovered := m.Catalog()
		idx := stateIndex(fps, recovered.Fingerprint())
		if idx < 0 || idx < out.acked || idx > out.acked+1 {
			t.Fatalf("point %d: recovered state %d, acked %d", point, idx, out.acked)
		}

		// Integrity audit: the recovered catalog agrees with an index
		// over exactly the recovered document set — zero drift.
		drift, err := recovered.Verify(states[idx], views.VerifyOptions{})
		if err != nil {
			t.Fatalf("point %d: verify: %v", point, err)
		}
		if len(drift) != 0 {
			t.Fatalf("point %d: drift after recovery to S_%d: %v", point, idx, drift)
		}

		// Query-level equivalence: the recovered catalog ranks
		// bit-identically to a directly maintained one.
		got := searchResults(t, states[idx], recovered, probe)
		want := searchResults(t, states[idx], mirrors[idx], probe)
		if len(got) != len(want) {
			t.Fatalf("point %d: result counts differ: %d vs %d", point, len(got), len(want))
		}
		for i := range want {
			if got[i].DocID != want[i].DocID ||
				math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
				t.Fatalf("point %d: rank %d differs: %+v vs %+v", point, i, got[i], want[i])
			}
		}
		m.Close()
	}
}

// rebuildDocs reconstructs the raw document set that buildTestIndex
// indexed, so arbitrary prefixes can be re-indexed. It must mirror
// buildTestIndex's generation exactly (same seed, same corpus shape).
func rebuildDocs(t *testing.T, ix *index.Index) []index.Document {
	t.Helper()
	rng := rand.New(rand.NewSource(101))
	n := ix.NumDocs()
	docs := make([]index.Document, n)
	for i := range docs {
		var mesh, content string
		for _, m := range meshTerms {
			if rng.Float64() < 0.35 {
				mesh += m + " "
			}
		}
		for _, w := range words {
			for k := rng.Intn(3); k > 0; k-- {
				content += w + " "
			}
		}
		if content == "" {
			content = "pad"
		}
		docs[i] = index.Document{Fields: map[string]string{"content": content, "mesh": mesh}}
	}
	return docs
}

// catalogOver materializes the test catalog shape over the given index.
func catalogOver(t *testing.T, ix *index.Index) *views.Catalog {
	t.Helper()
	tbl := widetable.FromIndex(ix, words)
	v1, err := views.Materialize(tbl, []string{"m0", "m1", "m2"}, words)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := views.Materialize(tbl, []string{"m2", "m3", "m4", "m5"}, words)
	if err != nil {
		t.Fatal(err)
	}
	return views.NewCatalog([]*views.View{v1, v2}, 1, 1<<20)
}

func searchResults(t *testing.T, ix *index.Index, cat *views.Catalog, q query.Query) []core.Result {
	t.Helper()
	eng := core.New(ix, cat, core.Options{})
	res, _, err := eng.SearchContextSensitive(q, 20)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
