package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"csrank/internal/fsx"
)

// ErrPayloadTooLarge marks AppendRaw rejections of payloads above the
// maxRecordBytes cap Replay enforces. Nothing reaches the file: writing
// such a record would produce a length field replay rejects as corrupt,
// making every later acknowledged record unreachable.
var ErrPayloadTooLarge = errors.New("wal: payload exceeds the record size cap")

// RawLog is an append-only log of opaque byte records. It owns the
// record framing the whole package shares — uint32 payload length,
// uint32 CRC32-C, payload — and the durability contract: each record
// is written with a single Write call and fsynced before AppendRaw
// returns, so an acknowledged record survives any later crash. The
// typed Log (view-maintenance batches) and the ingestion segment log
// are both thin codecs over this one framing implementation, so the
// torn-tail recovery rules are proven once.
type RawLog struct {
	fs   fsx.FS
	path string
	f    fsx.File
}

// OpenRawLog opens (creating if absent) the log at path for appending.
func OpenRawLog(fs fsx.FS, path string) (*RawLog, error) {
	f, err := fs.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return &RawLog{fs: fs, path: path, f: f}, nil
}

// CreateRawLog creates an empty log at path, truncating any stale file
// already there.
func CreateRawLog(fs fsx.FS, path string) (*RawLog, error) {
	f, err := fs.Create(path)
	if err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", path, err)
	}
	return &RawLog{fs: fs, path: path, f: f}, nil
}

// Path returns the log's file path.
func (l *RawLog) Path() string { return l.path }

// AppendRaw frames payload into one record and makes it durable. On
// error the tail of the file may hold a torn record; the caller must
// stop appending (a record after a torn one is unreachable to replay)
// and reopen through recovery.
func (l *RawLog) AppendRaw(payload []byte) error {
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("%w: %d bytes, cap %d", ErrPayloadTooLarge, len(payload), maxRecordBytes)
	}
	rec := make([]byte, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	copy(rec[recordHeaderSize:], payload)
	if _, err := l.f.Write(rec); err != nil {
		return fmt.Errorf("wal: append %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", l.path, err)
	}
	return nil
}

// Close releases the log's file handle.
func (l *RawLog) Close() error { return l.f.Close() }

// ReplayRaw reads the log at path and calls fn with every complete
// record's payload in order. A torn final record — incomplete header,
// incomplete payload, a checksum mismatch on the record touching
// end-of-file, or a run of zeros from a zero-extended tail page — is
// the expected residue of a crash mid-append: it is skipped and
// reported, not an error. Any damage *before* the final record cannot
// be explained by a torn append and is returned as a hard corruption
// error, because silently resuming past it would drop acknowledged
// records. The payload slice aliases an internal buffer only for the
// duration of the call; fn must copy what it keeps.
func ReplayRaw(fs fsx.FS, path string, fn func(payload []byte) error) (ReplayResult, error) {
	var res ReplayResult
	f, err := fs.Open(path)
	if err != nil {
		return res, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return res, fmt.Errorf("wal: read %s: %w", path, err)
	}

	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < recordHeaderSize {
			return tornTail(res, off, rest), nil
		}
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length == 0 && allZero(data[off:]) {
			// Filesystems may zero-extend the tail page on a crash; a run
			// of zeros to end-of-file is a torn tail, not corruption.
			return tornTail(res, off, rest), nil
		}
		if length == 0 || length > maxRecordBytes {
			return res, fmt.Errorf("wal: %s: corrupt record header at offset %d (length %d)", path, off, length)
		}
		if rest < recordHeaderSize+length {
			return tornTail(res, off, rest), nil
		}
		payload := data[off+recordHeaderSize : off+recordHeaderSize+length]
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			if rest == recordHeaderSize+length {
				// Final record: a torn write of the payload's last bytes
				// is indistinguishable from corruption, and the record was
				// never acknowledged — skip it.
				return tornTail(res, off, rest), nil
			}
			return res, fmt.Errorf("wal: %s: checksum mismatch at offset %d with %d bytes following — log is corrupt", path, off, rest-recordHeaderSize-length)
		}
		if err := fn(payload); err != nil {
			return res, fmt.Errorf("wal: %s: record at offset %d: %w", path, off, err)
		}
		res.Batches++
		off += recordHeaderSize + length
	}
	return res, nil
}
