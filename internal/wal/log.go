package wal

import (
	"errors"
	"fmt"

	"csrank/internal/fsx"
)

// ErrBatchUnloggable marks Append rejections that happen before any byte
// reaches the file: the batch cannot be framed into a record Replay
// would accept — an unencodable update, or a payload above the
// maxRecordBytes cap Replay enforces. The log tail is untouched and the
// log remains appendable; acknowledging such a batch would otherwise
// write a record whose length field Replay rejects as corrupt, making
// every later acknowledged batch unrecoverable.
var ErrBatchUnloggable = errors.New("wal: batch cannot be framed into a loggable record")

// recordHeaderSize is the fixed prefix of every record: uint32 payload
// length plus uint32 CRC32-C of the payload.
const recordHeaderSize = 8

// Log is an append-only record log of view-maintenance batches: the
// typed codec over RawLog's framing. Append is the durability point of
// the ingestion pipeline: each batch is framed into one record and
// fsynced before Append returns, so an acknowledged batch survives any
// later crash.
type Log struct {
	raw *RawLog
}

// OpenLog opens (creating if absent) the log at path for appending.
func OpenLog(fs fsx.FS, path string) (*Log, error) {
	raw, err := OpenRawLog(fs, path)
	if err != nil {
		return nil, err
	}
	return &Log{raw: raw}, nil
}

// CreateLog creates an empty log at path, truncating any stale file
// already there. Snapshot rolls use it for the new generation's log: a
// recovery that fell back past a corrupt snapshot can leave the
// abandoned generation's log on disk, and appending after its committed
// records would make a later recovery replay them on top of a snapshot
// they were never applied to.
func CreateLog(fs fsx.FS, path string) (*Log, error) {
	raw, err := CreateRawLog(fs, path)
	if err != nil {
		return nil, err
	}
	return &Log{raw: raw}, nil
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.raw.Path() }

// Append frames the batch into one record and makes it durable. On error
// the tail of the file may hold a torn record; the caller must stop
// appending (a later record after a torn one is unreachable to replay)
// and reopen through recovery.
func (l *Log) Append(b Batch) error {
	payload, err := encodeBatch(b)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBatchUnloggable, err)
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("%w: batch encodes to %d bytes, above the %d-byte record cap",
			ErrBatchUnloggable, len(payload), maxRecordBytes)
	}
	return l.raw.AppendRaw(payload)
}

// Close releases the log's file handle.
func (l *Log) Close() error { return l.raw.Close() }

// ReplayResult reports what a Replay pass found.
type ReplayResult struct {
	// Batches is the number of complete, checksum-valid records replayed.
	Batches int
	// TornTail is true when the file ends in an incomplete or
	// checksum-invalid final record — the signature of a crash mid-append.
	// The torn bytes start at TailOffset; truncating the file there makes
	// the log clean again.
	TornTail   bool
	TailOffset int64
	// TailBytes is how many bytes the torn tail spans (0 when clean).
	TailBytes int64
}

// Replay reads the log at path and calls fn for every complete record in
// order, decoding each payload as a view-maintenance batch. Torn-tail
// and corruption semantics are ReplayRaw's: a torn final record is
// skipped and reported, damage before it is a hard error.
func Replay(fs fsx.FS, path string, fn func(Batch) error) (ReplayResult, error) {
	return ReplayRaw(fs, path, func(payload []byte) error {
		batch, err := decodeBatch(payload)
		if err != nil {
			return err
		}
		return fn(batch)
	})
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

func tornTail(res ReplayResult, off, rest int) ReplayResult {
	res.TornTail = true
	res.TailOffset = int64(off)
	res.TailBytes = int64(rest)
	return res
}
