package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"csrank/internal/fsx"
)

// ErrBatchUnloggable marks Append rejections that happen before any byte
// reaches the file: the batch cannot be framed into a record Replay
// would accept — an unencodable update, or a payload above the
// maxRecordBytes cap Replay enforces. The log tail is untouched and the
// log remains appendable; acknowledging such a batch would otherwise
// write a record whose length field Replay rejects as corrupt, making
// every later acknowledged batch unrecoverable.
var ErrBatchUnloggable = errors.New("wal: batch cannot be framed into a loggable record")

// recordHeaderSize is the fixed prefix of every record: uint32 payload
// length plus uint32 CRC32-C of the payload.
const recordHeaderSize = 8

// Log is an append-only record log. Append is the durability point of
// the ingestion pipeline: each batch is framed into one record, written
// with a single Write call, and fsynced before Append returns, so an
// acknowledged batch survives any later crash.
type Log struct {
	fs   fsx.FS
	path string
	f    fsx.File
}

// OpenLog opens (creating if absent) the log at path for appending.
func OpenLog(fs fsx.FS, path string) (*Log, error) {
	f, err := fs.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return &Log{fs: fs, path: path, f: f}, nil
}

// CreateLog creates an empty log at path, truncating any stale file
// already there. Snapshot rolls use it for the new generation's log: a
// recovery that fell back past a corrupt snapshot can leave the
// abandoned generation's log on disk, and appending after its committed
// records would make a later recovery replay them on top of a snapshot
// they were never applied to.
func CreateLog(fs fsx.FS, path string) (*Log, error) {
	f, err := fs.Create(path)
	if err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", path, err)
	}
	return &Log{fs: fs, path: path, f: f}, nil
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Append frames the batch into one record and makes it durable. On error
// the tail of the file may hold a torn record; the caller must stop
// appending (a later record after a torn one is unreachable to replay)
// and reopen through recovery.
func (l *Log) Append(b Batch) error {
	payload, err := encodeBatch(b)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBatchUnloggable, err)
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("%w: batch encodes to %d bytes, above the %d-byte record cap",
			ErrBatchUnloggable, len(payload), maxRecordBytes)
	}
	rec := make([]byte, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	copy(rec[recordHeaderSize:], payload)
	if _, err := l.f.Write(rec); err != nil {
		return fmt.Errorf("wal: append %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", l.path, err)
	}
	return nil
}

// Close releases the log's file handle.
func (l *Log) Close() error { return l.f.Close() }

// ReplayResult reports what a Replay pass found.
type ReplayResult struct {
	// Batches is the number of complete, checksum-valid records replayed.
	Batches int
	// TornTail is true when the file ends in an incomplete or
	// checksum-invalid final record — the signature of a crash mid-append.
	// The torn bytes start at TailOffset; truncating the file there makes
	// the log clean again.
	TornTail   bool
	TailOffset int64
	// TailBytes is how many bytes the torn tail spans (0 when clean).
	TailBytes int64
}

// Replay reads the log at path and calls fn for every complete record in
// order. A torn final record — incomplete header, incomplete payload, or
// a checksum mismatch on the record that touches end-of-file — is the
// expected residue of a crash mid-append: it is skipped and reported,
// not an error. Any damage *before* the final record (checksum mismatch
// mid-file, an impossible length field, an undecodable payload) cannot
// be explained by a torn append and is returned as a hard corruption
// error, because silently resuming past it would drop acknowledged
// batches.
func Replay(fs fsx.FS, path string, fn func(Batch) error) (ReplayResult, error) {
	var res ReplayResult
	f, err := fs.Open(path)
	if err != nil {
		return res, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return res, fmt.Errorf("wal: read %s: %w", path, err)
	}

	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < recordHeaderSize {
			return tornTail(res, off, rest), nil
		}
		length := int(binary.LittleEndian.Uint32(data[off : off+4]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length == 0 && allZero(data[off:]) {
			// Filesystems may zero-extend the tail page on a crash; a run
			// of zeros to end-of-file is a torn tail, not corruption.
			return tornTail(res, off, rest), nil
		}
		if length == 0 || length > maxRecordBytes {
			return res, fmt.Errorf("wal: %s: corrupt record header at offset %d (length %d)", path, off, length)
		}
		if rest < recordHeaderSize+length {
			return tornTail(res, off, rest), nil
		}
		payload := data[off+recordHeaderSize : off+recordHeaderSize+length]
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			if rest == recordHeaderSize+length {
				// Final record: a torn write of the payload's last bytes
				// is indistinguishable from corruption, and the batch was
				// never acknowledged — skip it.
				return tornTail(res, off, rest), nil
			}
			return res, fmt.Errorf("wal: %s: checksum mismatch at offset %d with %d bytes following — log is corrupt", path, off, rest-recordHeaderSize-length)
		}
		batch, err := decodeBatch(payload)
		if err != nil {
			return res, fmt.Errorf("wal: %s: record at offset %d: %w", path, off, err)
		}
		if err := fn(batch); err != nil {
			return res, fmt.Errorf("wal: %s: replaying record at offset %d: %w", path, off, err)
		}
		res.Batches++
		off += recordHeaderSize + length
	}
	return res, nil
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

func tornTail(res ReplayResult, off, rest int) ReplayResult {
	res.TornTail = true
	res.TailOffset = int64(off)
	res.TailBytes = int64(rest)
	return res
}
